// omtcli — command-line front end for the omt library.
//
//   omtcli generate --n 10000 [--dim 2] [--region disk|square|clustered]
//                   [--seed 42] --out points.txt
//   omtcli build    --points points.txt [--algo polar|bisection|greedy|
//                   nearest|star|chain] [--degree 6] [--source 0]
//                   [--threads T|0] [--fast-math 0|1] [--out tree.txt]
//   omtcli metrics  --points points.txt --tree tree.txt [--degree D]
//   omtcli simulate --points points.txt --tree tree.txt
//                   [--serialization 0.01] [--overhead 0]
//                   [--order tree|nearest|farthest|deepest]
//   omtcli render   --points points.txt [--tree tree.txt] [--grid 1]
//                   [--size 800] --out figure.svg
//   omtcli chaos    [--seed 42] [--duration 10] [--arrival 10] [--degree 6]
//                   [--loss 0.3] [--heartbeat-loss 0.1] [--attempts 4]
//                   [--partition-rate 0.1] [--audit-period 0.5] [--rpc 1]
//   omtcli churn    [--events 20000] [--warmup 512] [--sweep-every 256]
//                   [--departure-fraction 0.5] [--crash-fraction 0.3]
//                   [--degree 6] [--dim 2] [--seed 1] [--min-live 64]
//                   [--incremental 1] [--snapshot out.txt]
//   omtcli dataplane --points points.txt --tree tree.txt [--packets 1000]
//                   [--interval 1e-4] [--loss 0.01] [--burst-start 0]
//                   [--burst-stop 0.25] [--burst-loss 0.5]
//                   [--control-loss 0] [--queue 128] [--retx-buffer 4096]
//                   [--crash-fraction 0] [--degree 0] [--seed 1]
//   omtcli serve    [--script trace.txt | --groups 1000 --hosts 20000
//                   --events 1000000 --dim 2 --seed 1 --mean-size 24
//                   --crash-fraction 0.3] [--save-script trace.txt]
//                   [--shards S|0] [--degree 6] [--batch 1024] [--rpc 0|1]
//                   [--disrupt 0|1] [--audit-period 0.5] [--top 5]
//
// Any command additionally accepts --trace <file> (Chrome trace_event JSON
// of the run's spans) and --metrics <file> (Prometheus text exposition);
// either flag switches the observability runtime on for the process.
//
// Every command prints a short human-readable report to stdout; failures
// (malformed files, invalid trees) exit non-zero with a message on stderr.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "omt/baselines/baselines.h"
#include "omt/fault/chaos.h"
#include "omt/fault/steady_churn.h"
#include "omt/bisection/bisection.h"
#include "omt/core/bounds.h"
#include "omt/core/polar_grid_tree.h"
#include "omt/grid/assignment.h"
#include "omt/io/serialization.h"
#include "omt/kernels/fast_math.h"
#include "omt/obs/metrics.h"
#include "omt/obs/obs.h"
#include "omt/obs/trace.h"
#include "omt/random/samplers.h"
#include "omt/report/table.h"
#include "omt/service/replay.h"
#include "omt/sim/dataplane/engine.h"
#include "omt/sim/multicast_sim.h"
#include "omt/tree/metrics.h"
#include "omt/tree/validation.h"
#include "omt/viz/svg.h"

namespace {

using namespace omt;

class Flags {
 public:
  Flags(int argc, char** argv, int firstFlag) {
    for (int i = firstFlag; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0 || i + 1 >= argc) {
        throw InvalidArgument("expected --flag value pairs, got '" + key +
                              "'");
      }
      values_[key.substr(2)] = argv[++i];
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  std::string require(const std::string& key) const {
    const auto it = values_.find(key);
    OMT_CHECK(it != values_.end(), "missing required flag --" + key);
    return it->second;
  }
  std::int64_t getInt(const std::string& key, std::int64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoll(it->second);
  }
  double getDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

int cmdGenerate(const Flags& flags) {
  const std::int64_t n = flags.getInt("n", 10000);
  const int dim = static_cast<int>(flags.getInt("dim", 2));
  const std::string region = flags.get("region", "disk");
  Rng rng(static_cast<std::uint64_t>(flags.getInt("seed", 42)));

  std::vector<Point> points;
  if (region == "disk") {
    points = sampleDiskWithCenterSource(rng, n, dim);
  } else if (region == "square") {
    Point lo(dim);
    Point hi(dim);
    for (int c = 0; c < dim; ++c) {
      lo[c] = -1.0;
      hi[c] = 1.0;
    }
    points = sampleRegion(rng, n, Box(lo, hi));
    points[0] = Point(dim);
  } else if (region == "clustered") {
    const Ball ball(Point(dim), 1.0);
    points = sampleClustered(rng, n, ball,
                             static_cast<int>(flags.getInt("clusters", 6)),
                             flags.getDouble("fraction", 0.7),
                             flags.getDouble("spread", 0.08));
    points[0] = Point(dim);
  } else {
    throw InvalidArgument("unknown region '" + region + "'");
  }
  savePointsFile(flags.require("out"), points);
  std::cout << "wrote " << points.size() << " " << dim
            << "-dimensional points (" << region << ") to "
            << flags.require("out") << "\n";
  return 0;
}

int cmdBuild(const Flags& flags) {
  const auto points = loadPointsFile(flags.require("points"));
  const std::string algo = flags.get("algo", "polar");
  const int degree = static_cast<int>(flags.getInt("degree", 6));
  const NodeId source = flags.getInt("source", 0);
  // 0 = auto (OMT_THREADS or hardware); the tree is identical either way.
  const int threads = static_cast<int>(flags.getInt("threads", 0));
  // Opt-in approximate kernel tier (same switch as OMT_FAST_MATH=1); the
  // tree may differ from the exact build within the tier's error bounds.
  if (flags.getInt("fast-math", 0) != 0) {
    OMT_CHECK(kernels::fast_math::compiledIn(),
              "this build compiled the fast-math tier out "
              "(-DOMT_FAST_MATH=OFF)");
    kernels::fast_math::setEnabled(true);
  }
  Rng rng(static_cast<std::uint64_t>(flags.getInt("seed", 42)));

  std::optional<MulticastTree> tree;
  double bound = 0.0;
  if (algo == "polar") {
    auto result = buildPolarGridTree(
        points, source, {.maxOutDegree = degree, .workers = threads});
    bound = result.upperBound;
    tree.emplace(std::move(result.tree));
  } else if (algo == "bisection") {
    auto result = buildBisectionTree(
        points, source, {.maxOutDegree = degree, .workers = threads});
    bound = result.pathBound;
    tree.emplace(std::move(result.tree));
  } else if (algo == "greedy") {
    tree.emplace(buildGreedyInsertionTree(points, source, degree));
  } else if (algo == "nearest") {
    tree.emplace(buildNearestParentTree(points, source, degree));
  } else if (algo == "star") {
    tree.emplace(buildStarTree(points, source));
  } else if (algo == "chain") {
    tree.emplace(buildChainTree(points, source));
  } else {
    throw InvalidArgument("unknown algorithm '" + algo + "'");
  }

  const TreeMetrics m = computeMetrics(*tree, points);
  std::cout << "algorithm:    " << algo << "\n"
            << "hosts:        " << points.size() << "\n"
            << "max delay:    " << m.maxDelay << "\n"
            << "lower bound:  " << radiusLowerBound(points, source) << "\n";
  if (bound > 0.0) std::cout << "analytic UB:  " << bound << "\n";
  std::cout << "max degree:   " << m.maxOutDegree << "\n"
            << "max depth:    " << m.maxDepth << "\n";
  if (const std::string out = flags.get("out", ""); !out.empty()) {
    saveTreeFile(out, *tree);
    std::cout << "tree written to " << out << "\n";
  }
  return 0;
}

int cmdMetrics(const Flags& flags) {
  const auto points = loadPointsFile(flags.require("points"));
  const MulticastTree tree = loadTreeFile(flags.require("tree"));
  OMT_CHECK(tree.size() == static_cast<NodeId>(points.size()),
            "tree and point set sizes differ");
  const auto cap = flags.getInt("degree", -1);
  const ValidationResult valid = validate(tree, {.maxOutDegree = cap});
  if (!valid) {
    std::cerr << "INVALID tree: " << valid.message << "\n";
    return 1;
  }
  const TreeMetrics m = computeMetrics(tree, points);
  TextTable table({"metric", "value"});
  table.addRow({"max delay (radius)", TextTable::num(m.maxDelay, 6)});
  table.addRow({"core delay", TextTable::num(m.coreDelay, 6)});
  table.addRow({"mean delay", TextTable::num(m.meanDelay, 6)});
  table.addRow({"diameter", TextTable::num(diameter(tree, points), 6)});
  table.addRow({"total link length", TextTable::num(m.totalLength, 6)});
  table.addRow({"max stretch", TextTable::num(m.maxStretch, 4)});
  table.addRow({"max depth", std::to_string(m.maxDepth)});
  table.addRow({"max out-degree", std::to_string(m.maxOutDegree)});
  std::cout << table.str();
  return 0;
}

int cmdSimulate(const Flags& flags) {
  const auto points = loadPointsFile(flags.require("points"));
  const MulticastTree tree = loadTreeFile(flags.require("tree"));
  OMT_CHECK(tree.size() == static_cast<NodeId>(points.size()),
            "tree and point set sizes differ");
  SimOptions options;
  options.serializationInterval = flags.getDouble("serialization", 0.0);
  options.perHopOverhead = flags.getDouble("overhead", 0.0);
  if (options.serializationInterval > 0.0)
    options.model = TransmissionModel::kSerialized;
  const std::string order = flags.get("order", "tree");
  if (order == "nearest") options.childOrder = ChildOrder::kNearestFirst;
  else if (order == "farthest") options.childOrder = ChildOrder::kFarthestFirst;
  else if (order == "deepest") options.childOrder = ChildOrder::kDeepestFirst;
  else OMT_CHECK(order == "tree", "unknown child order '" + order + "'");

  const SimResult sim = simulateMulticast(tree, points, options);
  std::cout << "model:          "
            << (options.model == TransmissionModel::kParallel ? "parallel"
                                                              : "serialized")
            << "\nreached:        " << sim.reached << " / " << tree.size()
            << "\nworst delivery: " << sim.maxDelivery
            << "\nmean delivery:  " << sim.meanDelivery
            << "\nmessages:       " << sim.messagesSent << "\n";
  return 0;
}

int cmdRender(const Flags& flags) {
  const auto points = loadPointsFile(flags.require("points"));
  std::optional<MulticastTree> tree;
  if (const std::string treePath = flags.get("tree", ""); !treePath.empty()) {
    tree.emplace(loadTreeFile(treePath));
    OMT_CHECK(tree->size() == static_cast<NodeId>(points.size()),
              "tree and point set sizes differ");
  }
  std::optional<PolarGrid> grid;
  if (flags.getInt("grid", 0) != 0) {
    const NodeId source = tree ? tree->root() : 0;
    const GridAssignment assignment = assignToGrid(points, source);
    grid.emplace(assignment.grid);
  }
  SvgOptions options;
  options.sizePixels = static_cast<int>(flags.getInt("size", 800));
  const std::string out = flags.require("out");
  renderSvgFile(out, points, tree ? &*tree : nullptr,
                grid ? &*grid : nullptr, options);
  std::cout << "wrote " << out << " (" << points.size() << " hosts"
            << (tree ? ", tree" : "") << (grid ? ", grid" : "") << ")\n";
  return 0;
}

int cmdChaos(const Flags& flags) {
  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed", 42));
  ChaosOptions options;
  options.schedule.duration = flags.getDouble("duration", 10.0);
  options.schedule.arrivalRate = flags.getDouble("arrival", 10.0);
  options.schedule.crashFraction = flags.getDouble("crash-fraction", 0.4);
  options.schedule.crashBurstRate = flags.getDouble("burst-rate", 0.1);
  options.schedule.seed = deriveSeed(seed, 0x501ULL);
  options.channel.lossRate = flags.getDouble("heartbeat-loss", 0.1);
  options.channel.seed = deriveSeed(seed, 0x502ULL);
  options.session.maxOutDegree =
      static_cast<int>(flags.getInt("degree", 6));
  options.settleTime = flags.getDouble("settle", 25.0);

  options.useRpc = flags.getInt("rpc", 1) != 0;
  options.rpc.channel.lossRate = flags.getDouble("loss", 0.3);
  options.rpc.channel.maxAttempts =
      static_cast<int>(flags.getInt("attempts", 4));
  options.rpc.channel.seed = deriveSeed(seed, 0x503ULL);
  options.disruption.duration =
      options.schedule.duration + options.settleTime;
  options.disruption.partitionRate = flags.getDouble("partition-rate", 0.1);
  options.disruption.lossBurstRate = flags.getDouble("burst-loss-rate", 0.1);
  options.disruption.seed = deriveSeed(seed, 0x504ULL);
  options.auditPeriod = flags.getDouble("audit-period", 0.5);

  const ChaosResult result = runChaos(options);
  TextTable table({"metric", "value"});
  table.addRow({"joins", TextTable::count(result.joins)});
  table.addRow({"leaves", TextTable::count(result.leaves)});
  table.addRow({"crashes", TextTable::count(result.crashes)});
  table.addRow({"silent leaves", TextTable::count(result.silentLeaves)});
  table.addRow({"repairs", TextTable::count(result.repairs)});
  table.addRow({"repaired orphans", TextTable::count(result.repairedOrphans)});
  table.addRow({"sweep repairs", TextTable::count(result.sweepRepairs)});
  table.addRow({"invariant audits", TextTable::count(result.invariantChecks)});
  table.addRow({"final live hosts", TextTable::count(result.finalLive)});
  if (options.useRpc) {
    table.addRow({"rpc calls", TextTable::count(result.rpc.calls)});
    table.addRow({"rpc acked", TextTable::count(result.rpc.acked)});
    table.addRow({"rpc exhausted", TextTable::count(result.rpc.exhausted)});
    table.addRow({"duplicate deliveries",
                  TextTable::count(result.rpc.duplicateDeliveries)});
    table.addRow({"duplicates applied",
                  TextTable::count(result.rpc.duplicatesApplied)});
    table.addRow({"breaker trips", TextTable::count(result.rpc.breakerTrips)});
    table.addRow({"parked joins", TextTable::count(result.parkedJoins)});
    table.addRow({"anti-entropy sweeps",
                  TextTable::count(result.auditSweeps)});
    table.addRow({"audit reattaches",
                  TextTable::count(result.driver.auditReattaches)});
    table.addRow({"disruption windows",
                  TextTable::count(result.disruptionWindows)});
  }
  std::cout << table.str();
  if (!result.ok) {
    std::cerr << "INVARIANTS VIOLATED: " << result.failure << "\n";
    return 1;
  }
  if (options.useRpc && result.rpc.duplicatesApplied != 0) {
    std::cerr << "AT-MOST-ONCE VIOLATED: " << result.rpc.duplicatesApplied
              << " operations applied twice\n";
    return 1;
  }
  std::cout << "INVARIANTS OK: every audit passed, "
            << (options.useRpc ? "no operation applied twice, " : "")
            << "all live hosts attached\n";
  return 0;
}

int cmdChurn(const Flags& flags) {
  SteadyChurnOptions options;
  options.dim = static_cast<int>(flags.getInt("dim", 2));
  options.session.maxOutDegree = static_cast<int>(flags.getInt("degree", 6));
  options.session.incremental = flags.getInt("incremental", 1) != 0;
  options.warmupHosts = flags.getInt("warmup", 512);
  options.events = flags.getInt("events", 20000);
  options.departureFraction = flags.getDouble("departure-fraction", 0.5);
  options.crashFraction = flags.getDouble("crash-fraction", 0.3);
  options.sweepEvery = flags.getInt("sweep-every", 256);
  options.minLive = flags.getInt("min-live", 64);
  options.seed = static_cast<std::uint64_t>(flags.getInt("seed", 1));
  const std::string snapshotPath = flags.get("snapshot", "");
  options.captureSnapshot = !snapshotPath.empty();

  // Quality yardstick: a fresh static build on a comparable membership.
  Rng baselineRng(deriveSeed(options.seed, 0xbabe));
  const std::vector<Point> baselinePoints = sampleDiskWithCenterSource(
      baselineRng, std::max<std::int64_t>(options.warmupHosts, 2),
      options.dim);
  options.baselineRatio =
      staticRadiusRatio(baselinePoints, 0, options.session.maxOutDegree);

  const SteadyChurnResult result = runSteadyChurn(options);

  TextTable table({"metric", "value"});
  table.addRow({"events", TextTable::count(result.events)});
  table.addRow({"joins", TextTable::count(result.joins)});
  table.addRow({"leaves", TextTable::count(result.leaves)});
  table.addRow({"crashes", TextTable::count(result.crashes)});
  table.addRow({"parked joins", TextTable::count(result.parkedJoins)});
  table.addRow({"sweeps", TextTable::count(result.sweeps)});
  table.addRow({"repaired subtrees",
                TextTable::count(result.repairedSubtrees)});
  table.addRow({"splits", TextTable::count(result.session.splits)});
  table.addRow({"merges", TextTable::count(result.session.merges)});
  table.addRow({"extends", TextTable::count(result.session.extends)});
  table.addRow({"scoped rebuilds",
                TextTable::count(result.session.scopedRebuilds)});
  table.addRow({"full regrids", TextTable::count(result.session.regrids)});
  table.addRow({"events/s", TextTable::num(result.eventsPerSecond, 0)});
  table.addRow({"R/LB mean", TextTable::num(result.radiusRatio.count() > 0
                                                ? result.radiusRatio.mean()
                                                : 0.0,
                                            3)});
  table.addRow({"R/LB max", TextTable::num(result.maxRatio, 3)});
  table.addRow(
      {"R/LB static", TextTable::num(options.baselineRatio, 3)});
  table.addRow({"watchdog alarms", TextTable::count(result.watchdog.alarms)});
  table.addRow({"final live",
                TextTable::count(result.session.joins - result.session.leaves -
                                 result.session.crashes)});
  std::cout << table.str();

  if (!snapshotPath.empty() && result.finalSnapshot) {
    const SessionSnapshot& snap = *result.finalSnapshot;
    saveSessionSnapshotFile(snapshotPath, snap.tree, snap.sessionIds,
                            snap.positions);
    std::cout << "snapshot (" << snap.sessionIds.size()
              << " hosts) written to " << snapshotPath << "\n";
  }
  if (!result.ok) {
    std::cerr << "INVARIANTS VIOLATED: " << result.firstViolation << "\n";
    return 1;
  }
  if (!result.escalationMonotone) {
    std::cerr << "ESCALATION NON-MONOTONE: a full regrid ran before a "
                 "scoped rebuild was attempted\n";
    return 1;
  }
  if (result.unrepairedOrphans != 0) {
    std::cerr << "UNREPAIRED ORPHANS: " << result.unrepairedOrphans
              << " hosts still detached after the quiesce sweep\n";
    return 1;
  }
  std::cout << "INVARIANTS OK: every sweep audit passed, escalation "
               "monotone, no orphans left behind\n";
  return 0;
}

int cmdDataplane(const Flags& flags) {
  const auto points = loadPointsFile(flags.require("points"));
  const MulticastTree tree = loadTreeFile(flags.require("tree"));
  OMT_CHECK(tree.size() == static_cast<NodeId>(points.size()),
            "tree and point set sizes differ");

  const auto seed = static_cast<std::uint64_t>(flags.getInt("seed", 1));
  dataplane::DataplaneOptions options;
  options.seed = deriveSeed(seed, 0xDA7AULL);
  options.packetCount = flags.getInt("packets", 1000);
  options.packetInterval = flags.getDouble("interval", 1e-4);
  options.lossProbability = flags.getDouble("loss", 0.0);
  options.burst.burstStartProbability = flags.getDouble("burst-start", 0.0);
  options.burst.burstStopProbability = flags.getDouble("burst-stop", 0.25);
  options.burst.burstLossProbability = flags.getDouble("burst-loss", 0.5);
  options.controlLoss = flags.getDouble("control-loss", 0.0);
  options.queueCapacity = static_cast<int>(flags.getInt("queue", 128));
  options.retransmitBuffer = flags.getInt("retx-buffer", 4096);
  options.maxOutDegree = static_cast<int>(flags.getInt("degree", 0));

  // Optional crash schedule: each non-root node crashes independently with
  // probability --crash-fraction at a uniform time inside the emit window.
  const double crashFraction = flags.getDouble("crash-fraction", 0.0);
  OMT_CHECK(crashFraction >= 0.0 && crashFraction < 1.0,
            "crash fraction outside [0, 1)");
  if (crashFraction > 0.0) {
    Rng crashRng(deriveSeed(seed, 0xDA7AC));
    const double window = static_cast<double>(options.packetCount) *
                          options.packetInterval;
    for (NodeId v = 0; v < tree.size(); ++v) {
      if (v == tree.root() || crashRng.uniform() >= crashFraction) continue;
      options.crashes.push_back({v, crashRng.uniform() * window});
    }
    std::sort(options.crashes.begin(), options.crashes.end(),
              [](const dataplane::CrashEvent& a,
                 const dataplane::CrashEvent& b) { return a.time < b.time; });
  }

  const dataplane::DataplaneResult result =
      runDataplane(tree, points, options);
  const double goodput =
      result.wallSeconds > 0.0
          ? static_cast<double>(result.deliveries) / result.wallSeconds
          : 0.0;
  TextTable table({"metric", "value"});
  table.addRow({"hosts", TextTable::count(tree.size())});
  table.addRow({"packets sent", TextTable::count(result.packetsSent)});
  table.addRow({"deliveries", TextTable::count(result.deliveries)});
  table.addRow({"goodput pkt/s",
                TextTable::count(static_cast<long long>(goodput))});
  table.addRow({"p50 latency ms",
                TextTable::num(result.deliveryLatency.p50() * 1e3, 3)});
  table.addRow({"p99 latency ms",
                TextTable::num(result.deliveryLatency.p99() * 1e3, 3)});
  table.addRow({"link losses", TextTable::count(result.linkLosses)});
  table.addRow({"queue drops", TextTable::count(result.queueDrops)});
  table.addRow({"dups suppressed",
                TextTable::count(result.duplicatesSuppressed)});
  table.addRow({"NACKs sent", TextTable::count(result.nacksSent)});
  table.addRow({"retransmits", TextTable::count(result.retransmits)});
  table.addRow({"eviction misses", TextTable::count(result.evictionMisses)});
  table.addRow({"refetches", TextTable::count(result.refetches)});
  table.addRow({"crashed nodes", TextTable::count(result.crashedNodes)});
  table.addRow({"re-homed children",
                TextTable::count(result.rehomedChildren)});
  table.addRow({"events processed",
                TextTable::count(result.eventsProcessed)});
  table.addRow({"sim end time s", TextTable::num(result.simEndTime, 3)});
  std::cout << table.str();
  if (!result.completed) {
    std::cerr << "INCOMPLETE: " << result.undelivered
              << " packets undelivered at live receivers"
              << (result.stalled ? " (stall detector fired)" : "") << "\n";
    return 1;
  }
  std::cout << "DELIVERY OK: every live receiver got every packet "
               "exactly once, in order\n";
  return 0;
}

int cmdServe(const Flags& flags) {
  // Obtain the membership script: replay a saved trace or generate one.
  std::vector<MembershipEvent> events;
  int dim = static_cast<int>(flags.getInt("dim", 2));
  const std::string scriptPath = flags.get("script", "");
  if (!scriptPath.empty()) {
    events = loadMembershipScript(scriptPath, &dim);
  } else {
    ScriptOptions script;
    script.groups = flags.getInt("groups", 1000);
    script.hosts = flags.getInt("hosts", 20000);
    script.events = flags.getInt("events", 1000000);
    script.dim = dim;
    script.seed = static_cast<std::uint64_t>(flags.getInt("seed", 1));
    script.meanGroupSize = flags.getDouble("mean-size", 24.0);
    script.sizeSkew = flags.getDouble("skew", 0.0);
    script.crashFraction = flags.getDouble("crash-fraction", 0.3);
    script.meanEventGap = flags.getDouble("event-gap", 1e-3);
    events = generateMembershipScript(script);
  }
  const std::string savePath = flags.get("save-script", "");
  if (!savePath.empty()) {
    saveMembershipScript(savePath, events, dim);
    std::cout << "script (" << events.size() << " events) written to "
              << savePath << "\n";
  }

  ServiceOptions service;
  service.session.maxOutDegree = static_cast<int>(flags.getInt("degree", 6));
  service.shards = static_cast<int>(flags.getInt("shards", 0));
  service.seed = static_cast<std::uint64_t>(flags.getInt("seed", 1));
  service.useRpc = flags.getInt("rpc", 0) != 0;
  service.injectDisruption = flags.getInt("disrupt", 0) != 0;
  service.auditPeriod = flags.getDouble("audit-period", 0.5);
  service.measureLatency = flags.getInt("latency", 0) != 0;
  service.deltaPublish = flags.getInt("delta", 1) != 0;
  service.deltaVerify = flags.getInt("delta-verify", 0) != 0;
  service.rebalanceShards = flags.getInt("rebalance", 1) != 0;
  GroupManager manager(service);

  ReplayOptions replay;
  replay.batchSize = flags.getInt("batch", 1024);
  replay.quiesceRounds = static_cast<int>(flags.getInt("quiesce-rounds", 32));
  const ReplayResult result = replayScript(manager, events, replay);

  // Per-group convergence distribution over every created group.
  std::int64_t minEvents = std::numeric_limits<std::int64_t>::max();
  std::int64_t maxEvents = 0;
  std::int64_t maxMembers = 0;
  std::int64_t totalMembers = 0;
  std::vector<std::pair<std::int64_t, GroupId>> busiest;
  for (const GroupId group : manager.createdGroups()) {
    const GroupStats gs = manager.groupStats(group);
    minEvents = std::min(minEvents, gs.events);
    maxEvents = std::max(maxEvents, gs.events);
    const std::int64_t live = manager.liveMembersOf(group);
    maxMembers = std::max(maxMembers, live);
    totalMembers += live;
    busiest.emplace_back(gs.events, group);
  }
  if (manager.groupCount() == 0) minEvents = 0;
  const double rate = result.applySeconds > 0.0
                          ? static_cast<double>(result.events) /
                                result.applySeconds
                          : 0.0;

  TextTable table({"metric", "value"});
  table.addRow({"events", TextTable::count(result.events)});
  table.addRow({"batches", TextTable::count(result.batches)});
  table.addRow({"groups", TextTable::count(result.groups)});
  table.addRow({"live groups", TextTable::count(result.liveGroups)});
  table.addRow({"live members", TextTable::count(totalMembers)});
  table.addRow({"publishes", TextTable::count(result.publishes)});
  table.addRow({"delta publishes",
                TextTable::count(manager.stats().deltaPublishes)});
  table.addRow({"shards", TextTable::count(manager.shards())});
  table.addRow({"events/s", TextTable::count(
                    static_cast<long long>(rate))});
  table.addRow({"events/group min", TextTable::count(minEvents)});
  table.addRow({"events/group max", TextTable::count(maxEvents)});
  table.addRow({"members/group max", TextTable::count(maxMembers)});
  table.addRow({"parked joins", TextTable::count(
                    manager.stats().parkedJoins)});
  table.addRow({"audits", TextTable::count(manager.stats().audits)});
  table.addRow({"teardowns", TextTable::count(manager.stats().teardowns)});
  table.addRow({"degraded groups", TextTable::count(result.degradedGroups)});
  table.addRow({"inconsistent", TextTable::count(result.inconsistentGroups)});
  std::cout << table.str();

  const auto top = std::min<std::size_t>(
      static_cast<std::size_t>(flags.getInt("top", 5)), busiest.size());
  if (top > 0) {
    std::partial_sort(busiest.begin(), busiest.begin() + static_cast<std::ptrdiff_t>(top),
                      busiest.end(), std::greater<>());
    TextTable groups({"group", "events", "members", "epoch", "fingerprint"});
    for (std::size_t i = 0; i < top; ++i) {
      const GroupId g = busiest[i].second;
      std::ostringstream fp;
      fp << std::hex << manager.groupStats(g).lastFingerprint;
      groups.addRow({TextTable::count(g), TextTable::count(busiest[i].first),
                     TextTable::count(manager.liveMembersOf(g)),
                     TextTable::count(
                         static_cast<long long>(manager.epochOf(g))),
                     fp.str()});
    }
    std::cout << "busiest groups:\n" << groups.str();
  }
  std::ostringstream fp;
  fp << std::hex << serviceFingerprint(manager);
  std::cout << "service fingerprint: " << fp.str() << "\n";

  if (!result.converged()) {
    std::cerr << "NOT CONVERGED: " << result.degradedGroups
              << " degraded, " << result.inconsistentGroups
              << " inconsistent group(s)";
    if (!result.firstInconsistency.empty())
      std::cerr << " (" << result.firstInconsistency << ")";
    std::cerr << "\n";
    return 1;
  }
  std::cout << "CONVERGED: every group fully attached, every route table "
               "consistent\n";
  return 0;
}

int run(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: omtcli <generate|build|metrics|simulate|render|"
                 "chaos|churn|dataplane|serve> --flag value ...\n";
    return 2;
  }
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);

  const std::string tracePath = flags.get("trace", "");
  const std::string metricsPath = flags.get("metrics", "");
  if (!tracePath.empty() || !metricsPath.empty()) {
    OMT_CHECK(obs::compiledIn(),
              "--trace/--metrics need a build with OMT_OBS=ON");
    obs::setEnabled(true);
  }

  int rc = 2;
  if (command == "generate") rc = cmdGenerate(flags);
  else if (command == "build") rc = cmdBuild(flags);
  else if (command == "metrics") rc = cmdMetrics(flags);
  else if (command == "simulate") rc = cmdSimulate(flags);
  else if (command == "render") rc = cmdRender(flags);
  else if (command == "chaos") rc = cmdChaos(flags);
  else if (command == "churn") rc = cmdChurn(flags);
  else if (command == "dataplane") rc = cmdDataplane(flags);
  else if (command == "serve") rc = cmdServe(flags);
  else {
    std::cerr << "unknown command '" << command << "'\n";
    return 2;
  }

  if (!tracePath.empty()) {
    obs::TraceRecorder::global().writeChromeTraceFile(tracePath);
    std::cout << "trace written to " << tracePath << " ("
              << obs::TraceRecorder::global().eventCount() << " spans)\n";
  }
  if (!metricsPath.empty()) {
    std::ofstream out(metricsPath);
    OMT_CHECK(out.good(), "cannot open metrics file '" + metricsPath + "'");
    out << obs::MetricsRegistry::global().prometheusText();
    std::cout << "metrics written to " << metricsPath << "\n";
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
