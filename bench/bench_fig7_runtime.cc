// Reproduces Figure 7: algorithm running time vs n, including the paper's
// small-n insert. The shape to check is near-linear growth (the paper
// argues O(n) expected: one pass assigns points to cells, cells hold O(1)
// points on average, so bisection is O(1) per cell over O(n) cells).
// Absolute seconds differ from the paper's Pentium II, of course.
//
// Construction is timed with the parallel pipeline at its effective worker
// count (OMT_THREADS or auto; trials stay sequential by default so the
// timed seconds are honest). Besides the table/CSV, the run always writes
// BENCH_construction.json so successive PRs can track the perf trajectory:
//   {"bench": "fig7_construction", "rows": [{"n": ..., "seconds": ...,
//    "ns_per_node": ..., "threads": ..., "fast_math": 0|1}, ...]}
// --fast-math (or OMT_FAST_MATH=1) times the construction with the
// approximate kernel tier; --max-n 5000000 reaches the paper's largest size
// without the rest of the --full protocol.
#include "common.h"

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);

  std::cout << "Figure 7: running time vs n (out-degree 6)\n\n";
  TextTable table({"Nodes", "Seconds", "ns/node", "Threads", "vs-prev-row"});
  auto csv = openCsv(args, {"n", "seconds", "ns_per_node", "threads",
                            "scaling"});
  auto trialsCsv = openTrialsCsv(args);
  BenchJsonWriter json(benchOutputPath("BENCH_construction.json"),
                       "fig7_construction");

  double prevSeconds = 0.0;
  std::int64_t prevN = 0;
  for (const RowSpec& spec : tableOneSizes(args)) {
    const RowStats row = runRow(spec.n, spec.trials, 6, 2, 100, args.threads);
    appendTrialRows(trialsCsv.get(), row);
    const double seconds = row.seconds.mean();
    const double perNode = seconds / static_cast<double>(spec.n) * 1e9;
    // Linear scaling means time ratio ~ size ratio; report their quotient
    // (1.00 = perfectly linear step from the previous row).
    std::string scaling = "-";
    if (prevN > 0) {
      const double expected =
          prevSeconds * static_cast<double>(spec.n) / static_cast<double>(prevN);
      scaling = TextTable::num(seconds / expected, 2);
    }
    table.addRow({TextTable::count(spec.n), TextTable::num(seconds, 4),
                  TextTable::num(perNode, 0),
                  std::to_string(row.buildWorkers), scaling});
    if (csv) {
      csv->writeRow({std::to_string(spec.n), std::to_string(seconds),
                     std::to_string(perNode),
                     std::to_string(row.buildWorkers), scaling});
    }
    json.beginRow();
    json.field("n", spec.n);
    json.field("seconds", seconds);
    json.field("ns_per_node", perNode);
    json.field("threads", static_cast<std::int64_t>(row.buildWorkers));
    json.field("fast_math",
               static_cast<std::int64_t>(kernels::fast_math::enabled() ? 1 : 0));
    json.endRow();
    prevSeconds = seconds;
    prevN = spec.n;
  }
  json.close();
  maybeWriteMetricsSnapshot(benchOutputPath("BENCH_construction.metrics.json"));
  std::cout << table.str();
  std::cout << "\nShape check: ns/node stays roughly flat (near-linear "
               "runtime; paper Figure 7). Paper: 0.02s @ 1k, 2.0s @ 100k, "
               "23s @ 1M, 132s @ 5M on a Pentium II 400MHz.\n"
               "Thread sweep: rerun with OMT_THREADS=1 vs OMT_THREADS=8 to "
               "measure construction scaling (wrote "
               "BENCH_construction.json).\n";
  return 0;
}
