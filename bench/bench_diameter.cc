// Ablation for the minimum-diameter variant (Section VI): rooting the
// Polar_Grid tree at the host nearest the enclosing-sphere center versus
// rooting at an arbitrary (rim) host. Shape to check: the centered root
// approaches the certified pairwise-distance lower bound (factor -> 1 for
// uniform sphere points), while a rim root pays up to 2x; the diameter
// never exceeds twice the radius.
#include "common.h"
#include "omt/core/min_diameter.h"

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);
  const int trials = args.trials.value_or(args.full ? 20 : 5);
  const std::vector<std::int64_t> sizes =
      args.full ? std::vector<std::int64_t>{1000, 10000, 100000, 1000000}
                : std::vector<std::int64_t>{1000, 10000, 100000};

  std::cout << "Minimum-diameter variant (unit disk, out-degree 6)\n\n";
  TextTable table({"Nodes", "Diam(center)", "Diam(rim)", "LB", "center/LB",
                   "rim/LB", "Diam/2R"});
  auto csv = openCsv(args, {"n", "diam_center", "diam_rim", "lb",
                            "center_ratio", "rim_ratio", "diam_over_2r"});

  for (const std::int64_t n : sizes) {
    if (args.maxN && n > *args.maxN) continue;
    RunningStats center, rim, lb, diamOver2R;
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(deriveSeed(1100, static_cast<std::uint64_t>(n + trial)));
      const auto points = sampleDiskWithCenterSource(rng, n, 2);
      const MinDiameterResult centered = buildMinDiameterTree(points);
      center.add(centered.diameter);
      lb.add(centered.lowerBound);
      diamOver2R.add(centered.diameter / (2.0 * centered.radius));

      // Rim root: the farthest host from the disk center.
      NodeId rimHost = 0;
      double best = -1.0;
      for (std::size_t i = 0; i < points.size(); ++i) {
        if (norm(points[i]) > best) {
          best = norm(points[i]);
          rimHost = static_cast<NodeId>(i);
        }
      }
      const PolarGridResult cornered = buildPolarGridTree(points, rimHost);
      rim.add(diameter(cornered.tree, points));
    }
    table.addRow({TextTable::count(n), TextTable::num(center.mean(), 3),
                  TextTable::num(rim.mean(), 3), TextTable::num(lb.mean(), 3),
                  TextTable::num(center.mean() / lb.mean(), 3),
                  TextTable::num(rim.mean() / lb.mean(), 3),
                  TextTable::num(diamOver2R.mean(), 3)});
    if (csv) {
      csv->writeRow({std::to_string(n), std::to_string(center.mean()),
                     std::to_string(rim.mean()), std::to_string(lb.mean()),
                     std::to_string(center.mean() / lb.mean()),
                     std::to_string(rim.mean() / lb.mean()),
                     std::to_string(diamOver2R.mean())});
    }
  }
  std::cout << table.str();
  std::cout << "\nShape check: center/LB falls toward 1 with n; a rim root "
               "pays a ~3x factor; Diam/2R <= 1 always.\n";
  return 0;
}
