// Ablation: the generalised degree policy (Section IV-A extended to any
// cap D >= 2). Sweeps D and reports max delay and depth in 2D and 3D.
// Shape to check: delay decreases in D with diminishing returns once the
// bisection fan-out saturates at 2^d (D >= 2^d + 2); D = 2 pays roughly
// twice the overhead of the saturated policy (the doubled arc terms).
#include "common.h"

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);
  const std::int64_t n = args.maxN.value_or(args.full ? 200000 : 50000);
  const int trials = args.trials.value_or(args.full ? 20 : 5);

  std::cout << "Degree-policy ablation at n = " << TextTable::count(n)
            << " (" << trials << " trials)\n\n";
  auto csv = openCsv(args, {"dim", "degree", "delay", "overhead", "depth"});

  for (const int dim : {2, 3}) {
    TextTable table({"Degree", "FanOut", "Delay", "Overhead", "vs-D2",
                     "MaxDepth"});
    double overheadD2 = 0.0;
    for (const int degree : {2, 3, 4, 5, 6, 8, 10, 16}) {
      RunningStats delay;
      RunningStats depth;
      for (int trial = 0; trial < trials; ++trial) {
        Rng rng(deriveSeed(600 + static_cast<std::uint64_t>(dim),
                           static_cast<std::uint64_t>(trial)));
        const auto points = sampleDiskWithCenterSource(rng, n, dim);
        const auto result =
            buildPolarGridTree(points, 0, {.maxOutDegree = degree});
        const TreeMetrics m = computeMetrics(result.tree, points);
        delay.add(m.maxDelay);
        depth.add(static_cast<double>(m.maxDepth));
      }
      const double overhead = delay.mean() - 1.0;
      if (degree == 2) overheadD2 = overhead;
      table.addRow({std::to_string(degree),
                    std::to_string(cellBisectionFanOut(dim, degree)),
                    TextTable::num(delay.mean(), 3),
                    TextTable::num(overhead, 3),
                    TextTable::num(overhead / overheadD2, 2),
                    TextTable::num(depth.mean(), 1)});
      if (csv) {
        csv->writeRow({std::to_string(dim), std::to_string(degree),
                       std::to_string(delay.mean()), std::to_string(overhead),
                       std::to_string(depth.mean())});
      }
    }
    std::cout << "dimension " << dim << ":\n" << table.str() << "\n";
  }
  std::cout << "Shape check: overhead shrinks as D grows and saturates at "
               "D = 2^d + 2 (fan-out column stops growing); D = 2 pays "
               "about twice the saturated overhead.\n";
  return 0;
}
