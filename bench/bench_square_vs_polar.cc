// Ablation: the square (quadtree) variant of the Bisection algorithm vs
// the paper's polar version (Section II describes the polar one precisely
// because it plugs into the polar grid; it mentions the square version is
// easier to describe). Both are constant-factor; shapes to check: the two
// stay within a small factor of each other, with the square frame slightly
// ahead standalone (the polar version pays for its artificial far ring
// center; its real role is as the intra-cell subroutine of Polar_Grid,
// where the cell IS a ring segment).
#include "common.h"
#include "omt/bisection/bisection.h"
#include "omt/bisection/square_bisection.h"

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);
  const int trials = args.trials.value_or(args.full ? 50 : 10);

  std::cout << "Constant-factor bisection: polar vs square frames "
               "(max delay / instance lower bound)\n\n";
  TextTable table({"Workload", "Nodes", "Deg", "Polar", "Square",
                   "Square/Polar"});
  auto csv = openCsv(args, {"workload", "n", "degree", "polar", "square",
                            "ratio"});

  struct Workload {
    const char* name;
    int shape;
  };
  const Workload workloads[] = {{"disk", 0}, {"annulus", 1}, {"square", 2}};

  for (const Workload& w : workloads) {
    for (const std::int64_t n : {200LL, 2000LL, 20000LL}) {
      for (const int degree : {2, 4}) {
        RunningStats polar, square;
        for (int trial = 0; trial < trials; ++trial) {
          Rng rng(deriveSeed(1300 + static_cast<std::uint64_t>(w.shape * 10 +
                                                               degree),
                             static_cast<std::uint64_t>(n + trial)));
          std::vector<Point> points;
          if (w.shape == 0) {
            for (std::int64_t i = 0; i < n; ++i)
              points.push_back(sampleUnitBall(rng, 2));
          } else if (w.shape == 1) {
            points = sampleRegion(rng, n, Annulus(Point{0.0, 0.0}, 0.8, 1.0));
          } else {
            points = sampleRegion(
                rng, n, Box(Point{-1.0, -1.0}, Point{1.0, 1.0}));
          }
          const double lb = radiusLowerBound(points, 0);
          if (lb <= 1e-12) continue;
          polar.add(computeMetrics(
                        buildBisectionTree(points, 0, {.maxOutDegree = degree})
                            .tree,
                        points)
                        .maxDelay /
                    lb);
          square.add(
              computeMetrics(buildSquareBisectionTree(
                                 points, 0, {.maxOutDegree = degree})
                                 .tree,
                             points)
                  .maxDelay /
              lb);
        }
        table.addRow({w.name, TextTable::count(n), std::to_string(degree),
                      TextTable::num(polar.mean(), 3),
                      TextTable::num(square.mean(), 3),
                      TextTable::num(square.mean() / polar.mean(), 2)});
        if (csv) {
          csv->writeRow({w.name, std::to_string(n), std::to_string(degree),
                         std::to_string(polar.mean()),
                         std::to_string(square.mean()),
                         std::to_string(square.mean() / polar.mean())});
        }
      }
    }
  }
  std::cout << table.str();
  std::cout << "\nShape check: ratios stay within a small constant "
               "(square/polar ~ 0.7-1.0 -- the polar frame pays for its "
               "artificial far ring center when used standalone).\n";
  return 0;
}
