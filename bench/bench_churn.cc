// Extension bench: tree quality under sustained churn. Poisson arrivals
// with exponential or heavy-tailed (Pareto) lifetimes replayed through the
// online session at several churn intensities. Shape to check: the sampled
// radius/lower-bound ratio stays bounded (no quality collapse) across
// intensities and tail shapes, and control cost per operation stays flat.
#include "common.h"
#include "omt/protocol/churn.h"

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);
  const double duration = args.full ? 120.0 : 40.0;

  std::cout << "Churn replay through the online session (out-degree 6)\n\n";
  TextTable table({"Arrivals/s", "Lifetime", "Tail", "PeakLive", "Joins",
                   "Leaves", "Crashes", "R/LB mean", "R/LB max",
                   "Contacts/op"});
  auto csv = openCsv(args, {"rate", "lifetime", "tail", "peak", "joins",
                            "leaves", "crashes", "ratio_mean", "ratio_max",
                            "contacts_per_op"});

  for (const double rate : {20.0, 80.0, 320.0}) {
    for (const double shape : {0.0, 1.5}) {
      ChurnTraceOptions options;
      options.arrivalRate = rate;
      options.meanLifetime = 5.0;
      options.paretoShape = shape;
      options.crashFraction = 0.25;  // a quarter of departures are silent
      options.duration = duration;
      options.seed = deriveSeed(1400, static_cast<std::uint64_t>(rate) +
                                          static_cast<std::uint64_t>(shape));
      const auto trace = generateChurnTrace(options);
      const ChurnReplayResult result =
          replayChurnTrace(trace, 2, {.maxOutDegree = 6}, 20);
      const double ops = static_cast<double>(result.joins + result.leaves +
                                             result.crashes);
      table.addRow(
          {TextTable::num(rate, 0), TextTable::num(options.meanLifetime, 1),
           shape == 0.0 ? "exp" : "pareto",
           TextTable::count(result.peakLive), TextTable::count(result.joins),
           TextTable::count(result.leaves), TextTable::count(result.crashes),
           TextTable::num(result.radiusOverLowerBound.mean(), 3),
           TextTable::num(result.radiusOverLowerBound.max(), 3),
           TextTable::num(
               static_cast<double>(result.sessionStats.contactCost) / ops,
               1)});
      if (csv) {
        csv->writeRow({std::to_string(rate),
                       std::to_string(options.meanLifetime),
                       shape == 0.0 ? "exp" : "pareto",
                       std::to_string(result.peakLive),
                       std::to_string(result.joins),
                       std::to_string(result.leaves),
                       std::to_string(result.crashes),
                       std::to_string(result.radiusOverLowerBound.mean()),
                       std::to_string(result.radiusOverLowerBound.max()),
                       std::to_string(
                           static_cast<double>(
                               result.sessionStats.contactCost) /
                           ops)});
      }
    }
  }
  std::cout << table.str();
  std::cout << "\nShape check: R/LB stays bounded (< 4) at every intensity "
               "and tail, improving as the live population grows; "
               "Contacts/op grows only mildly with the rate.\n";
  return 0;
}
