// Extension bench: tree quality under sustained churn.
//
// Default mode — Poisson arrivals with exponential or heavy-tailed
// (Pareto) lifetimes replayed through the online session at several churn
// intensities. Shape to check: the sampled radius/lower-bound ratio stays
// bounded (no quality collapse) across intensities and tail shapes, and
// control cost per operation stays flat. The Contacts/op denominator
// counts every operation the protocol actually performed: joins, leaves,
// crashes, AND the orphan re-homings done by detectAndRepair() sweeps
// (repairs used to be omitted, understating cost under high crash
// fractions).
//
// --steady-state — the sustained-load mode (ISSUE 6): sharded incremental
// sessions held at a stationary population under join/leave/crash churn
// with the radius watchdog in the loop, auditing invariants every sweep.
// Emits BENCH_churn.json with per-sweep radius-drift and per-event
// tail-latency curves, prints aggregate events/s, and exits non-zero when
// the invariant verdict, the escalation-monotonicity verdict, the ratio
// bound (vs. a fresh static build), or --min-events-per-sec fails.
#include "common.h"
#include "omt/fault/steady_churn.h"
#include "omt/protocol/churn.h"

namespace {

using namespace omt;
using namespace omt::bench;

int runSteadyState(const Args& args) {
  const int shards =
      args.shards.value_or(0) > 0 ? *args.shards : resolveWorkers(0);
  const std::int64_t totalEvents =
      args.events.value_or(args.full ? 2000000 : 400000);
  const std::int64_t eventsPerShard =
      std::max<std::int64_t>(1, totalEvents / shards);

  // Quality yardstick: what a fresh static Polar_Grid build achieves on a
  // same-scale membership (source at the center, same sampler family).
  SteadyChurnOptions base;
  base.warmupHosts = 1024;
  base.sweepEvery = 512;
  base.crashFraction = 0.25;
  base.events = eventsPerShard;
  Rng baselineRng(deriveSeed(args.seed, 0xbabe));
  const std::vector<Point> baselinePoints = sampleDiskWithCenterSource(
      baselineRng, base.warmupHosts, base.dim);
  const double staticRatio =
      staticRadiusRatio(baselinePoints, 0, base.session.maxOutDegree);

  std::cout << "Steady-state churn: " << shards << " shards x "
            << eventsPerShard << " events (warmup " << base.warmupHosts
            << ", sweep every " << base.sweepEvery << ", static R/LB "
            << staticRatio << ")\n\n";

  std::vector<SteadyChurnResult> results(static_cast<std::size_t>(shards));
  Stopwatch watch;
  parallelFor(0, shards, shards, [&](std::int64_t shard) {
    SteadyChurnOptions options = base;
    options.seed = deriveSeed(args.seed, static_cast<std::uint64_t>(shard));
    options.baselineRatio = staticRatio;
    results[static_cast<std::size_t>(shard)] = runSteadyChurn(options);
  });
  const double elapsed = watch.seconds();

  BenchJsonWriter json(benchOutputPath("BENCH_churn.json"), "churn_steady");
  std::int64_t events = 0;
  std::int64_t parkedJoins = 0;
  std::int64_t unrepaired = 0;
  double maxRatio = 0.0;
  double maxP99 = 0.0;
  RunningStats ratio;
  bool ok = true;
  bool monotone = true;
  for (int shard = 0; shard < shards; ++shard) {
    const SteadyChurnResult& r = results[static_cast<std::size_t>(shard)];
    events += r.events;
    parkedJoins += r.parkedJoins;
    unrepaired += r.unrepairedOrphans;
    maxRatio = std::max(maxRatio, r.maxRatio);
    ratio.merge(r.radiusRatio);
    ok = ok && r.ok;
    monotone = monotone && r.escalationMonotone;
    if (!r.ok) {
      std::cerr << "shard " << shard << " invariant violation: "
                << r.firstViolation << "\n";
    }
    for (const SteadySweepSample& s : r.sweepLog) {
      maxP99 = std::max(maxP99, s.p99Latency);
      json.beginRow();
      json.field("shard", static_cast<std::int64_t>(shard));
      json.field("events_done", s.eventsDone);
      json.field("live", s.liveCount);
      json.field("radius_ratio", s.radiusRatio);
      json.field("max_skew", s.maxSkew);
      json.field("p50_latency_us", s.p50Latency * 1e6);
      json.field("p99_latency_us", s.p99Latency * 1e6);
      json.field("max_latency_us", s.maxLatency * 1e6);
      json.field("mode", std::string(toString(s.mode)));
      json.field("action", std::string(toString(s.action)));
      json.endRow();
    }
  }
  const double eventsPerSec =
      elapsed > 0.0 ? static_cast<double>(events) / elapsed : 0.0;
  // Bound asserted by the gate: the worst sampled post-sweep ratio stays
  // within a constant factor of the static build (floored so a tiny
  // static ratio cannot make small-population noise fail the gate).
  const double ratioBound = std::max(4.0 * staticRatio, 8.0);
  const bool ratioOk = maxRatio <= ratioBound;
  json.topLevel("shards", static_cast<double>(shards));
  json.topLevel("events", static_cast<double>(events));
  json.topLevel("elapsed_seconds", elapsed);
  json.topLevel("events_per_second", eventsPerSec);
  json.topLevel("parked_joins", static_cast<double>(parkedJoins));
  json.topLevel("static_radius_ratio", staticRatio);
  json.topLevel("mean_radius_ratio", ratio.count() > 0 ? ratio.mean() : 0.0);
  json.topLevel("max_radius_ratio", maxRatio);
  json.topLevel("radius_ratio_bound", ratioBound);
  json.topLevel("max_p99_latency_us", maxP99 * 1e6);
  json.topLevel("invariants_ok", ok ? 1.0 : 0.0);
  json.topLevel("escalation_monotone", monotone ? 1.0 : 0.0);
  json.topLevel("unrepaired_orphans", static_cast<double>(unrepaired));
  json.close();
  maybeWriteMetricsSnapshot(benchOutputPath("BENCH_churn_metrics.json"));

  std::cout << "events            " << events << "\n"
            << "elapsed           " << elapsed << " s\n"
            << "events/s          " << eventsPerSec << "\n"
            << "parked joins      " << parkedJoins << "\n"
            << "R/LB mean         " << (ratio.count() > 0 ? ratio.mean() : 0.0)
            << "\n"
            << "R/LB max          " << maxRatio << "  (bound " << ratioBound
            << ", static " << staticRatio << ")\n"
            << "p99 latency       " << maxP99 * 1e6 << " us (worst window)\n"
            << "invariants        " << (ok ? "ok" : "VIOLATED") << "\n"
            << "escalation        " << (monotone ? "monotone" : "NON-MONOTONE")
            << "\n"
            << "unrepaired        " << unrepaired << "\n";

  bool pass = ok && monotone && ratioOk && unrepaired == 0;
  if (args.minEventsPerSec > 0.0 && eventsPerSec < args.minEventsPerSec) {
    std::cerr << "FAIL: " << eventsPerSec << " events/s below the required "
              << args.minEventsPerSec << "\n";
    pass = false;
  }
  if (!ratioOk) {
    std::cerr << "FAIL: max R/LB " << maxRatio << " exceeds the bound "
              << ratioBound << "\n";
  }
  return pass ? 0 : 1;
}

int runReplayTable(const Args& args) {
  const double duration = args.full ? 120.0 : 40.0;

  std::cout << "Churn replay through the online session (out-degree 6)\n\n";
  TextTable table({"Arrivals/s", "Lifetime", "Tail", "PeakLive", "Joins",
                   "Leaves", "Crashes", "Repairs", "R/LB mean", "R/LB max",
                   "Contacts/op"});
  auto csv = openCsv(args, {"rate", "lifetime", "tail", "peak", "joins",
                            "leaves", "crashes", "repairs", "ratio_mean",
                            "ratio_max", "contacts_per_op"});

  for (const double rate : {20.0, 80.0, 320.0}) {
    for (const double shape : {0.0, 1.5}) {
      ChurnTraceOptions options;
      options.arrivalRate = rate;
      options.meanLifetime = 5.0;
      options.paretoShape = shape;
      options.crashFraction = 0.25;  // a quarter of departures are silent
      options.duration = duration;
      options.seed = deriveSeed(1400, static_cast<std::uint64_t>(rate) +
                                          static_cast<std::uint64_t>(shape));
      const auto trace = generateChurnTrace(options);
      const ChurnReplayResult result =
          replayChurnTrace(trace, 2, {.maxOutDegree = 6}, 20);
      // Every operation the protocol performed: membership events plus the
      // orphan re-homings done by the repair sweeps.
      const double ops = static_cast<double>(result.joins + result.leaves +
                                             result.crashes +
                                             result.repairedSubtrees);
      table.addRow(
          {TextTable::num(rate, 0), TextTable::num(options.meanLifetime, 1),
           shape == 0.0 ? "exp" : "pareto",
           TextTable::count(result.peakLive), TextTable::count(result.joins),
           TextTable::count(result.leaves), TextTable::count(result.crashes),
           TextTable::count(result.repairedSubtrees),
           TextTable::num(result.radiusOverLowerBound.mean(), 3),
           TextTable::num(result.radiusOverLowerBound.max(), 3),
           TextTable::num(
               static_cast<double>(result.sessionStats.contactCost) / ops,
               1)});
      if (csv) {
        csv->writeRow({std::to_string(rate),
                       std::to_string(options.meanLifetime),
                       shape == 0.0 ? "exp" : "pareto",
                       std::to_string(result.peakLive),
                       std::to_string(result.joins),
                       std::to_string(result.leaves),
                       std::to_string(result.crashes),
                       std::to_string(result.repairedSubtrees),
                       std::to_string(result.radiusOverLowerBound.mean()),
                       std::to_string(result.radiusOverLowerBound.max()),
                       std::to_string(
                           static_cast<double>(
                               result.sessionStats.contactCost) /
                           ops)});
      }
    }
  }
  std::cout << table.str();
  std::cout << "\nShape check: R/LB stays bounded (< 4) at every intensity "
               "and tail, improving as the live population grows; "
               "Contacts/op grows only mildly with the rate.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parseArgs(argc, argv);
  if (args.steadyState) return runSteadyState(args);
  return runReplayTable(args);
}
