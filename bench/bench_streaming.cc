// Motivation bench: continuous-stream sustainability across degree caps.
// With a fixed uplink (transmission slot s per child per message), a tree
// of max out-degree D sustains message intervals >= D * s; the star needs
// (n-1) * s. Shape to check: the sustainable rate is exactly 1/(D * s);
// below it, steady-state delay is flat (the single-shot serialized delay);
// above it, backlog grows linearly — the bandwidth constraint the paper
// encodes as the degree cap.
#include "common.h"
#include "omt/baselines/baselines.h"
#include "omt/sim/streaming.h"

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);
  const std::int64_t n = args.maxN.value_or(args.full ? 20000 : 5000);
  const double slot = 0.02;  // uplink time per child per message

  Rng rng(deriveSeed(1900, 0));
  const auto points = sampleDiskWithCenterSource(rng, n, 2);

  std::cout << "Streaming sustainability at n = " << TextTable::count(n)
            << ", uplink slot " << slot << " per child-send\n\n";
  TextTable table({"Tree", "Bottleneck", "Interval", "Sustainable",
                   "FirstMsgDelay", "LastMsgDelay", "Backlog/msg"});
  auto csv = openCsv(args, {"tree", "bottleneck", "interval", "sustainable",
                            "first", "last", "growth"});

  struct Config {
    std::string name;
    int degree;  // 0 = star
  };
  const Config configs[] = {
      {"star", 0}, {"polar D=16", 16}, {"polar D=6", 6}, {"polar D=2", 2}};

  for (const Config& config : configs) {
    const MulticastTree tree =
        config.degree == 0
            ? buildStarTree(points, 0)
            : buildPolarGridTree(points, 0, {.maxOutDegree = config.degree})
                  .tree;
    // Probe two rates: comfortably below and above D * slot.
    for (const double factor : {1.5, 0.75}) {
      std::int32_t maxDegree = 0;
      for (NodeId v = 0; v < tree.size(); ++v)
        maxDegree = std::max(maxDegree, tree.outDegree(v));
      StreamOptions options;
      options.transmissionTime = slot;
      options.messageInterval = factor * maxDegree * slot;
      options.messageCount = 40;
      const StreamResult result = simulateStream(tree, points, options);
      table.addRow({config.name, TextTable::num(result.bottleneckLoad, 2),
                    TextTable::num(options.messageInterval, 3),
                    result.sustainable ? "yes" : "NO",
                    TextTable::num(result.firstMessageMaxDelay, 3),
                    TextTable::num(result.lastMessageMaxDelay, 3),
                    TextTable::num(result.backlogGrowthPerMessage, 3)});
      if (csv) {
        csv->writeRow({config.name, std::to_string(result.bottleneckLoad),
                       std::to_string(options.messageInterval),
                       result.sustainable ? "yes" : "no",
                       std::to_string(result.firstMessageMaxDelay),
                       std::to_string(result.lastMessageMaxDelay),
                       std::to_string(result.backlogGrowthPerMessage)});
      }
    }
  }
  std::cout << table.str();
  std::cout << "\nShape check: Backlog/msg ~ 0 whenever Interval >= "
               "Bottleneck and positive otherwise; bounded-degree trees "
               "sustain intervals the star cannot, at far lower "
               "first-message delay than the chain would give.\n";
  return 0;
}
