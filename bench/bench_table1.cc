// Reproduces Table I: for each problem size, average ring count, core
// delay, max delay, its deviation, the eq. (7) bound at j = 0 and the
// build time, for out-degree 6 and out-degree 2 trees on the unit disk.
//
// Paper reference values (200 trials, Pentium II 400 MHz):
//   n=1,000:   deg6 delay 1.302, bound 4.09;  deg2 delay 1.622, bound 5.66
//   n=100,000: deg6 delay 1.034, bound 1.43;  deg2 delay 1.067, bound 1.63
//   n=5,000,000: deg6 delay 1.005, bound 1.08; deg2 delay 1.009, bound 1.11
// Absolute CPU seconds differ (different hardware); the shape to check is
// delay -> 1, bound tightening, and near-linear runtime.
#include "common.h"

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);
  const auto rows = tableOneSizes(args);

  std::cout << "Table I: overlay multicast trees on the unit disk "
               "(averages over per-row trials)\n\n";
  TextTable table({"Nodes", "Trials", "Rings", "Core6", "Delay6", "Dev6",
                   "Bound6", "Sec6", "Core2", "Delay2", "Dev2", "Bound2",
                   "Sec2"});
  auto csv = openCsv(args, {"n", "trials", "rings", "core6", "delay6", "dev6",
                            "bound6", "sec6", "core2", "delay2", "dev2",
                            "bound2", "sec2"});

  auto trialsCsv = openTrialsCsv(args);
  for (const RowSpec& spec : rows) {
    const RowStats deg6 = runRow(spec.n, spec.trials, 6, 2, 100, args.threads);
    const RowStats deg2 = runRow(spec.n, spec.trials, 2, 2, 200, args.threads);
    appendTrialRows(trialsCsv.get(), deg6);
    appendTrialRows(trialsCsv.get(), deg2);
    table.addRow({TextTable::count(spec.n), TextTable::count(spec.trials),
                  TextTable::num(deg6.rings.mean(), 2),
                  TextTable::num(deg6.core.mean(), 2),
                  TextTable::num(deg6.delay.mean(), 3),
                  TextTable::num(deg6.delay.populationStddev(), 2),
                  TextTable::num(deg6.bound.mean(), 2),
                  TextTable::num(deg6.seconds.mean(), 4),
                  TextTable::num(deg2.core.mean(), 2),
                  TextTable::num(deg2.delay.mean(), 3),
                  TextTable::num(deg2.delay.populationStddev(), 2),
                  TextTable::num(deg2.bound.mean(), 2),
                  TextTable::num(deg2.seconds.mean(), 4)});
    if (csv) {
      csv->writeRow({std::to_string(spec.n), std::to_string(spec.trials),
                     std::to_string(deg6.rings.mean()),
                     std::to_string(deg6.core.mean()),
                     std::to_string(deg6.delay.mean()),
                     std::to_string(deg6.delay.populationStddev()),
                     std::to_string(deg6.bound.mean()),
                     std::to_string(deg6.seconds.mean()),
                     std::to_string(deg2.core.mean()),
                     std::to_string(deg2.delay.mean()),
                     std::to_string(deg2.delay.populationStddev()),
                     std::to_string(deg2.bound.mean()),
                     std::to_string(deg2.seconds.mean())});
    }
    // Stream rows as they complete (large sizes take a while).
    std::cout << "  completed n = " << TextTable::count(spec.n) << "\n";
  }
  std::cout << "\n" << table.str();
  std::cout << "\nPaper Table I (for comparison, deg6/deg2 delay): "
               "n=1k: 1.302/1.622, n=10k: 1.102/1.202, n=100k: 1.034/1.067, "
               "n=1M: 1.012/1.022, n=5M: 1.005/1.009\n";
  return 0;
}
