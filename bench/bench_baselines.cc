// Comparison against the related-work heuristics the paper cites: greedy
// compact-tree insertion (Shi & Turner), Bandwidth-Latency (Chu et al.),
// degree-constrained nearest parent, a random feasible tree, and the
// degree-unconstrained star (whose radius IS the instance lower bound).
// The shape to check: Polar_Grid dominates every degree-bounded baseline
// at scale and approaches the star's radius, while running in O(n) instead
// of the baselines' O(n^2).
#include "common.h"
#include "omt/baselines/baselines.h"
#include "omt/baselines/delaunay.h"

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);
  const std::vector<std::int64_t> sizes =
      args.full ? std::vector<std::int64_t>{500, 2000, 10000, 30000}
                : std::vector<std::int64_t>{500, 2000, 10000};
  const int trials = args.trials.value_or(args.full ? 20 : 5);

  std::cout << "Baseline comparison on the unit disk (radius = max "
               "sender-to-receiver delay; lower is better)\n\n";

  for (const int degree : {6, 2}) {
    TextTable table({"Nodes", "PolarGrid", "Greedy", "BW-Lat", "Nearest",
                     "Delaunay", "HMTP", "Layered", "Random", "Star(LB)",
                     "PG sec", "Greedy sec"});
    for (const std::int64_t n : sizes) {
      RunningStats polar, greedy, bwlat, nearest, delaunay, hmtp, layered,
          random, star;
      RunningStats polarSec, greedySec;
      for (int trial = 0; trial < trials; ++trial) {
        Rng rng(deriveSeed(500 + static_cast<std::uint64_t>(degree),
                           static_cast<std::uint64_t>(n * 100 + trial)));
        const auto points = sampleDiskWithCenterSource(rng, n, 2);
        Stopwatch pgWatch;
        const auto pg = buildPolarGridTree(points, 0, {.maxOutDegree = degree});
        polarSec.add(pgWatch.seconds());
        polar.add(computeMetrics(pg.tree, points).maxDelay);
        Stopwatch gWatch;
        const auto g = buildGreedyInsertionTree(points, 0, degree);
        greedySec.add(gWatch.seconds());
        greedy.add(computeMetrics(g, points).maxDelay);
        Rng joinRng(deriveSeed(777, static_cast<std::uint64_t>(trial)));
        bwlat.add(computeMetrics(
            buildBandwidthLatencyTree(points, 0, degree, joinRng), points)
                      .maxDelay);
        nearest.add(computeMetrics(buildNearestParentTree(points, 0, degree),
                                   points)
                        .maxDelay);
        // Degree-unconstrained locality baseline (paper ref [10]).
        delaunay.add(computeMetrics(buildDelaunayCompassTree(points, 0),
                                    points)
                         .maxDelay);
        hmtp.add(computeMetrics(buildHmtpTree(points, 0, degree, joinRng),
                                points)
                     .maxDelay);
        layered.add(computeMetrics(buildLayeredTree(points, 0, degree),
                                   points)
                        .maxDelay);
        random.add(computeMetrics(
            buildRandomFeasibleTree(points, 0, degree, joinRng), points)
                       .maxDelay);
        star.add(computeMetrics(buildStarTree(points, 0), points).maxDelay);
      }
      table.addRow({TextTable::count(n), TextTable::num(polar.mean(), 3),
                    TextTable::num(greedy.mean(), 3),
                    TextTable::num(bwlat.mean(), 3),
                    TextTable::num(nearest.mean(), 3),
                    TextTable::num(delaunay.mean(), 3),
                    TextTable::num(hmtp.mean(), 3),
                    TextTable::num(layered.mean(), 3),
                    TextTable::num(random.mean(), 3),
                    TextTable::num(star.mean(), 3),
                    TextTable::num(polarSec.mean(), 4),
                    TextTable::num(greedySec.mean(), 4)});
    }
    std::cout << "out-degree cap " << degree << ":\n" << table.str() << "\n";
  }
  std::cout << "Shape check: PolarGrid < BW-Lat/Nearest/Random everywhere "
               "and approaches Star(LB) as n grows; Greedy is competitive "
               "at small n but costs O(n^2) (see the sec columns).\n";
  return 0;
}
