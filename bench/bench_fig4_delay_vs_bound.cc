// Reproduces Figure 4: average max delay vs the eq. (7) bound and the core
// delay for out-degree 6 trees, log-scale in n. The shape to check: the
// bound over-estimates heavily at small n and tightens as n grows; the gap
// between core and total delay persists (it depends on the outermost-ring
// cell size, which is constant in n).
#include "common.h"

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);

  std::cout << "Figure 4: delay vs bound vs core delay (out-degree 6)\n\n";
  TextTable table({"Nodes", "CoreDelay", "MaxDelay", "Bound(7)",
                   "Bound/Delay", "Delay-Core"});
  auto csv = openCsv(args, {"n", "core", "delay", "bound", "bound_over_delay",
                            "delay_minus_core"});

  auto trialsCsv = openTrialsCsv(args);
  for (const RowSpec& spec : tableOneSizes(args)) {
    const RowStats row = runRow(spec.n, spec.trials, 6, 2, 100, args.threads);
    appendTrialRows(trialsCsv.get(), row);
    table.addRow({TextTable::count(spec.n),
                  TextTable::num(row.core.mean(), 3),
                  TextTable::num(row.delay.mean(), 3),
                  TextTable::num(row.bound.mean(), 3),
                  TextTable::num(row.bound.mean() / row.delay.mean(), 2),
                  TextTable::num(row.delay.mean() - row.core.mean(), 3)});
    if (csv) {
      csv->writeRow({std::to_string(spec.n), std::to_string(row.core.mean()),
                     std::to_string(row.delay.mean()),
                     std::to_string(row.bound.mean()),
                     std::to_string(row.bound.mean() / row.delay.mean()),
                     std::to_string(row.delay.mean() - row.core.mean())});
    }
  }
  std::cout << table.str();
  std::cout << "\nShape check: Bound/Delay falls toward 1 as n grows; "
               "Delay-Core stays roughly constant (outermost-ring width).\n";
  return 0;
}
