// Empirical check of Theorem 1: the standalone Bisection algorithm on its
// tight covering ring segment stays within factor 5 of the lower bound for
// out-degree 4 and factor 9 for out-degree 2 — and in practice far below.
// Reports the worst observed delay/lower-bound ratio over many random
// configurations (uniform, clustered, annular, collinear-ish).
#include "common.h"
#include "omt/bisection/bisection.h"

namespace {

using namespace omt;

std::vector<Point> makeConfig(Rng& rng, int shape, std::int64_t n) {
  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(n));
  switch (shape) {
    case 0:  // uniform disk
      for (std::int64_t i = 0; i < n; ++i)
        points.push_back(sampleUnitBall(rng, 2) * 2.0);
      break;
    case 1: {  // tight clusters
      const Ball disk(Point{0.0, 0.0}, 2.0);
      points = sampleClustered(rng, n, disk, 3, 0.9, 0.05);
      break;
    }
    case 2: {  // annulus (hollow middle)
      const Annulus ring(Point{0.0, 0.0}, 1.0, 2.0);
      points = sampleRegion(rng, n, ring);
      break;
    }
    default:  // nearly collinear strip
      for (std::int64_t i = 0; i < n; ++i)
        points.push_back(Point{rng.uniform(-2.0, 2.0),
                               rng.uniform(-0.01, 0.01)});
      break;
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);
  const int trialsPerCell = args.full ? 200 : 40;

  std::cout << "Theorem 1 check: bisection delay vs lower bound on the "
               "covering segment\n\n";
  omt::TextTable table({"Shape", "Nodes", "Deg", "MaxRatio", "MeanRatio",
                        "Theorem"});
  auto csv = openCsv(args, {"shape", "n", "degree", "max_ratio", "mean_ratio",
                            "theorem_bound"});
  const char* shapeNames[] = {"uniform", "clustered", "annulus", "collinear"};

  for (int shape = 0; shape < 4; ++shape) {
    for (const std::int64_t n : {10LL, 100LL, 1000LL}) {
      for (const int degree : {4, 2}) {
        omt::RunningStats ratio;
        for (int trial = 0; trial < trialsPerCell; ++trial) {
          omt::Rng rng(omt::deriveSeed(
              9000 + static_cast<std::uint64_t>(shape * 10 + degree),
              static_cast<std::uint64_t>(n * 1000 + trial)));
          const auto points = makeConfig(rng, shape, n);
          const omt::BisectionTreeResult result =
              omt::buildBisectionTree(points, 0, {.maxOutDegree = degree});
          if (result.lowerBound <= 1e-9) continue;
          const omt::TreeMetrics m =
              omt::computeMetrics(result.tree, points);
          ratio.add(m.maxDelay / result.lowerBound);
        }
        const double theorem = degree >= 4 ? 5.0 : 9.0;
        table.addRow({shapeNames[shape], omt::TextTable::count(n),
                      std::to_string(degree),
                      omt::TextTable::num(ratio.max(), 3),
                      omt::TextTable::num(ratio.mean(), 3),
                      omt::TextTable::num(theorem, 0)});
        if (csv) {
          csv->writeRow({shapeNames[shape], std::to_string(n),
                         std::to_string(degree), std::to_string(ratio.max()),
                         std::to_string(ratio.mean()),
                         std::to_string(theorem)});
        }
        if (ratio.max() > theorem) {
          std::cerr << "THEOREM 1 VIOLATED: ratio " << ratio.max() << " > "
                    << theorem << "\n";
          return 1;
        }
      }
    }
  }
  std::cout << table.str();
  std::cout << "\nShape check: every MaxRatio is below its Theorem column "
               "(5 for out-degree 4, 9 for out-degree 2).\n";
  return 0;
}
