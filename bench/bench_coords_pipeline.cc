// Extension bench (the paper's stated future work): how mapping error
// affects tree quality. Hidden host positions generate "true" delays with
// lognormal stretch noise; GNP- and Vivaldi-style embeddings recover
// coordinates from the delays; Polar_Grid builds trees on the recovered
// coordinates; everything is evaluated on the TRUE delays. Shape to check:
// tree quality degrades gracefully with embedding error, and trees on
// recovered coordinates stay close to trees on the hidden truth.
#include "common.h"
#include "omt/coords/embedding.h"

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);
  const std::int64_t n = args.maxN.value_or(args.full ? 600 : 250);
  const int trials = args.trials.value_or(args.full ? 10 : 3);

  std::cout << "Mapping-error pipeline at n = " << n << " (" << trials
            << " trials): true delays -> embedding -> Polar_Grid -> "
               "true-delay radius\n\n";
  TextTable table({"Noise", "EmbErr(GNP)", "EmbErr(Viv)", "R(truth)",
                   "R(GNP)", "R(Viv)", "R(LB)"});
  auto csv = openCsv(args, {"sigma", "gnp_err", "viv_err", "radius_truth",
                            "radius_gnp", "radius_viv", "radius_lb"});

  for (const double sigma : {0.0, 0.1, 0.2, 0.4}) {
    RunningStats gnpErr, vivErr, rTruth, rGnp, rViv, rLb;
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(deriveSeed(700, static_cast<std::uint64_t>(trial)));
      const auto hidden = sampleDiskWithCenterSource(rng, n, 2);
      const NoisyEuclideanDelayModel model(
          hidden, 0.0, sigma, 0.0,
          deriveSeed(701, static_cast<std::uint64_t>(trial)));

      if (trial == 0) {
        const TriangleViolationStats tiv =
            measureTriangleViolations(model, 20000, 17);
        std::cout << "  sigma " << sigma << ": triangle violations "
                  << TextTable::num(100.0 * tiv.violatingFraction, 1)
                  << "% of triples, mean severity "
                  << TextTable::num(tiv.meanSeverity, 3) << "\n";
      }
      GnpOptions gnp;
      gnp.dim = 2;
      gnp.landmarks = 16;
      gnp.seed = deriveSeed(702, static_cast<std::uint64_t>(trial));
      const EmbeddingResult gnpResult = embedGnp(model, gnp);
      gnpErr.add(embeddingError(model, gnpResult.coords, 20000, 7).medianRelative);

      VivaldiOptions viv;
      viv.dim = 2;
      viv.rounds = 60;
      viv.seed = deriveSeed(703, static_cast<std::uint64_t>(trial));
      const EmbeddingResult vivResult = embedVivaldi(model, viv);
      vivErr.add(embeddingError(model, vivResult.coords, 20000, 8).medianRelative);

      const auto onTruth = buildPolarGridTree(hidden, 0, {.maxOutDegree = 6});
      const auto onGnp =
          buildPolarGridTree(gnpResult.coords, 0, {.maxOutDegree = 6});
      const auto onViv =
          buildPolarGridTree(vivResult.coords, 0, {.maxOutDegree = 6});
      rTruth.add(evaluateUnderModel(onTruth.tree, model).maxDelay);
      rGnp.add(evaluateUnderModel(onGnp.tree, model).maxDelay);
      rViv.add(evaluateUnderModel(onViv.tree, model).maxDelay);
      double lb = 0.0;
      for (NodeId v = 1; v < model.size(); ++v)
        lb = std::max(lb, model.delay(0, v));
      rLb.add(lb);
    }
    table.addRow({TextTable::num(sigma, 2), TextTable::num(gnpErr.mean(), 3),
                  TextTable::num(vivErr.mean(), 3),
                  TextTable::num(rTruth.mean(), 3),
                  TextTable::num(rGnp.mean(), 3),
                  TextTable::num(rViv.mean(), 3),
                  TextTable::num(rLb.mean(), 3)});
    if (csv) {
      csv->writeRow({std::to_string(sigma), std::to_string(gnpErr.mean()),
                     std::to_string(vivErr.mean()),
                     std::to_string(rTruth.mean()),
                     std::to_string(rGnp.mean()), std::to_string(rViv.mean()),
                     std::to_string(rLb.mean())});
    }
  }
  std::cout << table.str();
  std::cout << "\nShape check: embedding error grows with the noise sigma; "
               "tree radii on recovered coordinates track the truth-built "
               "radius and degrade gracefully, staying well above R(LB).\n";
  return 0;
}
