// Extension bench (the paper's stated future work): how mapping error
// affects tree quality. Hidden host positions generate "true" delays with
// lognormal stretch noise; GNP- and Vivaldi-style embeddings recover
// coordinates from the delays; Polar_Grid builds trees on the recovered
// coordinates; everything is evaluated on the TRUE delays. Shape to check:
// tree quality degrades gracefully with embedding error, and trees on
// recovered coordinates stay close to trees on the hidden truth.
//
// The run also times the batched coordinate kernels (omt/kernels) against
// the scalar point -> cell pipeline they replace — single-threaded, with
// bitwise verification of the outputs — and writes the breakdown to
// BENCH_kernels.json at the repo root. --kernels-only runs just that
// section (the CI perf-smoke mode); --enforce-kernel-speedup exits
// non-zero if the kernel path is >10% slower than the scalar path.
#include <bit>
#include <cmath>

#include "common.h"
#include "omt/coords/embedding.h"
#include "omt/geometry/sin_power_integral.h"
#include "omt/grid/polar_grid.h"
#include "omt/kernels/kernels.h"
#include "omt/kernels/polar_batch.h"
#include "omt/kernels/sin_power_table.h"
#include "omt/parallel/scratch_arena.h"

namespace omt::bench {
namespace {

struct KernelTimes {
  double scalarPolar = 0.0;
  double kernelPolar = 0.0;
  double scalarClassify = 0.0;
  double kernelClassify = 0.0;
  double scalarTotal() const { return scalarPolar + scalarClassify; }
  double kernelTotal() const { return kernelPolar + kernelClassify; }
};

/// Single-threaded A/B of the point -> cell pipeline at dimension `dim`:
/// scalar (toPolar + ringOf/cellOf per point) vs batched kernels
/// (polarOfPointsBatch + ringCellBatch over SoA lanes). Outputs are
/// verified bitwise identical before any number is reported.
KernelTimes timePointToCell(std::int64_t n, int dim, int repeats,
                            BenchJsonWriter& json) {
  Rng rng(deriveSeed(7100, static_cast<std::uint64_t>(dim)));
  const std::vector<Point> points = sampleDiskWithCenterSource(rng, n, dim);
  const Point& origin = points[0];
  const auto un = static_cast<std::size_t>(n);

  // --- scalar pass 1: polar conversion ------------------------------------
  std::vector<PolarCoords> scalarPolar(un);
  KernelTimes times;
  double maxRadius = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch watch;
    double localMax = 0.0;
    for (std::size_t i = 0; i < un; ++i) {
      scalarPolar[i] = toPolar(points[i], origin);
      localMax = std::max(localMax, scalarPolar[i].radius);
    }
    times.scalarPolar += watch.seconds();
    maxRadius = localMax;
  }
  if (maxRadius == 0.0) maxRadius = 1.0;
  const int rings =
      std::min<int>(PolarGrid::kMaxRings,
                    std::max<int>(1, static_cast<int>(std::log2(n)) + 1));
  const PolarGrid grid(dim, rings, maxRadius);

  // --- scalar pass 2: classification --------------------------------------
  std::vector<std::int32_t> scalarRing(un);
  std::vector<std::uint64_t> scalarCell(un);
  for (int r = 0; r < repeats; ++r) {
    Stopwatch watch;
    for (std::size_t i = 0; i < un; ++i) {
      const int ring =
          grid.ringOf(std::min(scalarPolar[i].radius, maxRadius));
      scalarRing[i] = ring;
      scalarCell[i] = grid.cellOf(scalarPolar[i], ring);
    }
    times.scalarClassify += watch.seconds();
  }

  // --- kernel passes over arena-backed SoA lanes ---------------------------
  ScratchArena& arena = workerArena();
  ScratchArena::Scope scope(arena);
  kernels::PolarLanes lanes;
  lanes.radius = arena.alloc<double>(un);
  for (int j = 0; j < dim - 1; ++j)
    lanes.cube[static_cast<std::size_t>(j)] = arena.alloc<double>(un);
  std::vector<PolarCoords> kernelPolar(un);
  for (int r = 0; r < repeats; ++r) {
    Stopwatch watch;
    kernels::polarOfPointsBatch(points, origin, lanes, kernelPolar);
    times.kernelPolar += watch.seconds();
  }

  std::vector<double> ringRadii(static_cast<std::size_t>(rings) + 1);
  for (int i = 0; i <= rings; ++i)
    ringRadii[static_cast<std::size_t>(i)] = grid.ringRadius(i);
  std::vector<std::int32_t> kernelRing(un);
  std::vector<std::uint64_t> kernelCell(un);
  for (int r = 0; r < repeats; ++r) {
    Stopwatch watch;
    const kernels::ClassifyTable table =
        kernels::makeClassifyTable(dim, rings, maxRadius, ringRadii);
    kernels::ringCellBatch(table, lanes.radius, lanes, kernelRing, kernelCell);
    times.kernelClassify += watch.seconds();
  }

  // --- bitwise verification ------------------------------------------------
  for (std::size_t i = 0; i < un; ++i) {
    OMT_CHECK(std::bit_cast<std::uint64_t>(kernelPolar[i].radius) ==
                  std::bit_cast<std::uint64_t>(scalarPolar[i].radius),
              "kernel polar radius diverged from scalar");
    for (int j = 0; j < dim - 1; ++j) {
      OMT_CHECK(
          std::bit_cast<std::uint64_t>(
              kernelPolar[i].cube[static_cast<std::size_t>(j)]) ==
              std::bit_cast<std::uint64_t>(
                  scalarPolar[i].cube[static_cast<std::size_t>(j)]),
          "kernel polar cube diverged from scalar");
    }
    OMT_CHECK(kernelRing[i] == scalarRing[i] && kernelCell[i] == scalarCell[i],
              "kernel classification diverged from scalar");
  }

  const double perPoint = 1e9 / (static_cast<double>(n) * repeats);
  const auto emit = [&](const std::string& stage, double scalarSec,
                        double kernelSec) {
    json.beginRow();
    json.field("dim", static_cast<std::int64_t>(dim));
    json.field("n", n);
    json.field("stage", stage);
    json.field("scalar_ns_per_point", scalarSec * perPoint);
    json.field("kernel_ns_per_point", kernelSec * perPoint);
    json.field("speedup", scalarSec / kernelSec);
    json.endRow();
  };
  emit("polar", times.scalarPolar, times.kernelPolar);
  emit("classify", times.scalarClassify, times.kernelClassify);
  emit("point_to_cell", times.scalarTotal(), times.kernelTotal());
  return times;
}

/// Table-seeded vs cold quantile inversion (the per-call cost the tables
/// remove), reported per call.
void timeQuantileInversion(BenchJsonWriter& json) {
  constexpr int kCalls = 20000;
  constexpr int k = 2;  // the 3D polar-angle power, the common hot case
  std::vector<double> us(kCalls);
  Rng rng(7200);
  for (double& u : us) u = rng.uniform();

  double sink = 0.0;
  Stopwatch cold;
  for (const double u : us) sink += sinPowerQuantile(k, u);
  const double coldSec = cold.seconds();
  Stopwatch tabled;
  for (const double u : us) sink += kernels::sinPowerQuantileTabled(k, u);
  const double tabledSec = tabled.seconds();
  OMT_CHECK(sink != -1.0, "keep the compiler from eliding the loops");

  json.beginRow();
  json.field("dim", static_cast<std::int64_t>(3));
  json.field("n", static_cast<std::int64_t>(kCalls));
  json.field("stage", std::string("sin_power_quantile"));
  json.field("scalar_ns_per_point", coldSec * 1e9 / kCalls);
  json.field("kernel_ns_per_point", tabledSec * 1e9 / kCalls);
  json.field("speedup", coldSec / tabledSec);
  json.endRow();
}

/// Thread counts for the fused sweep: 1, powers of two, and the requested
/// maximum. --threads 1 (the default) keeps just the single-thread row.
std::vector<int> threadSweep(int maxThreads) {
  std::vector<int> sweep{1};
  for (int t = 2; t < maxThreads; t *= 2) sweep.push_back(t);
  if (maxThreads > 1) sweep.push_back(maxThreads);
  return sweep;
}

/// Times the fused polar+classify+count kernel (polarClassifyBatch, the
/// assignToGrid front half) against the PR 5 unfused two-pass kernel path,
/// across the --threads sweep, and — when compiled in — with the fast-math
/// tier on. The single-thread exact fused run is verified bitwise against
/// the unfused path before any number is reported. Returns true when the
/// exact fused path is not >10% slower than the unfused path it replaces.
bool timeFusedPointToCell(std::int64_t n, int dim, int repeats, int maxThreads,
                          BenchJsonWriter& json, TextTable& out) {
  Rng rng(deriveSeed(7300, static_cast<std::uint64_t>(dim)));
  const std::vector<Point> points = sampleDiskWithCenterSource(rng, n, dim);
  const Point& origin = points[0];
  const auto un = static_cast<std::size_t>(n);

  double maxRadius = kernels::radiusMaxBatch(points, origin);
  if (maxRadius == 0.0) maxRadius = 1.0;
  const int rings =
      std::min<int>(PolarGrid::kMaxRings,
                    std::max<int>(1, static_cast<int>(std::log2(n)) + 1));
  const PolarGrid grid(dim, rings, maxRadius);
  std::vector<double> ringRadii(static_cast<std::size_t>(rings) + 1);
  for (int i = 0; i <= rings; ++i)
    ringRadii[static_cast<std::size_t>(i)] = grid.ringRadius(i);
  const kernels::ClassifyTable table =
      kernels::makeClassifyTable(dim, rings, maxRadius, ringRadii);

  // Unfused single-thread baseline: the PR 5 two-pass kernel path (polar
  // into full SoA lanes, then classify off the lanes).
  ScratchArena& arena = workerArena();
  ScratchArena::Scope scope(arena);
  kernels::PolarLanes lanes;
  lanes.radius = arena.alloc<double>(un);
  for (int j = 0; j < dim - 1; ++j)
    lanes.cube[static_cast<std::size_t>(j)] = arena.alloc<double>(un);
  std::vector<PolarCoords> basePolar(un);
  std::vector<std::int32_t> baseRing(un);
  std::vector<std::uint64_t> baseCell(un);
  double unfusedSec = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch watch;
    kernels::polarOfPointsBatch(points, origin, lanes, basePolar);
    kernels::ringCellBatch(table, lanes.radius, lanes, baseRing, baseCell);
    unfusedSec += watch.seconds();
  }

  std::vector<PolarCoords> fusedPolar(un);
  std::vector<std::int32_t> fusedRing(un);
  std::vector<std::uint64_t> fusedCell(un);
  const auto runFused = [&](int threads) {
    parallelForChunks(0, n, threads,
                      [&](std::int64_t lo, std::int64_t hi, int) {
                        const auto ulo = static_cast<std::size_t>(lo);
                        const auto len = static_cast<std::size_t>(hi - lo);
                        kernels::polarClassifyBatch(
                            std::span<const Point>(points).subspan(ulo, len),
                            origin, table,
                            std::span<PolarCoords>(fusedPolar)
                                .subspan(ulo, len),
                            std::span<std::int32_t>(fusedRing)
                                .subspan(ulo, len),
                            std::span<std::uint64_t>(fusedCell)
                                .subspan(ulo, len));
                      });
  };
  const double perPoint = 1e9 / (static_cast<double>(n) * repeats);
  bool gateOk = true;
  for (const bool fast : {false, true}) {
    if (fast && !kernels::fast_math::compiledIn()) continue;
    const bool prev = kernels::fast_math::setEnabled(fast);
    const std::string stage =
        fast ? "fused_point_to_cell_fast_math" : "fused_point_to_cell";
    for (const int threads : threadSweep(maxThreads)) {
      double fusedSec = 0.0;
      for (int r = 0; r < repeats; ++r) {
        Stopwatch watch;
        runFused(threads);
        fusedSec += watch.seconds();
      }
      if (!fast && threads == 1) {
        // Exact mode is contract-bound to the unfused kernels to the bit.
        for (std::size_t i = 0; i < un; ++i) {
          OMT_CHECK(std::bit_cast<std::uint64_t>(fusedPolar[i].radius) ==
                        std::bit_cast<std::uint64_t>(basePolar[i].radius),
                    "fused polar radius diverged from unfused");
          OMT_CHECK(fusedRing[i] == baseRing[i] &&
                        fusedCell[i] == baseCell[i],
                    "fused classification diverged from unfused");
        }
        if (fusedSec > 1.10 * unfusedSec) gateOk = false;
      }
      json.beginRow();
      json.field("dim", static_cast<std::int64_t>(dim));
      json.field("n", n);
      json.field("stage", stage);
      json.field("threads", static_cast<std::int64_t>(threads));
      json.field("scalar_ns_per_point", unfusedSec * perPoint);
      json.field("kernel_ns_per_point", fusedSec * perPoint);
      json.field("speedup", unfusedSec / fusedSec);
      json.endRow();
      out.addRow({std::to_string(dim), stage + " (t=" + std::to_string(threads) + ")",
                  TextTable::num(unfusedSec * perPoint, 1),
                  TextTable::num(fusedSec * perPoint, 1),
                  TextTable::num(unfusedSec / fusedSec, 2) + "x"});
    }
    kernels::fast_math::setEnabled(prev);
  }
  return gateOk;
}

/// Returns true when the kernel path meets the "not >10% slower" gate.
bool runKernelSection(const Args& args) {
  const std::int64_t n = args.maxN.value_or(1000000);
  const int repeats = n <= 200000 ? 5 : 2;
  std::cout << "\nBatched kernel A/B (single-threaded, n = " << n
            << ", bitwise-verified):\n";
  BenchJsonWriter json(benchOutputPath("BENCH_kernels.json"), "kernels");
  TextTable table({"Dim", "Stage", "Scalar ns/pt", "Kernel ns/pt", "Speedup"});
  bool gateOk = true;
  for (const int dim : {2, 3}) {
    const KernelTimes t = timePointToCell(n, dim, repeats, json);
    const double perPoint = 1e9 / (static_cast<double>(n) * repeats);
    const auto addRow = [&](const std::string& stage, double s, double kk) {
      table.addRow({std::to_string(dim), stage, TextTable::num(s * perPoint, 1),
                    TextTable::num(kk * perPoint, 1),
                    TextTable::num(s / kk, 2) + "x"});
    };
    addRow("polar", t.scalarPolar, t.kernelPolar);
    addRow("classify", t.scalarClassify, t.kernelClassify);
    addRow("point_to_cell", t.scalarTotal(), t.kernelTotal());
    if (t.kernelTotal() > 1.10 * t.scalarTotal()) gateOk = false;
    // Fused-vs-unfused (with the --threads sweep and the fast-math tier):
    // its "Scalar" column is the unfused kernel baseline, not raw scalar.
    if (!timeFusedPointToCell(n, dim, repeats, args.threads, json, table))
      gateOk = false;
  }
  timeQuantileInversion(json);
  json.close();
  std::cout << table.str() << "(wrote "
            << benchOutputPath("BENCH_kernels.json") << ")\n";
  return gateOk;
}

}  // namespace
}  // namespace omt::bench

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);
  if (args.kernelsOnly) {
    const bool gateOk = runKernelSection(args);
    if (args.enforceKernelSpeedup && !gateOk) {
      std::cerr << "FAIL: kernel path >10% slower than scalar path\n";
      return 1;
    }
    return 0;
  }
  const std::int64_t n = args.maxN.value_or(args.full ? 600 : 250);
  const int trials = args.trials.value_or(args.full ? 10 : 3);

  std::cout << "Mapping-error pipeline at n = " << n << " (" << trials
            << " trials): true delays -> embedding -> Polar_Grid -> "
               "true-delay radius\n\n";
  TextTable table({"Noise", "EmbErr(GNP)", "EmbErr(Viv)", "R(truth)",
                   "R(GNP)", "R(Viv)", "R(LB)"});
  auto csv = openCsv(args, {"sigma", "gnp_err", "viv_err", "radius_truth",
                            "radius_gnp", "radius_viv", "radius_lb"});

  for (const double sigma : {0.0, 0.1, 0.2, 0.4}) {
    RunningStats gnpErr, vivErr, rTruth, rGnp, rViv, rLb;
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(deriveSeed(700, static_cast<std::uint64_t>(trial)));
      const auto hidden = sampleDiskWithCenterSource(rng, n, 2);
      const NoisyEuclideanDelayModel model(
          hidden, 0.0, sigma, 0.0,
          deriveSeed(701, static_cast<std::uint64_t>(trial)));

      if (trial == 0) {
        const TriangleViolationStats tiv =
            measureTriangleViolations(model, 20000, 17);
        std::cout << "  sigma " << sigma << ": triangle violations "
                  << TextTable::num(100.0 * tiv.violatingFraction, 1)
                  << "% of triples, mean severity "
                  << TextTable::num(tiv.meanSeverity, 3) << "\n";
      }
      GnpOptions gnp;
      gnp.dim = 2;
      gnp.landmarks = 16;
      gnp.seed = deriveSeed(702, static_cast<std::uint64_t>(trial));
      const EmbeddingResult gnpResult = embedGnp(model, gnp);
      gnpErr.add(embeddingError(model, gnpResult.coords, 20000, 7).medianRelative);

      VivaldiOptions viv;
      viv.dim = 2;
      viv.rounds = 60;
      viv.seed = deriveSeed(703, static_cast<std::uint64_t>(trial));
      const EmbeddingResult vivResult = embedVivaldi(model, viv);
      vivErr.add(embeddingError(model, vivResult.coords, 20000, 8).medianRelative);

      const auto onTruth = buildPolarGridTree(hidden, 0, {.maxOutDegree = 6});
      const auto onGnp =
          buildPolarGridTree(gnpResult.coords, 0, {.maxOutDegree = 6});
      const auto onViv =
          buildPolarGridTree(vivResult.coords, 0, {.maxOutDegree = 6});
      rTruth.add(evaluateUnderModel(onTruth.tree, model).maxDelay);
      rGnp.add(evaluateUnderModel(onGnp.tree, model).maxDelay);
      rViv.add(evaluateUnderModel(onViv.tree, model).maxDelay);
      double lb = 0.0;
      for (NodeId v = 1; v < model.size(); ++v)
        lb = std::max(lb, model.delay(0, v));
      rLb.add(lb);
    }
    table.addRow({TextTable::num(sigma, 2), TextTable::num(gnpErr.mean(), 3),
                  TextTable::num(vivErr.mean(), 3),
                  TextTable::num(rTruth.mean(), 3),
                  TextTable::num(rGnp.mean(), 3),
                  TextTable::num(rViv.mean(), 3),
                  TextTable::num(rLb.mean(), 3)});
    if (csv) {
      csv->writeRow({std::to_string(sigma), std::to_string(gnpErr.mean()),
                     std::to_string(vivErr.mean()),
                     std::to_string(rTruth.mean()),
                     std::to_string(rGnp.mean()), std::to_string(rViv.mean()),
                     std::to_string(rLb.mean())});
    }
  }
  std::cout << table.str();
  std::cout << "\nShape check: embedding error grows with the noise sigma; "
               "tree radii on recovered coordinates track the truth-built "
               "radius and degrade gracefully, staying well above R(LB).\n";
  const bool gateOk = runKernelSection(args);
  if (args.enforceKernelSpeedup && !gateOk) {
    std::cerr << "FAIL: kernel path >10% slower than scalar path\n";
    return 1;
  }
  return 0;
}
