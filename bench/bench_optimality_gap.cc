// Optimality gaps at exactly-solvable sizes: branch and bound gives the
// true optimum for n <= ~12, so every heuristic's radius can be reported
// as a multiple of OPT rather than of the straight-line lower bound.
// Shape to check: greedy and the polished Polar_Grid land within
// ~1.1-1.3x of OPT; raw Polar_Grid is higher at these tiny sizes (its
// guarantee is asymptotic); and OPT itself sits well above the
// straight-line bound at out-degree 2 (the bound is loose when the degree
// constraint binds).
#include "common.h"
#include "omt/baselines/baselines.h"
#include "omt/core/exact.h"
#include "omt/core/local_search.h"

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);
  const int trials = args.trials.value_or(args.full ? 30 : 10);
  const std::int64_t n = args.maxN.value_or(10);

  std::cout << "Optimality gaps vs the exact optimum at n = " << n << " ("
            << trials << " trials)\n\n";
  TextTable table({"Degree", "OPT/StraightLB", "Polar/OPT", "Polar+LS/OPT",
                   "Greedy/OPT", "Nearest/OPT"});
  auto csv = openCsv(args, {"degree", "opt_over_lb", "polar", "polar_ls",
                            "greedy", "nearest"});

  for (const int degree : {2, 3}) {
    RunningStats optOverLb, polar, polished, greedy, nearest;
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(deriveSeed(1800 + static_cast<std::uint64_t>(degree),
                         static_cast<std::uint64_t>(trial)));
      const auto points = sampleDiskWithCenterSource(rng, n, 2);
      const ExactResult exact =
          solveExactMinRadius(points, 0, {.maxOutDegree = degree});
      if (!exact.provedOptimal || exact.radius <= 1e-12) continue;
      optOverLb.add(exact.radius / radiusLowerBound(points, 0));

      const PolarGridResult pg =
          buildPolarGridTree(points, 0, {.maxOutDegree = degree});
      polar.add(computeMetrics(pg.tree, points).maxDelay / exact.radius);
      polished.add(
          improveMaxDelay(pg.tree, points,
                          {.maxOutDegree = degree, .maxMoves = 500})
              .finalMaxDelay /
          exact.radius);
      greedy.add(
          computeMetrics(buildGreedyInsertionTree(points, 0, degree), points)
              .maxDelay /
          exact.radius);
      nearest.add(
          computeMetrics(buildNearestParentTree(points, 0, degree), points)
              .maxDelay /
          exact.radius);
    }
    table.addRow({std::to_string(degree), TextTable::num(optOverLb.mean(), 3),
                  TextTable::num(polar.mean(), 3),
                  TextTable::num(polished.mean(), 3),
                  TextTable::num(greedy.mean(), 3),
                  TextTable::num(nearest.mean(), 3)});
    if (csv) {
      csv->writeRow({std::to_string(degree), std::to_string(optOverLb.mean()),
                     std::to_string(polar.mean()),
                     std::to_string(polished.mean()),
                     std::to_string(greedy.mean()),
                     std::to_string(nearest.mean())});
    }
  }
  std::cout << table.str();
  std::cout << "\nShape check: Greedy and Polar+LS land within ~1.1-1.3x "
               "of OPT; raw Polar is higher at these tiny n (its guarantee "
               "is asymptotic); OPT itself exceeds the straight-line bound "
               "when the cap binds.\n";
  return 0;
}
