// Reproduces Figure 6: the average number of rings k chosen by the grid
// versus n, log-scale in n. The points follow a straight line — k is a
// logarithmic function of n, as implied by equation (5) (k >= log2(n)/2).
// Only the grid-selection stage runs here (the tree is not needed), so
// this bench is cheap even at paper scale.
#include <cmath>

#include "common.h"
#include "omt/core/lemmas.h"
#include "omt/grid/assignment.h"

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);

  std::cout << "Figure 6: average rings k vs n (expect a straight line in "
               "log2 n)\n\n";
  TextTable table({"Nodes", "Rings", "Predicted", "log2(n)",
                   "Rings/log2(n)", "k - log2(n)/2"});
  auto csv = openCsv(args, {"n", "rings", "predicted", "log2n", "ratio",
                            "slack"});

  for (const RowSpec& spec : tableOneSizes(args)) {
    RunningStats rings;
    for (int trial = 0; trial < spec.trials; ++trial) {
      Rng rng(deriveSeed(100, static_cast<std::uint64_t>(trial)));
      const auto points = sampleDiskWithCenterSource(rng, spec.n, 2);
      rings.add(static_cast<double>(assignToGrid(points, 0).grid.rings()));
    }
    const double log2n = std::log2(static_cast<double>(spec.n));
    table.addRow({TextTable::count(spec.n), TextTable::num(rings.mean(), 2),
                  std::to_string(predictedRings(spec.n)),
                  TextTable::num(log2n, 2),
                  TextTable::num(rings.mean() / log2n, 3),
                  TextTable::num(rings.mean() - log2n / 2.0, 2)});
    if (csv) {
      csv->writeRow({std::to_string(spec.n), std::to_string(rings.mean()),
                     std::to_string(predictedRings(spec.n)),
                     std::to_string(log2n),
                     std::to_string(rings.mean() / log2n),
                     std::to_string(rings.mean() - log2n / 2.0)});
    }
  }
  std::cout << table.str();
  std::cout << "\nShape check: Rings grows ~linearly in log2(n) and stays "
               ">= log2(n)/2 (equation 5). Paper: 3.61 @ 100, 8.97 @ 10k, "
               "15.00 @ 1M, 17.00 @ 5M.\n";
  return 0;
}
