// Ablation: the robustness side of the degree trade-off. The degree cap
// buys bounded fan-out (bandwidth) at the price of depth, and depth is
// fragility: a receiver is cut off when any forwarder above it dies.
// Exact analysis (P(reachable) = q^depth) across degree caps and failure
// probabilities. Shape to check: reachable fraction increases with the
// degree cap (shallower trees); the chain collapses at any failure rate;
// the degree-unconstrained star marks the 1 - p ceiling.
#include "common.h"
#include "omt/baselines/baselines.h"
#include "omt/sim/reliability.h"

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);
  const std::int64_t n = args.maxN.value_or(args.full ? 100000 : 20000);
  const int trials = args.trials.value_or(args.full ? 10 : 3);

  std::cout << "Reliability under independent node failures at n = "
            << TextTable::count(n) << "\n\n";
  TextTable table({"Tree", "Depth", "E[reach] p=1%", "p=5%", "p=20%",
                   "MeanSubtree"});
  auto csv = openCsv(args, {"tree", "depth", "reach_1", "reach_5",
                            "reach_20", "mean_subtree"});

  struct Config {
    std::string name;
    int degree;  // 0 = star, 1 = chain, else Polar_Grid with this cap
  };
  const Config configs[] = {{"star (unbounded)", 0}, {"polar D=16", 16},
                            {"polar D=6", 6},        {"polar D=3", 3},
                            {"polar D=2", 2},        {"chain", 1}};

  for (const Config& config : configs) {
    RunningStats depth, r1, r5, r20, subtree;
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(deriveSeed(1500, static_cast<std::uint64_t>(trial)));
      const auto points = sampleDiskWithCenterSource(rng, n, 2);
      const MulticastTree tree =
          config.degree == 0 ? buildStarTree(points, 0)
          : config.degree == 1
              ? buildChainTree(points, 0)
              : buildPolarGridTree(points, 0,
                                   {.maxOutDegree = config.degree})
                    .tree;
      const TreeMetrics m = computeMetrics(tree, points);
      depth.add(static_cast<double>(m.maxDepth));
      r1.add(analyzeReliability(tree, 0.01).expectedReachableFraction);
      const ReliabilityReport at5 = analyzeReliability(tree, 0.05);
      r5.add(at5.expectedReachableFraction);
      r20.add(analyzeReliability(tree, 0.20).expectedReachableFraction);
      subtree.add(at5.meanSubtreeSize);
    }
    table.addRow({config.name, TextTable::num(depth.mean(), 1),
                  TextTable::num(r1.mean(), 3), TextTable::num(r5.mean(), 3),
                  TextTable::num(r20.mean(), 3),
                  TextTable::num(subtree.mean(), 1)});
    if (csv) {
      csv->writeRow({config.name, std::to_string(depth.mean()),
                     std::to_string(r1.mean()), std::to_string(r5.mean()),
                     std::to_string(r20.mean()),
                     std::to_string(subtree.mean())});
    }
  }
  std::cout << table.str();
  std::cout << "\nShape check: reachability rises with the degree cap "
               "(shallower trees), far above the chain and below the "
               "star's 1 - p ceiling.\n";
  return 0;
}
