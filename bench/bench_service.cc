// Extension bench: the sharded multi-group tree service (ISSUE 9/10).
//
// Generates deterministic multi-group membership scripts over a shared
// host population and replays them through GroupManager:
//   direct       uniform group sizes, direct session calls
//   direct-skew  Zipf-skewed group sizes (--skew, default 1.0)
//   rpc          uniform sizes through the reliable RPC layer with
//                disruption windows
// measuring sustained event throughput and the wall-clock event-to-route
// latency (batch ingress to the owning group's snapshot swap). A final
// section measures the publish cost per epoch against group size for the
// delta path vs the full rebuild (the delta-publication win: sublinear in
// group size). Emits BENCH_service.json with one row per mode plus the
// publish-cost curve, and prints the same as tables.
//
// Exits non-zero when a replay fails to converge, when direct-mode
// throughput (uniform OR skewed) falls below --min-events-per-sec (the CI
// perf floor; 0 disables), or when the skewed workload's shard
// utilization (max/mean load) exceeds 1.5x the uniform workload's.
#include "common.h"
#include "omt/service/replay.h"

namespace {

using namespace omt;
using namespace omt::bench;

double percentileOf(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct ModeResult {
  std::string mode;
  ReplayResult replay;
  double eventsPerSec = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double shardUtilization = 1.0;  ///< max/mean cumulative shard load
  std::int64_t deltaPublishes = 0;
};

ModeResult runMode(const std::string& mode,
                   const std::vector<MembershipEvent>& events,
                   const Args& args, std::int64_t batch) {
  ServiceOptions service;
  service.shards = args.shards.value_or(0);
  service.seed = args.seed;
  service.measureLatency = true;
  if (mode == "rpc") {
    service.useRpc = true;
    service.injectDisruption = true;
  }
  GroupManager manager(service);

  ReplayOptions replay;
  replay.batchSize = batch;
  ModeResult result;
  result.mode = mode;
  result.replay = replayScript(manager, events, replay);
  result.eventsPerSec =
      result.replay.applySeconds > 0.0
          ? static_cast<double>(result.replay.events) /
                result.replay.applySeconds
          : 0.0;
  std::vector<double> latencies = result.replay.eventLatencies;
  std::sort(latencies.begin(), latencies.end());
  result.p50 = percentileOf(latencies, 0.50);
  result.p95 = percentileOf(latencies, 0.95);
  result.p99 = percentileOf(latencies, 0.99);
  result.deltaPublishes = manager.stats().deltaPublishes;
  const auto loads = manager.shardLoads();
  std::int64_t maxLoad = 0;
  std::int64_t totalLoad = 0;
  for (const std::int64_t load : loads) {
    maxLoad = std::max(maxLoad, load);
    totalLoad += load;
  }
  if (totalLoad > 0 && !loads.empty()) {
    const double mean =
        static_cast<double>(totalLoad) / static_cast<double>(loads.size());
    result.shardUtilization = static_cast<double>(maxLoad) / mean;
  }
  return result;
}

/// Seconds per publish for one group of `size` members under small
/// (8-event) churn batches, via the delta path or the full rebuild.
double publishCost(std::int64_t size, bool delta, std::uint64_t seed) {
  ServiceOptions service;
  service.shards = 1;
  service.deltaPublish = delta;
  GroupManager manager(service);
  Rng rng(seed);
  std::vector<MembershipEvent> seedBatch;
  for (std::int64_t h = 0; h < size; ++h)
    seedBatch.push_back({0.0, 0, ServiceEventKind::kJoin, h,
                         sampleUnitBall(rng, 2)});
  manager.apply(seedBatch);

  // Steady-state: each batch leaves then re-joins a 4-host tail slice, so
  // every batch publishes one epoch with a bounded dirty set.
  const int rounds = 200;
  std::vector<MembershipEvent> leave4;
  std::vector<MembershipEvent> join4;
  for (std::int64_t h = size - 4; h < size; ++h) {
    leave4.push_back({0.0, 0, ServiceEventKind::kLeave, h, Point()});
    join4.push_back({0.0, 0, ServiceEventKind::kJoin, h,
                     sampleUnitBall(rng, 2)});
  }
  Stopwatch watch;
  for (int r = 0; r < rounds; ++r) {
    manager.apply(leave4);
    manager.apply(join4);
  }
  const double seconds = watch.seconds();
  return seconds / (2.0 * rounds);
}

int runBench(const Args& args) {
  ScriptOptions script;
  script.groups = args.groups > 0 ? args.groups : (args.full ? 1000 : 500);
  script.hosts = args.hosts > 0 ? args.hosts : (args.full ? 20000 : 10000);
  script.events =
      args.events.value_or(args.full ? 1000000 : 200000);
  script.seed = args.seed;
  const std::int64_t batch = 1024;
  const double skew = args.skew > 0.0 ? args.skew : 1.0;

  std::cout << "Multi-group service replay: " << script.events << " events, "
            << script.groups << " groups, " << script.hosts
            << " hosts, batch " << batch << ", skew row at " << skew << "\n\n";
  const std::vector<MembershipEvent> events =
      generateMembershipScript(script);
  ScriptOptions skewedScript = script;
  skewedScript.sizeSkew = skew;
  const std::vector<MembershipEvent> skewedEvents =
      generateMembershipScript(skewedScript);

  BenchJsonWriter json(benchOutputPath("BENCH_service.json"), "service");
  TextTable table({"mode", "events/s", "groups", "publishes", "delta",
                   "degraded", "p50 ms", "p99 ms", "shard util"});
  bool converged = true;
  double directRate = 0.0;
  double skewRate = 0.0;
  double uniformUtil = 1.0;
  double skewUtil = 1.0;
  for (const std::string mode : {"direct", "direct-skew", "rpc"}) {
    const bool skewed = mode == "direct-skew";
    const ModeResult r =
        runMode(skewed ? "direct" : mode, skewed ? skewedEvents : events,
                args, batch);
    converged = converged && r.replay.converged();
    if (mode == "direct") {
      directRate = r.eventsPerSec;
      uniformUtil = r.shardUtilization;
    } else if (skewed) {
      skewRate = r.eventsPerSec;
      skewUtil = r.shardUtilization;
    }
    if (!r.replay.converged()) {
      std::cerr << "FAIL (" << mode << "): " << r.replay.degradedGroups
                << " degraded / " << r.replay.inconsistentGroups
                << " inconsistent group(s)";
      if (!r.replay.firstInconsistency.empty())
        std::cerr << " — " << r.replay.firstInconsistency;
      std::cerr << "\n";
    }
    table.addRow({mode,
                  TextTable::count(static_cast<long long>(r.eventsPerSec)),
                  TextTable::count(r.replay.groups),
                  TextTable::count(r.replay.publishes),
                  TextTable::count(r.deltaPublishes),
                  TextTable::count(r.replay.degradedGroups),
                  TextTable::num(r.p50 * 1e3, 3),
                  TextTable::num(r.p99 * 1e3, 3),
                  TextTable::num(r.shardUtilization, 3)});
    json.beginRow();
    json.field("mode", mode);
    json.field("events", r.replay.events);
    json.field("groups", r.replay.groups);
    json.field("publishes", r.replay.publishes);
    json.field("delta_publishes", r.deltaPublishes);
    json.field("degraded_groups", r.replay.degradedGroups);
    json.field("inconsistent_groups", r.replay.inconsistentGroups);
    json.field("apply_seconds", r.replay.applySeconds);
    json.field("events_per_second", r.eventsPerSec);
    json.field("shard_utilization", r.shardUtilization);
    json.field("p50_latency_ms", r.p50 * 1e3);
    json.field("p95_latency_ms", r.p95 * 1e3);
    json.field("p99_latency_ms", r.p99 * 1e3);
    json.endRow();
  }
  std::cout << table.str();

  // Publish-cost curve: seconds per published epoch for one group of n
  // members under bounded churn — the delta path must grow sublinearly
  // where the full rebuild pays its DFS + sort every time.
  TextTable curve({"group size", "delta us/publish", "full us/publish",
                   "speedup"});
  for (const std::int64_t size : {256, 1024, 4096}) {
    const double deltaCost = publishCost(size, true, args.seed);
    const double fullCost = publishCost(size, false, args.seed);
    curve.addRow({TextTable::count(size),
                  TextTable::num(deltaCost * 1e6, 2),
                  TextTable::num(fullCost * 1e6, 2),
                  TextTable::num(fullCost / std::max(1e-12, deltaCost), 2)});
    json.beginRow();
    json.field("mode", std::string("publish-cost"));
    json.field("group_size", size);
    json.field("delta_seconds_per_publish", deltaCost);
    json.field("full_seconds_per_publish", fullCost);
    json.endRow();
  }
  std::cout << "\npublish cost (8-event churn batches, one group):\n"
            << curve.str();

  json.topLevel("events", static_cast<double>(script.events));
  json.topLevel("groups", static_cast<double>(script.groups));
  json.topLevel("hosts", static_cast<double>(script.hosts));
  json.topLevel("batch", static_cast<double>(batch));
  json.topLevel("skew", skew);
  json.topLevel("direct_events_per_second", directRate);
  json.topLevel("skew_events_per_second", skewRate);
  json.topLevel("shard_utilization_uniform", uniformUtil);
  json.topLevel("shard_utilization_skew", skewUtil);
  json.topLevel("converged", converged ? 1.0 : 0.0);
  json.close();
  maybeWriteMetricsSnapshot(benchOutputPath("BENCH_service_metrics.json"));

  bool pass = converged;
  if (args.minEventsPerSec > 0.0) {
    if (directRate < args.minEventsPerSec) {
      std::cerr << "FAIL: direct-mode " << directRate
                << " events/s below the required " << args.minEventsPerSec
                << "\n";
      pass = false;
    }
    if (skewRate < args.minEventsPerSec) {
      std::cerr << "FAIL: skewed direct-mode " << skewRate
                << " events/s below the required " << args.minEventsPerSec
                << "\n";
      pass = false;
    }
  }
  // Rebalancing must keep the skewed workload's shard utilization within
  // 1.5x of the uniform one (trivially satisfied at one shard).
  if (skewUtil > 1.5 * uniformUtil + 1e-9) {
    std::cerr << "FAIL: skewed shard utilization " << skewUtil
              << " exceeds 1.5x uniform (" << uniformUtil << ")\n";
    pass = false;
  }
  if (pass) std::cout << "\nSERVICE OK: all modes converged\n";
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parseArgs(argc, argv);
  try {
    return runBench(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
