// Extension bench: the sharded multi-group tree service (ISSUE 9).
//
// Generates a deterministic multi-group membership script over a shared
// host population and replays it through GroupManager in two transport
// modes — direct session calls and the reliable RPC layer with disruption
// windows — measuring sustained event throughput and the wall-clock
// event-to-route latency (batch ingress to the owning group's snapshot
// swap). Emits BENCH_service.json with one row per mode (events/s,
// groups, publishes, p50/p95/p99 latency) and prints the same as a table.
//
// Exits non-zero when a replay fails to converge (degraded or
// inconsistent groups after quiesce) or when the direct-mode throughput
// falls below --min-events-per-sec (the CI perf floor; 0 disables).
#include "common.h"
#include "omt/service/replay.h"

namespace {

using namespace omt;
using namespace omt::bench;

double percentileOf(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct ModeResult {
  std::string mode;
  ReplayResult replay;
  double eventsPerSec = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

ModeResult runMode(const std::string& mode,
                   const std::vector<MembershipEvent>& events,
                   const Args& args, std::int64_t batch) {
  ServiceOptions service;
  service.shards = args.shards.value_or(0);
  service.seed = args.seed;
  service.measureLatency = true;
  if (mode == "rpc") {
    service.useRpc = true;
    service.injectDisruption = true;
  }
  GroupManager manager(service);

  ReplayOptions replay;
  replay.batchSize = batch;
  ModeResult result;
  result.mode = mode;
  result.replay = replayScript(manager, events, replay);
  result.eventsPerSec =
      result.replay.applySeconds > 0.0
          ? static_cast<double>(result.replay.events) /
                result.replay.applySeconds
          : 0.0;
  std::vector<double> latencies = result.replay.eventLatencies;
  std::sort(latencies.begin(), latencies.end());
  result.p50 = percentileOf(latencies, 0.50);
  result.p95 = percentileOf(latencies, 0.95);
  result.p99 = percentileOf(latencies, 0.99);
  return result;
}

int runBench(const Args& args) {
  ScriptOptions script;
  script.groups = args.groups > 0 ? args.groups : (args.full ? 1000 : 500);
  script.hosts = args.hosts > 0 ? args.hosts : (args.full ? 20000 : 10000);
  script.events =
      args.events.value_or(args.full ? 1000000 : 200000);
  script.seed = args.seed;
  const std::int64_t batch = 1024;

  std::cout << "Multi-group service replay: " << script.events << " events, "
            << script.groups << " groups, " << script.hosts
            << " hosts, batch " << batch << "\n\n";
  const std::vector<MembershipEvent> events =
      generateMembershipScript(script);

  BenchJsonWriter json(benchOutputPath("BENCH_service.json"), "service");
  TextTable table({"mode", "events/s", "groups", "publishes", "degraded",
                   "p50 ms", "p95 ms", "p99 ms"});
  bool converged = true;
  double directRate = 0.0;
  for (const std::string mode : {"direct", "rpc"}) {
    const ModeResult r = runMode(mode, events, args, batch);
    converged = converged && r.replay.converged();
    if (mode == "direct") directRate = r.eventsPerSec;
    if (!r.replay.converged()) {
      std::cerr << "FAIL (" << mode << "): " << r.replay.degradedGroups
                << " degraded / " << r.replay.inconsistentGroups
                << " inconsistent group(s)";
      if (!r.replay.firstInconsistency.empty())
        std::cerr << " — " << r.replay.firstInconsistency;
      std::cerr << "\n";
    }
    table.addRow({r.mode,
                  TextTable::count(static_cast<long long>(r.eventsPerSec)),
                  TextTable::count(r.replay.groups),
                  TextTable::count(r.replay.publishes),
                  TextTable::count(r.replay.degradedGroups),
                  TextTable::num(r.p50 * 1e3, 3),
                  TextTable::num(r.p95 * 1e3, 3),
                  TextTable::num(r.p99 * 1e3, 3)});
    json.beginRow();
    json.field("mode", r.mode);
    json.field("events", r.replay.events);
    json.field("groups", r.replay.groups);
    json.field("publishes", r.replay.publishes);
    json.field("degraded_groups", r.replay.degradedGroups);
    json.field("inconsistent_groups", r.replay.inconsistentGroups);
    json.field("apply_seconds", r.replay.applySeconds);
    json.field("events_per_second", r.eventsPerSec);
    json.field("p50_latency_ms", r.p50 * 1e3);
    json.field("p95_latency_ms", r.p95 * 1e3);
    json.field("p99_latency_ms", r.p99 * 1e3);
    json.endRow();
  }
  json.topLevel("events", static_cast<double>(script.events));
  json.topLevel("groups", static_cast<double>(script.groups));
  json.topLevel("hosts", static_cast<double>(script.hosts));
  json.topLevel("batch", static_cast<double>(batch));
  json.topLevel("direct_events_per_second", directRate);
  json.topLevel("converged", converged ? 1.0 : 0.0);
  json.close();
  maybeWriteMetricsSnapshot(benchOutputPath("BENCH_service_metrics.json"));

  std::cout << table.str();
  bool pass = converged;
  if (args.minEventsPerSec > 0.0 && directRate < args.minEventsPerSec) {
    std::cerr << "FAIL: direct-mode " << directRate
              << " events/s below the required " << args.minEventsPerSec
              << "\n";
    pass = false;
  }
  if (pass) std::cout << "\nSERVICE OK: both modes converged\n";
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parseArgs(argc, argv);
  try {
    return runBench(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
