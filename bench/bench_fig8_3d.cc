// Reproduces Figure 8: average max delay in the three-dimensional unit
// sphere, for the straightforward extension (out-degree 10: 8 bisection
// links + 2 next-ring links) and the out-degree-2 variant. Shape to check:
// both converge to the lower bound of 1; 3D delays are higher than 2D at
// the same n; the degree-2/degree-10 gap narrows as n grows.
#include "common.h"

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);

  std::cout << "Figure 8: max delay in the 3D unit sphere (out-degree 10 "
               "vs 2)\n\n";
  TextTable table({"Nodes", "Delay10", "Dev10", "Delay2", "Dev2", "Rings",
                   "Gap2-10"});
  auto csv =
      openCsv(args, {"n", "delay10", "dev10", "delay2", "dev2", "rings",
                     "gap"});

  auto trialsCsv = openTrialsCsv(args);
  for (const RowSpec& spec : tableOneSizes(args)) {
    const RowStats deg10 = runRow(spec.n, spec.trials, 10, 3, 300, args.threads);
    const RowStats deg2 = runRow(spec.n, spec.trials, 2, 3, 400, args.threads);
    appendTrialRows(trialsCsv.get(), deg10);
    appendTrialRows(trialsCsv.get(), deg2);
    table.addRow({TextTable::count(spec.n),
                  TextTable::num(deg10.delay.mean(), 3),
                  TextTable::num(deg10.delay.populationStddev(), 2),
                  TextTable::num(deg2.delay.mean(), 3),
                  TextTable::num(deg2.delay.populationStddev(), 2),
                  TextTable::num(deg10.rings.mean(), 2),
                  TextTable::num(deg2.delay.mean() - deg10.delay.mean(), 3)});
    if (csv) {
      csv->writeRow({std::to_string(spec.n),
                     std::to_string(deg10.delay.mean()),
                     std::to_string(deg10.delay.populationStddev()),
                     std::to_string(deg2.delay.mean()),
                     std::to_string(deg2.delay.populationStddev()),
                     std::to_string(deg10.rings.mean()),
                     std::to_string(deg2.delay.mean() - deg10.delay.mean())});
    }
  }
  std::cout << table.str();
  std::cout << "\nShape check: both columns fall toward 1 (slower than 2D "
               "-- angular cell extents shrink as 2^(-k/3)); the degree-2 "
               "vs degree-10 gap narrows with n (paper Figure 8).\n";
  return 0;
}
