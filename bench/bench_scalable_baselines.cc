// Who wins at Table-I scale? The O(n^2) heuristics cannot run at 10^6
// hosts, so this bench compares only the near-linear builders: Polar_Grid,
// the k-d-tree nearest-parent, the hop-optimal layered tree, and Delaunay
// compass routing (degree-unconstrained; O(n^2) fallback skipped above
// 30k). Shape to check: Polar_Grid's radius advantage grows with n while
// its runtime stays competitive.
#include "common.h"
#include "omt/baselines/baselines.h"
#include "omt/baselines/delaunay.h"

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);
  const int degree = 6;
  const int trials = args.trials.value_or(args.full ? 10 : 3);
  const std::vector<std::int64_t> sizes =
      args.full
          ? std::vector<std::int64_t>{10000, 100000, 1000000}
          : std::vector<std::int64_t>{10000, 100000};

  std::cout << "Scalable builders at Table-I sizes (radius / lower bound; "
               "out-degree " << degree << ")\n\n";
  TextTable table({"Nodes", "PolarGrid", "NearestKd", "Layered", "Delaunay",
                   "PG sec", "NearestKd sec"});
  auto csv = openCsv(args, {"n", "polar", "nearest_kd", "layered", "delaunay",
                            "pg_sec", "kd_sec"});

  for (const std::int64_t n : sizes) {
    if (args.maxN && n > *args.maxN) continue;
    RunningStats polar, nearestKd, layered, delaunay, pgSec, kdSec;
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(deriveSeed(1700, static_cast<std::uint64_t>(n + trial)));
      const auto points = sampleDiskWithCenterSource(rng, n, 2);
      const double lower = radiusLowerBound(points, 0);

      Stopwatch pgWatch;
      const auto pg = buildPolarGridTree(points, 0, {.maxOutDegree = degree});
      pgSec.add(pgWatch.seconds());
      polar.add(computeMetrics(pg.tree, points).maxDelay / lower);

      Stopwatch kdWatch;
      const auto kd = buildNearestParentTreeFast(points, 0, degree);
      kdSec.add(kdWatch.seconds());
      nearestKd.add(computeMetrics(kd, points).maxDelay / lower);

      layered.add(
          computeMetrics(buildLayeredTree(points, 0, degree), points)
              .maxDelay /
          lower);
      if (n <= 30000) {
        delaunay.add(computeMetrics(buildDelaunayCompassTree(points, 0),
                                    points)
                         .maxDelay /
                     lower);
      }
    }
    table.addRow({TextTable::count(n), TextTable::num(polar.mean(), 3),
                  TextTable::num(nearestKd.mean(), 3),
                  TextTable::num(layered.mean(), 3),
                  delaunay.count() > 0 ? TextTable::num(delaunay.mean(), 3)
                                       : std::string("-"),
                  TextTable::num(pgSec.mean(), 3),
                  TextTable::num(kdSec.mean(), 3)});
    if (csv) {
      csv->writeRow(
          {std::to_string(n), std::to_string(polar.mean()),
           std::to_string(nearestKd.mean()), std::to_string(layered.mean()),
           delaunay.count() > 0 ? std::to_string(delaunay.mean()) : "-",
           std::to_string(pgSec.mean()), std::to_string(kdSec.mean())});
    }
  }
  std::cout << table.str();
  std::cout << "\nShape check: PolarGrid converges toward 1 with n; the "
               "locality heuristics plateau well above it; both scale to "
               "millions.\n";
  return 0;
}
