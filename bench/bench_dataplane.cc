// Packet data-plane bench: goodput and tail latency under loss.
//
// Two parts, both on Polar_Grid trees over unit-disk hosts:
//
// Part A (loss sweep): one fixed tree, one session per loss point — i.i.d.
// rates {0, 0.1%, 1%, 5%, 10%} plus one Gilbert–Elliott bursty row at the
// same mean loss as the 1% point. Reports delivery goodput
// (exactly-once deliveries per engine wall-second), delivery-latency
// p50/p95/p99, and the recovery overhead (retransmits and NACKs per
// delivery). This is the goodput/p99-vs-loss curve the data-plane PR is
// judged on.
//
// Part B (zero-loss rate row): an n = 10,000 tree with a short propagation
// factor (keeps the event heap at a bounded lead over delivery), zero loss,
// recovery idle. The engine must push at least 1M packets/sec of deliveries
// through the event loop; --min-goodput makes the floor enforcing (CI
// passes a conservative floor so only a real regression trips it).
//
// Always writes BENCH_dataplane.json:
//   {"bench": "dataplane",
//    "rows": [{"label": ..., "loss": ..., "goodput_pps": ...,
//              "p50_ms": ..., "p99_ms": ..., "retx_per_delivery": ...}...],
//    "zero_loss_goodput_pps": ..., "zero_loss_hosts": ...}
// Deterministic for a fixed seed (wall-clock fields excepted).
#include "common.h"
#include "omt/sim/dataplane/engine.h"

namespace {

using omt::dataplane::DataplaneOptions;
using omt::dataplane::DataplaneResult;

struct SweepRow {
  std::string label;
  double loss = 0.0;
  bool bursty = false;
};

DataplaneResult runSession(const omt::PolarGridResult& built,
                           const std::vector<omt::Point>& points,
                           const DataplaneOptions& options) {
  return runDataplane(built.tree, points, options);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);

  BenchJsonWriter json(benchOutputPath("BENCH_dataplane.json"), "dataplane");

  // ---- Part A: goodput / p99 vs loss on one fixed tree.
  const std::int64_t sweepHosts = args.full ? 2000 : 1000;
  const std::int64_t sweepPackets =
      args.packets > 0 ? args.packets : (args.full ? 800 : 400);
  Rng rng(deriveSeed(args.seed, 0xDA7A));
  const std::vector<Point> points =
      sampleDiskWithCenterSource(rng, sweepHosts, 2);
  const PolarGridResult built =
      buildPolarGridTree(points, 0, {.maxOutDegree = 6});

  const std::vector<SweepRow> rows = {
      {"loss_0", 0.0, false},        {"loss_0.1%", 0.001, false},
      {"loss_1%", 0.01, false},      {"loss_5%", 0.05, false},
      {"loss_10%", 0.10, false},     {"burst_1%", 0.0, true},
  };

  TextTable table({"Row", "Loss", "Goodput/s", "p50 ms", "p95 ms", "p99 ms",
                   "Retx/delivery", "NACKs", "Completed"});
  for (const SweepRow& row : rows) {
    DataplaneOptions options;
    options.seed = deriveSeed(args.seed, 0xDA7A01);
    options.packetCount = sweepPackets;
    options.maxOutDegree = 6;
    options.controlLoss = 0.005;
    if (row.bursty) {
      // Mean loss matched to the 1% i.i.d. row: 5% of time in a bad state
      // dropping 20%, stationary loss = 0.95 * 0 + 0.05 * 0.2 = 1%.
      options.burst.burstStartProbability = 0.01;
      options.burst.burstStopProbability = 0.19;
      options.burst.burstLossProbability = 0.2;
    } else {
      options.lossProbability = row.loss;
    }
    const double meanLoss =
        row.bursty
            ? options.burst.stationaryLossProbability(options.lossProbability)
            : row.loss;
    const DataplaneResult result = runSession(built, points, options);
    const double goodput =
        result.wallSeconds > 0.0
            ? static_cast<double>(result.deliveries) / result.wallSeconds
            : 0.0;
    const double retxPerDelivery =
        result.deliveries > 0
            ? static_cast<double>(result.retransmits) /
                  static_cast<double>(result.deliveries)
            : 0.0;
    table.addRow({row.label, TextTable::num(100.0 * meanLoss, 2) + "%",
                  TextTable::count(static_cast<long long>(goodput)),
                  TextTable::num(result.deliveryLatency.p50() * 1e3, 2),
                  TextTable::num(result.deliveryLatency.p95() * 1e3, 2),
                  TextTable::num(result.deliveryLatency.p99() * 1e3, 2),
                  TextTable::num(retxPerDelivery, 4),
                  TextTable::count(result.nacksSent),
                  result.completed ? "yes" : "NO"});
    json.beginRow();
    json.field("label", row.label);
    json.field("loss", meanLoss);
    json.field("bursty", static_cast<std::int64_t>(row.bursty ? 1 : 0));
    json.field("hosts", sweepHosts);
    json.field("packets", sweepPackets);
    json.field("goodput_pps", goodput);
    json.field("p50_ms", result.deliveryLatency.p50() * 1e3);
    json.field("p95_ms", result.deliveryLatency.p95() * 1e3);
    json.field("p99_ms", result.deliveryLatency.p99() * 1e3);
    json.field("retx_per_delivery", retxPerDelivery);
    json.field("nacks", result.nacksSent);
    json.field("queue_drops", result.queueDrops);
    json.field("link_losses", result.linkLosses);
    json.field("completed", static_cast<std::int64_t>(result.completed));
    json.endRow();
  }
  std::cout << table.str() << "\n";

  // ---- Part B: the zero-loss event-loop rate row (n = 10k).
  const std::int64_t rateHosts = args.hosts > 0 ? args.hosts : 10000;
  const std::int64_t ratePackets = args.packets > 0 ? args.packets : 500;
  Rng rateRng(deriveSeed(args.seed, 0xDA7A02));
  const std::vector<Point> ratePoints =
      sampleDiskWithCenterSource(rateRng, rateHosts, 2);
  const PolarGridResult rateTree =
      buildPolarGridTree(ratePoints, 0, {.maxOutDegree = 6});

  DataplaneOptions rate;
  rate.seed = deriveSeed(args.seed, 0xDA7A03);
  rate.packetCount = ratePackets;
  rate.packetInterval = 1e-3;
  // Short propagation keeps the in-flight event population (arrival rate
  // times flight time) bounded, so the heap stays small and the run
  // measures event-loop rate, not allocator churn.
  rate.propagationFactor = 0.01;
  rate.maxOutDegree = 6;
  const DataplaneResult rateRun = runSession(rateTree, ratePoints, rate);
  const double zeroLossGoodput =
      rateRun.wallSeconds > 0.0
          ? static_cast<double>(rateRun.deliveries) / rateRun.wallSeconds
          : 0.0;

  std::cout << "zero-loss rate row: " << rateHosts << " hosts, "
            << ratePackets << " packets\n"
            << "  deliveries      " << rateRun.deliveries << "\n"
            << "  events          " << rateRun.eventsProcessed << "\n"
            << "  wall seconds    " << TextTable::num(rateRun.wallSeconds, 3)
            << "\n"
            << "  goodput         "
            << TextTable::count(static_cast<long long>(zeroLossGoodput))
            << " packets/s\n"
            << "  completed       " << (rateRun.completed ? "yes" : "NO")
            << "\n";

  json.topLevel("zero_loss_goodput_pps", zeroLossGoodput);
  json.topLevel("zero_loss_hosts", static_cast<double>(rateHosts));
  json.topLevel("zero_loss_packets", static_cast<double>(ratePackets));
  json.topLevel("zero_loss_completed", rateRun.completed ? 1.0 : 0.0);
  json.close();
  maybeWriteMetricsSnapshot(benchOutputPath("BENCH_dataplane_metrics.json"));
  std::cout << "(wrote " << benchOutputPath("BENCH_dataplane.json") << ")\n";

  bool pass = rateRun.completed;
  if (!pass)
    std::cerr << "FAIL: zero-loss session did not complete ("
              << rateRun.undelivered << " undelivered)\n";
  if (args.minGoodput > 0.0 && zeroLossGoodput < args.minGoodput) {
    std::cerr << "FAIL: zero-loss goodput " << zeroLossGoodput
              << " packets/s below the required " << args.minGoodput << "\n";
    pass = false;
  }
  return pass ? 0 : 1;
}
