// Reproduces Figure 5: average max delay of out-degree 2 vs out-degree 6
// trees. The paper's observation: the degree-2 overhead (delay - 1) is
// roughly twice the degree-6 overhead, and both curves converge to the
// optimal delay of 1 as n grows.
#include "common.h"

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);

  std::cout << "Figure 5: max delay, out-degree 2 vs out-degree 6\n\n";
  TextTable table({"Nodes", "Delay6", "Delay2", "Overhead6", "Overhead2",
                   "Ovh2/Ovh6"});
  auto csv = openCsv(args, {"n", "delay6", "delay2", "overhead6", "overhead2",
                            "overhead_ratio"});

  auto trialsCsv = openTrialsCsv(args);
  for (const RowSpec& spec : tableOneSizes(args)) {
    const RowStats deg6 = runRow(spec.n, spec.trials, 6, 2, 100, args.threads);
    const RowStats deg2 = runRow(spec.n, spec.trials, 2, 2, 200, args.threads);
    appendTrialRows(trialsCsv.get(), deg6);
    appendTrialRows(trialsCsv.get(), deg2);
    const double overhead6 = deg6.delay.mean() - 1.0;
    const double overhead2 = deg2.delay.mean() - 1.0;
    table.addRow({TextTable::count(spec.n),
                  TextTable::num(deg6.delay.mean(), 3),
                  TextTable::num(deg2.delay.mean(), 3),
                  TextTable::num(overhead6, 3), TextTable::num(overhead2, 3),
                  TextTable::num(overhead2 / overhead6, 2)});
    if (csv) {
      csv->writeRow({std::to_string(spec.n), std::to_string(deg6.delay.mean()),
                     std::to_string(deg2.delay.mean()),
                     std::to_string(overhead6), std::to_string(overhead2),
                     std::to_string(overhead2 / overhead6)});
    }
  }
  std::cout << table.str();
  std::cout << "\nShape check: both delays fall toward 1; the degree-2 "
               "overhead is ~2x the degree-6 overhead (paper Figure 5).\n";
  return 0;
}
