// Extension bench: Polar_Grid followed by critical-path local search —
// how much of the gap to the O(n^2) greedy ceiling does a cheap polish
// recover? Shape to check: the polish recovers a large share of the gap
// (especially at out-degree 2, whose construction pays doubled arc terms),
// at a cost far below greedy's quadratic build.
#include "common.h"
#include "omt/baselines/baselines.h"
#include "omt/core/local_search.h"

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);
  const int trials = args.trials.value_or(args.full ? 10 : 3);
  const std::vector<std::int64_t> sizes =
      args.full ? std::vector<std::int64_t>{1000, 10000, 100000}
                : std::vector<std::int64_t>{1000, 10000};

  std::cout << "Polar_Grid + local-search polish vs the greedy ceiling "
               "(radius / lower bound)\n\n";
  for (const int degree : {6, 2}) {
    TextTable table({"Nodes", "Polar", "Polar+LS", "Greedy", "Moves",
                     "LS sec", "Greedy sec"});
    for (const std::int64_t n : sizes) {
      if (args.maxN && n > *args.maxN) continue;
      RunningStats polar, polished, greedy, moves, lsSec, greedySec;
      for (int trial = 0; trial < trials; ++trial) {
        Rng rng(deriveSeed(1600 + static_cast<std::uint64_t>(degree),
                           static_cast<std::uint64_t>(n + trial)));
        const auto points = sampleDiskWithCenterSource(rng, n, 2);
        const double lower = radiusLowerBound(points, 0);
        const PolarGridResult built =
            buildPolarGridTree(points, 0, {.maxOutDegree = degree});
        polar.add(computeMetrics(built.tree, points).maxDelay / lower);

        Stopwatch lsWatch;
        const LocalSearchResult refined = improveMaxDelay(
            built.tree, points,
            {.maxOutDegree = degree, .maxMoves = 4000});
        lsSec.add(lsWatch.seconds());
        polished.add(refined.finalMaxDelay / lower);
        moves.add(static_cast<double>(refined.movesApplied));

        if (n <= 10000) {  // greedy is O(n^2)
          Stopwatch gWatch;
          const MulticastTree g =
              buildGreedyInsertionTree(points, 0, degree);
          greedySec.add(gWatch.seconds());
          greedy.add(computeMetrics(g, points).maxDelay / lower);
        }
      }
      table.addRow({TextTable::count(n), TextTable::num(polar.mean(), 3),
                    TextTable::num(polished.mean(), 3),
                    greedy.count() > 0 ? TextTable::num(greedy.mean(), 3)
                                       : std::string("-"),
                    TextTable::num(moves.mean(), 0),
                    TextTable::num(lsSec.mean(), 3),
                    greedySec.count() > 0
                        ? TextTable::num(greedySec.mean(), 3)
                        : std::string("-")});
    }
    std::cout << "out-degree cap " << degree << ":\n" << table.str() << "\n";
  }
  std::cout << "Shape check: Polar+LS sits between Polar and Greedy, "
               "recovering much of the gap at a fraction of greedy's "
               "quadratic cost.\n";
  return 0;
}
