// Micro-benchmarks (google-benchmark) for the hot paths: polar conversion,
// grid assignment, tree construction at several sizes and degrees, the
// standalone bisection, metrics, and the event-driven simulator.
#include <benchmark/benchmark.h>

#include "omt/baselines/delaunay.h"
#include "omt/bisection/bisection.h"
#include "omt/core/polar_grid_tree.h"
#include "omt/geometry/enclosing_ball.h"
#include "omt/geometry/sin_power_integral.h"
#include "omt/grid/assignment.h"
#include "omt/grid/polar_grid.h"
#include "omt/kernels/kernels.h"
#include "omt/kernels/polar_batch.h"
#include "omt/kernels/sin_power_table.h"
#include "omt/parallel/scratch_arena.h"
#include "omt/random/rng.h"
#include "omt/random/samplers.h"
#include "omt/sim/multicast_sim.h"
#include "omt/spatial/kd_tree.h"
#include "omt/tree/metrics.h"

namespace {

using namespace omt;

std::vector<Point> diskPoints(std::int64_t n, int dim) {
  Rng rng(42);
  return sampleDiskWithCenterSource(rng, n, dim);
}

void BM_ToPolar(benchmark::State& state) {
  const auto points = diskPoints(1024, static_cast<int>(state.range(0)));
  const Point origin(static_cast<int>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(toPolar(points[i], origin));
    i = (i + 1) % points.size();
  }
}
BENCHMARK(BM_ToPolar)->Arg(2)->Arg(3)->Arg(8);

void BM_GridAssignment(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assignToGrid(points, 0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GridAssignment)->Arg(1000)->Arg(100000);

void BM_PolarGridTree(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 2);
  const int degree = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        buildPolarGridTree(points, 0, {.maxOutDegree = degree}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PolarGridTree)
    ->Args({1000, 6})
    ->Args({100000, 6})
    ->Args({100000, 2});

void BM_PolarGridTree3D(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        buildPolarGridTree(points, 0, {.maxOutDegree = 10}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PolarGridTree3D)->Arg(100000);

void BM_BisectionTree(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        buildBisectionTree(points, 0, {.maxOutDegree = 4}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BisectionTree)->Arg(1000)->Arg(30000);

void BM_ComputeMetrics(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 2);
  const auto result = buildPolarGridTree(points, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(computeMetrics(result.tree, points));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ComputeMetrics)->Arg(100000);

void BM_SimulateParallel(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 2);
  const auto result = buildPolarGridTree(points, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulateMulticast(result.tree, points));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateParallel)->Arg(100000);

void BM_SimulateSerialized(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 2);
  const auto result = buildPolarGridTree(points, 0);
  SimOptions options;
  options.model = TransmissionModel::kSerialized;
  options.serializationInterval = 0.001;
  options.childOrder = ChildOrder::kDeepestFirst;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulateMulticast(result.tree, points, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateSerialized)->Arg(100000);

void BM_KdTreeNearest(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 2);
  KdTree tree(points);
  for (NodeId i = 0; i < tree.size(); i += 2) tree.setActive(i, true);
  Rng rng(7);
  std::vector<Point> queries;
  for (int i = 0; i < 512; ++i) queries.push_back(sampleUnitBall(rng, 2));
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.nearestActive(queries[q]));
    q = (q + 1) % queries.size();
  }
}
BENCHMARK(BM_KdTreeNearest)->Arg(100000);

void BM_SmallestEnclosingBall(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(smallestEnclosingBall(points));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SmallestEnclosingBall)->Arg(100000);

void BM_DelaunayTriangulate(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(delaunayTriangulate(points));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DelaunayTriangulate)->Arg(2000);

// --- kernel layer: table-seeded inversion and SoA batch transforms --------

void BM_SinPowerQuantileCold(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(99);
  std::vector<double> us(4096);
  for (double& u : us) u = rng.uniform();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sinPowerQuantile(k, us[i]));
    i = (i + 1) % us.size();
  }
}
BENCHMARK(BM_SinPowerQuantileCold)->Arg(2)->Arg(6);

void BM_SinPowerQuantileTabled(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  kernels::quantileTable(k);  // build outside the timed region
  Rng rng(99);
  std::vector<double> us(4096);
  for (double& u : us) u = rng.uniform();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::sinPowerQuantileTabled(k, us[i]));
    i = (i + 1) % us.size();
  }
}
BENCHMARK(BM_SinPowerQuantileTabled)->Arg(2)->Arg(6);

void BM_ToPolarBatchSoA(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const auto points = diskPoints(65536, dim);
  const Point& origin = points[0];
  ScratchArena& arena = workerArena();
  ScratchArena::Scope scope(arena);
  kernels::PolarLanes lanes;
  lanes.radius = arena.alloc<double>(points.size());
  for (int j = 0; j < dim - 1; ++j)
    lanes.cube[static_cast<std::size_t>(j)] =
        arena.alloc<double>(points.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::polarOfPointsBatch(points, origin, lanes, {}));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_ToPolarBatchSoA)->Arg(2)->Arg(3)->Arg(8);

void BM_ToPolarLoopAoS(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const auto points = diskPoints(65536, dim);
  const Point& origin = points[0];
  std::vector<PolarCoords> out(points.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < points.size(); ++i)
      out[i] = toPolar(points[i], origin);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_ToPolarLoopAoS)->Arg(2)->Arg(3)->Arg(8);

void BM_PointToCellScalar(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const auto points = diskPoints(65536, dim);
  const Point& origin = points[0];
  std::vector<PolarCoords> polar(points.size());
  double maxRadius = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    polar[i] = toPolar(points[i], origin);
    maxRadius = std::max(maxRadius, polar[i].radius);
  }
  const PolarGrid grid(dim, 17, maxRadius);
  std::vector<std::int32_t> ring(points.size());
  std::vector<std::uint64_t> cell(points.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      const int r = grid.ringOf(std::min(polar[i].radius, maxRadius));
      ring[i] = r;
      cell[i] = grid.cellOf(polar[i], r);
    }
    benchmark::DoNotOptimize(cell.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_PointToCellScalar)->Arg(2)->Arg(3);

void BM_PointToCellKernel(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const auto points = diskPoints(65536, dim);
  const Point& origin = points[0];
  ScratchArena& arena = workerArena();
  ScratchArena::Scope scope(arena);
  kernels::PolarLanes lanes;
  lanes.radius = arena.alloc<double>(points.size());
  for (int j = 0; j < dim - 1; ++j)
    lanes.cube[static_cast<std::size_t>(j)] =
        arena.alloc<double>(points.size());
  const double maxRadius =
      kernels::polarOfPointsBatch(points, origin, lanes, {});
  const PolarGrid grid(dim, 17, maxRadius);
  std::vector<double> ringRadii(18);
  for (int i = 0; i <= 17; ++i)
    ringRadii[static_cast<std::size_t>(i)] = grid.ringRadius(i);
  const kernels::ClassifyTable table =
      kernels::makeClassifyTable(dim, 17, maxRadius, ringRadii);
  std::vector<std::int32_t> ring(points.size());
  std::vector<std::uint64_t> cell(points.size());
  for (auto _ : state) {
    kernels::ringCellBatch(table, lanes.radius, lanes, ring, cell);
    benchmark::DoNotOptimize(cell.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_PointToCellKernel)->Arg(2)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
