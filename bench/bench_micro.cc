// Micro-benchmarks (google-benchmark) for the hot paths: polar conversion,
// grid assignment, tree construction at several sizes and degrees, the
// standalone bisection, metrics, and the event-driven simulator.
#include <benchmark/benchmark.h>

#include "omt/baselines/delaunay.h"
#include "omt/bisection/bisection.h"
#include "omt/core/polar_grid_tree.h"
#include "omt/geometry/enclosing_ball.h"
#include "omt/grid/assignment.h"
#include "omt/random/rng.h"
#include "omt/random/samplers.h"
#include "omt/sim/multicast_sim.h"
#include "omt/spatial/kd_tree.h"
#include "omt/tree/metrics.h"

namespace {

using namespace omt;

std::vector<Point> diskPoints(std::int64_t n, int dim) {
  Rng rng(42);
  return sampleDiskWithCenterSource(rng, n, dim);
}

void BM_ToPolar(benchmark::State& state) {
  const auto points = diskPoints(1024, static_cast<int>(state.range(0)));
  const Point origin(static_cast<int>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(toPolar(points[i], origin));
    i = (i + 1) % points.size();
  }
}
BENCHMARK(BM_ToPolar)->Arg(2)->Arg(3)->Arg(8);

void BM_GridAssignment(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assignToGrid(points, 0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GridAssignment)->Arg(1000)->Arg(100000);

void BM_PolarGridTree(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 2);
  const int degree = static_cast<int>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        buildPolarGridTree(points, 0, {.maxOutDegree = degree}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PolarGridTree)
    ->Args({1000, 6})
    ->Args({100000, 6})
    ->Args({100000, 2});

void BM_PolarGridTree3D(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        buildPolarGridTree(points, 0, {.maxOutDegree = 10}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PolarGridTree3D)->Arg(100000);

void BM_BisectionTree(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        buildBisectionTree(points, 0, {.maxOutDegree = 4}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BisectionTree)->Arg(1000)->Arg(30000);

void BM_ComputeMetrics(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 2);
  const auto result = buildPolarGridTree(points, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(computeMetrics(result.tree, points));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ComputeMetrics)->Arg(100000);

void BM_SimulateParallel(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 2);
  const auto result = buildPolarGridTree(points, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulateMulticast(result.tree, points));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateParallel)->Arg(100000);

void BM_SimulateSerialized(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 2);
  const auto result = buildPolarGridTree(points, 0);
  SimOptions options;
  options.model = TransmissionModel::kSerialized;
  options.serializationInterval = 0.001;
  options.childOrder = ChildOrder::kDeepestFirst;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulateMulticast(result.tree, points, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateSerialized)->Arg(100000);

void BM_KdTreeNearest(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 2);
  KdTree tree(points);
  for (NodeId i = 0; i < tree.size(); i += 2) tree.setActive(i, true);
  Rng rng(7);
  std::vector<Point> queries;
  for (int i = 0; i < 512; ++i) queries.push_back(sampleUnitBall(rng, 2));
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.nearestActive(queries[q]));
    q = (q + 1) % queries.size();
  }
}
BENCHMARK(BM_KdTreeNearest)->Arg(100000);

void BM_SmallestEnclosingBall(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(smallestEnclosingBall(points));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SmallestEnclosingBall)->Arg(100000);

void BM_DelaunayTriangulate(benchmark::State& state) {
  const auto points = diskPoints(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(delaunayTriangulate(points));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DelaunayTriangulate)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();
