// Shared experiment harness for the table/figure benches.
//
// Reproduces the paper's Section V protocol: for each problem size generate
// `trials` random point sets uniformly distributed in the unit disk (or
// ball) with the source at the center, build the tree, and average max
// delay, core delay, ring count, the eq. (7) bound at j = 0, and wall-clock
// seconds. Every bench accepts:
//   --full             paper-scale sizes (up to 5,000,000) and trial counts
//   --max-n N          cap the size sweep
//   --trials T         fixed trial count for every row
//   --csv PATH         also write the aggregate rows as CSV
//   --trials-csv PATH  also write one CSV row per trial (n, trial, seed,
//                      threads, seconds) so any run reproduces row-for-row
//   --threads T|0      worker threads over independent trials (0 = auto)
//
// Thread accounting: with --threads 1 (the default) trials run one after
// another and each construction uses the pipeline's own workers
// (OMT_THREADS or auto), so timed seconds reflect the parallel build; with
// --threads > 1 trials run concurrently and each construction runs
// single-threaded (nested parallelism collapses inline). Both effective
// counts are recorded on every row.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "omt/core/bounds.h"
#include "omt/core/polar_grid_tree.h"
#include "omt/kernels/fast_math.h"
#include "omt/obs/metrics.h"
#include "omt/obs/obs.h"
#include "omt/parallel/parallel_for.h"
#include "omt/random/rng.h"
#include "omt/random/samplers.h"
#include "omt/report/csv.h"
#include "omt/report/stats.h"
#include "omt/report/stopwatch.h"
#include "omt/report/table.h"
#include "omt/tree/metrics.h"
#include "omt/tree/validation.h"

namespace omt::bench {

struct Args {
  bool full = false;
  std::optional<std::int64_t> maxN;
  std::optional<int> trials;
  std::optional<std::string> csvPath;
  std::optional<std::string> trialsCsvPath;
  /// Worker threads for independent trials; 1 keeps builds timed without
  /// trial-level contention (the default), --full runs benefit from more.
  int threads = 1;
  /// bench_coords_pipeline: run only the kernel A/B section (the CI
  /// perf-smoke mode; skips the embedding pipeline).
  bool kernelsOnly = false;
  /// bench_coords_pipeline: exit non-zero if the batched kernel path is
  /// more than 10% slower than the scalar path it replaces.
  bool enforceKernelSpeedup = false;
  /// bench_churn: sustained-churn steady-state mode (sharded sessions,
  /// watchdog, invariant audits, BENCH_churn.json curves).
  bool steadyState = false;
  /// bench_churn --steady-state: total membership events across shards.
  std::optional<std::int64_t> events;
  /// bench_churn --steady-state: independent sharded sessions (0 = auto).
  std::optional<int> shards;
  /// bench_churn --steady-state: exit non-zero below this throughput
  /// (0 disables the enforcement, the default).
  double minEventsPerSec = 0.0;
  /// bench_churn --steady-state: base seed for the shard RNG streams.
  std::uint64_t seed = 1401;
  /// bench_service: Zipf exponent for the skewed-workload row (0 keeps the
  /// bench default of 1.0; the uniform rows are unaffected).
  double skew = 0.0;
  /// bench_dataplane: hosts in the goodput tree (0 = bench default).
  /// bench_service: shared host population size (0 = bench default).
  std::int64_t hosts = 0;
  /// bench_service: concurrent multicast groups (0 = bench default).
  std::int64_t groups = 0;
  /// bench_dataplane: packets per session (0 = bench default).
  std::int64_t packets = 0;
  /// bench_dataplane: exit non-zero if the zero-loss goodput row falls
  /// below this packets-per-second floor (0 disables, the default). CI
  /// passes a floor well under the expected rate so only a real (>10%)
  /// regression trips it.
  double minGoodput = 0.0;
  /// Enable the opt-in fast-math kernel tier for every timed construction
  /// (same switch as OMT_FAST_MATH=1 / omtcli build --fast-math).
  bool fastMath = false;
};

inline Args parseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--full") {
      args.full = true;
    } else if (arg == "--max-n" && i + 1 < argc) {
      args.maxN = std::atoll(argv[++i]);
    } else if (arg == "--trials" && i + 1 < argc) {
      args.trials = std::atoi(argv[++i]);
    } else if (arg == "--csv" && i + 1 < argc) {
      args.csvPath = argv[++i];
    } else if (arg == "--trials-csv" && i + 1 < argc) {
      args.trialsCsvPath = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      args.threads = std::atoi(argv[++i]);
      if (args.threads <= 0) args.threads = resolveWorkers(0);
    } else if (arg == "--kernels-only") {
      args.kernelsOnly = true;
    } else if (arg == "--enforce-kernel-speedup") {
      args.enforceKernelSpeedup = true;
    } else if (arg == "--steady-state") {
      args.steadyState = true;
    } else if (arg == "--events" && i + 1 < argc) {
      args.events = std::atoll(argv[++i]);
    } else if (arg == "--shards" && i + 1 < argc) {
      args.shards = std::atoi(argv[++i]);
    } else if (arg == "--min-events-per-sec" && i + 1 < argc) {
      args.minEventsPerSec = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      args.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--skew" && i + 1 < argc) {
      args.skew = std::atof(argv[++i]);
    } else if (arg == "--fast-math") {
      args.fastMath = true;
    } else if (arg == "--hosts" && i + 1 < argc) {
      args.hosts = std::atoll(argv[++i]);
    } else if (arg == "--groups" && i + 1 < argc) {
      args.groups = std::atoll(argv[++i]);
    } else if (arg == "--packets" && i + 1 < argc) {
      args.packets = std::atoll(argv[++i]);
    } else if (arg == "--min-goodput" && i + 1 < argc) {
      args.minGoodput = std::atof(argv[++i]);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--full] [--max-n N] [--trials T] [--csv PATH]"
                   " [--trials-csv PATH] [--threads T|0]"
                   " [--kernels-only] [--enforce-kernel-speedup]"
                   " [--steady-state] [--events N] [--shards S]"
                   " [--min-events-per-sec X] [--seed S] [--skew Z]"
                   " [--fast-math]"
                   " [--hosts N] [--groups N] [--packets N]"
                   " [--min-goodput X]\n";
      std::exit(2);
    }
  }
  if (args.fastMath) kernels::fast_math::setEnabled(true);
  return args;
}

/// Where the perf-trajectory files (BENCH_*.json) belong: the repository
/// root, regardless of the cwd the bench was launched from (benches usually
/// run from build/bench, which used to scatter the JSON under build/).
/// OMT_BENCH_DIR overrides; otherwise walk up from the cwd looking for
/// ROADMAP.md (the repo-root marker) and fall back to the cwd.
inline std::string benchOutputPath(const std::string& filename) {
  if (const char* dir = std::getenv("OMT_BENCH_DIR"); dir && *dir) {
    return std::string(dir) + "/" + filename;
  }
  std::string prefix;
  std::string probe = "ROADMAP.md";
  for (int depth = 0; depth < 6; ++depth) {
    if (std::ifstream(prefix + probe).good()) return prefix + filename;
    prefix += "../";
    probe = "ROADMAP.md";
  }
  return filename;
}

struct RowSpec {
  std::int64_t n;
  int trials;
};

/// The paper's Table-I size column with trial counts scaled so the default
/// whole-suite run stays minutes-long; --full restores 200 trials per row
/// (and keeps a reduced count only at n >= 500k, where one trial costs
/// seconds) and extends to 5,000,000.
inline std::vector<RowSpec> tableOneSizes(const Args& args) {
  std::vector<RowSpec> rows;
  const std::vector<std::int64_t> sizes{100,    500,     1000,   5000,   10000,
                                        50000,  100000,  500000, 1000000,
                                        5000000};
  for (const std::int64_t n : sizes) {
    // Paper-scale rows (> 1M) need --full, or an explicit --max-n that
    // reaches them — so `--max-n 5000000` alone runs the full-size row.
    if (!args.full && n > 1000000 && !(args.maxN && *args.maxN >= n)) continue;
    if (args.maxN && n > *args.maxN) continue;
    int trials;
    if (args.full) {
      trials = n <= 100000 ? 200 : (n <= 1000000 ? 20 : 5);
    } else {
      trials = n <= 10000 ? 50 : (n <= 100000 ? 10 : (n <= 500000 ? 4 : 2));
    }
    if (args.trials) trials = *args.trials;
    rows.push_back({n, trials});
  }
  return rows;
}

/// One trial's provenance and timing; enough to rerun that exact trial.
struct TrialRecord {
  std::int64_t n = 0;
  int trial = 0;
  std::uint64_t seed = 0;
  double seconds = 0.0;
};

struct RowStats {
  std::int64_t n = 0;
  /// Effective worker threads over independent trials.
  int trialThreads = 1;
  /// Effective worker threads inside each timed construction (1 when the
  /// trial loop itself is parallel — nested parallelism runs inline).
  int buildWorkers = 1;
  RunningStats rings;
  RunningStats core;
  RunningStats delay;
  RunningStats bound;
  RunningStats seconds;
  /// Per-trial records in trial order (deterministic for any thread count).
  std::vector<TrialRecord> trials;
};

/// One Table-I row: `trials` independent point sets, tree built with the
/// given out-degree cap in the given dimension. experimentId seeds the
/// per-trial RNG streams (same id + trial -> same points across benches).
inline RowStats runRow(std::int64_t n, int trials, int degree, int dim,
                       std::uint64_t experimentId, int threads = 1) {
  std::vector<RowStats> partial(static_cast<std::size_t>(trials));
  parallelFor(0, trials, threads, [&](std::int64_t trial) {
    RowStats& local = partial[static_cast<std::size_t>(trial)];
    const std::uint64_t seed =
        deriveSeed(experimentId, static_cast<std::uint64_t>(trial));
    Rng rng(seed);
    const std::vector<Point> points = sampleDiskWithCenterSource(rng, n, dim);
    Stopwatch watch;
    const PolarGridResult result =
        buildPolarGridTree(points, 0, {.maxOutDegree = degree});
    const double elapsed = watch.seconds();
    local.seconds.add(elapsed);
    local.trials.push_back({n, static_cast<int>(trial), seed, elapsed});
    const ValidationResult valid =
        validate(result.tree, {.maxOutDegree = degree});
    OMT_CHECK(valid.ok, "invalid tree at n=" + std::to_string(n) +
                            " trial=" + std::to_string(trial) + ": " +
                            valid.message);
    const TreeMetrics metrics = computeMetrics(result.tree, points);
    local.delay.add(metrics.maxDelay);
    local.core.add(metrics.coreDelay);
    local.rings.add(static_cast<double>(result.rings()));
    local.bound.add(result.upperBound);
  });
  RowStats row;
  row.n = n;
  row.trialThreads = std::min<std::int64_t>(threads, trials);
  row.buildWorkers = row.trialThreads > 1 ? 1 : resolveWorkers(0);
  for (const RowStats& local : partial) {
    row.delay.merge(local.delay);
    row.core.merge(local.core);
    row.rings.merge(local.rings);
    row.bound.merge(local.bound);
    row.seconds.merge(local.seconds);
    row.trials.insert(row.trials.end(), local.trials.begin(),
                      local.trials.end());
  }
  return row;
}

inline std::unique_ptr<CsvWriter> openCsv(const Args& args,
                                          std::initializer_list<std::string> header) {
  if (!args.csvPath) return nullptr;
  auto csv = std::make_unique<CsvWriter>(*args.csvPath);
  csv->writeRow(header);
  return csv;
}

/// Per-trial CSV (--trials-csv): one row per trial with the seed and the
/// effective thread counts, so a parallel-trial run reproduces row-for-row.
inline std::unique_ptr<CsvWriter> openTrialsCsv(const Args& args) {
  if (!args.trialsCsvPath) return nullptr;
  auto csv = std::make_unique<CsvWriter>(*args.trialsCsvPath);
  csv->writeRow(
      {"n", "trial", "seed", "trial_threads", "build_workers", "seconds"});
  return csv;
}

/// Write the registry's JSON snapshot next to the bench's BENCH_*.json —
/// but only when observability is actually recording (OMT_OBS=1 in the
/// environment). Timed runs with obs off never pay for or produce this.
inline void maybeWriteMetricsSnapshot(const std::string& path) {
  if (!obs::enabled()) return;
  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "warning: cannot open metrics snapshot " << path << "\n";
    return;
  }
  out << obs::MetricsRegistry::global().jsonSnapshot() << "\n";
  std::cout << "(wrote metrics snapshot " << path << ")\n";
}

inline void appendTrialRows(CsvWriter* csv, const RowStats& row) {
  if (!csv) return;
  for (const TrialRecord& t : row.trials) {
    csv->writeRow({std::to_string(t.n), std::to_string(t.trial),
                   std::to_string(t.seed), std::to_string(row.trialThreads),
                   std::to_string(row.buildWorkers),
                   std::to_string(t.seconds)});
  }
}

}  // namespace omt::bench
