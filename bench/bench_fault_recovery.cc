// Extension bench: failure detection and recovery under correlated faults.
//
// Part A isolates the repair policy: the same correlated crash set is
// repaired twice from identical session copies — once by the global
// detectAndRepair() sweep (every live host probes its parent, orphans go
// through full placement) and once host-by-host through the detector-driven
// repairCrashed() path (orphans contact their precomputed backup parent
// first). Shape to check: the local path costs clearly fewer contacts per
// re-homed orphan; the process exits non-zero if it does not.
//
// Part B runs the full chaos harness (fault schedule + lossy control
// channel + heartbeat detector) at several loss rates and reports the
// distributions that only exist because detection is no longer free:
// detection latency, crash-to-recovery latency, disconnected-node-seconds,
// false positives and reinstatements. Deterministic for a fixed seed.
// Besides the table/CSV, the run always writes BENCH_fault_recovery.json
// (same shape as BENCH_construction.json) so successive PRs can track the
// recovery trajectory:
//   {"bench": "fault_recovery", "rows": [{"loss_rate": ..., ...}, ...],
//    "contacts_per_orphan_local": ..., "contacts_per_orphan_sweep": ...,
//    "backup_hit_rate": ...}
#include "common.h"
#include "omt/fault/chaos.h"
#include "omt/protocol/overlay_session.h"

namespace {

struct RepairAB {
  omt::RunningStats sweepPerOrphan;      // contacts/orphan incl. probe cost
  omt::RunningStats sweepPerOrphanRepair;  // contacts/orphan excl. probes
  omt::RunningStats localPerOrphan;
  omt::RunningStats backupHitRate;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);

  // ---- Part A: sweep vs backup-first repair on identical crash sets.
  const std::int64_t n = args.full ? 4000 : 1000;
  const int trials = args.trials ? *args.trials : (args.full ? 10 : 5);
  const double crashFraction = 0.1;

  RepairAB ab;
  for (int trial = 0; trial < trials; ++trial) {
    Rng rng(deriveSeed(4200, static_cast<std::uint64_t>(trial)));
    OverlaySession session(Point(2), {.maxOutDegree = 6});
    for (std::int64_t i = 0; i < n; ++i) session.join(sampleUnitBall(rng, 2));

    // One correlated burst: a random tenth of the membership dies at once.
    std::vector<NodeId> victims;
    const auto want = static_cast<std::int64_t>(
        static_cast<double>(session.liveCount() - 1) * crashFraction);
    while (static_cast<std::int64_t>(victims.size()) < want) {
      const auto id = static_cast<NodeId>(
          1 + rng.uniformInt(static_cast<std::uint64_t>(n)));
      if (!session.isLive(id)) continue;
      session.crash(id);
      victims.push_back(id);
    }

    OverlaySession sweep = session;  // identical pre-repair state
    const std::int64_t liveBefore = sweep.liveCount();
    const std::int64_t sweepContacts0 = sweep.stats().contactCost;
    const std::int64_t sweepOrphans = sweep.detectAndRepair();
    const std::int64_t sweepContacts =
        sweep.stats().contactCost - sweepContacts0;
    const std::int64_t probeCost = std::max<std::int64_t>(0, liveBefore - 1);

    RepairReport local;
    for (const NodeId dead : victims) {
      if (!session.isPendingCrash(dead)) continue;  // purged by a cascade
      const RepairReport report = session.repairCrashed(dead);
      local.orphansReplaced += report.orphansReplaced;
      local.backupHits += report.backupHits;
      local.fallbacks += report.fallbacks;
      local.contacts += report.contacts;
    }

    if (sweepOrphans > 0) {
      ab.sweepPerOrphan.add(static_cast<double>(sweepContacts) /
                            static_cast<double>(sweepOrphans));
      ab.sweepPerOrphanRepair.add(
          static_cast<double>(sweepContacts - probeCost) /
          static_cast<double>(sweepOrphans));
    }
    if (local.orphansReplaced > 0) {
      ab.localPerOrphan.add(static_cast<double>(local.contacts) /
                            static_cast<double>(local.orphansReplaced));
      ab.backupHitRate.add(static_cast<double>(local.backupHits) /
                           static_cast<double>(local.orphansReplaced));
    }
  }

  std::cout << "Part A: contacts per re-homed orphan, sweep vs local "
               "backup-first repair (n="
            << n << ", " << trials << " trials, 10% correlated crash)\n\n";
  TextTable tableA({"Policy", "Contacts/orphan", "Min", "Max"});
  tableA.addRow({"sweep (incl. probes)", TextTable::num(ab.sweepPerOrphan.mean(), 2),
                 TextTable::num(ab.sweepPerOrphan.min(), 2),
                 TextTable::num(ab.sweepPerOrphan.max(), 2)});
  tableA.addRow({"sweep (repair only)",
                 TextTable::num(ab.sweepPerOrphanRepair.mean(), 2),
                 TextTable::num(ab.sweepPerOrphanRepair.min(), 2),
                 TextTable::num(ab.sweepPerOrphanRepair.max(), 2)});
  tableA.addRow({"local backup-first", TextTable::num(ab.localPerOrphan.mean(), 2),
                 TextTable::num(ab.localPerOrphan.min(), 2),
                 TextTable::num(ab.localPerOrphan.max(), 2)});
  std::cout << tableA.str() << "\nBackup-parent hit rate: "
            << TextTable::num(100.0 * ab.backupHitRate.mean(), 1) << "%\n\n";

  // ---- Part B: chaos runs across control-channel loss rates.
  std::cout << "Part B: chaos harness (schedule + lossy channel + heartbeat "
               "detector)\n\n";
  TextTable tableB({"Loss", "Joins", "Crashes", "Repairs", "Backup%",
                    "DetLat mean", "DetLat max", "RecLat mean", "DiscNodeSec",
                    "FalsePos", "Reinstate", "Sweep"});
  auto csv = openCsv(
      args, {"loss_rate", "joins", "crashes", "repairs", "backup_hit_rate",
             "detection_latency_mean", "detection_latency_max",
             "recovery_latency_mean", "disconnected_node_seconds",
             "false_positives", "reinstatements", "sweep_repairs"});

  BenchJsonWriter json(benchOutputPath("BENCH_fault_recovery.json"),
                       "fault_recovery");

  const double lossRates[] = {0.0, 0.05, 0.2};
  for (std::size_t i = 0; i < std::size(lossRates); ++i) {
    ChaosOptions options;
    options.schedule.duration = args.full ? 60.0 : 20.0;
    options.schedule.arrivalRate = args.full ? 30.0 : 15.0;
    options.schedule.seed = deriveSeed(4300, i);
    options.channel.lossRate = lossRates[i];
    options.channel.seed = deriveSeed(4301, i);
    options.checkInvariants = false;  // invariants are the chaos test's job
    const ChaosResult result = runChaos(options);
    if (!result.ok) {
      std::cerr << "chaos run failed at loss " << lossRates[i] << ": "
                << result.failure << "\n";
      return 1;
    }
    const double repaired = static_cast<double>(result.backupHits +
                                                result.backupFallbacks);
    const double hitRate =
        repaired > 0.0 ? static_cast<double>(result.backupHits) / repaired
                       : 0.0;
    tableB.addRow({TextTable::num(lossRates[i], 2),
                   TextTable::count(result.joins),
                   TextTable::count(result.crashes),
                   TextTable::count(result.repairs),
                   TextTable::num(100.0 * hitRate, 1),
                   TextTable::num(result.detector.detectionLatency.mean(), 3),
                   TextTable::num(result.detector.detectionLatency.max(), 3),
                   TextTable::num(result.recoveryLatency.mean(), 3),
                   TextTable::num(result.disconnectedNodeSeconds, 1),
                   TextTable::count(result.detector.falsePositives),
                   TextTable::count(result.detector.reinstatements),
                   TextTable::count(result.sweepRepairs)});
    if (csv) {
      csv->writeRow(
          {std::to_string(lossRates[i]), std::to_string(result.joins),
           std::to_string(result.crashes), std::to_string(result.repairs),
           std::to_string(hitRate),
           std::to_string(result.detector.detectionLatency.mean()),
           std::to_string(result.detector.detectionLatency.max()),
           std::to_string(result.recoveryLatency.mean()),
           std::to_string(result.disconnectedNodeSeconds),
           std::to_string(result.detector.falsePositives),
           std::to_string(result.detector.reinstatements),
           std::to_string(result.sweepRepairs)});
    }
    json.beginRow();
    json.field("loss_rate", lossRates[i]);
    json.field("joins", result.joins);
    json.field("crashes", result.crashes);
    json.field("repairs", result.repairs);
    json.field("backup_hit_rate", hitRate);
    json.field("detection_latency_mean",
               result.detector.detectionLatency.mean());
    json.field("recovery_latency_mean", result.recoveryLatency.mean());
    json.field("disconnected_node_seconds", result.disconnectedNodeSeconds);
    json.field("false_positives", result.detector.falsePositives);
    json.field("sweep_repairs", result.sweepRepairs);
    json.endRow();
  }
  json.topLevel("contacts_per_orphan_local", ab.localPerOrphan.mean());
  json.topLevel("contacts_per_orphan_sweep", ab.sweepPerOrphan.mean());
  json.topLevel("backup_hit_rate", ab.backupHitRate.mean());
  json.close();
  maybeWriteMetricsSnapshot(
      benchOutputPath("BENCH_fault_recovery.metrics.json"));
  std::cout << tableB.str() << "\n(wrote BENCH_fault_recovery.json)\n";

  // The acceptance gate: local backup-first repair must beat the sweep on
  // contacts per re-homed orphan.
  if (!(ab.localPerOrphan.mean() < ab.sweepPerOrphan.mean())) {
    std::cerr << "FAIL: local repair (" << ab.localPerOrphan.mean()
              << " contacts/orphan) is not cheaper than the sweep ("
              << ab.sweepPerOrphan.mean() << ")\n";
    return 1;
  }
  std::cout << "PASS: local backup-first repair is cheaper per orphan ("
            << TextTable::num(ab.localPerOrphan.mean(), 2) << " vs "
            << TextTable::num(ab.sweepPerOrphan.mean(), 2) << " contacts)\n";
  return 0;
}
