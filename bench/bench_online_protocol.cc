// Extension bench: the online session (decentralised join/leave — the
// paper's future work) versus the offline Algorithm Polar_Grid on the same
// membership. Shape to check: the online radius stays within a small
// factor of the offline rebuild across growth and churn, with amortised
// O(1)-ish contacts per join and log-many structural moves (incremental
// ring splits/merges/extends in the default mode; full regrids in legacy).
#include "common.h"
#include "omt/protocol/overlay_session.h"

int main(int argc, char** argv) {
  using namespace omt;
  using namespace omt::bench;
  const Args args = parseArgs(argc, argv);
  const std::int64_t target = args.maxN.value_or(args.full ? 200000 : 30000);
  const int degree = 6;

  std::cout << "Online protocol vs offline rebuild (out-degree " << degree
            << ")\n\n";
  TextTable table({"Live", "OnlineRadius", "OfflineRadius", "Ratio",
                   "Regrids", "Splits", "Extends", "Contacts/op"});
  auto csv = openCsv(args, {"live", "online", "offline", "ratio", "regrids",
                            "splits", "extends", "contacts_per_op"});

  Rng rng(deriveSeed(1200, 0));
  OverlaySession session(Point{0.0, 0.0}, {.maxOutDegree = degree});
  std::vector<NodeId> live;
  std::int64_t nextReport = 1000;

  const auto report = [&]() {
    const SessionSnapshot snap = session.snapshot();
    const TreeMetrics online = computeMetrics(snap.tree, snap.positions);
    NodeId source = 0;
    for (std::size_t i = 0; i < snap.sessionIds.size(); ++i) {
      if (snap.sessionIds[i] == 0) source = static_cast<NodeId>(i);
    }
    const PolarGridResult offline =
        buildPolarGridTree(snap.positions, source, {.maxOutDegree = degree});
    const TreeMetrics offlineMetrics =
        computeMetrics(offline.tree, snap.positions);
    const SessionStats& stats = session.stats();
    const double ops = static_cast<double>(stats.joins + stats.leaves);
    table.addRow({TextTable::count(session.liveCount()),
                  TextTable::num(online.maxDelay, 3),
                  TextTable::num(offlineMetrics.maxDelay, 3),
                  TextTable::num(online.maxDelay / offlineMetrics.maxDelay, 2),
                  TextTable::count(stats.regrids),
                  TextTable::count(stats.splits),
                  TextTable::count(stats.extends),
                  TextTable::num(static_cast<double>(stats.contactCost) / ops,
                                 1)});
    if (csv) {
      csv->writeRow({std::to_string(session.liveCount()),
                     std::to_string(online.maxDelay),
                     std::to_string(offlineMetrics.maxDelay),
                     std::to_string(online.maxDelay / offlineMetrics.maxDelay),
                     std::to_string(stats.regrids),
                     std::to_string(stats.splits),
                     std::to_string(stats.extends),
                     std::to_string(static_cast<double>(stats.contactCost) /
                                    ops)});
    }
  };

  // Growth phase with 10% interleaved churn.
  while (session.liveCount() < target) {
    if (!live.empty() && rng.uniform() < 0.1) {
      const std::size_t pick = rng.uniformInt(live.size());
      session.leave(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    } else {
      live.push_back(session.join(sampleUnitBall(rng, 2)));
    }
    if (session.liveCount() >= nextReport) {
      report();
      nextReport *= 10;
    }
  }
  report();

  // Churn phase: 20% of the membership turns over.
  const std::int64_t churnOps = session.liveCount() / 5;
  for (std::int64_t i = 0; i < churnOps; ++i) {
    const std::size_t pick = rng.uniformInt(live.size());
    session.leave(live[pick]);
    live[pick] = session.join(sampleUnitBall(rng, 2));
  }
  std::cout << "after " << churnOps << " churn replacements:\n";
  report();

  std::cout << table.str();
  std::cout << "\nShape check: Ratio stays within a small constant across "
               "growth and churn; Splits grows logarithmically (Regrids "
               "stays 0 in incremental mode); Contacts/op stays small and "
               "flat.\n";
  return 0;
}
