#include "omt/bisection/square_bisection.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "omt/bisection/bisection.h"  // relayLayers
#include "omt/common/error.h"

namespace omt {
namespace {

struct Box {
  Point lo;
  Point hi;

  Point mid() const { return (lo + hi) / 2.0; }
  double diagonal() const { return distance(lo, hi); }

  int subboxIndex(const Point& p) const {
    const Point m = mid();
    int index = 0;
    for (int c = 0; c < lo.dim(); ++c) {
      if (p[c] > m[c]) index |= 1 << c;
    }
    return index;
  }

  Box subbox(int index) const {
    Box out{lo, hi};
    const Point m = mid();
    for (int c = 0; c < lo.dim(); ++c) {
      if ((index >> c) & 1) {
        out.lo[c] = m[c];
      } else {
        out.hi[c] = m[c];
      }
    }
    return out;
  }
};

struct Member {
  NodeId node = kNoNode;
  Point position;
};

struct Job {
  NodeId root = kNoNode;
  Point rootPosition;
  Box box;
  std::vector<Member> members;
  int depth = 0;
};

constexpr int kMaxDepth = 192;

void attachFan(MulticastTree& tree, NodeId root,
               std::span<const Member> members, int m) {
  for (std::size_t i = 0; i < members.size(); ++i) {
    const NodeId parent =
        i == 0 ? root : members[(i - 1) / static_cast<std::size_t>(m)].node;
    tree.attach(members[i].node, parent, EdgeKind::kLocal);
  }
}

Member extractClosest(std::vector<std::vector<Member>>& buckets,
                      std::span<const int> bucketIds, const Point& target) {
  int bestBucket = -1;
  std::size_t bestPos = 0;
  double bestDist = kInf;
  NodeId bestNode = kNoNode;
  for (const int b : bucketIds) {
    const auto& bucket = buckets[static_cast<std::size_t>(b)];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const double d = squaredDistance(bucket[i].position, target);
      if (d < bestDist || (d == bestDist && bucket[i].node < bestNode)) {
        bestDist = d;
        bestBucket = b;
        bestPos = i;
        bestNode = bucket[i].node;
      }
    }
  }
  if (bestBucket < 0) return {};
  auto& bucket = buckets[static_cast<std::size_t>(bestBucket)];
  Member out = bucket[bestPos];
  bucket[bestPos] = bucket.back();
  bucket.pop_back();
  return out;
}

void connectBuckets(MulticastTree& tree, std::vector<Job>& stack,
                    std::vector<std::vector<Member>>& buckets,
                    std::span<const int> bucketIds, NodeId root,
                    const Point& rootPosition, const Box& box, int m,
                    int depth) {
  if (static_cast<int>(bucketIds.size()) <= m) {
    for (const int b : bucketIds) {
      auto& bucket = buckets[static_cast<std::size_t>(b)];
      if (bucket.empty()) continue;
      std::size_t repPos = 0;
      for (std::size_t i = 1; i < bucket.size(); ++i) {
        const double cur = squaredDistance(bucket[i].position, rootPosition);
        const double best =
            squaredDistance(bucket[repPos].position, rootPosition);
        if (cur < best || (cur == best && bucket[i].node < bucket[repPos].node))
          repPos = i;
      }
      const Member rep = bucket[repPos];
      bucket[repPos] = bucket.back();
      bucket.pop_back();
      tree.attach(rep.node, root, EdgeKind::kLocal);
      stack.push_back(Job{rep.node, rep.position, box.subbox(b),
                          std::move(bucket), depth + 1});
      bucket = {};
    }
    return;
  }

  const std::size_t total = bucketIds.size();
  const std::size_t groups = static_cast<std::size_t>(m);
  std::size_t begin = 0;
  for (std::size_t g = 0; g < groups && begin < total; ++g) {
    const std::size_t size = (total - begin + (groups - g) - 1) / (groups - g);
    const std::span<const int> group = bucketIds.subspan(begin, size);
    begin += size;
    const Member relay = extractClosest(buckets, group, rootPosition);
    if (relay.node == kNoNode) continue;
    tree.attach(relay.node, root, EdgeKind::kLocal);
    connectBuckets(tree, stack, buckets, group, relay.node, relay.position,
                   box, m, depth);
  }
}

void processJob(MulticastTree& tree, std::vector<Job>& stack, Job job,
                int m) {
  if (job.members.empty()) return;
  if (static_cast<int>(job.members.size()) <= m) {
    for (const Member& member : job.members)
      tree.attach(member.node, job.root, EdgeKind::kLocal);
    return;
  }
  if (job.depth > kMaxDepth ||
      job.box.diagonal() < 1e-12 * (1.0 + norm(job.box.hi))) {
    attachFan(tree, job.root, job.members, m);
    return;
  }

  std::vector<std::vector<Member>> buckets(
      std::size_t{1} << job.box.lo.dim());
  for (Member& member : job.members) {
    buckets[static_cast<std::size_t>(job.box.subboxIndex(member.position))]
        .push_back(member);
  }
  std::vector<int> nonEmpty;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (!buckets[b].empty()) nonEmpty.push_back(static_cast<int>(b));
  }
  connectBuckets(tree, stack, buckets, nonEmpty, job.root, job.rootPosition,
                 job.box, m, job.depth);
}

}  // namespace

SquareBisectionResult buildSquareBisectionTree(
    std::span<const Point> points, NodeId source,
    const SquareBisectionOptions& options) {
  const auto n = static_cast<NodeId>(points.size());
  OMT_CHECK(n >= 1, "empty point set");
  OMT_CHECK(source >= 0 && source < n, "source index out of range");
  OMT_CHECK(options.maxOutDegree >= 2, "out-degree cap must be at least 2");
  const int d = points.front().dim();
  OMT_CHECK(d >= 2 && d <= kMaxDim, "dimension out of range");

  Box box{points[0], points[0]};
  for (const Point& p : points) {
    OMT_CHECK(p.dim() == d, "mixed dimensions in point set");
    for (int c = 0; c < d; ++c) {
      box.lo[c] = std::min(box.lo[c], p[c]);
      box.hi[c] = std::max(box.hi[c], p[c]);
    }
  }

  SquareBisectionResult result{.tree = MulticastTree(n, source),
                               .boxLo = box.lo,
                               .boxHi = box.hi,
                               .pathBound = 0.0};
  std::vector<Member> members;
  members.reserve(points.size());
  for (NodeId i = 0; i < n; ++i) {
    if (i == source) continue;
    members.push_back(Member{i, points[static_cast<std::size_t>(i)]});
  }

  std::vector<Job> stack;
  stack.push_back(Job{source, points[static_cast<std::size_t>(source)], box,
                      std::move(members), 0});
  while (!stack.empty()) {
    Job job = std::move(stack.back());
    stack.pop_back();
    processJob(result.tree, stack, std::move(job),
               options.maxOutDegree);
  }
  result.tree.finalize();

  // Each level's hop is bounded by that level's box diagonal; diagonals
  // halve, so the total telescopes to 2 * diag, once per relay layer.
  result.pathBound =
      2.0 * relayLayers(d, options.maxOutDegree) * box.diagonal();
  return result;
}

}  // namespace omt
