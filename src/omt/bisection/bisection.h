// The Bisection algorithm of Section II — the constant-factor approximation
// used standalone (Theorem 1) and as the intra-cell subroutine of Algorithm
// Polar_Grid.
//
// Given points inside a ring segment and a designated source, the algorithm
// recursively divides the segment into 2^d aligned sub-segments (splitting
// the radial interval at its midpoint and every angular-cube axis in half;
// 4 sub-segments in 2D as in Figure 1, 8 in 3D), picks in each non-empty
// sub-segment the representative whose radius is closest to the local
// source's radius, connects the source to the representatives, and recurses
// with each representative as the local source.
//
// Fan-out control: with maxChildren >= 2^d the source connects every
// representative directly (the paper's out-degree-4 version in 2D). With
// smaller maxChildren m the source connects m relay points (chosen with
// radius closest to the source, as in the paper's out-degree-2 version) and
// each relay forwards to a share of the sub-segments, cascading further if
// needed; each relay layer doubles the arc term of the path bound, giving
// the paper's max(R-q, q-r) + 4Ra for m = 2 in 2D.
#pragma once

#include <span>

#include "omt/geometry/angular_cube.h"
#include "omt/geometry/point.h"
#include "omt/geometry/ring_segment.h"
#include "omt/tree/multicast_tree.h"

namespace omt {

/// Attach all `members` (point indices; must exclude `rootNode` and any
/// already-attached node) into `tree` under `rootNode`, keeping every
/// node's out-degree contribution from this call at most `maxChildren`
/// (>= 2). `memberPolar[i]` is the polar representation of `members[i]` in
/// the same frame as `segment` (and `rootRadius` the root's radius in that
/// frame); all members must lie inside `segment`. Edges are EdgeKind::kLocal.
void bisectConnect(MulticastTree& tree, std::span<const NodeId> members,
                   std::span<const PolarCoords> memberPolar, NodeId rootNode,
                   double rootRadius, const RingSegment& segment,
                   int maxChildren);

struct BisectionTreeOptions {
  /// Maximum out-degree of any node (>= 2). The paper's Theorem 1 covers 4
  /// (factor 5) and 2 (factor 9).
  int maxOutDegree = 4;
  /// Worker threads for the O(n) polar-conversion pass; 0 = auto
  /// (OMT_THREADS environment variable, else half the hardware threads).
  /// The built tree is byte-identical for every value.
  int workers = 0;
};

struct BisectionTreeResult {
  MulticastTree tree;
  /// The tight covering ring segment (about `ringCenter`) the bound refers
  /// to; its radial interval is [r, R] and angle span is `a`.
  Point ringCenter;
  double segmentInnerRadius = 0.0;   ///< r
  double segmentOuterRadius = 0.0;   ///< R
  double segmentAngle = 0.0;         ///< a (radians)
  double sourceRadius = 0.0;         ///< q
  /// Path-length upper bound, eq. (1)/(2) generalised:
  /// max(R-q, q-r) + 2 * ceil(d / log2(m)) * R * a.
  double pathBound = 0.0;
  /// Lower bound on any feasible tree's max delay:
  /// max(R-q, q-r, r*sin a) — valid because the covering segment satisfies
  /// the Theorem 1 preconditions (far ring center).
  double lowerBound = 0.0;
};

/// The standalone constant-factor approximation: construct a covering ring
/// segment with a far ring center (sin a > 5a/6, r > 0.6R, tight R, r, a),
/// then run the bisection algorithm rooted at points[source].
BisectionTreeResult buildBisectionTree(std::span<const Point> points,
                                       NodeId source,
                                       const BisectionTreeOptions& options = {});

/// The arc-term multiplier of the path bound: one relay layer per
/// ceil(d / log2(m)) links used at each recursion level (1 for m >= 2^d,
/// 2 for the paper's out-degree-2 version in 2D).
int relayLayers(int dim, int maxChildren);

}  // namespace omt
