#include "omt/bisection/bisection.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "omt/common/error.h"
#include "omt/geometry/bounding.h"
#include "omt/kernels/kernels.h"
#include "omt/kernels/polar_batch.h"
#include "omt/obs/metrics.h"
#include "omt/obs/trace.h"
#include "omt/parallel/parallel_for.h"
#include "omt/parallel/scratch_arena.h"

namespace omt {

int relayLayers(int dim, int maxChildren) {
  OMT_CHECK(dim >= 2 && dim <= kMaxDim, "dimension out of range");
  OMT_CHECK(maxChildren >= 2, "fan-out must be at least 2");
  const std::uint64_t target = std::uint64_t{1} << dim;  // 2^d sub-segments
  int layers = 0;
  std::uint64_t reach = 1;
  while (reach < target) {
    reach *= static_cast<std::uint64_t>(maxChildren);
    ++layers;
  }
  return layers;
}

namespace {

struct Member {
  NodeId node = kNoNode;
  PolarCoords polar;
};

struct Job {
  NodeId root = kNoNode;
  double rootRadius = 0.0;
  RingSegment segment;
  std::vector<Member> members;
  int depth = 0;
};

/// Past this depth (or below this segment extent) the point set is
/// effectively degenerate (coincident points); fall back to a balanced
/// m-ary fan, which is feasible for any degree cap and adds only
/// zero-length (or near-zero) hops.
constexpr int kMaxDepth = 192;

void attachFan(MulticastTree& tree, NodeId root,
               std::span<const Member> members, int m) {
  for (std::size_t i = 0; i < members.size(); ++i) {
    const NodeId parent =
        i == 0 ? root
               : members[(i - 1) / static_cast<std::size_t>(m)].node;
    tree.attach(members[i].node, parent, EdgeKind::kLocal);
  }
}

/// Remove and return the member whose radius is closest to `radius` from
/// the bucket set; returns nullopt-like Member with node == kNoNode when
/// every listed bucket is empty.
Member extractClosestRadius(std::vector<std::vector<Member>>& buckets,
                            std::span<const int> bucketIds, double radius) {
  int bestBucket = -1;
  std::size_t bestPos = 0;
  double bestDist = kInf;
  NodeId bestNode = kNoNode;
  for (const int b : bucketIds) {
    const auto& bucket = buckets[static_cast<std::size_t>(b)];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const double dist = std::abs(bucket[i].polar.radius - radius);
      // Tie-break on node id for determinism.
      if (dist < bestDist ||
          (dist == bestDist && bucket[i].node < bestNode)) {
        bestDist = dist;
        bestBucket = b;
        bestPos = i;
        bestNode = bucket[i].node;
      }
    }
  }
  if (bestBucket < 0) return {};
  auto& bucket = buckets[static_cast<std::size_t>(bestBucket)];
  Member out = bucket[bestPos];
  bucket[bestPos] = bucket.back();
  bucket.pop_back();
  return out;
}

/// Connect the given buckets under `root`: directly when they fit the
/// fan-out, through a cascade of relay points otherwise (the paper's
/// out-degree-2 construction, generalised to m-ary relays). Sub-segment
/// jobs for the next recursion level are pushed onto `stack`.
void connectBuckets(MulticastTree& tree, std::vector<Job>& stack,
                    std::vector<std::vector<Member>>& buckets,
                    std::span<const int> bucketIds, NodeId root,
                    double rootRadius, const RingSegment& segment, int m,
                    int depth) {
  if (static_cast<int>(bucketIds.size()) <= m) {
    for (const int b : bucketIds) {
      auto& bucket = buckets[static_cast<std::size_t>(b)];
      if (bucket.empty()) continue;  // drained by relay extraction
      // Representative: radius closest to the local source's radius.
      std::size_t repPos = 0;
      for (std::size_t i = 1; i < bucket.size(); ++i) {
        const double cur = std::abs(bucket[i].polar.radius - rootRadius);
        const double best = std::abs(bucket[repPos].polar.radius - rootRadius);
        if (cur < best || (cur == best && bucket[i].node < bucket[repPos].node))
          repPos = i;
      }
      const Member rep = bucket[repPos];
      bucket[repPos] = bucket.back();
      bucket.pop_back();
      tree.attach(rep.node, root, EdgeKind::kLocal);
      stack.push_back(Job{rep.node, rep.polar.radius, segment.subsegment(b),
                          std::move(bucket), depth + 1});
      bucket = {};
    }
    return;
  }

  // More buckets than fan-out: split them into m balanced contiguous groups
  // and delegate each group to a relay chosen (like the paper's
  // out-degree-2 version) with radius closest to the local source.
  const std::size_t total = bucketIds.size();
  const std::size_t groups = static_cast<std::size_t>(m);
  std::size_t begin = 0;
  for (std::size_t g = 0; g < groups && begin < total; ++g) {
    const std::size_t size = (total - begin + (groups - g) - 1) / (groups - g);
    const std::span<const int> group = bucketIds.subspan(begin, size);
    begin += size;
    const Member relay = extractClosestRadius(buckets, group, rootRadius);
    if (relay.node == kNoNode) continue;  // nothing left in this group
    tree.attach(relay.node, root, EdgeKind::kLocal);
    connectBuckets(tree, stack, buckets, group, relay.node,
                   relay.polar.radius, segment, m, depth);
  }
}

void processJob(MulticastTree& tree, std::vector<Job>& stack, Job job,
                int m) {
  if (job.members.empty()) return;
  if (static_cast<int>(job.members.size()) <= m) {
    for (const Member& member : job.members)
      tree.attach(member.node, job.root, EdgeKind::kLocal);
    return;
  }
  const double scale = 1.0 + job.segment.radial().hi;
  if (job.depth > kMaxDepth || job.segment.extentMeasure() < 1e-12 * scale) {
    attachFan(tree, job.root, job.members, m);
    return;
  }

  std::vector<std::vector<Member>> buckets(
      static_cast<std::size_t>(job.segment.subsegmentCount()));
  for (Member& member : job.members) {
    buckets[static_cast<std::size_t>(job.segment.subsegmentIndex(member.polar))]
        .push_back(member);
  }
  std::vector<int> nonEmpty;
  nonEmpty.reserve(buckets.size());
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (!buckets[b].empty()) nonEmpty.push_back(static_cast<int>(b));
  }
  connectBuckets(tree, stack, buckets, nonEmpty, job.root, job.rootRadius,
                 job.segment, m, job.depth);
}

}  // namespace

void bisectConnect(MulticastTree& tree, std::span<const NodeId> members,
                   std::span<const PolarCoords> memberPolar, NodeId rootNode,
                   double rootRadius, const RingSegment& segment,
                   int maxChildren) {
  OMT_CHECK(maxChildren >= 2, "fan-out must be at least 2");
  OMT_CHECK(members.size() == memberPolar.size(),
            "one polar coordinate per member required");
  if (members.empty()) return;

  // One add per invocation/member keeps these deterministic under the
  // parallel per-cell callers. No span here: a span per cell would swamp
  // the trace at production sizes.
  {
    auto& registry = obs::MetricsRegistry::global();
    static obs::Counter& connects =
        registry.counter("omt_bisection_connects_total");
    static obs::Counter& connected =
        registry.counter("omt_bisection_members_total");
    connects.add();
    connected.add(static_cast<std::int64_t>(members.size()));
  }

  std::vector<Member> topMembers;
  topMembers.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    OMT_CHECK(segment.contains(memberPolar[i], 1e-9 * (1.0 + segment.radial().hi)),
              "member outside the bisection segment");
    topMembers.push_back(Member{members[i], memberPolar[i]});
  }

  std::vector<Job> stack;
  stack.push_back(Job{rootNode, rootRadius, segment, std::move(topMembers), 0});
  while (!stack.empty()) {
    Job job = std::move(stack.back());
    stack.pop_back();
    processJob(tree, stack, std::move(job), maxChildren);
  }
}

BisectionTreeResult buildBisectionTree(std::span<const Point> points,
                                       NodeId source,
                                       const BisectionTreeOptions& options) {
  const auto n = static_cast<NodeId>(points.size());
  OMT_CHECK(n >= 1, "empty point set");
  OMT_CHECK(source >= 0 && source < n, "source index out of range");
  OMT_CHECK(options.maxOutDegree >= 2, "out-degree cap must be at least 2");
  const int d = points.front().dim();

  const obs::TraceSpan span("build_bisection_tree", "bisection");
  BisectionTreeResult result{.tree = MulticastTree(n, source),
                             .ringCenter = Point(d)};
  result.ringCenter = farRingCenter(points);
  const RingSegment segment = tightSegment(points, result.ringCenter);

  std::vector<PolarCoords> polar(points.size());
  const int workers = resolveWorkers(options.workers);
  if (kernels::enabled()) {
    // Batched conversion produces the same doubles as per-point toPolar.
    parallelForChunks(0, n, workers,
                      [&](std::int64_t lo, std::int64_t hi, int) {
                        ScratchArena& arena = workerArena();
                        ScratchArena::Scope scope(arena);
                        const auto ulo = static_cast<std::size_t>(lo);
                        const auto len = static_cast<std::size_t>(hi - lo);
                        kernels::PolarLanes lanes;
                        lanes.radius = arena.alloc<double>(len);
                        for (int j = 0; j < d - 1; ++j)
                          lanes.cube[static_cast<std::size_t>(j)] =
                              arena.alloc<double>(len);
                        kernels::polarOfPointsBatch(
                            points.subspan(ulo, len), result.ringCenter, lanes,
                            std::span<PolarCoords>(polar).subspan(ulo, len));
                      });
  } else {
    parallelFor(0, n, workers, [&](std::int64_t i) {
      const auto idx = static_cast<std::size_t>(i);
      polar[idx] = toPolar(points[idx], result.ringCenter);
    });
  }

  std::vector<NodeId> members;
  std::vector<PolarCoords> memberPolar;
  members.reserve(points.size() - 1);
  memberPolar.reserve(points.size() - 1);
  for (NodeId i = 0; i < n; ++i) {
    if (i == source) continue;
    members.push_back(i);
    memberPolar.push_back(polar[static_cast<std::size_t>(i)]);
  }

  const double q = polar[static_cast<std::size_t>(source)].radius;
  bisectConnect(result.tree, members, memberPolar, source, q, segment,
                options.maxOutDegree);
  result.tree.finalize();

  const double r = segment.radial().lo;
  const double bigR = segment.radial().hi;
  const double a = segment.angleSpan();
  result.segmentInnerRadius = r;
  result.segmentOuterRadius = bigR;
  result.segmentAngle = a;
  result.sourceRadius = q;
  const double radialTerm = std::max(bigR - q, q - r);
  result.pathBound =
      radialTerm + 2.0 * relayLayers(d, options.maxOutDegree) * bigR * a;
  result.lowerBound =
      std::max({radialTerm, r * std::sin(std::min(a, 1.0))});
  return result;
}

}  // namespace omt
