// The square (axis-aligned) variant of the Bisection algorithm.
//
// Section II notes that the constant-factor algorithm "is easier to
// describe for a square"; this is that version, generalised to any
// dimension: recursively halve the bounding box along every axis (2^d
// aligned sub-boxes — a quadtree in 2D, octree in 3D), pick in every
// non-empty sub-box the representative closest to the local source, connect
// and recurse. The same relay cascade as the polar version handles fan-out
// caps below 2^d.
//
// Compared with the polar version it needs no ring-center construction
// (the box is the natural frame) and its path bound telescopes over the
// box diagonal: l_p <= 2 * L * diag(box), with L = relayLayers(d, m) link
// layers per level; the price is a weaker constant than Theorem 1's when
// the point set is naturally ring-shaped. The ablation bench
// (bench_square_vs_polar) measures both on identical inputs.
#pragma once

#include <span>

#include "omt/geometry/point.h"
#include "omt/tree/multicast_tree.h"

namespace omt {

struct SquareBisectionOptions {
  /// Maximum out-degree of any node (>= 2).
  int maxOutDegree = 4;
};

struct SquareBisectionResult {
  MulticastTree tree;
  Point boxLo;           ///< bounding box of the input
  Point boxHi;
  /// Telescoped path bound: 2 * relayLayers(d, m) * |diag|.
  double pathBound = 0.0;
};

/// Build the quadtree-bisection tree over `points` rooted at
/// points[source]. Requires n >= 1 and a uniform dimension in [2, kMaxDim].
SquareBisectionResult buildSquareBisectionTree(
    std::span<const Point> points, NodeId source,
    const SquareBisectionOptions& options = {});

}  // namespace omt
