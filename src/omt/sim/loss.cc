#include "omt/sim/loss.h"

#include <algorithm>

#include "omt/common/error.h"

namespace omt {
namespace {

void checkInputs(const MulticastTree& tree, std::span<const Point> points,
                 const LossOptions& options) {
  OMT_CHECK(tree.finalized(), "tree must be finalized");
  OMT_CHECK(points.size() == static_cast<std::size_t>(tree.size()),
            "one point per tree node required");
  OMT_CHECK(options.lossProbability >= 0.0 && options.lossProbability < 1.0,
            "loss probability outside [0, 1)");
  OMT_CHECK(options.retransmitDelay >= 0.0, "negative retransmit delay");
  OMT_CHECK(options.perHopOverhead >= 0.0, "negative overhead");
}

}  // namespace

LossyDeliveryReport analyzeLossyDelivery(const MulticastTree& tree,
                                         std::span<const Point> points,
                                         const LossOptions& options) {
  checkInputs(tree, points, options);
  const double p = options.lossProbability;
  const double perHopRetry = options.retransmitDelay * p / (1.0 - p);

  LossyDeliveryReport report;
  report.expectedDelay.assign(points.size(), 0.0);
  for (const NodeId v : tree.bfsOrder()) {
    if (v == tree.root()) continue;
    const NodeId parent = tree.parentOf(v);
    report.expectedDelay[static_cast<std::size_t>(v)] =
        report.expectedDelay[static_cast<std::size_t>(parent)] +
        distance(points[static_cast<std::size_t>(parent)],
                 points[static_cast<std::size_t>(v)]) +
        options.perHopOverhead + perHopRetry;
    report.expectedMaxDelay =
        std::max(report.expectedMaxDelay,
                 report.expectedDelay[static_cast<std::size_t>(v)]);
  }
  // Each of the n - 1 edges needs 1 / (1 - p) attempts in expectation.
  report.expectedTransmissions =
      static_cast<double>(tree.size() - 1) / (1.0 - p);
  return report;
}

LossySimResult simulateLossyMulticast(const MulticastTree& tree,
                                      std::span<const Point> points,
                                      const LossOptions& options, Rng& rng) {
  checkInputs(tree, points, options);
  const double p = options.lossProbability;

  LossySimResult result;
  result.deliveryTime.assign(points.size(), 0.0);
  for (const NodeId v : tree.bfsOrder()) {
    if (v == tree.root()) continue;
    const NodeId parent = tree.parentOf(v);
    std::int64_t attempts = 1;
    while (p > 0.0 && rng.uniform() < p) ++attempts;
    result.transmissions += attempts;
    result.deliveryTime[static_cast<std::size_t>(v)] =
        result.deliveryTime[static_cast<std::size_t>(parent)] +
        distance(points[static_cast<std::size_t>(parent)],
                 points[static_cast<std::size_t>(v)]) +
        options.perHopOverhead +
        options.retransmitDelay * static_cast<double>(attempts - 1);
    result.maxDelivery =
        std::max(result.maxDelivery,
                 result.deliveryTime[static_cast<std::size_t>(v)]);
  }
  return result;
}

}  // namespace omt
