#include "omt/sim/loss.h"

#include <algorithm>

#include "omt/common/error.h"

namespace omt {
namespace {

void checkInputs(const MulticastTree& tree, std::span<const Point> points,
                 const LossOptions& options) {
  OMT_CHECK(tree.finalized(), "tree must be finalized");
  OMT_CHECK(points.size() == static_cast<std::size_t>(tree.size()),
            "one point per tree node required");
  OMT_CHECK(options.lossProbability >= 0.0 && options.lossProbability < 1.0,
            "loss probability outside [0, 1)");
  OMT_CHECK(options.retransmitDelay >= 0.0, "negative retransmit delay");
  OMT_CHECK(options.perHopOverhead >= 0.0, "negative overhead");
  validateGilbertElliott(options.burst);
}

}  // namespace

double expectedAttemptsPerHop(const LossOptions& options) {
  const double pG = options.lossProbability;
  if (!options.burst.enabled()) return 1.0 / (1.0 - pG);
  // Two coupled renewal equations for the expected attempt count starting
  // the next draw in the good (EG) / bad (EB) state; the chain advances
  // one transition per attempt, after the loss draw:
  //   EG = 1 + pG ((1 - a) EG + a EB)
  //   EB = 1 + pB (b EG + (1 - b) EB)
  // with a = burstStart, b = burstStop, pB = burstLoss. Eliminating EB:
  const double a = options.burst.burstStartProbability;
  const double b = options.burst.burstStopProbability;
  const double pB = options.burst.burstLossProbability;
  const double d = 1.0 - pB * (1.0 - b);
  return (d + pG * a) / ((1.0 - pG * (1.0 - a)) * d - pG * a * pB * b);
}

LossyDeliveryReport analyzeLossyDelivery(const MulticastTree& tree,
                                         std::span<const Point> points,
                                         const LossOptions& options) {
  checkInputs(tree, points, options);
  const double perHopRetry =
      options.retransmitDelay * (expectedAttemptsPerHop(options) - 1.0);

  LossyDeliveryReport report;
  report.expectedDelay.assign(points.size(), 0.0);
  for (const NodeId v : tree.bfsOrder()) {
    if (v == tree.root()) continue;
    const NodeId parent = tree.parentOf(v);
    report.expectedDelay[static_cast<std::size_t>(v)] =
        report.expectedDelay[static_cast<std::size_t>(parent)] +
        distance(points[static_cast<std::size_t>(parent)],
                 points[static_cast<std::size_t>(v)]) +
        options.perHopOverhead + perHopRetry;
    report.expectedMaxDelay =
        std::max(report.expectedMaxDelay,
                 report.expectedDelay[static_cast<std::size_t>(v)]);
  }
  // Each of the n - 1 edges needs the same expected attempt count.
  report.expectedTransmissions =
      static_cast<double>(tree.size() - 1) * expectedAttemptsPerHop(options);
  return report;
}

LossySimResult simulateLossyMulticast(const MulticastTree& tree,
                                      std::span<const Point> points,
                                      const LossOptions& options, Rng& rng) {
  checkInputs(tree, points, options);
  const double p = options.lossProbability;

  LossySimResult result;
  result.deliveryTime.assign(points.size(), 0.0);
  for (const NodeId v : tree.bfsOrder()) {
    if (v == tree.root()) continue;
    const NodeId parent = tree.parentOf(v);
    // Fresh chain per edge: retries on one link burst together, links stay
    // independent. Disabled chain == the historical geometric loop, draw
    // for draw.
    GilbertElliottChain chain;
    std::int64_t attempts = 1;
    while (chain.roll(rng, options.burst, p, 0.0)) ++attempts;
    result.transmissions += attempts;
    result.deliveryTime[static_cast<std::size_t>(v)] =
        result.deliveryTime[static_cast<std::size_t>(parent)] +
        distance(points[static_cast<std::size_t>(parent)],
                 points[static_cast<std::size_t>(v)]) +
        options.perHopOverhead +
        options.retransmitDelay * static_cast<double>(attempts - 1);
    result.maxDelivery =
        std::max(result.maxDelivery,
                 result.deliveryTime[static_cast<std::size_t>(v)]);
  }
  return result;
}

}  // namespace omt
