#include "omt/sim/multicast_sim.h"

#include <algorithm>
#include <queue>

#include "omt/common/error.h"
#include "omt/obs/metrics.h"
#include "omt/obs/trace.h"

namespace omt {
namespace {

struct Event {
  double time = 0.0;
  NodeId node = kNoNode;

  bool operator>(const Event& other) const { return time > other.time; }
};

/// Delay-height of every subtree (longest downward path), used by
/// ChildOrder::kDeepestFirst.
std::vector<double> subtreeHeights(const MulticastTree& tree,
                                   std::span<const Point> points) {
  std::vector<double> height(points.size(), 0.0);
  const auto& order = tree.bfsOrder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    if (v == tree.root()) continue;
    const NodeId p = tree.parentOf(v);
    const auto vi = static_cast<std::size_t>(v);
    const auto pi = static_cast<std::size_t>(p);
    height[pi] = std::max(height[pi],
                          height[vi] + distance(points[pi], points[vi]));
  }
  return height;
}

}  // namespace

SimResult simulateWithFailures(const MulticastTree& tree,
                               std::span<const Point> points,
                               std::span<const NodeId> failed,
                               const SimOptions& options) {
  const obs::TraceSpan span("simulate_multicast", "sim");
  OMT_CHECK(tree.finalized(), "tree must be finalized");
  OMT_CHECK(points.size() == static_cast<std::size_t>(tree.size()),
            "one point per tree node required");
  OMT_CHECK(options.perHopOverhead >= 0.0, "negative overhead");
  OMT_CHECK(options.serializationInterval >= 0.0,
            "negative serialization interval");

  std::vector<std::uint8_t> isFailed(points.size(), 0);
  for (const NodeId v : failed) {
    OMT_CHECK(v >= 0 && v < tree.size(), "failed node out of range");
    OMT_CHECK(v != tree.root(), "the source must not fail");
    isFailed[static_cast<std::size_t>(v)] = 1;
  }

  SimResult result;
  result.deliveryTime.assign(points.size(), kInf);
  result.deliveryTime[static_cast<std::size_t>(tree.root())] = 0.0;

  std::vector<double> height;
  if (options.childOrder == ChildOrder::kDeepestFirst)
    height = subtreeHeights(tree, points);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  queue.push(Event{0.0, tree.root()});
  std::vector<NodeId> children;
  double meanAccum = 0.0;

  while (!queue.empty()) {
    const Event event = queue.top();
    queue.pop();
    const NodeId v = event.node;
    const auto vi = static_cast<std::size_t>(v);
    ++result.reached;
    result.maxDelivery = std::max(result.maxDelivery, event.time);
    if (v != tree.root()) meanAccum += event.time;
    if (isFailed[vi]) continue;  // received but does not forward

    const auto kids = tree.childrenOf(v);
    children.assign(kids.begin(), kids.end());
    switch (options.childOrder) {
      case ChildOrder::kTreeOrder:
        break;
      case ChildOrder::kNearestFirst:
      case ChildOrder::kFarthestFirst: {
        const bool nearest = options.childOrder == ChildOrder::kNearestFirst;
        std::stable_sort(children.begin(), children.end(),
                         [&](NodeId a, NodeId b) {
                           const double da = distance(
                               points[vi], points[static_cast<std::size_t>(a)]);
                           const double db = distance(
                               points[vi], points[static_cast<std::size_t>(b)]);
                           return nearest ? da < db : da > db;
                         });
        break;
      }
      case ChildOrder::kDeepestFirst:
        std::stable_sort(
            children.begin(), children.end(), [&](NodeId a, NodeId b) {
              const auto ai = static_cast<std::size_t>(a);
              const auto bi = static_cast<std::size_t>(b);
              const double ha =
                  height[ai] + distance(points[vi], points[ai]);
              const double hb =
                  height[bi] + distance(points[vi], points[bi]);
              return ha > hb;
            });
        break;
    }

    for (std::size_t slot = 0; slot < children.size(); ++slot) {
      const NodeId child = children[slot];
      const auto ci = static_cast<std::size_t>(child);
      double departure = event.time + options.perHopOverhead;
      if (options.model == TransmissionModel::kSerialized)
        departure += static_cast<double>(slot) * options.serializationInterval;
      const double arrival = departure + distance(points[vi], points[ci]);
      result.deliveryTime[ci] = arrival;
      ++result.messagesSent;
      queue.push(Event{arrival, child});
    }
  }

  result.meanDelivery =
      result.reached > 1 ? meanAccum / static_cast<double>(result.reached - 1)
                         : 0.0;

  // Deterministic: the event-driven sweep is sequential, one add per run.
  {
    auto& registry = obs::MetricsRegistry::global();
    static obs::Counter& runs = registry.counter("omt_sim_runs_total");
    static obs::Counter& messages =
        registry.counter("omt_sim_messages_total");
    runs.add();
    messages.add(result.messagesSent);
  }
  return result;
}

SimResult simulateMulticast(const MulticastTree& tree,
                            std::span<const Point> points,
                            const SimOptions& options) {
  return simulateWithFailures(tree, points, {}, options);
}

}  // namespace omt
