// Discrete-event simulation of a multicast dissemination over an overlay
// tree.
//
// The paper's analytical model charges every tree edge its Euclidean length
// and lets a node forward to all children simultaneously — so the max
// delivery time equals the tree radius. The simulator reproduces that model
// (kParallel; used as an end-to-end cross-check of the metrics code) and
// adds the more realistic serialised model that motivates the degree
// constraint in the first place: a node with limited uplink bandwidth sends
// to its children one after another, paying a transmission slot per child
// (kSerialized). Under serialisation, large fan-outs hurt — which is why
// bounded-degree trees matter even when extra fan-out is notionally free.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "omt/geometry/point.h"
#include "omt/tree/multicast_tree.h"

namespace omt {

enum class TransmissionModel : std::uint8_t {
  kParallel,    ///< all children receive concurrently (the paper's model)
  kSerialized,  ///< one transmission slot per child, in a chosen order
};

enum class ChildOrder : std::uint8_t {
  kTreeOrder,      ///< as stored in the tree
  kNearestFirst,   ///< shortest edge first
  kFarthestFirst,  ///< longest edge first (greedy for max-delay)
  kDeepestFirst,   ///< child with the tallest delay-subtree first
};

struct SimOptions {
  TransmissionModel model = TransmissionModel::kParallel;
  /// Fixed per-forward processing overhead added to every edge.
  double perHopOverhead = 0.0;
  /// Time between consecutive child sends in the serialised model (e.g.
  /// message size / uplink bandwidth). The i-th child (0-based) departs at
  /// receive time + overhead + i * serializationInterval.
  double serializationInterval = 0.0;
  ChildOrder childOrder = ChildOrder::kTreeOrder;
};

struct SimResult {
  /// Delivery time per node (source: 0). Infinite for unreachable nodes
  /// when failures are injected.
  std::vector<double> deliveryTime;
  double maxDelivery = 0.0;   ///< over reached nodes
  double meanDelivery = 0.0;  ///< over reached non-source nodes
  std::int64_t messagesSent = 0;
  std::int64_t reached = 0;   ///< nodes that received the message
};

/// Simulate one dissemination from the root of `tree`. The tree must be
/// finalized; `points[i]` is node i's position (edge latency = distance).
SimResult simulateMulticast(const MulticastTree& tree,
                            std::span<const Point> points,
                            const SimOptions& options = {});

/// Same, but every node in `failed` drops the message instead of
/// forwarding (its whole subtree is unreachable). The source must not be
/// failed.
SimResult simulateWithFailures(const MulticastTree& tree,
                               std::span<const Point> points,
                               std::span<const NodeId> failed,
                               const SimOptions& options = {});

}  // namespace omt
