// Continuous-stream simulation: the reason the degree constraint exists.
//
// A live source emits a message every `messageInterval`; each forwarder
// owns ONE uplink that is busy `transmissionTime` per child per message.
// A node with out-degree deg therefore needs deg * transmissionTime <=
// messageInterval to keep up — more fan-out than the uplink supports and
// its queue grows without bound. This is the bandwidth constraint the
// paper turns into the out-degree cap; the simulator measures it directly:
// steady-state end-to-end delays for sustainable trees, linear backlog
// growth for over-subscribed ones (the star collapses, bounded-degree
// trees do not).
#pragma once

#include <cstdint>
#include <span>

#include "omt/geometry/point.h"
#include "omt/tree/multicast_tree.h"

namespace omt {

struct StreamOptions {
  double messageInterval = 1.0;   ///< time between source emissions
  std::int64_t messageCount = 64; ///< messages to push through the tree
  double transmissionTime = 0.1;  ///< uplink busy time per child per message
  double perHopOverhead = 0.0;    ///< fixed forwarding latency per hop
};

struct StreamResult {
  /// Worst end-to-end delay of the FIRST message (no queueing yet) — the
  /// serialized single-shot delay.
  double firstMessageMaxDelay = 0.0;
  /// Worst end-to-end delay of the LAST message (queueing included).
  double lastMessageMaxDelay = 0.0;
  /// (last - first) / (messageCount - 1): ~0 for a sustainable tree,
  /// positive slope = unbounded backlog.
  double backlogGrowthPerMessage = 0.0;
  /// Whether the tree satisfies maxOutDegree * transmissionTime <=
  /// messageInterval (the analytic sustainability condition).
  bool sustainable = false;
  /// Largest per-message uplink load in the tree:
  /// maxOutDegree * transmissionTime.
  double bottleneckLoad = 0.0;
};

/// Push `messageCount` messages through `tree`; every node forwards each
/// message to its children in stored order over its serialised uplink.
StreamResult simulateStream(const MulticastTree& tree,
                            std::span<const Point> points,
                            const StreamOptions& options = {});

}  // namespace omt
