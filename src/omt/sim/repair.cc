#include "omt/sim/repair.h"

#include <algorithm>

#include "omt/common/error.h"

namespace omt {

RepairResult repairAfterDepartures(const MulticastTree& tree,
                                   std::span<const Point> points,
                                   std::span<const NodeId> departed,
                                   int maxOutDegree) {
  OMT_CHECK(tree.finalized(), "tree must be finalized");
  OMT_CHECK(points.size() == static_cast<std::size_t>(tree.size()),
            "one point per tree node required");
  OMT_CHECK(maxOutDegree >= 1, "out-degree cap must be positive");

  std::vector<std::uint8_t> gone(points.size(), 0);
  for (const NodeId v : departed) {
    OMT_CHECK(v >= 0 && v < tree.size(), "departed node out of range");
    OMT_CHECK(v != tree.root(), "the source must survive");
    gone[static_cast<std::size_t>(v)] = 1;
  }

  // Survivor numbering.
  std::vector<NodeId> survivors;
  std::vector<NodeId> toSurvivor(points.size(), kNoNode);
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (!gone[static_cast<std::size_t>(v)]) {
      toSurvivor[static_cast<std::size_t>(v)] =
          static_cast<NodeId>(survivors.size());
      survivors.push_back(v);
    }
  }
  const auto m = static_cast<NodeId>(survivors.size());
  const NodeId newRoot = toSurvivor[static_cast<std::size_t>(tree.root())];

  // Preserved edges: survivor -> surviving parent. Orphan roots keep
  // kNoNode and are re-attached below.
  std::vector<NodeId> newParent(static_cast<std::size_t>(m), kNoNode);
  for (NodeId s = 0; s < m; ++s) {
    const NodeId v = survivors[static_cast<std::size_t>(s)];
    if (v == tree.root()) continue;
    const NodeId p = tree.parentOf(v);
    if (!gone[static_cast<std::size_t>(p)])
      newParent[static_cast<std::size_t>(s)] =
          toSurvivor[static_cast<std::size_t>(p)];
  }

  // Preserved-forest children lists and degrees.
  std::vector<std::vector<NodeId>> children(static_cast<std::size_t>(m));
  std::vector<std::int32_t> degree(static_cast<std::size_t>(m), 0);
  for (NodeId s = 0; s < m; ++s) {
    const NodeId p = newParent[static_cast<std::size_t>(s)];
    if (p != kNoNode) {
      children[static_cast<std::size_t>(p)].push_back(s);
      ++degree[static_cast<std::size_t>(p)];
    }
  }

  // Connected component of the root under preserved edges.
  std::vector<std::uint8_t> connected(static_cast<std::size_t>(m), 0);
  std::vector<NodeId> stack{newRoot};
  connected[static_cast<std::size_t>(newRoot)] = 1;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (const NodeId c : children[static_cast<std::size_t>(v)]) {
      connected[static_cast<std::size_t>(c)] = 1;
      stack.push_back(c);
    }
  }

  std::vector<NodeId> orphanRoots;
  for (NodeId s = 0; s < m; ++s) {
    if (s != newRoot && newParent[static_cast<std::size_t>(s)] == kNoNode)
      orphanRoots.push_back(s);
  }

  RepairResult result{.survivors = std::move(survivors),
                      .originalToSurvivor = std::move(toSurvivor),
                      .tree = MulticastTree(m, newRoot),
                      .reattachedSubtrees = 0};

  auto pointOf = [&](NodeId s) -> const Point& {
    return points[static_cast<std::size_t>(
        result.survivors[static_cast<std::size_t>(s)])];
  };

  // Greedy global re-attachment: repeatedly take the (orphan root,
  // connected node with spare capacity) pair at minimum distance.
  std::vector<std::uint8_t> attachedOrphan(orphanRoots.size(), 0);
  for (std::size_t round = 0; round < orphanRoots.size(); ++round) {
    double bestDist = kInf;
    std::size_t bestOrphan = 0;
    NodeId bestParent = kNoNode;
    for (std::size_t o = 0; o < orphanRoots.size(); ++o) {
      if (attachedOrphan[o]) continue;
      const NodeId root = orphanRoots[o];
      for (NodeId c = 0; c < m; ++c) {
        if (!connected[static_cast<std::size_t>(c)]) continue;
        if (degree[static_cast<std::size_t>(c)] >= maxOutDegree) continue;
        const double dist = squaredDistance(pointOf(root), pointOf(c));
        if (dist < bestDist) {
          bestDist = dist;
          bestOrphan = o;
          bestParent = c;
        }
      }
    }
    if (bestParent == kNoNode) {
      // The distance scan found no pair — every candidate comparison can
      // fail when coordinates are non-finite (inf/NaN distances), or the
      // scan's view of spare capacity is exhausted. Fall back to a
      // distance-blind capacity walk from the root: with cap >= 1 the
      // connected component always has spare capacity somewhere (at worst
      // a leaf), so feasibility never depends on the geometry.
      while (attachedOrphan[bestOrphan]) ++bestOrphan;
      std::vector<NodeId> walk{newRoot};
      for (std::size_t i = 0; i < walk.size(); ++i) {
        const NodeId c = walk[i];
        if (degree[static_cast<std::size_t>(c)] < maxOutDegree) {
          bestParent = c;
          break;
        }
        for (const NodeId ch : children[static_cast<std::size_t>(c)])
          walk.push_back(ch);
      }
    }
    OMT_ASSERT(bestParent != kNoNode,
               "no feasible re-attachment despite cap >= 1");
    const NodeId root = orphanRoots[bestOrphan];
    attachedOrphan[bestOrphan] = 1;
    newParent[static_cast<std::size_t>(root)] = bestParent;
    ++degree[static_cast<std::size_t>(bestParent)];
    children[static_cast<std::size_t>(bestParent)].push_back(root);
    ++result.reattachedSubtrees;
    // The whole orphaned subtree becomes connected.
    stack.assign(1, root);
    connected[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId c : children[static_cast<std::size_t>(v)]) {
        connected[static_cast<std::size_t>(c)] = 1;
        stack.push_back(c);
      }
    }
  }

  for (NodeId s = 0; s < m; ++s) {
    if (s == newRoot) continue;
    result.tree.attach(s, newParent[static_cast<std::size_t>(s)],
                       EdgeKind::kLocal);
  }
  result.tree.finalize();
  return result;
}

}  // namespace omt
