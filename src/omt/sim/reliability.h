// Analytic reliability of a multicast tree under independent node
// failures.
//
// A receiver stays connected only while every forwarder on its root path
// is up, so deep trees trade delay for fragility — the flip side of the
// degree constraint (higher fan-out = shallower = more robust, but slower
// under serialised sending). For per-node survival probability q = 1 - p:
//   P(v reachable) = q^{depth(v)}  (the root is always up),
// and the expected reachable fraction is a single O(n) pass. Exact, no
// Monte Carlo — though estimateReachableFraction() provides one for
// cross-checking.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "omt/random/rng.h"
#include "omt/tree/multicast_tree.h"

namespace omt {

struct ReliabilityReport {
  /// Expected fraction of non-root nodes that can still receive, under
  /// independent failure of every non-root node with probability p.
  double expectedReachableFraction = 0.0;
  /// P(reachable) of the worst-placed (deepest) receiver: q^maxDepth.
  double worstReceiverReliability = 0.0;
  /// Expected number of receivers cut off per single random node failure
  /// (the mean subtree size over non-root nodes) — a churn-impact measure
  /// independent of p.
  double meanSubtreeSize = 0.0;
};

/// Exact reliability analysis of `tree` under independent per-node failure
/// probability `failureProbability` in [0, 1). The root never fails.
ReliabilityReport analyzeReliability(const MulticastTree& tree,
                                     double failureProbability);

/// Monte-Carlo estimate of expectedReachableFraction (for tests and as a
/// template for non-independent failure models).
double estimateReachableFraction(const MulticastTree& tree,
                                 double failureProbability, int trials,
                                 Rng& rng);

/// Subtree sizes (including the node itself) for every node; O(n).
std::vector<std::int64_t> subtreeSizes(const MulticastTree& tree);

}  // namespace omt
