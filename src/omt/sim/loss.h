// Lossy links and retransmission.
//
// Overlay links are TCP/UDP unicast paths; packets drop. With per-attempt
// loss probability p and a retransmission timeout T, a hop's extra delay is
// geometric: E[extra] = T * p / (1 - p), so expected delivery times are a
// per-edge constant shift — computable exactly in one pass. The Monte-Carlo
// simulator draws the actual geometric retry counts and cross-checks the
// analysis.
//
// Correlated loss: `burst` attaches the data plane's Gilbert–Elliott chain
// (sim/dataplane/link.h) to each hop, so retry counts burst instead of
// being i.i.d. geometric. With the chain disabled the RNG consumption is
// bit-identical to the historical plain-geometric path (exactly one uniform
// draw per attempt when p > 0, none at p == 0), and the analysis still
// solves the chain's expected attempt count in closed form, so the
// Monte-Carlo mean converges to the analytic answer either way.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "omt/geometry/point.h"
#include "omt/random/rng.h"
#include "omt/sim/dataplane/link.h"
#include "omt/tree/multicast_tree.h"

namespace omt {

struct LossOptions {
  /// Per-transmission-attempt loss probability, in [0, 1).
  double lossProbability = 0.01;
  /// Delay added per retransmission (timeout + resend).
  double retransmitDelay = 0.5;
  /// Fixed per-hop forwarding overhead (as in SimOptions).
  double perHopOverhead = 0.0;
  /// Optional Gilbert–Elliott bursty-loss chain, applied per hop (each
  /// edge gets a fresh chain starting in the good state, so retries on one
  /// link burst together but links stay independent). Disabled by default,
  /// which leaves the geometric draw sequence bit-identical to the
  /// pre-burst implementation.
  GilbertElliottOptions burst;
};

/// Expected transmission attempts per hop under `options` (the closed-form
/// solution of the two-state chain started in the good state; reduces to
/// 1 / (1 - p) when the chain is disabled).
double expectedAttemptsPerHop(const LossOptions& options);

struct LossyDeliveryReport {
  /// Expected delivery time per node under geometric retransmission.
  std::vector<double> expectedDelay;
  double expectedMaxDelay = 0.0;
  /// Expected number of transmissions (first attempts + retries).
  double expectedTransmissions = 0.0;
};

/// Exact expected delivery times: every hop costs
/// distance + overhead + retransmitDelay * p / (1 - p).
LossyDeliveryReport analyzeLossyDelivery(const MulticastTree& tree,
                                         std::span<const Point> points,
                                         const LossOptions& options);

struct LossySimResult {
  std::vector<double> deliveryTime;
  double maxDelivery = 0.0;
  std::int64_t transmissions = 0;  ///< attempts including retries
};

/// One Monte-Carlo dissemination with geometric per-hop retry counts.
LossySimResult simulateLossyMulticast(const MulticastTree& tree,
                                      std::span<const Point> points,
                                      const LossOptions& options, Rng& rng);

}  // namespace omt
