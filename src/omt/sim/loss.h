// Lossy links and retransmission.
//
// Overlay links are TCP/UDP unicast paths; packets drop. With per-attempt
// loss probability p and a retransmission timeout T, a hop's extra delay is
// geometric: E[extra] = T * p / (1 - p), so expected delivery times are a
// per-edge constant shift — computable exactly in one pass. The Monte-Carlo
// simulator draws the actual geometric retry counts and cross-checks the
// analysis (and is the extension point for correlated-loss models).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "omt/geometry/point.h"
#include "omt/random/rng.h"
#include "omt/tree/multicast_tree.h"

namespace omt {

struct LossOptions {
  /// Per-transmission-attempt loss probability, in [0, 1).
  double lossProbability = 0.01;
  /// Delay added per retransmission (timeout + resend).
  double retransmitDelay = 0.5;
  /// Fixed per-hop forwarding overhead (as in SimOptions).
  double perHopOverhead = 0.0;
};

struct LossyDeliveryReport {
  /// Expected delivery time per node under geometric retransmission.
  std::vector<double> expectedDelay;
  double expectedMaxDelay = 0.0;
  /// Expected number of transmissions (first attempts + retries).
  double expectedTransmissions = 0.0;
};

/// Exact expected delivery times: every hop costs
/// distance + overhead + retransmitDelay * p / (1 - p).
LossyDeliveryReport analyzeLossyDelivery(const MulticastTree& tree,
                                         std::span<const Point> points,
                                         const LossOptions& options);

struct LossySimResult {
  std::vector<double> deliveryTime;
  double maxDelivery = 0.0;
  std::int64_t transmissions = 0;  ///< attempts including retries
};

/// One Monte-Carlo dissemination with geometric per-hop retry counts.
LossySimResult simulateLossyMulticast(const MulticastTree& tree,
                                      std::span<const Point> points,
                                      const LossOptions& options, Rng& rng);

}  // namespace omt
