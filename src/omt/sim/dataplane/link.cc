#include "omt/sim/dataplane/link.h"

#include <algorithm>

#include "omt/common/error.h"

namespace omt {

double GilbertElliottOptions::stationaryBadProbability() const {
  if (!enabled()) return 0.0;
  return burstStartProbability /
         (burstStartProbability + burstStopProbability);
}

double GilbertElliottOptions::stationaryLossProbability(
    double baseLoss) const {
  const double bad = stationaryBadProbability();
  return (1.0 - bad) * baseLoss + bad * burstLossProbability;
}

void validateGilbertElliott(const GilbertElliottOptions& options) {
  OMT_CHECK(options.burstLossProbability >= 0.0 &&
                options.burstLossProbability < 1.0,
            "burst loss probability outside [0, 1)");
  OMT_CHECK(options.burstStartProbability >= 0.0 &&
                options.burstStartProbability < 1.0,
            "burst start probability outside [0, 1)");
  OMT_CHECK(!options.enabled() || (options.burstStopProbability > 0.0 &&
                                   options.burstStopProbability <= 1.0),
            "enabled burst chain needs stop probability in (0, 1]");
}

bool GilbertElliottChain::roll(Rng& rng, const GilbertElliottOptions& options,
                               double baseLoss, double extraLoss) {
  if (!options.enabled()) {
    // Plain i.i.d. path: exactly one draw per transmission when lossy, no
    // draws at zero loss (the geometric-retry code in sim/loss.cc relies on
    // this sequence staying bit-identical).
    if (extraLoss <= 0.0)
      return baseLoss > 0.0 && rng.uniform() < baseLoss;
    const double p = 1.0 - (1.0 - baseLoss) * (1.0 - extraLoss);
    return rng.uniform() < p;
  }
  const double stateLoss = bad_ ? options.burstLossProbability : baseLoss;
  const double p =
      extraLoss <= 0.0 ? stateLoss
                       : 1.0 - (1.0 - stateLoss) * (1.0 - extraLoss);
  const bool lost = p > 0.0 && rng.uniform() < p;
  // Advance the chain after the loss draw, one transition draw per
  // transmission.
  if (bad_) {
    if (rng.uniform() < options.burstStopProbability) bad_ = false;
  } else {
    if (rng.uniform() < options.burstStartProbability) bad_ = true;
  }
  return lost;
}

double lossBurstBoostAt(const std::vector<LossBurstWindow>& windows,
                        double now) {
  double pass = 1.0;
  for (const LossBurstWindow& w : windows) {
    if (now >= w.start && now < w.end) pass *= 1.0 - w.extraLoss;
  }
  return 1.0 - pass;
}

UplinkQueue::UplinkQueue(int capacity) : capacity_(capacity) {
  OMT_CHECK(capacity >= 1, "uplink queue capacity must be positive");
  departures_.assign(static_cast<std::size_t>(capacity), 0.0);
}

void UplinkQueue::evictDeparted(double now) {
  while (count_ > 0 && departures_[head_] <= now) {
    head_ = (head_ + 1) % static_cast<std::uint32_t>(capacity_);
    --count_;
  }
}

double UplinkQueue::enqueue(double now, double serialization) {
  evictDeparted(now);
  if (count_ >= static_cast<std::uint32_t>(capacity_)) {
    ++drops_;
    return -1.0;
  }
  const double start = std::max(now, uplinkFree_);
  const double depart = start + serialization;
  uplinkFree_ = depart;
  departures_[(head_ + count_) % static_cast<std::uint32_t>(capacity_)] =
      depart;
  ++count_;
  peak_ = std::max(peak_, static_cast<int>(count_));
  return depart;
}

int UplinkQueue::occupancy(double now) {
  evictDeparted(now);
  return static_cast<int>(count_);
}

}  // namespace omt
