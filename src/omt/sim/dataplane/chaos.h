// Data-plane chaos driver: one seeded end-to-end robustness scenario.
//
// Samples a host set, builds the Polar_Grid tree, samples a crash schedule
// over the non-root nodes, projects a PR 1 control-plane disruption
// schedule's loss-burst windows onto the data plane, runs the packet engine
// (engine.h), and then audits the hard delivery invariants the CI gate
// enforces across 100 seeds:
//   * exactly-once, in-order: every live receiver's delivery log hashes to
//     the canonical in-order hash of [first, first + packetCount) and its
//     delivery head sits exactly at the end of the stream;
//   * bounded buffers: peak reorder-window occupancy, retransmit-ring
//     occupancy, and uplink-queue depth never exceed their configured
//     capacities;
//   * deterministic replay: a second run with identical inputs reproduces
//     the same delivery-log hash, event count, and traffic counters (the
//     chaos *test* additionally replays under different OMT_THREADS values).
// A scenario whose faults leave no feasible recovery path ends `stalled`
// with undelivered > 0 and fails the audit loudly — the gate's job is to
// prove the default envelope always converges.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "omt/fault/injector.h"
#include "omt/sim/dataplane/engine.h"

namespace omt::dataplane {

/// Sample `round(fraction * (n - 1))` distinct non-root crash victims with
/// crash times uniform in [0, window). Deterministic in (seed, tree shape).
std::vector<CrashEvent> sampleCrashSchedule(std::uint64_t seed,
                                            const MulticastTree& tree,
                                            double fraction, double window);

/// Project a control-plane disruption schedule onto the data plane: every
/// window with a positive loss boost becomes a data-plane loss burst
/// (partition and delay windows have no packet-level analogue here).
std::vector<LossBurstWindow> lossBurstsFromDisruption(
    const std::vector<DisruptionWindow>& windows);

/// FNV-1a hash of the canonical in-order delivery log
/// [first, first + count): what every live receiver's log must equal.
std::uint64_t expectedLogHash(std::uint32_t firstSequence,
                              std::int64_t count);

/// The chaos envelope's engine defaults: 400 packets under 2% i.i.d. loss,
/// a mild Gilbert–Elliott burst chain (~5% stationary bad state dropping
/// 40%), and 1% control loss.
DataplaneOptions defaultChaosEngineOptions();

/// The chaos envelope's disruption defaults: frequent short loss bursts
/// boosting data loss by 30% while active.
DisruptionOptions defaultChaosDisruption();

struct DataplaneChaosOptions {
  std::int64_t hostCount = 200;
  int dim = 2;
  int maxOutDegree = 6;  ///< Polar_Grid degree cap (paper 2D default)
  std::uint64_t seed = 1;

  /// Engine knobs. `crashes`, `lossBursts`, `maxOutDegree`, and `seed` are
  /// overwritten by the driver; everything else passes through.
  DataplaneOptions engine = defaultChaosEngineOptions();

  /// Fraction of non-root nodes crashed mid-stream.
  double crashFraction = 0.05;
  /// Crash times fall within this fraction of the emission span, so
  /// recovery always has live stream time left to exercise re-homing.
  double crashWindowFraction = 0.6;

  /// Generate loss-burst windows with generateDisruption (duration is
  /// overridden to cover the stream) and apply them to the data plane.
  bool injectDisruption = true;
  DisruptionOptions disruption = defaultChaosDisruption();

  /// Sample per-node retransmit rings from {64, 256, 1024} (the root gets
  /// max(4096, packetCount) so recovery stays feasible). Small rings under
  /// loss and crashes are what drive eviction misses and the recursive
  /// upward refetch path. Ignored when engine.retransmitBufferPerNode is
  /// already set.
  bool heterogeneousBuffers = true;

  /// Re-run the engine and require bit-identical results.
  bool verifyDeterminism = true;
};

struct DataplaneChaosResult {
  DataplaneResult run;
  std::int64_t crashesScheduled = 0;
  std::int64_t burstWindows = 0;
  bool deterministic = true;
  bool ok = true;
  std::string failure;  ///< first violated invariant, empty when ok

  explicit operator bool() const { return ok; }
};

/// Run one seeded data-plane chaos scenario end to end and audit it.
/// Deterministic in the options.
DataplaneChaosResult runDataplaneChaos(const DataplaneChaosOptions& options);

}  // namespace omt::dataplane
