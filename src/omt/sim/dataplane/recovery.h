// Receiver- and sender-side recovery state for the packet data plane.
//
// Packets carry 32-bit sequence numbers that wrap; each receiver keeps an
// unwrapped 64-bit view (RFC 1982-style serial arithmetic relative to the
// highest sequence it has seen) and enforces exactly-once, in-order
// delivery:
//   * in-order arrivals deliver immediately and flush any buffered run;
//   * out-of-order arrivals park in a bounded reorder window (a bitmap —
//     the simulation carries no payload); arrivals beyond the window are
//     dropped and recovered later, so receiver memory stays bounded;
//   * anything at or below the delivery head, or already parked, is a
//     duplicate and is suppressed;
//   * missing ranges are NACKed to the parent under a capped exponential
//     backoff with at most one outstanding NACK per gap per firing — the
//     storm suppression that keeps a lossy uplink from drowning in repair
//     chatter. Progress (a delivery-head advance) resets the backoff.
// The sender side holds a *virtual* retransmit ring: a node that has
// delivered sequences [base, head) can retransmit the most recent
// `capacity` of them. Payloads don't exist in the simulation, so the ring
// stores nothing — it is pure accounting (occupancy, evictions), which is
// exactly the bounded-memory contract the chaos gate asserts. A NACK for an
// evicted sequence is an eviction miss; the engine then refetches it from
// the sender's own parent (see engine.h).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace omt::dataplane {

/// The wire sequence space: 32 bits, wrapping.
inline constexpr std::uint64_t kSeqSpace = 1ULL << 32;

/// Wire (packet header) view of an unwrapped sequence.
inline std::uint32_t wireSeq(std::uint64_t seq) {
  return static_cast<std::uint32_t>(seq);
}

/// Unwrap a 32-bit wire sequence into the 64-bit sequence closest to
/// `reference` (the receiver's highest unwrapped sequence so far). Correct
/// for any reordering span below 2^31 packets — far beyond the bounded
/// windows the engine allows.
std::uint64_t unwrapSeq(std::uint32_t wire, std::uint64_t reference);

/// Bounded out-of-order bitmap. Capacity is rounded up to a multiple of 64;
/// sequences are stored at `seq % capacity`, which is collision-free as
/// long as only sequences within one capacity-sized window are parked —
/// the invariant the engine maintains by dropping beyond-window arrivals.
class ReorderWindow {
 public:
  ReorderWindow() = default;
  explicit ReorderWindow(int capacity);

  bool test(std::uint64_t seq) const {
    const std::uint64_t slot = seq % static_cast<std::uint64_t>(capacity_);
    return (bits_[slot >> 6] >> (slot & 63)) & 1;
  }
  void set(std::uint64_t seq) {
    const std::uint64_t slot = seq % static_cast<std::uint64_t>(capacity_);
    bits_[slot >> 6] |= 1ULL << (slot & 63);
  }
  void clear(std::uint64_t seq) {
    const std::uint64_t slot = seq % static_cast<std::uint64_t>(capacity_);
    bits_[slot >> 6] &= ~(1ULL << (slot & 63));
  }

  int capacity() const { return capacity_; }

 private:
  int capacity_ = 0;
  std::vector<std::uint64_t> bits_;
};

/// Capped exponential NACK pacing. `current()` is the wait before the next
/// NACK for any open gap; every firing advances it by `factor` up to `cap`,
/// and any delivery-head progress resets it to `initial`.
class NackBackoff {
 public:
  NackBackoff() = default;
  NackBackoff(double initial, double factor, double cap);

  double current() const { return current_; }
  void advance();
  void reset() { current_ = initial_; }
  bool atCap() const { return current_ >= cap_; }

 private:
  double initial_ = 0.0;
  double factor_ = 2.0;
  double cap_ = 0.0;
  double current_ = 0.0;
};

/// Virtual bounded retransmit ring: tracks which of its own delivered
/// sequences a node can still resend. Sequences are inserted strictly in
/// order (delivery is in-order by construction), so the holdable set is
/// always the window [head - capacity, head) — no storage needed, just
/// accounting.
class RetransmitWindow {
 public:
  RetransmitWindow() = default;
  RetransmitWindow(std::int64_t capacity, std::uint64_t base);

  /// Record the next in-order delivery (seq == head()). Evicts the oldest
  /// held sequence once the ring is full.
  void insert();

  /// Whether `seq` is still resendable (delivered and not yet evicted).
  bool holds(std::uint64_t seq) const {
    const std::uint64_t head = base_ + static_cast<std::uint64_t>(count_);
    return seq < head &&
           seq + static_cast<std::uint64_t>(capacity_) >= head;
  }

  /// One past the newest held sequence (== the node's delivery head).
  std::uint64_t head() const {
    return base_ + static_cast<std::uint64_t>(count_);
  }

  std::int64_t occupancy() const { return std::min(count_, capacity_); }
  std::int64_t evictions() const {
    return count_ > capacity_ ? count_ - capacity_ : 0;
  }
  std::int64_t capacity() const { return capacity_; }

 private:
  std::int64_t capacity_ = 0;
  std::uint64_t base_ = 0;
  std::int64_t count_ = 0;  ///< total inserted (== delivered)
};

}  // namespace omt::dataplane
