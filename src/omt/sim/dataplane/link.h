// Per-link loss and bandwidth model for the packet-level data plane.
//
// Every overlay edge is a unicast path with three failure surfaces:
//   * finite bandwidth — the sender's uplink serializes one packet per
//     child per `serializationTime`; sends that arrive while the uplink is
//     busy wait in a bounded FIFO and are tail-dropped when it overflows;
//   * independent loss — each transmission is dropped i.i.d. with a base
//     probability (plus any active loss-burst window's boost);
//   * bursty loss — a two-state Gilbert–Elliott chain per uplink: the
//     "bad" state drops packets at a much higher rate and persists for a
//     geometric number of transmissions, producing the correlated gap
//     patterns that make NACK-based recovery interesting.
// The chain advances once per transmission, in global event order, so the
// whole loss pattern is a deterministic function of the engine seed.
#pragma once

#include <cstdint>
#include <vector>

#include "omt/random/rng.h"

namespace omt {

/// Two-state bursty-loss parameters. `burstStartProbability == 0` disables
/// the chain entirely; the disabled path consumes exactly one RNG draw per
/// transmission when the base loss probability is positive and none when it
/// is zero — bit-identical to the plain i.i.d. model.
struct GilbertElliottOptions {
  /// Loss probability while the chain is in the bad (burst) state.
  double burstLossProbability = 0.5;
  /// Per-transmission P(good -> bad). Zero disables the chain.
  double burstStartProbability = 0.0;
  /// Per-transmission P(bad -> good). Must be positive when the chain is
  /// enabled, or the bad state would be absorbing.
  double burstStopProbability = 0.25;

  bool enabled() const { return burstStartProbability > 0.0; }
  /// Stationary probability of the bad state (start / (start + stop)).
  double stationaryBadProbability() const;
  /// Long-run average per-transmission loss probability when the chain
  /// mixes base loss `p` in the good state with the burst loss in the bad
  /// state. Equals `p` when the chain is disabled.
  double stationaryLossProbability(double baseLoss) const;
};

/// Throws omt::InvalidArgument unless every probability is in range and the
/// enabled chain can leave the bad state.
void validateGilbertElliott(const GilbertElliottOptions& options);

/// The per-uplink chain state. One instance per sender; transmissions on
/// the uplink advance it in event order.
class GilbertElliottChain {
 public:
  bool bursting() const { return bad_; }

  /// One transmission: returns true iff it is lost. `baseLoss` applies in
  /// the good state, `extraLoss` (active loss-burst windows) is OR-combined
  /// with either state's rate. Consumes zero draws when every probability
  /// involved is zero and the chain is disabled.
  bool roll(Rng& rng, const GilbertElliottOptions& options, double baseLoss,
            double extraLoss = 0.0);

 private:
  bool bad_ = false;
};

/// One window of boosted data-plane loss (the fault injector's loss-burst
/// disruption windows project onto this — see dataplane/chaos.h).
struct LossBurstWindow {
  double start = 0.0;
  double end = 0.0;
  double extraLoss = 0.0;  ///< OR-combined with the per-state loss rate
};

/// Combined extra loss from every window active at `now`:
/// 1 - prod(1 - extra_i). Schedules hold a handful of windows, so a linear
/// scan is fine.
double lossBurstBoostAt(const std::vector<LossBurstWindow>& windows,
                        double now);

/// Bounded FIFO of departure times modelling one node's serialized uplink.
/// Jobs enter in event-time order and depart in FIFO order at
/// `max(now, uplinkFree) + serializationTime`; a job arriving while
/// `capacity` jobs are still queued or in service is tail-dropped.
class UplinkQueue {
 public:
  UplinkQueue() = default;
  explicit UplinkQueue(int capacity);

  /// Attempt to enqueue a send at time `now` taking `serialization` on the
  /// wire. Returns the departure (serialization-complete) time, or a
  /// negative value if the job was tail-dropped.
  double enqueue(double now, double serialization);

  /// Jobs queued or in service at time `now`.
  int occupancy(double now);

  int capacity() const { return capacity_; }
  std::int64_t drops() const { return drops_; }
  int peakOccupancy() const { return peak_; }

 private:
  void evictDeparted(double now);

  int capacity_ = 0;
  std::vector<double> departures_;  ///< ring buffer of departure times
  std::uint32_t head_ = 0;
  std::uint32_t count_ = 0;
  double uplinkFree_ = 0.0;
  std::int64_t drops_ = 0;
  int peak_ = 0;
};

}  // namespace omt
