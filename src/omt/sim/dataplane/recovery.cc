#include "omt/sim/dataplane/recovery.h"

#include "omt/common/error.h"

namespace omt::dataplane {

std::uint64_t unwrapSeq(std::uint32_t wire, std::uint64_t reference) {
  const std::uint64_t base = reference & ~(kSeqSpace - 1);
  const std::uint64_t candidate = base | wire;
  auto gap = [reference](std::uint64_t x) {
    return x > reference ? x - reference : reference - x;
  };
  std::uint64_t best = candidate;
  if (candidate >= kSeqSpace && gap(candidate - kSeqSpace) < gap(best))
    best = candidate - kSeqSpace;
  if (gap(candidate + kSeqSpace) < gap(best)) best = candidate + kSeqSpace;
  return best;
}

ReorderWindow::ReorderWindow(int capacity) {
  OMT_CHECK(capacity >= 1, "reorder window capacity must be positive");
  capacity_ = (capacity + 63) & ~63;  // round up to whole 64-bit words
  bits_.assign(static_cast<std::size_t>(capacity_ >> 6), 0);
}

NackBackoff::NackBackoff(double initial, double factor, double cap)
    : initial_(initial), factor_(factor), cap_(cap), current_(initial) {
  OMT_CHECK(initial > 0.0, "NACK delay must be positive");
  OMT_CHECK(factor >= 1.0, "NACK backoff factor must be >= 1");
  OMT_CHECK(cap >= initial, "NACK backoff cap below the initial delay");
}

void NackBackoff::advance() {
  current_ = std::min(current_ * factor_, cap_);
}

RetransmitWindow::RetransmitWindow(std::int64_t capacity, std::uint64_t base)
    : capacity_(capacity), base_(base) {
  OMT_CHECK(capacity >= 1, "retransmit buffer capacity must be positive");
}

void RetransmitWindow::insert() { ++count_; }

}  // namespace omt::dataplane
