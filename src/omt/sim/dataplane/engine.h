// Deterministic discrete-event packet data plane over a built MulticastTree.
//
// The analytic simulators in omt/sim charge every edge its geometric length
// and fold loss into closed-form retry shifts; this engine actually pushes
// packets. The source emits `packetCount` sequenced packets at
// `packetInterval`; every node forwards each in-order delivery to its
// children over a serialized uplink (finite bandwidth, bounded FIFO,
// tail-drop), each transmission crosses a lossy link (i.i.d. plus
// Gilbert–Elliott bursts plus scheduled loss-burst windows) and arrives
// after propagation delay = geometric distance. Receivers run the recovery
// machinery in recovery.h: 32-bit wire sequences with explicit wraparound,
// a bounded reorder/dup-suppression window, gap-detection NACKs under
// capped exponential backoff, and parent-side bounded retransmit rings with
// eviction accounting. Idle parents advertise their delivery head with
// periodic SYNC probes (Trickle-style), which closes the tail-loss hole and
// resynchronizes re-homed children.
//
// Crash composition: a crash schedule (node, time) silences a node
// mid-stream; after `rehomeDelay` each orphaned child re-homes to its
// nearest live ancestor with spare degree (the PR 1 backup-parent walk,
// falling back to a global nearest-feasible scan), resynchronizes from the
// new parent's retransmit ring, and the stream continues. A NACK for a
// sequence the parent has already evicted is an *eviction miss*: the parent
// refetches it from its own parent (recursive repair, paced by the same
// NACK timer), so bounded buffers stay bounded and recovery still converges
// whenever the fault schedule leaves a feasible path.
//
// Determinism contract: the engine is strictly single-threaded and all
// randomness flows from one seeded RNG consumed in event order; events are
// totally ordered by (time, creation id). Given (seed, tree, schedule) the
// event order, every counter, and every per-node delivery log are
// bit-identical on every run and for any OMT_THREADS value — the chaos gate
// asserts this by replaying runs and comparing delivery-log hashes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "omt/geometry/point.h"
#include "omt/sim/dataplane/link.h"
#include "omt/sim/dataplane/recovery.h"
#include "omt/tree/multicast_tree.h"

namespace omt::dataplane {

/// One scheduled silent crash: `node` goes dark at `time` (stops
/// forwarding, acking, and receiving). The root must not crash.
struct CrashEvent {
  NodeId node = kNoNode;
  double time = 0.0;
};

struct DataplaneOptions {
  // Traffic.
  std::int64_t packetCount = 1000;  ///< sequenced packets the source emits
  double packetInterval = 1e-4;     ///< time between emissions
  /// Wire sequence of the first packet. Defaults to 0; set near 2^32 to
  /// exercise wraparound (sequences are 32-bit on the wire and unwrapped
  /// per receiver).
  std::uint32_t firstSequence = 0;

  // Link model.
  double serializationTime = 1e-6;  ///< uplink busy time per packet per child
  double perHopOverhead = 0.0;      ///< fixed forwarding latency per hop
  double propagationFactor = 1.0;   ///< propagation delay = factor * distance
  int queueCapacity = 128;          ///< per-uplink FIFO bound (tail-drop)
  double lossProbability = 0.0;     ///< i.i.d. per-transmission loss
  GilbertElliottOptions burst;      ///< bursty-loss chain (off by default)
  std::vector<LossBurstWindow> lossBursts;  ///< scheduled extra loss

  // Recovery.
  int reorderWindow = 1024;         ///< out-of-order/dup window (packets)
  std::int64_t retransmitBuffer = 4096;  ///< per-node resendable ring
  /// Optional per-node retransmit ring capacities (size must equal the
  /// tree size); empty = `retransmitBuffer` everywhere. Heterogeneous
  /// rings are what makes the recursive eviction-miss refetch path
  /// load-bearing: a small ring's misses are refetched from
  /// better-provisioned ancestors (the root should hold the whole stream).
  std::vector<std::int64_t> retransmitBufferPerNode;
  /// Floor on the gap -> first-NACK wait. The effective initial spacing is
  /// max(nackDelay, one parent round trip), re-derived when a node
  /// re-homes — re-NACKing the same gap faster than the repair can
  /// possibly arrive is exactly the storm the backoff exists to prevent.
  double nackDelay = 1e-3;
  double nackBackoffFactor = 2.0;   ///< NACK spacing multiplier
  /// Ceiling on the NACK spacing (raised to one backoff step above the
  /// effective initial spacing if that is larger).
  double nackBackoffCap = 64e-3;
  double syncInterval = 20e-3;      ///< head-advertisement period
  /// Loss probability for control messages (NACK/SYNC/COMPLETE); loss-burst
  /// windows apply on top. Control messages skip the data queue (they are
  /// tiny) but pay propagation delay.
  double controlLoss = 0.0;

  // Faults.
  std::vector<CrashEvent> crashes;  ///< time-ordered silent crashes
  double rehomeDelay = 50e-3;       ///< crash -> orphans re-homed
  /// Degree cap honoured when re-homing orphans; 0 = the tree's max
  /// out-degree. Re-homing prefers live ancestors, then the nearest live
  /// feasible node; if every candidate is full the cap is exceeded (counted
  /// in rehomesOverCap) rather than stranding the orphan.
  int maxOutDegree = 0;

  // Engine.
  std::uint64_t seed = 1;
  /// Hard stop when no packet has been delivered anywhere for this long —
  /// the deterministic stall detector that bounds pathological runs (e.g.
  /// an unrecoverable eviction under a too-small retransmit ring).
  double stallTimeout = 10.0;
  double maxSimTime = 1e9;          ///< absolute event-time ceiling
  /// Keep the full per-node delivery logs (sequence per delivery) instead
  /// of just their hashes. O(n * packetCount) memory — tests only.
  bool recordDeliveries = false;
};

/// Fixed-bucket latency histogram (geometric bounds, non-atomic — the
/// engine is single-threaded). Quantiles interpolate inside the winning
/// bucket, like obs::Histogram.
class LatencyHistogram {
 public:
  LatencyHistogram();
  void observe(double value);
  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> buckets_;  ///< bounds_.size() + 1 cells
  std::int64_t count_ = 0;
  double sum_ = 0.0;
};

/// Per-node outcome.
struct NodeReport {
  std::int64_t delivered = 0;     ///< exactly-once in-order deliveries
  std::uint64_t nextExpected = 0; ///< unwrapped delivery head
  std::uint64_t logHash = 0;      ///< FNV-1a over the delivery sequence
  bool crashed = false;
  double crashTime = 0.0;
};

struct DataplaneResult {
  // Traffic totals.
  std::int64_t packetsSent = 0;       ///< data transmissions that departed
  std::int64_t deliveries = 0;        ///< exactly-once deliveries (all nodes)
  std::int64_t duplicatesSuppressed = 0;
  std::int64_t reorderDrops = 0;      ///< arrivals beyond the reorder window
  std::int64_t queueDrops = 0;        ///< uplink tail-drops
  std::int64_t linkLosses = 0;        ///< in-flight data losses
  std::int64_t crashAborts = 0;       ///< sends killed by the sender crashing

  // Recovery totals.
  std::int64_t nacksSent = 0;
  std::int64_t nacksLost = 0;         ///< control losses (NACK/SYNC/COMPLETE)
  std::int64_t retransmits = 0;
  std::int64_t retransmitEvictions = 0;  ///< ring slots overwritten
  std::int64_t evictionMisses = 0;    ///< NACKed seqs already evicted
  std::int64_t refetches = 0;         ///< upward repair requests
  std::int64_t syncsSent = 0;
  std::int64_t rehomedChildren = 0;
  std::int64_t rehomesOverCap = 0;    ///< re-homes that had to exceed the cap
  std::int64_t crashedNodes = 0;

  // Bounded-memory accounting.
  std::int64_t peakReorderBuffered = 0;   ///< max parked out-of-order packets
  std::int64_t peakRetransmitHeld = 0;    ///< max ring occupancy (<= capacity)
  std::int64_t peakQueueDepth = 0;        ///< max uplink FIFO depth
  std::int64_t peakPendingServes = 0;     ///< max outstanding refetch entries

  // Outcome.
  std::int64_t eventsProcessed = 0;
  double simEndTime = 0.0;
  double wallSeconds = 0.0;           ///< engine wall-clock (for goodput)
  std::int64_t undelivered = 0;       ///< packets live receivers still miss
  bool completed = false;             ///< every live receiver got everything
  bool stalled = false;               ///< stall detector fired
  LatencyHistogram deliveryLatency;   ///< per-delivery emit -> deliver time
  std::uint64_t deliveryLogHash = 0;  ///< order-sensitive over all nodes
  std::vector<NodeReport> nodes;
  /// Per-node delivered sequences, only when options.recordDeliveries.
  std::vector<std::vector<std::uint64_t>> deliveryLog;
};

/// Run one data-plane session over `tree` (finalized, one point per node).
/// Deterministic in (options, tree, points). Throws omt::InvalidArgument on
/// out-of-range options, a crash scheduled for the root, or an unknown
/// crash node.
DataplaneResult runDataplane(const MulticastTree& tree,
                             std::span<const Point> points,
                             const DataplaneOptions& options);

}  // namespace omt::dataplane
