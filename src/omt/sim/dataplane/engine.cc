#include "omt/sim/dataplane/engine.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <queue>

#include "omt/common/error.h"
#include "omt/obs/metrics.h"
#include "omt/obs/obs.h"
#include "omt/random/rng.h"
#include "omt/report/stopwatch.h"

namespace omt::dataplane {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t fnvMix(std::uint64_t hash, std::uint64_t value) {
  return (hash ^ value) * kFnvPrime;
}

/// omt_dataplane_* instruments, registered once (PR 4 obs layer). All are
/// deterministic: the engine is single-threaded and seeded.
struct Metrics {
  obs::Counter& sent;
  obs::Counter& delivered;
  obs::Counter& duplicates;
  obs::Counter& queueDrops;
  obs::Counter& linkLosses;
  obs::Counter& reorderDrops;
  obs::Counter& nacks;
  obs::Counter& retransmits;
  obs::Counter& evictions;
  obs::Counter& evictionMisses;
  obs::Counter& refetches;
  obs::Counter& syncs;
  obs::Counter& rehomes;
  obs::Counter& crashes;
  obs::Histogram& latency;

  static Metrics& get() {
    auto& reg = obs::MetricsRegistry::global();
    static Metrics m{
        reg.counter("omt_dataplane_packets_sent_total"),
        reg.counter("omt_dataplane_delivered_total"),
        reg.counter("omt_dataplane_duplicates_suppressed_total"),
        reg.counter("omt_dataplane_queue_drops_total"),
        reg.counter("omt_dataplane_link_losses_total"),
        reg.counter("omt_dataplane_reorder_drops_total"),
        reg.counter("omt_dataplane_nacks_total"),
        reg.counter("omt_dataplane_retransmits_total"),
        reg.counter("omt_dataplane_retransmit_evictions_total"),
        reg.counter("omt_dataplane_eviction_misses_total"),
        reg.counter("omt_dataplane_refetches_total"),
        reg.counter("omt_dataplane_syncs_total"),
        reg.counter("omt_dataplane_rehomes_total"),
        reg.counter("omt_dataplane_crashes_total"),
        reg.histogram("omt_dataplane_delivery_latency_seconds"),
    };
    return m;
  }
};

struct Event {
  enum Kind : std::uint8_t {
    kEmit,       ///< source emits the next packet
    kData,       ///< data packet arrives at `node` from `peer`
    kNackTimer,  ///< `node`'s gap/refetch timer fires
    kNack,       ///< NACK for [seq, seq+count) arrives at `node` from `peer`
    kSyncTimer,  ///< `node`'s head-advertisement timer fires
    kSync,       ///< SYNC (head = seq) arrives at `node` from `peer`
    kComplete,   ///< subtree-complete notice arrives at `node` from `peer`
    kCrash,      ///< `node` goes dark
    kRehome,     ///< orphaned `node` re-attaches to a live parent
  };

  double time = 0.0;
  std::uint64_t id = 0;  ///< creation order: the deterministic tie-break
  Kind kind = kEmit;
  NodeId node = kNoNode;
  NodeId peer = kNoNode;
  std::uint32_t seq = 0;
  std::uint32_t count = 0;
  double aux = 0.0;  ///< kData: serialization-complete time at the sender
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.id > b.id;
  }
};

struct NodeState {
  NodeId parent = kNoNode;
  std::vector<NodeId> children;
  std::vector<std::uint8_t> childDone;  ///< parallel to children
  bool crashed = false;
  double crashTime = 0.0;

  UplinkQueue queue;
  GilbertElliottChain chain;

  std::uint64_t nextExpected = 0;
  std::uint64_t highestSeen = 0;
  std::uint64_t wantUpTo = 0;  ///< one past the highest seq known to exist
  ReorderWindow window;
  std::int64_t buffered = 0;
  NackBackoff nack;
  bool nackArmed = false;
  double lastArrival = -1.0;  ///< time of the latest data arrival
  double nackArmTime = -1.0;  ///< when the NACK timer was last armed
  bool syncArmed = false;
  bool localComplete = false;

  RetransmitWindow ring;
  /// Sequences children asked for after eviction, awaiting an upward
  /// refetch; served (and erased) the moment the packet passes through
  /// again. Ordered map: iteration order must be deterministic.
  std::map<std::uint64_t, std::vector<NodeId>> pendingServes;

  std::int64_t delivered = 0;
  std::uint64_t logHash = kFnvOffset;
};

class Engine {
 public:
  Engine(const MulticastTree& tree, std::span<const Point> points,
         const DataplaneOptions& options)
      : tree_(tree), points_(points), o_(options), rng_(options.seed),
        base_(options.firstSequence) {}

  DataplaneResult run();

 private:
  // -- event plumbing --------------------------------------------------
  void schedule(double time, Event::Kind kind, NodeId node,
                NodeId peer = kNoNode, std::uint32_t seq = 0,
                std::uint32_t count = 0, double aux = 0.0) {
    heap_.push(Event{time, nextEventId_++, kind, node, peer, seq, count, aux});
  }

  double controlDelay(NodeId from, NodeId to) const {
    return o_.perHopOverhead +
           o_.propagationFactor *
               distance(points_[static_cast<std::size_t>(from)],
                        points_[static_cast<std::size_t>(to)]);
  }

  /// One lossy control transmission (NACK/SYNC/COMPLETE): returns false and
  /// counts the loss if the channel dropped it.
  bool sendControl(NodeId from, NodeId to, Event::Kind kind, double now,
                   std::uint32_t seq = 0, std::uint32_t count = 0) {
    const double boost = lossBurstBoostAt(o_.lossBursts, now);
    const double p = 1.0 - (1.0 - o_.controlLoss) * (1.0 - boost);
    if (p > 0.0 && rng_.uniform() < p) {
      ++result_.nacksLost;
      return false;
    }
    schedule(now + controlDelay(from, to), kind, to, from, seq, count);
    return true;
  }

  // -- data path -------------------------------------------------------
  void enqueueData(NodeId sender, NodeId child, std::uint64_t seq, double now,
                   bool isRetransmit) {
    NodeState& s = nodes_[static_cast<std::size_t>(sender)];
    if (s.crashed) return;
    const double depart = s.queue.enqueue(now, o_.serializationTime);
    if (depart < 0.0) return;  // tail-dropped; aggregated from the queue
    ++result_.packetsSent;
    if (isRetransmit) ++result_.retransmits;
    if (s.chain.roll(rng_, o_.burst, o_.lossProbability,
                     lossBurstBoostAt(o_.lossBursts, depart))) {
      ++result_.linkLosses;
      return;
    }
    const double arrive =
        depart + o_.perHopOverhead +
        o_.propagationFactor *
            distance(points_[static_cast<std::size_t>(sender)],
                     points_[static_cast<std::size_t>(child)]);
    schedule(arrive, Event::kData, child, sender, wireSeq(seq), 0, depart);
  }

  /// Serve any pending child refetch requests for `seq` as it passes
  /// through `v` (fresh delivery or suppressed duplicate alike).
  void servePending(NodeId v, std::uint64_t seq, double now) {
    NodeState& n = nodes_[static_cast<std::size_t>(v)];
    if (n.pendingServes.empty()) return;
    const auto it = n.pendingServes.find(seq);
    if (it == n.pendingServes.end()) return;
    for (const NodeId child : it->second) {
      if (nodes_[static_cast<std::size_t>(child)].crashed) continue;
      if (!isChildOf(v, child)) continue;  // re-homed away meanwhile
      enqueueData(v, child, seq, now, /*isRetransmit=*/true);
    }
    n.pendingServes.erase(it);
  }

  bool isChildOf(NodeId parent, NodeId child) const {
    const NodeState& p = nodes_[static_cast<std::size_t>(parent)];
    return std::find(p.children.begin(), p.children.end(), child) !=
           p.children.end();
  }

  bool subtreeDone(const NodeState& n) const {
    if (!n.localComplete) return false;
    for (std::size_t i = 0; i < n.children.size(); ++i)
      if (!n.childDone[i]) return false;
    return true;
  }

  void maybeComplete(NodeId v, double now) {
    NodeState& n = nodes_[static_cast<std::size_t>(v)];
    if (n.parent == kNoNode || !subtreeDone(n)) return;
    if (nodes_[static_cast<std::size_t>(n.parent)].crashed) return;
    sendControl(v, n.parent, Event::kComplete, now);
  }

  /// (Re-)derive the node's NACK pacing from its current parent: the
  /// initial spacing is at least one parent round trip, so a gap is never
  /// re-NACKed before the repair could possibly have arrived.
  void resetNackPacing(NodeId v) {
    NodeState& n = nodes_[static_cast<std::size_t>(v)];
    double rtt = 0.0;
    if (n.parent != kNoNode)
      rtt = 2.0 * controlDelay(v, n.parent) + o_.serializationTime;
    const double initial = std::max(o_.nackDelay, rtt);
    const double cap =
        std::max(o_.nackBackoffCap, o_.nackBackoffFactor * initial);
    n.nack = NackBackoff(initial, o_.nackBackoffFactor, cap);
  }

  void armNack(NodeId v, double now) {
    NodeState& n = nodes_[static_cast<std::size_t>(v)];
    if (n.nackArmed || n.crashed) return;
    n.nackArmed = true;
    n.nackArmTime = now;
    schedule(now + n.nack.current(), Event::kNackTimer, v);
  }

  void armSync(NodeId v, double now) {
    NodeState& n = nodes_[static_cast<std::size_t>(v)];
    if (n.syncArmed || n.crashed || n.children.empty()) return;
    n.syncArmed = true;
    schedule(now + o_.syncInterval, Event::kSyncTimer, v);
  }

  /// Exactly-once, in-order delivery of `seq` at `v` (seq == nextExpected).
  void deliver(NodeId v, std::uint64_t seq, double now) {
    NodeState& n = nodes_[static_cast<std::size_t>(v)];
    n.nextExpected = seq + 1;
    n.highestSeen = std::max(n.highestSeen, seq);
    n.wantUpTo = std::max(n.wantUpTo, seq + 1);
    ++n.delivered;
    ++result_.deliveries;
    n.logHash = fnvMix(n.logHash, seq);
    n.nack.reset();  // progress: restart the gap backoff ladder
    n.ring.insert();
    lastProgress_ = now;
    if (v != tree_.root()) {
      const double latency =
          now - static_cast<double>(seq - base_) * o_.packetInterval;
      result_.deliveryLatency.observe(latency);
      if (obsOn_) Metrics::get().latency.observe(latency);
    }
    if (o_.recordDeliveries)
      result_.deliveryLog[static_cast<std::size_t>(v)].push_back(seq);
    servePending(v, seq, now);
    for (std::size_t i = 0; i < n.children.size(); ++i) {
      if (n.childDone[i]) continue;
      const NodeId child = n.children[i];
      if (nodes_[static_cast<std::size_t>(child)].crashed) continue;
      enqueueData(v, child, seq, now, /*isRetransmit=*/false);
    }
    if (n.delivered == o_.packetCount) {
      n.localComplete = true;
      maybeComplete(v, now);
    }
    armSync(v, now);
  }

  // -- event handlers --------------------------------------------------
  void onEmit(const Event& ev) {
    const std::uint64_t seq = base_ + static_cast<std::uint64_t>(emitted_);
    ++emitted_;
    deliver(tree_.root(), seq, ev.time);
    if (emitted_ < o_.packetCount)
      schedule(ev.time + o_.packetInterval, Event::kEmit, tree_.root());
  }

  void onData(const Event& ev) {
    NodeState& n = nodes_[static_cast<std::size_t>(ev.node)];
    if (n.crashed) return;
    const NodeState& s = nodes_[static_cast<std::size_t>(ev.peer)];
    if (s.crashed && s.crashTime < ev.aux) {
      // The sender died before this packet finished serializing.
      ++result_.crashAborts;
      return;
    }
    const std::uint64_t u =
        unwrapSeq(ev.seq, std::max(n.highestSeen, n.nextExpected));
    // Only new ground counts as "the stream is still flowing": a duplicate
    // or late retransmit below the high-water mark says nothing about
    // whether undelivered originals are still en route, and letting it
    // refresh the flow clock would suppress the tail-loss probe forever
    // under steady refetch chatter.
    if (u > n.highestSeen) n.lastArrival = ev.time;
    n.wantUpTo = std::max(n.wantUpTo, u + 1);
    if (u < n.nextExpected) {
      ++result_.duplicatesSuppressed;
      servePending(ev.node, u, ev.time);  // refetched copy: relay onward
      return;
    }
    if (u >= n.nextExpected +
                 static_cast<std::uint64_t>(n.window.capacity())) {
      // Beyond the bounded reorder window: drop now, NACK-recover later.
      ++result_.reorderDrops;
      armNack(ev.node, ev.time);
      return;
    }
    n.highestSeen = std::max(n.highestSeen, u);
    if (u == n.nextExpected) {
      deliver(ev.node, u, ev.time);
      // Flush the contiguous run the gap was blocking.
      while (n.window.test(n.nextExpected)) {
        n.window.clear(n.nextExpected);
        --n.buffered;
        deliver(ev.node, n.nextExpected, ev.time);
      }
      if (n.wantUpTo > n.nextExpected) armNack(ev.node, ev.time);
      return;
    }
    if (n.window.test(u)) {
      ++result_.duplicatesSuppressed;
      return;
    }
    n.window.set(u);
    ++n.buffered;
    result_.peakReorderBuffered =
        std::max(result_.peakReorderBuffered, n.buffered);
    armNack(ev.node, ev.time);
  }

  void onNackTimer(const Event& ev) {
    NodeState& n = nodes_[static_cast<std::size_t>(ev.node)];
    n.nackArmed = false;
    if (n.crashed) return;
    const bool parentLive =
        n.parent != kNoNode &&
        !nodes_[static_cast<std::size_t>(n.parent)].crashed;
    // Gap scan: one NACK per contiguous missing range in the window.
    // While new data is still flowing (an arrival advanced the high-water
    // mark since the timer was armed), only holes below the highest
    // arrival are evidence of loss — originals traverse the link in order,
    // so anything older than the newest first-time arrival cannot still be
    // en route. The SYNC-advertised head (wantUpTo) outruns the
    // serialization queue; chasing it while originals keep landing would
    // NACK packets that are merely in flight. Once no new ground has been
    // covered since the timer was armed, the advertised head becomes the
    // evidence — that is the tail-loss probe.
    bool outstanding = false;
    const bool flowing = n.lastArrival > n.nackArmTime;
    const std::uint64_t evidence =
        flowing ? std::min(n.wantUpTo, n.highestSeen + 1) : n.wantUpTo;
    const std::uint64_t scanEnd =
        std::min(std::max(evidence, n.nextExpected),
                 n.nextExpected + static_cast<std::uint64_t>(
                                      n.window.capacity()));
    std::uint64_t seq = n.nextExpected;
    while (seq < scanEnd) {
      if (n.window.test(seq)) {
        ++seq;
        continue;
      }
      std::uint64_t hi = seq + 1;
      while (hi < scanEnd && !n.window.test(hi)) ++hi;
      outstanding = true;
      if (parentLive) {
        ++result_.nacksSent;
        sendControl(ev.node, n.parent, Event::kNack, ev.time, wireSeq(seq),
                    static_cast<std::uint32_t>(hi - seq));
      }
      seq = hi;
    }
    // Upward refetches for sequences children want but we evicted.
    for (const auto& [missing, requesters] : n.pendingServes) {
      (void)requesters;
      outstanding = true;
      if (parentLive) {
        ++result_.refetches;
        sendControl(ev.node, n.parent, Event::kNack, ev.time,
                    wireSeq(missing), 1);
      }
    }
    if (!outstanding) {
      n.nack.reset();
      return;  // nothing missing: the timer goes quiet until a new gap
    }
    n.nack.advance();
    armNack(ev.node, ev.time);
  }

  void onNack(const Event& ev) {
    NodeState& n = nodes_[static_cast<std::size_t>(ev.node)];
    if (n.crashed) return;
    if (!isChildOf(ev.node, ev.peer)) return;  // stale (re-homed) request
    const std::uint64_t lo =
        unwrapSeq(ev.seq, std::max(n.highestSeen, n.nextExpected));
    const std::uint64_t hi =
        lo + std::min<std::uint64_t>(ev.count,
                                     static_cast<std::uint64_t>(
                                         o_.reorderWindow));
    bool registered = false;
    for (std::uint64_t u = lo; u < hi; ++u) {
      if (u >= n.nextExpected) break;  // not delivered here yet: will flow
      if (n.ring.holds(u)) {
        enqueueData(ev.node, ev.peer, u, ev.time, /*isRetransmit=*/true);
        continue;
      }
      ++result_.evictionMisses;
      auto& requesters = n.pendingServes[u];
      const bool fresh = requesters.empty();
      if (std::find(requesters.begin(), requesters.end(), ev.peer) ==
          requesters.end())
        requesters.push_back(ev.peer);
      result_.peakPendingServes = std::max(
          result_.peakPendingServes,
          static_cast<std::int64_t>(n.pendingServes.size()));
      registered = true;
      // Fire the first upward refetch immediately — waiting out a backoff
      // spacing at every level of the chain compounds into seconds of
      // repair latency. The NACK timer only carries the retries.
      if (fresh && n.parent != kNoNode &&
          !nodes_[static_cast<std::size_t>(n.parent)].crashed) {
        ++result_.refetches;
        sendControl(ev.node, n.parent, Event::kNack, ev.time, wireSeq(u), 1);
      }
    }
    if (registered) armNack(ev.node, ev.time);  // pace the refetch retries
  }

  void onSyncTimer(const Event& ev) {
    NodeState& n = nodes_[static_cast<std::size_t>(ev.node)];
    n.syncArmed = false;
    if (n.crashed) return;
    bool needed = false;
    for (std::size_t i = 0; i < n.children.size(); ++i) {
      if (n.childDone[i]) continue;
      const NodeId child = n.children[i];
      if (nodes_[static_cast<std::size_t>(child)].crashed) continue;
      needed = true;
      ++result_.syncsSent;
      sendControl(ev.node, child, Event::kSync, ev.time,
                  wireSeq(n.nextExpected));
    }
    if (needed) armSync(ev.node, ev.time);
  }

  void onSync(const Event& ev) {
    NodeState& n = nodes_[static_cast<std::size_t>(ev.node)];
    if (n.crashed) return;
    if (ev.peer != n.parent) return;  // stale advertisement after re-homing
    const std::uint64_t head =
        unwrapSeq(ev.seq, std::max(n.highestSeen, n.nextExpected));
    n.wantUpTo = std::max(n.wantUpTo, head);
    if (n.wantUpTo > n.nextExpected) armNack(ev.node, ev.time);
    // Re-offer a possibly-lost COMPLETE whenever the parent still probes.
    if (subtreeDone(n)) sendControl(ev.node, n.parent, Event::kComplete,
                                    ev.time);
  }

  void onComplete(const Event& ev) {
    NodeState& n = nodes_[static_cast<std::size_t>(ev.node)];
    if (n.crashed) return;
    for (std::size_t i = 0; i < n.children.size(); ++i) {
      if (n.children[i] == ev.peer) {
        n.childDone[i] = 1;
        break;
      }
    }
    maybeComplete(ev.node, ev.time);
  }

  void onCrash(const Event& ev) {
    NodeState& n = nodes_[static_cast<std::size_t>(ev.node)];
    if (n.crashed) return;
    n.crashed = true;
    n.crashTime = ev.time;
    ++result_.crashedNodes;
    n.pendingServes.clear();
    // The live parent stops forwarding to (and probing) the dead child —
    // modelled as the PR 1 failure detector confirming the crash.
    if (n.parent != kNoNode) {
      NodeState& p = nodes_[static_cast<std::size_t>(n.parent)];
      if (!p.crashed) {
        for (std::size_t i = 0; i < p.children.size(); ++i) {
          if (p.children[i] == ev.node) {
            p.children.erase(p.children.begin() +
                             static_cast<std::ptrdiff_t>(i));
            p.childDone.erase(p.childDone.begin() +
                              static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
        maybeComplete(n.parent, ev.time);
      }
    }
    // Orphans re-home after the detection delay.
    for (const NodeId child : n.children) {
      if (!nodes_[static_cast<std::size_t>(child)].crashed)
        schedule(ev.time + o_.rehomeDelay, Event::kRehome, child, ev.node);
    }
    n.children.clear();
    n.childDone.clear();
  }

  bool isDescendantOf(NodeId node, NodeId ancestor) const {
    for (NodeId a = node; a != kNoNode;
         a = nodes_[static_cast<std::size_t>(a)].parent) {
      if (a == ancestor) return true;
    }
    return false;
  }

  void onRehome(const Event& ev) {
    NodeState& c = nodes_[static_cast<std::size_t>(ev.node)];
    if (c.crashed) return;
    if (c.parent != kNoNode &&
        !nodes_[static_cast<std::size_t>(c.parent)].crashed)
      return;  // already re-homed
    // Backup-parent walk: nearest live ancestor with spare degree.
    NodeId chosen = kNoNode;
    NodeId firstLiveAncestor = kNoNode;
    for (NodeId a = c.parent; a != kNoNode;
         a = nodes_[static_cast<std::size_t>(a)].parent) {
      const NodeState& cand = nodes_[static_cast<std::size_t>(a)];
      if (cand.crashed) continue;
      if (firstLiveAncestor == kNoNode) firstLiveAncestor = a;
      if (static_cast<int>(cand.children.size()) < degreeCap_) {
        chosen = a;
        break;
      }
    }
    if (chosen == kNoNode) {
      // Global fallback: nearest live feasible node outside c's subtree.
      double bestDist = kInf;
      for (NodeId v = 0; v < tree_.size(); ++v) {
        const NodeState& cand = nodes_[static_cast<std::size_t>(v)];
        if (cand.crashed || v == ev.node) continue;
        if (static_cast<int>(cand.children.size()) >= degreeCap_) continue;
        if (isDescendantOf(v, ev.node)) continue;
        const double d =
            distance(points_[static_cast<std::size_t>(v)],
                     points_[static_cast<std::size_t>(ev.node)]);
        if (d < bestDist) {
          bestDist = d;
          chosen = v;
        }
      }
    }
    if (chosen == kNoNode) {
      // Every feasible candidate is full: exceed the cap at the nearest
      // live ancestor rather than strand a live subtree.
      chosen = firstLiveAncestor;
      OMT_CHECK(chosen != kNoNode, "re-home found no live ancestor");
      ++result_.rehomesOverCap;
    }
    NodeState& np = nodes_[static_cast<std::size_t>(chosen)];
    c.parent = chosen;
    np.children.push_back(ev.node);
    np.childDone.push_back(0);
    ++result_.rehomedChildren;
    resetNackPacing(ev.node);  // fresh parent: re-derive the repair pacing
    if (c.wantUpTo > c.nextExpected) armNack(ev.node, ev.time);
    // The new parent advertises its head right away (lossy; its sync timer
    // covers retries) so the child can resynchronize from the ring.
    sendControl(chosen, ev.node, Event::kSync, ev.time,
                wireSeq(np.nextExpected));
    armSync(chosen, ev.time);
  }

  // -- run -------------------------------------------------------------
  void validate() const;
  void finish(double endTime);

  const MulticastTree& tree_;
  std::span<const Point> points_;
  const DataplaneOptions& o_;
  Rng rng_;
  std::uint64_t base_;
  int degreeCap_ = 0;
  bool obsOn_ = false;

  std::vector<NodeState> nodes_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
  std::uint64_t nextEventId_ = 0;
  std::int64_t emitted_ = 0;
  double lastProgress_ = 0.0;
  DataplaneResult result_;
};

void Engine::validate() const {
  OMT_CHECK(tree_.finalized(), "tree must be finalized");
  OMT_CHECK(points_.size() == static_cast<std::size_t>(tree_.size()),
            "one point per tree node required");
  OMT_CHECK(o_.packetCount >= 1, "need at least one packet");
  OMT_CHECK(o_.packetInterval > 0.0, "packet interval must be positive");
  OMT_CHECK(o_.serializationTime >= 0.0, "negative serialization time");
  OMT_CHECK(o_.perHopOverhead >= 0.0, "negative overhead");
  OMT_CHECK(o_.propagationFactor >= 0.0, "negative propagation factor");
  OMT_CHECK(o_.queueCapacity >= 1, "queue capacity must be positive");
  OMT_CHECK(o_.lossProbability >= 0.0 && o_.lossProbability < 1.0,
            "loss probability outside [0, 1)");
  validateGilbertElliott(o_.burst);
  OMT_CHECK(o_.controlLoss >= 0.0 && o_.controlLoss < 1.0,
            "control loss outside [0, 1)");
  for (const LossBurstWindow& w : o_.lossBursts)
    OMT_CHECK(w.extraLoss >= 0.0 && w.extraLoss < 1.0 && w.end >= w.start,
              "malformed loss-burst window");
  OMT_CHECK(o_.reorderWindow >= 1, "reorder window must be positive");
  OMT_CHECK(o_.retransmitBuffer >= 1, "retransmit buffer must be positive");
  OMT_CHECK(o_.retransmitBufferPerNode.empty() ||
                o_.retransmitBufferPerNode.size() ==
                    static_cast<std::size_t>(tree_.size()),
            "per-node retransmit buffers must cover every node");
  for (const std::int64_t capacity : o_.retransmitBufferPerNode)
    OMT_CHECK(capacity >= 1, "retransmit buffer must be positive");
  OMT_CHECK(o_.nackDelay > 0.0, "NACK delay must be positive");
  OMT_CHECK(o_.nackBackoffFactor >= 1.0, "NACK backoff factor below 1");
  OMT_CHECK(o_.nackBackoffCap >= o_.nackDelay,
            "NACK backoff cap below the initial delay");
  OMT_CHECK(o_.syncInterval > 0.0, "sync interval must be positive");
  OMT_CHECK(o_.rehomeDelay >= 0.0, "negative re-home delay");
  OMT_CHECK(o_.stallTimeout > 0.0, "stall timeout must be positive");
  OMT_CHECK(o_.maxOutDegree >= 0, "negative degree cap");
  for (const CrashEvent& c : o_.crashes) {
    OMT_CHECK(c.node >= 0 && c.node < tree_.size(),
              "crash event for unknown node");
    OMT_CHECK(c.node != tree_.root(), "the source must not crash");
    OMT_CHECK(c.time >= 0.0, "negative crash time");
  }
}

void Engine::finish(double endTime) {
  result_.simEndTime = endTime;
  result_.nodes.resize(static_cast<std::size_t>(tree_.size()));
  std::uint64_t totalHash = kFnvOffset;
  for (NodeId v = 0; v < tree_.size(); ++v) {
    const NodeState& n = nodes_[static_cast<std::size_t>(v)];
    NodeReport& report = result_.nodes[static_cast<std::size_t>(v)];
    report.delivered = n.delivered;
    report.nextExpected = n.nextExpected;
    report.logHash = n.logHash;
    report.crashed = n.crashed;
    report.crashTime = n.crashTime;
    if (!n.crashed) result_.undelivered += o_.packetCount - n.delivered;
    totalHash = fnvMix(totalHash, static_cast<std::uint64_t>(v));
    totalHash = fnvMix(totalHash, n.logHash);
    result_.queueDrops += n.queue.drops();
    result_.peakQueueDepth = std::max(
        result_.peakQueueDepth,
        static_cast<std::int64_t>(n.queue.peakOccupancy()));
    result_.retransmitEvictions += n.ring.evictions();
    result_.peakRetransmitHeld =
        std::max(result_.peakRetransmitHeld, n.ring.occupancy());
  }
  result_.deliveryLogHash = totalHash;
  result_.completed = result_.undelivered == 0;
  result_.stalled = !result_.completed;

  Metrics& m = Metrics::get();
  m.sent.add(result_.packetsSent);
  m.delivered.add(result_.deliveries);
  m.duplicates.add(result_.duplicatesSuppressed);
  m.queueDrops.add(result_.queueDrops);
  m.linkLosses.add(result_.linkLosses);
  m.reorderDrops.add(result_.reorderDrops);
  m.nacks.add(result_.nacksSent);
  m.retransmits.add(result_.retransmits);
  m.evictions.add(result_.retransmitEvictions);
  m.evictionMisses.add(result_.evictionMisses);
  m.refetches.add(result_.refetches);
  m.syncs.add(result_.syncsSent);
  m.rehomes.add(result_.rehomedChildren);
  m.crashes.add(result_.crashedNodes);
}

DataplaneResult Engine::run() {
  validate();
  obsOn_ = obs::enabled();
  degreeCap_ = o_.maxOutDegree;
  if (degreeCap_ == 0) {
    for (NodeId v = 0; v < tree_.size(); ++v)
      degreeCap_ = std::max(degreeCap_, static_cast<int>(tree_.outDegree(v)));
    degreeCap_ = std::max(degreeCap_, 1);
  }

  nodes_.resize(static_cast<std::size_t>(tree_.size()));
  for (NodeId v = 0; v < tree_.size(); ++v) {
    NodeState& n = nodes_[static_cast<std::size_t>(v)];
    n.parent = v == tree_.root() ? kNoNode : tree_.parentOf(v);
    const auto children = tree_.childrenOf(v);
    n.children.assign(children.begin(), children.end());
    n.childDone.assign(n.children.size(), 0);
    n.queue = UplinkQueue(o_.queueCapacity);
    n.nextExpected = base_;
    n.highestSeen = base_;
    n.wantUpTo = base_;
    n.window = ReorderWindow(o_.reorderWindow);
    resetNackPacing(v);
    const std::int64_t ringCapacity =
        o_.retransmitBufferPerNode.empty()
            ? o_.retransmitBuffer
            : o_.retransmitBufferPerNode[static_cast<std::size_t>(v)];
    n.ring = RetransmitWindow(ringCapacity, base_);
  }
  if (o_.recordDeliveries)
    result_.deliveryLog.resize(static_cast<std::size_t>(tree_.size()));

  for (const CrashEvent& c : o_.crashes)
    schedule(c.time, Event::kCrash, c.node);
  schedule(0.0, Event::kEmit, tree_.root());

  Stopwatch watch;
  double endTime = 0.0;
  while (!heap_.empty()) {
    const Event ev = heap_.top();
    heap_.pop();
    if (ev.time > o_.maxSimTime ||
        ev.time > lastProgress_ + o_.stallTimeout) {
      endTime = ev.time;
      break;
    }
    endTime = ev.time;
    ++result_.eventsProcessed;
    switch (ev.kind) {
      case Event::kEmit: onEmit(ev); break;
      case Event::kData: onData(ev); break;
      case Event::kNackTimer: onNackTimer(ev); break;
      case Event::kNack: onNack(ev); break;
      case Event::kSyncTimer: onSyncTimer(ev); break;
      case Event::kSync: onSync(ev); break;
      case Event::kComplete: onComplete(ev); break;
      case Event::kCrash: onCrash(ev); break;
      case Event::kRehome: onRehome(ev); break;
    }
  }
  result_.wallSeconds = watch.seconds();
  finish(endTime);
  return result_;
}

}  // namespace

LatencyHistogram::LatencyHistogram() {
  // Geometric bounds, 8 per decade from 1e-6 to 1e4 — enough resolution
  // for p99 interpolation at every scale the engine produces.
  const double ratio = std::pow(10.0, 1.0 / 8.0);
  for (double b = 1e-6; b <= 1e4 * (1.0 + 1e-12); b *= ratio)
    bounds_.push_back(b);
  buckets_.assign(bounds_.size() + 1, 0);
}

void LatencyHistogram::observe(double value) {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (next >= target && buckets_[i] > 0) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = i < bounds_.size() ? bounds_[i] : bounds_.back();
      const double fraction =
          (target - cumulative) / static_cast<double>(buckets_[i]);
      return lower + fraction * (upper - lower);
    }
    cumulative = next;
  }
  return bounds_.back();
}

DataplaneResult runDataplane(const MulticastTree& tree,
                             std::span<const Point> points,
                             const DataplaneOptions& options) {
  Engine engine(tree, points, options);
  return engine.run();
}

}  // namespace omt::dataplane
