#include "omt/sim/dataplane/chaos.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "omt/common/error.h"
#include "omt/core/polar_grid_tree.h"
#include "omt/random/rng.h"
#include "omt/random/samplers.h"

namespace omt::dataplane {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Decorrelate the driver's sampling streams from the engine seed.
constexpr std::uint64_t kCrashStream = 0xD47AC8A5;
constexpr std::uint64_t kPointStream = 0xD47A0101;

}  // namespace

DataplaneOptions defaultChaosEngineOptions() {
  DataplaneOptions engine;
  engine.packetCount = 400;
  engine.lossProbability = 0.02;
  engine.burst.burstLossProbability = 0.4;
  engine.burst.burstStartProbability = 0.01;
  engine.burst.burstStopProbability = 0.2;
  engine.controlLoss = 0.01;
  return engine;
}

DisruptionOptions defaultChaosDisruption() {
  DisruptionOptions disruption;
  disruption.partitionRate = 0.0;  // no packet-level analogue
  disruption.lossBurstRate = 0.5;
  disruption.lossBurstBoost = 0.3;
  disruption.lossBurstMeanLength = 0.5;
  return disruption;
}

std::vector<CrashEvent> sampleCrashSchedule(std::uint64_t seed,
                                            const MulticastTree& tree,
                                            double fraction, double window) {
  OMT_CHECK(fraction >= 0.0 && fraction <= 1.0,
            "crash fraction outside [0, 1]");
  OMT_CHECK(window >= 0.0, "negative crash window");
  std::vector<NodeId> candidates;
  candidates.reserve(static_cast<std::size_t>(tree.size()));
  for (NodeId v = 0; v < tree.size(); ++v)
    if (v != tree.root()) candidates.push_back(v);
  const auto victims = static_cast<std::size_t>(std::llround(
      fraction * static_cast<double>(candidates.size())));
  Rng rng(deriveSeed(seed, kCrashStream));
  std::vector<CrashEvent> crashes;
  crashes.reserve(victims);
  // Partial Fisher-Yates: the first `victims` slots become the victim set.
  for (std::size_t i = 0; i < victims && i < candidates.size(); ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.uniformInt(
                static_cast<std::uint64_t>(candidates.size() - i)));
    std::swap(candidates[i], candidates[j]);
    crashes.push_back({candidates[i], rng.uniform(0.0, window)});
  }
  std::sort(crashes.begin(), crashes.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.node < b.node;
            });
  return crashes;
}

std::vector<LossBurstWindow> lossBurstsFromDisruption(
    const std::vector<DisruptionWindow>& windows) {
  std::vector<LossBurstWindow> bursts;
  for (const DisruptionWindow& w : windows) {
    if (w.lossBoost <= 0.0) continue;
    bursts.push_back({w.start, w.end, w.lossBoost});
  }
  return bursts;
}

std::uint64_t expectedLogHash(std::uint32_t firstSequence,
                              std::int64_t count) {
  std::uint64_t hash = kFnvOffset;
  std::uint64_t seq = firstSequence;
  for (std::int64_t i = 0; i < count; ++i, ++seq)
    hash = (hash ^ seq) * kFnvPrime;
  return hash;
}

DataplaneChaosResult runDataplaneChaos(const DataplaneChaosOptions& options) {
  OMT_CHECK(options.hostCount >= 1, "need at least one host");

  Rng pointRng(deriveSeed(options.seed, kPointStream));
  const std::vector<Point> points =
      sampleDiskWithCenterSource(pointRng, options.hostCount, options.dim);

  PolarGridOptions gridOptions;
  gridOptions.maxOutDegree = options.maxOutDegree;
  PolarGridResult built = buildPolarGridTree(points, 0, gridOptions);

  DataplaneOptions engine = options.engine;
  engine.seed = options.seed;
  engine.maxOutDegree = options.maxOutDegree;
  const double span = static_cast<double>(engine.packetCount) *
                      engine.packetInterval;
  engine.crashes = sampleCrashSchedule(options.seed, built.tree,
                                       options.crashFraction,
                                       options.crashWindowFraction * span);
  if (options.injectDisruption) {
    DisruptionOptions disruption = options.disruption;
    disruption.seed = deriveSeed(options.seed, 0xD47AB0);
    disruption.duration = span + 1.0;
    engine.lossBursts = lossBurstsFromDisruption(generateDisruption(disruption));
  }
  if (options.heterogeneousBuffers && engine.retransmitBufferPerNode.empty()) {
    static constexpr std::int64_t kRingSizes[] = {64, 256, 1024};
    Rng ringRng(deriveSeed(options.seed, 0xD47AB2));
    engine.retransmitBufferPerNode.resize(
        static_cast<std::size_t>(built.tree.size()));
    for (auto& capacity : engine.retransmitBufferPerNode)
      capacity = kRingSizes[ringRng.uniformInt(3)];
    engine.retransmitBufferPerNode[static_cast<std::size_t>(
        built.tree.root())] = std::max<std::int64_t>(4096, engine.packetCount);
  }

  DataplaneChaosResult result;
  result.crashesScheduled = static_cast<std::int64_t>(engine.crashes.size());
  result.burstWindows = static_cast<std::int64_t>(engine.lossBursts.size());
  result.run = runDataplane(built.tree, points, engine);

  const DataplaneResult& run = result.run;
  auto fail = [&result](const std::string& what) {
    if (result.ok) {
      result.ok = false;
      result.failure = what;
    }
  };

  // Exactly-once, in-order delivery at every live receiver.
  const std::uint64_t fullHash =
      expectedLogHash(engine.firstSequence, engine.packetCount);
  const std::uint64_t streamEnd =
      static_cast<std::uint64_t>(engine.firstSequence) +
      static_cast<std::uint64_t>(engine.packetCount);
  for (NodeId v = 0; v < built.tree.size(); ++v) {
    const NodeReport& node = run.nodes[static_cast<std::size_t>(v)];
    if (node.crashed) {
      if (node.delivered > engine.packetCount) {
        std::ostringstream out;
        out << "crashed node " << v << " over-delivered: " << node.delivered;
        fail(out.str());
      }
      continue;
    }
    if (node.delivered != engine.packetCount ||
        node.nextExpected != streamEnd || node.logHash != fullHash) {
      std::ostringstream out;
      out << "node " << v << " broke exactly-once in-order delivery: "
          << node.delivered << "/" << engine.packetCount
          << " delivered, head " << node.nextExpected << " (want "
          << streamEnd << "), log hash "
          << (node.logHash == fullHash ? "ok" : "MISMATCH");
      fail(out.str());
    }
  }
  if (!run.completed) {
    std::ostringstream out;
    out << "run did not complete: " << run.undelivered
        << " undelivered packets" << (run.stalled ? " (stalled)" : "");
    fail(out.str());
  }

  // Bounded buffers: peaks must respect the configured capacities.
  const std::int64_t reorderCap = (engine.reorderWindow + 63) & ~63;
  if (run.peakReorderBuffered > reorderCap) {
    std::ostringstream out;
    out << "reorder window overflowed: peak " << run.peakReorderBuffered
        << " > capacity " << reorderCap;
    fail(out.str());
  }
  std::int64_t maxRing = engine.retransmitBuffer;
  for (const std::int64_t capacity : engine.retransmitBufferPerNode)
    maxRing = std::max(maxRing, capacity);
  if (run.peakRetransmitHeld > maxRing) {
    std::ostringstream out;
    out << "retransmit ring overflowed: peak " << run.peakRetransmitHeld
        << " > capacity " << maxRing;
    fail(out.str());
  }
  if (run.peakQueueDepth > engine.queueCapacity) {
    std::ostringstream out;
    out << "uplink queue overflowed: peak " << run.peakQueueDepth
        << " > capacity " << engine.queueCapacity;
    fail(out.str());
  }

  // Deterministic replay: identical inputs, identical outcome.
  if (options.verifyDeterminism) {
    const DataplaneResult replay = runDataplane(built.tree, points, engine);
    result.deterministic =
        replay.deliveryLogHash == run.deliveryLogHash &&
        replay.eventsProcessed == run.eventsProcessed &&
        replay.packetsSent == run.packetsSent &&
        replay.deliveries == run.deliveries &&
        replay.simEndTime == run.simEndTime;
    if (!result.deterministic) fail("replay diverged from the first run");
  }

  return result;
}

}  // namespace omt::dataplane
