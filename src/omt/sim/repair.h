// Tree maintenance after node departures.
//
// Overlay multicast nodes are end hosts: they leave. When a forwarder
// departs, its whole subtree is orphaned; the session must re-attach the
// orphaned branches to surviving nodes without exceeding anyone's degree
// cap. The paper focuses on initial construction ("in practice, there is
// interest in a decentralized version" is left as future work); this module
// provides the centralised maintenance primitive the examples and tests
// exercise: greedy re-attachment of orphaned subtree roots, nearest
// feasible survivor first.
#pragma once

#include <span>
#include <vector>

#include "omt/geometry/point.h"
#include "omt/tree/multicast_tree.h"

namespace omt {

struct RepairResult {
  /// Ids (in the original numbering) of surviving nodes, source included.
  std::vector<NodeId> survivors;
  /// originalToSurvivor[v] is v's index in `survivors`/`tree`, or kNoNode
  /// if v departed.
  std::vector<NodeId> originalToSurvivor;
  /// The repaired tree over the survivors (indices into `survivors`).
  MulticastTree tree;
  /// How many edges had to change parents.
  std::int64_t reattachedSubtrees = 0;
};

/// Remove `departed` nodes from `tree` and greedily re-attach every orphaned
/// subtree root to the nearest surviving node with spare capacity (walking
/// up from its old grandparent first, then scanning). The source must
/// survive. Requires maxOutDegree >= 1; the result respects it wherever the
/// input tree did.
RepairResult repairAfterDepartures(const MulticastTree& tree,
                                   std::span<const Point> points,
                                   std::span<const NodeId> departed,
                                   int maxOutDegree);

}  // namespace omt
