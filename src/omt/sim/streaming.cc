#include "omt/sim/streaming.h"

#include <algorithm>
#include <vector>

#include "omt/common/error.h"
#include "omt/tree/metrics.h"

namespace omt {

StreamResult simulateStream(const MulticastTree& tree,
                            std::span<const Point> points,
                            const StreamOptions& options) {
  OMT_CHECK(tree.finalized(), "tree must be finalized");
  OMT_CHECK(points.size() == static_cast<std::size_t>(tree.size()),
            "one point per tree node required");
  OMT_CHECK(options.messageInterval > 0.0, "interval must be positive");
  OMT_CHECK(options.messageCount >= 1, "need at least one message");
  OMT_CHECK(options.transmissionTime >= 0.0, "negative transmission time");
  OMT_CHECK(options.perHopOverhead >= 0.0, "negative overhead");

  const std::size_t n = points.size();
  // uplinkFree[v]: when v's transmitter can next start a send.
  std::vector<double> uplinkFree(n, 0.0);
  // arrival[v]: when v received the current message.
  std::vector<double> arrival(n, 0.0);

  StreamResult result;
  std::int32_t maxDegree = 0;
  for (NodeId v = 0; v < tree.size(); ++v)
    maxDegree = std::max(maxDegree, tree.outDegree(v));
  result.bottleneckLoad =
      static_cast<double>(maxDegree) * options.transmissionTime;
  result.sustainable =
      result.bottleneckLoad <= options.messageInterval * (1.0 + 1e-12);

  for (std::int64_t m = 0; m < options.messageCount; ++m) {
    const double emitTime = static_cast<double>(m) * options.messageInterval;
    arrival[static_cast<std::size_t>(tree.root())] = emitTime;
    double worst = 0.0;
    for (const NodeId v : tree.bfsOrder()) {
      const auto vi = static_cast<std::size_t>(v);
      // Forward to children in stored order over the serialised uplink:
      // each send waits for both the message's arrival and the uplink.
      for (const NodeId child : tree.childrenOf(v)) {
        const auto ci = static_cast<std::size_t>(child);
        const double start =
            std::max(arrival[vi] + options.perHopOverhead, uplinkFree[vi]);
        uplinkFree[vi] = start + options.transmissionTime;
        arrival[ci] = start + options.transmissionTime +
                      distance(points[vi], points[ci]);
        worst = std::max(worst, arrival[ci] - emitTime);
      }
    }
    if (m == 0) result.firstMessageMaxDelay = worst;
    if (m == options.messageCount - 1) result.lastMessageMaxDelay = worst;
  }
  result.backlogGrowthPerMessage =
      options.messageCount > 1
          ? (result.lastMessageMaxDelay - result.firstMessageMaxDelay) /
                static_cast<double>(options.messageCount - 1)
          : 0.0;
  return result;
}

}  // namespace omt
