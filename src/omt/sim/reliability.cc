#include "omt/sim/reliability.h"

#include <cmath>

#include "omt/common/error.h"
#include "omt/tree/metrics.h"

namespace omt {

std::vector<std::int64_t> subtreeSizes(const MulticastTree& tree) {
  OMT_CHECK(tree.finalized(), "tree must be finalized");
  std::vector<std::int64_t> size(static_cast<std::size_t>(tree.size()), 1);
  const auto& order = tree.bfsOrder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    if (v == tree.root()) continue;
    size[static_cast<std::size_t>(tree.parentOf(v))] +=
        size[static_cast<std::size_t>(v)];
  }
  return size;
}

ReliabilityReport analyzeReliability(const MulticastTree& tree,
                                     double failureProbability) {
  OMT_CHECK(tree.finalized(), "tree must be finalized");
  OMT_CHECK(failureProbability >= 0.0 && failureProbability < 1.0,
            "failure probability outside [0, 1)");
  const double q = 1.0 - failureProbability;

  ReliabilityReport report;
  if (tree.size() == 1) {
    report.expectedReachableFraction = 1.0;
    report.worstReceiverReliability = 1.0;
    return report;
  }

  // A receiver is reachable iff it and all its non-root ancestors are up:
  // P = q^depth (depth counts the receiver itself).
  const std::vector<std::int32_t> depth = computeDepths(tree);
  double sum = 0.0;
  std::int32_t maxDepth = 0;
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (v == tree.root()) continue;
    const std::int32_t d = depth[static_cast<std::size_t>(v)];
    sum += std::pow(q, d);
    maxDepth = std::max(maxDepth, d);
  }
  report.expectedReachableFraction =
      sum / static_cast<double>(tree.size() - 1);
  report.worstReceiverReliability = std::pow(q, maxDepth);

  const std::vector<std::int64_t> sizes = subtreeSizes(tree);
  double subtreeSum = 0.0;
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (v == tree.root()) continue;
    subtreeSum += static_cast<double>(sizes[static_cast<std::size_t>(v)]);
  }
  report.meanSubtreeSize = subtreeSum / static_cast<double>(tree.size() - 1);
  return report;
}

double estimateReachableFraction(const MulticastTree& tree,
                                 double failureProbability, int trials,
                                 Rng& rng) {
  OMT_CHECK(tree.finalized(), "tree must be finalized");
  OMT_CHECK(failureProbability >= 0.0 && failureProbability < 1.0,
            "failure probability outside [0, 1)");
  OMT_CHECK(trials >= 1, "need at least one trial");
  if (tree.size() == 1) return 1.0;

  std::vector<std::uint8_t> up(static_cast<std::size_t>(tree.size()));
  std::vector<std::uint8_t> reachable(static_cast<std::size_t>(tree.size()));
  double total = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    for (NodeId v = 0; v < tree.size(); ++v) {
      up[static_cast<std::size_t>(v)] =
          v == tree.root() || rng.uniform() >= failureProbability;
    }
    std::int64_t count = 0;
    for (const NodeId v : tree.bfsOrder()) {
      if (v == tree.root()) {
        reachable[static_cast<std::size_t>(v)] = 1;
        continue;
      }
      const bool ok =
          up[static_cast<std::size_t>(v)] &&
          reachable[static_cast<std::size_t>(tree.parentOf(v))] != 0;
      reachable[static_cast<std::size_t>(v)] = ok ? 1 : 0;
      if (ok) ++count;
    }
    total += static_cast<double>(count) /
             static_cast<double>(tree.size() - 1);
  }
  return total / trials;
}

}  // namespace omt
