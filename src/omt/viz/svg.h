// SVG rendering of 2D point sets, polar grids, and multicast trees.
//
// Figures like the paper's Figure 1 (ring-segment bisection) and Figure 2
// (the polar grid) are one function call away: render the grid's rings and
// cell boundaries, overlay the tree's edges (core edges emphasised), and
// mark the source. Output is a self-contained SVG document; 2D only.
#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>

#include "omt/geometry/point.h"
#include "omt/grid/polar_grid.h"
#include "omt/tree/multicast_tree.h"

namespace omt {

struct SvgOptions {
  int sizePixels = 800;        ///< width = height of the canvas
  double margin = 0.05;        ///< fraction of the canvas left as border
  double pointRadius = 1.5;    ///< host dot radius in pixels
  bool drawPoints = true;
  bool drawEdges = true;
  bool drawGrid = true;        ///< rings + cell rays (if a grid is given)
  std::string coreEdgeColor = "#d62728";
  std::string localEdgeColor = "#1f77b4";
  std::string gridColor = "#bbbbbb";
  std::string pointColor = "#333333";
  std::string sourceColor = "#2ca02c";
};

/// Render `points` (2D) with the optional tree and grid to `out`. The
/// tree, when given, must be finalized and sized to the point set; the
/// grid, when given, is drawn centered on the tree's root (or points[0]).
void renderSvg(std::ostream& out, std::span<const Point> points,
               const MulticastTree* tree, const PolarGrid* grid,
               const SvgOptions& options = {});

/// Convenience: render to a file; throws omt::InvalidArgument on IO errors.
void renderSvgFile(const std::string& path, std::span<const Point> points,
                   const MulticastTree* tree, const PolarGrid* grid,
                   const SvgOptions& options = {});

}  // namespace omt
