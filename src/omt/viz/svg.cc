#include "omt/viz/svg.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numbers>
#include <ostream>
#include <sstream>

#include "omt/common/error.h"

namespace omt {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// World-to-canvas transform: the point bounding square (plus margin)
/// mapped onto [0, size] with y flipped (SVG's y grows downward).
class Transform {
 public:
  Transform(std::span<const Point> points, const SvgOptions& options)
      : size_(static_cast<double>(options.sizePixels)) {
    double lo[2] = {points[0][0], points[0][1]};
    double hi[2] = {points[0][0], points[0][1]};
    for (const Point& p : points) {
      for (int c = 0; c < 2; ++c) {
        lo[c] = std::min(lo[c], p[c]);
        hi[c] = std::max(hi[c], p[c]);
      }
    }
    const double extent =
        std::max({hi[0] - lo[0], hi[1] - lo[1], 1e-9});
    const double pad = extent * options.margin / (1.0 - 2.0 * options.margin);
    scale_ = size_ / (extent + 2.0 * pad);
    originX_ = (lo[0] + hi[0]) / 2.0;
    originY_ = (lo[1] + hi[1]) / 2.0;
  }

  double x(double worldX) const {
    return size_ / 2.0 + (worldX - originX_) * scale_;
  }
  double y(double worldY) const {
    return size_ / 2.0 - (worldY - originY_) * scale_;
  }
  double length(double worldLength) const { return worldLength * scale_; }

 private:
  double size_;
  double scale_ = 1.0;
  double originX_ = 0.0;
  double originY_ = 0.0;
};

std::string fmt(double v) {
  std::ostringstream out;
  out.precision(2);
  out.setf(std::ios::fixed);
  out << v;
  return out.str();
}

void drawGrid(std::ostream& out, const Transform& t, const PolarGrid& grid,
              const Point& center, const SvgOptions& options) {
  // Ring circles.
  for (int i = 0; i <= grid.rings(); ++i) {
    out << "  <circle cx=\"" << fmt(t.x(center[0])) << "\" cy=\""
        << fmt(t.y(center[1])) << "\" r=\""
        << fmt(t.length(grid.ringRadius(i))) << "\" fill=\"none\" stroke=\""
        << options.gridColor << "\" stroke-width=\"0.6\"/>\n";
  }
  // Cell rays: ring i has 2^i cells over the azimuth.
  for (int i = 1; i <= grid.rings(); ++i) {
    const double inner = grid.ringRadius(i - 1);
    const double outer = grid.ringRadius(i);
    const std::uint64_t cells = grid.cellsInRing(i);
    for (std::uint64_t c = 0; c < cells; ++c) {
      const double angle =
          kTwoPi * static_cast<double>(c) / static_cast<double>(cells);
      out << "  <line x1=\"" << fmt(t.x(center[0] + inner * std::cos(angle)))
          << "\" y1=\"" << fmt(t.y(center[1] + inner * std::sin(angle)))
          << "\" x2=\"" << fmt(t.x(center[0] + outer * std::cos(angle)))
          << "\" y2=\"" << fmt(t.y(center[1] + outer * std::sin(angle)))
          << "\" stroke=\"" << options.gridColor
          << "\" stroke-width=\"0.6\"/>\n";
    }
  }
}

}  // namespace

void renderSvg(std::ostream& out, std::span<const Point> points,
               const MulticastTree* tree, const PolarGrid* grid,
               const SvgOptions& options) {
  OMT_CHECK(!points.empty(), "empty point set");
  for (const Point& p : points)
    OMT_CHECK(p.dim() == 2, "SVG rendering is 2D only");
  OMT_CHECK(options.sizePixels >= 16, "canvas too small");
  OMT_CHECK(options.margin >= 0.0 && options.margin < 0.5,
            "margin outside [0, 0.5)");
  if (tree != nullptr) {
    OMT_CHECK(tree->finalized(), "tree must be finalized");
    OMT_CHECK(tree->size() == static_cast<NodeId>(points.size()),
              "tree and point set sizes differ");
  }

  const Transform t(points, options);
  const int size = options.sizePixels;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << size
      << "\" height=\"" << size << "\" viewBox=\"0 0 " << size << ' ' << size
      << "\">\n";
  out << "  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  if (grid != nullptr && options.drawGrid) {
    const Point& center =
        tree != nullptr
            ? points[static_cast<std::size_t>(tree->root())]
            : points[0];
    drawGrid(out, t, *grid, center, options);
  }

  if (tree != nullptr && options.drawEdges) {
    // Local edges first so core edges draw on top.
    for (const int pass : {0, 1}) {
      for (NodeId v = 0; v < tree->size(); ++v) {
        if (v == tree->root()) continue;
        const bool core = tree->edgeKindOf(v) == EdgeKind::kCore;
        if ((pass == 1) != core) continue;
        const Point& a = points[static_cast<std::size_t>(tree->parentOf(v))];
        const Point& b = points[static_cast<std::size_t>(v)];
        out << "  <line x1=\"" << fmt(t.x(a[0])) << "\" y1=\""
            << fmt(t.y(a[1])) << "\" x2=\"" << fmt(t.x(b[0])) << "\" y2=\""
            << fmt(t.y(b[1])) << "\" stroke=\""
            << (core ? options.coreEdgeColor : options.localEdgeColor)
            << "\" stroke-width=\"" << (core ? "1.2" : "0.5") << "\"/>\n";
      }
    }
  }

  if (options.drawPoints) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      const bool isSource =
          tree != nullptr && static_cast<NodeId>(i) == tree->root();
      out << "  <circle cx=\"" << fmt(t.x(points[i][0])) << "\" cy=\""
          << fmt(t.y(points[i][1])) << "\" r=\""
          << fmt(isSource ? 3.0 * options.pointRadius : options.pointRadius)
          << "\" fill=\""
          << (isSource ? options.sourceColor : options.pointColor)
          << "\"/>\n";
    }
  }
  out << "</svg>\n";
  OMT_CHECK(out.good(), "write failure while rendering SVG");
}

void renderSvgFile(const std::string& path, std::span<const Point> points,
                   const MulticastTree* tree, const PolarGrid* grid,
                   const SvgOptions& options) {
  std::ofstream out(path);
  OMT_CHECK(out.good(), "cannot open " + path + " for writing");
  renderSvg(out, points, tree, grid, options);
}

}  // namespace omt
