#include "omt/parallel/parallel_for.h"

#include <algorithm>

#include "omt/common/error.h"

namespace omt {
namespace {

/// Chunks per slot; several per slot lets the shared cursor balance uneven
/// per-index cost without work stealing, while keeping dispatch overhead
/// (one atomic fetch_add per chunk) negligible.
constexpr std::int64_t kChunksPerSlot = 8;

std::int64_t chunkSize(std::int64_t range, int workers) {
  const std::int64_t target =
      static_cast<std::int64_t>(workers) * kChunksPerSlot;
  return std::max<std::int64_t>(1, (range + target - 1) / target);
}

}  // namespace

void parallelFor(std::int64_t begin, std::int64_t end, int workers,
                 const std::function<void(std::int64_t)>& fn) {
  OMT_CHECK(workers >= 1, "need at least one worker");
  OMT_CHECK(begin <= end, "invalid index range");
  if (begin == end) return;
  if (workers == 1 || end - begin == 1) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  globalPool().run(begin, end, workers, chunkSize(end - begin, workers),
                   [&fn](std::int64_t lo, std::int64_t hi, int) {
                     for (std::int64_t i = lo; i < hi; ++i) fn(i);
                   });
}

void parallelForChunks(std::int64_t begin, std::int64_t end, int workers,
                       const ChunkFn& fn) {
  OMT_CHECK(workers >= 1, "need at least one worker");
  OMT_CHECK(begin <= end, "invalid index range");
  if (begin == end) return;
  const std::int64_t chunk = chunkSize(end - begin, workers);
  if (workers == 1) {
    // Inline without touching the pool (no threads spawned for sequential
    // users), chunked exactly like the parallel path.
    for (std::int64_t lo = begin; lo < end; lo += chunk)
      fn(lo, std::min(lo + chunk, end), 0);
    return;
  }
  globalPool().run(begin, end, workers, chunk, fn);
}

}  // namespace omt
