// Persistent thread pool shared by the whole library.
//
// The construction pipeline (omt/grid, omt/core, omt/bisection) and the
// bench trial loops all dispatch onto one process-wide pool instead of
// spawning threads per call (the old omt/report/parallel helper): workers
// are created once, sleep on a condition variable between jobs, and chunks
// of an index range are handed out through an atomic cursor (no work
// stealing — chunks are small enough that the shared cursor balances load).
//
// Concurrency model:
//  * One job runs at a time. The submitting thread participates as slot 0;
//    up to `concurrency - 1` pool workers join as slots 1.. — slot indices
//    are dense in [0, concurrency) and stable for the duration of the job,
//    so callers can keep per-slot reduction buffers.
//  * A submission that arrives while another job is running, or that is
//    made from inside a pool task (nested parallelism), runs inline on the
//    calling thread. This makes oversubscription impossible: an outer
//    parallel trial loop automatically serialises the inner parallel tree
//    build.
//  * Exceptions thrown by the body stop further chunk scheduling and the
//    first one is rethrown on the submitting thread.
//
// Thread count: the pool's capacity is fixed at first use from the
// OMT_THREADS environment variable when set, otherwise from the hardware;
// per-call `workers` arguments are capped by that capacity.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace omt {

/// Body of one chunk: the half-open sub-range [begin, end) plus the slot
/// index of the executing participant (see ThreadPool).
using ChunkFn = std::function<void(std::int64_t, std::int64_t, int)>;

class ThreadPool {
 public:
  /// A pool with `capacity` total slots (the submitting thread counts as
  /// one; `capacity - 1` worker threads are spawned).
  explicit ThreadPool(int capacity);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int capacity() const { return capacity_; }

  /// Run `fn` over [begin, end) in chunks of `chunk` indices using at most
  /// `concurrency` slots (capped by capacity() and by the range length).
  /// Blocks until every chunk finished; rethrows the first exception.
  /// Runs inline (single slot 0) when concurrency <= 1, when called from
  /// inside a pool task, or when another job is already running.
  void run(std::int64_t begin, std::int64_t end, int concurrency,
           std::int64_t chunk, const ChunkFn& fn);

  /// True while the calling thread is executing inside a pool task (used
  /// to collapse nested submissions to inline execution).
  static bool inParallelRegion();

 private:
  struct Job;

  void workerLoop();

  const int capacity_;
  std::mutex mutex_;                  // guards job_/generation_/stop_
  std::condition_variable wake_;      // workers wait for a job
  std::condition_variable done_;      // submitter waits for helpers
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::mutex submitMutex_;            // one job at a time
  std::vector<std::thread> threads_;
};

/// The process-wide pool; created on first use with capacity
/// max(resolveWorkers(0), hardware_concurrency, 16) so explicit requests up
/// to 16 workers get real threads even on small machines.
ThreadPool& globalPool();

/// A reasonable worker count: hardware concurrency halved (leave room for
/// the system), at least 1.
int defaultWorkerCount();

/// Resolve a requested worker count: values >= 1 pass through; 0 (auto)
/// resolves to the OMT_THREADS environment variable when it parses to a
/// positive integer, otherwise to defaultWorkerCount().
int resolveWorkers(int requested);

}  // namespace omt
