// Per-thread bump arena for transient build intermediates.
//
// The batched kernel pipeline (omt/kernels) carves its SoA lanes, per-chunk
// gather buffers, and CSR cursors out of one of these instead of allocating
// fresh vectors on every build, so repeated constructions (churn benches,
// the chaos runner, anti-entropy re-grids) stop paying malloc/page-fault
// churn: after the first build the arena holds its high-water footprint and
// every later build is pure pointer bumps.
//
// Memory is organised as a list of geometrically growing blocks, so a span
// handed out earlier in a scope is never invalidated by later growth (a
// resize would dangle it; a new block does not). When the outermost Scope
// unwinds and more than one block exists, the blocks are consolidated into
// a single contiguous one of the combined size — the steady state is one
// block and zero allocations per build.
//
// Usage:
//   ScratchArena& arena = workerArena();      // this thread's arena
//   ScratchArena::Scope scope(arena);         // RAII: frees on exit
//   std::span<double> lane = arena.alloc<double>(n);
//
// Scopes nest (a build-level scope on the caller thread, chunk-level scopes
// on workers); each restores the arena to where it found it. Spans are
// valid until their enclosing scope exits. Contents are uninitialised.
// Not thread-safe: an arena belongs to exactly one thread, which is what
// workerArena() (a thread_local) enforces by construction.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace omt {

class ScratchArena {
 public:
  /// Every allocation is aligned to this many bytes (cache line; also
  /// satisfies std::atomic_ref alignment for any lane element type).
  static constexpr std::size_t kAlignment = 64;

  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Uninitialised span of n elements of trivially-destructible T.
  template <typename T>
  std::span<T> alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destructed");
    if (n == 0) return {};
    void* p = allocBytes(n * sizeof(T), alignof(T));
    return {static_cast<T*>(p), n};
  }

  /// RAII allocation scope; restores the arena on destruction.
  class Scope {
   public:
    explicit Scope(ScratchArena& arena)
        : arena_(&arena),
          savedBlock_(arena.currentBlock_),
          savedOffset_(arena.offset_),
          savedDepth_(arena.scopeDepth_++) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      arena_->scopeDepth_ = savedDepth_;
      arena_->currentBlock_ = savedBlock_;
      arena_->offset_ = savedOffset_;
      // A scope opened on a then-empty arena saved offset 0; blocks mapped
      // since then have an aligned base the offset must not fall below.
      if (savedBlock_ < arena_->blocks_.size()) {
        arena_->offset_ =
            std::max(savedOffset_, arena_->blocks_[savedBlock_].start);
      }
      if (savedDepth_ == 0) arena_->consolidate();
    }

   private:
    ScratchArena* arena_;
    std::size_t savedBlock_;
    std::size_t savedOffset_;
    int savedDepth_;
  };

  /// Total backing capacity across all blocks.
  std::size_t capacityBytes() const { return capacity_; }
  /// Largest simultaneous footprint ever handed out.
  std::size_t highWaterBytes() const { return highWater_; }
  /// Times a fresh block had to be mapped (steady state: stops growing).
  std::int64_t growCount() const { return growCount_; }
  /// Free all backing memory (only valid outside any Scope).
  void release();

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    /// Bytes in all earlier blocks (so in-use = prefix + offset_).
    std::size_t prefix = 0;
    /// Padding to the first kAlignment-aligned byte of `data`.
    std::size_t start = 0;
  };

  void* allocBytes(std::size_t bytes, std::size_t align);
  void consolidate();

  std::vector<Block> blocks_;
  std::size_t currentBlock_ = 0;
  std::size_t offset_ = 0;
  std::size_t capacity_ = 0;
  std::size_t highWater_ = 0;
  std::int64_t growCount_ = 0;
  int scopeDepth_ = 0;
};

/// The calling thread's arena (thread-local, lazily created). Thread-pool
/// workers and the caller thread each get their own, so chunk kernels can
/// take scratch without synchronisation.
ScratchArena& workerArena();

}  // namespace omt
