#include "omt/parallel/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "omt/common/error.h"
#include "omt/obs/metrics.h"
#include "omt/obs/trace.h"

namespace omt {
namespace {

/// Pool metrics are all scheduling artifacts — which path run() takes and
/// how chunks land on slots legitimately varies with the worker count and
/// submit races — so every one is registered nondeterministic and excluded
/// from the cross-thread-count determinism contract.
struct PoolMetrics {
  obs::Counter& jobs;             ///< jobs dispatched onto pool workers
  obs::Counter& inlineJobs;       ///< jobs run inline on the caller
  obs::Counter& nestedCollapses;  ///< inline because nested or pool busy
  obs::Counter& chunks;           ///< chunks claimed via the atomic cursor
  obs::Histogram& queueWait;      ///< job publish -> helper's first claim
};

PoolMetrics& poolMetrics() {
  auto& registry = obs::MetricsRegistry::global();
  constexpr auto kNondet = obs::Determinism::kNondeterministic;
  static PoolMetrics metrics{
      registry.counter("omt_pool_jobs_total", kNondet),
      registry.counter("omt_pool_inline_jobs_total", kNondet),
      registry.counter("omt_pool_nested_collapses_total", kNondet),
      registry.counter("omt_pool_chunks_total", kNondet),
      registry.histogram("omt_pool_queue_wait_seconds", {}, kNondet)};
  return metrics;
}

thread_local int tlsParallelDepth = 0;

/// RAII marker for "this thread is executing pool work".
struct RegionGuard {
  RegionGuard() { ++tlsParallelDepth; }
  ~RegionGuard() { --tlsParallelDepth; }
};

}  // namespace

struct ThreadPool::Job {
  std::int64_t end = 0;
  std::int64_t chunk = 1;
  std::int64_t publishNs = 0;  ///< queue-wait anchor (0 when obs disabled)
  const ChunkFn* fn = nullptr;
  std::atomic<std::int64_t> cursor{0};
  std::atomic<int> nextSlot{1};  // slot 0 is the submitter
  int slots = 1;                 // participants allowed (<= concurrency)
  std::atomic<int> activeHelpers{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex errorMutex;

  /// Claim and execute chunks until the range (or the job) is exhausted.
  void work(int slot) {
    RegionGuard guard;
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::int64_t lo = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) return;
      const std::int64_t hi = std::min(lo + chunk, end);
      poolMetrics().chunks.add();
      try {
        (*fn)(lo, hi, slot);
      } catch (...) {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
};

ThreadPool::ThreadPool(int capacity) : capacity_(std::max(capacity, 1)) {
  threads_.reserve(static_cast<std::size_t>(capacity_ - 1));
  for (int t = 1; t < capacity_; ++t)
    threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::inParallelRegion() { return tlsParallelDepth > 0; }

void ThreadPool::workerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    int slot = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && generation_ != seen);
      });
      if (stop_) return;
      seen = generation_;
      slot = job_->nextSlot.fetch_add(1, std::memory_order_relaxed);
      if (slot >= job_->slots) continue;  // job already has enough hands
      job = job_;
      job->activeHelpers.fetch_add(1, std::memory_order_relaxed);
    }
    if (obs::enabled() && job->publishNs > 0) {
      poolMetrics().queueWait.observe(
          static_cast<double>(obs::monotonicNowNs() - job->publishNs) / 1e9);
    }
    job->work(slot);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job->activeHelpers.fetch_sub(1, std::memory_order_relaxed);
    }
    done_.notify_all();
  }
}

void ThreadPool::run(std::int64_t begin, std::int64_t end, int concurrency,
                     std::int64_t chunk, const ChunkFn& fn) {
  OMT_CHECK(begin <= end, "invalid index range");
  OMT_CHECK(chunk >= 1, "chunk size must be positive");
  if (begin == end) return;

  concurrency = std::min<std::int64_t>(
      std::min(concurrency, capacity_),
      (end - begin + chunk - 1) / chunk);
  const bool inline_ = concurrency <= 1 || inParallelRegion();
  std::unique_lock<std::mutex> submit(submitMutex_, std::defer_lock);
  if (!inline_ && !submit.try_lock()) {
    // Another job is in flight; running inline keeps total concurrency
    // bounded and avoids blocking behind it.
  } else if (!inline_) {
    poolMetrics().jobs.add();
    Job job;
    job.end = end;
    job.chunk = chunk;
    job.publishNs = obs::enabled() ? obs::monotonicNowNs() : 0;
    job.fn = &fn;
    job.cursor.store(begin, std::memory_order_relaxed);
    job.slots = concurrency;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = &job;
      ++generation_;
    }
    wake_.notify_all();
    job.work(/*slot=*/0);
    {
      // Detach the job so no further worker can register, then wait for
      // the ones that did. Registration happens under mutex_ while job_
      // still points at this job, so after this block no thread touches it.
      std::unique_lock<std::mutex> lock(mutex_);
      job_ = nullptr;
      done_.wait(lock, [&] {
        return job.activeHelpers.load(std::memory_order_relaxed) == 0;
      });
    }
    if (job.error) std::rethrow_exception(job.error);
    return;
  }

  // Inline path: one slot, natural exception propagation.
  poolMetrics().inlineJobs.add();
  if (concurrency > 1) poolMetrics().nestedCollapses.add();
  RegionGuard guard;
  for (std::int64_t lo = begin; lo < end; lo += chunk)
    fn(lo, std::min(lo + chunk, end), 0);
}

int defaultWorkerCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw <= 2 ? 1 : static_cast<int>(hw / 2);
}

int resolveWorkers(int requested) {
  if (requested >= 1) return requested;
  if (const char* env = std::getenv("OMT_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  return defaultWorkerCount();
}

ThreadPool& globalPool() {
  static ThreadPool pool([] {
    const auto hw = static_cast<int>(std::thread::hardware_concurrency());
    return std::max({resolveWorkers(0), hw, 16});
  }());
  return pool;
}

}  // namespace omt
