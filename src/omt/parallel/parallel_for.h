// Chunked parallel loops over index ranges, dispatched onto the persistent
// global thread pool (see thread_pool.h).
//
// Replaces the old spawn-per-call omt/report/parallel helper. Semantics
// preserved from it: fn must be safe to call concurrently for distinct
// indices, workers == 1 runs inline on the calling thread with exact
// sequencing, and the first exception thrown by the body is rethrown on
// the calling thread.
//
// Determinism: chunk boundaries and slot assignment are scheduling details
// only. A loop whose body writes disjoint locations and whose reductions
// are order-independent (max, integer sums, bitwise OR) produces identical
// results for every worker count — the property the construction pipeline's
// byte-identical-tree contract is built on.
#pragma once

#include <cstdint>
#include <functional>

#include "omt/parallel/thread_pool.h"

namespace omt {

/// Invoke fn(i) for every i in [begin, end) using up to `workers` slots of
/// the global pool (>= 1; 1 = inline on the calling thread).
void parallelFor(std::int64_t begin, std::int64_t end, int workers,
                 const std::function<void(std::int64_t)>& fn);

/// Chunked variant for loops that keep per-slot state (reduction buffers,
/// scratch vectors): fn(chunkBegin, chunkEnd, slot) with slot dense in
/// [0, workers). Chunks partition [begin, end); a slot may execute many
/// chunks, and slot 0 is always the calling thread.
void parallelForChunks(std::int64_t begin, std::int64_t end, int workers,
                       const ChunkFn& fn);

}  // namespace omt
