#include "omt/parallel/scratch_arena.h"

#include <algorithm>

#include "omt/common/error.h"

namespace omt {
namespace {

/// First block size; small enough that idle worker threads cost little,
/// large enough that toy builds never grow.
constexpr std::size_t kMinBlockBytes = std::size_t{64} * 1024;

std::size_t alignUp(std::size_t value, std::size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

// Invariant: offset_ is always a multiple of kAlignment past the current
// block's aligned base (start), and every request is rounded up to a
// multiple of kAlignment, so returned pointers are kAlignment-aligned
// without per-allocation re-alignment.
void* ScratchArena::allocBytes(std::size_t bytes, std::size_t align) {
  OMT_ASSERT(align <= kAlignment, "over-aligned arena allocation");
  bytes = alignUp(bytes, kAlignment);
  // Advance past blocks that cannot fit the request. Their remainders are
  // wasted until the scope unwinds, but consolidation makes multi-block
  // states transient, so the waste is bounded to the warm-up build.
  while (currentBlock_ < blocks_.size()) {
    Block& block = blocks_[currentBlock_];
    if (offset_ + bytes <= block.size) {
      void* p = block.data.get() + offset_;
      offset_ += bytes;
      highWater_ = std::max(highWater_, block.prefix + offset_);
      return p;
    }
    ++currentBlock_;
    if (currentBlock_ < blocks_.size())
      offset_ = blocks_[currentBlock_].start;
  }
  // Map a fresh block: geometric growth keeps the block count logarithmic
  // in the final footprint.
  const std::size_t prev = blocks_.empty() ? 0 : blocks_.back().size;
  const std::size_t size =
      std::max({kMinBlockBytes, prev * 2, bytes + kAlignment});
  Block block;
  block.data = std::make_unique<std::byte[]>(size);
  block.size = size;
  block.prefix = capacity_;
  const auto raw = reinterpret_cast<std::size_t>(block.data.get());
  block.start = alignUp(raw, kAlignment) - raw;
  capacity_ += size;
  ++growCount_;
  blocks_.push_back(std::move(block));
  currentBlock_ = blocks_.size() - 1;
  offset_ = blocks_.back().start;
  void* p = blocks_.back().data.get() + offset_;
  offset_ += bytes;
  highWater_ = std::max(highWater_, blocks_.back().prefix + offset_);
  return p;
}

void ScratchArena::consolidate() {
  if (blocks_.size() <= 1) return;
  OMT_ASSERT(scopeDepth_ == 0, "consolidating a live arena");
  const std::size_t size =
      alignUp(std::max(capacity_, highWater_), kAlignment) + kAlignment;
  blocks_.clear();
  Block block;
  block.data = std::make_unique<std::byte[]>(size);
  block.size = size;
  block.prefix = 0;
  const auto raw = reinterpret_cast<std::size_t>(block.data.get());
  block.start = alignUp(raw, kAlignment) - raw;
  blocks_.push_back(std::move(block));
  capacity_ = size;
  currentBlock_ = 0;
  offset_ = blocks_.front().start;
}

void ScratchArena::release() {
  OMT_CHECK(scopeDepth_ == 0, "releasing a live arena");
  blocks_.clear();
  currentBlock_ = 0;
  offset_ = 0;
  capacity_ = 0;
}

ScratchArena& workerArena() {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace omt
