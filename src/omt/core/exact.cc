#include "omt/core/exact.h"

#include <algorithm>
#include <vector>

#include "omt/common/error.h"

namespace omt {
namespace {

struct Search {
  std::span<const Point> points;
  NodeId source = kNoNode;
  int cap = 0;
  std::int64_t budget = 0;

  NodeId n = 0;
  std::vector<double> dist;        // n*n pairwise distances
  std::vector<double> straight;    // straight-line source distance
  std::vector<NodeId> parent;      // current partial assignment
  std::vector<double> delay;
  std::vector<int> degree;
  std::vector<std::uint8_t> attached;

  double bestRadius = kInf;
  std::vector<NodeId> bestParent;
  std::int64_t explored = 0;
  bool budgetExhausted = false;

  double at(NodeId a, NodeId b) const {
    return dist[static_cast<std::size_t>(a) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(b)];
  }

  /// Lower bound on any completion: the farthest unattached host cannot be
  /// reached faster than in a straight line from the source.
  double completionLowerBound(double currentRadius) const {
    double bound = currentRadius;
    for (NodeId v = 0; v < n; ++v) {
      if (!attached[static_cast<std::size_t>(v)])
        bound = std::max(bound, straight[static_cast<std::size_t>(v)]);
    }
    return bound;
  }

  void recurse(NodeId attachedCount, double currentRadius, double lastDelay) {
    if (budgetExhausted) return;
    if (++explored > budget) {
      budgetExhausted = true;
      return;
    }
    if (attachedCount == n) {
      if (currentRadius < bestRadius) {
        bestRadius = currentRadius;
        bestParent = parent;
      }
      return;
    }
    if (completionLowerBound(currentRadius) >= bestRadius) return;

    // Branch on the next attachment (node, parent). The canonical-order
    // constraint (new delay >= lastDelay) prunes permutations of the same
    // tree; the tiny slack admits zero-length edges.
    for (NodeId v = 0; v < n; ++v) {
      if (attached[static_cast<std::size_t>(v)]) continue;
      for (NodeId p = 0; p < n; ++p) {
        if (!attached[static_cast<std::size_t>(p)]) continue;
        if (degree[static_cast<std::size_t>(p)] >= cap) continue;
        const double d = delay[static_cast<std::size_t>(p)] + at(p, v);
        if (d < lastDelay - 1e-12) continue;
        const double radius = std::max(currentRadius, d);
        if (radius >= bestRadius) continue;

        attached[static_cast<std::size_t>(v)] = 1;
        parent[static_cast<std::size_t>(v)] = p;
        delay[static_cast<std::size_t>(v)] = d;
        ++degree[static_cast<std::size_t>(p)];
        recurse(attachedCount + 1, radius, d);
        --degree[static_cast<std::size_t>(p)];
        attached[static_cast<std::size_t>(v)] = 0;
        if (budgetExhausted) return;
      }
    }
  }
};

}  // namespace

ExactResult solveExactMinRadius(std::span<const Point> points, NodeId source,
                                const ExactOptions& options) {
  const auto n = static_cast<NodeId>(points.size());
  OMT_CHECK(n >= 1, "empty point set");
  OMT_CHECK(source >= 0 && source < n, "source index out of range");
  OMT_CHECK(options.maxOutDegree >= 1, "degree cap must be positive");
  OMT_CHECK(n <= options.maxNodes,
            "instance too large for exact search (raise maxNodes knowingly)");

  Search search;
  search.points = points;
  search.source = source;
  search.cap = options.maxOutDegree;
  search.budget = options.nodeBudget;
  search.n = n;
  search.dist.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  search.straight.resize(static_cast<std::size_t>(n));
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      search.dist[static_cast<std::size_t>(a) * static_cast<std::size_t>(n) +
                  static_cast<std::size_t>(b)] =
          distance(points[static_cast<std::size_t>(a)],
                   points[static_cast<std::size_t>(b)]);
    }
    search.straight[static_cast<std::size_t>(a)] = search.at(source, a);
  }
  search.parent.assign(static_cast<std::size_t>(n), kNoNode);
  search.delay.assign(static_cast<std::size_t>(n), 0.0);
  search.degree.assign(static_cast<std::size_t>(n), 0);
  search.attached.assign(static_cast<std::size_t>(n), 0);
  search.attached[static_cast<std::size_t>(source)] = 1;

  search.recurse(1, 0.0, 0.0);
  OMT_ASSERT(!search.bestParent.empty() || n == 1,
             "exact search found no tree");

  ExactResult result{.tree = MulticastTree(n, source),
                     .radius = n == 1 ? 0.0 : search.bestRadius,
                     .provedOptimal = !search.budgetExhausted,
                     .nodesExplored = search.explored};
  for (NodeId v = 0; v < n; ++v) {
    if (v == source) continue;
    result.tree.attach(v, search.bestParent[static_cast<std::size_t>(v)],
                       EdgeKind::kLocal);
  }
  result.tree.finalize();
  return result;
}

}  // namespace omt
