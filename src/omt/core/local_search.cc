#include "omt/core/local_search.h"

#include <algorithm>
#include <vector>

#include "omt/common/error.h"
#include "omt/spatial/kd_tree.h"
#include "omt/tree/validation.h"

namespace omt {
namespace {

/// Mutable working copy of the tree: parent pointers, child lists, and
/// root-path delays, updated incrementally as subtrees are re-homed.
class WorkingTree {
 public:
  WorkingTree(const MulticastTree& tree, std::span<const Point> points)
      : points_(points),
        root_(tree.root()),
        parent_(static_cast<std::size_t>(tree.size()), kNoNode),
        children_(static_cast<std::size_t>(tree.size())),
        delay_(static_cast<std::size_t>(tree.size()), 0.0) {
    for (NodeId v = 0; v < tree.size(); ++v) {
      if (v == root_) continue;
      const NodeId p = tree.parentOf(v);
      parent_[static_cast<std::size_t>(v)] = p;
      children_[static_cast<std::size_t>(p)].push_back(v);
    }
    for (const NodeId v : tree.bfsOrder()) refreshDelay(v);
  }

  NodeId root() const { return root_; }
  NodeId size() const { return static_cast<NodeId>(parent_.size()); }
  NodeId parentOf(NodeId v) const {
    return parent_[static_cast<std::size_t>(v)];
  }
  double delayOf(NodeId v) const { return delay_[static_cast<std::size_t>(v)]; }
  int outDegree(NodeId v) const {
    return static_cast<int>(children_[static_cast<std::size_t>(v)].size());
  }

  /// The node with the largest delay (the critical leaf).
  NodeId criticalNode() const {
    NodeId best = root_;
    for (NodeId v = 0; v < size(); ++v) {
      if (delay_[static_cast<std::size_t>(v)] >
          delay_[static_cast<std::size_t>(best)])
        best = v;
    }
    return best;
  }

  /// Whether `candidate` lies in the subtree rooted at `node` (walks up).
  bool inSubtree(NodeId node, NodeId candidate) const {
    for (NodeId a = candidate; a != kNoNode;
         a = parent_[static_cast<std::size_t>(a)]) {
      if (a == node) return true;
    }
    return false;
  }

  /// Re-home `node` under `newParent` and refresh its subtree's delays.
  void move(NodeId node, NodeId newParent) {
    const NodeId old = parent_[static_cast<std::size_t>(node)];
    auto& siblings = children_[static_cast<std::size_t>(old)];
    siblings.erase(std::find(siblings.begin(), siblings.end(), node));
    parent_[static_cast<std::size_t>(node)] = newParent;
    children_[static_cast<std::size_t>(newParent)].push_back(node);
    // Refresh delays below `node`.
    std::vector<NodeId> stack{node};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      refreshDelay(v);
      for (const NodeId c : children_[static_cast<std::size_t>(v)])
        stack.push_back(c);
    }
  }

  MulticastTree materialize(const MulticastTree& original) const {
    MulticastTree out(size(), root_);
    for (NodeId v = 0; v < size(); ++v) {
      if (v == root_) continue;
      // Preserve the original edge-kind label when the parent is
      // unchanged; re-homed edges are local.
      const EdgeKind kind =
          parent_[static_cast<std::size_t>(v)] == original.parentOf(v)
              ? original.edgeKindOf(v)
              : EdgeKind::kLocal;
      out.attach(v, parent_[static_cast<std::size_t>(v)], kind);
    }
    out.finalize();
    return out;
  }

 private:
  void refreshDelay(NodeId v) {
    if (v == root_) {
      delay_[static_cast<std::size_t>(v)] = 0.0;
      return;
    }
    const NodeId p = parent_[static_cast<std::size_t>(v)];
    delay_[static_cast<std::size_t>(v)] =
        delay_[static_cast<std::size_t>(p)] +
        distance(points_[static_cast<std::size_t>(p)],
                 points_[static_cast<std::size_t>(v)]);
  }

  std::span<const Point> points_;
  NodeId root_;
  std::vector<NodeId> parent_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<double> delay_;
};

}  // namespace

LocalSearchResult improveMaxDelay(const MulticastTree& tree,
                                  std::span<const Point> points,
                                  const LocalSearchOptions& options) {
  OMT_CHECK(tree.finalized(), "tree must be finalized");
  OMT_CHECK(points.size() == static_cast<std::size_t>(tree.size()),
            "one point per tree node required");
  OMT_CHECK(options.maxOutDegree >= 1, "degree cap must be positive");
  OMT_CHECK(options.maxMoves >= 0, "negative move budget");
  OMT_CHECK(options.candidateNeighbors >= 1, "need at least one candidate");
  const ValidationResult valid =
      validate(tree, {.maxOutDegree = options.maxOutDegree});
  OMT_CHECK(valid.ok, "input tree invalid: " + valid.message);

  WorkingTree work(tree, points);
  KdTree index(points);
  for (NodeId v = 0; v < work.size(); ++v) {
    if (work.outDegree(v) < options.maxOutDegree) index.setActive(v, true);
  }

  LocalSearchResult result{
      .tree = MulticastTree(1, 0),  // placeholder; replaced below
      .initialMaxDelay = work.delayOf(work.criticalNode()),
      .finalMaxDelay = 0.0,
      .movesApplied = 0};

  while (result.movesApplied < options.maxMoves) {
    const NodeId critical = work.criticalNode();
    if (critical == work.root()) break;

    // Walk the critical path root-ward; take the best strictly-improving
    // reattachment among the k-d tree's nearest feasible candidates.
    NodeId bestNode = kNoNode;
    NodeId bestParent = kNoNode;
    double bestGain = 1e-12;
    for (NodeId u = critical; u != work.root(); u = work.parentOf(u)) {
      const Point& where = points[static_cast<std::size_t>(u)];
      // Probe up to candidateNeighbors nearest active hosts, temporarily
      // masking ineligible ones (the k-d tree returns one at a time).
      std::vector<NodeId> masked;
      for (int probe = 0; probe < options.candidateNeighbors; ++probe) {
        const NodeId cand = index.nearestActive(where, u);
        if (cand == kNoNode) break;
        masked.push_back(cand);
        index.setActive(cand, false);
        if (work.inSubtree(u, cand)) continue;
        const double newDelay =
            work.delayOf(cand) +
            distance(points[static_cast<std::size_t>(cand)], where);
        const double gain = work.delayOf(u) - newDelay;
        if (gain > bestGain) {
          bestGain = gain;
          bestNode = u;
          bestParent = cand;
        }
      }
      for (const NodeId m : masked) index.setActive(m, true);
    }
    if (bestNode == kNoNode) break;

    const NodeId oldParent = work.parentOf(bestNode);
    work.move(bestNode, bestParent);
    ++result.movesApplied;
    index.setActive(oldParent, true);  // regained a slot
    if (work.outDegree(bestParent) >= options.maxOutDegree)
      index.setActive(bestParent, false);
  }

  result.finalMaxDelay = work.delayOf(work.criticalNode());
  result.tree = work.materialize(tree);
  return result;
}

}  // namespace omt
