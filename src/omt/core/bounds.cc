#include "omt/core/bounds.h"

#include <algorithm>

#include "omt/common/error.h"

namespace omt {

double innerArcSum(const PolarGrid& grid) {
  double sum = 0.0;
  for (int i = 1; i <= grid.rings() - 1; ++i) sum += grid.arcLength(i);
  return sum;
}

double upperBoundEq7(const PolarGrid& grid, int j, int arcFactor) {
  OMT_CHECK(j >= 0 && j <= grid.rings(), "ring index out of range");
  OMT_CHECK(arcFactor >= 1, "arc factor must be positive");
  return grid.outerRadius() + 2.0 * arcFactor * grid.arcLength(j) +
         innerArcSum(grid);
}

double radiusLowerBound(std::span<const Point> points, NodeId source) {
  OMT_CHECK(!points.empty(), "empty point set");
  OMT_CHECK(source >= 0 && source < static_cast<NodeId>(points.size()),
            "source index out of range");
  const Point& origin = points[static_cast<std::size_t>(source)];
  double best = 0.0;
  for (const Point& p : points) best = std::max(best, distance(origin, p));
  return best;
}

}  // namespace omt
