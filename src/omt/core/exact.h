// Exact minimum-radius degree-constrained spanning tree, for small n.
//
// The problem is NP-hard (the paper cites Malouch et al. for the proof),
// but tiny instances are solvable by branch and bound, which gives the
// test suite and the optimality-gap bench a true optimum to measure the
// heuristics against.
//
// Search space: trees grown one attachment at a time. Canonical order —
// each newly attached node must have delay >= the previously attached
// node's (valid for every tree, since a child's delay exceeds its
// parent's) — collapses the attach-order permutations of the same tree.
// Bounding: a completion's radius is at least max(current radius, largest
// straight-line distance from the source to any unattached host).
#pragma once

#include <cstdint>
#include <span>

#include "omt/geometry/point.h"
#include "omt/tree/multicast_tree.h"

namespace omt {

struct ExactOptions {
  int maxOutDegree = 2;
  /// Hard cap on instance size; the search is exponential.
  NodeId maxNodes = 12;
  /// Give up (returning the best tree found, provedOptimal = false) after
  /// this many explored branch nodes.
  std::int64_t nodeBudget = 50'000'000;
};

struct ExactResult {
  MulticastTree tree;
  double radius = 0.0;
  bool provedOptimal = false;
  std::int64_t nodesExplored = 0;
};

/// Optimal (or best-within-budget) minimum-radius tree over `points`
/// rooted at `source`, out-degrees <= options.maxOutDegree.
ExactResult solveExactMinRadius(std::span<const Point> points, NodeId source,
                                const ExactOptions& options = {});

}  // namespace omt
