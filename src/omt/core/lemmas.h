// The probabilistic machinery of Section III-D (Lemmas 1 and 2).
//
// Lemma 1 bounds the probability that uniformly thrown balls leave a
// bucket empty:  p_alpha(n) <= n^alpha * e^(-n^(1-alpha))  for n balls in
// n^alpha buckets; the grid needs every inner-ring cell (bucket) occupied,
// which with 2^(k+1) equal-volume cells yields k >= log2(n)/2 w.h.p.
// (equation 5). Lemma 2 sharpens this: for alpha <= 1/2 the bound never
// exceeds 1/e for any n >= 1.
//
// These functions exist so tests can tie the theory to the implementation:
// the Monte-Carlo empty-bucket frequency must respect the Lemma-1 bound,
// and predictedRings() — the k at which the occupancy union bound crosses
// 1/2 — must track the maximal k that assignToGrid() actually selects.
#pragma once

#include <cstdint>

#include "omt/random/rng.h"

namespace omt {

/// Union bound on P(at least one of `buckets` buckets is empty) after
/// throwing `balls` uniform balls: buckets * (1 - 1/buckets)^balls.
double emptyBucketUnionBound(double balls, double buckets);

/// Lemma 1's closed form: n^alpha * exp(-n^(1-alpha)), an upper bound on
/// the union bound for n balls in n^alpha buckets (0 < alpha < 1).
double lemma1Bound(double n, double alpha);

/// The maximum over x >= 0 of f_alpha(x) = x^alpha e^(-x^(1-alpha))
/// (attained at x* = (alpha/(1-alpha))^(1/(1-alpha))); Lemma 2's proof
/// shows this is what caps p_alpha(n) for small n.
double lemma2PeakValue(double alpha);

/// Monte-Carlo estimate of the true empty-bucket probability.
double estimateEmptyBucketProbability(std::int64_t balls,
                                      std::int64_t buckets, int trials,
                                      Rng& rng);

/// The ring count at which the grid's occupancy condition (property 3)
/// starts holding with probability >= 1/2, per the union bound: the
/// largest k such that (2^k - 2) * (1 - 2^-(k+1))^n <= 1/2. Tracks the
/// average k chosen by assignToGrid on uniform-disk inputs.
int predictedRings(std::int64_t n);

}  // namespace omt
