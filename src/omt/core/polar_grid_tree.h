// Algorithm Polar_Grid (Section III) — the paper's asymptotically optimal
// degree-constrained minimum-radius multicast tree.
//
// Three stages:
//  1. build the maximal polar grid over the points (omt/grid);
//  2. connect the cells: each cell's representative (the minimum-radius
//     point) links to the representatives of its two aligned cells in the
//     next ring, forming a binary core network rooted at the source;
//  3. connect the remaining points inside every cell with the Bisection
//     algorithm (omt/bisection).
//
// Out-degree policies (paper Sections III-C and IV-A, plus the natural
// interpolation for other caps):
//  * D >= 4 — representative: 2 core links + bisection fan-out
//    min(D - 2, 2^d). D = 6 in 2D (4+2) and D = 10 in 3D (8+2) are the
//    paper's defaults.
//  * D == 3 — representative keeps fan-out 2 for bisection and delegates
//    the two core links to a relay node (the cell's maximum-radius point).
//  * D == 2 — the paper's three-case construction: the representative
//    forwards to at most two special points, one relaying to the next-ring
//    cells and one acting as the in-cell bisection center.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "omt/common/types.h"
#include "omt/geometry/point.h"
#include "omt/grid/polar_grid.h"
#include "omt/tree/multicast_tree.h"

namespace omt {

struct PolarGridOptions {
  /// Maximum out-degree of any node, >= 2. Defaults to the paper's 2D
  /// setting; pass 10 for the paper's 3D experiments, 2 for binary trees.
  int maxOutDegree = 6;
  /// Optional fixed outer radius (default: max source-to-point distance).
  std::optional<double> outerRadius = std::nullopt;
  /// Hard cap on the ring count (testing hook; the default never binds).
  int maxRings = PolarGrid::kMaxRings;
  /// Worker threads for the construction pipeline; 0 = auto (OMT_THREADS
  /// environment variable, else half the hardware threads). The built tree
  /// is byte-identical for every value (see docs/performance.md).
  int workers = 0;
};

struct PolarGridResult {
  MulticastTree tree;          ///< finalized spanning tree rooted at source
  PolarGrid grid;              ///< the grid the tree was built on
  double upperBound = 0.0;     ///< eq. (7) at j = 0 (Table I "Bound")
  std::int64_t occupiedCells = 0;
  std::int64_t coreEdgeCount = 0;

  int rings() const { return grid.rings(); }
  double outerRadius() const { return grid.outerRadius(); }
};

/// Build the Polar_Grid tree over `points` rooted at `points[source]`.
/// Requires n >= 1 and a uniform dimension in [2, kMaxDim]. Always returns
/// a valid spanning tree with out-degrees <= options.maxOutDegree; the
/// asymptotic-optimality guarantee additionally assumes the points are
/// (approximately) uniformly distributed in a convex region around the
/// source.
PolarGridResult buildPolarGridTree(std::span<const Point> points,
                                   NodeId source,
                                   const PolarGridOptions& options = {});

/// The bisection fan-out the degree policy assigns inside cells:
/// min(D - 2, 2^d) for D >= 4, otherwise 2.
int cellBisectionFanOut(int dim, int maxOutDegree);

/// radius / radiusLowerBound of a fresh static Polar_Grid build over
/// `points` — the quality yardstick the churn watchdog and the steady-state
/// gate compare a long-lived incremental session against. Returns 1.0 when
/// n <= 1 (both radius and bound are then zero).
double staticRadiusRatio(std::span<const Point> points, NodeId source,
                         int maxOutDegree);

}  // namespace omt
