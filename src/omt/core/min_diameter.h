// The minimum-diameter variant (Section VI).
//
// The MDDL problem of Shi, Turner & Waldvogel minimises the largest delay
// between ANY pair of participants (messages relayed through the tree),
// not just source-to-receiver. The paper's concluding remarks explain how
// Polar_Grid applies: pick an artificial root among the hosts closest to
// the center of the enclosing sphere and build the minimum-radius tree
// from there — asymptotically optimal for uniform points in a sphere, and
// within a factor of 2 of optimal in any convex region (tree diameter <=
// 2 * radius, and the optimal diameter is at least the maximum pairwise
// distance).
#pragma once

#include <span>

#include "omt/common/types.h"
#include "omt/core/polar_grid_tree.h"
#include "omt/geometry/enclosing_ball.h"

namespace omt {

struct MinDiameterOptions {
  int maxOutDegree = 6;
};

struct MinDiameterResult {
  MulticastTree tree;   ///< rooted at `root`, the artificial center host
  NodeId root = kNoNode;
  double diameter = 0.0;       ///< weighted tree diameter (the objective)
  double radius = 0.0;         ///< max root-to-host delay
  /// Certified lower bound on any spanning tree's diameter: an actual
  /// pairwise host distance (two-sweep farthest pair).
  double lowerBound = 0.0;
  EnclosingBall enclosingBall; ///< of the host set
};

/// Host index nearest to the center of the smallest enclosing ball.
NodeId centerMostHost(std::span<const Point> points);

/// Build a degree-constrained spanning tree minimising (approximately) the
/// tree diameter: Polar_Grid rooted at the center-most host.
MinDiameterResult buildMinDiameterTree(std::span<const Point> points,
                                       const MinDiameterOptions& options = {});

}  // namespace omt
