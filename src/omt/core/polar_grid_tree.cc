#include "omt/core/polar_grid_tree.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "omt/bisection/bisection.h"
#include "omt/common/error.h"
#include "omt/core/bounds.h"
#include "omt/grid/assignment.h"
#include "omt/kernels/kernels.h"
#include "omt/kernels/polar_batch.h"
#include "omt/tree/metrics.h"
#include "omt/obs/metrics.h"
#include "omt/obs/trace.h"
#include "omt/parallel/parallel_for.h"
#include "omt/parallel/scratch_arena.h"

namespace omt {

int cellBisectionFanOut(int dim, int maxOutDegree) {
  OMT_CHECK(dim >= 2 && dim <= kMaxDim, "dimension out of range");
  OMT_CHECK(maxOutDegree >= 2, "out-degree cap must be at least 2");
  if (maxOutDegree >= 4) {
    return std::min(maxOutDegree - 2,
                    static_cast<int>(std::int64_t{1} << dim));
  }
  return 2;
}

namespace {

/// Index (into `candidates`) of the minimum-radius point, ties by node id.
std::size_t argMinRadius(std::span<const NodeId> candidates,
                         std::span<const PolarCoords> polar) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double cur = polar[static_cast<std::size_t>(candidates[i])].radius;
    const double bst = polar[static_cast<std::size_t>(candidates[best])].radius;
    if (cur < bst || (cur == bst && candidates[i] < candidates[best]))
      best = i;
  }
  return best;
}

/// Index of the candidate closest to `target`, ties by node id. Used to
/// pick the relay that forwards to the next ring: the two child
/// representatives sit near the cell's outer arc, so the best relay is the
/// point nearest the outer-arc midpoint.
std::size_t argMinDistanceTo(std::span<const NodeId> candidates,
                             std::span<const Point> points,
                             const Point& target) {
  std::size_t best = 0;
  double bestDist = kInf;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double cur =
        squaredDistance(points[static_cast<std::size_t>(candidates[i])], target);
    if (cur < bestDist ||
        (cur == bestDist && candidates[i] < candidates[best])) {
      bestDist = cur;
      best = i;
    }
  }
  return best;
}

/// Cartesian midpoint of a cell's inner or outer boundary arc (radius
/// r_{ring-1} or r_ring, angular center), in the grid's frame about
/// `origin`. The inner-arc center anchors cell representatives (the paper
/// picks the point "closest to the center on the inner arc of the
/// segment"); the outer-arc center is where next-ring relays aim, since
/// the two child representatives sit on the cell's outer boundary.
Point cellArcMid(const PolarGrid& grid, int ring, std::uint64_t cell,
                 const Point& origin, bool outer) {
  const RingSegment segment = grid.cellSegment(ring, cell);
  PolarCoords mid;
  mid.dim = grid.dim();
  mid.radius = outer ? segment.radial().hi : segment.radial().lo;
  for (int j = 0; j < segment.cubeAxes(); ++j) {
    double m = segment.cubeAxis(j).mid();
    if (j == azimuthAxis(grid.dim())) m -= std::floor(m);  // wrap into [0,1)
    mid.cube[static_cast<std::size_t>(j)] = m;
  }
  // The table-seeded inversion returns the same doubles as the scalar one,
  // so both branches yield bitwise-identical points.
  return kernels::enabled() ? kernels::fromPolarTabled(mid, origin)
                            : fromPolar(mid, origin);
}

void removeAt(std::vector<NodeId>& v, std::size_t pos) {
  v[pos] = v.back();
  v.pop_back();
}

/// Deterministic: every counter adds once per logical item (build, node,
/// core edge), so the values are identical for any worker count.
struct CoreMetrics {
  obs::Counter& builds;
  obs::Counter& nodes;
  obs::Counter& coreEdges;
};

CoreMetrics& coreMetrics() {
  auto& registry = obs::MetricsRegistry::global();
  static CoreMetrics metrics{registry.counter("omt_core_builds_total"),
                             registry.counter("omt_core_nodes_total"),
                             registry.counter("omt_core_edges_total")};
  return metrics;
}

}  // namespace

PolarGridResult buildPolarGridTree(std::span<const Point> points,
                                   NodeId source,
                                   const PolarGridOptions& options) {
  const auto n = static_cast<NodeId>(points.size());
  OMT_CHECK(n >= 1, "empty point set");
  OMT_CHECK(source >= 0 && source < n, "source index out of range");
  OMT_CHECK(options.maxOutDegree >= 2, "out-degree cap must be at least 2");
  const int d = points.front().dim();
  const int workers = resolveWorkers(options.workers);

  const obs::TraceSpan span("build_polar_grid_tree", "core");
  coreMetrics().builds.add();
  coreMetrics().nodes.add(n);

  AssignmentOptions assignOptions;
  assignOptions.maxRings = options.maxRings;
  assignOptions.outerRadius = options.outerRadius;
  assignOptions.workers = workers;
  const GridAssignment assignment = assignToGrid(points, source, assignOptions);
  const PolarGrid& grid = assignment.grid;
  const int k = grid.rings();
  const Point& origin = points[static_cast<std::size_t>(source)];
  const int fanOut = cellBisectionFanOut(d, options.maxOutDegree);
  const int degree = options.maxOutDegree;

  // Radii for representative selection come straight from the assignment's
  // polar coordinates (toPolar's radius is bit-identical to
  // distance(point, origin)) — the second full conversion pass the old
  // pipeline ran is gone.
  const std::span<const PolarCoords> polar = assignment.polarOfPoint;

  // Stage 2a (parallel over cells): representative of every occupied cell =
  // the point "closest to the center on the inner arc of the segment"
  // (Section III-B): the member nearest the midpoint of the cell's inner
  // boundary. The source represents ring 0 by definition. Each heap id is
  // written by exactly one chunk, so the pass is race-free and its output
  // independent of the chunking.
  const std::uint64_t heapIds = grid.heapIdCount();
  std::vector<NodeId> rep(heapIds, kNoNode);
  obs::TraceSpan repsSpan("stage2a_representatives", "core", span.id());
  if (kernels::enabled()) {
    // Batched variant: gather the chunk's occupied cells, build their
    // inner-arc midpoints in SoA lanes on the worker's arena, and run one
    // angularCubeBatch per chunk (table-seeded sin^k inversions) instead
    // of a scalar fromPolar per cell. Same doubles, same representatives.
    parallelForChunks(
        1, static_cast<std::int64_t>(heapIds), workers,
        [&](std::int64_t lo, std::int64_t hi, int) {
          ScratchArena& arena = workerArena();
          ScratchArena::Scope scope(arena);
          const auto chunkSize = static_cast<std::size_t>(hi - lo);
          std::span<std::uint64_t> ids = arena.alloc<std::uint64_t>(chunkSize);
          std::size_t occupied = 0;
          for (std::int64_t hh = lo; hh < hi; ++hh) {
            const auto h = static_cast<std::uint64_t>(hh);
            if (!assignment.membersOf(h).empty()) ids[occupied++] = h;
          }
          if (occupied == 0) return;
          kernels::PolarLanes mids;
          mids.radius = arena.alloc<double>(occupied);
          for (int j = 0; j < d - 1; ++j)
            mids.cube[static_cast<std::size_t>(j)] =
                arena.alloc<double>(occupied);
          for (std::size_t idx = 0; idx < occupied; ++idx) {
            const std::uint64_t h = ids[idx];
            const int ring = grid.ringOfHeapId(h);
            const RingSegment segment =
                grid.cellSegment(ring, grid.cellOfHeapId(h));
            mids.radius[idx] = segment.radial().lo;
            for (int j = 0; j < segment.cubeAxes(); ++j) {
              double m = segment.cubeAxis(j).mid();
              if (j == azimuthAxis(d)) m -= std::floor(m);  // wrap into [0,1)
              mids.cube[static_cast<std::size_t>(j)][idx] = m;
            }
          }
          std::span<Point> innerMid = arena.alloc<Point>(occupied);
          kernels::angularCubeBatch(d, origin, mids.radius, mids, innerMid);
          for (std::size_t idx = 0; idx < occupied; ++idx) {
            const std::uint64_t h = ids[idx];
            const auto members = assignment.membersOf(h);
            rep[h] = members[argMinDistanceTo(members, points, innerMid[idx])];
          }
        });
  } else {
    parallelForChunks(
        1, static_cast<std::int64_t>(heapIds), workers,
        [&](std::int64_t lo, std::int64_t hi, int) {
          for (std::int64_t hh = lo; hh < hi; ++hh) {
            const auto h = static_cast<std::uint64_t>(hh);
            const auto members = assignment.membersOf(h);
            if (members.empty()) continue;
            const int ring = grid.ringOfHeapId(h);
            const Point innerMid = cellArcMid(grid, ring, grid.cellOfHeapId(h),
                                              origin, /*outer=*/false);
            rep[h] = members[argMinDistanceTo(members, points, innerMid)];
          }
        });
  }
  rep[1] = source;
  repsSpan.end();

  PolarGridResult result{.tree = MulticastTree(n, source), .grid = grid};
  MulticastTree& tree = result.tree;
  result.occupiedCells = assignment.occupiedCells();

  // Stages 2b and 3 (parallel over cells). Every attach performed while
  // iterating cell h has its parent inside cell h (representative, relay,
  // bisection center, or a bisection-internal node) and a child that no
  // other cell attaches (h's own non-representative members, or the
  // representatives of the aligned next-ring cells 2h and 2h+1). Parent
  // out-degree writes therefore partition by cell and each child's parent
  // link is written exactly once, so cells are processed concurrently with
  // no synchronisation; the tree is identical for every worker count.
  // coreEdgeCount is a per-slot sum reduced after the join.
  std::vector<std::int64_t> coreEdges(static_cast<std::size_t>(workers), 0);
  obs::TraceSpan wireSpan("stage2b3_cell_wiring", "core", span.id());
  parallelForChunks(
      1, static_cast<std::int64_t>(heapIds), workers,
      [&](std::int64_t lo, std::int64_t hi, int slot) {
        std::int64_t& coreCount = coreEdges[static_cast<std::size_t>(slot)];
        const auto attachCore = [&](NodeId child, NodeId parent) {
          tree.attach(child, parent, EdgeKind::kCore);
          ++coreCount;
        };
        std::vector<NodeId> locals;
        std::vector<PolarCoords> localPolar;
        for (std::int64_t hh = lo; hh < hi; ++hh) {
          const auto h = static_cast<std::uint64_t>(hh);
          const NodeId cellRep = rep[h];
          if (cellRep == kNoNode) {
            // Property 3: only outermost-ring cells may be empty.
            OMT_ASSERT(grid.ringOfHeapId(h) >= k,
                       "empty cell in an inner ring despite property 3");
            continue;
          }
          const int ring = grid.ringOfHeapId(h);
          const std::uint64_t cell = grid.cellOfHeapId(h);

          // Representatives of the two aligned cells in the next ring.
          NodeId childReps[2];
          int childCount = 0;
          if (ring < k) {
            for (std::uint64_t hc = 2 * h; hc <= 2 * h + 1; ++hc) {
              if (rep[hc] != kNoNode) childReps[childCount++] = rep[hc];
            }
          }

          // Remaining in-cell points.
          locals.clear();
          for (const NodeId member : assignment.membersOf(h)) {
            if (member != cellRep && member != source) locals.push_back(member);
          }

          // Apply the degree policy; pick the bisection root and relay wiring.
          NodeId bisectRoot = cellRep;
          int bisectFanOut = fanOut;
          if (degree >= 4) {
            for (int c = 0; c < childCount; ++c) attachCore(childReps[c], cellRep);
          } else if (degree == 3) {
            if (childCount > 0 && !locals.empty()) {
              const Point outerMid =
                  cellArcMid(grid, ring, cell, origin, /*outer=*/true);
              const std::size_t tPos = argMinDistanceTo(locals, points, outerMid);
              const NodeId relay = locals[tPos];
              removeAt(locals, tPos);
              attachCore(relay, cellRep);
              for (int c = 0; c < childCount; ++c) attachCore(childReps[c], relay);
            } else {
              for (int c = 0; c < childCount; ++c) attachCore(childReps[c], cellRep);
            }
          } else {  // degree == 2, the paper's Section IV-A cases
            if (childCount == 0) {
              // Outermost (or childless) cell: the representative roots the
              // bisection directly.
            } else if (locals.empty()) {
              // Case 1: the representative is alone; it carries the core links.
              for (int c = 0; c < childCount; ++c) attachCore(childReps[c], cellRep);
            } else if (locals.size() == 1) {
              // Case 2: the second point relays to the next ring.
              const NodeId other = locals[0];
              locals.clear();
              attachCore(other, cellRep);
              for (int c = 0; c < childCount; ++c) attachCore(childReps[c], other);
            } else {
              // Case 3: one special point relays to the next ring, another is
              // the center for connecting the rest of the cell.
              const Point outerMid =
                  cellArcMid(grid, ring, cell, origin, /*outer=*/true);
              const std::size_t tPos = argMinDistanceTo(locals, points, outerMid);
              const NodeId relay = locals[tPos];
              removeAt(locals, tPos);
              attachCore(relay, cellRep);
              for (int c = 0; c < childCount; ++c) attachCore(childReps[c], relay);
              const std::size_t bPos = argMinRadius(locals, polar);
              const NodeId center = locals[bPos];
              removeAt(locals, bPos);
              tree.attach(center, cellRep, EdgeKind::kLocal);
              bisectRoot = center;
            }
          }

          // Stage 3: connect the remaining in-cell points with Bisection,
          // reusing the polar coordinates computed during assignment.
          if (!locals.empty()) {
            localPolar.clear();
            localPolar.reserve(locals.size());
            for (const NodeId member : locals)
              localPolar.push_back(polar[static_cast<std::size_t>(member)]);
            bisectConnect(tree, locals, localPolar, bisectRoot,
                          polar[static_cast<std::size_t>(bisectRoot)].radius,
                          grid.cellSegment(ring, cell), bisectFanOut);
          }
        }
      });
  wireSpan.end();
  for (const std::int64_t c : coreEdges) result.coreEdgeCount += c;
  coreMetrics().coreEdges.add(result.coreEdgeCount);

  tree.finalize();
  result.upperBound = upperBoundEq7(grid, 0, relayLayers(d, fanOut));
  return result;
}

double staticRadiusRatio(std::span<const Point> points, NodeId source,
                         int maxOutDegree) {
  if (points.size() <= 1) return 1.0;
  const double bound = radiusLowerBound(points, source);
  if (bound <= 0.0) return 1.0;
  PolarGridOptions options;
  options.maxOutDegree = maxOutDegree;
  const PolarGridResult result = buildPolarGridTree(points, source, options);
  const TreeMetrics metrics = computeMetrics(result.tree, points);
  return metrics.maxDelay / bound;
}

}  // namespace omt
