#include "omt/core/lemmas.h"

#include <cmath>
#include <vector>

#include "omt/common/error.h"
#include "omt/grid/polar_grid.h"

namespace omt {

double emptyBucketUnionBound(double balls, double buckets) {
  OMT_CHECK(balls >= 0.0 && buckets >= 1.0, "invalid balls/buckets");
  return std::min(1.0, buckets * std::pow(1.0 - 1.0 / buckets, balls));
}

double lemma1Bound(double n, double alpha) {
  OMT_CHECK(n >= 1.0, "need at least one ball");
  OMT_CHECK(alpha > 0.0 && alpha < 1.0, "alpha outside (0, 1)");
  return std::min(1.0, std::pow(n, alpha) *
                           std::exp(-std::pow(n, 1.0 - alpha)));
}

double lemma2PeakValue(double alpha) {
  OMT_CHECK(alpha > 0.0 && alpha < 1.0, "alpha outside (0, 1)");
  const double xStar =
      std::pow(alpha / (1.0 - alpha), 1.0 / (1.0 - alpha));
  return std::pow(xStar, alpha) * std::exp(-std::pow(xStar, 1.0 - alpha));
}

double estimateEmptyBucketProbability(std::int64_t balls,
                                      std::int64_t buckets, int trials,
                                      Rng& rng) {
  OMT_CHECK(balls >= 0 && buckets >= 1, "invalid balls/buckets");
  OMT_CHECK(trials >= 1, "need at least one trial");
  std::vector<std::uint8_t> hit(static_cast<std::size_t>(buckets));
  int withEmpty = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::fill(hit.begin(), hit.end(), 0);
    std::int64_t covered = 0;
    for (std::int64_t b = 0; b < balls && covered < buckets; ++b) {
      auto& cell = hit[rng.uniformInt(static_cast<std::uint64_t>(buckets))];
      if (!cell) {
        cell = 1;
        ++covered;
      }
    }
    if (covered < buckets) ++withEmpty;
  }
  return static_cast<double>(withEmpty) / static_cast<double>(trials);
}

int predictedRings(std::int64_t n) {
  OMT_CHECK(n >= 1, "need at least one point");
  int best = 1;
  for (int k = 1; k <= PolarGrid::kMaxRings; ++k) {
    // Rings 1..k-1 hold 2^k - 2 cells, each covering a 2^-(k+1) area
    // fraction of the unit disk.
    const double innerCells = std::exp2(k) - 2.0;
    if (innerCells <= 0.0) {
      best = k;
      continue;
    }
    const double missProbability =
        innerCells * std::pow(1.0 - std::exp2(-(k + 1)),
                              static_cast<double>(n));
    if (missProbability <= 0.5) best = k;
  }
  return best;
}

}  // namespace omt
