// Analytic bounds of Section III-E.
//
// Delta_i is the arc length of a ring-i cell (2*pi*r_i / 2^i in 2D) and
// S_k = sum_{i=1}^{k-1} Delta_i the total inner-arc budget of a core path.
// Equation (7) bounds any path in the Polar_Grid tree by
//     l_P <= R + 2 * Delta_j + S_k
// (unit disk: R = 1), where j is the ring of the path's final cell; Table I
// reports it at j = 0 since Delta_0 >= Delta_j for every j, with the
// Delta_j coefficient doubled for out-degree-2 trees (each cell then spends
// two links per level instead of one).
#pragma once

#include <span>

#include "omt/common/types.h"
#include "omt/geometry/point.h"
#include "omt/grid/polar_grid.h"

namespace omt {

/// S_k: sum of the cell arc lengths of the inner rings 1..k-1.
double innerArcSum(const PolarGrid& grid);

/// Equation (7) evaluated at ring j with the given arc-term multiplier
/// (1 for out-degree >= 2^d + 2 trees, i.e. one link per level; 2 for the
/// paper's out-degree-2 trees in 2D; generally relayLayers(d, m)):
///     R + 2 * arcFactor * Delta_j + S_k.
/// Exactly the paper's bound in 2D; in higher dimensions the azimuthal-arc
/// analogue (reported for completeness, not used by any theorem here).
double upperBoundEq7(const PolarGrid& grid, int j, int arcFactor);

/// Lower bound on the max delay of ANY spanning tree rooted at `source`:
/// the largest source-to-point distance (every tree path to the farthest
/// point is at least the straight line). This is the "1" that Table I's
/// Delay column converges to on the unit disk.
double radiusLowerBound(std::span<const Point> points, NodeId source);

}  // namespace omt
