// Local-search refinement of a degree-constrained multicast tree.
//
// The paper's constructions are one-shot; this extension polishes any
// feasible tree with critical-path reattachment moves: find the current
// worst root-to-leaf path, and try to re-home one of its nodes (subtree
// and all) under a nearby host with spare capacity so that the node's
// delay strictly drops. Every applied move lowers the critical path and
// never raises any other (the moved subtree only gets closer to the root;
// nothing else changes), so max delay is monotone non-increasing and the
// search terminates. Candidates come from the capacity-aware k-d tree
// (omt/spatial), so a round costs O(path length * log n).
//
// Used by bench_local_search to ask: how much of the gap between the
// O(n) Polar_Grid tree and the O(n^2) greedy ceiling can a cheap polish
// recover?
#pragma once

#include <cstdint>
#include <span>

#include "omt/geometry/point.h"
#include "omt/tree/multicast_tree.h"

namespace omt {

struct LocalSearchOptions {
  /// Degree cap the refined tree must respect (>= 1; must be >= the input
  /// tree's max out-degree).
  int maxOutDegree = 6;
  /// Maximum number of applied moves.
  int maxMoves = 1000;
  /// How many nearest candidate parents to examine per critical-path node.
  int candidateNeighbors = 8;
};

struct LocalSearchResult {
  MulticastTree tree;
  double initialMaxDelay = 0.0;
  double finalMaxDelay = 0.0;
  int movesApplied = 0;
};

/// Refine `tree` (finalized, spanning, within the cap) over `points`.
/// Deterministic; returns a new finalized tree.
LocalSearchResult improveMaxDelay(const MulticastTree& tree,
                                  std::span<const Point> points,
                                  const LocalSearchOptions& options = {});

}  // namespace omt
