#include "omt/core/min_diameter.h"

#include "omt/common/error.h"
#include "omt/tree/metrics.h"

namespace omt {

NodeId centerMostHost(std::span<const Point> points) {
  OMT_CHECK(!points.empty(), "empty point set");
  const EnclosingBall ball = smallestEnclosingBall(points);
  NodeId best = 0;
  double bestDist = kInf;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double d = squaredDistance(points[i], ball.center);
    if (d < bestDist) {
      bestDist = d;
      best = static_cast<NodeId>(i);
    }
  }
  return best;
}

MinDiameterResult buildMinDiameterTree(std::span<const Point> points,
                                       const MinDiameterOptions& options) {
  OMT_CHECK(!points.empty(), "empty point set");
  const EnclosingBall ball = smallestEnclosingBall(points);

  NodeId root = 0;
  double bestDist = kInf;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double d = squaredDistance(points[i], ball.center);
    if (d < bestDist) {
      bestDist = d;
      root = static_cast<NodeId>(i);
    }
  }

  PolarGridOptions gridOptions;
  gridOptions.maxOutDegree = options.maxOutDegree;
  PolarGridResult built = buildPolarGridTree(points, root, gridOptions);

  MinDiameterResult result{.tree = std::move(built.tree),
                           .root = root,
                           .diameter = 0.0,
                           .radius = 0.0,
                           .lowerBound = 0.0,
                           .enclosingBall = ball};
  result.diameter = diameter(result.tree, points);
  result.radius = computeMetrics(result.tree, points).maxDelay;
  result.lowerBound = maxPairwiseDistanceLowerBound(points);
  return result;
}

}  // namespace omt
