#include "omt/service/replay.h"

#include <algorithm>
#include <chrono>

#include "omt/common/error.h"

namespace omt {

namespace {

double wallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h += v + 0x9e3779b97f4a7c15ULL;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

ReplayResult replayScript(GroupManager& manager,
                          std::span<const MembershipEvent> events,
                          const ReplayOptions& options) {
  OMT_CHECK(options.batchSize >= 1, "batch size must be positive");
  ReplayResult result;
  result.events = static_cast<std::int64_t>(events.size());

  const auto total = static_cast<std::int64_t>(events.size());
  for (std::int64_t at = 0; at < total; at += options.batchSize) {
    const auto len = std::min(options.batchSize, total - at);
    const double t0 = wallSeconds();
    ApplyReport report = manager.apply(
        events.subspan(static_cast<std::size_t>(at),
                       static_cast<std::size_t>(len)));
    result.applySeconds += wallSeconds() - t0;
    ++result.batches;
    result.publishes += report.publishes;
    for (const double latency : report.eventLatencies)
      result.eventLatencies.push_back(latency);
  }

  if (options.quiesceAtEnd) {
    const double now = total > 0 ? events[events.size() - 1].time : 0.0;
    const double t0 = wallSeconds();
    result.degradedGroups = manager.quiesce(now, options.quiesceRounds);
    result.applySeconds += wallSeconds() - t0;
  }

  result.groups = manager.groupCount();
  result.liveGroups = manager.liveGroupCount();
  if (options.auditTables) {
    const int cap = manager.options().session.maxOutDegree;
    for (const GroupId group : manager.createdGroups()) {
      const auto table = manager.routes(group);
      if (!table) continue;
      if (const auto audit = table->checkConsistency(cap); !audit.ok) {
        ++result.inconsistentGroups;
        if (result.firstInconsistency.empty())
          result.firstInconsistency =
              "group " + std::to_string(group) + ": " + audit.message;
      }
    }
  }
  return result;
}

std::uint64_t serviceFingerprint(const GroupManager& manager) {
  std::vector<GroupId> groups(manager.createdGroups().begin(),
                              manager.createdGroups().end());
  std::sort(groups.begin(), groups.end());
  std::uint64_t h = mix(0x0f1e675e12f1ce5eULL,
                        static_cast<std::uint64_t>(groups.size()));
  for (const GroupId group : groups) {
    h = mix(h, static_cast<std::uint64_t>(group));
    const auto table = manager.routes(group);
    h = mix(h, table ? table->fingerprint() : 0);
  }
  return h;
}

}  // namespace omt
