#include "omt/service/group_manager.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <utility>

#include "omt/common/error.h"
#include "omt/obs/metrics.h"
#include "omt/parallel/parallel_for.h"
#include "omt/random/rng.h"
#include "omt/rpc/reliable_session.h"

namespace omt {

namespace {

constexpr std::int64_t kPageBits = 10;
constexpr std::int64_t kPageSize = std::int64_t{1} << kPageBits;

/// Per-logical-event counters are deterministic; the latency histogram is
/// wall clock and is registered accordingly.
struct ServiceMetrics {
  obs::Counter& events;
  obs::Counter& joins;
  obs::Counter& leaves;
  obs::Counter& crashes;
  obs::Counter& publishes;
  obs::Counter& teardowns;
  obs::Counter& audits;
  obs::Gauge& groups;
  obs::Histogram& eventToRoute;
};

ServiceMetrics& serviceMetrics() {
  auto& registry = obs::MetricsRegistry::global();
  static ServiceMetrics metrics{
      registry.counter("omt_service_events_total"),
      registry.counter("omt_service_joins_total"),
      registry.counter("omt_service_leaves_total"),
      registry.counter("omt_service_crashes_total"),
      registry.counter("omt_service_publishes_total"),
      registry.counter("omt_service_teardowns_total"),
      registry.counter("omt_service_audits_total"),
      registry.gauge("omt_service_groups"),
      registry.histogram("omt_service_event_to_route_seconds", {},
                         obs::Determinism::kNondeterministic)};
  return metrics;
}

double wallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// Builder-side state of one live group; owned by the group's shard.
struct GroupManager::GroupState {
  explicit GroupState(const Point& origin, const SessionOptions& options)
      : session(origin, options) {
    hostOf.push_back(kNoHost);  // session id 0 = the virtual root
  }

  OverlaySession session;
  std::vector<HostId> hostOf;  ///< session id -> service host id
  std::unordered_map<HostId, NodeId> nodeOf;  ///< current members
  // RPC transport (ServiceOptions::useRpc); unique_ptrs keep the session
  // reference stable if the state object moves.
  std::unique_ptr<RpcLayer> rpc;
  std::unique_ptr<ReliableSessionDriver> driver;
  double lastAudit = 0.0;
  double lastEventTime = 0.0;
};

/// Atomic snapshot pointer with explicit acquire/release on both the load
/// and store paths. libstdc++ 12's std::atomic<std::shared_ptr> unlocks
/// its internal lock bit with a *relaxed* RMW after a load, so the plain
/// pointer word it guards has no release edge to the next publisher's
/// write — a formal data race that ThreadSanitizer reports on the
/// publish/routes pair. This guard runs the same pointer-swap protocol
/// with correct ordering: a reader spins only for the handful of
/// instructions a concurrent swap or refcount bump holds the flag, and a
/// retired table is released outside the critical section so readers
/// holding an old epoch keep it alive by refcount.
class GroupManager::SnapshotPtr {
 public:
  std::shared_ptr<const RouteTable> load() const {
    lock();
    std::shared_ptr<const RouteTable> copy = ptr_;
    unlock();
    return copy;
  }

  void store(std::shared_ptr<const RouteTable> next) {
    lock();
    ptr_.swap(next);
    unlock();
    // `next` now holds the retired table; it dies here, off the lock.
  }

 private:
  void lock() const {
    while (busy_.exchange(1, std::memory_order_acquire) != 0)
      std::this_thread::yield();
  }
  void unlock() const { busy_.store(0, std::memory_order_release); }

  mutable std::atomic<unsigned> busy_{0};
  std::shared_ptr<const RouteTable> ptr_;
};

/// One group's reader/builder rendezvous. The snapshot table pointer is
/// the ONLY field readers touch; everything else belongs to the owning
/// shard.
struct GroupManager::GroupSlot {
  SnapshotPtr table;
  std::unique_ptr<GroupState> state;  ///< null until created / after teardown
  std::uint64_t epoch = 0;  ///< survives teardown: epochs stay monotone
  GroupStats stats;
  bool created = false;
  bool dirty = false;  ///< touched since last publish (owning shard only)
};

/// Deterministic per-shard accumulator, merged in shard order.
struct GroupManager::ShardReport {
  ServiceStats stats;
  std::vector<GroupId> published;
  /// Wall-clock publish stamp per published group (measureLatency only).
  std::vector<double> publishStamp;
};

GroupManager::GroupManager(const ServiceOptions& options)
    : options_(options), shards_(resolveWorkers(options.shards)) {
  OMT_CHECK(options_.maxGroups >= 1, "need a positive group-id space");
  OMT_CHECK(options_.auditPeriod > 0.0, "audit period must be positive");
  pageCount_ = (options_.maxGroups + kPageSize - 1) / kPageSize;
  pages_ = std::make_unique<std::atomic<GroupSlot*>[]>(
      static_cast<std::size_t>(pageCount_));
  for (std::int64_t p = 0; p < pageCount_; ++p)
    pages_[static_cast<std::size_t>(p)].store(nullptr,
                                              std::memory_order_relaxed);
}

GroupManager::~GroupManager() {
  for (std::int64_t p = 0; p < pageCount_; ++p)
    delete[] pages_[static_cast<std::size_t>(p)].load(
        std::memory_order_acquire);
}

GroupManager::GroupSlot* GroupManager::slotFor(GroupId group) const {
  if (group < 0 || group >= options_.maxGroups) return nullptr;
  GroupSlot* page = pages_[static_cast<std::size_t>(group >> kPageBits)].load(
      std::memory_order_acquire);
  if (!page) return nullptr;
  return &page[group & (kPageSize - 1)];
}

GroupManager::GroupSlot& GroupManager::ensureSlot(GroupId group) {
  OMT_CHECK(group >= 0 && group < options_.maxGroups,
            "group id " + std::to_string(group) + " outside [0, " +
                std::to_string(options_.maxGroups) + ")");
  auto& pageRef = pages_[static_cast<std::size_t>(group >> kPageBits)];
  GroupSlot* page = pageRef.load(std::memory_order_acquire);
  if (!page) {
    page = new GroupSlot[kPageSize];
    pageRef.store(page, std::memory_order_release);
  }
  GroupSlot& slot = page[group & (kPageSize - 1)];
  if (!slot.created) {
    slot.created = true;
    createdGroups_.push_back(group);
  }
  return slot;
}

void GroupManager::createState(GroupSlot& slot, GroupId group, int dim) {
  OMT_CHECK(dim >= 1, "cannot create a group from a dimensionless event");
  // The session's source is a virtual rendezvous root at the origin of the
  // population's coordinate space — never a real host, so the last real
  // member can always leave and single-host groups are unremarkable.
  slot.state = std::make_unique<GroupState>(Point(dim), options_.session);
  if (options_.useRpc) {
    RpcOptions rpcOptions = options_.rpc;
    rpcOptions.channel.seed =
        deriveSeed(deriveSeed(options_.seed, 0x5e17ULL),
                   static_cast<std::uint64_t>(group));
    DisruptionSchedule disruption;
    if (options_.injectDisruption) {
      DisruptionOptions d = options_.disruption;
      d.seed = deriveSeed(deriveSeed(options_.seed, 0xd15eULL),
                          static_cast<std::uint64_t>(group));
      disruption = DisruptionSchedule(generateDisruption(d));
    }
    OverlaySession* session = &slot.state->session;
    slot.state->rpc = std::make_unique<RpcLayer>(
        rpcOptions, std::move(disruption),
        [session](std::int64_t id) -> const Point* {
          if (id < 0 || id >= session->hostCount() || !session->isLive(id))
            return nullptr;
          return &session->positionOf(id);
        });
    slot.state->driver = std::make_unique<ReliableSessionDriver>(
        *session, *slot.state->rpc);
  }
}

void GroupManager::applyEvent(GroupSlot& slot, const MembershipEvent& event,
                              ShardReport& report) {
  auto& metrics = serviceMetrics();
  if (!slot.state) {
    OMT_CHECK(event.kind == ServiceEventKind::kJoin,
              "group " + std::to_string(event.group) +
                  ": departure event for a group with no members");
    createState(slot, event.group, event.position.dim());
  }
  GroupState& state = *slot.state;
  state.lastEventTime = event.time;
  slot.dirty = true;
  ++slot.stats.events;
  ++report.stats.events;
  metrics.events.add();

  switch (event.kind) {
    case ServiceEventKind::kJoin: {
      OMT_CHECK(!state.nodeOf.count(event.host),
                "group " + std::to_string(event.group) + ": host " +
                    std::to_string(event.host) + " is already a member");
      NodeId id;
      if (options_.useRpc) {
        const auto drive = state.driver->driveJoin(event.position, event.time);
        id = drive.id;
        if (!drive.result.completed && !drive.result.applied)
          ++report.stats.parkedJoins;
      } else {
        id = state.session.join(event.position);
      }
      OMT_CHECK(id == static_cast<NodeId>(state.hostOf.size()),
                "session id space diverged from the host map");
      state.hostOf.push_back(event.host);
      state.nodeOf.emplace(event.host, id);
      ++slot.stats.joins;
      ++report.stats.joins;
      metrics.joins.add();
      break;
    }
    case ServiceEventKind::kLeave: {
      const auto it = state.nodeOf.find(event.host);
      OMT_CHECK(it != state.nodeOf.end(),
                "group " + std::to_string(event.group) + ": host " +
                    std::to_string(event.host) + " left without being a member");
      const NodeId node = it->second;
      if (options_.useRpc && !state.session.isParked(node)) {
        state.driver->driveLeave(node, event.time);
      } else {
        // A parked host is unattached — its goodbye needs no handshake.
        state.session.leave(node);
      }
      state.nodeOf.erase(it);
      ++slot.stats.leaves;
      ++report.stats.leaves;
      metrics.leaves.add();
      break;
    }
    case ServiceEventKind::kCrash: {
      const auto it = state.nodeOf.find(event.host);
      OMT_CHECK(it != state.nodeOf.end(),
                "group " + std::to_string(event.group) + ": host " +
                    std::to_string(event.host) + " crashed without being a member");
      const NodeId node = it->second;
      const NodeId parent = state.session.parentOf(node);
      state.session.crash(node);
      if (options_.useRpc) {
        const NodeId reporter =
            parent >= 1 && state.session.isLive(parent) ? parent : kNoNode;
        state.driver->driveRepair(node, reporter, event.time);
      } else {
        state.session.repairCrashed(node);
      }
      state.nodeOf.erase(it);
      ++slot.stats.crashes;
      ++report.stats.crashes;
      metrics.crashes.add();
      break;
    }
  }

  // Anti-entropy cadence rides on event time (deterministic).
  if (options_.useRpc && state.driver->reconcilePending() &&
      event.time >= state.lastAudit + options_.auditPeriod) {
    state.driver->runAudit(event.time);
    state.lastAudit = event.time;
    ++report.stats.audits;
    metrics.audits.add();
  }
  maybeTearDown(slot, report);
}

void GroupManager::maybeTearDown(GroupSlot& slot, ShardReport& report) {
  GroupState* state = slot.state.get();
  if (!state || !state->nodeOf.empty()) return;
  // Only a fully clean group tears down: nothing parked, no unrepaired
  // corpse, no outstanding RPC ledger entry. A degraded empty group keeps
  // its state until quiesce()/audits drain it.
  if (state->session.parkedCount() != 0 ||
      state->session.undetectedCrashes() != 0)
    return;
  if (state->driver && state->driver->reconcilePending()) return;
  slot.state.reset();
  slot.dirty = true;
  ++slot.stats.teardowns;
  ++report.stats.teardowns;
  serviceMetrics().teardowns.add();
}

void GroupManager::publish(GroupSlot& slot, GroupId group,
                           ShardReport& report) {
  std::shared_ptr<const RouteTable> table;
  if (slot.state) {
    table = RouteTable::build(slot.state->session, slot.state->hostOf, group,
                              ++slot.epoch);
  } else {
    table = std::make_shared<const RouteTable>(group, ++slot.epoch);
  }
  slot.stats.lastFingerprint = table->fingerprint();
  ++slot.stats.publishes;
  slot.table.store(std::move(table));
  slot.dirty = false;
  ++report.stats.publishes;
  serviceMetrics().publishes.add();
  report.published.push_back(group);
  report.publishStamp.push_back(options_.measureLatency ? wallNow() : 0.0);
}

ApplyReport GroupManager::apply(std::span<const MembershipEvent> events) {
  const double arrival = options_.measureLatency ? wallNow() : 0.0;
  // Serial pre-pass: install slots (pages) and partition by shard. Doing
  // slot creation here keeps the parallel phase free of any structural
  // mutation a concurrent reader could race with.
  std::vector<std::vector<std::int64_t>> perShard(
      static_cast<std::size_t>(shards_));
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(events.size()); ++i) {
    const GroupId group = events[static_cast<std::size_t>(i)].group;
    ensureSlot(group);
    perShard[static_cast<std::size_t>(group % shards_)].push_back(i);
  }

  std::vector<ShardReport> reports(static_cast<std::size_t>(shards_));
  parallelFor(0, shards_, shards_, [&](std::int64_t shard) {
    ShardReport& report = reports[static_cast<std::size_t>(shard)];
    std::vector<GroupId> touched;  // insertion order = deterministic
    for (const std::int64_t i : perShard[static_cast<std::size_t>(shard)]) {
      const MembershipEvent& event = events[static_cast<std::size_t>(i)];
      GroupSlot& slot = *slotFor(event.group);
      if (!slot.dirty) touched.push_back(event.group);
      applyEvent(slot, event, report);
    }
    for (const GroupId group : touched) {
      GroupSlot& slot = *slotFor(group);
      if (slot.dirty) publish(slot, group, report);
    }
  });

  ApplyReport result;
  result.events = static_cast<std::int64_t>(events.size());
  std::unordered_map<GroupId, double> publishAt;
  for (const ShardReport& report : reports) {
    stats_.events += report.stats.events;
    stats_.joins += report.stats.joins;
    stats_.leaves += report.stats.leaves;
    stats_.crashes += report.stats.crashes;
    stats_.publishes += report.stats.publishes;
    stats_.teardowns += report.stats.teardowns;
    stats_.audits += report.stats.audits;
    stats_.parkedJoins += report.stats.parkedJoins;
    result.groupsTouched += static_cast<std::int64_t>(report.published.size());
    result.publishes += static_cast<std::int64_t>(report.published.size());
    for (std::size_t i = 0; i < report.published.size(); ++i)
      publishAt[report.published[i]] = report.publishStamp[i];
  }
  stats_.groupsCreated = static_cast<std::int64_t>(createdGroups_.size());
  serviceMetrics().groups.set(static_cast<double>(liveGroupCount()));
  if (options_.measureLatency) {
    result.eventLatencies.reserve(events.size());
    auto& histogram = serviceMetrics().eventToRoute;
    for (const MembershipEvent& event : events) {
      const auto it = publishAt.find(event.group);
      const double latency =
          it == publishAt.end() ? 0.0 : it->second - arrival;
      result.eventLatencies.push_back(latency);
      histogram.observe(latency);
    }
  }
  return result;
}

bool GroupManager::quiesceGroup(GroupSlot& slot, GroupId group, double now,
                                int maxRounds, ShardReport& report) {
  GroupState* state = slot.state.get();
  if (!state) return true;
  auto degraded = [&]() {
    return state->session.undetectedCrashes() != 0 ||
           state->session.parkedCount() != 0 ||
           (state->driver && state->driver->reconcilePending());
  };
  double t = std::max(now, state->lastEventTime);
  for (int round = 0; round < maxRounds && degraded(); ++round) {
    t += options_.auditPeriod;
    if (state->driver && state->driver->reconcilePending()) {
      state->driver->runAudit(t);
      ++report.stats.audits;
      serviceMetrics().audits.add();
    }
    if (state->session.undetectedCrashes() != 0)
      state->session.detectAndRepair();
    slot.dirty = true;
  }
  maybeTearDown(slot, report);
  if (slot.dirty) publish(slot, group, report);
  return slot.state == nullptr || !degraded();
}

std::int64_t GroupManager::quiesce(double now, int maxRounds) {
  std::vector<std::vector<GroupId>> perShard(
      static_cast<std::size_t>(shards_));
  for (const GroupId group : createdGroups_)
    perShard[static_cast<std::size_t>(group % shards_)].push_back(group);
  std::vector<ShardReport> reports(static_cast<std::size_t>(shards_));
  std::vector<std::int64_t> stillDegraded(static_cast<std::size_t>(shards_),
                                          0);
  parallelFor(0, shards_, shards_, [&](std::int64_t shard) {
    ShardReport& report = reports[static_cast<std::size_t>(shard)];
    for (const GroupId group : perShard[static_cast<std::size_t>(shard)]) {
      GroupSlot& slot = *slotFor(group);
      if (!quiesceGroup(slot, group, now, maxRounds, report))
        ++stillDegraded[static_cast<std::size_t>(shard)];
    }
  });
  std::int64_t degraded = 0;
  for (std::int64_t shard = 0; shard < shards_; ++shard) {
    const ShardReport& report = reports[static_cast<std::size_t>(shard)];
    stats_.publishes += report.stats.publishes;
    stats_.teardowns += report.stats.teardowns;
    stats_.audits += report.stats.audits;
    degraded += stillDegraded[static_cast<std::size_t>(shard)];
  }
  serviceMetrics().groups.set(static_cast<double>(liveGroupCount()));
  return degraded;
}

std::shared_ptr<const RouteTable> GroupManager::routes(GroupId group) const {
  const GroupSlot* slot = slotFor(group);
  if (!slot) return nullptr;
  return slot->table.load();
}

HostId GroupManager::parentOf(GroupId group, HostId host) const {
  const auto table = routes(group);
  return table ? table->parentOf(host) : kNotMember;
}

std::vector<HostId> GroupManager::childrenOf(GroupId group,
                                             HostId host) const {
  const auto table = routes(group);
  if (!table) return {};
  const auto span = table->childrenOf(host);
  return {span.begin(), span.end()};
}

std::uint64_t GroupManager::epochOf(GroupId group) const {
  const auto table = routes(group);
  return table ? table->epoch() : 0;
}

std::int64_t GroupManager::liveGroupCount() const {
  std::int64_t live = 0;
  for (const GroupId group : createdGroups_)
    if (slotFor(group)->state) ++live;
  return live;
}

std::int64_t GroupManager::liveMembersOf(GroupId group) const {
  const GroupSlot* slot = slotFor(group);
  if (!slot || !slot->state) return 0;
  return static_cast<std::int64_t>(slot->state->nodeOf.size());
}

GroupStats GroupManager::groupStats(GroupId group) const {
  const GroupSlot* slot = slotFor(group);
  return slot ? slot->stats : GroupStats{};
}

}  // namespace omt
