#include "omt/service/group_manager.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "omt/common/error.h"
#include "omt/obs/metrics.h"
#include "omt/parallel/parallel_for.h"
#include "omt/random/rng.h"
#include "omt/rpc/reliable_session.h"

namespace omt {

namespace {

constexpr std::int64_t kPageBits = 10;
constexpr std::int64_t kPageSize = std::int64_t{1} << kPageBits;

/// Per-logical-event counters are deterministic; the latency histogram is
/// wall clock and is registered accordingly.
struct ServiceMetrics {
  obs::Counter& events;
  obs::Counter& joins;
  obs::Counter& leaves;
  obs::Counter& crashes;
  obs::Counter& publishes;
  obs::Counter& deltaPublishes;
  obs::Counter& teardowns;
  obs::Counter& audits;
  obs::Gauge& groups;
  obs::Histogram& eventToRoute;
  // Shard load/steal metrics. The shard count resolves from the
  // environment (OMT_THREADS / --shards), so everything here is
  // placement-dependent and registered nondeterministic — unlike the
  // per-event counters above, which are invariant to it.
  obs::Counter& shardRebalances;
  obs::Counter& shardMigrations;
  obs::Gauge& shardLoadMax;
  obs::Gauge& shardLoadMin;
};

ServiceMetrics& serviceMetrics() {
  auto& registry = obs::MetricsRegistry::global();
  static ServiceMetrics metrics{
      registry.counter("omt_service_events_total"),
      registry.counter("omt_service_joins_total"),
      registry.counter("omt_service_leaves_total"),
      registry.counter("omt_service_crashes_total"),
      registry.counter("omt_service_publishes_total"),
      registry.counter("omt_service_delta_publishes_total"),
      registry.counter("omt_service_teardowns_total"),
      registry.counter("omt_service_audits_total"),
      registry.gauge("omt_service_groups"),
      registry.histogram("omt_service_event_to_route_seconds", {},
                         obs::Determinism::kNondeterministic),
      registry.counter("omt_service_shard_rebalances_total",
                       obs::Determinism::kNondeterministic),
      registry.counter("omt_service_shard_migrations_total",
                       obs::Determinism::kNondeterministic),
      registry.gauge("omt_service_shard_load_max",
                     obs::Determinism::kNondeterministic),
      registry.gauge("omt_service_shard_load_min",
                     obs::Determinism::kNondeterministic)};
  return metrics;
}

double wallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One batched add per counter per shard pass instead of an atomic RMW
/// per event — the global registry counters are far too hot to touch
/// from the per-event path.
void flushStatsMetrics(const ServiceStats& s) {
  auto& m = serviceMetrics();
  if (s.events) m.events.add(s.events);
  if (s.joins) m.joins.add(s.joins);
  if (s.leaves) m.leaves.add(s.leaves);
  if (s.crashes) m.crashes.add(s.crashes);
  if (s.publishes) m.publishes.add(s.publishes);
  if (s.deltaPublishes) m.deltaPublishes.add(s.deltaPublishes);
  if (s.teardowns) m.teardowns.add(s.teardowns);
  if (s.audits) m.audits.add(s.audits);
}

}  // namespace

/// Builder-side state of one live group; owned by the group's shard.
struct GroupManager::GroupState {
  explicit GroupState(const Point& origin, const SessionOptions& options)
      : session(origin, options) {
    hostOf.push_back(kNoHost);  // session id 0 = the virtual root
  }

  OverlaySession session;
  std::vector<HostId> hostOf;  ///< session id -> service host id
  HostIndex nodeOf;            ///< current members (host -> session node)
  // RPC transport (ServiceOptions::useRpc); unique_ptrs keep the session
  // reference stable if the state object moves.
  std::unique_ptr<RpcLayer> rpc;
  std::unique_ptr<ReliableSessionDriver> driver;
  double lastAudit = 0.0;
  double lastEventTime = 0.0;
};

/// Atomic snapshot pointer with explicit acquire/release on both the load
/// and store paths. libstdc++ 12's std::atomic<std::shared_ptr> unlocks
/// its internal lock bit with a *relaxed* RMW after a load, so the plain
/// pointer word it guards has no release edge to the next publisher's
/// write — a formal data race that ThreadSanitizer reports on the
/// publish/routes pair. This guard runs the same pointer-swap protocol
/// with correct ordering: a reader spins only for the handful of
/// instructions a concurrent swap or refcount bump holds the flag, and a
/// retired table is released outside the critical section so readers
/// holding an old epoch keep it alive by refcount.
class GroupManager::SnapshotPtr {
 public:
  std::shared_ptr<const RouteTable> load() const {
    lock();
    std::shared_ptr<const RouteTable> copy = ptr_;
    unlock();
    return copy;
  }

  /// Swap in `next` and hand the retired table back to the caller (who
  /// releases or recycles it off the lock).
  [[nodiscard]] std::shared_ptr<const RouteTable> store(
      std::shared_ptr<const RouteTable> next) {
    lock();
    ptr_.swap(next);
    unlock();
    return next;
  }

 private:
  void lock() const {
    while (busy_.exchange(1, std::memory_order_acquire) != 0)
      std::this_thread::yield();
  }
  void unlock() const { busy_.store(0, std::memory_order_release); }

  mutable std::atomic<unsigned> busy_{0};
  std::shared_ptr<const RouteTable> ptr_;
};

/// One group's reader/builder rendezvous. The snapshot table pointer is
/// the ONLY field readers touch; everything else belongs to the owning
/// shard.
struct GroupManager::GroupSlot {
  SnapshotPtr table;
  std::unique_ptr<GroupState> state;  ///< null until created / after teardown
  std::uint64_t epoch = 0;  ///< survives teardown: epochs stay monotone
  GroupStats stats;
  /// Builder-side copy of the current snapshot: the delta path's patch
  /// base, read without touching the SnapshotPtr spin flag.
  std::shared_ptr<const RouteTable> lastTable;
  /// The epoch retired by the last publish, offered to the next build for
  /// in-place reuse (slab + control block) once every reader has dropped
  /// it — the last allocation on the steady-state publish path.
  std::shared_ptr<const RouteTable> spare;
  std::int64_t cost = 1;  ///< rebalance weight: last published size + 1
  double publishStamp = 0.0;  ///< wall clock of last publish (measureLatency)
  int shard = 0;          ///< owning shard (writer thread re-assigns)
  bool created = false;
  bool dirty = false;  ///< touched since last publish (owning shard only)
  /// The session's change journal restarted (state freshly created), so
  /// the next publish cannot trust a delta against lastTable.
  bool needsFullPublish = true;
};

/// Deterministic per-shard accumulator, merged in shard order.
struct GroupManager::ShardReport {
  ServiceStats stats;
  std::int64_t load = 0;  ///< work units this pass (events + published hosts)
};

GroupManager::GroupManager(const ServiceOptions& options)
    : options_(options), shards_(resolveWorkers(options.shards)) {
  OMT_CHECK(options_.maxGroups >= 1, "need a positive group-id space");
  OMT_CHECK(options_.auditPeriod > 0.0, "audit period must be positive");
  OMT_CHECK(options_.deltaMaxFraction >= 0.0,
            "delta fraction must be non-negative");
  shardLoad_.assign(static_cast<std::size_t>(shards_), 0);
  eventScratch_.resize(static_cast<std::size_t>(shards_));
  groupScratch_.resize(static_cast<std::size_t>(shards_));
  pageCount_ = (options_.maxGroups + kPageSize - 1) / kPageSize;
  pages_ = std::make_unique<std::atomic<GroupSlot*>[]>(
      static_cast<std::size_t>(pageCount_));
  for (std::int64_t p = 0; p < pageCount_; ++p)
    pages_[static_cast<std::size_t>(p)].store(nullptr,
                                              std::memory_order_relaxed);
}

GroupManager::~GroupManager() {
  for (std::int64_t p = 0; p < pageCount_; ++p)
    delete[] pages_[static_cast<std::size_t>(p)].load(
        std::memory_order_acquire);
}

GroupManager::GroupSlot* GroupManager::slotFor(GroupId group) const {
  if (group < 0 || group >= options_.maxGroups) return nullptr;
  GroupSlot* page = pages_[static_cast<std::size_t>(group >> kPageBits)].load(
      std::memory_order_acquire);
  if (!page) return nullptr;
  return &page[group & (kPageSize - 1)];
}

GroupManager::GroupSlot& GroupManager::ensureSlot(GroupId group) {
  OMT_CHECK(group >= 0 && group < options_.maxGroups,
            "group id " + std::to_string(group) + " outside [0, " +
                std::to_string(options_.maxGroups) + ")");
  auto& pageRef = pages_[static_cast<std::size_t>(group >> kPageBits)];
  GroupSlot* page = pageRef.load(std::memory_order_acquire);
  if (!page) {
    page = new GroupSlot[kPageSize];
    pageRef.store(page, std::memory_order_release);
  }
  GroupSlot& slot = page[group & (kPageSize - 1)];
  if (!slot.created) {
    slot.created = true;
    slot.shard = static_cast<int>(group % shards_);
    createdGroups_.push_back(group);
  }
  return slot;
}

void GroupManager::createState(GroupSlot& slot, GroupId group, int dim) {
  OMT_CHECK(dim >= 1, "cannot create a group from a dimensionless event");
  // The session's source is a virtual rendezvous root at the origin of the
  // population's coordinate space — never a real host, so the last real
  // member can always leave and single-host groups are unremarkable.
  slot.state = std::make_unique<GroupState>(Point(dim), options_.session);
  slot.state->session.enableChangeJournal();
  // The fresh journal knows nothing about lastTable's epoch; the first
  // publish of this incarnation must rebuild from the session.
  slot.needsFullPublish = true;
  if (options_.useRpc) {
    RpcOptions rpcOptions = options_.rpc;
    rpcOptions.channel.seed =
        deriveSeed(deriveSeed(options_.seed, 0x5e17ULL),
                   static_cast<std::uint64_t>(group));
    DisruptionSchedule disruption;
    if (options_.injectDisruption) {
      DisruptionOptions d = options_.disruption;
      d.seed = deriveSeed(deriveSeed(options_.seed, 0xd15eULL),
                          static_cast<std::uint64_t>(group));
      disruption = DisruptionSchedule(generateDisruption(d));
    }
    OverlaySession* session = &slot.state->session;
    slot.state->rpc = std::make_unique<RpcLayer>(
        rpcOptions, std::move(disruption),
        [session](std::int64_t id) -> const Point* {
          if (id < 0 || id >= session->hostCount() || !session->isLive(id))
            return nullptr;
          return &session->positionOf(id);
        });
    slot.state->driver = std::make_unique<ReliableSessionDriver>(
        *session, *slot.state->rpc);
  }
}

void GroupManager::applyEvent(GroupSlot& slot, const MembershipEvent& event,
                              ShardReport& report) {
  if (!slot.state) {
    OMT_CHECK(event.kind == ServiceEventKind::kJoin,
              "group " + std::to_string(event.group) +
                  ": departure event for a group with no members");
    createState(slot, event.group, event.position.dim());
  }
  GroupState& state = *slot.state;
  state.lastEventTime = event.time;
  slot.dirty = true;
  ++slot.stats.events;
  ++report.stats.events;
  ++report.load;

  switch (event.kind) {
    case ServiceEventKind::kJoin: {
      OMT_CHECK(!state.nodeOf.contains(event.host),
                "group " + std::to_string(event.group) + ": host " +
                    std::to_string(event.host) + " is already a member");
      NodeId id;
      if (options_.useRpc) {
        const auto drive = state.driver->driveJoin(event.position, event.time);
        id = drive.id;
        if (!drive.result.completed && !drive.result.applied)
          ++report.stats.parkedJoins;
      } else {
        id = state.session.join(event.position);
      }
      OMT_CHECK(id == static_cast<NodeId>(state.hostOf.size()),
                "session id space diverged from the host map");
      state.hostOf.push_back(event.host);
      state.nodeOf.insert(event.host, id);
      ++slot.stats.joins;
      ++report.stats.joins;
      break;
    }
    case ServiceEventKind::kLeave: {
      const NodeId node = state.nodeOf.find(event.host);
      OMT_CHECK(node != kNoNode,
                "group " + std::to_string(event.group) + ": host " +
                    std::to_string(event.host) + " left without being a member");
      if (options_.useRpc && !state.session.isParked(node)) {
        state.driver->driveLeave(node, event.time);
      } else {
        // A parked host is unattached — its goodbye needs no handshake.
        state.session.leave(node);
      }
      state.nodeOf.erase(event.host);
      ++slot.stats.leaves;
      ++report.stats.leaves;
      break;
    }
    case ServiceEventKind::kCrash: {
      const NodeId node = state.nodeOf.find(event.host);
      OMT_CHECK(node != kNoNode,
                "group " + std::to_string(event.group) + ": host " +
                    std::to_string(event.host) + " crashed without being a member");
      const NodeId parent = state.session.parentOf(node);
      state.session.crash(node);
      if (options_.useRpc) {
        const NodeId reporter =
            parent >= 1 && state.session.isLive(parent) ? parent : kNoNode;
        state.driver->driveRepair(node, reporter, event.time);
      } else {
        state.session.repairCrashed(node);
      }
      state.nodeOf.erase(event.host);
      ++slot.stats.crashes;
      ++report.stats.crashes;
      break;
    }
  }

  // Anti-entropy cadence rides on event time (deterministic).
  if (options_.useRpc && state.driver->reconcilePending() &&
      event.time >= state.lastAudit + options_.auditPeriod) {
    state.driver->runAudit(event.time);
    state.lastAudit = event.time;
    ++report.stats.audits;
  }
  maybeTearDown(slot, report);
}

void GroupManager::maybeTearDown(GroupSlot& slot, ShardReport& report) {
  GroupState* state = slot.state.get();
  if (!state || !state->nodeOf.empty()) return;
  // Only a fully clean group tears down: nothing parked, no unrepaired
  // corpse, no outstanding RPC ledger entry. A degraded empty group keeps
  // its state until quiesce()/audits drain it.
  if (state->session.parkedCount() != 0 ||
      state->session.undetectedCrashes() != 0)
    return;
  if (state->driver && state->driver->reconcilePending()) return;
  slot.state.reset();
  slot.dirty = true;
  ++slot.stats.teardowns;
  ++report.stats.teardowns;
}

void GroupManager::publish(GroupSlot& slot, GroupId group,
                           ShardReport& report) {
  std::shared_ptr<const RouteTable> table;
  bool viaDelta = false;
  if (slot.state) {
    GroupState& state = *slot.state;
    OverlaySession& session = state.session;
    if (options_.deltaPublish && slot.lastTable && !slot.needsFullPublish &&
        !session.changeOverflow()) {
      const auto dirty = session.changedNodes();
      const auto maxEdits = static_cast<std::int64_t>(
          options_.deltaMaxFraction *
          static_cast<double>(slot.lastTable->size()));
      if (static_cast<std::int64_t>(dirty.size()) <= maxEdits) {
        auto patched = RouteTable::buildDelta(
            *slot.lastTable, session, state.hostOf, state.nodeOf, dirty,
            slot.epoch + 1, maxEdits, std::move(slot.spare));
        if (patched) {
          viaDelta = true;
          ++slot.epoch;
          if (options_.deltaVerify) {
            const auto full =
                RouteTable::build(session, state.hostOf, group, slot.epoch);
            OMT_CHECK(patched->identicalTo(*full),
                      "group " + std::to_string(group) +
                          ": delta-published table diverged from the full "
                          "rebuild");
          }
          table = std::move(patched);
        }
      }
    }
    if (!table)
      table = RouteTable::build(session, state.hostOf, group, ++slot.epoch,
                                std::move(slot.spare));
    session.clearChanges();
    slot.needsFullPublish = false;
  } else {
    table = std::make_shared<const RouteTable>(group, ++slot.epoch);
  }
  slot.cost = table->size() + 1;
  report.load += slot.cost;
  slot.stats.lastFingerprint = table->fingerprint();
  ++slot.stats.publishes;
  if (viaDelta) {
    ++slot.stats.deltaPublishes;
    ++report.stats.deltaPublishes;
  }
  slot.lastTable = table;
  // The swap retires the table published two epochs ago: lastTable held the
  // only builder-side reference until the line above replaced it, so after
  // the swap our `spare` reference is the only one left outside readers.
  slot.spare = slot.table.store(std::move(table));
  slot.dirty = false;
  ++report.stats.publishes;
  if (options_.measureLatency) slot.publishStamp = wallNow();
}

void GroupManager::rebalance() {
  if (!options_.rebalanceShards || shards_ <= 1 || createdGroups_.empty())
    return;
  // Deterministic LPT from published sizes: heaviest groups first (ties by
  // ascending group id) onto the least-loaded shard so far (ties by lowest
  // shard). Group outcomes are placement-invariant — the differential
  // oracle's guarantee — so moving ownership is free of correctness risk.
  costScratch_.clear();
  for (const GroupId group : createdGroups_)
    costScratch_.emplace_back(slotFor(group)->cost, group);
  std::sort(costScratch_.begin(), costScratch_.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  loadScratch_.assign(static_cast<std::size_t>(shards_), 0);
  std::int64_t migrations = 0;
  for (const auto& [cost, group] : costScratch_) {
    int target = 0;
    for (int s = 1; s < shards_; ++s) {
      if (loadScratch_[static_cast<std::size_t>(s)] <
          loadScratch_[static_cast<std::size_t>(target)])
        target = s;
    }
    loadScratch_[static_cast<std::size_t>(target)] += cost;
    GroupSlot& slot = *slotFor(group);
    if (slot.shard != target) {
      slot.shard = target;
      ++migrations;
    }
  }
  ++stats_.rebalances;
  stats_.migrations += migrations;
  serviceMetrics().shardRebalances.add();
  serviceMetrics().shardMigrations.add(migrations);
}

void GroupManager::accumulateShardLoads(
    std::span<const ShardReport> reports) {
  for (std::size_t s = 0; s < reports.size(); ++s)
    shardLoad_[s] += reports[s].load;
  std::int64_t lo = shardLoad_.empty() ? 0 : shardLoad_[0];
  std::int64_t hi = lo;
  for (const std::int64_t load : shardLoad_) {
    lo = std::min(lo, load);
    hi = std::max(hi, load);
  }
  serviceMetrics().shardLoadMax.set(static_cast<double>(hi));
  serviceMetrics().shardLoadMin.set(static_cast<double>(lo));
}

int GroupManager::shardOf(GroupId group) const {
  const GroupSlot* slot = slotFor(group);
  return slot && slot->created ? slot->shard : -1;
}

ApplyReport GroupManager::apply(std::span<const MembershipEvent> events) {
  const double arrival = options_.measureLatency ? wallNow() : 0.0;
  // Batch boundary: re-balance ownership from last batch's published
  // sizes, then partition. Doing both on the writer thread keeps the
  // parallel phase free of any structural mutation a concurrent reader
  // could race with (slot/page creation happens here too).
  rebalance();
  std::vector<std::vector<std::int64_t>>& perShard = eventScratch_;
  std::vector<ShardReport> reports(static_cast<std::size_t>(shards_));
  for (auto& shard : perShard) shard.clear();
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(events.size()); ++i) {
    const GroupSlot& slot = ensureSlot(events[static_cast<std::size_t>(i)].group);
    perShard[static_cast<std::size_t>(slot.shard)].push_back(i);
  }

  // groupScratch_ doubles as the per-shard touched list here; apply() and
  // quiesce() never overlap (single writer), so the reuse is safe.
  std::vector<std::vector<GroupId>>& touched = groupScratch_;
  for (auto& shard : touched) shard.clear();
  parallelFor(0, shards_, shards_, [&](std::int64_t shard) {
    ShardReport& report = reports[static_cast<std::size_t>(shard)];
    std::vector<GroupId>& mine = touched[static_cast<std::size_t>(shard)];
    for (const std::int64_t i : perShard[static_cast<std::size_t>(shard)]) {
      const MembershipEvent& event = events[static_cast<std::size_t>(i)];
      GroupSlot& slot = *slotFor(event.group);
      if (!slot.dirty) mine.push_back(event.group);
      applyEvent(slot, event, report);
    }
    for (const GroupId group : mine) {
      GroupSlot& slot = *slotFor(group);
      if (slot.dirty) publish(slot, group, report);
    }
  });

  ApplyReport result;
  result.events = static_cast<std::int64_t>(events.size());
  for (const ShardReport& report : reports) {
    stats_.events += report.stats.events;
    stats_.joins += report.stats.joins;
    stats_.leaves += report.stats.leaves;
    stats_.crashes += report.stats.crashes;
    stats_.publishes += report.stats.publishes;
    stats_.deltaPublishes += report.stats.deltaPublishes;
    stats_.teardowns += report.stats.teardowns;
    stats_.audits += report.stats.audits;
    stats_.parkedJoins += report.stats.parkedJoins;
    result.groupsTouched += report.stats.publishes;
    result.publishes += report.stats.publishes;
    result.deltaPublishes += report.stats.deltaPublishes;
    flushStatsMetrics(report.stats);
  }
  accumulateShardLoads(reports);
  stats_.groupsCreated = static_cast<std::int64_t>(createdGroups_.size());
  serviceMetrics().groups.set(static_cast<double>(liveGroupCount()));
  if (options_.measureLatency) {
    // Every event's group publishes by the end of its batch, so the
    // latency is just that slot's stamp minus batch ingress — no
    // per-batch map, no per-event hash lookup.
    result.eventLatencies.reserve(events.size());
    auto& histogram = serviceMetrics().eventToRoute;
    for (const MembershipEvent& event : events) {
      const GroupSlot* slot = slotFor(event.group);
      const double latency =
          slot && slot->publishStamp > 0.0 ? slot->publishStamp - arrival : 0.0;
      result.eventLatencies.push_back(latency);
      histogram.observe(latency);
    }
  }
  return result;
}

bool GroupManager::quiesceGroup(GroupSlot& slot, GroupId group, double now,
                                int maxRounds, ShardReport& report) {
  GroupState* state = slot.state.get();
  if (!state) return true;
  auto degraded = [&]() {
    return state->session.undetectedCrashes() != 0 ||
           state->session.parkedCount() != 0 ||
           (state->driver && state->driver->reconcilePending());
  };
  double t = std::max(now, state->lastEventTime);
  for (int round = 0; round < maxRounds && degraded(); ++round) {
    t += options_.auditPeriod;
    if (state->driver && state->driver->reconcilePending()) {
      state->driver->runAudit(t);
      ++report.stats.audits;
    }
    if (state->session.undetectedCrashes() != 0)
      state->session.detectAndRepair();
    slot.dirty = true;
  }
  maybeTearDown(slot, report);
  if (slot.dirty) publish(slot, group, report);
  return slot.state == nullptr || !degraded();
}

std::int64_t GroupManager::quiesce(double now, int maxRounds) {
  rebalance();
  std::vector<std::vector<GroupId>>& perShard = groupScratch_;
  for (auto& shard : perShard) shard.clear();
  for (const GroupId group : createdGroups_)
    perShard[static_cast<std::size_t>(slotFor(group)->shard)].push_back(group);
  std::vector<ShardReport> reports(static_cast<std::size_t>(shards_));
  std::vector<std::int64_t> stillDegraded(static_cast<std::size_t>(shards_),
                                          0);
  parallelFor(0, shards_, shards_, [&](std::int64_t shard) {
    ShardReport& report = reports[static_cast<std::size_t>(shard)];
    for (const GroupId group : perShard[static_cast<std::size_t>(shard)]) {
      GroupSlot& slot = *slotFor(group);
      if (!quiesceGroup(slot, group, now, maxRounds, report))
        ++stillDegraded[static_cast<std::size_t>(shard)];
    }
  });
  std::int64_t degraded = 0;
  for (std::int64_t shard = 0; shard < shards_; ++shard) {
    const ShardReport& report = reports[static_cast<std::size_t>(shard)];
    stats_.publishes += report.stats.publishes;
    stats_.deltaPublishes += report.stats.deltaPublishes;
    stats_.teardowns += report.stats.teardowns;
    stats_.audits += report.stats.audits;
    degraded += stillDegraded[static_cast<std::size_t>(shard)];
    flushStatsMetrics(report.stats);
  }
  accumulateShardLoads(reports);
  serviceMetrics().groups.set(static_cast<double>(liveGroupCount()));
  return degraded;
}

std::shared_ptr<const RouteTable> GroupManager::routes(GroupId group) const {
  const GroupSlot* slot = slotFor(group);
  if (!slot) return nullptr;
  return slot->table.load();
}

HostId GroupManager::parentOf(GroupId group, HostId host) const {
  const auto table = routes(group);
  return table ? table->parentOf(host) : kNotMember;
}

std::vector<HostId> GroupManager::childrenOf(GroupId group,
                                             HostId host) const {
  const auto table = routes(group);
  if (!table) return {};
  const auto span = table->childrenOf(host);
  return {span.begin(), span.end()};
}

std::uint64_t GroupManager::epochOf(GroupId group) const {
  const auto table = routes(group);
  return table ? table->epoch() : 0;
}

std::int64_t GroupManager::liveGroupCount() const {
  std::int64_t live = 0;
  for (const GroupId group : createdGroups_)
    if (slotFor(group)->state) ++live;
  return live;
}

std::int64_t GroupManager::liveMembersOf(GroupId group) const {
  const GroupSlot* slot = slotFor(group);
  if (!slot || !slot->state) return 0;
  return static_cast<std::int64_t>(slot->state->nodeOf.size());
}

GroupStats GroupManager::groupStats(GroupId group) const {
  const GroupSlot* slot = slotFor(group);
  return slot ? slot->stats : GroupStats{};
}

}  // namespace omt
