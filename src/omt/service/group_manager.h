// Sharded multi-group tree service: thousands of concurrent multicast
// groups over a shared host population, each group an incrementally
// maintained OverlaySession, with non-blocking route snapshots for readers.
//
// Write path (one thread at a time): apply() ingests a batch of
// group-tagged membership events, partitions it by shard
// (shard = group % shards, preserving per-group event order), and fans the
// shards out over the PR 2 thread pool. A group is owned by exactly one
// shard, so builders never contend; after a shard drains its events it
// republishes a fresh immutable RouteTable for every group it touched.
//
// Read path (any number of threads, any time): each group slot holds an
// atomic snapshot pointer (a shared_ptr swapped under a per-slot
// acquire/release flag; see SnapshotPtr in the .cc for why libstdc++'s
// std::atomic<std::shared_ptr> is not used). Readers copy the pointer —
// spinning at most for the few instructions a concurrent swap holds the
// flag — and then walk a fully immutable structure: no locks are held
// while a tree is being rebuilt, and a reader holding an old epoch keeps
// it alive until it drops the shared_ptr (RCU-style grace by refcount).
// Group slots live in a fixed page table of lazily-allocated pages, so a
// reader's path is: root page array -> atomic page pointer -> snapshot
// pointer; readers never wait on tree building.
//
// Determinism contract: a group's final tree, fingerprint, and epoch
// depend only on its own event subsequence (and the per-group derived
// seeds in RPC mode) — never on the shard count, OMT_THREADS, or what
// other groups are doing. The differential-oracle and chaos gates assert
// exactly this.
//
// Transport: by default events apply as atomic session calls. With
// ServiceOptions::useRpc each group drives its joins/leaves/repairs
// through the PR 3 reliable RPC layer (at-most-once ops, lossy channel,
// disruption windows), leaving the documented degraded states behind;
// periodic anti-entropy audits and quiesce() reconcile them.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "omt/fault/injector.h"
#include "omt/protocol/overlay_session.h"
#include "omt/rpc/rpc.h"
#include "omt/service/route_table.h"
#include "omt/service/script.h"

namespace omt {

struct ServiceOptions {
  /// Per-group overlay options (incremental maintenance is the default).
  SessionOptions session;
  /// Builder shards; groups are owned by shard group % shards. 0 resolves
  /// like every other worker count (OMT_THREADS, then hardware).
  int shards = 0;
  /// Group-id space; slots are paged in lazily, so a sparse id space only
  /// costs one page-table entry per 1024 ids.
  std::int64_t maxGroups = std::int64_t{1} << 20;
  /// Base seed for the per-group derived RPC channel/disruption seeds.
  std::uint64_t seed = 1;

  /// Drive membership through the reliable RPC layer instead of atomic
  /// session calls: joins can park, leaves can degrade to silent crashes,
  /// purges can defer — reconciled by per-group anti-entropy audits.
  bool useRpc = false;
  RpcOptions rpc;                 ///< channel.seed is re-derived per group
  /// Control-plane disruption windows (loss bursts, delay spells,
  /// partitions) applied to every group's RPC traffic; each group draws
  /// its own schedule from a (seed, group)-derived seed.
  bool injectDisruption = false;
  DisruptionOptions disruption;
  /// Anti-entropy audit cadence in event time while work is pending.
  double auditPeriod = 0.5;

  /// Stamp wall-clock event-to-publish latencies into ApplyReport (and
  /// the omt_service_event_to_route_seconds histogram). Off by default:
  /// it is inherently nondeterministic and costs a clock read per batch
  /// plus one per published group.
  bool measureLatency = false;

  // --- Publication path ---------------------------------------------------
  /// Publish by patching the previous epoch from the session's change
  /// journal when the batch touched at most deltaMaxFraction of the group;
  /// falls back to the full DFS+sort rebuild above the threshold, on
  /// structural escalations (regrids), and on the first publish after a
  /// group (re)creates its state. Either path produces bit-identical
  /// tables; the choice only moves cost.
  bool deltaPublish = true;
  double deltaMaxFraction = 0.5;
  /// Oracle belt: on every delta publish ALSO run the full rebuild and
  /// assert the two tables identical (arrays, fingerprint, epoch). Debug /
  /// differential-test only — it defeats the point of the delta path.
  bool deltaVerify = false;

  /// Re-assign group -> shard ownership at batch boundaries from published
  /// per-group sizes (deterministic LPT, heaviest groups first). Group
  /// outcomes (tables, epochs, fingerprints) are placement-invariant, so
  /// migration is purely a load-balance move. Off: static group % shards.
  bool rebalanceShards = true;
};

/// Cumulative per-group accounting; survives group teardown/re-creation.
struct GroupStats {
  std::int64_t events = 0;
  std::int64_t joins = 0;
  std::int64_t leaves = 0;
  std::int64_t crashes = 0;
  std::int64_t publishes = 0;
  std::int64_t deltaPublishes = 0;  ///< publishes that took the patch path
  std::int64_t teardowns = 0;
  std::uint64_t lastFingerprint = 0;  ///< of the last published table
};

/// Whole-service accounting (sums over groups; deterministic).
struct ServiceStats {
  std::int64_t events = 0;
  std::int64_t joins = 0;
  std::int64_t leaves = 0;
  std::int64_t crashes = 0;
  std::int64_t publishes = 0;
  std::int64_t deltaPublishes = 0;  ///< publishes via the patch path
  std::int64_t teardowns = 0;
  std::int64_t groupsCreated = 0;
  std::int64_t audits = 0;        ///< anti-entropy sweeps (RPC mode)
  std::int64_t parkedJoins = 0;   ///< joins left parked by a drive (RPC mode)
  std::int64_t rebalances = 0;    ///< shard-rebalance passes run
  std::int64_t migrations = 0;    ///< groups that changed owning shard
};

struct ApplyReport {
  std::int64_t events = 0;
  std::int64_t groupsTouched = 0;
  std::int64_t publishes = 0;
  std::int64_t deltaPublishes = 0;
  /// Wall-clock seconds from batch ingress to the owning group's publish,
  /// one entry per event in batch order (ServiceOptions::measureLatency).
  std::vector<double> eventLatencies;
};

class GroupManager {
 public:
  explicit GroupManager(const ServiceOptions& options);
  ~GroupManager();

  GroupManager(const GroupManager&) = delete;
  GroupManager& operator=(const GroupManager&) = delete;

  /// Ingest one batch. Single writer: apply()/quiesce() must not run
  /// concurrently with each other (readers are always safe). Events for
  /// one group apply in batch order; every touched group republishes
  /// exactly once at the end of the batch. Malformed events (leave of a
  /// non-member, join of a member, group id out of range) throw
  /// InvalidArgument; shards already processed stay applied.
  ApplyReport apply(std::span<const MembershipEvent> events);

  /// Drain degraded states (RPC mode: re-drive parked attaches and
  /// deferred purges via audits; any mode: sweep unrepaired crashes),
  /// advancing event time from `now` by auditPeriod per round, at most
  /// `maxRounds` rounds per group. Republishes what it heals. Returns the
  /// number of groups still degraded (0 = fully converged).
  std::int64_t quiesce(double now, int maxRounds = 32);

  // --- Reader API: safe from any thread, any time, non-blocking ---------

  /// The group's current snapshot; null when the group was never
  /// published. Hold the shared_ptr while reading spans out of the table.
  std::shared_ptr<const RouteTable> routes(GroupId group) const;

  /// kNoHost when `host` feeds from the group origin, kNotMember when it
  /// is not (or the group does not exist).
  HostId parentOf(GroupId group, HostId host) const;

  /// The member's children in the group's current snapshot (copied, so no
  /// lifetime coupling; prefer routes() in hot loops).
  std::vector<HostId> childrenOf(GroupId group, HostId host) const;

  /// Publish generation of the group's current snapshot (0 = never).
  std::uint64_t epochOf(GroupId group) const;

  // --- Builder-side introspection (not synchronised with apply()) -------

  std::int64_t groupCount() const {
    return static_cast<std::int64_t>(createdGroups_.size());
  }
  /// Groups currently holding live state (created minus torn down).
  std::int64_t liveGroupCount() const;
  /// Current live member count of one group (0 when torn down/unknown).
  std::int64_t liveMembersOf(GroupId group) const;
  GroupStats groupStats(GroupId group) const;
  const ServiceStats& stats() const { return stats_; }
  const ServiceOptions& options() const { return options_; }
  int shards() const { return shards_; }
  /// Group ids in creation order (deterministic).
  std::span<const GroupId> createdGroups() const { return createdGroups_; }
  /// Cumulative work units per shard (events applied + hosts published) —
  /// the load-balance signal the bench's utilization check reads.
  std::span<const std::int64_t> shardLoads() const { return shardLoad_; }
  /// The shard currently owning `group` (-1 when the group was never seen).
  int shardOf(GroupId group) const;

 private:
  class SnapshotPtr;
  struct GroupState;
  struct GroupSlot;
  struct ShardReport;

  GroupSlot* slotFor(GroupId group) const;  ///< null until ensureSlot
  GroupSlot& ensureSlot(GroupId group);     ///< writer-only
  void applyEvent(GroupSlot& slot, const MembershipEvent& event,
                  ShardReport& report);
  void createState(GroupSlot& slot, GroupId group, int dim);
  void maybeTearDown(GroupSlot& slot, ShardReport& report);
  void publish(GroupSlot& slot, GroupId group, ShardReport& report);
  /// One quiesce pass over a group; true when nothing is left degraded.
  bool quiesceGroup(GroupSlot& slot, GroupId group, double now,
                    int maxRounds, ShardReport& report);
  /// Deterministic cost-driven LPT re-assignment of groups to shards
  /// (writer thread, batch boundary). No-op unless rebalanceShards.
  void rebalance();
  /// Merge per-shard load tallies and refresh the shard gauges.
  void accumulateShardLoads(std::span<const ShardReport> reports);

  ServiceOptions options_;
  int shards_ = 1;
  std::int64_t pageCount_ = 0;
  /// Page table: pageCount_ atomic page pointers, pages of kPageSize
  /// slots. Pages are only ever installed (never freed before ~), so a
  /// reader's acquire-load sees fully-constructed slots.
  std::unique_ptr<std::atomic<GroupSlot*>[]> pages_;
  std::vector<GroupId> createdGroups_;
  ServiceStats stats_;
  std::vector<std::int64_t> shardLoad_;  ///< cumulative, by shard
  // Writer-side scratch reused across apply()/quiesce() calls so the
  // steady-state batch path stops re-allocating its partition buffers.
  std::vector<std::vector<std::int64_t>> eventScratch_;
  std::vector<std::vector<GroupId>> groupScratch_;
  std::vector<std::pair<std::int64_t, GroupId>> costScratch_;
  std::vector<std::int64_t> loadScratch_;
};

}  // namespace omt
