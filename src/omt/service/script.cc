#include "omt/service/script.h"

#include <cmath>
#include <cstddef>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "omt/common/error.h"
#include "omt/random/rng.h"
#include "omt/random/samplers.h"

namespace omt {

namespace {

std::uint64_t memberKey(const ScriptOptions& options, GroupId group,
                        HostId host) {
  return static_cast<std::uint64_t>(group) *
             static_cast<std::uint64_t>(options.hosts) +
         static_cast<std::uint64_t>(host);
}

}  // namespace

std::vector<MembershipEvent> generateMembershipScript(
    const ScriptOptions& options) {
  OMT_CHECK(options.groups >= 1, "need at least one group");
  OMT_CHECK(options.hosts >= 1, "need at least one host");
  OMT_CHECK(options.events >= options.groups,
            "need at least one event per group to seed every group");
  OMT_CHECK(options.meanGroupSize > 0.0, "mean group size must be positive");
  OMT_CHECK(options.crashFraction >= 0.0 && options.crashFraction <= 1.0,
            "crash fraction outside [0, 1]");
  OMT_CHECK(options.meanEventGap > 0.0, "event gap must be positive");
  OMT_CHECK(options.sizeSkew >= 0.0, "size skew must be non-negative");

  // Per-group drift targets: uniform (= meanGroupSize) or Zipf over group
  // ids, normalised so the mean target stays meanGroupSize and no single
  // group can claim more than half the population.
  std::vector<double> targetSize(static_cast<std::size_t>(options.groups),
                                 options.meanGroupSize);
  if (options.sizeSkew > 0.0) {
    double total = 0.0;
    for (GroupId g = 0; g < options.groups; ++g) {
      const double w = std::pow(static_cast<double>(g + 1), -options.sizeSkew);
      targetSize[static_cast<std::size_t>(g)] = w;
      total += w;
    }
    const double scale =
        options.meanGroupSize * static_cast<double>(options.groups) / total;
    const double cap =
        std::max(1.0, static_cast<double>(options.hosts) / 2.0);
    for (double& t : targetSize) t = std::min(cap, std::max(1.0, t * scale));
  }

  Rng rng(options.seed);
  std::vector<Point> positions;
  positions.reserve(static_cast<std::size_t>(options.hosts));
  for (HostId h = 0; h < options.hosts; ++h)
    positions.push_back(sampleUnitBall(rng, options.dim));

  // Per-group member list (swap-remove sampling) + membership index.
  std::vector<std::vector<HostId>> members(
      static_cast<std::size_t>(options.groups));
  std::unordered_map<std::uint64_t, std::int32_t> indexInGroup;

  std::vector<MembershipEvent> events;
  events.reserve(static_cast<std::size_t>(options.events));
  double now = 0.0;
  const auto pickHost = [&]() {
    return static_cast<HostId>(
        rng.uniformInt(static_cast<std::uint64_t>(options.hosts)));
  };
  const auto emitJoin = [&](GroupId g, HostId h) {
    auto& list = members[static_cast<std::size_t>(g)];
    indexInGroup[memberKey(options, g, h)] =
        static_cast<std::int32_t>(list.size());
    list.push_back(h);
    events.push_back({now, g, ServiceEventKind::kJoin, h,
                      positions[static_cast<std::size_t>(h)]});
  };
  const auto emitDeparture = [&](GroupId g) {
    auto& list = members[static_cast<std::size_t>(g)];
    const auto pick = static_cast<std::size_t>(
        rng.uniformInt(static_cast<std::uint64_t>(list.size())));
    const HostId h = list[pick];
    list[pick] = list.back();
    indexInGroup[memberKey(options, g, list.back())] =
        static_cast<std::int32_t>(pick);
    list.pop_back();
    indexInGroup.erase(memberKey(options, g, h));
    const bool crash = rng.uniform() < options.crashFraction;
    events.push_back(
        {now, g, crash ? ServiceEventKind::kCrash : ServiceEventKind::kLeave,
         h, Point()});
  };
  const auto advance = [&]() {
    now += -std::log(1.0 - rng.uniform()) * options.meanEventGap;
  };

  // Seed phase: one join per group, round-robin, so every group exists.
  for (GroupId g = 0; g < options.groups; ++g) {
    emitJoin(g, pickHost());
    advance();
  }

  // Random phase: drift each group toward the target mean size.
  while (static_cast<std::int64_t>(events.size()) < options.events) {
    const auto g = static_cast<GroupId>(
        rng.uniformInt(static_cast<std::uint64_t>(options.groups)));
    const auto live =
        static_cast<double>(members[static_cast<std::size_t>(g)].size());
    const double target = targetSize[static_cast<std::size_t>(g)];
    double joinProb = 0.5 + 0.5 * (target - live) / target;
    joinProb = std::min(0.95, std::max(0.05, joinProb));
    bool join = live == 0.0 || rng.uniform() < joinProb;
    if (join) {
      // A handful of attempts to find a non-member; a saturated group
      // (population exhausted) degrades to a departure instead.
      HostId h = kNoHost;
      for (int attempt = 0; attempt < 8; ++attempt) {
        const HostId candidate = pickHost();
        if (!indexInGroup.count(memberKey(options, g, candidate))) {
          h = candidate;
          break;
        }
      }
      if (h == kNoHost) join = false;
      else emitJoin(g, h);
    }
    if (!join) {
      if (members[static_cast<std::size_t>(g)].empty()) continue;
      emitDeparture(g);
    }
    advance();
  }
  return events;
}

std::vector<MembershipEvent> filterGroup(
    const std::vector<MembershipEvent>& events, GroupId group) {
  std::vector<MembershipEvent> out;
  for (const MembershipEvent& e : events)
    if (e.group == group) out.push_back(e);
  return out;
}

void saveMembershipScript(const std::string& path,
                          const std::vector<MembershipEvent>& events,
                          int dim) {
  std::ofstream out(path);
  OMT_CHECK(out.good(), "cannot open script file '" + path + "'");
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "# omt-membership-script v1\n";
  out << "dim " << dim << "\n";
  for (const MembershipEvent& e : events) {
    out << e.time << " " << e.group << " ";
    switch (e.kind) {
      case ServiceEventKind::kJoin:
        out << "J " << e.host;
        for (int c = 0; c < dim; ++c) out << " " << e.position[c];
        break;
      case ServiceEventKind::kLeave:
        out << "L " << e.host;
        break;
      case ServiceEventKind::kCrash:
        out << "C " << e.host;
        break;
    }
    out << "\n";
  }
  OMT_CHECK(out.good(), "failed writing script file '" + path + "'");
}

std::vector<MembershipEvent> loadMembershipScript(const std::string& path,
                                                  int* dimOut) {
  std::ifstream in(path);
  OMT_CHECK(in.good(), "cannot open script file '" + path + "'");
  int dim = -1;
  std::vector<MembershipEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string first;
    ls >> first;
    if (first == "dim") {
      OMT_CHECK(static_cast<bool>(ls >> dim) && dim >= 1 && dim <= kMaxDim,
                "bad dim line in script '" + path + "'");
      continue;
    }
    OMT_CHECK(dim >= 1, "script '" + path + "' events precede the dim line");
    MembershipEvent e;
    std::string kind;
    e.time = std::stod(first);
    OMT_CHECK(static_cast<bool>(ls >> e.group >> kind >> e.host),
              "malformed script line: " + line);
    if (kind == "J") {
      e.kind = ServiceEventKind::kJoin;
      e.position = Point(dim);
      for (int c = 0; c < dim; ++c)
        OMT_CHECK(static_cast<bool>(ls >> e.position[c]),
                  "join line missing coordinates: " + line);
    } else if (kind == "L") {
      e.kind = ServiceEventKind::kLeave;
    } else if (kind == "C") {
      e.kind = ServiceEventKind::kCrash;
    } else {
      throw InvalidArgument("unknown event kind '" + kind + "' in " + path);
    }
    events.push_back(std::move(e));
  }
  if (dimOut) *dimOut = dim;
  return events;
}

}  // namespace omt
