// Immutable per-group route table — the reader half of the service's
// epoch/snapshot scheme.
//
// A GroupManager builder thread materialises one RouteTable per publish
// from the group's live OverlaySession and swaps it into the group's
// atomic slot; readers that grabbed the previous table keep a shared_ptr
// and are never invalidated (RCU-style: old epochs die when the last
// reader drops them). Everything in a table is immutable after
// construction, so a reader can walk parents and children without any
// synchronisation beyond the initial pointer load.
//
// Hosts are addressed by their service-wide HostId (the shared host
// population), not by session-internal node ids. The group's origin (the
// session's virtual root, which is not a real host) is not listed;
// members attached directly to it report kNoHost as their parent.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "omt/protocol/overlay_session.h"

namespace omt {

/// Identifier of one multicast group; dense, 0-based.
using GroupId = std::int64_t;

/// Service-wide host identifier (shared across every group).
using HostId = std::int64_t;

/// Parent of a member attached directly to the group origin.
inline constexpr HostId kNoHost = -1;

/// parentOf() result for a host that is not a member of the group.
inline constexpr HostId kNotMember = -2;

/// Outcome of RouteTable::checkConsistency().
struct RouteTableAudit {
  bool ok = true;
  std::string message;  ///< empty when ok; first violation otherwise
  explicit operator bool() const { return ok; }
};

class RouteTable {
 public:
  /// An empty table (group exists but has no attached members).
  RouteTable(GroupId group, std::uint64_t epoch);

  GroupId group() const { return group_; }
  /// Publish generation: bumped once per swap, strictly monotone per group.
  std::uint64_t epoch() const { return epoch_; }
  std::int64_t size() const { return static_cast<std::int64_t>(hosts_.size()); }
  bool empty() const { return hosts_.empty(); }

  /// Members in ascending HostId order.
  std::span<const HostId> hosts() const { return hosts_; }
  bool contains(HostId host) const { return indexOf(host) >= 0; }

  /// kNoHost for a member attached to the group origin, kNotMember for a
  /// host that is not in this group. O(log size).
  HostId parentOf(HostId host) const;

  /// The member's children (empty for kNotMember hosts). The span aliases
  /// the table — keep the shared_ptr alive while using it.
  std::span<const HostId> childrenOf(HostId host) const;

  /// Members attached directly to the group origin (the delivery roots).
  std::span<const HostId> originChildren() const { return originChildren_; }

  /// Structure hash over the sorted (host, parent) pairs; equal tables
  /// (same members, same edges) hash equal regardless of epoch or the
  /// worker/shard count that built them.
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Full structural audit: parent/child symmetry, acyclicity, every
  /// member reachable from the origin, out-degrees within `maxOutDegree`
  /// (counting origin fan-out too; pass 0 to skip the cap check), and the
  /// stored fingerprint matching a recomputation (a torn or corrupted
  /// snapshot cannot pass). O(size).
  RouteTableAudit checkConsistency(int maxOutDegree) const;

  /// Build a table from the live, *attached* membership of `session`:
  /// parked hosts and pending crashes are not routable and are excluded.
  /// `hostOf[node]` maps session node ids to HostIds (hostOf[0] is the
  /// virtual root and is ignored).
  static std::shared_ptr<const RouteTable> build(
      const OverlaySession& session, std::span<const HostId> hostOf,
      GroupId group, std::uint64_t epoch);

 private:
  std::int64_t indexOf(HostId host) const;
  void finalize();  ///< builds the CSR index and the fingerprint

  GroupId group_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<HostId> hosts_;    ///< sorted ascending
  std::vector<HostId> parent_;   ///< by index; kNoHost = origin-attached
  std::vector<std::int32_t> childOffset_;  ///< CSR into children_, size+1
  std::vector<HostId> children_;
  std::vector<HostId> originChildren_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace omt
