// Immutable per-group route table — the reader half of the service's
// epoch/snapshot scheme.
//
// A GroupManager builder thread materialises one RouteTable per publish
// from the group's live OverlaySession and swaps it into the group's
// atomic slot; readers that grabbed the previous table keep a shared_ptr
// and are never invalidated (RCU-style: old epochs die when the last
// reader drops them). Everything in a table is immutable after
// construction, so a reader can walk parents and children without any
// synchronisation beyond the initial pointer load.
//
// Storage: one slab per table (hosts, parents, CSR offsets and child
// storage carved out of a single byte block), and every build-time
// intermediate (DFS stack, edge list, host->index hash, degree cursors)
// comes from the builder thread's ScratchArena. The builders also accept a
// retired table to recycle: when no reader still holds it, its slab and
// control block are reused in place, so steady-state publication performs
// zero heap allocations.
//
// Tables are built two ways and the results are required to be
// bit-identical: build() walks the session from scratch, and buildDelta()
// patches the previous epoch's sorted arrays from the session's change
// journal (no session DFS, no sort). The GroupManager decides per publish
// which path to take; the differential oracle alternates them at random.
//
// Hosts are addressed by their service-wide HostId (the shared host
// population), not by session-internal node ids. The group's origin (the
// session's virtual root, which is not a real host) is not listed;
// members attached directly to it report kNoHost as their parent.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "omt/protocol/overlay_session.h"

namespace omt {

/// Identifier of one multicast group; dense, 0-based.
using GroupId = std::int64_t;

/// Service-wide host identifier (shared across every group).
using HostId = std::int64_t;

/// Parent of a member attached directly to the group origin.
inline constexpr HostId kNoHost = -1;

/// parentOf() result for a host that is not a member of the group.
inline constexpr HostId kNotMember = -2;

/// Sorted flat host -> session-node index for one group's current members.
/// Groups are small (tens of members), so a contiguous sorted vector beats
/// a node-based hash map on every operation the event path performs: find
/// is a short binary search with no pointer chase, and insert/erase memmove
/// a few hundred bytes instead of touching the allocator per event.
class HostIndex {
 public:
  /// The member's current session node, or kNoNode when absent.
  NodeId find(HostId host) const {
    const auto it = lowerBound(host);
    return it != entries_.end() && it->first == host ? it->second : kNoNode;
  }
  bool contains(HostId host) const { return find(host) != kNoNode; }

  /// Precondition: `host` is not present.
  void insert(HostId host, NodeId node) {
    entries_.emplace(lowerBound(host), host, node);
  }

  /// Precondition: `host` is present.
  void erase(HostId host) { entries_.erase(lowerBound(host)); }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<HostId, NodeId>>::const_iterator lowerBound(
      HostId host) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), host,
        [](const std::pair<HostId, NodeId>& e, HostId h) { return e.first < h; });
  }
  std::vector<std::pair<HostId, NodeId>>::iterator lowerBound(HostId host) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), host,
        [](const std::pair<HostId, NodeId>& e, HostId h) { return e.first < h; });
  }

  std::vector<std::pair<HostId, NodeId>> entries_;
};

/// Outcome of RouteTable::checkConsistency().
struct RouteTableAudit {
  bool ok = true;
  std::string message;  ///< empty when ok; first violation otherwise
  explicit operator bool() const { return ok; }
};

class RouteTable {
 public:
  /// Audit depth for checkConsistency(). Both modes validate the full
  /// structure (sortedness, CSR/parent agreement, acyclicity, reachability,
  /// degree caps, fingerprint recomputation); kFull additionally rebuilds a
  /// second table from the host/parent arrays and compares every derived
  /// array — belt and braces at the cost of a slab allocation per audit.
  /// kQuick allocates nothing beyond arena scratch, which is what lets the
  /// snapshot reader hammer audit every observation under TSan.
  enum class AuditMode : std::uint8_t { kFull, kQuick };

  /// An empty table (group exists but has no attached members).
  RouteTable(GroupId group, std::uint64_t epoch);

  /// Builder-only: a shell with no slab yet (reset() follows immediately).
  /// The tag is private, so only build()/buildDelta() can reach this, but
  /// the constructor itself stays public for std::make_shared.
  class BuilderTag {
    friend class RouteTable;
    BuilderTag() = default;
  };
  RouteTable(BuilderTag, GroupId group, std::uint64_t epoch)
      : group_(group), epoch_(epoch) {}

  GroupId group() const { return group_; }
  /// Publish generation: bumped once per swap, strictly monotone per group.
  std::uint64_t epoch() const { return epoch_; }
  std::int64_t size() const { return static_cast<std::int64_t>(hosts_.size()); }
  bool empty() const { return hosts_.empty(); }

  /// Members in ascending HostId order.
  std::span<const HostId> hosts() const { return hosts_; }
  bool contains(HostId host) const { return indexOf(host) >= 0; }

  /// kNoHost for a member attached to the group origin, kNotMember for a
  /// host that is not in this group. O(log size).
  HostId parentOf(HostId host) const;

  /// The member's children (empty for kNotMember hosts). The span aliases
  /// the table — keep the shared_ptr alive while using it.
  std::span<const HostId> childrenOf(HostId host) const;

  /// Members attached directly to the group origin (the delivery roots).
  std::span<const HostId> originChildren() const { return originChildren_; }

  /// Structure hash over the sorted (host, parent) pairs; equal tables
  /// (same members, same edges) hash equal regardless of epoch or the
  /// worker/shard count that built them.
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Structural audit: parent/child symmetry, acyclicity, every member
  /// reachable from the origin, out-degrees within `maxOutDegree` (counting
  /// origin fan-out too; pass 0 to skip the cap check), and the stored
  /// fingerprint matching a recomputation (a torn or corrupted snapshot
  /// cannot pass). O(size); see AuditMode for the kFull/kQuick trade.
  RouteTableAudit checkConsistency(int maxOutDegree,
                                   AuditMode mode = AuditMode::kFull) const;

  /// Exact structural equality including arrays, fingerprint, group, and
  /// epoch — the delta-vs-full bit-identity oracle.
  bool identicalTo(const RouteTable& other) const;

  /// Build a table from the live, *attached* membership of `session`:
  /// parked hosts and pending crashes are not routable and are excluded.
  /// `hostOf[node]` maps session node ids to HostIds (hostOf[0] is the
  /// virtual root and is ignored). `recycle` may pass a retired table whose
  /// slab and control block are reused when no reader still holds it —
  /// steady-state publication then allocates nothing at all.
  static std::shared_ptr<const RouteTable> build(
      const OverlaySession& session, std::span<const HostId> hostOf,
      GroupId group, std::uint64_t epoch,
      std::shared_ptr<const RouteTable> recycle = nullptr);

  /// Patch `previous` into the session's current state using the change
  /// journal instead of re-walking the session: `dirtyNodes` is the
  /// session's changedNodes() since `previous` was built, and `members` is
  /// the authoritative host -> current-session-node index (a host can have
  /// stale dead nodes from earlier incarnations; only the current one
  /// decides its entry). Returns nullptr — caller falls back to build() —
  /// when the edit set exceeds `maxEdits`. A returned table is
  /// bit-identical to what build() would produce at the same epoch.
  static std::shared_ptr<const RouteTable> buildDelta(
      const RouteTable& previous, const OverlaySession& session,
      std::span<const HostId> hostOf, const HostIndex& members,
      std::span<const NodeId> dirtyNodes, std::uint64_t epoch,
      std::int64_t maxEdits,
      std::shared_ptr<const RouteTable> recycle = nullptr);

 private:
  std::int64_t indexOf(HostId host) const;
  void reset(std::size_t n);  ///< lay out (reusing the slab if big enough)
  void finalize();            ///< builds the CSR index and the fingerprint
  /// finalize() tail for builders that already filled parentIdx_: degree
  /// counts, CSR scatter, and the fingerprint, skipping the host->index
  /// hash pass entirely.
  void finalizeFromParentIdx();
  /// A mutable shell for the builders: the recycled table when this thread
  /// holds its only reference, else a freshly allocated one.
  static std::shared_ptr<RouteTable> makeShell(
      std::shared_ptr<const RouteTable>&& recycle, GroupId group,
      std::uint64_t epoch);

  GroupId group_ = 0;
  std::uint64_t epoch_ = 0;
  /// Single backing allocation: hosts | parents | child storage | offsets |
  /// parent indices. Kept (and reused) across recycled builds.
  std::unique_ptr<std::byte[]> slab_;
  std::size_t slabBytes_ = 0;
  std::span<HostId> hosts_;   ///< sorted ascending
  std::span<HostId> parent_;  ///< by index; kNoHost = origin-attached
  std::span<HostId> childStorage_;         ///< children_ then originChildren_
  std::span<std::int32_t> childOffset_;    ///< CSR into children_, size+1
  /// parent_ resolved to an index into hosts_ (-1 = origin). Not part of
  /// the logical table (derived, excluded from identicalTo); stored so the
  /// delta path can remap the previous epoch's indices without a hash.
  std::span<std::int32_t> parentIdx_;
  std::span<const HostId> children_;       ///< prefix of childStorage_
  std::span<const HostId> originChildren_; ///< suffix of childStorage_
  std::uint64_t fingerprint_ = 0;
};

}  // namespace omt
