// Multi-group membership scripts: the event stream a GroupManager ingests,
// a deterministic generator for synthetic workloads, and a line-oriented
// file format so `omtcli serve` replays are reproducible artifacts.
//
// A script models a *shared host population*: hosts have fixed positions
// and stable service-wide ids, and one host is typically a member of
// several groups at once (the overlap is what the cross-group-leakage
// gate stresses — group A's churn must never perturb group B's tree).
// Events are ordered by time with a deterministic tie-break, and every
// event is tagged with its group; restricted to one group's subsequence a
// script is an ordinary single-session membership trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "omt/geometry/point.h"
#include "omt/service/route_table.h"

namespace omt {

enum class ServiceEventKind : std::uint8_t {
  kJoin,   ///< host joins the group (position carried on the event)
  kLeave,  ///< graceful departure
  kCrash,  ///< silent crash (the service repairs after "detection")
};

struct MembershipEvent {
  double time = 0.0;
  GroupId group = 0;
  ServiceEventKind kind = ServiceEventKind::kJoin;
  HostId host = 0;
  Point position;  ///< kJoin only; the host's fixed population position
};

struct ScriptOptions {
  std::int64_t groups = 1000;   ///< group id space [0, groups)
  std::int64_t hosts = 20000;   ///< shared population size
  std::int64_t events = 100000; ///< total membership events
  int dim = 2;                  ///< host positions in the unit ball
  std::uint64_t seed = 1;
  /// Mean live membership a group drifts toward once seeded: below it
  /// events favour joins, above it departures (keeps every group alive
  /// and the population stationary without global coordination).
  double meanGroupSize = 24.0;
  /// Zipf exponent over group ids for per-group target sizes: group g
  /// drifts toward a target proportional to (g+1)^-sizeSkew, normalised so
  /// the population mean stays meanGroupSize (and capped at hosts/2, so a
  /// hot group cannot exhaust the population). 0 = every group targets the
  /// mean (the uniform workload); 1.0 is the classic heavy-head shape that
  /// the shard-rebalance gates stress.
  double sizeSkew = 0.0;
  /// Fraction of departures that are silent crashes instead of leaves.
  double crashFraction = 0.3;
  /// Mean simulated time between consecutive events (exponential gaps);
  /// only matters to transports that consume timestamps (RPC mode).
  double meanEventGap = 1e-3;
};

/// Generate a time-sorted membership script. Deterministic in the options:
/// the same options always produce the identical event vector. Every
/// group in [0, groups) receives at least one join (groups are seeded
/// round-robin before the random phase), no event ever joins a current
/// member or departs a non-member, and a departed host can re-join later.
std::vector<MembershipEvent> generateMembershipScript(
    const ScriptOptions& options);

/// The subsequence of `events` belonging to `group`, order preserved.
std::vector<MembershipEvent> filterGroup(
    const std::vector<MembershipEvent>& events, GroupId group);

/// Save/load the line format:
///   # omt-membership-script v1
///   dim <d>
///   <time> <group> J <host> <x> <y> [...]
///   <time> <group> L|C <host>
/// Round-trips exactly (times are written with max precision).
void saveMembershipScript(const std::string& path,
                          const std::vector<MembershipEvent>& events,
                          int dim);
std::vector<MembershipEvent> loadMembershipScript(const std::string& path,
                                                  int* dimOut = nullptr);

}  // namespace omt
