#include "omt/service/route_table.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstring>
#include <utility>

#include "omt/common/error.h"
#include "omt/parallel/scratch_arena.h"

namespace omt {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // splitmix64 finalizer over the running hash; matches the repo's other
  // structural fingerprints in spirit (order-sensitive, avalanching).
  h += v + 0x9e3779b97f4a7c15ULL;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

std::uint64_t fingerprintOf(GroupId group, std::span<const HostId> hosts,
                            std::span<const HostId> parent) {
  std::uint64_t h =
      mix(0x0a11c0de5e12f1ceULL, static_cast<std::uint64_t>(group));
  h = mix(h, static_cast<std::uint64_t>(hosts.size()));
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    h = mix(h, static_cast<std::uint64_t>(hosts[i]));
    h = mix(h, static_cast<std::uint64_t>(parent[i]) + 2);  // kNotMember-safe
  }
  return h;
}

std::uint64_t hashHost(HostId host) {
  std::uint64_t x = static_cast<std::uint64_t>(host);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

RouteTable::RouteTable(GroupId group, std::uint64_t epoch)
    : group_(group), epoch_(epoch) {
  reset(0);
  finalize();
}

void RouteTable::reset(std::size_t n) {
  // One slab: hosts | parents | child storage | CSR offsets | parent
  // indices. The int32 blocks sit last so every HostId block keeps 8-byte
  // alignment. A recycled slab is kept whenever it is big enough; every
  // cell is overwritten by the builder, so stale contents are harmless.
  const std::size_t hostBytes = n * sizeof(HostId);
  const std::size_t total =
      3 * hostBytes + (2 * n + 1) * sizeof(std::int32_t);
  if (total > slabBytes_ || !slab_) {
    slab_ = std::make_unique<std::byte[]>(total);
    slabBytes_ = total;
  }
  std::byte* base = slab_.get();
  hosts_ = {reinterpret_cast<HostId*>(base), n};
  parent_ = {reinterpret_cast<HostId*>(base + hostBytes), n};
  childStorage_ = {reinterpret_cast<HostId*>(base + 2 * hostBytes), n};
  childOffset_ = {reinterpret_cast<std::int32_t*>(base + 3 * hostBytes),
                  n + 1};
  parentIdx_ = {reinterpret_cast<std::int32_t*>(base + 3 * hostBytes) + n + 1,
                n};
  children_ = {};
  originChildren_ = {};
}

std::shared_ptr<RouteTable> RouteTable::makeShell(
    std::shared_ptr<const RouteTable>&& recycle, GroupId group,
    std::uint64_t epoch) {
  if (recycle && recycle.use_count() == 1) {
    // We hold the only reference and the snapshot slot no longer points at
    // this table, so no reader can mint a new one. The fence pairs with the
    // last reader's release-decrement of the refcount, ordering its reads
    // of the table before our in-place overwrite.
    std::atomic_thread_fence(std::memory_order_acquire);
    auto shell = std::const_pointer_cast<RouteTable>(std::move(recycle));
    shell->group_ = group;
    shell->epoch_ = epoch;
    return shell;
  }
  return std::make_shared<RouteTable>(BuilderTag{}, group, epoch);
}

std::int64_t RouteTable::indexOf(HostId host) const {
  const auto it = std::lower_bound(hosts_.begin(), hosts_.end(), host);
  if (it == hosts_.end() || *it != host) return -1;
  return it - hosts_.begin();
}

HostId RouteTable::parentOf(HostId host) const {
  const std::int64_t i = indexOf(host);
  return i < 0 ? kNotMember : parent_[static_cast<std::size_t>(i)];
}

std::span<const HostId> RouteTable::childrenOf(HostId host) const {
  const std::int64_t i = indexOf(host);
  if (i < 0) return {};
  const auto lo = static_cast<std::size_t>(childOffset_[static_cast<std::size_t>(i)]);
  const auto hi =
      static_cast<std::size_t>(childOffset_[static_cast<std::size_t>(i) + 1]);
  return children_.subspan(lo, hi - lo);
}

void RouteTable::finalize() {
  const std::size_t n = hosts_.size();
  ScratchArena& arena = workerArena();
  ScratchArena::Scope scope(arena);

  // Host -> index: one open-addressing pass instead of the former
  // O(log n) binary search per edge. hosts_ is duplicate-free (the
  // builders enforce it), so insertion never collides on equal keys.
  std::size_t cap = 16;
  while (cap < 2 * n) cap <<= 1;
  const std::uint64_t mask = cap - 1;
  auto slots = arena.alloc<std::int32_t>(cap);
  std::fill(slots.begin(), slots.end(), -1);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t s = hashHost(hosts_[i]) & mask;
    while (slots[s] >= 0) s = (s + 1) & mask;
    slots[s] = static_cast<std::int32_t>(i);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const HostId p = parent_[i];
    if (p == kNoHost) {
      parentIdx_[i] = -1;
      continue;
    }
    std::int32_t pi = -1;
    for (std::uint64_t s = hashHost(p) & mask;; s = (s + 1) & mask) {
      const std::int32_t cand = slots[s];
      OMT_CHECK(cand >= 0, "route table parent is not a member");
      if (hosts_[static_cast<std::size_t>(cand)] == p) {
        pi = cand;
        break;
      }
    }
    parentIdx_[i] = pi;
  }
  finalizeFromParentIdx();
}

void RouteTable::finalizeFromParentIdx() {
  const std::size_t n = hosts_.size();
  ScratchArena& arena = workerArena();
  ScratchArena::Scope scope(arena);

  // Degree counts (shifted by one, prefix-summed in place into the CSR),
  // folding the fingerprint into the same pass over (hosts, parents).
  std::fill(childOffset_.begin(), childOffset_.end(), 0);
  std::uint64_t h =
      mix(0x0a11c0de5e12f1ceULL, static_cast<std::uint64_t>(group_));
  h = mix(h, static_cast<std::uint64_t>(n));
  std::size_t originCount = 0;
  for (std::size_t i = 0; i < n; ++i) {
    h = mix(h, static_cast<std::uint64_t>(hosts_[i]));
    h = mix(h, static_cast<std::uint64_t>(parent_[i]) + 2);  // kNotMember-safe
    const std::int32_t pi = parentIdx_[i];
    if (pi < 0)
      ++originCount;
    else
      ++childOffset_[static_cast<std::size_t>(pi) + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) childOffset_[i] += childOffset_[i - 1];
  children_ = childStorage_.first(static_cast<std::size_t>(childOffset_[n]));
  originChildren_ =
      childStorage_.subspan(children_.size(), originCount);

  // Scatter children in ascending member order: hosts_ is sorted, so each
  // parent's span (and the origin span) comes out ascending by HostId.
  auto cursor = arena.alloc<std::int32_t>(n);
  std::copy(childOffset_.begin(), childOffset_.end() - 1, cursor.begin());
  std::size_t origin = children_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t pi = parentIdx_[i];
    if (pi < 0)
      childStorage_[origin++] = hosts_[i];
    else
      childStorage_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(pi)]++)] =
          hosts_[i];
  }

  fingerprint_ = h;
}

bool RouteTable::identicalTo(const RouteTable& other) const {
  return group_ == other.group_ && epoch_ == other.epoch_ &&
         fingerprint_ == other.fingerprint_ &&
         std::equal(hosts_.begin(), hosts_.end(), other.hosts_.begin(),
                    other.hosts_.end()) &&
         std::equal(parent_.begin(), parent_.end(), other.parent_.begin(),
                    other.parent_.end()) &&
         std::equal(childOffset_.begin(), childOffset_.end(),
                    other.childOffset_.begin(), other.childOffset_.end()) &&
         std::equal(children_.begin(), children_.end(),
                    other.children_.begin(), other.children_.end()) &&
         std::equal(originChildren_.begin(), originChildren_.end(),
                    other.originChildren_.begin(),
                    other.originChildren_.end());
}

RouteTableAudit RouteTable::checkConsistency(int maxOutDegree,
                                             AuditMode mode) const {
  auto fail = [](std::string message) {
    return RouteTableAudit{false, std::move(message)};
  };
  const std::size_t n = hosts_.size();
  if (parent_.size() != n || childOffset_.size() != n + 1)
    return fail("route table arrays disagree on the member count");
  for (std::size_t i = 1; i < n; ++i) {
    if (hosts_[i - 1] >= hosts_[i])
      return fail("route table hosts are not strictly ascending");
  }

  // Recompute the fingerprint: a torn or bit-damaged snapshot cannot both
  // keep its stored hash and re-derive it from its own arrays.
  if (fingerprintOf(group_, hosts_, parent_) != fingerprint_)
    return fail("stored fingerprint does not match the table contents");

  // CSR/parent cross-validation without building a second table: offsets
  // monotone and complete, every child entry a member whose parent array
  // entry names exactly this parent, spans strictly ascending. n entries
  // total + parent-match uniqueness makes the index a permutation of the
  // membership, which is what a rebuild would produce.
  if (childOffset_[0] != 0)
    return fail("children index does not start at zero");
  for (std::size_t i = 0; i < n; ++i) {
    if (childOffset_[i + 1] < childOffset_[i])
      return fail("children index offsets are not monotone");
  }
  if (static_cast<std::size_t>(childOffset_[n]) != children_.size() ||
      children_.size() + originChildren_.size() != n)
    return fail("children index does not cover the membership");
  for (std::size_t i = 0; i < originChildren_.size(); ++i) {
    if (i > 0 && originChildren_[i - 1] >= originChildren_[i])
      return fail("origin children are not strictly ascending");
    const std::int64_t ci = indexOf(originChildren_[i]);
    if (ci < 0 || parent_[static_cast<std::size_t>(ci)] != kNoHost)
      return fail("origin child " + std::to_string(originChildren_[i]) +
                  " is not an origin-attached member");
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto lo = static_cast<std::size_t>(childOffset_[i]);
    const auto hi = static_cast<std::size_t>(childOffset_[i + 1]);
    for (std::size_t c = lo; c < hi; ++c) {
      if (c > lo && children_[c - 1] >= children_[c])
        return fail("children of host " + std::to_string(hosts_[i]) +
                    " are not strictly ascending");
      const std::int64_t ci = indexOf(children_[c]);
      if (ci < 0 || parent_[static_cast<std::size_t>(ci)] != hosts_[i])
        return fail("child entry " + std::to_string(children_[c]) +
                    " does not point back at host " +
                    std::to_string(hosts_[i]));
    }
  }

  if (mode == AuditMode::kFull && n > 0) {
    // Belt and braces: re-derive every array from (hosts, parents) alone
    // and require bit equality.
    RouteTable fresh(group_, epoch_);
    fresh.reset(n);
    std::copy(hosts_.begin(), hosts_.end(), fresh.hosts_.begin());
    std::copy(parent_.begin(), parent_.end(), fresh.parent_.begin());
    fresh.finalize();
    if (!identicalTo(fresh))
      return fail("children index does not match a rebuilt table");
  }

  // Every member must reach the origin through member parents without a
  // cycle; walking each parent chain with a visit stamp is O(n) total.
  ScratchArena& arena = workerArena();
  ScratchArena::Scope scope(arena);
  auto state = arena.alloc<std::int64_t>(n);  // 0 unvisited, <0 walking, 1 done
  std::fill(state.begin(), state.end(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (state[i] == 1) continue;
    std::size_t walk = i;
    const std::int64_t stamp = -static_cast<std::int64_t>(i) - 2;
    while (true) {
      if (state[walk] == stamp)
        return fail("cycle through host " + std::to_string(hosts_[walk]));
      if (state[walk] == 1) break;
      state[walk] = stamp;
      const HostId p = parent_[walk];
      if (p == kNoHost) break;
      const std::int64_t pi = indexOf(p);
      if (pi < 0)
        return fail("host " + std::to_string(hosts_[walk]) +
                    " has non-member parent " + std::to_string(p));
      walk = static_cast<std::size_t>(pi);
    }
    // Mark the walked chain resolved.
    walk = i;
    while (walk < n && state[walk] == stamp) {
      state[walk] = 1;
      const HostId p = parent_[walk];
      if (p == kNoHost) break;
      walk = static_cast<std::size_t>(indexOf(p));
    }
  }

  if (maxOutDegree > 0) {
    if (static_cast<std::int64_t>(originChildren_.size()) > maxOutDegree)
      return fail("origin fan-out " + std::to_string(originChildren_.size()) +
                  " exceeds the degree cap");
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t deg = childOffset_[i + 1] - childOffset_[i];
      if (deg > maxOutDegree)
        return fail("host " + std::to_string(hosts_[i]) + " out-degree " +
                    std::to_string(deg) + " exceeds the degree cap");
    }
  }
  return {};
}

std::shared_ptr<const RouteTable> RouteTable::build(
    const OverlaySession& session, std::span<const HostId> hostOf,
    GroupId group, std::uint64_t epoch,
    std::shared_ptr<const RouteTable> recycle) {
  OMT_CHECK(static_cast<std::int64_t>(hostOf.size()) == session.hostCount(),
            "hostOf does not cover the session id space");
  // Only the subtree reachable from the virtual root through live,
  // unparked hosts is routable: a subtree hanging below a parked host or
  // an unrepaired corpse is attached in session terms but cannot receive
  // data, so it stays out of the published snapshot until repair re-homes
  // it (mirroring what the data plane could actually deliver to).
  ScratchArena& arena = workerArena();
  ScratchArena::Scope scope(arena);
  const std::size_t idSpace = hostOf.size();
  auto stack = arena.alloc<NodeId>(idSpace + 1);
  auto edges = arena.alloc<std::pair<HostId, HostId>>(idSpace);
  std::size_t top = 0;
  std::size_t m = 0;
  stack[top++] = 0;
  while (top > 0) {
    const NodeId node = stack[--top];
    for (const NodeId child : session.childrenOf(node)) {
      if (!session.isLive(child) || session.isParked(child)) continue;
      edges[m++] = {hostOf[static_cast<std::size_t>(child)],
                    node == 0 ? kNoHost
                              : hostOf[static_cast<std::size_t>(node)]};
      stack[top++] = child;
    }
  }
  std::sort(edges.begin(), edges.begin() + static_cast<std::ptrdiff_t>(m));

  auto table = makeShell(std::move(recycle), group, epoch);
  table->reset(m);
  for (std::size_t i = 0; i < m; ++i) {
    OMT_CHECK(i == 0 || table->hosts_[i - 1] != edges[i].first,
              "duplicate host id in one group");
    table->hosts_[i] = edges[i].first;
    table->parent_[i] = edges[i].second;
  }
  table->finalize();
  return table;
}

std::shared_ptr<const RouteTable> RouteTable::buildDelta(
    const RouteTable& previous, const OverlaySession& session,
    std::span<const HostId> hostOf, const HostIndex& members,
    std::span<const NodeId> dirtyNodes, std::uint64_t epoch,
    std::int64_t maxEdits, std::shared_ptr<const RouteTable> recycle) {
  OMT_CHECK(static_cast<std::int64_t>(hostOf.size()) == session.hostCount(),
            "hostOf does not cover the session id space");
  maxEdits = std::min(maxEdits, previous.size() +
                                    static_cast<std::int64_t>(dirtyNodes.size()));
  if (static_cast<std::int64_t>(dirtyNodes.size()) > maxEdits) return nullptr;

  ScratchArena& arena = workerArena();
  ScratchArena::Scope scope(arena);
  const std::size_t idSpace = hostOf.size();

  // A node contributes an entry iff it is live, unparked, and its whole
  // parent chain up to the virtual root is live and unparked (exactly the
  // set build()'s root DFS reaches).
  const auto reachable = [&](NodeId node) {
    if (node <= 0 || !session.isLive(node) || session.isParked(node))
      return false;
    for (NodeId a = session.parentOf(node); a != 0;
         a = session.parentOf(a)) {
      if (a == kNoNode || !session.isLive(a) || session.isParked(a))
        return false;
    }
    return true;
  };

  // Candidate hosts whose entry may differ from `previous`: every dirty
  // node, plus — when a dirty node's membership flipped — its whole
  // current live/unparked subtree (the nodes build() would newly include
  // or newly skip without any of them having changed their own links).
  // Every push (bar the seed) follows a successful add(), so the DFS
  // stack never outgrows the edit cap — no need to size it to the whole
  // id space.
  const std::size_t cap = static_cast<std::size_t>(maxEdits);
  auto candidates = arena.alloc<HostId>(cap + 1);
  auto stack = arena.alloc<NodeId>(cap + 2);
  std::size_t count = 0;
  bool overflow = false;
  const auto add = [&](HostId h) {
    if (count >= cap) {
      overflow = true;
      return;
    }
    candidates[count++] = h;
  };
  for (const NodeId d : dirtyNodes) {
    if (overflow) break;
    if (d <= 0 || static_cast<std::size_t>(d) >= idSpace) continue;
    const HostId host = hostOf[static_cast<std::size_t>(d)];
    add(host);
    if (reachable(d) == previous.contains(host)) continue;
    std::size_t top = 0;
    stack[top++] = d;
    while (top > 0 && !overflow) {
      const NodeId node = stack[--top];
      for (const NodeId child : session.childrenOf(node)) {
        if (!session.isLive(child) || session.isParked(child)) continue;
        add(hostOf[static_cast<std::size_t>(child)]);
        if (overflow) break;
        stack[top++] = child;
      }
    }
  }
  if (overflow) return nullptr;

  // Resolve each candidate host authoritatively against the session: the
  // host's *current* member node decides presence and parent (stale dead
  // nodes from earlier incarnations of a re-joined host never win).
  struct Edit {
    HostId host;
    HostId parent;
    bool present;
  };
  std::sort(candidates.begin(),
            candidates.begin() + static_cast<std::ptrdiff_t>(count));
  auto edits = arena.alloc<Edit>(count);
  std::size_t editCount = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (i > 0 && candidates[i] == candidates[i - 1]) continue;
    const HostId host = candidates[i];
    Edit edit{host, kNoHost, false};
    const NodeId node = members.find(host);
    if (node != kNoNode && reachable(node)) {
      edit.present = true;
      const NodeId p = session.parentOf(node);
      edit.parent = p == 0 ? kNoHost : hostOf[static_cast<std::size_t>(p)];
    }
    edits[editCount++] = edit;
  }

  // Splice the edits into the previous sorted host/parent arrays in one
  // linear merge (sortedness is preserved, so no DFS and no sort),
  // recording per entry where it came from and how the previous epoch's
  // indices shift, so the CSR can be re-derived from the previous epoch's
  // parent indices without any host->index hashing.
  const std::size_t prevN = previous.hosts_.size();
  auto newHosts = arena.alloc<HostId>(prevN + editCount);
  auto newParent = arena.alloc<HostId>(prevN + editCount);
  // fromPrev[j] >= 0: copied from previous index; -(e+1): from edits[e].
  auto fromPrev = arena.alloc<std::int32_t>(prevN + editCount);
  auto remap = arena.alloc<std::int32_t>(prevN);  ///< prev index -> new, -1 gone
  std::size_t n = 0;
  std::size_t pi = 0;
  std::size_t ei = 0;
  while (pi < prevN || ei < editCount) {
    const bool takePrev =
        ei == editCount ||
        (pi < prevN && previous.hosts_[pi] < edits[ei].host);
    if (takePrev) {
      newHosts[n] = previous.hosts_[pi];
      newParent[n] = previous.parent_[pi];
      fromPrev[n] = static_cast<std::int32_t>(pi);
      remap[pi] = static_cast<std::int32_t>(n);
      ++n;
      ++pi;
      continue;
    }
    if (pi < prevN && previous.hosts_[pi] == edits[ei].host)
      remap[pi++] = edits[ei].present ? static_cast<std::int32_t>(n) : -1;
    if (edits[ei].present) {
      newHosts[n] = edits[ei].host;
      newParent[n] = edits[ei].parent;
      fromPrev[n] = -static_cast<std::int32_t>(ei) - 1;
      ++n;
    }
    ++ei;
  }

  auto table = makeShell(std::move(recycle), previous.group_, epoch);
  table->reset(n);
  std::copy(newHosts.begin(), newHosts.begin() + static_cast<std::ptrdiff_t>(n),
            table->hosts_.begin());
  std::copy(newParent.begin(),
            newParent.begin() + static_cast<std::ptrdiff_t>(n),
            table->parent_.begin());

  // Parent indices: entries copied from the previous epoch remap its
  // stored index (an unchanged member's parent cannot have left without
  // the member itself turning dirty, but fall back to the full rebuild
  // rather than trust that invariant blindly); fresh edits resolve their
  // parent host with one binary search each.
  for (std::size_t j = 0; j < n; ++j) {
    const std::int32_t src = fromPrev[j];
    const HostId p = table->parent_[j];
    if (p == kNoHost) {
      table->parentIdx_[j] = -1;
      continue;
    }
    std::int32_t pj = -1;
    if (src >= 0) {
      const std::int32_t old =
          previous.parentIdx_[static_cast<std::size_t>(src)];
      if (old >= 0) pj = remap[static_cast<std::size_t>(old)];
    } else {
      const std::int64_t found = table->indexOf(p);
      pj = found < 0 ? -1 : static_cast<std::int32_t>(found);
    }
    if (pj < 0 || table->hosts_[static_cast<std::size_t>(pj)] != p)
      return nullptr;
    table->parentIdx_[j] = pj;
  }
  table->finalizeFromParentIdx();
  return table;
}

}  // namespace omt
