#include "omt/service/route_table.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "omt/common/error.h"

namespace omt {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  // splitmix64 finalizer over the running hash; matches the repo's other
  // structural fingerprints in spirit (order-sensitive, avalanching).
  h += v + 0x9e3779b97f4a7c15ULL;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

RouteTable::RouteTable(GroupId group, std::uint64_t epoch)
    : group_(group), epoch_(epoch) {
  finalize();
}

std::int64_t RouteTable::indexOf(HostId host) const {
  const auto it = std::lower_bound(hosts_.begin(), hosts_.end(), host);
  if (it == hosts_.end() || *it != host) return -1;
  return it - hosts_.begin();
}

HostId RouteTable::parentOf(HostId host) const {
  const std::int64_t i = indexOf(host);
  return i < 0 ? kNotMember : parent_[static_cast<std::size_t>(i)];
}

std::span<const HostId> RouteTable::childrenOf(HostId host) const {
  const std::int64_t i = indexOf(host);
  if (i < 0) return {};
  const auto lo = static_cast<std::size_t>(childOffset_[static_cast<std::size_t>(i)]);
  const auto hi =
      static_cast<std::size_t>(childOffset_[static_cast<std::size_t>(i) + 1]);
  return std::span<const HostId>(children_).subspan(lo, hi - lo);
}

void RouteTable::finalize() {
  const std::size_t n = hosts_.size();
  // Children CSR, grouped by parent index with children in ascending
  // HostId order (hosts_ is sorted, so one counting pass suffices).
  std::vector<std::int32_t> degree(n, 0);
  originChildren_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const HostId p = parent_[i];
    if (p == kNoHost) {
      originChildren_.push_back(hosts_[i]);
      continue;
    }
    const std::int64_t pi = indexOf(p);
    OMT_CHECK(pi >= 0, "route table parent is not a member");
    ++degree[static_cast<std::size_t>(pi)];
  }
  childOffset_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i)
    childOffset_[i + 1] = childOffset_[i] + degree[i];
  children_.assign(static_cast<std::size_t>(childOffset_[n]), 0);
  std::vector<std::int32_t> cursor(childOffset_.begin(),
                                   childOffset_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const HostId p = parent_[i];
    if (p == kNoHost) continue;
    const auto pi = static_cast<std::size_t>(indexOf(p));
    children_[static_cast<std::size_t>(cursor[pi]++)] = hosts_[i];
  }

  std::uint64_t h = mix(0x0a11c0de5e12f1ceULL,
                        static_cast<std::uint64_t>(group_));
  h = mix(h, static_cast<std::uint64_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    h = mix(h, static_cast<std::uint64_t>(hosts_[i]));
    h = mix(h, static_cast<std::uint64_t>(parent_[i]) + 2);  // kNotMember-safe
  }
  fingerprint_ = h;
}

RouteTableAudit RouteTable::checkConsistency(int maxOutDegree) const {
  auto fail = [](std::string message) {
    return RouteTableAudit{false, std::move(message)};
  };
  const std::size_t n = hosts_.size();
  if (parent_.size() != n || childOffset_.size() != n + 1)
    return fail("route table arrays disagree on the member count");
  for (std::size_t i = 1; i < n; ++i) {
    if (hosts_[i - 1] >= hosts_[i])
      return fail("route table hosts are not strictly ascending");
  }

  // Recompute the fingerprint: a torn or bit-damaged snapshot cannot both
  // keep its stored hash and re-derive it from its own arrays.
  RouteTable fresh(group_, epoch_);
  fresh.hosts_ = hosts_;
  fresh.parent_ = parent_;
  fresh.finalize();
  if (fresh.fingerprint_ != fingerprint_)
    return fail("stored fingerprint does not match the table contents");
  if (fresh.children_ != children_ || fresh.childOffset_ != childOffset_ ||
      fresh.originChildren_ != originChildren_)
    return fail("children index does not match the parent array");

  // Every member must reach the origin through member parents without a
  // cycle; walking each parent chain with a visit stamp is O(n) total.
  std::vector<std::int64_t> state(n, 0);  // 0 unvisited, <0 in progress, 1 done
  for (std::size_t i = 0; i < n; ++i) {
    if (state[i] == 1) continue;
    std::size_t walk = i;
    const std::int64_t stamp = -static_cast<std::int64_t>(i) - 2;
    while (true) {
      if (state[walk] == stamp)
        return fail("cycle through host " + std::to_string(hosts_[walk]));
      if (state[walk] == 1) break;
      state[walk] = stamp;
      const HostId p = parent_[walk];
      if (p == kNoHost) break;
      const std::int64_t pi = indexOf(p);
      if (pi < 0)
        return fail("host " + std::to_string(hosts_[walk]) +
                    " has non-member parent " + std::to_string(p));
      walk = static_cast<std::size_t>(pi);
    }
    // Mark the walked chain resolved.
    walk = i;
    while (walk < n && state[walk] == stamp) {
      state[walk] = 1;
      const HostId p = parent_[walk];
      if (p == kNoHost) break;
      walk = static_cast<std::size_t>(indexOf(p));
    }
  }

  if (maxOutDegree > 0) {
    if (static_cast<std::int64_t>(originChildren_.size()) > maxOutDegree)
      return fail("origin fan-out " + std::to_string(originChildren_.size()) +
                  " exceeds the degree cap");
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t deg = childOffset_[i + 1] - childOffset_[i];
      if (deg > maxOutDegree)
        return fail("host " + std::to_string(hosts_[i]) + " out-degree " +
                    std::to_string(deg) + " exceeds the degree cap");
    }
  }
  return {};
}

std::shared_ptr<const RouteTable> RouteTable::build(
    const OverlaySession& session, std::span<const HostId> hostOf,
    GroupId group, std::uint64_t epoch) {
  OMT_CHECK(static_cast<std::int64_t>(hostOf.size()) == session.hostCount(),
            "hostOf does not cover the session id space");
  auto table = std::make_shared<RouteTable>(group, epoch);
  // Only the subtree reachable from the virtual root through live,
  // unparked hosts is routable: a subtree hanging below a parked host or
  // an unrepaired corpse is attached in session terms but cannot receive
  // data, so it stays out of the published snapshot until repair re-homes
  // it (mirroring what the data plane could actually deliver to).
  std::vector<std::pair<HostId, HostId>> edges;  // (host, parent host)
  std::vector<NodeId> stack = {0};
  while (!stack.empty()) {
    const NodeId node = stack.back();
    stack.pop_back();
    for (const NodeId child : session.childrenOf(node)) {
      if (!session.isLive(child) || session.isParked(child)) continue;
      edges.emplace_back(hostOf[static_cast<std::size_t>(child)],
                         node == 0 ? kNoHost
                                   : hostOf[static_cast<std::size_t>(node)]);
      stack.push_back(child);
    }
  }
  std::sort(edges.begin(), edges.end());
  table->hosts_.reserve(edges.size());
  table->parent_.reserve(edges.size());
  for (const auto& [host, parent] : edges) {
    OMT_CHECK(table->hosts_.empty() || table->hosts_.back() != host,
              "duplicate host id in one group");
    table->hosts_.push_back(host);
    table->parent_.push_back(parent);
  }
  table->finalize();
  return table;
}

}  // namespace omt
