// Shared replay harness over GroupManager: batch a membership script
// through apply(), quiesce the tail, and audit every group's final
// snapshot. `omtcli serve`, bench_service, and the service test gates all
// drive replays through this one helper so they agree on what
// "converged" means: zero degraded groups after quiesce and every
// published table passing its structural consistency audit.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "omt/service/group_manager.h"
#include "omt/service/script.h"

namespace omt {

struct ReplayOptions {
  /// Events per apply() batch (the publish granularity).
  std::int64_t batchSize = 1024;
  /// Drain degraded state after the last batch (RPC parks, corpses).
  bool quiesceAtEnd = true;
  int quiesceRounds = 32;
  /// Run RouteTable::checkConsistency on every group's final table.
  bool auditTables = true;
};

struct ReplayResult {
  std::int64_t events = 0;
  std::int64_t batches = 0;
  std::int64_t publishes = 0;
  std::int64_t groups = 0;           ///< groups ever created
  std::int64_t liveGroups = 0;       ///< still holding members at the end
  std::int64_t degradedGroups = 0;   ///< left degraded after quiesce
  std::int64_t inconsistentGroups = 0;
  std::string firstInconsistency;    ///< first audit failure message
  double applySeconds = 0.0;         ///< wall time inside apply()/quiesce()
  /// Forwarded from ApplyReport (ServiceOptions::measureLatency).
  std::vector<double> eventLatencies;

  bool converged() const {
    return degradedGroups == 0 && inconsistentGroups == 0;
  }
};

/// Replay `events` into `manager` in batches. The script must be valid
/// against the manager's current state (no double joins etc.).
ReplayResult replayScript(GroupManager& manager,
                          std::span<const MembershipEvent> events,
                          const ReplayOptions& options = {});

/// Order-independent-of-shard-count fingerprint of the whole service:
/// mixes every created group's (id, table fingerprint) in ascending group
/// order. Equal populations with equal trees hash equal for any shard
/// count or OMT_THREADS — the chaos gate's determinism check.
std::uint64_t serviceFingerprint(const GroupManager& manager);

}  // namespace omt
