// Plain-text serialization of point sets and multicast trees, so workloads
// and built trees can move between the CLI tool, benches, and external
// analysis scripts.
//
// Formats (line-oriented, '#' comments allowed between records):
//   points:  "omt-points 1 <n> <dim>"  then n lines of <dim> coordinates
//   tree:    "omt-tree 1 <n> <root>"   then n lines "<parent> <kind>"
//            (parent -1 for the root; kind 0 = core, 1 = local)
//   session: "omt-session 1 <n>"       then n lines "<sessionId>", then an
//            embedded omt-tree record and an embedded omt-points record
//            (tree index i <-> sessionIds[i] <-> positions[i] — exactly the
//            protocol layer's SessionSnapshot, spelled out as components so
//            this layer needs no protocol dependency)
// Loading validates counts, ranges, and (for trees) structural integrity
// via finalize(); malformed input throws omt::InvalidArgument.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "omt/geometry/point.h"
#include "omt/tree/multicast_tree.h"

namespace omt {

void savePoints(std::ostream& out, std::span<const Point> points);
void savePointsFile(const std::string& path, std::span<const Point> points);

std::vector<Point> loadPoints(std::istream& in);
std::vector<Point> loadPointsFile(const std::string& path);

void saveTree(std::ostream& out, const MulticastTree& tree);
void saveTreeFile(const std::string& path, const MulticastTree& tree);

/// Loads and finalizes; the result is structurally usable but callers
/// should still run validate() if they need the spanning/degree checks.
MulticastTree loadTree(std::istream& in);
MulticastTree loadTreeFile(const std::string& path);

/// An overlay-session snapshot as its components (what
/// OverlaySession::snapshot() produces: the live tree in compact index
/// space plus, per tree index, the permanent session id and position).
void saveSessionSnapshot(std::ostream& out, const MulticastTree& tree,
                         std::span<const NodeId> sessionIds,
                         std::span<const Point> positions);
void saveSessionSnapshotFile(const std::string& path,
                             const MulticastTree& tree,
                             std::span<const NodeId> sessionIds,
                             std::span<const Point> positions);

struct LoadedSessionSnapshot {
  MulticastTree tree;
  std::vector<NodeId> sessionIds;
  std::vector<Point> positions;
};

LoadedSessionSnapshot loadSessionSnapshot(std::istream& in);
LoadedSessionSnapshot loadSessionSnapshotFile(const std::string& path);

}  // namespace omt
