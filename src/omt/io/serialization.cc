#include "omt/io/serialization.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "omt/common/error.h"

namespace omt {
namespace {

constexpr int kFormatVersion = 1;

/// Next non-empty, non-comment line; false at EOF.
bool nextRecord(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto firstNonSpace = line.find_first_not_of(" \t\r");
    if (firstNonSpace == std::string::npos) continue;
    if (line[firstNonSpace] == '#') continue;
    return true;
  }
  return false;
}

std::ifstream openInput(const std::string& path) {
  std::ifstream in(path);
  OMT_CHECK(in.good(), "cannot open " + path + " for reading");
  return in;
}

std::ofstream openOutput(const std::string& path) {
  std::ofstream out(path);
  OMT_CHECK(out.good(), "cannot open " + path + " for writing");
  return out;
}

}  // namespace

void savePoints(std::ostream& out, std::span<const Point> points) {
  OMT_CHECK(!points.empty(), "refusing to save an empty point set");
  const int dim = points.front().dim();
  out << "omt-points " << kFormatVersion << ' ' << points.size() << ' '
      << dim << '\n';
  out << std::setprecision(17);
  for (const Point& p : points) {
    OMT_CHECK(p.dim() == dim, "mixed dimensions in point set");
    for (int c = 0; c < dim; ++c) {
      if (c > 0) out << ' ';
      out << p[c];
    }
    out << '\n';
  }
  OMT_CHECK(out.good(), "write failure while saving points");
}

std::vector<Point> loadPoints(std::istream& in) {
  std::string line;
  OMT_CHECK(nextRecord(in, line), "missing points header");
  std::istringstream header(line);
  std::string magic;
  int version = 0;
  std::int64_t n = 0;
  int dim = 0;
  header >> magic >> version >> n >> dim;
  OMT_CHECK(!header.fail() && magic == "omt-points",
            "not an omt-points stream");
  OMT_CHECK(version == kFormatVersion, "unsupported points format version");
  OMT_CHECK(n >= 1, "point count must be positive");
  OMT_CHECK(dim >= 1 && dim <= kMaxDim, "dimension out of range");

  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    OMT_CHECK(nextRecord(in, line),
              "truncated points stream at record " + std::to_string(i));
    std::istringstream row(line);
    Point p(dim);
    for (int c = 0; c < dim; ++c) {
      row >> p[c];
      OMT_CHECK(!row.fail(),
                "malformed coordinate at record " + std::to_string(i));
    }
    points.push_back(p);
  }
  return points;
}

void saveTree(std::ostream& out, const MulticastTree& tree) {
  out << "omt-tree " << kFormatVersion << ' ' << tree.size() << ' '
      << tree.root() << '\n';
  for (NodeId v = 0; v < tree.size(); ++v) {
    const NodeId parent = tree.parentOf(v);
    const int kind =
        (v == tree.root() || parent == kNoNode)
            ? 1
            : (tree.edgeKindOf(v) == EdgeKind::kCore ? 0 : 1);
    out << parent << ' ' << kind << '\n';
  }
  OMT_CHECK(out.good(), "write failure while saving tree");
}

MulticastTree loadTree(std::istream& in) {
  std::string line;
  OMT_CHECK(nextRecord(in, line), "missing tree header");
  std::istringstream header(line);
  std::string magic;
  int version = 0;
  NodeId n = 0;
  NodeId root = kNoNode;
  header >> magic >> version >> n >> root;
  OMT_CHECK(!header.fail() && magic == "omt-tree", "not an omt-tree stream");
  OMT_CHECK(version == kFormatVersion, "unsupported tree format version");
  OMT_CHECK(n >= 1, "node count must be positive");
  OMT_CHECK(root >= 0 && root < n, "root out of range");

  MulticastTree tree(n, root);
  for (NodeId v = 0; v < n; ++v) {
    OMT_CHECK(nextRecord(in, line),
              "truncated tree stream at node " + std::to_string(v));
    std::istringstream row(line);
    NodeId parent = kNoNode;
    int kind = 1;
    row >> parent >> kind;
    OMT_CHECK(!row.fail(), "malformed tree record " + std::to_string(v));
    OMT_CHECK(kind == 0 || kind == 1, "unknown edge kind");
    if (v == root) {
      OMT_CHECK(parent == kNoNode, "root must have parent -1");
      continue;
    }
    OMT_CHECK(parent >= 0 && parent < n,
              "parent out of range at node " + std::to_string(v));
    tree.attach(v, parent, kind == 0 ? EdgeKind::kCore : EdgeKind::kLocal);
  }
  tree.finalize();
  return tree;
}

void saveSessionSnapshot(std::ostream& out, const MulticastTree& tree,
                         std::span<const NodeId> sessionIds,
                         std::span<const Point> positions) {
  OMT_CHECK(static_cast<std::size_t>(tree.size()) == sessionIds.size() &&
                sessionIds.size() == positions.size(),
            "snapshot components disagree on the host count");
  out << "omt-session " << kFormatVersion << ' ' << sessionIds.size() << '\n';
  for (const NodeId id : sessionIds) {
    OMT_CHECK(id >= 0, "negative session id");
    out << id << '\n';
  }
  saveTree(out, tree);
  savePoints(out, positions);
  OMT_CHECK(out.good(), "write failure while saving session snapshot");
}

LoadedSessionSnapshot loadSessionSnapshot(std::istream& in) {
  std::string line;
  OMT_CHECK(nextRecord(in, line), "missing session header");
  std::istringstream header(line);
  std::string magic;
  int version = 0;
  std::int64_t n = 0;
  header >> magic >> version >> n;
  OMT_CHECK(!header.fail() && magic == "omt-session",
            "not an omt-session stream");
  OMT_CHECK(version == kFormatVersion, "unsupported session format version");
  OMT_CHECK(n >= 1, "session host count must be positive");

  std::vector<NodeId> sessionIds;
  sessionIds.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    OMT_CHECK(nextRecord(in, line),
              "truncated session stream at id " + std::to_string(i));
    std::istringstream row(line);
    NodeId id = kNoNode;
    row >> id;
    OMT_CHECK(!row.fail() && id >= 0,
              "malformed session id at record " + std::to_string(i));
    sessionIds.push_back(id);
  }

  LoadedSessionSnapshot snapshot{.tree = loadTree(in),
                                 .sessionIds = std::move(sessionIds),
                                 .positions = loadPoints(in)};
  OMT_CHECK(static_cast<std::int64_t>(snapshot.tree.size()) == n &&
                static_cast<std::int64_t>(snapshot.positions.size()) == n,
            "session snapshot components disagree on the host count");
  return snapshot;
}

void savePointsFile(const std::string& path, std::span<const Point> points) {
  auto out = openOutput(path);
  savePoints(out, points);
}

std::vector<Point> loadPointsFile(const std::string& path) {
  auto in = openInput(path);
  return loadPoints(in);
}

void saveTreeFile(const std::string& path, const MulticastTree& tree) {
  auto out = openOutput(path);
  saveTree(out, tree);
}

MulticastTree loadTreeFile(const std::string& path) {
  auto in = openInput(path);
  return loadTree(in);
}

void saveSessionSnapshotFile(const std::string& path,
                             const MulticastTree& tree,
                             std::span<const NodeId> sessionIds,
                             std::span<const Point> positions) {
  auto out = openOutput(path);
  saveSessionSnapshot(out, tree, sessionIds, positions);
}

LoadedSessionSnapshot loadSessionSnapshotFile(const std::string& path) {
  auto in = openInput(path);
  return loadSessionSnapshot(in);
}

}  // namespace omt
