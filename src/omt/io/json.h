// Minimal JSON document model and recursive-descent parser.
//
// Exists so observability artifacts are verifiable in-process: the obs
// tests round-trip Chrome trace exports and metrics snapshots through this
// parser, and the CI chaos gate asserts the emitted snapshot actually
// parses. It is a reader for machine-written JSON (full escape handling,
// \uXXXX as UTF-8, nesting-depth cap), not a streaming writer — the
// exporters in obs/ and the benches write their JSON directly.
//
// Objects preserve insertion order (vector of pairs, linear find), which
// keeps dump() byte-stable for comparing re-serialized documents.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace omt::json {

class Value;
using Array = std::vector<Value>;
using Member = std::pair<std::string, Value>;
using Object = std::vector<Member>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : data_(nullptr) {}
  Value(bool value) : data_(value) {}                     // NOLINT(runtime/explicit)
  Value(double value) : data_(value) {}                   // NOLINT(runtime/explicit)
  Value(std::string value) : data_(std::move(value)) {}   // NOLINT(runtime/explicit)
  Value(Array value) : data_(std::move(value)) {}         // NOLINT(runtime/explicit)
  Value(Object value) : data_(std::move(value)) {}        // NOLINT(runtime/explicit)

  Type type() const { return static_cast<Type>(data_.index()); }
  bool isNull() const { return type() == Type::kNull; }
  bool isBool() const { return type() == Type::kBool; }
  bool isNumber() const { return type() == Type::kNumber; }
  bool isString() const { return type() == Type::kString; }
  bool isArray() const { return type() == Type::kArray; }
  bool isObject() const { return type() == Type::kObject; }

  /// Typed accessors; throw omt::InvalidArgument on a type mismatch.
  bool asBool() const;
  double asNumber() const;
  const std::string& asString() const;
  const Array& asArray() const;
  const Object& asObject() const;

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const Value* find(std::string_view key) const;

  /// Compact canonical serialization (no insignificant whitespace; numbers
  /// in shortest-round-trip form; non-ASCII bytes passed through).
  std::string dump() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parse one JSON document (trailing whitespace allowed, nothing else after
/// the value). Throws omt::InvalidArgument with a byte offset on malformed
/// input or nesting deeper than 256 levels.
Value parse(std::string_view text);

}  // namespace omt::json
