#include "omt/io/json.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "omt/common/error.h"

namespace omt::json {
namespace {

constexpr int kMaxDepth = 256;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parseDocument() {
    Value value = parseValue(0);
    skipWhitespace();
    check(pos_ == text_.size(), "trailing characters after the document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("JSON parse error at byte " + std::to_string(pos_) +
                          ": " + what);
  }
  void check(bool ok, const char* what) const {
    if (!ok) fail(what);
  }

  void skipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    check(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    check(pos_ < text_.size() && text_[pos_] == c, "unexpected character");
    ++pos_;
  }

  bool consumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parseValue(int depth) {
    check(depth < kMaxDepth, "nesting too deep");
    skipWhitespace();
    const char c = peek();
    if (c == '{') return parseObject(depth);
    if (c == '[') return parseArray(depth);
    if (c == '"') return Value(parseString());
    if (c == 't') {
      check(consumeLiteral("true"), "invalid literal");
      return Value(true);
    }
    if (c == 'f') {
      check(consumeLiteral("false"), "invalid literal");
      return Value(false);
    }
    if (c == 'n') {
      check(consumeLiteral("null"), "invalid literal");
      return Value();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return Value(parseNumber());
    fail("unexpected character");
  }

  Value parseObject(int depth) {
    expect('{');
    Object members;
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(members));
    }
    for (;;) {
      skipWhitespace();
      check(peek() == '"', "object key must be a string");
      std::string key = parseString();
      skipWhitespace();
      expect(':');
      members.emplace_back(std::move(key), parseValue(depth + 1));
      skipWhitespace();
      const char next = peek();
      ++pos_;
      if (next == '}') return Value(std::move(members));
      check(next == ',', "expected ',' or '}' in object");
    }
  }

  Value parseArray(int depth) {
    expect('[');
    Array items;
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    for (;;) {
      items.push_back(parseValue(depth + 1));
      skipWhitespace();
      const char next = peek();
      ++pos_;
      if (next == ']') return Value(std::move(items));
      check(next == ',', "expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      check(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        check(pos_ < text_.size(), "unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': appendCodepoint(out, parseHex4()); break;
          default: fail("invalid escape sequence");
        }
      } else {
        check(static_cast<unsigned char>(c) >= 0x20,
              "unescaped control character in string");
        out.push_back(c);
      }
    }
  }

  unsigned parseHex4() {
    check(pos_ + 4 <= text_.size(), "truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return value;
  }

  static void appendCodepoint(std::string& out, unsigned cp) {
    // BMP only (surrogate pairs are not produced by any omt writer).
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  double parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
      check(pos_ > before, "malformed number");
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      digits();
    }
    const std::string token(text_.substr(start, pos_ - start));
    return std::strtod(token.c_str(), nullptr);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dumpString(std::ostringstream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void dumpValue(std::ostringstream& out, const Value& value) {
  switch (value.type()) {
    case Value::Type::kNull: out << "null"; break;
    case Value::Type::kBool: out << (value.asBool() ? "true" : "false"); break;
    case Value::Type::kNumber: {
      const double number = value.asNumber();
      if (std::isfinite(number) && number == std::floor(number) &&
          std::abs(number) < 1e15) {
        out << static_cast<std::int64_t>(number);
      } else {
        std::ostringstream buf;
        buf.precision(17);
        buf << number;
        out << buf.str();
      }
      break;
    }
    case Value::Type::kString: dumpString(out, value.asString()); break;
    case Value::Type::kArray: {
      out << '[';
      bool first = true;
      for (const Value& item : value.asArray()) {
        if (!first) out << ',';
        first = false;
        dumpValue(out, item);
      }
      out << ']';
      break;
    }
    case Value::Type::kObject: {
      out << '{';
      bool first = true;
      for (const Member& member : value.asObject()) {
        if (!first) out << ',';
        first = false;
        dumpString(out, member.first);
        out << ':';
        dumpValue(out, member.second);
      }
      out << '}';
      break;
    }
  }
}

}  // namespace

bool Value::asBool() const {
  OMT_CHECK(isBool(), "JSON value is not a bool");
  return std::get<bool>(data_);
}

double Value::asNumber() const {
  OMT_CHECK(isNumber(), "JSON value is not a number");
  return std::get<double>(data_);
}

const std::string& Value::asString() const {
  OMT_CHECK(isString(), "JSON value is not a string");
  return std::get<std::string>(data_);
}

const Array& Value::asArray() const {
  OMT_CHECK(isArray(), "JSON value is not an array");
  return std::get<Array>(data_);
}

const Object& Value::asObject() const {
  OMT_CHECK(isObject(), "JSON value is not an object");
  return std::get<Object>(data_);
}

const Value* Value::find(std::string_view key) const {
  if (!isObject()) return nullptr;
  for (const Member& member : asObject()) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::string Value::dump() const {
  std::ostringstream out;
  dumpValue(out, *this);
  return out.str();
}

Value parse(std::string_view text) { return Parser(text).parseDocument(); }

}  // namespace omt::json
