// Error types and precondition-checking macros.
//
// Library preconditions are enforced with OMT_CHECK (always on, throws
// omt::InvalidArgument) and internal invariants with OMT_ASSERT (always on,
// throws omt::LogicError). Algorithms never throw on valid input, so a
// LogicError escaping the library is a bug in the library, not the caller.
#pragma once

#include <stdexcept>
#include <string>

namespace omt {

/// Thrown when a caller violates a documented precondition.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant fails; indicates a library bug.
class LogicError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void throwInvalidArgument(const char* condition, const char* file,
                                       int line, const std::string& message);
[[noreturn]] void throwLogicError(const char* condition, const char* file,
                                  int line, const std::string& message);
}  // namespace detail

}  // namespace omt

/// Validate a caller-facing precondition; `msg` is a std::string expression.
#define OMT_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::omt::detail::throwInvalidArgument(#cond, __FILE__, __LINE__, msg); \
    }                                                                     \
  } while (false)

/// Validate an internal invariant; `msg` is a std::string expression.
#define OMT_ASSERT(cond, msg)                                        \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::omt::detail::throwLogicError(#cond, __FILE__, __LINE__, msg); \
    }                                                                \
  } while (false)
