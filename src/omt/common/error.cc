#include "omt/common/error.h"

#include <sstream>

namespace omt::detail {
namespace {

std::string format(const char* kind, const char* condition, const char* file,
                   int line, const std::string& message) {
  std::ostringstream out;
  out << kind << ": " << message << " [failed: " << condition << " at " << file
      << ":" << line << "]";
  return out.str();
}

}  // namespace

void throwInvalidArgument(const char* condition, const char* file, int line,
                          const std::string& message) {
  throw InvalidArgument(
      format("invalid argument", condition, file, line, message));
}

void throwLogicError(const char* condition, const char* file, int line,
                     const std::string& message) {
  throw LogicError(format("internal error", condition, file, line, message));
}

}  // namespace omt::detail
