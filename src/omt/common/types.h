// Fundamental identifiers and compile-time configuration shared by every
// omt subsystem.
#pragma once

#include <cstdint>
#include <limits>

namespace omt {

/// Index of a node (host) in the point set / multicast tree. Dense, 0-based.
using NodeId = std::int64_t;

/// Sentinel meaning "no node" (e.g. the parent of the root).
inline constexpr NodeId kNoNode = -1;

/// Maximum supported Euclidean dimension. The paper evaluates d = 2 and
/// d = 3; the generalised grid works for any d up to this bound.
inline constexpr int kMaxDim = 8;

/// Comparisons of geometric quantities use this absolute slack to absorb
/// floating-point rounding (coordinates are O(1) after normalisation).
inline constexpr double kGeomEps = 1e-12;

/// Positive infinity shorthand for delays/distances.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace omt
