// Delay metrics of a multicast tree under the Euclidean delay model.
//
// The paper's objective is the tree *radius*: the largest sender-to-receiver
// delay, i.e. the longest weighted root-to-node path ("Delay" in Table I).
// "Core" is the same maximum restricted to paths that consist solely of core
// edges (cell-representative links). The minimum-diameter variant discussed
// in the conclusion is covered by diameter().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "omt/geometry/point.h"
#include "omt/tree/multicast_tree.h"

namespace omt {

/// Root-to-node path length for every node (delay[root] == 0). The tree
/// must be finalized; points[i] is the position of node i.
std::vector<double> computeDelays(const MulticastTree& tree,
                                  std::span<const Point> points);

/// Hop count from the root for every node.
std::vector<std::int32_t> computeDepths(const MulticastTree& tree);

struct TreeMetrics {
  double maxDelay = 0.0;    ///< tree radius — the paper's objective
  double coreDelay = 0.0;   ///< longest all-core root path (Table I "Core")
  double meanDelay = 0.0;   ///< average over non-root nodes
  double totalLength = 0.0; ///< sum of all edge lengths (overlay cost)
  double maxStretch = 0.0;  ///< max delay[v] / dist(root, v) over v != root
  std::int32_t maxDepth = 0;
  std::int32_t maxOutDegree = 0;
  NodeId nodeCount = 0;
  /// histogram[d] = number of nodes with out-degree d.
  std::vector<std::int64_t> degreeHistogram;
};

/// All of the above in two passes over the tree.
TreeMetrics computeMetrics(const MulticastTree& tree,
                           std::span<const Point> points);

/// Weighted diameter of the tree viewed as an undirected graph: the largest
/// delay between any pair of hosts when messages may be relayed through the
/// tree (the MDDL objective of Shi et al.). Two-sweep algorithm, O(n).
double diameter(const MulticastTree& tree, std::span<const Point> points);

}  // namespace omt
