#include "omt/tree/validation.h"

#include <sstream>

namespace omt {
namespace {

ValidationResult fail(const std::string& message) {
  return {false, message};
}

}  // namespace

ValidationResult validate(const MulticastTree& tree,
                          const ValidationOptions& options) {
  if (!tree.finalized()) return fail("tree not finalized");

  const NodeId n = tree.size();
  for (NodeId v = 0; v < n; ++v) {
    if (v == tree.root()) {
      if (tree.parentOf(v) != kNoNode)
        return fail("root has a parent");
      continue;
    }
    const NodeId p = tree.parentOf(v);
    if (p == kNoNode) {
      std::ostringstream out;
      out << "node " << v << " is not attached";
      return fail(out.str());
    }
    if (p < 0 || p >= n) {
      std::ostringstream out;
      out << "node " << v << " has out-of-range parent " << p;
      return fail(out.str());
    }
  }

  // With every non-root node having exactly one parent, the structure is a
  // spanning arborescence iff every node is reachable from the root — a
  // cycle would make its members unreachable.
  if (static_cast<NodeId>(tree.bfsOrder().size()) != n) {
    std::ostringstream out;
    out << "only " << tree.bfsOrder().size() << " of " << n
        << " nodes reachable from the root (cycle among parent links)";
    return fail(out.str());
  }

  if (options.maxOutDegree >= 0) {
    for (NodeId v = 0; v < n; ++v) {
      if (tree.outDegree(v) > options.maxOutDegree) {
        std::ostringstream out;
        out << "node " << v << " has out-degree " << tree.outDegree(v)
            << " > cap " << options.maxOutDegree;
        return fail(out.str());
      }
    }
  }
  return {};
}

}  // namespace omt
