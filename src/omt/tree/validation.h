// Structural validation of multicast trees.
//
// Checks the properties the paper requires of a feasible solution: the tree
// spans every host, is acyclic and rooted at the source, and no node's
// out-degree exceeds the bandwidth-derived cap. Algorithms are tested
// against this validator on every configuration.
#pragma once

#include <string>

#include "omt/tree/multicast_tree.h"

namespace omt {

struct ValidationResult {
  bool ok = true;
  std::string message;  ///< empty when ok; first violation otherwise

  explicit operator bool() const { return ok; }
};

/// Options for validate(); maxOutDegree < 0 disables the degree check.
struct ValidationOptions {
  std::int64_t maxOutDegree = -1;
};

/// Validate that `tree` is a spanning arborescence of all its nodes rooted
/// at tree.root(), with out-degrees within the cap. The tree must be
/// finalized.
ValidationResult validate(const MulticastTree& tree,
                          const ValidationOptions& options = {});

}  // namespace omt
