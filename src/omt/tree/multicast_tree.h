// The overlay multicast tree: a rooted spanning tree over the host set in
// which every edge is a unicast overlay link from a parent (forwarder) to a
// child (receiver). Out-degree of a node is the number of children it
// forwards to — the quantity the paper's degree constraint caps.
//
// The structure distinguishes *core* edges (between cell representatives,
// built by the grid stage of Algorithm Polar_Grid) from *local* edges
// (within a cell, built by the Bisection stage); Table I's "Core" column is
// the longest all-core root path.
//
// Designed for multi-million-node trees: parent/kind arrays during
// construction, a CSR child adjacency built once by finalize().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "omt/common/error.h"
#include "omt/common/types.h"

namespace omt {

enum class EdgeKind : std::uint8_t {
  kCore,   ///< between cell representatives (the grid's binary core network)
  kLocal,  ///< within a cell (bisection) or any non-core attachment
};

class MulticastTree {
 public:
  /// An unconnected forest skeleton over `nodeCount` nodes rooted at `root`;
  /// call attach() for every non-root node, then finalize().
  MulticastTree(NodeId nodeCount, NodeId root);

  NodeId size() const { return static_cast<NodeId>(parent_.size()); }
  NodeId root() const { return root_; }

  /// Attach `child` under `parent`. Each node may be attached once, the
  /// root never. Increments the parent's out-degree.
  void attach(NodeId child, NodeId parent, EdgeKind kind);

  /// Whether the node has been attached (the root counts as attached).
  bool attached(NodeId node) const {
    return node == root_ || parentOf(node) != kNoNode;
  }

  NodeId parentOf(NodeId node) const {
    checkNode(node);
    return parent_[static_cast<std::size_t>(node)];
  }

  /// Kind of the edge (parentOf(node) -> node); node must be attached and
  /// not the root.
  EdgeKind edgeKindOf(NodeId node) const;

  /// Current number of children of `node`.
  std::int32_t outDegree(NodeId node) const {
    checkNode(node);
    return outDegree_[static_cast<std::size_t>(node)];
  }

  /// Build the CSR child adjacency; requires every node attached. Safe to
  /// call again after further attaches (rebuilds).
  void finalize();

  bool finalized() const { return finalized_; }

  /// Children of `node`; requires finalize().
  std::span<const NodeId> childrenOf(NodeId node) const;

  /// Nodes in breadth-first order from the root; requires finalize().
  /// Guaranteed to list parents before children.
  const std::vector<NodeId>& bfsOrder() const;

 private:
  void checkNode(NodeId node) const {
    OMT_ASSERT(node >= 0 && node < size(), "node id out of range");
  }

  NodeId root_;
  std::vector<NodeId> parent_;
  std::vector<EdgeKind> kind_;
  std::vector<std::int32_t> outDegree_;

  bool finalized_ = false;
  std::vector<std::int64_t> childOffset_;  // size + 1 entries
  std::vector<NodeId> childList_;
  std::vector<NodeId> bfsOrder_;
};

}  // namespace omt
