#include "omt/tree/metrics.h"

#include <algorithm>

#include "omt/common/error.h"

namespace omt {
namespace {

void checkInputs(const MulticastTree& tree, std::span<const Point> points) {
  OMT_CHECK(tree.finalized(), "tree must be finalized");
  OMT_CHECK(points.size() == static_cast<std::size_t>(tree.size()),
            "one point per tree node required");
}

}  // namespace

std::vector<double> computeDelays(const MulticastTree& tree,
                                  std::span<const Point> points) {
  checkInputs(tree, points);
  std::vector<double> delay(points.size(), 0.0);
  for (const NodeId v : tree.bfsOrder()) {
    if (v == tree.root()) continue;
    const NodeId p = tree.parentOf(v);
    delay[static_cast<std::size_t>(v)] =
        delay[static_cast<std::size_t>(p)] +
        distance(points[static_cast<std::size_t>(p)],
                 points[static_cast<std::size_t>(v)]);
  }
  return delay;
}

std::vector<std::int32_t> computeDepths(const MulticastTree& tree) {
  OMT_CHECK(tree.finalized(), "tree must be finalized");
  std::vector<std::int32_t> depth(static_cast<std::size_t>(tree.size()), 0);
  for (const NodeId v : tree.bfsOrder()) {
    if (v == tree.root()) continue;
    depth[static_cast<std::size_t>(v)] =
        depth[static_cast<std::size_t>(tree.parentOf(v))] + 1;
  }
  return depth;
}

TreeMetrics computeMetrics(const MulticastTree& tree,
                           std::span<const Point> points) {
  checkInputs(tree, points);
  TreeMetrics m;
  m.nodeCount = tree.size();
  m.degreeHistogram.clear();

  std::vector<double> delay(points.size(), 0.0);
  // A root path is all-core exactly while every edge from the root down is
  // core; once a local edge appears the rest of the path is intra-cell.
  std::vector<std::uint8_t> onCorePath(points.size(), 0);
  onCorePath[static_cast<std::size_t>(tree.root())] = 1;
  std::vector<std::int32_t> depth(points.size(), 0);

  double delaySum = 0.0;
  const Point& rootPoint = points[static_cast<std::size_t>(tree.root())];
  for (const NodeId v : tree.bfsOrder()) {
    const auto vi = static_cast<std::size_t>(v);
    if (v != tree.root()) {
      const NodeId p = tree.parentOf(v);
      const auto pi = static_cast<std::size_t>(p);
      const double edge = distance(points[pi], points[vi]);
      delay[vi] = delay[pi] + edge;
      depth[vi] = depth[pi] + 1;
      onCorePath[vi] = static_cast<std::uint8_t>(
          onCorePath[pi] && tree.edgeKindOf(v) == EdgeKind::kCore);
      m.totalLength += edge;
      delaySum += delay[vi];
      m.maxDelay = std::max(m.maxDelay, delay[vi]);
      if (onCorePath[vi]) m.coreDelay = std::max(m.coreDelay, delay[vi]);
      m.maxDepth = std::max(m.maxDepth, depth[vi]);
      const double direct = distance(rootPoint, points[vi]);
      if (direct > kGeomEps)
        m.maxStretch = std::max(m.maxStretch, delay[vi] / direct);
    }
    const std::int32_t deg = tree.outDegree(v);
    m.maxOutDegree = std::max(m.maxOutDegree, deg);
    if (static_cast<std::size_t>(deg) >= m.degreeHistogram.size())
      m.degreeHistogram.resize(static_cast<std::size_t>(deg) + 1, 0);
    ++m.degreeHistogram[static_cast<std::size_t>(deg)];
  }
  m.meanDelay =
      tree.size() > 1
          ? delaySum / static_cast<double>(tree.size() - 1)
          : 0.0;
  return m;
}

double diameter(const MulticastTree& tree, std::span<const Point> points) {
  checkInputs(tree, points);
  const std::size_t n = points.size();
  if (n == 1) return 0.0;

  // Distances from the root are the delays; the farthest node u is one end
  // of a diameter (standard two-sweep argument, valid for non-negative
  // weights). Then the farthest node from u gives the diameter length.
  const std::vector<double> fromRoot = computeDelays(tree, points);
  const auto uIt = std::max_element(fromRoot.begin(), fromRoot.end());
  const NodeId u = static_cast<NodeId>(uIt - fromRoot.begin());

  // Undirected BFS/DFS from u over child lists + parent pointers.
  std::vector<double> dist(n, -1.0);
  std::vector<NodeId> stack{u};
  dist[static_cast<std::size_t>(u)] = 0.0;
  double best = 0.0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    const auto vi = static_cast<std::size_t>(v);
    best = std::max(best, dist[vi]);
    auto visit = [&](NodeId w) {
      const auto wi = static_cast<std::size_t>(w);
      if (dist[wi] >= 0.0) return;
      dist[wi] = dist[vi] + distance(points[vi], points[wi]);
      stack.push_back(w);
    };
    if (v != tree.root()) visit(tree.parentOf(v));
    for (const NodeId w : tree.childrenOf(v)) visit(w);
  }
  return best;
}

}  // namespace omt
