#include "omt/tree/multicast_tree.h"

namespace omt {

MulticastTree::MulticastTree(NodeId nodeCount, NodeId root)
    : root_(root),
      parent_(static_cast<std::size_t>(nodeCount), kNoNode),
      kind_(static_cast<std::size_t>(nodeCount), EdgeKind::kLocal),
      outDegree_(static_cast<std::size_t>(nodeCount), 0) {
  OMT_CHECK(nodeCount >= 1, "tree needs at least one node");
  OMT_CHECK(root >= 0 && root < nodeCount, "root out of range");
}

void MulticastTree::attach(NodeId child, NodeId parent, EdgeKind kind) {
  checkNode(child);
  checkNode(parent);
  OMT_CHECK(child != root_, "cannot attach the root");
  OMT_CHECK(child != parent, "self-loop");
  OMT_CHECK(parent_[static_cast<std::size_t>(child)] == kNoNode,
            "node attached twice");
  parent_[static_cast<std::size_t>(child)] = parent;
  kind_[static_cast<std::size_t>(child)] = kind;
  ++outDegree_[static_cast<std::size_t>(parent)];
  // Write only on an actual transition: the parallel grid build attaches
  // disjoint children/parents concurrently into a never-finalized tree, and
  // an unconditional store here would be its only shared write.
  if (finalized_) finalized_ = false;
}

EdgeKind MulticastTree::edgeKindOf(NodeId node) const {
  checkNode(node);
  OMT_CHECK(node != root_, "the root has no incoming edge");
  OMT_CHECK(parent_[static_cast<std::size_t>(node)] != kNoNode,
            "node not attached");
  return kind_[static_cast<std::size_t>(node)];
}

void MulticastTree::finalize() {
  const std::size_t n = parent_.size();
  for (std::size_t v = 0; v < n; ++v) {
    OMT_CHECK(parent_[v] != kNoNode || static_cast<NodeId>(v) == root_,
              "finalize() with unattached nodes");
  }

  childOffset_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (static_cast<NodeId>(v) == root_) continue;
    ++childOffset_[static_cast<std::size_t>(parent_[v]) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) childOffset_[v + 1] += childOffset_[v];

  childList_.assign(n - 1, kNoNode);
  std::vector<std::int64_t> cursor(childOffset_.begin(),
                                   childOffset_.end() - 1);
  for (std::size_t v = 0; v < n; ++v) {
    if (static_cast<NodeId>(v) == root_) continue;
    childList_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(parent_[v])]++)] =
        static_cast<NodeId>(v);
  }

  // BFS from the root; if the parent links contain a cycle, some nodes are
  // unreachable and bfsOrder_ ends up shorter than n — validation reports
  // that as a broken tree rather than this method looping forever.
  bfsOrder_.clear();
  bfsOrder_.reserve(n);
  bfsOrder_.push_back(root_);
  for (std::size_t head = 0; head < bfsOrder_.size(); ++head) {
    const NodeId v = bfsOrder_[head];
    const auto begin = childOffset_[static_cast<std::size_t>(v)];
    const auto end = childOffset_[static_cast<std::size_t>(v) + 1];
    for (std::int64_t i = begin; i < end; ++i)
      bfsOrder_.push_back(childList_[static_cast<std::size_t>(i)]);
  }
  finalized_ = true;
}

std::span<const NodeId> MulticastTree::childrenOf(NodeId node) const {
  OMT_CHECK(finalized_, "childrenOf() before finalize()");
  checkNode(node);
  const auto begin = childOffset_[static_cast<std::size_t>(node)];
  const auto end = childOffset_[static_cast<std::size_t>(node) + 1];
  return {childList_.data() + begin, static_cast<std::size_t>(end - begin)};
}

const std::vector<NodeId>& MulticastTree::bfsOrder() const {
  OMT_CHECK(finalized_, "bfsOrder() before finalize()");
  return bfsOrder_;
}

}  // namespace omt
