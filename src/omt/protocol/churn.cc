#include "omt/protocol/churn.h"

#include <algorithm>
#include <cmath>

#include "omt/common/error.h"
#include "omt/random/samplers.h"
#include "omt/tree/metrics.h"

namespace omt {

std::vector<ChurnEvent> generateChurnTrace(const ChurnTraceOptions& options) {
  OMT_CHECK(options.arrivalRate > 0.0, "arrival rate must be positive");
  OMT_CHECK(options.meanLifetime > 0.0, "mean lifetime must be positive");
  OMT_CHECK(options.paretoShape == 0.0 || options.paretoShape > 1.0,
            "Pareto shape must exceed 1 (or be 0 for exponential)");
  OMT_CHECK(options.duration > 0.0, "duration must be positive");
  OMT_CHECK(options.dim >= 2 && options.dim <= kMaxDim,
            "dimension out of range");
  OMT_CHECK(options.crashFraction >= 0.0 && options.crashFraction <= 1.0,
            "crash fraction outside [0, 1]");

  Rng rng(options.seed);
  std::vector<ChurnEvent> events;
  double now = 0.0;
  std::int64_t entity = 0;
  while (true) {
    // Poisson arrivals: exponential inter-arrival gaps.
    now += -std::log(1.0 - rng.uniform()) / options.arrivalRate;
    if (now >= options.duration) break;

    ChurnEvent join;
    join.time = now;
    join.type = ChurnEventType::kJoin;
    join.entity = entity;
    join.position = sampleUnitBall(rng, options.dim);
    events.push_back(join);

    double lifetime;
    if (options.paretoShape == 0.0) {
      lifetime = -options.meanLifetime * std::log(1.0 - rng.uniform());
    } else {
      // Pareto with mean = xm * shape / (shape - 1) matched to the option.
      const double shape = options.paretoShape;
      const double xm = options.meanLifetime * (shape - 1.0) / shape;
      lifetime = xm / std::pow(1.0 - rng.uniform(), 1.0 / shape);
    }
    const double leaveTime = now + lifetime;
    if (leaveTime < options.duration) {
      ChurnEvent leave;
      leave.time = leaveTime;
      leave.type = rng.uniform() < options.crashFraction
                       ? ChurnEventType::kCrash
                       : ChurnEventType::kLeave;
      leave.entity = entity;
      events.push_back(leave);
    }
    ++entity;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.time < b.time;
                   });
  return events;
}

ChurnReplayResult replayChurnTrace(std::span<const ChurnEvent> trace, int dim,
                                   const SessionOptions& sessionOptions,
                                   int samples) {
  OMT_CHECK(samples >= 1, "need at least one sample");
  OverlaySession session(Point(dim), sessionOptions);
  ChurnReplayResult result;
  std::vector<NodeId> sessionIdOfEntity;

  double endTime = trace.empty() ? 1.0 : trace.back().time;
  double nextSample = endTime / samples;
  double sampleStep = endTime / samples;

  const auto sampleNow = [&]() {
    // Heartbeat sweep first: quality is measured on a repaired overlay.
    result.repairedSubtrees += session.detectAndRepair();
    if (session.liveCount() < 2) return;
    const SessionSnapshot snap = session.snapshot();
    const TreeMetrics m = computeMetrics(snap.tree, snap.positions);
    NodeId source = 0;
    for (std::size_t i = 0; i < snap.sessionIds.size(); ++i) {
      if (snap.sessionIds[i] == 0) source = static_cast<NodeId>(i);
    }
    double lower = 0.0;
    const Point& origin = snap.positions[static_cast<std::size_t>(source)];
    for (const Point& p : snap.positions)
      lower = std::max(lower, distance(p, origin));
    if (lower > kGeomEps)
      result.radiusOverLowerBound.add(m.maxDelay / lower);
  };

  for (const ChurnEvent& event : trace) {
    while (event.time >= nextSample) {
      sampleNow();
      nextSample += sampleStep;
    }
    if (event.type == ChurnEventType::kJoin) {
      OMT_CHECK(event.entity ==
                    static_cast<std::int64_t>(sessionIdOfEntity.size()),
                "trace entities must join in id order");
      sessionIdOfEntity.push_back(session.join(event.position));
      ++result.joins;
    } else {
      OMT_CHECK(event.entity >= 0 &&
                    event.entity <
                        static_cast<std::int64_t>(sessionIdOfEntity.size()),
                "leave before join in trace");
      const NodeId who =
          sessionIdOfEntity[static_cast<std::size_t>(event.entity)];
      if (event.type == ChurnEventType::kCrash) {
        session.crash(who);
        ++result.crashes;
      } else {
        session.leave(who);
        ++result.leaves;
      }
    }
    result.peakLive = std::max(result.peakLive, session.liveCount());
  }
  sampleNow();  // final sweep + sample
  result.sessionStats = session.stats();
  return result;
}

}  // namespace omt
