// Churn workloads: session traces with Poisson arrivals and heavy- or
// light-tailed lifetimes, replayed against an OverlaySession.
//
// Overlay multicast's defining operational problem is that the relays are
// end hosts that come and go. Measurement studies of peer-to-peer systems
// report Poisson-ish arrivals with heavy-tailed (Pareto) session lengths;
// this module generates such traces deterministically from a seed and
// replays them through the online protocol, sampling the tree's quality
// (radius over the instantaneous lower bound) on a fixed schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "omt/geometry/point.h"
#include "omt/protocol/overlay_session.h"
#include "omt/report/stats.h"

namespace omt {

struct ChurnTraceOptions {
  double arrivalRate = 20.0;  ///< Poisson arrivals per unit time
  double meanLifetime = 5.0;  ///< mean session length
  /// 0 = exponential lifetimes; > 1 = Pareto with this shape (heavier
  /// tail for values near 1; mean matched to meanLifetime).
  double paretoShape = 0.0;
  double duration = 50.0;     ///< trace length in time units
  int dim = 2;                ///< host positions uniform in the unit ball
  std::uint64_t seed = 1;
  /// Fraction of departures that are silent crashes (kCrash) instead of
  /// graceful leaves; crashed hosts linger until a detection sweep.
  double crashFraction = 0.0;
};

enum class ChurnEventType : std::uint8_t { kJoin, kLeave, kCrash };

struct ChurnEvent {
  double time = 0.0;
  ChurnEventType type = ChurnEventType::kJoin;
  /// Trace-local entity id; a kLeave refers to the entity of its kJoin.
  std::int64_t entity = -1;
  Point position;  ///< meaningful for kJoin
};

/// Generate a time-sorted trace. Every entity joins exactly once; entities
/// whose lifetime extends past `duration` never leave (their kLeave is
/// dropped — the session outlives the trace).
std::vector<ChurnEvent> generateChurnTrace(const ChurnTraceOptions& options);

struct ChurnReplayResult {
  std::int64_t joins = 0;
  std::int64_t leaves = 0;
  std::int64_t crashes = 0;
  std::int64_t repairedSubtrees = 0;  ///< orphan roots re-placed by sweeps
  std::int64_t peakLive = 0;
  /// Tree radius divided by the instantaneous straight-line lower bound,
  /// sampled `samples` times at even intervals (only while >= 2 hosts).
  RunningStats radiusOverLowerBound;
  SessionStats sessionStats;
};

/// Replay `trace` against a fresh OverlaySession with the given options
/// (source at the origin of `dim`-dimensional space). A failure-detection
/// sweep (detectAndRepair) runs before every quality sample, so crashed
/// hosts linger for up to one sample interval — the heartbeat period.
ChurnReplayResult replayChurnTrace(std::span<const ChurnEvent> trace, int dim,
                                   const SessionOptions& sessionOptions,
                                   int samples);

}  // namespace omt
