#include "omt/protocol/overlay_session.h"

#include <algorithm>
#include <cmath>

#include "omt/common/error.h"
#include "omt/obs/metrics.h"

namespace omt {
namespace {

/// Online target for the ring count: k ~ log2(n) - 3 tracks the offline
/// maximal-k selection (which needs every inner-ring cell occupied, a
/// coupon-collector condition) without inspecting cell occupancy.
int onlineTargetRings(std::int64_t liveCount) {
  int log2n = 0;
  while ((std::int64_t{1} << (log2n + 1)) <= liveCount) ++log2n;
  return std::clamp(log2n - 3, 1, PolarGrid::kMaxRings);
}

/// Structural-maintenance instruments. Counters are per logical event and
/// the moves themselves are deterministic for a fixed call sequence.
struct SessionMetrics {
  obs::Counter& splits;
  obs::Counter& merges;
  obs::Counter& extends;
  obs::Counter& scopedRebuilds;
  obs::Counter& regrids;
  obs::Gauge& rings;
};

SessionMetrics& sessionMetrics() {
  auto& registry = obs::MetricsRegistry::global();
  static SessionMetrics metrics{
      registry.counter("omt_protocol_splits_total"),
      registry.counter("omt_protocol_merges_total"),
      registry.counter("omt_protocol_extends_total"),
      registry.counter("omt_protocol_scoped_rebuilds_total"),
      registry.counter("omt_protocol_regrids_total"),
      registry.gauge("omt_protocol_rings")};
  return metrics;
}

}  // namespace

OverlaySession::OverlaySession(const Point& sourcePosition,
                               const SessionOptions& options)
    : options_(options),
      grid_(sourcePosition.dim(), 1, options.initialRadius) {
  OMT_CHECK(options.maxOutDegree >= 2, "out-degree cap must be at least 2");
  OMT_CHECK(options.regridGrowthFactor > 1.0,
            "regrid factor must exceed 1");
  OMT_CHECK(options.initialRadius > 0.0, "initial radius must be positive");

  Host source;
  source.position = sourcePosition;
  source.polar = toPolar(sourcePosition, sourcePosition);
  source.heapId = 1;
  source.alive = true;
  hosts_.push_back(std::move(source));
  cellMembers_.assign(grid_.heapIdCount(), {});
  cellRep_.assign(grid_.heapIdCount(), kNoNode);
  cellMembers_[1].push_back(0);
  cellRep_[1] = 0;
}

const Point& OverlaySession::positionOf(NodeId node) const {
  OMT_CHECK(node >= 0 && node < hostCount(), "unknown host");
  return hosts_[static_cast<std::size_t>(node)].position;
}

void OverlaySession::unpark(NodeId node) {
  auto& host = hosts_[static_cast<std::size_t>(node)];
  if (host.parked) {
    host.parked = false;
    --parkedCount_;
    markChanged(node);
  }
}

void OverlaySession::markChanged(NodeId node) {
  if (!journalOn_) return;
  const auto i = static_cast<std::size_t>(node);
  if (changeStamp_.size() <= i) changeStamp_.resize(hosts_.size() + 1, 0);
  if (changeStamp_[i] == changeEpoch_) return;
  changeStamp_[i] = changeEpoch_;
  changedNodes_.push_back(node);
}

void OverlaySession::clearChanges() {
  changedNodes_.clear();
  changeOverflow_ = false;
  if (++changeEpoch_ == 0) {  // stamp wrap: stale stamps must not collide
    std::fill(changeStamp_.begin(), changeStamp_.end(), 0);
    changeEpoch_ = 1;
  }
}

NodeId OverlaySession::backupParentOf(NodeId node) const {
  OMT_CHECK(node >= 0 && node < hostCount(), "unknown host");
  return hosts_[static_cast<std::size_t>(node)].backupParent;
}

std::uint64_t OverlaySession::heapIdOf(NodeId node) const {
  OMT_CHECK(node >= 0 && node < hostCount(), "unknown host");
  return hosts_[static_cast<std::size_t>(node)].heapId;
}

std::span<const NodeId> OverlaySession::cellMembersOf(
    std::uint64_t heapId) const {
  OMT_CHECK(heapId >= 1 && heapId < grid_.heapIdCount(), "heap id out of range");
  return cellMembers_[heapId];
}

NodeId OverlaySession::cellRepresentativeOf(std::uint64_t heapId) const {
  OMT_CHECK(heapId >= 1 && heapId < grid_.heapIdCount(), "heap id out of range");
  return cellRep_[heapId];
}

void OverlaySession::attach(NodeId child, NodeId parent) {
  OMT_ASSERT(hasCapacity(parent), "attach would exceed the degree cap");
  auto& c = hosts_[static_cast<std::size_t>(child)];
  OMT_ASSERT(c.parent == kNoNode, "host already attached");
  c.parent = parent;
  // Proactive backup: remember the grandparent so a future parent crash can
  // be healed in O(1) contacts. An ancestor can never be inside the child's
  // own subtree, so the hint is cycle-safe by construction (capacity and
  // liveness are still revalidated at use time).
  c.backupParent = hosts_[static_cast<std::size_t>(parent)].parent;
  hosts_[static_cast<std::size_t>(parent)].children.push_back(child);
  markChanged(child);
}

void OverlaySession::detach(NodeId child) {
  auto& c = hosts_[static_cast<std::size_t>(child)];
  if (c.parent == kNoNode) return;
  auto& siblings = hosts_[static_cast<std::size_t>(c.parent)].children;
  // The entry can already be gone when a crashed parent's child list was
  // purged before this child's own crash is processed.
  const auto it = std::find(siblings.begin(), siblings.end(), child);
  if (it != siblings.end()) siblings.erase(it);
  c.parent = kNoNode;
  markChanged(child);
}

NodeId OverlaySession::ancestorRepresentative(std::uint64_t heapId) {
  for (std::uint64_t h = heapId >> 1; h >= 1; h >>= 1) {
    ++stats_.contactCost;
    if (cellRep_[h] != kNoNode) return cellRep_[h];
  }
  return 0;  // the source, representative of ring 0
}

bool OverlaySession::eligibleParent(NodeId node, NodeId candidate,
                                    bool requireAlive) {
  // A candidate is ineligible if it cannot acknowledge the attach (it is
  // dead) or if attaching under it would create a cycle, i.e. it lies in
  // `node`'s own (re-attaching) subtree.
  if (candidate == node || !hasCapacity(candidate)) return false;
  if (requireAlive && !hosts_[static_cast<std::size_t>(candidate)].alive)
    return false;
  for (NodeId a = candidate; a != kNoNode;
       a = hosts_[static_cast<std::size_t>(a)].parent) {
    ++stats_.contactCost;
    if (a == node) return false;
  }
  return true;
}

NodeId OverlaySession::findParent(NodeId node, std::uint64_t heapId) {
  const Point& where = hosts_[static_cast<std::size_t>(node)].position;
  const auto eligible = [&](NodeId candidate) {
    return eligibleParent(node, candidate);
  };

  const auto bestInCell = [&](std::uint64_t h) {
    NodeId best = kNoNode;
    double bestDist = kInf;
    for (const NodeId member : cellMembers_[h]) {
      ++stats_.contactCost;
      if (!eligible(member)) continue;
      const double d = squaredDistance(
          hosts_[static_cast<std::size_t>(member)].position, where);
      if (d < bestDist) {
        bestDist = d;
        best = member;
      }
    }
    return best;
  };

  // Own cell, then ancestor cells up to ring 0.
  for (std::uint64_t h = heapId; h >= 1; h >>= 1) {
    const NodeId candidate = bestInCell(h);
    if (candidate != kNoNode) return candidate;
  }

  // Last resort: breadth-first capacity walk from the source; total live
  // capacity 2m always exceeds the m-1 edges, so a slot exists — though it
  // can be held hostage by crashed-but-undetected children. Prefer a live
  // adopter; failing that, degrade to a pending-crash host with a free slot
  // (the orphan's own heartbeat will re-detect and move it again) rather
  // than fail.
  NodeId degraded = kNoNode;
  std::vector<NodeId> frontier{0};
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const NodeId v = frontier[head];
    ++stats_.contactCost;
    if (eligible(v)) return v;
    if (degraded == kNoNode &&
        hosts_[static_cast<std::size_t>(v)].pendingCrash &&
        eligibleParent(node, v, /*requireAlive=*/false)) {
      degraded = v;
    }
    for (const NodeId c : hosts_[static_cast<std::size_t>(v)].children)
      frontier.push_back(c);
  }
  if (degraded != kNoNode) return degraded;
  OMT_ASSERT(false, "no feasible parent in a session with cap >= 2");
  return kNoNode;
}

void OverlaySession::place(NodeId node) {
  const std::uint64_t h = hosts_[static_cast<std::size_t>(node)].heapId;
  if (cellRep_[h] == kNoNode) cellRep_[h] = node;
  if (cellRep_[h] == node) {
    // Cell representative (first host of the cell, or a re-attaching
    // orphan that already represents it): attach toward the nearest
    // occupied ancestor cell's representative.
    NodeId parent = ancestorRepresentative(h);
    if (!eligibleParent(node, parent)) parent = findParent(node, h);
    attach(node, parent);
    return;
  }
  attach(node, findParent(node, h));
}

NodeId OverlaySession::join(const Point& position) {
  const NodeId id = admit(position);
  attachParked(id);
  return id;
}

NodeId OverlaySession::admit(const Point& position) {
  OMT_CHECK(position.dim() == grid_.dim(), "dimension mismatch");
  ++stats_.joins;
  const auto id = static_cast<NodeId>(hosts_.size());
  Host host;
  host.position = position;
  host.polar = toPolar(position, hosts_[0].position);
  host.alive = true;
  host.parked = true;
  hosts_.push_back(std::move(host));
  ++liveCount_;
  ++parkedCount_;
  markChanged(id);
  return id;
}

void OverlaySession::attachParked(NodeId node) {
  OMT_CHECK(isParked(node), "host is not parked");
  unpark(node);
  auto& self = hosts_[static_cast<std::size_t>(node)];
  if (self.heapId == 0) {
    // Fresh admit (never placed under any grid): the join placement path.
    const double radius = self.polar.radius;
    const bool outside = radius > grid_.outerRadius();
    if (options_.incremental) {
      if (outside && !extendRadius(radius)) {
        // Extreme outlier beyond the ring-slack memory guard: the one
        // remaining growth-path regrid (places everyone, including us).
        regrid(radius * 1.5);
        return;
      }
      growRingsToTarget();
      // Unlike a regrid, the structural moves above never place the
      // joiner itself — fall through to normal placement.
    } else if (outside ||
               (static_cast<double>(liveCount_) >
                    static_cast<double>(lastRegridCount_) *
                        options_.regridGrowthFactor &&
                onlineTargetRings(liveCount_) != grid_.rings())) {
      regrid(outside ? radius * 1.5 : grid_.outerRadius());
      return;
    }
    const int ring =
        grid_.ringOf(std::min(self.polar.radius, grid_.outerRadius()));
    self.heapId = grid_.heapId(ring, grid_.cellOf(self.polar, ring));
    cellMembers_[self.heapId].push_back(node);
    place(node);
    return;
  }
  // Re-parked orphan (already a cell member): re-home backup-first, with
  // the same accounting as crash repair.
  RepairReport report;
  rehomeOrphan(node, report);
}

void OverlaySession::park(NodeId node) {
  OMT_CHECK(isLive(node), "host is not live");
  OMT_CHECK(node != 0, "the source cannot park");
  OMT_CHECK(!isParked(node), "host is already parked");
  detach(node);
  hosts_[static_cast<std::size_t>(node)].parked = true;
  ++parkedCount_;
  markChanged(node);
}

void OverlaySession::leave(NodeId node) {
  OMT_CHECK(isLive(node), "host is not live");
  OMT_CHECK(node != 0, "the source cannot leave");
  ++stats_.leaves;
  unpark(node);
  auto& self = hosts_[static_cast<std::size_t>(node)];

  // Remove from the overlay and its cell. (A freshly-admitted parked host
  // is in no cell yet — the erase is conditional for that case.)
  detach(node);
  auto& members = cellMembers_[self.heapId];
  const auto it = std::find(members.begin(), members.end(), node);
  if (it != members.end()) members.erase(it);
  if (cellRep_[self.heapId] == node) promoteRepresentative(self.heapId);

  const std::vector<NodeId> orphans = std::move(self.children);
  self.children.clear();
  self.alive = false;
  --liveCount_;
  markChanged(node);
  for (const NodeId orphan : orphans) {
    hosts_[static_cast<std::size_t>(orphan)].parent = kNoNode;
    markChanged(orphan);
    // A crashed-but-undetected orphan stays detached; the next
    // detectAndRepair() sweep re-homes its own live children.
    if (hosts_[static_cast<std::size_t>(orphan)].alive) place(orphan);
  }

  maybeShrinkRegrid();
}

void OverlaySession::promoteRepresentative(std::uint64_t heapId) {
  // The member closest to the cell's inner-arc midpoint (the
  // representative rule of Section III-B); kNoNode for an empty cell.
  const auto& members = cellMembers_[heapId];
  NodeId promoted = kNoNode;
  if (!members.empty()) {
    const int ring = grid_.ringOfHeapId(heapId);
    const RingSegment segment =
        grid_.cellSegment(ring, grid_.cellOfHeapId(heapId));
    PolarCoords mid;
    mid.dim = grid_.dim();
    mid.radius = segment.radial().lo;
    for (int j = 0; j < segment.cubeAxes(); ++j) {
      double m = segment.cubeAxis(j).mid();
      if (j == azimuthAxis(grid_.dim())) m -= std::floor(m);
      mid.cube[static_cast<std::size_t>(j)] = m;
    }
    const Point target = fromPolar(mid, hosts_[0].position);
    double bestDist = kInf;
    for (const NodeId member : members) {
      ++stats_.contactCost;
      // A crashed-but-undetected member cannot answer a representative
      // election; leave the cell unrepresented rather than electing a
      // corpse (the next joiner or repair re-elects).
      if (!hosts_[static_cast<std::size_t>(member)].alive) continue;
      const double d = squaredDistance(
          hosts_[static_cast<std::size_t>(member)].position, target);
      if (d < bestDist) {
        bestDist = d;
        promoted = member;
      }
    }
  }
  cellRep_[heapId] = promoted;
}

void OverlaySession::crash(NodeId node) {
  OMT_CHECK(isLive(node), "host is not live");
  OMT_CHECK(node != 0, "the source cannot crash");
  ++stats_.crashes;
  unpark(node);
  hosts_[static_cast<std::size_t>(node)].alive = false;
  hosts_[static_cast<std::size_t>(node)].pendingCrash = true;
  --liveCount_;
  markChanged(node);
  ++undetectedCrashes_;
  crashedPending_.push_back(node);
  // Nothing else: the overlay still points at the dead host until
  // detectAndRepair() sweeps or a failure detector confirms the crash and
  // calls repairCrashed().
}

void OverlaySession::purgeDeadHost(NodeId dead, std::vector<NodeId>& orphans) {
  // Purge a crashed host from the structure; collect its live children.
  // (A regrid between the crash and this purge already removed the host
  // from its cell — the erase is conditional for that case.)
  Host& host = hosts_[static_cast<std::size_t>(dead)];
  detach(dead);
  auto& members = cellMembers_[host.heapId];
  const auto it = std::find(members.begin(), members.end(), dead);
  if (it != members.end()) members.erase(it);
  if (cellRep_[host.heapId] == dead) promoteRepresentative(host.heapId);
  for (const NodeId child : host.children) {
    hosts_[static_cast<std::size_t>(child)].parent = kNoNode;
    markChanged(child);
    if (hosts_[static_cast<std::size_t>(child)].alive)
      orphans.push_back(child);
  }
  host.children.clear();
  host.pendingCrash = false;
  markChanged(dead);
}

void OverlaySession::maybeShrinkRegrid() {
  if (options_.incremental) {
    // Merge with a full-doubling hysteresis: a ring earned at membership n
    // is only given back once the membership falls below n/2, so a count
    // oscillating around a power of two cannot thrash O(n) relabellings.
    while (grid_.rings() >= 2 &&
           onlineTargetRings(liveCount_ * 2) < grid_.rings()) {
      if (!mergeRings()) break;
    }
    return;
  }
  const bool shrunk =
      static_cast<double>(liveCount_) * options_.regridGrowthFactor <
      static_cast<double>(lastRegridCount_);
  if (shrunk && onlineTargetRings(liveCount_) != grid_.rings()) {
    regrid(grid_.outerRadius());
  }
}

std::int64_t OverlaySession::detectAndRepair() {
  // Heartbeat: every live non-source host probes its parent once.
  stats_.contactCost += std::max<std::int64_t>(0, liveCount_ - 1);
  if (crashedPending_.empty() && parkedCount_ == 0) return 0;

  std::vector<NodeId> orphans;
  for (const NodeId dead : crashedPending_) purgeDeadHost(dead, orphans);
  crashedPending_.clear();
  undetectedCrashes_ = 0;

  for (const NodeId orphan : orphans) place(orphan);

  // The global sweep also heals parked hosts (half-completed joins or
  // repairs abandoned by the RPC layer).
  std::int64_t healed = 0;
  if (parkedCount_ > 0) {
    std::vector<NodeId> parked;
    for (std::size_t id = 0; id < hosts_.size(); ++id) {
      if (hosts_[id].parked) parked.push_back(static_cast<NodeId>(id));
    }
    for (const NodeId node : parked) {
      // An attachParked-triggered regrid may have attached the rest.
      if (!isParked(node)) continue;
      attachParked(node);
      ++healed;
    }
  }

  maybeShrinkRegrid();
  return static_cast<std::int64_t>(orphans.size()) + healed;
}

void OverlaySession::rehomeOrphan(NodeId orphan, RepairReport& report) {
  ++report.orphansReplaced;
  const NodeId backup = hosts_[static_cast<std::size_t>(orphan)].backupParent;
  ++stats_.contactCost;  // contact the backup (or discover it is unusable)
  if (backup != kNoNode && eligibleParent(orphan, backup)) {
    attach(orphan, backup);
    ++report.backupHits;
    ++stats_.backupHits;
    return;
  }
  // Graceful degradation: the regular placement path — own cell, ancestor
  // representatives, then the breadth-first capacity walk from the source.
  ++report.fallbacks;
  ++stats_.backupFallbacks;
  place(orphan);
}

std::vector<NodeId> OverlaySession::purgeCrashed(NodeId dead) {
  OMT_CHECK(isPendingCrash(dead), "host is not a pending crash");
  std::vector<NodeId> orphans;
  purgeDeadHost(dead, orphans);
  crashedPending_.erase(
      std::find(crashedPending_.begin(), crashedPending_.end(), dead));
  --undetectedCrashes_;
  // The orphans come back parked: each awaits its own attach handshake.
  // No shrink check here — the caller runs it once the repair completes
  // (an immediate regrid would heal the orphans behind the driver's back).
  for (const NodeId orphan : orphans) {
    hosts_[static_cast<std::size_t>(orphan)].parked = true;
    ++parkedCount_;
  }
  return orphans;
}

RepairReport OverlaySession::repairCrashed(NodeId dead) {
  OMT_CHECK(isPendingCrash(dead), "host is not a pending crash");
  const std::int64_t contactsBefore = stats_.contactCost;
  RepairReport report;

  std::vector<NodeId> orphans;
  purgeDeadHost(dead, orphans);
  crashedPending_.erase(
      std::find(crashedPending_.begin(), crashedPending_.end(), dead));
  --undetectedCrashes_;

  for (const NodeId orphan : orphans) rehomeOrphan(orphan, report);

  report.contacts = stats_.contactCost - contactsBefore;
  maybeShrinkRegrid();
  return report;
}

RepairReport OverlaySession::migrate(NodeId node) {
  OMT_CHECK(isLive(node), "host is not live");
  OMT_CHECK(node != 0, "the source cannot migrate");
  // A parked host has no attachment to walk away from; attachParked() is
  // the operation that completes its placement (and clears the flag).
  OMT_CHECK(!isParked(node), "host is parked");
  const std::int64_t contactsBefore = stats_.contactCost;
  ++stats_.contactCost;  // goodbye message to the old parent (best effort)
  detach(node);
  RepairReport report;
  rehomeOrphan(node, report);
  report.contacts = stats_.contactCost - contactsBefore;
  return report;
}

void OverlaySession::replaceHost(NodeId node) {
  detach(node);
  place(node);
  ++stats_.maintenanceCost;
}

bool OverlaySession::splitRings() {
  if (grid_.rings() >= PolarGrid::kMaxRings) return false;
  const PolarGrid next = grid_.afterSplit();

  // Cell-local relabel: every placed host gains one angular bit (ring-0
  // hosts additionally resolve radially into {1, 2, 3}). Fresh parked
  // admits (heapId 0) are in no cell and are untouched; crashed-but-
  // unpurged members relabel like everyone else.
  std::vector<std::vector<NodeId>> nextMembers(next.heapIdCount());
  std::vector<NodeId> nextRep(next.heapIdCount(), kNoNode);
  for (std::uint64_t h = 1; h < grid_.heapIdCount(); ++h) {
    for (const NodeId member : cellMembers_[h]) {
      Host& host = hosts_[static_cast<std::size_t>(member)];
      host.heapId = grid_.splitTargetOf(h, host.polar, host.polar.radius);
      nextMembers[host.heapId].push_back(member);
      ++stats_.maintenanceCost;
    }
    // Distinct old cells map to disjoint new-cell sets, so the old
    // representative keeps representing whichever sibling it landed in —
    // and its attachment (toward an ancestor of both siblings) stays
    // aligned, so it is not re-homed.
    const NodeId rep = cellRep_[h];
    if (rep != kNoNode)
      nextRep[hosts_[static_cast<std::size_t>(rep)].heapId] = rep;
  }
  grid_ = next;
  cellMembers_ = std::move(nextMembers);
  cellRep_ = std::move(nextRep);
  cellRep_[1] = 0;
  ++stats_.splits;
  sessionMetrics().splits.add();
  sessionMetrics().rings.set(static_cast<double>(grid_.rings()));

  // Lazy representative re-selection: only sibling cells left without a
  // representative elect one, in ascending heap order so ancestor
  // representatives exist before descendants re-home toward them. The
  // re-homing itself is the optional quality work the watchdog sheds.
  for (std::uint64_t h = 2; h < grid_.heapIdCount(); ++h) {
    if (cellRep_[h] != kNoNode || cellMembers_[h].empty()) continue;
    promoteRepresentative(h);
    const NodeId rep = cellRep_[h];
    if (rep == kNoNode) continue;  // every member crashed, unpurged
    if (shedOptionalWork_ || isParked(rep)) continue;
    ++stats_.rehomedReps;
    replaceHost(rep);
  }
  return true;
}

bool OverlaySession::mergeRings() {
  if (grid_.rings() < 2) return false;
  const PolarGrid next = grid_.afterMerge();

  // Sibling cells coalesce (rings 0..1 collapse into the new central
  // ball). The surviving representative is whichever sibling's was alive
  // (ties favour the lower heap id); losers simply stay attached as
  // ordinary members — no host is re-homed.
  std::vector<std::vector<NodeId>> nextMembers(next.heapIdCount());
  std::vector<NodeId> nextRep(next.heapIdCount(), kNoNode);
  for (std::uint64_t h = 1; h < grid_.heapIdCount(); ++h) {
    const std::uint64_t target = grid_.mergeTargetOf(h);
    for (const NodeId member : cellMembers_[h]) {
      hosts_[static_cast<std::size_t>(member)].heapId = target;
      nextMembers[target].push_back(member);
      ++stats_.maintenanceCost;
    }
    const NodeId rep = cellRep_[h];
    if (rep == kNoNode) continue;
    NodeId& slot = nextRep[target];
    if (slot == kNoNode ||
        (!hosts_[static_cast<std::size_t>(slot)].alive &&
         hosts_[static_cast<std::size_t>(rep)].alive)) {
      slot = rep;
    }
  }
  grid_ = next;
  cellMembers_ = std::move(nextMembers);
  cellRep_ = std::move(nextRep);
  cellRep_[1] = 0;
  ++stats_.merges;
  sessionMetrics().merges.add();
  sessionMetrics().rings.set(static_cast<double>(grid_.rings()));
  return true;
}

bool OverlaySession::extendRadius(double needed) {
  if (needed <= grid_.outerRadius()) return true;
  // Smallest j with R * 2^{j/d} >= needed, with an fp guard loop: the
  // analytic j can undershoot by one ulp.
  int extra = static_cast<int>(std::ceil(
      static_cast<double>(grid_.dim()) *
      std::log2(needed / grid_.outerRadius())));
  extra = std::max(extra, 1);
  if (grid_.rings() + extra > PolarGrid::kMaxRings) return false;
  PolarGrid next = grid_.afterExtend(extra);
  while (next.outerRadius() < needed) {
    if (next.rings() >= PolarGrid::kMaxRings) return false;
    next = grid_.afterExtend(++extra);
  }
  // Memory guard: heap ids address 2^(rings+1) slots, so refuse to chase an
  // extreme outlier far past the online target — the caller regrids.
  if (next.rings() > onlineTargetRings(liveCount_) + options_.maxRingSlack)
    return false;

  // Every existing boundary radius and heap id is preserved; only the
  // tables grow to cover the appended outer shells. No host moves.
  cellMembers_.resize(next.heapIdCount());
  cellRep_.resize(next.heapIdCount(), kNoNode);
  grid_ = next;
  ++stats_.extends;
  sessionMetrics().extends.add();
  sessionMetrics().rings.set(static_cast<double>(grid_.rings()));
  return true;
}

void OverlaySession::growRingsToTarget() {
  while (onlineTargetRings(liveCount_) > grid_.rings()) {
    if (!splitRings()) break;
  }
}

std::int64_t OverlaySession::rebuildCells(
    std::span<const std::uint64_t> heapIds) {
  std::int64_t replaced = 0;
  for (const std::uint64_t h : heapIds) {
    OMT_CHECK(h >= 1 && h < grid_.heapIdCount(), "heap id out of range");
    ++stats_.scopedRebuilds;
    sessionMetrics().scopedRebuilds.add();

    // Purge this cell's pending crashes first (their orphans re-home
    // backup-first, wherever they live).
    std::vector<NodeId> deadHere;
    for (const NodeId member : cellMembers_[h]) {
      if (hosts_[static_cast<std::size_t>(member)].pendingCrash)
        deadHere.push_back(member);
    }
    for (const NodeId dead : deadHere) {
      std::vector<NodeId> orphans;
      purgeDeadHost(dead, orphans);
      crashedPending_.erase(
          std::find(crashedPending_.begin(), crashedPending_.end(), dead));
      --undetectedCrashes_;
      RepairReport report;
      for (const NodeId orphan : orphans) rehomeOrphan(orphan, report);
      replaced += report.orphansReplaced;
    }

    // Re-elect, then re-place the representative and every other attached
    // member one at a time (each re-place completes before the next
    // starts, so the source-reachable component always has a spare slot).
    // Ring 0 keeps the source as its permanent representative.
    if (h != 1) promoteRepresentative(h);
    const std::vector<NodeId> members = cellMembers_[h];
    const NodeId rep = cellRep_[h];
    const auto replaceable = [&](NodeId m) {
      return m != 0 && hosts_[static_cast<std::size_t>(m)].alive &&
             !hosts_[static_cast<std::size_t>(m)].parked;
    };
    if (rep != kNoNode && replaceable(rep)) {
      replaceHost(rep);
      ++replaced;
    }
    for (const NodeId member : members) {
      if (member == rep || !replaceable(member)) continue;
      replaceHost(member);
      ++replaced;
    }
  }
  return replaced;
}

void OverlaySession::regrid(double newRadius) {
  // Every host is detached and re-placed below: the journal cannot bound
  // the change set, so escalate to "everything moved".
  if (journalOn_) changeOverflow_ = true;
  ++stats_.regrids;
  sessionMetrics().regrids.add();
  stats_.regridCost += liveCount_;
  lastRegridCount_ = liveCount_;
  // A regrid rebuilds the overlay from live hosts only, which repairs any
  // pending crashes as a side effect.
  for (const NodeId dead : crashedPending_)
    hosts_[static_cast<std::size_t>(dead)].pendingCrash = false;
  crashedPending_.clear();
  undetectedCrashes_ = 0;

  double maxRadius = newRadius;
  for (const Host& host : hosts_) {
    if (host.alive) maxRadius = std::max(maxRadius, host.polar.radius);
  }
  grid_ = PolarGrid(grid_.dim(), onlineTargetRings(liveCount_), maxRadius);
  sessionMetrics().rings.set(static_cast<double>(grid_.rings()));
  cellMembers_.assign(grid_.heapIdCount(), {});
  cellRep_.assign(grid_.heapIdCount(), kNoNode);

  // Reset the overlay and re-place: cell representatives first in ring
  // order (so the core network exists before locals join), then everyone
  // else.
  // A regrid re-places every live host, which also heals parked ones.
  for (auto& host : hosts_) {
    host.parent = kNoNode;
    host.backupParent = kNoNode;
    host.children.clear();
    host.parked = false;
  }
  parkedCount_ = 0;
  for (std::size_t id = 0; id < hosts_.size(); ++id) {
    Host& host = hosts_[id];
    if (!host.alive) continue;
    const int ring = grid_.ringOf(std::min(host.polar.radius, maxRadius));
    host.heapId = grid_.heapId(ring, grid_.cellOf(host.polar, ring));
    cellMembers_[host.heapId].push_back(static_cast<NodeId>(id));
  }
  cellRep_[1] = 0;

  // Representatives by the inner-arc-midpoint rule, placed in heap order.
  for (std::uint64_t h = 2; h < grid_.heapIdCount(); ++h) {
    if (cellMembers_[h].empty()) continue;
    const int ring = grid_.ringOfHeapId(h);
    const RingSegment segment =
        grid_.cellSegment(ring, grid_.cellOfHeapId(h));
    PolarCoords mid;
    mid.dim = grid_.dim();
    mid.radius = segment.radial().lo;
    for (int j = 0; j < segment.cubeAxes(); ++j) {
      double m = segment.cubeAxis(j).mid();
      if (j == azimuthAxis(grid_.dim())) m -= std::floor(m);
      mid.cube[static_cast<std::size_t>(j)] = m;
    }
    const Point target = fromPolar(mid, hosts_[0].position);
    NodeId rep = kNoNode;
    double bestDist = kInf;
    for (const NodeId member : cellMembers_[h]) {
      const double d = squaredDistance(
          hosts_[static_cast<std::size_t>(member)].position, target);
      if (d < bestDist) {
        bestDist = d;
        rep = member;
      }
    }
    cellRep_[h] = rep;
    NodeId parent = ancestorRepresentative(h);
    if (!hasCapacity(parent)) parent = findParent(rep, h >> 1);
    attach(rep, parent);
  }
  // Locals.
  for (std::uint64_t h = 1; h < grid_.heapIdCount(); ++h) {
    for (const NodeId member : cellMembers_[h]) {
      if (member == cellRep_[h]) continue;
      if (member == 0) continue;
      attach(member, findParent(member, h));
    }
  }
}

SessionSnapshot OverlaySession::snapshot() const {
  OMT_CHECK(undetectedCrashes_ == 0,
            "snapshot() with undetected crashes; run detectAndRepair()");
  OMT_CHECK(parkedCount_ == 0,
            "snapshot() with parked hosts; complete their attaches first");
  std::vector<NodeId> sessionIds;
  std::vector<NodeId> toCompact(hosts_.size(), kNoNode);
  for (std::size_t id = 0; id < hosts_.size(); ++id) {
    if (!hosts_[id].alive) continue;
    toCompact[id] = static_cast<NodeId>(sessionIds.size());
    sessionIds.push_back(static_cast<NodeId>(id));
  }

  SessionSnapshot snap{
      .tree = MulticastTree(static_cast<NodeId>(sessionIds.size()),
                            toCompact[0]),
      .sessionIds = std::move(sessionIds),
      .positions = {}};
  snap.positions.reserve(snap.sessionIds.size());
  for (const NodeId id : snap.sessionIds)
    snap.positions.push_back(hosts_[static_cast<std::size_t>(id)].position);
  for (std::size_t i = 0; i < snap.sessionIds.size(); ++i) {
    const Host& host = hosts_[static_cast<std::size_t>(snap.sessionIds[i])];
    if (host.parent == kNoNode) continue;  // the source
    const bool isRep = cellRep_[host.heapId] == snap.sessionIds[i];
    snap.tree.attach(static_cast<NodeId>(i),
                     toCompact[static_cast<std::size_t>(host.parent)],
                     isRep ? EdgeKind::kCore : EdgeKind::kLocal);
  }
  snap.tree.finalize();
  return snap;
}

}  // namespace omt
