// An online (join/leave) overlay multicast session — the "decentralized
// version of the algorithm" the paper names as future work (Section VI).
//
// The session keeps the Polar_Grid structure incrementally instead of
// rebuilding from scratch:
//  * The grid frame is fixed by the source position; the ring count k
//    tracks the live membership (k ~ log2 n) and the outer radius grows
//    geometrically when a joiner lands outside. In incremental mode (the
//    default) both are handled by cell-local moves — splitRings() /
//    mergeRings() relabel cells in place and extendRadius() appends outer
//    shells without moving a single host — and a full *regrid* survives
//    only as the watchdog's last-resort escalation. With
//    SessionOptions::incremental = false both instead trigger a regrid,
//    amortised O(log n) times over a session (the pre-incremental
//    behaviour, kept for A/B comparison).
//  * A joiner computes its own (ring, cell). If the cell is empty it
//    becomes the cell representative and attaches toward the representative
//    of the nearest occupied *ancestor* cell (parent cell c/2 in ring i-1,
//    grandparent c/4, ..., ring 0 = the source) — this generalises the
//    paper's child alignment to grids with holes, which an online session
//    cannot avoid. Otherwise it attaches to the member of its own cell
//    with spare capacity closest to it.
//  * A leaver's children re-attach through the same rule; a leaving
//    representative is replaced by the cell member closest to the cell's
//    inner-arc midpoint (the paper's representative rule).
//
// Every operation reports its *contact cost* — how many hosts the protocol
// had to talk to — so benches can measure control overhead, and the
// session can be snapshot at any time into a MulticastTree for validation
// and delay metrics. Degree caps are never violated at any point in time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "omt/common/types.h"
#include "omt/geometry/point.h"
#include "omt/grid/polar_grid.h"
#include "omt/tree/multicast_tree.h"

namespace omt {

struct SessionOptions {
  int maxOutDegree = 6;          ///< per-host fan-out budget, >= 2
  /// Regrid when the live count leaves [lastRegridCount / factor,
  /// lastRegridCount * factor].
  double regridGrowthFactor = 2.0;
  /// Initial outer radius of the grid frame; grows (with a regrid) when a
  /// joiner lands outside.
  double initialRadius = 1.0;
  /// Maintain the grid incrementally: ring-count changes become cell-local
  /// split/merge relabellings and radius growth becomes an O(1) extend, so
  /// a full regrid is demoted from routine maintenance to the watchdog's
  /// last-resort escalation. `false` restores the regrid-on-every-drift
  /// behaviour of earlier revisions (kept for A/B benchmarking).
  bool incremental = true;
  /// Memory guard for incremental mode: heap ids address 2^(rings+1) cell
  /// slots, so an extend that would leave the ring count more than this
  /// many rings above the online target falls back to a full regrid.
  int maxRingSlack = 10;
};

struct SessionStats {
  std::int64_t joins = 0;
  std::int64_t leaves = 0;
  std::int64_t crashes = 0;
  std::int64_t regrids = 0;
  /// Incremental structural moves (incremental mode only): ring splits
  /// (k -> k+1, cell-local relabel), merges (k -> k-1, sibling coalesce),
  /// radius extends (outer shells appended, no host moves), and
  /// watchdog-scoped rebuilds of individual violating cells.
  std::int64_t splits = 0;
  std::int64_t merges = 0;
  std::int64_t extends = 0;
  std::int64_t scopedRebuilds = 0;
  /// Newly-elected sibling representatives re-homed after a split (the
  /// optional re-optimisation shed under watchdog pressure).
  std::int64_t rehomedReps = 0;
  /// Hosts contacted by join/leave handling (protocol control cost),
  /// excluding regrids.
  std::int64_t contactCost = 0;
  /// Hosts touched by regrids (each regrid touches every live host).
  std::int64_t regridCost = 0;
  /// Hosts relabelled or re-placed by incremental maintenance (splits,
  /// merges, scoped rebuilds) — the incremental analogue of regridCost.
  std::int64_t maintenanceCost = 0;
  /// Orphans re-homed in O(1) contacts via their precomputed backup parent.
  std::int64_t backupHits = 0;
  /// Orphans whose backup was unusable (dead, saturated, or a cycle risk)
  /// and who fell back to the full placement path.
  std::int64_t backupFallbacks = 0;
};

/// Cost/quality report for one local repair operation (repairCrashed() or
/// migrate()): how many subtree roots moved, how they were re-homed, and
/// what the operation alone cost in contacts.
struct RepairReport {
  std::int64_t orphansReplaced = 0;
  std::int64_t backupHits = 0;
  std::int64_t fallbacks = 0;
  std::int64_t contacts = 0;
};

/// Snapshot of the live overlay as a standard MulticastTree plus the
/// session-id <-> tree-index mapping.
struct SessionSnapshot {
  MulticastTree tree;             ///< over live hosts, index space [0, m)
  std::vector<NodeId> sessionIds; ///< tree index -> session id
  std::vector<Point> positions;   ///< tree index -> host position
};

class OverlaySession {
 public:
  OverlaySession(const Point& sourcePosition, const SessionOptions& options);

  /// Add a host; returns its permanent session id. O(cell size + rings)
  /// contacts expected; may trigger a regrid. Equivalent to admit()
  /// followed immediately by attachParked() — the atomic path used when no
  /// message loss can interrupt the handshake.
  NodeId join(const Point& position);

  // --- Decomposed (message-level) operations -------------------------------
  // The RPC driver (omt/rpc/reliable_session.h) splits each protocol
  // operation into individual fallible messages. Between messages the
  // session sits in an explicitly-modelled *degraded* state: a parked host
  // is live but unattached (it joined the membership, its attach never
  // completed), and structural invariants (degree caps, acyclicity) hold
  // throughout. Parked hosts are healed by attachParked(), a regrid (which
  // re-places every live host), or the detectAndRepair() sweep.

  /// Register a live host WITHOUT attaching it: the host exists, counts as
  /// live, but is parked outside the tree until attachParked() completes
  /// the join. Returns its permanent session id.
  NodeId admit(const Point& position);

  /// Complete a parked host's attachment: fresh admits go through the join
  /// placement path (and may trigger a regrid); re-parked orphans re-home
  /// backup-first like crash repair.
  void attachParked(NodeId node);

  /// Park a live, currently-attached non-source host: detach it (children
  /// are NOT moved; its subtree stays below it) — the state a host is left
  /// in when a re-attach handshake exhausts its retries mid-flight.
  void park(NodeId node);

  /// Purge ONE crashed host from the tree and its cell WITHOUT re-homing
  /// the orphans: the orphaned subtree roots are returned parked, each to
  /// be re-attached individually (attachParked) by its own fallible
  /// handshake. repairCrashed() == purgeCrashed() + attachParked() each +
  /// shrink check, when every handshake succeeds.
  std::vector<NodeId> purgeCrashed(NodeId dead);

  /// Remove a live non-source host that departed WITHOUT completing its
  /// goodbye handshake: children are left in place under it like a crash.
  /// (A lost leave is indistinguishable from a silent crash to everyone
  /// else.)
  void leaveSilently(NodeId node) { crash(node); }

  /// Remove a live non-source host; its children are re-attached. May
  /// trigger a regrid when the membership shrinks enough.
  void leave(NodeId node);

  /// Crash a live non-source host SILENTLY: unlike leave(), nothing is
  /// repaired — the overlay still references the dead host until
  /// detectAndRepair() runs (modelling a host dying without notice).
  void crash(NodeId node);

  /// Heartbeat sweep: every live host probes its parent (one contact
  /// each); hosts whose parent crashed re-place their subtrees, and
  /// crashed hosts are purged from cells (representatives promoted).
  /// Returns the number of orphaned subtree roots re-placed. Snapshot()
  /// requires all crashes to have been repaired.
  ///
  /// This is the global-sweep baseline: orphans go through the full
  /// placement path (cell scan, ancestor chain, capacity walk). The local
  /// alternative driven by a failure detector is repairCrashed().
  std::int64_t detectAndRepair();

  /// Purge ONE crashed host (it must be a pending crash) and re-home its
  /// orphaned subtrees locally: each orphan first contacts its precomputed
  /// backup parent — O(1) contacts when the backup is live, has spare
  /// capacity, and lies outside the orphan's subtree — and degrades to the
  /// full placement path otherwise. The per-host dual of the global
  /// detectAndRepair() sweep, intended to be driven by a failure detector
  /// that confirmed this specific host dead.
  RepairReport repairCrashed(NodeId dead);

  /// Move a live non-source host away from its current parent and re-home
  /// it backup-first: what a host does after (rightly or wrongly) declaring
  /// its parent dead, or after being evicted by a parent that believes the
  /// host dead. Never violates structural invariants either way.
  RepairReport migrate(NodeId node);

  /// Number of crashed-but-not-yet-repaired hosts.
  std::int64_t undetectedCrashes() const { return undetectedCrashes_; }

  /// Number of live hosts currently parked (admitted or orphaned, waiting
  /// for an attach handshake to complete).
  std::int64_t parkedCount() const { return parkedCount_; }
  bool isParked(NodeId node) const {
    return node >= 0 && node < static_cast<NodeId>(hosts_.size()) &&
           hosts_[static_cast<std::size_t>(node)].parked;
  }

  /// Shrink-triggered regrid check; exposed so a driver completing a
  /// decomposed repair can apply the same membership-halved rule as
  /// leave()/repairCrashed(). In incremental mode this merges rings
  /// (with a full-doubling hysteresis) instead of regridding.
  void maybeShrinkRegrid();

  // --- Incremental grid maintenance (incremental mode) ---------------------
  // Cell-local structural moves replacing the full regrid. All three keep
  // every invariant (degree caps, acyclicity, cell-membership consistency)
  // at every intermediate step; none of them touches pending crashes or
  // parked hosts, so unlike regrid() they compose with the decomposed RPC
  // operations without healing state behind the driver's back.

  /// k -> k+1 over the same radius: O(live) cell relabel (each host gains
  /// one angular bit), then lazy representative re-selection — only the
  /// newly-created sibling cells elect (and, unless shedding, re-home) a
  /// representative. Returns false at kMaxRings.
  bool splitRings();

  /// k -> k-1 over the same radius: sibling cells coalesce; the surviving
  /// representative is kept as-is, so no host is re-homed at all. Returns
  /// false when fewer than two rings remain.
  bool mergeRings();

  /// Grow the outer radius to cover `needed` by appending outer shells
  /// (existing cells, heap ids, and attachments are untouched — the O(1)
  /// amortised answer to out-of-radius joiners). Returns false, leaving
  /// the session unchanged, when the ring count would exceed kMaxRings or
  /// the options_.maxRingSlack memory guard; the caller then regrids.
  bool extendRadius(double needed);

  /// Scoped rebuild — the watchdog's step-3 escalation. For each listed
  /// cell: purge its pending crashes (re-homing their orphans), re-elect
  /// the representative, and re-place the representative then every other
  /// attached member through the normal placement path. Hosts outside the
  /// listed cells are untouched. Returns the number of hosts re-placed.
  std::int64_t rebuildCells(std::span<const std::uint64_t> heapIds);

  /// Full regrid at the current radius — the watchdog's last-resort
  /// escalation (and the only way the grid coarsens its radius frame).
  void forceRegrid() { regrid(grid_.outerRadius()); }

  /// Shed optional re-optimisation (watchdog step-1 degradation): while
  /// set, splits skip re-homing newly-elected representatives — structure
  /// stays valid, quality recovery is deferred until pressure clears.
  void setShedOptionalWork(bool shed) { shedOptionalWork_ = shed; }
  bool shedOptionalWork() const { return shedOptionalWork_; }

  // --- Change journal (service delta publication) --------------------------
  // When enabled, the session records every node whose attachment, parent
  // link, or liveness/parked status changed since the last clearChanges().
  // A consumer that mirrors the session into a derived structure (the
  // service's RouteTable) can patch only the recorded nodes instead of
  // re-traversing everything. A regrid moves every host at once and
  // invalidates the journal — changeOverflow() flags it; the consumer must
  // then do a full pass before the journal is meaningful again.

  /// Start journalling (idempotent; off by default — marking is a branch
  /// plus a stamped push per first-touch, so sessions that never publish
  /// deltas pay nothing).
  void enableChangeJournal() { journalOn_ = true; }
  /// Nodes touched since the last clearChanges(), deduplicated, in
  /// first-touch order. Meaningless while changeOverflow() is set.
  std::span<const NodeId> changedNodes() const { return changedNodes_; }
  /// True after a structural escalation (regrid) re-placed every host.
  bool changeOverflow() const { return changeOverflow_; }
  void clearChanges();

  double outerRadius() const { return grid_.outerRadius(); }

  NodeId sourceId() const { return 0; }
  std::int64_t liveCount() const { return liveCount_; }
  const Point& positionOf(NodeId node) const;
  const SessionStats& stats() const { return stats_; }
  const SessionOptions& options() const { return options_; }
  int rings() const { return grid_.rings(); }
  // The membership/topology accessors are inline: the publication paths
  // (RouteTable::build/buildDelta) and the repair sweeps call them in
  // per-node loops, where an out-of-line call per probe dominates.
  bool isLive(NodeId node) const {
    return node >= 0 && node < static_cast<NodeId>(hosts_.size()) &&
           hosts_[static_cast<std::size_t>(node)].alive;
  }
  /// Whether `node` crashed and has not yet been purged by a repair.
  bool isPendingCrash(NodeId node) const {
    return node >= 0 && node < static_cast<NodeId>(hosts_.size()) &&
           hosts_[static_cast<std::size_t>(node)].pendingCrash;
  }

  // Read-only introspection for failure detectors and invariant checkers.
  // Ids cover every host ever admitted, live or not.
  std::int64_t hostCount() const {
    return static_cast<std::int64_t>(hosts_.size());
  }
  NodeId parentOf(NodeId node) const {
    OMT_CHECK(node >= 0 && node < hostCount(), "unknown host");
    return hosts_[static_cast<std::size_t>(node)].parent;
  }
  std::span<const NodeId> childrenOf(NodeId node) const {
    OMT_CHECK(node >= 0 && node < hostCount(), "unknown host");
    return hosts_[static_cast<std::size_t>(node)].children;
  }
  /// The host's precomputed fallback parent (kNoNode when none is known);
  /// a hint maintained on every attachment, revalidated at use time.
  NodeId backupParentOf(NodeId node) const;
  std::uint64_t heapIdOf(NodeId node) const;
  std::uint64_t cellCount() const { return grid_.heapIdCount(); }
  std::span<const NodeId> cellMembersOf(std::uint64_t heapId) const;
  NodeId cellRepresentativeOf(std::uint64_t heapId) const;

  /// Materialise the current overlay for validation/metrics.
  SessionSnapshot snapshot() const;

 private:
  struct Host {
    Point position;
    PolarCoords polar;
    std::uint64_t heapId = 0;  ///< cell under the current grid
    NodeId parent = kNoNode;
    NodeId backupParent = kNoNode;  ///< fallback parent hint (grandparent)
    std::vector<NodeId> children;
    bool alive = false;
    bool pendingCrash = false;  ///< crashed but not yet purged by a repair
    bool parked = false;  ///< live but unattached, awaiting an attach
  };

  int outDegreeOf(NodeId node) const {
    return static_cast<int>(hosts_[static_cast<std::size_t>(node)]
                                .children.size());
  }
  bool hasCapacity(NodeId node) const {
    return outDegreeOf(node) < options_.maxOutDegree;
  }

  void attach(NodeId child, NodeId parent);
  void detach(NodeId child);

  /// Whether `candidate` can become `node`'s parent: live (unless
  /// `requireAlive` is false), spare capacity, and not inside `node`'s own
  /// subtree (walking the parent chain counts one contact per hop).
  bool eligibleParent(NodeId node, NodeId candidate, bool requireAlive = true);

  /// Re-home one orphaned subtree root: O(1) attach to its precomputed
  /// backup parent when usable, full placement otherwise. Updates the
  /// backup-hit/fallback counters on `report`.
  void rehomeOrphan(NodeId orphan, RepairReport& report);

  /// Purge one dead host from its cell and the tree; appends its live
  /// children (now detached) to `orphans`.
  void purgeDeadHost(NodeId dead, std::vector<NodeId>& orphans);

  /// Clear a host's parked flag (no-op when not parked).
  void unpark(NodeId node);

  /// The representative of the nearest occupied ancestor cell of `heapId`
  /// (possibly the source). Counts contacts.
  NodeId ancestorRepresentative(std::uint64_t heapId);

  /// A parent for `node` near cell `heapId`: a spare-capacity member of
  /// the cell (closest to `node`), else the ancestor representative chain,
  /// else a capacity walk down from the source. Counts contacts.
  NodeId findParent(NodeId node, std::uint64_t heapId);

  /// Place a live, currently-detached host into the overlay.
  void place(NodeId node);

  /// Re-pick the representative of `heapId` from its current members by
  /// the inner-arc-midpoint rule (kNoNode when empty); counts contacts.
  void promoteRepresentative(std::uint64_t heapId);

  /// Rebuild the grid for the current membership (new k / new radius) and
  /// re-place every host. The only global operation.
  void regrid(double newRadius);

  /// Split until the ring count reaches the online target (incremental
  /// growth path; no-op in non-incremental mode).
  void growRingsToTarget();

  /// Detach + re-place one attached live host (its subtree rides along,
  /// exactly like migrate() but through the cell placement path).
  void replaceHost(NodeId node);

  int targetRings() const;

  /// Journal a node's structural change (first touch per epoch only).
  void markChanged(NodeId node);

  SessionOptions options_;
  PolarGrid grid_;
  std::vector<Host> hosts_;          // index = session id; 0 = source
  std::vector<std::vector<NodeId>> cellMembers_;  // by heap id
  std::vector<NodeId> cellRep_;                   // by heap id
  std::int64_t liveCount_ = 1;
  std::int64_t lastRegridCount_ = 1;
  std::int64_t undetectedCrashes_ = 0;
  std::int64_t parkedCount_ = 0;
  bool shedOptionalWork_ = false;
  std::vector<NodeId> crashedPending_;
  // Change journal: epoch-stamped so clearChanges() is O(1) — a node's
  // stamp matching changeEpoch_ means it is already in changedNodes_.
  bool journalOn_ = false;
  bool changeOverflow_ = false;
  std::uint32_t changeEpoch_ = 1;
  std::vector<std::uint32_t> changeStamp_;  ///< by session id
  std::vector<NodeId> changedNodes_;
  SessionStats stats_;
};

}  // namespace omt
