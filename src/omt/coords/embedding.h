// Network-coordinate embeddings: recover Euclidean host coordinates from
// measured delays.
//
// Two embedders, mirroring the approaches the paper cites for producing its
// input coordinates:
//  * GNP-style landmark embedding (Ng & Zhang [12]): a small set of
//    landmarks measures all pairwise delays and solves for its own
//    coordinates by minimising the squared relative error (Nelder–Mead);
//    every other host then measures only the landmarks and solves a small
//    per-host problem.
//  * Vivaldi-style spring relaxation: every host iteratively nudges its
//    coordinate along the error gradient against randomly sampled
//    neighbours — fully decentralised, no landmarks.
//
// embedGnp/embedVivaldi recover coordinates *up to an isometry* of the
// underlying space — which is all the tree algorithms need, since they
// depend only on inter-point distances.
#pragma once

#include <cstdint>
#include <vector>

#include "omt/coords/delay_model.h"
#include "omt/geometry/point.h"
#include "omt/opt/nelder_mead.h"

namespace omt {

struct GnpOptions {
  int dim = 2;            ///< embedding dimension
  int landmarks = 8;      ///< number of landmark hosts (>= dim + 1)
  std::uint64_t seed = 1; ///< landmark choice + optimizer starts
  NelderMeadOptions optimizer;
};

struct EmbeddingResult {
  std::vector<Point> coords;     ///< one per host
  double landmarkObjective = 0.0;///< residual of the landmark fit
  std::vector<NodeId> landmarks; ///< hosts used as landmarks (GNP only)
  /// Per-host height term (Vivaldi height-vector model): estimated delay =
  /// ||x_a - x_b|| + h_a + h_b. Empty when the embedding has no heights.
  std::vector<double> heights;
};

/// GNP-style embedding of every host in `model`.
EmbeddingResult embedGnp(const DelayModel& model, const GnpOptions& options);

struct VivaldiOptions {
  int dim = 2;
  int rounds = 64;           ///< relaxation sweeps over all hosts
  int neighborsPerRound = 8; ///< random probes per host per sweep
  double timestep = 0.25;    ///< fraction of the error moved per update
  std::uint64_t seed = 1;
  /// Height-vector variant (Dabek et al.): each host carries a
  /// non-negative height modelling its access-link delay, added to every
  /// estimated path. Fits models with a constant delay floor far better
  /// than a pure Euclidean embedding can.
  bool useHeight = false;
};

/// Vivaldi-style decentralised embedding.
EmbeddingResult embedVivaldi(const DelayModel& model,
                             const VivaldiOptions& options);

struct EmbeddingError {
  double meanRelative = 0.0;   ///< mean |est - true| / true over sampled pairs
  double medianRelative = 0.0;
  double maxRelative = 0.0;
};

/// Relative embedding error over `samplePairs` random host pairs (or all
/// pairs if n*(n-1)/2 <= samplePairs). `heights` is empty for pure
/// Euclidean embeddings, else one height per host (added to both ends of
/// every estimated path).
EmbeddingError embeddingError(const DelayModel& model,
                              std::span<const Point> coords,
                              std::int64_t samplePairs, std::uint64_t seed,
                              std::span<const double> heights = {});

/// Embed with GNP at each dimension in [minDim, maxDim] and return the
/// dimension with the smallest median relative error — the model-selection
/// step of the paper's ref [12], which found 3+ dimensions necessary for
/// Internet delays.
int chooseEmbeddingDimension(const DelayModel& model, int minDim, int maxDim,
                             const GnpOptions& base);

}  // namespace omt
