#include "omt/coords/geo.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "omt/common/error.h"

namespace omt {
namespace {

constexpr double kDegToRad = std::numbers::pi / 180.0;

void checkPosition(const GeoPosition& p) {
  OMT_CHECK(p.latitudeDeg >= -90.0 && p.latitudeDeg <= 90.0,
            "latitude outside [-90, 90]");
  OMT_CHECK(p.longitudeDeg >= -180.0 && p.longitudeDeg <= 180.0,
            "longitude outside [-180, 180]");
}

double wrapLongitude(double lonDeg) {
  while (lonDeg > 180.0) lonDeg -= 360.0;
  while (lonDeg < -180.0) lonDeg += 360.0;
  return lonDeg;
}

}  // namespace

double geodesicKm(const GeoPosition& a, const GeoPosition& b) {
  checkPosition(a);
  checkPosition(b);
  const double lat1 = a.latitudeDeg * kDegToRad;
  const double lat2 = b.latitudeDeg * kDegToRad;
  const double dLat = (b.latitudeDeg - a.latitudeDeg) * kDegToRad;
  const double dLon = (b.longitudeDeg - a.longitudeDeg) * kDegToRad;
  const double s1 = std::sin(dLat / 2.0);
  const double s2 = std::sin(dLon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusKm *
         std::asin(std::min(1.0, std::sqrt(h)));
}

Point projectToPlane(const GeoPosition& position,
                     const GeoPosition& reference) {
  checkPosition(position);
  checkPosition(reference);
  const double dLon =
      wrapLongitude(position.longitudeDeg - reference.longitudeDeg) *
      kDegToRad;
  const double dLat =
      (position.latitudeDeg - reference.latitudeDeg) * kDegToRad;
  return Point{kEarthRadiusKm * dLon *
                   std::cos(reference.latitudeDeg * kDegToRad),
               kEarthRadiusKm * dLat};
}

GeoDelayModel::GeoDelayModel(std::vector<GeoPosition> hosts, double kmPerMs,
                             double accessFloorMs)
    : hosts_(std::move(hosts)),
      kmPerMs_(kmPerMs),
      accessFloorMs_(accessFloorMs) {
  OMT_CHECK(!hosts_.empty(), "empty host set");
  OMT_CHECK(kmPerMs > 0.0, "propagation speed must be positive");
  OMT_CHECK(accessFloorMs >= 0.0, "negative access floor");
  for (const GeoPosition& h : hosts_) checkPosition(h);
}

double GeoDelayModel::delay(NodeId a, NodeId b) const {
  OMT_CHECK(a >= 0 && a < size() && b >= 0 && b < size(),
            "node id out of range");
  if (a == b) return 0.0;
  return accessFloorMs_ +
         geodesicKm(hosts_[static_cast<std::size_t>(a)],
                    hosts_[static_cast<std::size_t>(b)]) /
             kmPerMs_;
}

std::vector<GeoPosition> sampleWorldHosts(std::int64_t n,
                                          const WorldOptions& options) {
  OMT_CHECK(n >= 1, "need at least one host");
  OMT_CHECK(options.cities >= 1, "need at least one city");
  OMT_CHECK(options.citySpreadDeg > 0.0, "city spread must be positive");
  OMT_CHECK(options.populationSkew >= 0.0, "negative population skew");
  OMT_CHECK(options.maxAbsLatitudeDeg > 0.0 &&
                options.maxAbsLatitudeDeg <= 90.0,
            "latitude band outside (0, 90]");

  Rng rng(options.seed);
  // City centers: uniform on the sphere band (uniform in sin(latitude)).
  std::vector<GeoPosition> cities;
  const double sinBand = std::sin(options.maxAbsLatitudeDeg * kDegToRad);
  for (int c = 0; c < options.cities; ++c) {
    GeoPosition city;
    city.latitudeDeg =
        std::asin(rng.uniform(-sinBand, sinBand)) / kDegToRad;
    city.longitudeDeg = rng.uniform(-180.0, 180.0);
    cities.push_back(city);
  }
  // Zipf-like weights: city rank r gets weight 1 / (r+1)^skew.
  std::vector<double> cumulative;
  double total = 0.0;
  for (int c = 0; c < options.cities; ++c) {
    total += 1.0 / std::pow(static_cast<double>(c + 1),
                            options.populationSkew);
    cumulative.push_back(total);
  }

  std::vector<GeoPosition> hosts;
  hosts.reserve(static_cast<std::size_t>(n));
  while (hosts.size() < static_cast<std::size_t>(n)) {
    const double u = rng.uniform(0.0, total);
    const std::size_t city = static_cast<std::size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    GeoPosition host = cities[std::min(city, cities.size() - 1)];
    host.latitudeDeg += options.citySpreadDeg * rng.gaussian();
    host.longitudeDeg =
        wrapLongitude(host.longitudeDeg +
                      options.citySpreadDeg * rng.gaussian());
    if (std::abs(host.latitudeDeg) > options.maxAbsLatitudeDeg) continue;
    hosts.push_back(host);
  }
  hosts[0] = cities[0];  // the source sits in the largest metro
  return hosts;
}

std::vector<Point> projectAll(std::span<const GeoPosition> hosts,
                              NodeId reference) {
  OMT_CHECK(!hosts.empty(), "empty host set");
  OMT_CHECK(reference >= 0 &&
                reference < static_cast<NodeId>(hosts.size()),
            "reference index out of range");
  std::vector<Point> points;
  points.reserve(hosts.size());
  for (const GeoPosition& h : hosts)
    points.push_back(
        projectToPlane(h, hosts[static_cast<std::size_t>(reference)]));
  return points;
}

}  // namespace omt
