// Synthetic "true delay" models.
//
// The paper assumes hosts have already been mapped to Euclidean points so
// that unicast delays are approximated by distances (via GNP [12] or
// geographic coordinates [16], [10]), and names the interaction between
// mapping error and tree quality as future work. We cannot measure the 2004
// Internet, so this module substitutes the closest synthetic equivalent: a
// ground-truth delay matrix generated from hidden host positions with a
// controllable multiplicative lognormal stretch (non-Euclidean noise, e.g.
// access-link and routing-inflation effects). The embedding pipeline
// (embedding.h) then has to *recover* coordinates from these delays, just
// as GNP would, and trees built on recovered coordinates are evaluated
// against the true delays.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "omt/common/types.h"
#include "omt/geometry/point.h"
#include "omt/tree/multicast_tree.h"

namespace omt {

/// Symmetric pairwise delays between n hosts. delay(a, a) == 0.
class DelayModel {
 public:
  virtual ~DelayModel() = default;
  virtual NodeId size() const = 0;
  virtual double delay(NodeId a, NodeId b) const = 0;
};

/// Delays exactly equal to Euclidean distance between the given points
/// (the paper's idealised model).
class EuclideanDelayModel final : public DelayModel {
 public:
  explicit EuclideanDelayModel(std::vector<Point> points);

  NodeId size() const override {
    return static_cast<NodeId>(points_.size());
  }
  double delay(NodeId a, NodeId b) const override;

  std::span<const Point> points() const { return points_; }

 private:
  std::vector<Point> points_;
};

/// Euclidean distance times a per-pair lognormal stretch factor
/// exp(N(mu, sigma^2)), deterministic in (seed, a, b) and symmetric; no
/// O(n^2) storage. sigma = 0 and mu = 0 reduce to the Euclidean model.
/// `minDelay` adds a constant floor modelling last-hop latency.
class NoisyEuclideanDelayModel final : public DelayModel {
 public:
  NoisyEuclideanDelayModel(std::vector<Point> points, double mu, double sigma,
                           double minDelay, std::uint64_t seed);

  NodeId size() const override {
    return static_cast<NodeId>(points_.size());
  }
  double delay(NodeId a, NodeId b) const override;

  std::span<const Point> points() const { return points_; }

 private:
  std::vector<Point> points_;
  double mu_;
  double sigma_;
  double minDelay_;
  std::uint64_t seed_;
};

/// Explicit matrix model (row-major, size n*n); validates symmetry and a
/// zero diagonal. For small hand-built instances in tests.
class MatrixDelayModel final : public DelayModel {
 public:
  MatrixDelayModel(NodeId n, std::vector<double> matrix);

  NodeId size() const override { return n_; }
  double delay(NodeId a, NodeId b) const override;

 private:
  NodeId n_;
  std::vector<double> matrix_;
};

/// Max and mean root-to-node delay of `tree` when every edge costs its
/// TRUE delay under `model` (not the embedded distance). This is the
/// quantity a deployment actually experiences.
struct TrueDelayMetrics {
  double maxDelay = 0.0;
  double meanDelay = 0.0;
};
TrueDelayMetrics evaluateUnderModel(const MulticastTree& tree,
                                    const DelayModel& model);

/// Triangle-inequality violations of a delay model — the paper's closing
/// caveat ("there is usually a discrepancy between the Euclidean distances
/// and the actual transmission delays") made quantitative. A triple
/// (a, b, c) violates when delay(a, c) > delay(a, b) + delay(b, c); real
/// Internet delay matrices violate a noticeable fraction, and no Euclidean
/// embedding can represent a violating triple exactly.
struct TriangleViolationStats {
  double violatingFraction = 0.0;  ///< share of sampled triples violating
  double meanSeverity = 0.0;       ///< mean of (longSide/detour - 1) over violators
  double maxSeverity = 0.0;
};
TriangleViolationStats measureTriangleViolations(const DelayModel& model,
                                                 std::int64_t sampleTriples,
                                                 std::uint64_t seed);

}  // namespace omt
