// Geographic host mapping — the paper's second mapping option.
//
// Where GNP ([12]) measures delays, the geographic approach of Shi &
// Turner [16] and Liebeherr & Nahas [10] simply places each host at its
// latitude/longitude and lets great-circle distance stand in for delay.
// This module provides that pipeline: haversine geodesics, a local
// equirectangular projection onto a 2D plane (what a planar overlay
// algorithm consumes), a propagation-delay model (distance over the speed
// of light in fiber, plus a last-hop floor), and a synthetic
// population-weighted "world cities" host generator for realistic global
// workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "omt/coords/delay_model.h"
#include "omt/geometry/point.h"
#include "omt/random/rng.h"

namespace omt {

/// A geographic position in degrees; latitude in [-90, 90], longitude in
/// [-180, 180].
struct GeoPosition {
  double latitudeDeg = 0.0;
  double longitudeDeg = 0.0;
};

/// Mean Earth radius, km.
inline constexpr double kEarthRadiusKm = 6371.0;

/// Great-circle distance in km (haversine formula).
double geodesicKm(const GeoPosition& a, const GeoPosition& b);

/// Equirectangular projection onto a plane tangent near `reference`:
/// x = R * dLon * cos(refLat), y = R * dLat (km). Accurate for regional
/// extents; distorts at antipodal spans like every planar projection.
Point projectToPlane(const GeoPosition& position,
                     const GeoPosition& reference);

/// Delays from geography: geodesic distance at `kmPerMs` (default: ~200 km
/// of fiber per millisecond, i.e. 2/3 c) plus a constant access floor.
/// delay() returns milliseconds.
class GeoDelayModel final : public DelayModel {
 public:
  GeoDelayModel(std::vector<GeoPosition> hosts, double kmPerMs = 200.0,
                double accessFloorMs = 2.0);

  NodeId size() const override {
    return static_cast<NodeId>(hosts_.size());
  }
  double delay(NodeId a, NodeId b) const override;

  std::span<const GeoPosition> hosts() const { return hosts_; }

 private:
  std::vector<GeoPosition> hosts_;
  double kmPerMs_;
  double accessFloorMs_;
};

struct WorldOptions {
  int cities = 40;              ///< number of metro areas
  double citySpreadDeg = 1.5;   ///< Gaussian spread of hosts around a city
  /// Zipf-like skew of city populations (0 = uniform; 1 = classic Zipf).
  double populationSkew = 1.0;
  std::uint64_t seed = 1;
  /// Latitude band hosts live in (avoids projection blow-up at the poles).
  double maxAbsLatitudeDeg = 65.0;
};

/// `n` hosts in population-weighted synthetic metro areas spread over the
/// globe. The first host is re-centered on the largest city (a natural
/// source placement).
std::vector<GeoPosition> sampleWorldHosts(std::int64_t n,
                                          const WorldOptions& options);

/// Project all hosts onto the plane tangent at hosts[reference].
std::vector<Point> projectAll(std::span<const GeoPosition> hosts,
                              NodeId reference);

}  // namespace omt
