#include "omt/coords/embedding.h"

#include <algorithm>
#include <cmath>

#include "omt/common/error.h"
#include "omt/random/rng.h"

namespace omt {
namespace {

/// Squared relative error between an estimated and a true delay; falls back
/// to absolute error for zero true delays (coincident hosts).
double pairError(double estimated, double truth) {
  const double err = estimated - truth;
  if (truth > kGeomEps) {
    const double rel = err / truth;
    return rel * rel;
  }
  return err * err;
}

Point pointFromSlice(std::span<const double> vars, std::size_t index,
                     int dim) {
  Point p(dim);
  for (int c = 0; c < dim; ++c)
    p[c] = vars[index * static_cast<std::size_t>(dim) +
                static_cast<std::size_t>(c)];
  return p;
}

std::vector<NodeId> chooseLandmarks(NodeId n, int count, Rng& rng) {
  // Reservoir-free selection: shuffle ids and take a prefix. n is small in
  // every embedding use case (the per-host stage is O(n * landmarks)).
  std::vector<NodeId> ids(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) ids[static_cast<std::size_t>(i)] = i;
  for (std::size_t i = ids.size(); i > 1; --i)
    std::swap(ids[i - 1], ids[rng.uniformInt(i)]);
  ids.resize(static_cast<std::size_t>(count));
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

EmbeddingResult embedGnp(const DelayModel& model, const GnpOptions& options) {
  const NodeId n = model.size();
  OMT_CHECK(options.dim >= 1 && options.dim <= kMaxDim,
            "embedding dimension out of range");
  OMT_CHECK(options.landmarks >= options.dim + 1,
            "need at least dim + 1 landmarks");
  OMT_CHECK(n >= options.landmarks, "fewer hosts than landmarks");
  const int dim = options.dim;
  const auto L = static_cast<std::size_t>(options.landmarks);

  Rng rng(options.seed);
  EmbeddingResult result;
  result.landmarks = chooseLandmarks(n, options.landmarks, rng);

  // Stage 1: landmark coordinates minimising squared relative error over
  // all landmark pairs.
  std::vector<double> x0(L * static_cast<std::size_t>(dim));
  for (double& v : x0) v = rng.uniform(-0.5, 0.5);
  const Objective landmarkObjective = [&](std::span<const double> vars) {
    double total = 0.0;
    for (std::size_t i = 0; i < L; ++i) {
      const Point pi = pointFromSlice(vars, i, dim);
      for (std::size_t j = i + 1; j < L; ++j) {
        const Point pj = pointFromSlice(vars, j, dim);
        total += pairError(distance(pi, pj),
                           model.delay(result.landmarks[i],
                                       result.landmarks[j]));
      }
    }
    return total;
  };
  const NelderMeadResult landmarkFit =
      minimizeNelderMead(landmarkObjective, x0, options.optimizer);
  result.landmarkObjective = landmarkFit.value;

  std::vector<Point> landmarkCoords(L, Point(dim));
  Point centroid(dim);
  for (std::size_t i = 0; i < L; ++i) {
    landmarkCoords[i] = pointFromSlice(landmarkFit.x, i, dim);
    centroid += landmarkCoords[i];
  }
  centroid /= static_cast<double>(L);

  // Stage 2: every other host fits its own coordinate against the
  // landmarks only.
  result.coords.assign(static_cast<std::size_t>(n), Point(dim));
  std::vector<std::int64_t> landmarkIndex(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < L; ++i) {
    landmarkIndex[static_cast<std::size_t>(result.landmarks[i])] =
        static_cast<std::int64_t>(i);
    result.coords[static_cast<std::size_t>(result.landmarks[i])] =
        landmarkCoords[i];
  }
  NelderMeadOptions hostOptions = options.optimizer;
  hostOptions.maxIterations = std::max(400, options.optimizer.maxIterations / 4);
  // Host fits are tiny (dim variables) but non-convex — a host can land on
  // the wrong side of the landmark constellation. Multi-start from the
  // centroid and from the nearest landmark's neighbourhood, keep the best.
  constexpr int kHostStarts = 4;
  for (NodeId h = 0; h < n; ++h) {
    if (landmarkIndex[static_cast<std::size_t>(h)] >= 0) continue;
    const Objective hostObjective = [&](std::span<const double> vars) {
      const Point p = pointFromSlice(vars, 0, dim);
      double total = 0.0;
      for (std::size_t i = 0; i < L; ++i) {
        total += pairError(distance(p, landmarkCoords[i]),
                           model.delay(h, result.landmarks[i]));
      }
      return total;
    };
    std::size_t nearestLandmark = 0;
    for (std::size_t i = 1; i < L; ++i) {
      if (model.delay(h, result.landmarks[i]) <
          model.delay(h, result.landmarks[nearestLandmark]))
        nearestLandmark = i;
    }
    double bestValue = kInf;
    for (int attempt = 0; attempt < kHostStarts; ++attempt) {
      const Point& anchor =
          attempt % 2 == 0 ? centroid : landmarkCoords[nearestLandmark];
      const double jitter = attempt < 2 ? 0.1 : 0.6;
      std::vector<double> start(static_cast<std::size_t>(dim));
      for (int c = 0; c < dim; ++c) {
        start[static_cast<std::size_t>(c)] =
            anchor[c] + rng.uniform(-jitter, jitter);
      }
      const NelderMeadResult fit =
          minimizeNelderMead(hostObjective, start, hostOptions);
      if (fit.value < bestValue) {
        bestValue = fit.value;
        result.coords[static_cast<std::size_t>(h)] =
            pointFromSlice(fit.x, 0, dim);
      }
    }
  }
  return result;
}

EmbeddingResult embedVivaldi(const DelayModel& model,
                             const VivaldiOptions& options) {
  const NodeId n = model.size();
  OMT_CHECK(options.dim >= 1 && options.dim <= kMaxDim,
            "embedding dimension out of range");
  OMT_CHECK(n >= 2, "need at least two hosts");
  OMT_CHECK(options.rounds >= 1 && options.neighborsPerRound >= 1,
            "rounds and neighbours must be positive");
  OMT_CHECK(options.timestep > 0.0 && options.timestep <= 1.0,
            "timestep outside (0, 1]");
  const int dim = options.dim;

  Rng rng(options.seed);
  EmbeddingResult result;
  result.coords.assign(static_cast<std::size_t>(n), Point(dim));
  for (Point& p : result.coords) {
    for (int c = 0; c < dim; ++c) p[c] = rng.uniform(-0.1, 0.1);
  }
  if (options.useHeight)
    result.heights.assign(static_cast<std::size_t>(n), 0.0);

  for (int round = 0; round < options.rounds; ++round) {
    // Cool the timestep as rounds progress (Vivaldi's adaptive delta,
    // simplified to a schedule).
    const double dt = options.timestep /
                      (1.0 + static_cast<double>(round) /
                                 static_cast<double>(options.rounds));
    for (NodeId i = 0; i < n; ++i) {
      Point& xi = result.coords[static_cast<std::size_t>(i)];
      for (int probe = 0; probe < options.neighborsPerRound; ++probe) {
        NodeId j =
            static_cast<NodeId>(rng.uniformInt(static_cast<std::uint64_t>(n)));
        if (j == i) continue;
        const Point& xj = result.coords[static_cast<std::size_t>(j)];
        Point dir = xi - xj;
        double len = norm(dir);
        if (len <= kGeomEps) {
          // Coincident estimates: pick a random direction to separate.
          for (int c = 0; c < dim; ++c) dir[c] = rng.gaussian();
          len = norm(dir);
          if (len <= kGeomEps) continue;
        }
        dir /= len;
        const double truth = model.delay(i, j);
        if (options.useHeight) {
          double& hi = result.heights[static_cast<std::size_t>(i)];
          const double hj = result.heights[static_cast<std::size_t>(j)];
          const double error = truth - (len + hi + hj);
          // Split the correction between the planar part and the height,
          // keeping heights non-negative (they model one-way access cost).
          xi += dir * (dt * error * 0.5);
          hi = std::max(0.0, hi + dt * error * 0.25);
        } else {
          xi += dir * (dt * (truth - len));
        }
      }
    }
  }
  return result;
}

int chooseEmbeddingDimension(const DelayModel& model, int minDim, int maxDim,
                             const GnpOptions& base) {
  OMT_CHECK(minDim >= 1 && minDim <= maxDim && maxDim <= kMaxDim,
            "invalid dimension range");
  int bestDim = minDim;
  double bestError = kInf;
  for (int dim = minDim; dim <= maxDim; ++dim) {
    GnpOptions options = base;
    options.dim = dim;
    options.landmarks = std::max(base.landmarks, dim + 1);
    const EmbeddingResult embedding = embedGnp(model, options);
    const double error =
        embeddingError(model, embedding.coords, 5000, base.seed + 99)
            .medianRelative;
    if (error < bestError) {
      bestError = error;
      bestDim = dim;
    }
  }
  return bestDim;
}

EmbeddingError embeddingError(const DelayModel& model,
                              std::span<const Point> coords,
                              std::int64_t samplePairs, std::uint64_t seed,
                              std::span<const double> heights) {
  const NodeId n = model.size();
  OMT_CHECK(coords.size() == static_cast<std::size_t>(n),
            "one coordinate per host required");
  OMT_CHECK(heights.empty() || heights.size() == coords.size(),
            "one height per host required (or none)");
  OMT_CHECK(samplePairs >= 1, "need at least one sampled pair");

  std::vector<double> relative;
  auto consider = [&](NodeId a, NodeId b) {
    const double truth = model.delay(a, b);
    if (truth <= kGeomEps) return;
    double est = distance(coords[static_cast<std::size_t>(a)],
                          coords[static_cast<std::size_t>(b)]);
    if (!heights.empty()) {
      est += heights[static_cast<std::size_t>(a)] +
             heights[static_cast<std::size_t>(b)];
    }
    relative.push_back(std::abs(est - truth) / truth);
  };

  const std::int64_t allPairs = n * (n - 1) / 2;
  if (allPairs <= samplePairs) {
    for (NodeId a = 0; a < n; ++a) {
      for (NodeId b = a + 1; b < n; ++b) consider(a, b);
    }
  } else {
    Rng rng(seed);
    for (std::int64_t s = 0; s < samplePairs; ++s) {
      const auto a = static_cast<NodeId>(rng.uniformInt(
          static_cast<std::uint64_t>(n)));
      auto b = static_cast<NodeId>(rng.uniformInt(
          static_cast<std::uint64_t>(n - 1)));
      if (b >= a) ++b;
      consider(a, b);
    }
  }

  EmbeddingError out;
  if (relative.empty()) return out;
  double sum = 0.0;
  for (const double r : relative) {
    sum += r;
    out.maxRelative = std::max(out.maxRelative, r);
  }
  out.meanRelative = sum / static_cast<double>(relative.size());
  const std::size_t mid = relative.size() / 2;
  std::nth_element(relative.begin(), relative.begin() + static_cast<std::ptrdiff_t>(mid),
                   relative.end());
  out.medianRelative = relative[mid];
  return out;
}

}  // namespace omt
