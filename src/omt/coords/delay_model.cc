#include "omt/coords/delay_model.h"

#include <algorithm>
#include <cmath>

#include "omt/common/error.h"
#include "omt/random/rng.h"

namespace omt {

EuclideanDelayModel::EuclideanDelayModel(std::vector<Point> points)
    : points_(std::move(points)) {
  OMT_CHECK(!points_.empty(), "empty point set");
}

double EuclideanDelayModel::delay(NodeId a, NodeId b) const {
  OMT_CHECK(a >= 0 && a < size() && b >= 0 && b < size(),
            "node id out of range");
  return distance(points_[static_cast<std::size_t>(a)],
                  points_[static_cast<std::size_t>(b)]);
}

NoisyEuclideanDelayModel::NoisyEuclideanDelayModel(std::vector<Point> points,
                                                   double mu, double sigma,
                                                   double minDelay,
                                                   std::uint64_t seed)
    : points_(std::move(points)),
      mu_(mu),
      sigma_(sigma),
      minDelay_(minDelay),
      seed_(seed) {
  OMT_CHECK(!points_.empty(), "empty point set");
  OMT_CHECK(sigma >= 0.0, "negative noise sigma");
  OMT_CHECK(minDelay >= 0.0, "negative delay floor");
}

double NoisyEuclideanDelayModel::delay(NodeId a, NodeId b) const {
  OMT_CHECK(a >= 0 && a < size() && b >= 0 && b < size(),
            "node id out of range");
  if (a == b) return 0.0;
  const double base = distance(points_[static_cast<std::size_t>(a)],
                               points_[static_cast<std::size_t>(b)]);
  // Symmetric deterministic noise: hash (seed, min, max) into a stretch.
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  std::uint64_t state = seed_ ^ (lo * 0x9E3779B97F4A7C15ULL) ^
                        (hi * 0xC2B2AE3D27D4EB4FULL);
  Rng rng(splitMix64(state));
  const double stretch = rng.lognormal(mu_, sigma_);
  return minDelay_ + base * stretch;
}

MatrixDelayModel::MatrixDelayModel(NodeId n, std::vector<double> matrix)
    : n_(n), matrix_(std::move(matrix)) {
  OMT_CHECK(n >= 1, "empty model");
  OMT_CHECK(matrix_.size() == static_cast<std::size_t>(n) *
                                  static_cast<std::size_t>(n),
            "matrix size must be n*n");
  for (NodeId a = 0; a < n_; ++a) {
    OMT_CHECK(matrix_[static_cast<std::size_t>(a * n_ + a)] == 0.0,
              "diagonal must be zero");
    for (NodeId b = 0; b < n_; ++b) {
      const double ab = matrix_[static_cast<std::size_t>(a * n_ + b)];
      const double ba = matrix_[static_cast<std::size_t>(b * n_ + a)];
      OMT_CHECK(ab >= 0.0, "delays must be non-negative");
      OMT_CHECK(ab == ba, "delay matrix must be symmetric");
    }
  }
}

double MatrixDelayModel::delay(NodeId a, NodeId b) const {
  OMT_CHECK(a >= 0 && a < n_ && b >= 0 && b < n_, "node id out of range");
  return matrix_[static_cast<std::size_t>(a * n_ + b)];
}

TriangleViolationStats measureTriangleViolations(const DelayModel& model,
                                                 std::int64_t sampleTriples,
                                                 std::uint64_t seed) {
  OMT_CHECK(sampleTriples >= 1, "need at least one sampled triple");
  const NodeId n = model.size();
  OMT_CHECK(n >= 3, "need at least three hosts");

  Rng rng(seed);
  TriangleViolationStats stats;
  std::int64_t violations = 0;
  double severitySum = 0.0;
  for (std::int64_t s = 0; s < sampleTriples; ++s) {
    NodeId a = static_cast<NodeId>(rng.uniformInt(static_cast<std::uint64_t>(n)));
    NodeId b = static_cast<NodeId>(rng.uniformInt(static_cast<std::uint64_t>(n)));
    NodeId c = static_cast<NodeId>(rng.uniformInt(static_cast<std::uint64_t>(n)));
    if (a == b || b == c || a == c) {
      --s;  // resample degenerate triples
      continue;
    }
    const double direct = model.delay(a, c);
    const double detour = model.delay(a, b) + model.delay(b, c);
    if (direct > detour + kGeomEps && detour > kGeomEps) {
      ++violations;
      const double severity = direct / detour - 1.0;
      severitySum += severity;
      stats.maxSeverity = std::max(stats.maxSeverity, severity);
    }
  }
  stats.violatingFraction =
      static_cast<double>(violations) / static_cast<double>(sampleTriples);
  stats.meanSeverity =
      violations > 0 ? severitySum / static_cast<double>(violations) : 0.0;
  return stats;
}

TrueDelayMetrics evaluateUnderModel(const MulticastTree& tree,
                                    const DelayModel& model) {
  OMT_CHECK(tree.finalized(), "tree must be finalized");
  OMT_CHECK(tree.size() == model.size(), "tree/model size mismatch");
  std::vector<double> delay(static_cast<std::size_t>(tree.size()), 0.0);
  TrueDelayMetrics out;
  double sum = 0.0;
  for (const NodeId v : tree.bfsOrder()) {
    if (v == tree.root()) continue;
    const NodeId p = tree.parentOf(v);
    delay[static_cast<std::size_t>(v)] =
        delay[static_cast<std::size_t>(p)] + model.delay(p, v);
    out.maxDelay = std::max(out.maxDelay, delay[static_cast<std::size_t>(v)]);
    sum += delay[static_cast<std::size_t>(v)];
  }
  out.meanDelay = tree.size() > 1
                      ? sum / static_cast<double>(tree.size() - 1)
                      : 0.0;
  return out;
}

}  // namespace omt
