// Derivative-free minimisation (Nelder–Mead downhill simplex).
//
// Used by the GNP-style network-coordinate embedder (omt/coords), which —
// like the original GNP system the paper cites as its source of host
// coordinates — fits coordinates by minimising a sum of squared relative
// delay errors, an objective that is cheap to evaluate but awkward to
// differentiate through the relative-error weighting.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace omt {

using Objective = std::function<double(std::span<const double>)>;

struct NelderMeadOptions {
  int maxIterations = 4000;
  /// Stop when the simplex's value spread falls below this.
  double tolerance = 1e-10;
  /// Initial simplex step per coordinate.
  double initialStep = 0.25;
};

struct NelderMeadResult {
  std::vector<double> x;
  double value = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Minimise `f` starting from `x0` (dimension = x0.size() >= 1).
NelderMeadResult minimizeNelderMead(const Objective& f,
                                    std::span<const double> x0,
                                    const NelderMeadOptions& options = {});

}  // namespace omt
