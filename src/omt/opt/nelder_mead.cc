#include "omt/opt/nelder_mead.h"

#include <algorithm>
#include <cmath>

#include "omt/common/error.h"

namespace omt {

NelderMeadResult minimizeNelderMead(const Objective& f,
                                    std::span<const double> x0,
                                    const NelderMeadOptions& options) {
  const std::size_t n = x0.size();
  OMT_CHECK(n >= 1, "objective needs at least one variable");
  OMT_CHECK(options.maxIterations >= 1, "iteration budget must be positive");

  // Standard coefficients: reflection, expansion, contraction, shrink.
  constexpr double kAlpha = 1.0;
  constexpr double kGamma = 2.0;
  constexpr double kRho = 0.5;
  constexpr double kSigma = 0.5;

  std::vector<std::vector<double>> simplex(n + 1,
                                           std::vector<double>(x0.begin(),
                                                               x0.end()));
  for (std::size_t i = 0; i < n; ++i) simplex[i + 1][i] += options.initialStep;
  std::vector<double> value(n + 1);
  for (std::size_t i = 0; i <= n; ++i) value[i] = f(simplex[i]);

  std::vector<std::size_t> rank(n + 1);
  std::vector<double> centroid(n), candidate(n);
  NelderMeadResult result;

  for (result.iterations = 0; result.iterations < options.maxIterations;
       ++result.iterations) {
    // Order vertices by value.
    for (std::size_t i = 0; i <= n; ++i) rank[i] = i;
    std::sort(rank.begin(), rank.end(),
              [&](std::size_t a, std::size_t b) { return value[a] < value[b]; });
    const std::size_t best = rank[0];
    const std::size_t worst = rank[n];
    const std::size_t secondWorst = rank[n - 1];

    if (std::abs(value[worst] - value[best]) <= options.tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t j = 0; j < n; ++j) centroid[j] += simplex[i][j];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double t) {
      for (std::size_t j = 0; j < n; ++j)
        candidate[j] = centroid[j] + t * (centroid[j] - simplex[worst][j]);
      return f(candidate);
    };

    const double reflected = blend(kAlpha);
    if (reflected < value[best]) {
      const std::vector<double> reflectedPoint = candidate;
      const double expanded = blend(kGamma);
      if (expanded < reflected) {
        simplex[worst] = candidate;
        value[worst] = expanded;
      } else {
        simplex[worst] = reflectedPoint;
        value[worst] = reflected;
      }
      continue;
    }
    if (reflected < value[secondWorst]) {
      simplex[worst] = candidate;
      value[worst] = reflected;
      continue;
    }
    const double contracted = blend(-kRho);
    if (contracted < value[worst]) {
      simplex[worst] = candidate;
      value[worst] = contracted;
      continue;
    }
    // Shrink toward the best vertex.
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == best) continue;
      for (std::size_t j = 0; j < n; ++j) {
        simplex[i][j] =
            simplex[best][j] + kSigma * (simplex[i][j] - simplex[best][j]);
      }
      value[i] = f(simplex[i]);
    }
  }

  const auto bestIt = std::min_element(value.begin(), value.end());
  result.value = *bestIt;
  result.x = simplex[static_cast<std::size_t>(bestIt - value.begin())];
  return result;
}

}  // namespace omt
