#include "omt/rpc/channel.h"

#include "omt/common/error.h"

namespace omt {
namespace {

bool inside(const Point& p, const Point& center, double radius) {
  return distance(p, center) <= radius;
}

}  // namespace

ControlChannel::ControlChannel(const ControlChannelOptions& options)
    : options_(options), rng_(deriveSeed(options.seed, 0x6368616eULL)) {
  OMT_CHECK(options.lossRate >= 0.0 && options.lossRate <= 1.0,
            "loss rate outside [0, 1]");
  OMT_CHECK(options.latency >= 0.0, "latency must be non-negative");
  OMT_CHECK(options.baseTimeout > 0.0, "base timeout must be positive");
  OMT_CHECK(options.backoffFactor >= 1.0, "backoff factor must be >= 1");
  OMT_CHECK(options.maxAttempts >= 1, "need at least one attempt");
}

bool ControlChannel::roll() { return roll(0.0); }

bool ControlChannel::roll(double extraLoss) {
  ++stats_.messages;
  ++stats_.transmissions;
  const double effective =
      1.0 - (1.0 - options_.lossRate) * (1.0 - extraLoss);
  if (rng_.uniform() < effective) {
    ++stats_.losses;
    return false;
  }
  return true;
}

ControlChannel::Outcome ControlChannel::send() {
  ++stats_.messages;
  Outcome outcome;
  double timeout = options_.baseTimeout;
  for (int attempt = 1; attempt <= options_.maxAttempts; ++attempt) {
    ++stats_.transmissions;
    outcome.attempts = attempt;
    if (rng_.uniform() >= options_.lossRate) {
      outcome.delivered = true;
      outcome.elapsed += options_.latency;
      return outcome;
    }
    ++stats_.losses;
    if (attempt < options_.maxAttempts) {
      outcome.elapsed += timeout;  // wait out the retransmission timer
      timeout *= options_.backoffFactor;
    }
  }
  ++stats_.expiries;
  outcome.elapsed += timeout;  // the final timer expires with no answer
  return outcome;
}

DisruptionSchedule::DisruptionSchedule(std::vector<DisruptionWindow> windows)
    : windows_(std::move(windows)) {
  for (const DisruptionWindow& w : windows_) {
    OMT_CHECK(w.end >= w.start, "disruption window ends before it starts");
    OMT_CHECK(w.lossBoost >= 0.0 && w.lossBoost <= 1.0,
              "loss boost outside [0, 1]");
    OMT_CHECK(w.extraDelay >= 0.0, "extra delay must be non-negative");
    OMT_CHECK(!w.partition || w.radius > 0.0,
              "partition window needs a positive radius");
  }
}

bool DisruptionSchedule::severed(const Point& a, const Point& b,
                                 double now) const {
  for (const DisruptionWindow& w : windows_) {
    if (!w.partition || now < w.start || now >= w.end) continue;
    if (inside(a, w.center, w.radius) != inside(b, w.center, w.radius))
      return true;
  }
  return false;
}

double DisruptionSchedule::lossBoostAt(double now) const {
  double pass = 1.0;
  for (const DisruptionWindow& w : windows_) {
    if (w.lossBoost <= 0.0 || now < w.start || now >= w.end) continue;
    pass *= 1.0 - w.lossBoost;
  }
  return 1.0 - pass;
}

double DisruptionSchedule::extraDelayAt(double now) const {
  double delay = 0.0;
  for (const DisruptionWindow& w : windows_) {
    if (w.extraDelay <= 0.0 || now < w.start || now >= w.end) continue;
    delay += w.extraDelay;
  }
  return delay;
}

}  // namespace omt
