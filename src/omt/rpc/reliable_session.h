// Message-decomposed protocol operations over the reliable RPC layer.
//
// The OverlaySession executes joins, leaves and repairs as instantaneous
// atomic calls; this driver re-expresses each of them as the sequence of
// individually-fallible messages a deployed overlay would exchange, riding
// the at-most-once RPC layer (omt/rpc/rpc.h):
//
//   join     = admit locally, then an ATTACH handshake (joiner -> backup
//              parent or source). Handshake exhausted -> the host *parks*
//              as a live unattached pending member.
//   leave    = a GOODBYE handshake (leaver -> parent). Exhausted -> the
//              host goes dark anyway; to everyone else it is a silent
//              crash, detected and repaired like one.
//   repair   = a PURGE announcement (reporter -> source), then one ATTACH
//              handshake per orphaned subtree root. A failed announcement
//              leaves the corpse flagged (pendingCrash); failed orphan
//              attaches leave the orphans parked. The shrink-regrid check
//              rides on the completed repair, mirroring repairCrashed().
//   migrate  = park (the goodbye rides the detach) + an ATTACH handshake.
//
// Every degraded end state is *consistent*: degree caps and acyclicity hold,
// and the session accounts for who is parked/pending. The periodic
// **anti-entropy audit** reconciles them: it walks the driver's ledger of
// outstanding operations, cross-checks each belief against the session's
// parent/child ground truth, and re-drives whatever is still wrong —
// re-attaching parked hosts, re-delivering applied-but-unacknowledged ops
// (absorbed by OpId dedup; this is where duplicate deliveries concentrate),
// purging corpses the detector cannot see (a crashed half-joined member has
// no parent lease), and abandoning ledger entries that external healing
// (a regrid, the global sweep) made obsolete.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "omt/protocol/overlay_session.h"
#include "omt/rpc/rpc.h"

namespace omt {

struct DriverStats {
  std::int64_t joinsAttached = 0;   ///< join handshakes that attached
  std::int64_t joinsParked = 0;     ///< joins left parked (no delivery)
  std::int64_t attachCalls = 0;     ///< ATTACH handshakes driven
  std::int64_t attachesCompleted = 0;    ///< applied and acknowledged
  std::int64_t attachesUnconfirmed = 0;  ///< applied, ack lost (audit confirms)
  std::int64_t attachesParked = 0;       ///< request never delivered
  std::int64_t leavesClean = 0;     ///< goodbye delivered
  std::int64_t leavesSilent = 0;    ///< goodbye exhausted -> silent crash
  std::int64_t repairsPurged = 0;   ///< purge announcements applied
  std::int64_t repairsDeferred = 0; ///< purge announcements exhausted
  std::int64_t migrations = 0;
  std::int64_t auditSweeps = 0;
  std::int64_t auditReattaches = 0;   ///< parked hosts re-driven by audits
  std::int64_t auditRepairs = 0;      ///< repairs re-driven by audits
  std::int64_t auditConfirmedOps = 0; ///< unacked ops confirmed by audits
  std::int64_t auditAbandonedOps = 0; ///< obsolete ledger entries dropped
};

class ReliableSessionDriver {
 public:
  /// Both references must outlive the driver.
  ReliableSessionDriver(OverlaySession& session, RpcLayer& rpc);

  struct OpResult {
    bool completed = false;  ///< applied and acknowledged
    bool applied = false;    ///< session mutated (possibly unacknowledged)
    bool degraded = false;   ///< left a parked host / deferred purge behind
    bool silent = false;     ///< a leave that degraded into a silent crash
    double elapsed = 0.0;    ///< simulated time the handshakes consumed
  };

  struct JoinDrive {
    NodeId id = kNoNode;  ///< always admitted, even when left parked
    OpResult result;
  };
  JoinDrive driveJoin(const Point& position, double now);

  /// Drive the ATTACH handshake for a parked host (no-op when the host is
  /// not parked). Re-uses the host's outstanding OpId when its operation
  /// was never applied; mints a fresh one otherwise.
  OpResult driveAttach(NodeId node, double now);

  OpResult driveLeave(NodeId node, double now);

  struct RepairDrive {
    bool purged = false;
    OpResult result;
    std::vector<NodeId> attached;  ///< orphans re-attached by this drive
    std::vector<NodeId> parked;    ///< orphans left parked by this drive
  };
  /// Drive the repair of a confirmed crash, announced by `reporter` (pass
  /// kNoNode when the reporter itself is gone; the source then purges
  /// locally). Safe to call for an already-repaired host.
  RepairDrive driveRepair(NodeId dead, NodeId reporter, double now);

  OpResult driveMigrate(NodeId node, double now);

  struct AuditSweep {
    std::int64_t reattached = 0;    ///< parked hosts whose attach applied
    std::int64_t redriven = 0;      ///< attach re-drives attempted
    std::int64_t repairsRedriven = 0;
    std::int64_t confirmed = 0;     ///< unacked ops acknowledged
    std::int64_t abandoned = 0;     ///< obsolete ledger entries dropped
    std::vector<NodeId> attached;   ///< hosts attached during the sweep
    double elapsed = 0.0;
  };
  /// One anti-entropy sweep at simulated time `now`.
  AuditSweep runAudit(double now);

  /// Whether the ledger holds anything an audit could still reconcile.
  bool reconcilePending() const {
    return !attachOp_.empty() || !repairOp_.empty();
  }

  const DriverStats& stats() const { return stats_; }

 private:
  /// The peer a parked host's ATTACH handshake targets: its live backup
  /// parent when known, the source otherwise.
  NodeId attachContact(NodeId node) const;
  /// Reuse the outstanding op for `key` in `ledger` if it was never
  /// applied; mint (and record) a fresh one otherwise.
  OpId reuseOrMint(std::unordered_map<NodeId, OpId>& ledger, NodeId key,
                   std::int64_t origin);
  /// Ledger keys in deterministic (ascending) order.
  static std::vector<NodeId> sortedKeys(
      const std::unordered_map<NodeId, OpId>& ledger);

  OverlaySession& session_;
  RpcLayer& rpc_;
  DriverStats stats_;
  /// Outstanding ATTACH ops by host: present while unacknowledged.
  std::unordered_map<NodeId, OpId> attachOp_;
  /// Outstanding PURGE ops by dead host: present while the purge is unmade.
  std::unordered_map<NodeId, OpId> repairOp_;
};

}  // namespace omt
