#include "omt/rpc/reliable_session.h"

#include <algorithm>

#include "omt/common/error.h"

namespace omt {

ReliableSessionDriver::ReliableSessionDriver(OverlaySession& session,
                                             RpcLayer& rpc)
    : session_(session), rpc_(rpc) {}

NodeId ReliableSessionDriver::attachContact(NodeId node) const {
  const NodeId backup = session_.backupParentOf(node);
  if (backup != kNoNode && session_.isLive(backup)) return backup;
  return session_.sourceId();
}

OpId ReliableSessionDriver::reuseOrMint(
    std::unordered_map<NodeId, OpId>& ledger, NodeId key,
    std::int64_t origin) {
  const auto it = ledger.find(key);
  if (it != ledger.end() && !rpc_.appliedBefore(it->second))
    return it->second;
  const OpId id = rpc_.mint(origin);
  ledger[key] = id;
  return id;
}

std::vector<NodeId> ReliableSessionDriver::sortedKeys(
    const std::unordered_map<NodeId, OpId>& ledger) {
  std::vector<NodeId> keys;
  keys.reserve(ledger.size());
  for (const auto& [key, id] : ledger) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

ReliableSessionDriver::JoinDrive ReliableSessionDriver::driveJoin(
    const Point& position, double now) {
  JoinDrive drive;
  drive.id = session_.admit(position);
  drive.result = driveAttach(drive.id, now);
  if (drive.result.applied) {
    ++stats_.joinsAttached;
  } else {
    ++stats_.joinsParked;
  }
  return drive;
}

ReliableSessionDriver::OpResult ReliableSessionDriver::driveAttach(
    NodeId node, double now) {
  OpResult result;
  if (!session_.isParked(node)) {
    result.completed = true;
    return result;
  }
  ++stats_.attachCalls;
  const OpId id = reuseOrMint(attachOp_, node, node);
  const RpcLayer::Outcome out =
      rpc_.call(id, {.from = node, .to = attachContact(node), .now = now});
  result.elapsed = out.elapsed;
  if (out.applied) {
    session_.attachParked(node);
    rpc_.recordApplication(id);
    result.applied = true;
  }
  if (out.acked) {
    attachOp_.erase(node);
    result.completed = true;
    ++stats_.attachesCompleted;
  } else if (out.applied) {
    // Attached, but the host does not know: the ledger entry stays and the
    // audit re-delivers for the ack (the dedup table absorbs it).
    ++stats_.attachesUnconfirmed;
  } else {
    // The request never got through (or the breaker refused it): the host
    // stays parked until the audit re-drives the handshake.
    result.degraded = true;
    ++stats_.attachesParked;
  }
  return result;
}

ReliableSessionDriver::OpResult ReliableSessionDriver::driveLeave(
    NodeId node, double now) {
  OpResult result;
  OMT_CHECK(session_.isLive(node), "host is not live");
  OMT_CHECK(node != session_.sourceId(), "the source cannot leave");
  const NodeId parent = session_.parentOf(node);
  const NodeId to = (parent != kNoNode && session_.isLive(parent))
                        ? parent
                        : session_.sourceId();
  const OpId id = rpc_.mint(node);
  const RpcLayer::Outcome out =
      rpc_.call(id, {.from = node, .to = to, .now = now});
  result.elapsed = out.elapsed;
  if (out.applied) {
    session_.leave(node);
    rpc_.recordApplication(id);
    result.applied = true;
    result.completed = out.acked;  // the leaver is gone either way
    ++stats_.leavesClean;
  } else {
    // The goodbye never landed: the host goes dark regardless. To everyone
    // else this is a silent crash — detected and repaired like one.
    session_.leaveSilently(node);
    result.silent = true;
    result.degraded = true;
    ++stats_.leavesSilent;
  }
  attachOp_.erase(node);  // any outstanding attach for this host is moot
  return result;
}

ReliableSessionDriver::RepairDrive ReliableSessionDriver::driveRepair(
    NodeId dead, NodeId reporter, double now) {
  RepairDrive drive;
  if (!session_.isPendingCrash(dead)) {
    // Already healed (regrid, sweep, or an earlier drive): nothing to do.
    repairOp_.erase(dead);
    drive.purged = true;
    drive.result.completed = true;
    return drive;
  }

  const bool reporterLive =
      reporter != kNoNode && reporter != session_.sourceId() &&
      session_.isLive(reporter);
  if (reporterLive) {
    const OpId id = reuseOrMint(repairOp_, dead, reporter);
    const RpcLayer::Outcome out = rpc_.call(
        id, {.from = reporter, .to = session_.sourceId(), .now = now});
    drive.result.elapsed += out.elapsed;
    if (!out.applied && !out.duplicate) {
      // The announcement never reached the source: the corpse stays
      // flagged (pendingCrash) until the audit re-drives the purge.
      drive.result.degraded = true;
      ++stats_.repairsDeferred;
      return drive;
    }
    if (out.applied) rpc_.recordApplication(id);
    repairOp_.erase(dead);
  } else {
    // The source purges on its own authority (audit discovery, or the
    // reporter died in the meantime): no network hop.
    repairOp_.erase(dead);
  }

  const std::vector<NodeId> orphans = session_.purgeCrashed(dead);
  attachOp_.erase(dead);
  drive.purged = true;
  drive.result.applied = true;
  ++stats_.repairsPurged;

  // Each orphaned subtree root runs its own attach handshake, staggered by
  // the time the previous handshakes consumed.
  for (const NodeId orphan : orphans) {
    const OpResult attach =
        driveAttach(orphan, now + drive.result.elapsed);
    drive.result.elapsed += attach.elapsed;
    if (attach.applied) {
      drive.attached.push_back(orphan);
    } else if (session_.isParked(orphan)) {
      drive.parked.push_back(orphan);
      drive.result.degraded = true;
    }
  }
  drive.result.completed = !drive.result.degraded;
  // The shrink-regrid check rides on the completed repair, mirroring the
  // atomic repairCrashed() path.
  session_.maybeShrinkRegrid();
  return drive;
}

ReliableSessionDriver::OpResult ReliableSessionDriver::driveMigrate(
    NodeId node, double now) {
  OMT_CHECK(session_.isLive(node), "host is not live");
  OMT_CHECK(node != session_.sourceId(), "the source cannot migrate");
  ++stats_.migrations;
  if (!session_.isParked(node)) session_.park(node);
  return driveAttach(node, now);
}

ReliableSessionDriver::AuditSweep ReliableSessionDriver::runAudit(
    double now) {
  AuditSweep sweep;
  ++stats_.auditSweeps;

  // Reconcile the attach ledger: every entry is a host whose last ATTACH
  // handshake ended short of a full apply+ack.
  for (const NodeId node : sortedKeys(attachOp_)) {
    const auto it = attachOp_.find(node);
    if (it == attachOp_.end()) continue;  // resolved by an earlier re-drive
    const OpId id = it->second;
    const double t = now + sweep.elapsed;

    if (!session_.isLive(node)) {
      if (session_.isPendingCrash(node)) {
        // A dead half-joined member: it holds no parent lease, so the
        // heartbeat detector cannot see it — the audit purges it.
        const RepairDrive drive = driveRepair(node, kNoNode, t);
        sweep.elapsed += drive.result.elapsed;
        ++sweep.repairsRedriven;
        for (const NodeId orphan : drive.attached)
          sweep.attached.push_back(orphan);
      }
      attachOp_.erase(node);
      ++sweep.abandoned;
      continue;
    }
    if (session_.isParked(node)) {
      // The attach never applied (or the host was re-parked): re-drive it.
      const OpResult attach = driveAttach(node, t);
      sweep.elapsed += attach.elapsed;
      ++sweep.redriven;
      if (attach.applied) {
        ++sweep.reattached;
        sweep.attached.push_back(node);
      }
      continue;
    }
    if (!rpc_.appliedBefore(id)) {
      // Attached by some other path (a regrid or the global sweep) while
      // the op was still outstanding: the entry is obsolete.
      attachOp_.erase(node);
      ++sweep.abandoned;
      continue;
    }
    // Applied but never acknowledged: re-deliver purely for the ack. The
    // receiver's dedup table absorbs the duplicate; nothing re-applies.
    const RpcLayer::Outcome out = rpc_.call(
        id, {.from = node, .to = attachContact(node), .now = t});
    sweep.elapsed += out.elapsed;
    if (out.acked) {
      attachOp_.erase(node);
      ++sweep.confirmed;
    }
  }

  // Re-drive purges whose announcement never landed.
  for (const NodeId dead : sortedKeys(repairOp_)) {
    if (repairOp_.find(dead) == repairOp_.end()) continue;
    if (!session_.isPendingCrash(dead)) {
      repairOp_.erase(dead);
      ++sweep.abandoned;
      continue;
    }
    const RepairDrive drive = driveRepair(dead, kNoNode, now + sweep.elapsed);
    sweep.elapsed += drive.result.elapsed;
    ++sweep.repairsRedriven;
    for (const NodeId orphan : drive.attached)
      sweep.attached.push_back(orphan);
  }

  session_.maybeShrinkRegrid();
  stats_.auditReattaches += sweep.reattached;
  stats_.auditRepairs += sweep.repairsRedriven;
  stats_.auditConfirmedOps += sweep.confirmed;
  stats_.auditAbandonedOps += sweep.abandoned;
  return sweep;
}

}  // namespace omt
