// The lossy control channel and time-windowed control-plane disruption.
//
// Every control message in the overlay — heartbeat probes, join/leave
// requests, repair handshakes — crosses this channel. A message is lost
// independently with a fixed probability; on top of that base rate a
// DisruptionSchedule can impose *correlated* trouble aimed specifically at
// control traffic:
//   * loss-burst windows that boost the per-message loss probability for
//     everyone while active;
//   * delay windows that add latency to every delivered message;
//   * partition windows that cut a spatial region off outright — any
//     message with exactly one endpoint inside the region is dropped with
//     certainty until the window closes.
// The channel is the shared loss source; policy (retransmission, backoff,
// dedup, circuit breaking) lives one layer up in omt/rpc/rpc.h.
//
// Everything is driven by explicit 64-bit seeds: the same options always
// produce the same per-message loss pattern.
#pragma once

#include <cstdint>
#include <vector>

#include "omt/geometry/point.h"
#include "omt/random/rng.h"

namespace omt {

struct ControlChannelOptions {
  double lossRate = 0.0;       ///< independent per-message loss probability
  double latency = 0.01;       ///< delivery time of one successful message
  double baseTimeout = 0.05;   ///< wait before the first retransmission
  double backoffFactor = 2.0;  ///< timeout multiplier per further retry
  int maxAttempts = 4;         ///< transmissions before a send() expires
  std::uint64_t seed = 7;
};

struct ChannelStats {
  std::int64_t messages = 0;       ///< logical messages (roll + send calls)
  std::int64_t transmissions = 0;  ///< physical transmissions incl. retries
  std::int64_t losses = 0;         ///< transmissions the channel dropped
  std::int64_t expiries = 0;       ///< send() calls that exhausted retries
};

/// The lossy control channel. roll() models one best-effort message (a
/// heartbeat probe — never retried); send() models a reliable-ish message
/// that retransmits with exponential backoff until delivered or out of
/// attempts, reporting the wall-clock time the exchange consumed.
class ControlChannel {
 public:
  explicit ControlChannel(const ControlChannelOptions& options);

  struct Outcome {
    bool delivered = false;
    int attempts = 0;
    double elapsed = 0.0;  ///< backoff waits plus delivery latency
  };

  /// One unacknowledged message: true iff it got through.
  bool roll();

  /// One unacknowledged message under extra correlated loss: the message is
  /// dropped with probability 1 - (1 - lossRate) * (1 - extraLoss). Used by
  /// the RPC layer to fold disruption windows into each transmission.
  bool roll(double extraLoss);

  /// One message with retransmission: up to maxAttempts tries, waiting
  /// baseTimeout * backoffFactor^(i-1) before retry i.
  Outcome send();

  const ControlChannelOptions& options() const { return options_; }
  const ChannelStats& stats() const { return stats_; }

 private:
  ControlChannelOptions options_;
  Rng rng_;
  ChannelStats stats_;
};

/// One window of correlated control-plane trouble. A window is either a
/// partition (a spatial region severed from the rest of the world) or a
/// global loss/delay burst; a single window may combine all three knobs.
struct DisruptionWindow {
  double start = 0.0;
  double end = 0.0;
  double lossBoost = 0.0;   ///< extra independent loss while active
  double extraDelay = 0.0;  ///< added one-way latency while active
  bool partition = false;   ///< sever the region below from everyone else
  Point center;             ///< partition region center (host space)
  double radius = 0.0;      ///< partition region radius
};

/// Time-indexed view over a set of disruption windows. Queries are O(#windows)
/// — schedules hold a handful of windows, not thousands.
class DisruptionSchedule {
 public:
  DisruptionSchedule() = default;
  explicit DisruptionSchedule(std::vector<DisruptionWindow> windows);

  /// True iff a partition window active at `now` separates a and b (exactly
  /// one of them inside the severed region).
  bool severed(const Point& a, const Point& b, double now) const;

  /// Combined extra loss probability from every active loss-burst window:
  /// 1 - prod(1 - boost_i).
  double lossBoostAt(double now) const;

  /// Summed extra one-way latency from every active delay window.
  double extraDelayAt(double now) const;

  bool empty() const { return windows_.empty(); }
  const std::vector<DisruptionWindow>& windows() const { return windows_; }

 private:
  std::vector<DisruptionWindow> windows_;
};

}  // namespace omt
