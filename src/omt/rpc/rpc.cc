#include "omt/rpc/rpc.h"

#include <algorithm>

#include "omt/common/error.h"
#include "omt/obs/metrics.h"
#include "omt/random/rng.h"

namespace omt {
namespace {

/// The RPC layer is driven single-threaded from seeded simulations, so the
/// per-event adds are deterministic for a fixed seed and any worker count.
struct RpcMetrics {
  obs::Counter& calls;
  obs::Counter& acked;
  obs::Counter& exhausted;
  obs::Counter& retries;
  obs::Counter& shortCircuited;
  obs::Counter& duplicateDeliveries;
  obs::Counter& duplicatesApplied;
  obs::Counter& breakerTrips;
  obs::Counter& breakerReopens;
  obs::Counter& breakerRecoveries;
  obs::Histogram& callLatency;
};

RpcMetrics& rpcMetrics() {
  auto& registry = obs::MetricsRegistry::global();
  static RpcMetrics metrics{
      registry.counter("omt_rpc_calls_total"),
      registry.counter("omt_rpc_acked_total"),
      registry.counter("omt_rpc_exhausted_total"),
      registry.counter("omt_rpc_retries_total"),
      registry.counter("omt_rpc_short_circuited_total"),
      registry.counter("omt_rpc_duplicate_deliveries_total"),
      registry.counter("omt_rpc_duplicates_applied_total"),
      registry.counter("omt_rpc_breaker_trips_total"),
      registry.counter("omt_rpc_breaker_reopens_total"),
      registry.counter("omt_rpc_breaker_recoveries_total"),
      registry.histogram("omt_rpc_call_latency_seconds")};
  return metrics;
}

}  // namespace

RpcLayer::RpcLayer(const RpcOptions& options, DisruptionSchedule disruption,
                   PositionResolver resolver)
    : options_(options),
      channel_(options.channel),
      disruption_(std::move(disruption)),
      resolver_(std::move(resolver)) {
  OMT_CHECK(options.maxTimeout >= options.channel.baseTimeout,
            "timeout cap below the base timeout");
  OMT_CHECK(options.jitterFraction >= 0.0 && options.jitterFraction < 1.0,
            "jitter fraction outside [0, 1)");
  OMT_CHECK(options.breakerThreshold >= 1, "breaker threshold must be >= 1");
  OMT_CHECK(options.breakerCooldown > 0.0, "breaker cooldown must be > 0");
}

OpId RpcLayer::mint(std::int64_t origin) {
  OMT_CHECK(origin >= 0, "operation origin must be a host id");
  return OpId{origin, nextSequence_[origin]++};
}

double RpcLayer::jitterOf(std::int64_t host) {
  auto it = jitter_.find(host);
  if (it != jitter_.end()) return it->second;
  Rng rng(deriveSeed(options_.channel.seed,
                     0x6a697474ULL ^ static_cast<std::uint64_t>(host)));
  const double factor =
      1.0 + options_.jitterFraction * (2.0 * rng.uniform() - 1.0);
  jitter_.emplace(host, factor);
  return factor;
}

bool RpcLayer::severedNow(std::int64_t a, std::int64_t b, double now) const {
  if (disruption_.empty() || !resolver_) return false;
  const Point* pa = resolver_(a);
  const Point* pb = resolver_(b);
  if (pa == nullptr || pb == nullptr) return false;
  return disruption_.severed(*pa, *pb, now);
}

RpcLayer::Outcome RpcLayer::call(const OpId& id, const Call& call) {
  OMT_CHECK(id.valid(), "call needs a minted OpId");
  OMT_CHECK(call.from >= 0 && call.to >= 0, "call needs both endpoints");
  ++stats_.calls;
  rpcMetrics().calls.add();
  Outcome out;

  Breaker& breaker = breakers_[call.to];
  if (breaker.state == BreakerState::kOpen) {
    if (call.now < breaker.reopenAt) {
      out.shortCircuited = true;
      ++stats_.shortCircuited;
      rpcMetrics().shortCircuited.add();
      return out;
    }
    breaker.state = BreakerState::kHalfOpen;
  }

  const double jitter = jitterOf(call.from);
  double timeout = options_.channel.baseTimeout * jitter;
  const int maxAttempts = options_.channel.maxAttempts;
  for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
    ++out.attempts;
    const double sentAt = call.now + out.elapsed;
    const double boost = disruption_.lossBoostAt(sentAt);
    const bool requestCut = severedNow(call.from, call.to, sentAt);
    if (channel_.roll(requestCut ? 1.0 : boost)) {
      ++stats_.requestDeliveries;
      if (seen_.insert(id).second) {
        out.applied = true;
      } else {
        out.duplicate = true;
        ++stats_.duplicateDeliveries;
        rpcMetrics().duplicateDeliveries.add();
      }
      const double oneWay =
          options_.channel.latency + disruption_.extraDelayAt(sentAt);
      const double ackAt = sentAt + oneWay;
      const bool ackCut = severedNow(call.to, call.from, ackAt);
      if (channel_.roll(ackCut ? 1.0 : disruption_.lossBoostAt(ackAt))) {
        out.elapsed += 2.0 * oneWay;
        out.acked = true;
        break;
      }
    }
    // Request or ack lost: the sender's retransmission timer expires.
    out.elapsed += timeout;
    timeout = std::min(timeout * options_.channel.backoffFactor,
                       options_.maxTimeout * jitter);
  }

  const double endAt = call.now + out.elapsed;
  if (out.attempts > 1)
    rpcMetrics().retries.add(static_cast<std::int64_t>(out.attempts) - 1);
  rpcMetrics().callLatency.observe(out.elapsed);
  if (out.acked) {
    ++stats_.acked;
    rpcMetrics().acked.add();
    if (breaker.state != BreakerState::kClosed) {
      breaker.state = BreakerState::kClosed;
      ++stats_.breakerRecoveries;
      rpcMetrics().breakerRecoveries.add();
    }
    breaker.consecutiveFailures = 0;
  } else {
    ++stats_.exhausted;
    rpcMetrics().exhausted.add();
    if (breaker.state == BreakerState::kHalfOpen) {
      breaker.state = BreakerState::kOpen;
      breaker.reopenAt = endAt + options_.breakerCooldown;
      ++stats_.breakerReopens;
      rpcMetrics().breakerReopens.add();
    } else if (++breaker.consecutiveFailures >= options_.breakerThreshold) {
      breaker.state = BreakerState::kOpen;
      breaker.reopenAt = endAt + options_.breakerCooldown;
      ++stats_.breakerTrips;
      rpcMetrics().breakerTrips.add();
    }
  }
  return out;
}

void RpcLayer::recordApplication(const OpId& id) {
  OMT_CHECK(id.valid(), "cannot record an unminted OpId");
  if (!applied_.insert(id).second) {
    ++stats_.duplicatesApplied;
    rpcMetrics().duplicatesApplied.add();
  }
}

BreakerState RpcLayer::breakerState(std::int64_t peer, double now) const {
  auto it = breakers_.find(peer);
  if (it == breakers_.end()) return BreakerState::kClosed;
  if (it->second.state == BreakerState::kOpen && now >= it->second.reopenAt)
    return BreakerState::kHalfOpen;
  return it->second.state;
}

}  // namespace omt
