// Reliable at-most-once RPC over the lossy control channel.
//
// The channel (omt/rpc/channel.h) drops individual transmissions; this layer
// adds the policy that turns lossy messages into operations the protocol
// layer can reason about:
//
//   * every operation carries an *idempotency key* — an OpId minted once at
//     the origin (origin host id + per-origin sequence number) and reused on
//     every retransmission of that operation;
//   * the receiver deduplicates by OpId: the first delivered request is
//     *applied*, every later delivery of the same id is acknowledged but NOT
//     re-applied (at-most-once application). Senders therefore retry freely;
//   * each call retransmits with capped exponential backoff; the timeout is
//     jittered by a deterministic per-host factor so co-located senders do
//     not retry in lock-step;
//   * a per-peer circuit breaker trips after `breakerThreshold` consecutive
//     calls to a peer exhaust their retries; while open, calls to that peer
//     short-circuit (no transmissions). After `breakerCooldown` the breaker
//     half-opens: exactly one probe call is let through — success closes
//     the breaker, failure re-opens it for another cooldown.
//
// An RPC is one request/ack exchange: the request leg delivers the
// operation, the ack leg confirms it. Either leg can be lost independently
// (so a receiver may apply an op whose sender never learns of it — the
// classic source of duplicates that the OpId dedup absorbs), and both legs
// are subject to the active disruption windows (loss boosts, delay spells,
// regional partitions).
//
// The layer never mutates overlay state itself. Callers mutate state when
// Outcome.applied is true and must confirm the mutation via
// recordApplication(id); a second recordApplication for the same id bumps
// stats().duplicatesApplied — the chaos gate asserts that counter stays 0.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "omt/geometry/point.h"
#include "omt/rpc/channel.h"

namespace omt {

/// Idempotency key: minted once per logical operation at its origin and
/// attached to every retransmission.
struct OpId {
  std::int64_t origin = -1;    ///< host that minted the operation
  std::int64_t sequence = -1;  ///< per-origin monotone sequence number

  bool valid() const { return origin >= 0 && sequence >= 0; }
  friend bool operator==(const OpId& a, const OpId& b) {
    return a.origin == b.origin && a.sequence == b.sequence;
  }
};

struct OpIdHash {
  std::size_t operator()(const OpId& id) const {
    // splitmix64 finalizer over the packed pair; good avalanche, no deps.
    std::uint64_t x = static_cast<std::uint64_t>(id.origin) * 0x9e3779b97f4a7c15ULL +
                      static_cast<std::uint64_t>(id.sequence);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

struct RpcOptions {
  ControlChannelOptions channel;  ///< loss, latency, base timeout, attempts
  double maxTimeout = 0.8;        ///< cap on the backed-off retry timer
  double jitterFraction = 0.2;    ///< per-host timeout jitter, +/- fraction
  int breakerThreshold = 3;       ///< consecutive exhausted calls to trip
  double breakerCooldown = 1.0;   ///< open time before the half-open probe
};

struct RpcStats {
  std::int64_t calls = 0;           ///< call() invocations
  std::int64_t acked = 0;           ///< calls that ended acknowledged
  std::int64_t exhausted = 0;       ///< calls that ran out of attempts
  std::int64_t shortCircuited = 0;  ///< calls refused by an open breaker
  std::int64_t requestDeliveries = 0;   ///< request legs that arrived
  std::int64_t duplicateDeliveries = 0; ///< deliveries of an already-seen id
  std::int64_t duplicatesApplied = 0;   ///< MUST stay 0: re-applied ops
  std::int64_t breakerTrips = 0;        ///< Closed -> Open transitions
  std::int64_t breakerReopens = 0;      ///< failed half-open probes
  std::int64_t breakerRecoveries = 0;   ///< Open/HalfOpen -> Closed
};

/// The reliable-delivery layer. Deterministic: loss is drawn from the
/// channel's seeded rng, jitter from per-host derived seeds.
class RpcLayer {
 public:
  /// Maps a host id to its position, or nullptr if unknown/dead. Used only
  /// to evaluate partition windows; without a resolver (or with nullptr
  /// results) partitions never sever a call.
  using PositionResolver = std::function<const Point*(std::int64_t)>;

  explicit RpcLayer(const RpcOptions& options,
                    DisruptionSchedule disruption = DisruptionSchedule(),
                    PositionResolver resolver = PositionResolver());

  /// Mint a fresh idempotency key at `origin`.
  OpId mint(std::int64_t origin);

  struct Call {
    std::int64_t from = -1;
    std::int64_t to = -1;
    double now = 0.0;  ///< simulated send time of the first transmission
  };

  struct Outcome {
    bool acked = false;    ///< sender observed an ack
    bool applied = false;  ///< receiver applied the op during this call
    bool duplicate = false;       ///< some delivery hit the dedup table
    bool shortCircuited = false;  ///< breaker open: nothing was sent
    int attempts = 0;             ///< transmissions of the request leg
    double elapsed = 0.0;         ///< simulated time the exchange consumed
  };

  /// Drive one operation to acknowledgement or retry exhaustion. Reusing an
  /// OpId (re-driving a previously unacknowledged operation) is legal and is
  /// exactly how anti-entropy re-delivers: the dedup table guarantees the op
  /// applies at most once across all such calls.
  Outcome call(const OpId& id, const Call& call);

  /// True iff some delivery of `id` has already been applied.
  bool appliedBefore(const OpId& id) const {
    return seen_.count(id) != 0;
  }

  /// Callers confirm each state mutation they perform for an applied op.
  /// A second confirmation for the same id is the at-most-once violation
  /// this layer exists to prevent; it is counted, never fatal, so the chaos
  /// gate can assert the counter instead of crashing mid-drill.
  void recordApplication(const OpId& id);

  /// Breaker state for `peer` as of `now` (Open reports HalfOpen once the
  /// cooldown has elapsed, matching what the next call would see).
  BreakerState breakerState(std::int64_t peer, double now) const;

  const RpcOptions& options() const { return options_; }
  const RpcStats& stats() const { return stats_; }
  const ChannelStats& channelStats() const { return channel_.stats(); }
  const DisruptionSchedule& disruption() const { return disruption_; }

 private:
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    int consecutiveFailures = 0;
    double reopenAt = 0.0;  ///< when an open breaker admits its probe
  };

  double jitterOf(std::int64_t host);
  bool severedNow(std::int64_t a, std::int64_t b, double now) const;

  RpcOptions options_;
  ControlChannel channel_;
  DisruptionSchedule disruption_;
  PositionResolver resolver_;
  RpcStats stats_;
  std::unordered_map<std::int64_t, std::int64_t> nextSequence_;
  std::unordered_map<std::int64_t, double> jitter_;
  std::unordered_map<std::int64_t, Breaker> breakers_;
  std::unordered_set<OpId, OpIdHash> seen_;     ///< receiver dedup table
  std::unordered_set<OpId, OpIdHash> applied_;  ///< confirmed mutations
};

}  // namespace omt
