#include "omt/geometry/point.h"

#include <cmath>
#include <ostream>

namespace omt {

Point& Point::operator+=(const Point& o) {
  OMT_CHECK(dim_ == o.dim_, "dimension mismatch");
  for (int i = 0; i < dim_; ++i) (*this)[i] += o[i];
  return *this;
}

Point& Point::operator-=(const Point& o) {
  OMT_CHECK(dim_ == o.dim_, "dimension mismatch");
  for (int i = 0; i < dim_; ++i) (*this)[i] -= o[i];
  return *this;
}

Point& Point::operator*=(double s) {
  for (int i = 0; i < dim_; ++i) (*this)[i] *= s;
  return *this;
}

Point& Point::operator/=(double s) {
  for (int i = 0; i < dim_; ++i) (*this)[i] /= s;
  return *this;
}

double dot(const Point& a, const Point& b) {
  OMT_CHECK(a.dim() == b.dim(), "dimension mismatch");
  double sum = 0.0;
  for (int i = 0; i < a.dim(); ++i) sum += a[i] * b[i];
  return sum;
}

double squaredNorm(const Point& p) { return dot(p, p); }

double norm(const Point& p) { return std::sqrt(squaredNorm(p)); }

double squaredDistance(const Point& a, const Point& b) {
  OMT_CHECK(a.dim() == b.dim(), "dimension mismatch");
  double sum = 0.0;
  for (int i = 0; i < a.dim(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double distance(const Point& a, const Point& b) {
  return std::sqrt(squaredDistance(a, b));
}

std::ostream& operator<<(std::ostream& out, const Point& p) {
  out << '(';
  for (int i = 0; i < p.dim(); ++i) {
    if (i > 0) out << ", ";
    out << p[i];
  }
  return out << ')';
}

}  // namespace omt
