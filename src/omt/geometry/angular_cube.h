// Polar (hyperspherical) coordinates with the angular part expressed in
// "angular cube" coordinates.
//
// A point p != origin in d dimensions is represented as
//   radius r = |p - origin|   and   u in [0,1]^(d-1),
// where u is the image of the direction (p - origin)/r under the
// measure-preserving map of S^(d-1) onto the uniform cube: each
// hyperspherical angle theta_j (marginal density ~ sin^(d-1-j)) goes through
// its CDF (see sin_power_integral.h) and the azimuth phi through phi/(2*pi).
//
// Properties that the grid and bisection algorithms rely on:
//  * Volume of {r in [r0,r1], u in B} equals (r1^d - r0^d)/d * |B| * area of
//    S^(d-1) — so equal cube boxes at equal radial shells have equal volume,
//    which is exactly the paper's equal-volume grid-cell requirement.
//  * Halving a cube axis halves the volume: the paper's "split each cell in
//    two along splitting axes, cycling through all the axes" (Section IV-B)
//    is an exact binary digit operation on u.
//  * For d = 2, u has one coordinate: angle/(2*pi). For d = 3, u is the
//    standard equal-area (phi/(2*pi), (1-cos theta)/2) parametrisation.
#pragma once

#include <array>

#include "omt/common/types.h"
#include "omt/geometry/point.h"

namespace omt {

/// Polar representation of a point relative to some origin.
struct PolarCoords {
  double radius = 0.0;
  /// Angular cube coordinates; entries [0, dim-2] are meaningful. The last
  /// meaningful axis (index dim-2) is the azimuth axis and is periodic with
  /// period 1; the others live in [0, 1].
  std::array<double, kMaxDim - 1> cube{};
  int dim = 0;

  int cubeAxes() const { return dim - 1; }
};

/// Convert `p` to polar coordinates about `origin` (same dimension, d >= 2).
/// A point exactly at the origin gets radius 0 and cube coordinates all 0.
PolarCoords toPolar(const Point& p, const Point& origin);

/// Inverse of toPolar: rebuild the Cartesian point.
Point fromPolar(const PolarCoords& polar, const Point& origin);

/// Unit direction vector for the given cube coordinates (d >= 2).
Point directionFromCube(std::array<double, kMaxDim - 1> cube, int dim);

/// Index of the periodic (azimuth) cube axis for dimension d.
inline int azimuthAxis(int dim) { return dim - 2; }

}  // namespace omt
