// Regions hosts can be distributed in.
//
// The paper's main theorem assumes points uniformly distributed in a disk
// (d-ball); Section IV-C extends the algorithm to arbitrary convex regions
// with arbitrary source placement. Region is the interface the samplers
// (omt/random) and the generalised experiments use. An Annulus is provided
// as a deliberately NON-convex stress case: the asymptotic-optimality proof
// does not cover it, but the algorithm must still return a valid tree.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "omt/geometry/point.h"

namespace omt {

class Region {
 public:
  virtual ~Region() = default;

  virtual int dim() const = 0;
  virtual bool contains(const Point& p) const = 0;
  /// Axis-aligned bounding box (lo corner, hi corner); used for rejection
  /// sampling and for placing far ring centers.
  virtual std::pair<Point, Point> boundingBox() const = 0;
  /// Human-readable name for reports.
  virtual std::string name() const = 0;
  /// Whether the region is convex (the asymptotic guarantee requires it).
  virtual bool convex() const { return true; }
};

/// Closed ball (disk when dim == 2) of radius `radius` about `center`.
class Ball final : public Region {
 public:
  Ball(Point center, double radius);

  int dim() const override { return center_.dim(); }
  bool contains(const Point& p) const override;
  std::pair<Point, Point> boundingBox() const override;
  std::string name() const override;

  const Point& center() const { return center_; }
  double radius() const { return radius_; }

 private:
  Point center_;
  double radius_;
};

/// Axis-aligned box [lo, hi] in any dimension.
class Box final : public Region {
 public:
  Box(Point lo, Point hi);

  int dim() const override { return lo_.dim(); }
  bool contains(const Point& p) const override;
  std::pair<Point, Point> boundingBox() const override { return {lo_, hi_}; }
  std::string name() const override;

  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }

 private:
  Point lo_;
  Point hi_;
};

/// Convex polygon in the plane, vertices in counter-clockwise order.
class ConvexPolygon final : public Region {
 public:
  explicit ConvexPolygon(std::vector<Point> vertices);

  int dim() const override { return 2; }
  bool contains(const Point& p) const override;
  std::pair<Point, Point> boundingBox() const override;
  std::string name() const override;

  const std::vector<Point>& vertices() const { return vertices_; }

 private:
  std::vector<Point> vertices_;
};

/// Planar annulus (ring) — non-convex; a stress case outside the theory.
class Annulus final : public Region {
 public:
  Annulus(Point center, double innerRadius, double outerRadius);

  int dim() const override { return 2; }
  bool contains(const Point& p) const override;
  std::pair<Point, Point> boundingBox() const override;
  std::string name() const override;
  bool convex() const override { return false; }

 private:
  Point center_;
  double inner_;
  double outer_;
};

}  // namespace omt
