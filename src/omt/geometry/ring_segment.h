// Ring segments: the cells the paper's algorithms operate on.
//
// In two dimensions a ring segment is the region between two radii and two
// rays (Figure 1 of the paper). Generalised to d dimensions via angular cube
// coordinates (angular_cube.h), a segment is
//     { radius in [r_lo, r_hi] }  x  { cube box in [0,1]^(d-1) },
// i.e. a radial interval crossed with an axis-aligned box over the direction
// sphere. The bisection algorithm halves every axis, producing 2^d aligned
// sub-segments (4 in 2D, matching Figure 1; 8 in 3D, matching the paper's
// out-degree-10 analysis).
//
// The azimuth cube axis is periodic with period 1; a segment's interval on
// that axis may extend past 1 (e.g. [0.9, 1.3]) to represent an arc crossing
// the branch cut. Membership tests wrap point coordinates accordingly.
#pragma once

#include <array>
#include <span>

#include "omt/common/types.h"
#include "omt/geometry/angular_cube.h"

namespace omt {

/// A closed real interval [lo, hi], lo <= hi.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  double width() const { return hi - lo; }
  double mid() const { return lo + (hi - lo) / 2.0; }
  bool contains(double x, double eps = kGeomEps) const {
    return x >= lo - eps && x <= hi + eps;
  }
  /// Lower ([lo, mid]) or upper ([mid, hi]) half.
  Interval half(int which) const {
    return which == 0 ? Interval{lo, mid()} : Interval{mid(), hi};
  }
};

class RingSegment {
 public:
  /// A segment of `dim`-dimensional space: radial interval `radial` and one
  /// cube interval per angular axis (`cube.size() == dim - 1`). Radial
  /// bounds must satisfy 0 <= lo <= hi; non-azimuth cube intervals must lie
  /// within [0, 1]; the azimuth interval must have width <= 1.
  RingSegment(int dim, Interval radial, std::span<const Interval> cube);

  /// The full ball of radius `r` about the origin of `dim`-dimensional
  /// space (radial [0, r], all cube axes [0, 1]).
  static RingSegment fullBall(int dim, double r);

  int dim() const { return dim_; }
  int cubeAxes() const { return dim_ - 1; }
  const Interval& radial() const { return radial_; }
  const Interval& cubeAxis(int j) const;

  /// Angle subtended on the azimuth axis, in radians (the paper's `a`).
  double angleSpan() const;

  /// Upper bound on arc length along the azimuth at the outer radius
  /// (the paper's `R * a`).
  double outerArcLength() const { return radial_.hi * angleSpan(); }

  /// Whether the polar point lies in the segment (azimuth wrapped).
  bool contains(const PolarCoords& p, double eps = kGeomEps) const;

  /// The point's azimuth cube coordinate wrapped into [lo, lo + 1) of this
  /// segment's azimuth interval; other axes returned unchanged.
  std::array<double, kMaxDim - 1> normalizedCube(const PolarCoords& p) const;

  /// Which of the 2^dim sub-segments produced by halving every axis the
  /// point falls into. Bit 0 is the radial axis (0 = inner half), bit 1+j is
  /// cube axis j (0 = lower half). The point must be inside the segment.
  int subsegmentIndex(const PolarCoords& p) const;

  /// The sub-segment for a given index (see subsegmentIndex).
  RingSegment subsegment(int index) const;

  /// Number of sub-segments a single bisection step produces (2^dim).
  int subsegmentCount() const { return 1 << dim_; }

  /// Max of all axis extents in natural units (radial width and azimuth arc
  /// at the outer radius); used as a termination measure for bisection on
  /// degenerate inputs.
  double extentMeasure() const;

 private:
  int dim_;
  Interval radial_;
  std::array<Interval, kMaxDim - 1> cube_{};
};

}  // namespace omt
