#include "omt/geometry/enclosing_ball.h"

#include <array>
#include <cstdint>
#include <cmath>
#include <vector>

#include "omt/common/error.h"

namespace omt {
namespace {

/// Local SplitMix64 step; geometry cannot depend on omt/random (which
/// depends on geometry), and all we need is a deterministic shuffle.
std::uint64_t nextRandom(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Solve the small SPD system A x = b (k <= kMaxDim) by Gaussian
/// elimination with partial pivoting. Returns false if singular (affinely
/// dependent support points), in which case the caller drops the point.
bool solveSmallSystem(std::array<std::array<double, kMaxDim>, kMaxDim>& a,
                      std::array<double, kMaxDim>& b, int k) {
  for (int col = 0; col < k; ++col) {
    int pivot = col;
    for (int row = col + 1; row < k; ++row) {
      if (std::abs(a[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)]) >
          std::abs(a[static_cast<std::size_t>(pivot)][static_cast<std::size_t>(col)]))
        pivot = row;
    }
    if (std::abs(a[static_cast<std::size_t>(pivot)][static_cast<std::size_t>(col)]) <
        1e-12)
      return false;
    std::swap(a[static_cast<std::size_t>(col)], a[static_cast<std::size_t>(pivot)]);
    std::swap(b[static_cast<std::size_t>(col)], b[static_cast<std::size_t>(pivot)]);
    for (int row = col + 1; row < k; ++row) {
      const double f = a[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] /
                       a[static_cast<std::size_t>(col)][static_cast<std::size_t>(col)];
      for (int c = col; c < k; ++c) {
        a[static_cast<std::size_t>(row)][static_cast<std::size_t>(c)] -=
            f * a[static_cast<std::size_t>(col)][static_cast<std::size_t>(c)];
      }
      b[static_cast<std::size_t>(row)] -= f * b[static_cast<std::size_t>(col)];
    }
  }
  for (int row = k - 1; row >= 0; --row) {
    double sum = b[static_cast<std::size_t>(row)];
    for (int c = row + 1; c < k; ++c) {
      sum -= a[static_cast<std::size_t>(row)][static_cast<std::size_t>(c)] *
             b[static_cast<std::size_t>(c)];
    }
    b[static_cast<std::size_t>(row)] =
        sum / a[static_cast<std::size_t>(row)][static_cast<std::size_t>(row)];
  }
  return true;
}

/// Circumball of up to d+1 affinely independent support points: the unique
/// smallest ball with all of them on its boundary.
EnclosingBall ballFromSupport(std::span<const Point> support, int dim) {
  EnclosingBall ball{Point(dim), 0.0};
  if (support.empty()) return ball;
  if (support.size() == 1) {
    ball.center = support[0];
    return ball;
  }
  // Solve 2 (v_i . v_j) lambda_j = |v_i|^2 with v_i = support[i] - p0;
  // center = p0 + sum lambda_j v_j.
  const Point& p0 = support[0];
  const int k = static_cast<int>(support.size()) - 1;
  std::array<std::array<double, kMaxDim>, kMaxDim> a{};
  std::array<double, kMaxDim> b{};
  std::vector<Point> v;
  v.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) v.push_back(support[static_cast<std::size_t>(i) + 1] - p0);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          2.0 * dot(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(j)]);
    }
    b[static_cast<std::size_t>(i)] = squaredNorm(v[static_cast<std::size_t>(i)]);
  }
  if (!solveSmallSystem(a, b, k)) {
    // Affinely dependent support: fall back to the first point's ball over
    // the span that did resolve; callers only grow supports with points
    // strictly outside the current ball, so this is a degenerate-input
    // safety valve, not a hot path.
    ball.center = p0;
    for (const Point& s : support)
      ball.radius = std::max(ball.radius, distance(p0, s));
    return ball;
  }
  Point center = p0;
  for (int j = 0; j < k; ++j) center += b[static_cast<std::size_t>(j)] * v[static_cast<std::size_t>(j)];
  ball.center = center;
  ball.radius = distance(center, p0);
  return ball;
}

/// Welzl move-to-front: the ball over points[0..end) with `support` forced
/// onto the boundary. Recursion depth is bounded by dim + 1.
EnclosingBall welzl(std::vector<Point>& points, std::size_t end,
                    std::vector<Point>& support, int dim) {
  EnclosingBall ball = ballFromSupport(support, dim);
  if (static_cast<int>(support.size()) == dim + 1) return ball;
  for (std::size_t i = 0; i < end; ++i) {
    if (ball.contains(points[i], 1e-12 * (1.0 + ball.radius))) continue;
    support.push_back(points[i]);
    ball = welzl(points, i, support, dim);
    support.pop_back();
    // Move-to-front keeps boundary-defining points early, which is what
    // makes the expected running time linear.
    Point hit = points[i];
    for (std::size_t j = i; j > 0; --j) points[j] = points[j - 1];
    points[0] = hit;
  }
  return ball;
}

}  // namespace

EnclosingBall smallestEnclosingBall(std::span<const Point> points) {
  OMT_CHECK(!points.empty(), "empty point set");
  const int dim = points.front().dim();
  OMT_CHECK(dim >= 1 && dim <= kMaxDim, "dimension out of range");
  std::vector<Point> shuffled(points.begin(), points.end());
  for (const Point& p : shuffled)
    OMT_CHECK(p.dim() == dim, "mixed dimensions in point set");
  // Deterministic shuffle (seeded by size) for expected-linear behaviour
  // independent of adversarial input order.
  std::uint64_t state = 0x5EB411ULL ^ points.size();
  for (std::size_t i = shuffled.size(); i > 1; --i)
    std::swap(shuffled[i - 1], shuffled[nextRandom(state) % i]);

  std::vector<Point> support;
  support.reserve(static_cast<std::size_t>(dim) + 1);
  EnclosingBall ball = welzl(shuffled, shuffled.size(), support, dim);
  // Guard against accumulated rounding: grow minimally to cover everything.
  for (const Point& p : points)
    ball.radius = std::max(ball.radius, distance(ball.center, p));
  return ball;
}

double maxPairwiseDistanceLowerBound(std::span<const Point> points) {
  OMT_CHECK(!points.empty(), "empty point set");
  auto farthestFrom = [&](const Point& origin) {
    std::size_t best = 0;
    double bestDist = -1.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const double d = squaredDistance(points[i], origin);
      if (d > bestDist) {
        bestDist = d;
        best = i;
      }
    }
    return best;
  };
  const std::size_t a = farthestFrom(points[0]);
  const std::size_t b = farthestFrom(points[a]);
  return distance(points[a], points[b]);
}

}  // namespace omt
