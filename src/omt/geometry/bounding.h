// Tight covering ring segments.
//
// The constant-factor wrapper of Section II needs a ring segment that covers
// a whole point set with (a) a far-away ring center so the subtended angle a
// satisfies sin a > (5/6) a and the radii satisfy r > 0.6 R, and (b) tight
// bounds: R - r and a cannot be reduced without losing points. Those
// preconditions are exactly what make the bound
//   OPT >= max(R - q, q - r)   and   OPT >= r sin a >= R a / 2
// valid, which in turn yields the factor-5 (out-degree 4) and factor-9
// (out-degree 2) guarantees of Theorem 1. This header builds such segments.
#pragma once

#include <span>

#include "omt/geometry/ring_segment.h"

namespace omt {

/// Smallest circular interval (in a coordinate with the given period)
/// containing all values; returns {lo, hi} with hi - lo <= period and
/// hi possibly exceeding `period`. Values may be any reals; they are reduced
/// modulo the period. For an empty span returns {0, 0}.
Interval circularHull(std::span<const double> values, double period);

/// A ring center placed far from the point set (along -x from the bounding
/// box center) so that the tight covering segment around it satisfies the
/// Theorem 1 preconditions (r > 0.6 R and a small enough that
/// sin a > 5a/6). Works in any dimension >= 2. The point set must be
/// non-empty. If all points coincide, the center is placed at unit distance.
Point farRingCenter(std::span<const Point> points);

/// The tight ring segment about `ringCenter` covering all points: minimal
/// radial interval and, per angular axis, minimal (circular, for the
/// azimuth) interval in angular cube coordinates. The point set must be
/// non-empty and must not contain the ring center itself unless it is the
/// only location (a point at the center has undefined direction; it is
/// covered by extending the radial interval to zero).
RingSegment tightSegment(std::span<const Point> points, const Point& ringCenter);

}  // namespace omt
