// Smallest enclosing ball (minimum covering sphere) in any dimension
// 2..kMaxDim, via Welzl's move-to-front algorithm.
//
// Used by the minimum-diameter variant of Section VI: "to construct an
// optimal solution in the sphere, an artificial root node should be chosen
// among nodes closest to the sphere center" — the sphere center being the
// center of the smallest ball enclosing the hosts.
#pragma once

#include <span>

#include "omt/geometry/point.h"

namespace omt {

struct EnclosingBall {
  Point center;
  double radius = 0.0;

  bool contains(const Point& p, double eps = 1e-9) const {
    return squaredDistance(p, center) <= (radius + eps) * (radius + eps);
  }
};

/// The smallest ball containing every point. Deterministic for a fixed
/// input order (the internal permutation is seeded from the input size).
/// Requires a non-empty set of equal-dimension points.
EnclosingBall smallestEnclosingBall(std::span<const Point> points);

/// A valid lower bound on the maximum pairwise distance of the set, via a
/// two-sweep walk (farthest point from points[0], then farthest from that);
/// the returned value is an actual pairwise distance, hence a certificate.
double maxPairwiseDistanceLowerBound(std::span<const Point> points);

}  // namespace omt
