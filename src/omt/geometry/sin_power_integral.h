// Incomplete integrals of sin^k and their inverses.
//
// The uniform (surface) measure on the sphere S^(d-1), written in
// hyperspherical angles (theta_1, ..., theta_{d-2}, phi), factorises into
// independent marginals with densities proportional to sin^k(theta) on
// [0, pi] (k = d-1-j for angle j) and the uniform azimuth phi on [0, 2*pi).
// Mapping each angle through its CDF therefore carries the sphere
// measure-preservingly onto the uniform cube [0,1]^(d-1) — the coordinate
// system in which the paper's "equal volume split, cycling through the
// axes" (Section IV-B) becomes an exact binary split of an interval.
//
// This header provides the CDFs and their inverses:
//   sinPowerIntegral(k, t)  =  integral_0^t sin^k(x) dx   (closed-form
//       recurrence I_k = ((k-1) I_{k-2} - sin^{k-1} t cos t) / k, switching
//       to the small-angle series near t = 0 and t = pi where the
//       recurrence cancels catastrophically)
//   sinPowerCdf(k, t)       =  I_k(t) / I_k(pi), monotone [0,pi] -> [0,1]
//   sinPowerQuantile(k, u)  =  the inverse of sinPowerCdf
//   sinPowerIntegralInverse(k, v) = the inverse of sinPowerIntegral
//
// Inversion is *canonical*: the returned double is a pure function of the
// arguments, independent of how the Newton iteration was seeded. The
// interior is solved by a safeguarded Newton iteration inside the bracket
// [T_j, T_{j+1}] of a fixed 1/kQuantileGridIntervals-resolution u-grid,
// where T_j is the (deterministic) full-range solve at the grid point; the
// tails use a closed-form series inversion. The kernels layer
// (omt/kernels/sin_power_table.h) precomputes the T_j per k once and passes
// them into the same core, so the table-seeded fast path returns results
// bitwise identical to this scalar path — the property the byte-identical
// tree contract rests on.
#pragma once

namespace omt {

/// integral_0^t sin^k(x) dx for t in [0, pi], k >= 0.
double sinPowerIntegral(int k, double t);

/// integral_0^pi sin^k(x) dx (the normalising constant T_k).
double sinPowerTotal(int k);

/// Normalised CDF F_k(t) = I_k(t) / T_k; strictly increasing on (0, pi).
double sinPowerCdf(int k, double t);

/// Inverse of sinPowerCdf: the t in [0, pi] with F_k(t) = u, u in [0, 1].
double sinPowerQuantile(int k, double u);

/// Inverse of the unnormalised integral: the t in [0, pi] with
/// I_k(t) = value, value in [0, sinPowerTotal(k)]. Accurate in *relative*
/// terms near t = 0 (where the old cold-start Newton lost all digits);
/// near t = pi the double representation of I itself caps what any inverse
/// can recover (the tail (pi-t)^(k+1)/(k+1) drops below one ulp of T_k).
double sinPowerIntegralInverse(int k, double value);

namespace sin_power_detail {

/// Resolution of the canonical seed grid over u in [0, 1]. A power of two
/// so grid u-values j/kQuantileGridIntervals are exact doubles.
inline constexpr int kQuantileGridIntervals = 1024;

/// Below this angle (from either endpoint) the closed-form recurrence for
/// I_k cancels catastrophically and the two-term series is exact to double
/// precision; forward evaluation and inversion both switch over here.
inline constexpr double kSmallAngleCut = 1e-4;

/// The canonical value of the j-th grid quantile (j in
/// [0, kQuantileGridIntervals]): the legacy full-range safeguarded Newton
/// solve at u = j/kQuantileGridIntervals. Table builders must store exactly
/// these doubles for the fast path to stay bitwise-identical.
double gridQuantile(int k, int j);

/// Canonical quantile core shared by the cold scalar path and the
/// table-seeded kernels path. `u` selects the seed-grid interval and
/// `target` is the unnormalised integral value to invert (callers pass
/// u*total or value as appropriate). `brackets`, when non-null, must hold
/// the kQuantileGridIntervals + 1 canonical grid quantiles (gridQuantile);
/// when null they are solved on the fly — same doubles, ~2 extra full-range
/// solves per call. `iterations`, when non-null, accumulates the Newton
/// step count (for the kernel obs counters).
double quantileCore(int k, double u, double target, const double* brackets,
                    int* iterations);

/// Closed-form series inversion of the deep lower tail (k >= 2): the t with
/// I_k(t) = target, valid for target <= seriesThreshold(k). Exposed for the
/// fast-math tier, whose table-hybrid quantile reuses the exact tail so the
/// two paths agree bitwise where the series applies.
double seriesInverse(int k, double target);

/// Largest integral value the series inversion handles (see quantileCore's
/// tail switch); symmetric about pi via total - target.
double seriesThreshold(int k);

}  // namespace sin_power_detail

}  // namespace omt
