// Incomplete integrals of sin^k and their inverses.
//
// The uniform (surface) measure on the sphere S^(d-1), written in
// hyperspherical angles (theta_1, ..., theta_{d-2}, phi), factorises into
// independent marginals with densities proportional to sin^k(theta) on
// [0, pi] (k = d-1-j for angle j) and the uniform azimuth phi on [0, 2*pi).
// Mapping each angle through its CDF therefore carries the sphere
// measure-preservingly onto the uniform cube [0,1]^(d-1) — the coordinate
// system in which the paper's "equal volume split, cycling through the
// axes" (Section IV-B) becomes an exact binary split of an interval.
//
// This header provides the CDFs and their inverses:
//   sinPowerIntegral(k, t)  =  integral_0^t sin^k(x) dx   (closed-form
//       recurrence I_k = ((k-1) I_{k-2} - sin^{k-1} t cos t) / k)
//   sinPowerCdf(k, t)       =  I_k(t) / I_k(pi), monotone [0,pi] -> [0,1]
//   sinPowerQuantile(k, u)  =  the inverse of sinPowerCdf (Newton iteration
//       with bisection fallback, accurate to ~1e-14)
#pragma once

namespace omt {

/// integral_0^t sin^k(x) dx for t in [0, pi], k >= 0.
double sinPowerIntegral(int k, double t);

/// integral_0^pi sin^k(x) dx (the normalising constant T_k).
double sinPowerTotal(int k);

/// Normalised CDF F_k(t) = I_k(t) / T_k; strictly increasing on (0, pi).
double sinPowerCdf(int k, double t);

/// Inverse of sinPowerCdf: the t in [0, pi] with F_k(t) = u, u in [0, 1].
double sinPowerQuantile(int k, double u);

}  // namespace omt
