#include "omt/geometry/region.h"

#include <sstream>

#include "omt/common/error.h"

namespace omt {
namespace {

Point offsetAll(const Point& p, double delta) {
  Point out = p;
  for (int i = 0; i < out.dim(); ++i) out[i] += delta;
  return out;
}

}  // namespace

Ball::Ball(Point center, double radius)
    : center_(std::move(center)), radius_(radius) {
  OMT_CHECK(center_.dim() >= 1, "ball needs a positioned center");
  OMT_CHECK(radius_ >= 0.0, "negative ball radius");
}

bool Ball::contains(const Point& p) const {
  return p.dim() == dim() &&
         squaredDistance(p, center_) <= radius_ * radius_ + kGeomEps;
}

std::pair<Point, Point> Ball::boundingBox() const {
  return {offsetAll(center_, -radius_), offsetAll(center_, radius_)};
}

std::string Ball::name() const {
  std::ostringstream out;
  out << (dim() == 2 ? "disk" : "ball") << "(d=" << dim() << ", r=" << radius_
      << ")";
  return out.str();
}

Box::Box(Point lo, Point hi) : lo_(std::move(lo)), hi_(std::move(hi)) {
  OMT_CHECK(lo_.dim() == hi_.dim(), "box corner dimension mismatch");
  for (int i = 0; i < lo_.dim(); ++i)
    OMT_CHECK(lo_[i] <= hi_[i], "box corners out of order");
}

bool Box::contains(const Point& p) const {
  if (p.dim() != dim()) return false;
  for (int i = 0; i < dim(); ++i) {
    if (p[i] < lo_[i] - kGeomEps || p[i] > hi_[i] + kGeomEps) return false;
  }
  return true;
}

std::string Box::name() const {
  std::ostringstream out;
  out << "box(d=" << dim() << ")";
  return out.str();
}

ConvexPolygon::ConvexPolygon(std::vector<Point> vertices)
    : vertices_(std::move(vertices)) {
  OMT_CHECK(vertices_.size() >= 3, "polygon needs at least three vertices");
  for (const Point& v : vertices_)
    OMT_CHECK(v.dim() == 2, "polygon vertices must be planar");
  // Verify convexity and counter-clockwise orientation.
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    const Point& c = vertices_[(i + 2) % n];
    const double cross =
        (b[0] - a[0]) * (c[1] - b[1]) - (b[1] - a[1]) * (c[0] - b[0]);
    OMT_CHECK(cross >= -kGeomEps,
              "polygon must be convex with counter-clockwise vertices");
  }
}

bool ConvexPolygon::contains(const Point& p) const {
  if (p.dim() != 2) return false;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    const double cross =
        (b[0] - a[0]) * (p[1] - a[1]) - (b[1] - a[1]) * (p[0] - a[0]);
    if (cross < -kGeomEps) return false;
  }
  return true;
}

std::pair<Point, Point> ConvexPolygon::boundingBox() const {
  Point lo = vertices_.front();
  Point hi = vertices_.front();
  for (const Point& v : vertices_) {
    for (int i = 0; i < 2; ++i) {
      lo[i] = std::min(lo[i], v[i]);
      hi[i] = std::max(hi[i], v[i]);
    }
  }
  return {lo, hi};
}

std::string ConvexPolygon::name() const {
  std::ostringstream out;
  out << "polygon(" << vertices_.size() << " vertices)";
  return out.str();
}

Annulus::Annulus(Point center, double innerRadius, double outerRadius)
    : center_(std::move(center)), inner_(innerRadius), outer_(outerRadius) {
  OMT_CHECK(center_.dim() == 2, "annulus is planar");
  OMT_CHECK(0.0 <= inner_ && inner_ < outer_, "invalid annulus radii");
}

bool Annulus::contains(const Point& p) const {
  if (p.dim() != 2) return false;
  const double d2 = squaredDistance(p, center_);
  return d2 >= inner_ * inner_ - kGeomEps && d2 <= outer_ * outer_ + kGeomEps;
}

std::pair<Point, Point> Annulus::boundingBox() const {
  return {offsetAll(center_, -outer_), offsetAll(center_, outer_)};
}

std::string Annulus::name() const {
  std::ostringstream out;
  out << "annulus(r=" << inner_ << ".." << outer_ << ")";
  return out.str();
}

}  // namespace omt
