#include "omt/geometry/angular_cube.h"

#include <cmath>
#include <numbers>

#include "omt/common/error.h"
#include "omt/geometry/sin_power_integral.h"

namespace omt {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

}  // namespace

PolarCoords toPolar(const Point& p, const Point& origin) {
  OMT_CHECK(p.dim() == origin.dim(), "dimension mismatch");
  const int d = p.dim();
  OMT_CHECK(d >= 2, "polar coordinates require dimension >= 2");

  PolarCoords polar;
  polar.dim = d;
  const Point v = p - origin;
  polar.radius = norm(v);
  if (polar.radius <= 0.0) return polar;  // direction undefined; all-zero cube

  // Suffix norms s[j] = |(v_j, ..., v_{d-1})| computed back to front.
  std::array<double, kMaxDim> suffix{};
  double acc = 0.0;
  for (int j = d - 1; j >= 0; --j) {
    acc += v[j] * v[j];
    suffix[static_cast<std::size_t>(j)] = std::sqrt(acc);
  }

  // Hyperspherical angles theta_1..theta_{d-2} in [0, pi].
  for (int j = 0; j < d - 2; ++j) {
    const double theta = std::atan2(suffix[static_cast<std::size_t>(j + 1)], v[j]);
    polar.cube[static_cast<std::size_t>(j)] = sinPowerCdf(d - 2 - j, theta);
  }
  // Azimuth in [0, 2*pi).
  double phi = std::atan2(v[d - 1], v[d - 2]);
  if (phi < 0.0) phi += kTwoPi;
  polar.cube[static_cast<std::size_t>(d - 2)] = phi / kTwoPi;
  return polar;
}

Point directionFromCube(std::array<double, kMaxDim - 1> cube, int dim) {
  OMT_CHECK(dim >= 2 && dim <= kMaxDim, "dimension out of range");
  Point u(dim);
  double sinProduct = 1.0;
  for (int j = 0; j < dim - 2; ++j) {
    const double theta =
        sinPowerQuantile(dim - 2 - j, cube[static_cast<std::size_t>(j)]);
    u[j] = sinProduct * std::cos(theta);
    sinProduct *= std::sin(theta);
  }
  const double phi = kTwoPi * cube[static_cast<std::size_t>(dim - 2)];
  u[dim - 2] = sinProduct * std::cos(phi);
  u[dim - 1] = sinProduct * std::sin(phi);
  return u;
}

Point fromPolar(const PolarCoords& polar, const Point& origin) {
  OMT_CHECK(polar.dim == origin.dim(), "dimension mismatch");
  if (polar.radius == 0.0) return origin;
  return origin + polar.radius * directionFromCube(polar.cube, polar.dim);
}

}  // namespace omt
