#include "omt/geometry/sin_power_integral.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "omt/common/error.h"

namespace omt {
namespace {

constexpr double kPi = std::numbers::pi;

using sin_power_detail::kQuantileGridIntervals;
using sin_power_detail::kSmallAngleCut;

/// Two-term small-angle series for I_k(t), k >= 2:
///   I_k(t) = t^(k+1)/(k+1) * (1 - k(k+1) t^2 / (6(k+3)) + O(k^2 t^4)).
/// For t <= kSmallAngleCut the dropped term is below 1e-16 relative for all
/// k <= 7 (and shrinks with t^4), so this is exact to double precision
/// exactly where the closed-form recurrence loses every digit to the
/// 1 - cos(t) cancellation.
double smallAngleIntegral(int k, double t) {
  const double kk = static_cast<double>(k);
  const double correction = kk * (kk + 1.0) / (6.0 * (kk + 3.0));
  return std::pow(t, k + 1) / (kk + 1.0) * (1.0 - correction * t * t);
}

/// Inverse of the two-term series: t with I_k(t) = target for targets in
/// the small-angle regime. First-order inversion of the series above:
///   t = T0 * (1 + k T0^2 / (6(k+3))),  T0 = ((k+1) target)^(1/(k+1)).
double smallAngleInverse(int k, double target) {
  const double kk = static_cast<double>(k);
  const double t0 = std::pow((kk + 1.0) * target, 1.0 / (kk + 1.0));
  return t0 * (1.0 + kk * t0 * t0 / (6.0 * (kk + 3.0)));
}

/// Largest integral value still inverted by the series: the one-term value
/// at the cut angle. A (slight) lower bound on I_k(kSmallAngleCut), so any
/// target at or below it has its root inside the series' validity region.
double tailThreshold(int k) {
  return std::pow(kSmallAngleCut, k + 1) / static_cast<double>(k + 1);
}

/// The legacy full-range safeguarded Newton solve (cold start t = pi*u,
/// bracket [0, pi]). Only evaluated at the canonical seed-grid u values
/// now — per-point inversion goes through quantileCore — but its exact
/// iteration sequence still defines the grid quantiles, and through them
/// every bracketed solve. Requires k >= 2 and u in (0, 1).
double fullRangeQuantile(int k, double u) {
  const double total = sinPowerTotal(k);
  const double target = u * total;
  double lo = 0.0;
  double hi = kPi;
  double t = kPi * u;
  for (int iter = 0; iter < 128; ++iter) {
    const double g = sinPowerIntegral(k, t) - target;
    if (g > 0.0) {
      hi = t;
    } else {
      lo = t;
    }
    const double deriv = std::pow(std::sin(t), k);
    double next = (deriv > 1e-300) ? t - g / deriv : (lo + hi) / 2.0;
    if (!(next > lo && next < hi)) next = (lo + hi) / 2.0;
    if (std::abs(next - t) < 1e-15) return next;
    t = next;
  }
  return t;
}

}  // namespace

double sinPowerIntegral(int k, double t) {
  OMT_CHECK(k >= 0, "sin power must be non-negative");
  OMT_CHECK(t >= -1e-9 && t <= kPi + 1e-9, "angle outside [0, pi]");
  t = std::clamp(t, 0.0, kPi);
  if (k == 0) return t;
  if (k == 1) {
    // 1 - cos(t) loses all digits below t ~ 1e-8 (cos rounds to 1); the
    // half-angle identity is exact and agrees to the ulp above the cut.
    if (t < kSmallAngleCut) {
      const double s = std::sin(0.5 * t);
      return 2.0 * s * s;
    }
    return 1.0 - std::cos(t);
  }
  if (t < kSmallAngleCut) return smallAngleIntegral(k, t);
  if (kPi - t < kSmallAngleCut) {
    // The subtraction pi - t is exact (Sterbenz) and I_k is symmetric:
    // I_k(t) = T_k - I_k(pi - t); the recurrence's ~1e-16 absolute noise
    // would otherwise swamp the (pi-t)^(k+1) tail entirely.
    return sinPowerTotal(k) - smallAngleIntegral(k, kPi - t);
  }
  // I_k = ((k-1) I_{k-2} - sin^{k-1}(t) cos(t)) / k, unrolled iteratively
  // from the base case of matching parity.
  double prev = (k % 2 == 0) ? t : 1.0 - std::cos(t);
  const double s = std::sin(t);
  const double c = std::cos(t);
  for (int j = (k % 2 == 0) ? 2 : 3; j <= k; j += 2) {
    const double cur =
        ((j - 1) * prev - std::pow(s, j - 1) * c) / static_cast<double>(j);
    prev = cur;
  }
  return prev;
}

double sinPowerTotal(int k) {
  OMT_CHECK(k >= 0, "sin power must be non-negative");
  // T_0 = pi, T_1 = 2, T_k = (k-1)/k * T_{k-2}.
  double total = (k % 2 == 0) ? kPi : 2.0;
  for (int j = (k % 2 == 0) ? 2 : 3; j <= k; j += 2) {
    total *= static_cast<double>(j - 1) / static_cast<double>(j);
  }
  return total;
}

double sinPowerCdf(int k, double t) {
  return sinPowerIntegral(k, t) / sinPowerTotal(k);
}

namespace sin_power_detail {

double seriesInverse(int k, double target) { return smallAngleInverse(k, target); }

double seriesThreshold(int k) { return tailThreshold(k); }

double gridQuantile(int k, int j) {
  OMT_CHECK(k >= 2, "grid quantiles are defined for k >= 2");
  OMT_CHECK(j >= 0 && j <= kQuantileGridIntervals, "grid index out of range");
  if (j == 0) return 0.0;
  if (j == kQuantileGridIntervals) return kPi;
  // j / kQuantileGridIntervals is exact: the denominator is a power of two.
  const double u =
      static_cast<double>(j) / static_cast<double>(kQuantileGridIntervals);
  return fullRangeQuantile(k, u);
}

double quantileCore(int k, double u, double target, const double* brackets,
                    int* iterations) {
  if (target <= 0.0) return 0.0;
  if (k == 0) return target;  // I_0(t) = t
  if (k == 1) {
    // I_1(t) = 2 sin^2(t/2), total 2. In both tails acos(1 - 2u) has
    // already rounded its argument to +-1; the half-angle form inverts
    // with full relative precision down to the smallest positive target.
    // (sinPowerQuantile's own k == 1 branch returns before reaching here,
    // so this changes only the unnormalised inverse.)
    if (target <= tailThreshold(1))
      return 2.0 * std::asin(std::sqrt(0.5 * target));
    const double oneTail = 2.0 - target;
    if (oneTail <= tailThreshold(1))
      return kPi - 2.0 * std::asin(std::sqrt(0.5 * oneTail));
    return std::acos(1.0 - 2.0 * u);
  }

  const double total = sinPowerTotal(k);
  if (target >= total) return kPi;
  const double threshold = tailThreshold(k);
  if (target <= threshold) return smallAngleInverse(k, target);
  // total - target is exact for target >= total/2 (Sterbenz), preserving
  // the tail's relative precision down to one ulp of the total.
  const double tail = total - target;
  if (tail <= threshold) return kPi - smallAngleInverse(k, tail);

  int j = static_cast<int>(u * kQuantileGridIntervals);
  j = std::clamp(j, 0, kQuantileGridIntervals - 1);
  const double tLo = brackets ? brackets[j] : gridQuantile(k, j);
  const double tHi = brackets ? brackets[j + 1] : gridQuantile(k, j + 1);

  // Canonical seed: asymptotic inversion in the edge intervals (where the
  // quantile has infinite slope and linear interpolation is poor), linear
  // interpolation across the bracket in the interior. Either way the
  // safeguard below forces the seed into (tLo, tHi), so the result is a
  // pure function of (k, u, target) and the canonical bracket values.
  double seed;
  if (j == 0) {
    seed = smallAngleInverse(k, target);
  } else if (j == kQuantileGridIntervals - 1) {
    seed = kPi - smallAngleInverse(k, tail);
  } else {
    const double frac = u * kQuantileGridIntervals - static_cast<double>(j);
    seed = tLo + frac * (tHi - tLo);
  }
  if (!(seed > tLo && seed < tHi)) seed = 0.5 * (tLo + tHi);

  // Safeguarded Newton inside the bracket; the seed is within O(1e-6) of
  // the root (bracket width ~1e-3, quadratic interpolation error), so
  // quadratic convergence reaches the 1e-15 step tolerance in ~2-3 steps.
  double lo = tLo;
  double hi = tHi;
  double t = seed;
  for (int iter = 0; iter < 64; ++iter) {
    if (iterations) ++*iterations;
    const double g = sinPowerIntegral(k, t) - target;
    if (g > 0.0) {
      hi = t;
    } else {
      lo = t;
    }
    const double deriv = std::pow(std::sin(t), k);
    double next = (deriv > 1e-300) ? t - g / deriv : (lo + hi) / 2.0;
    if (!(next > lo && next < hi)) next = (lo + hi) / 2.0;
    if (std::abs(next - t) < 1e-15) return next;
    t = next;
  }
  return t;
}

}  // namespace sin_power_detail

double sinPowerQuantile(int k, double u) {
  OMT_CHECK(k >= 0, "sin power must be non-negative");
  OMT_CHECK(u >= -1e-12 && u <= 1.0 + 1e-12, "quantile outside [0, 1]");
  u = std::clamp(u, 0.0, 1.0);
  if (u == 0.0) return 0.0;
  if (u == 1.0) return kPi;
  if (k == 0) return u * kPi;
  if (k == 1) return std::acos(1.0 - 2.0 * u);
  const double target = u * sinPowerTotal(k);
  return sin_power_detail::quantileCore(k, u, target, nullptr, nullptr);
}

double sinPowerIntegralInverse(int k, double value) {
  OMT_CHECK(k >= 0, "sin power must be non-negative");
  const double total = sinPowerTotal(k);
  OMT_CHECK(value >= -1e-12 * total && value <= total * (1.0 + 1e-12),
            "integral value outside [0, total]");
  value = std::clamp(value, 0.0, total);
  // Unlike the normalised quantile, the u here only selects the seed-grid
  // interval; the Newton target keeps the full precision of `value`, which
  // is what makes the near-endpoint round trips accurate.
  const double u = value / total;
  return sin_power_detail::quantileCore(k, u, value, nullptr, nullptr);
}

}  // namespace omt
