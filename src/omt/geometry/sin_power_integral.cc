#include "omt/geometry/sin_power_integral.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "omt/common/error.h"

namespace omt {
namespace {

constexpr double kPi = std::numbers::pi;

}  // namespace

double sinPowerIntegral(int k, double t) {
  OMT_CHECK(k >= 0, "sin power must be non-negative");
  OMT_CHECK(t >= -1e-9 && t <= kPi + 1e-9, "angle outside [0, pi]");
  t = std::clamp(t, 0.0, kPi);
  if (k == 0) return t;
  if (k == 1) return 1.0 - std::cos(t);
  // I_k = ((k-1) I_{k-2} - sin^{k-1}(t) cos(t)) / k, unrolled iteratively
  // from the base case of matching parity.
  double prev = (k % 2 == 0) ? t : 1.0 - std::cos(t);
  const double s = std::sin(t);
  const double c = std::cos(t);
  for (int j = (k % 2 == 0) ? 2 : 3; j <= k; j += 2) {
    const double cur =
        ((j - 1) * prev - std::pow(s, j - 1) * c) / static_cast<double>(j);
    prev = cur;
  }
  return prev;
}

double sinPowerTotal(int k) {
  OMT_CHECK(k >= 0, "sin power must be non-negative");
  // T_0 = pi, T_1 = 2, T_k = (k-1)/k * T_{k-2}.
  double total = (k % 2 == 0) ? kPi : 2.0;
  for (int j = (k % 2 == 0) ? 2 : 3; j <= k; j += 2) {
    total *= static_cast<double>(j - 1) / static_cast<double>(j);
  }
  return total;
}

double sinPowerCdf(int k, double t) {
  return sinPowerIntegral(k, t) / sinPowerTotal(k);
}

double sinPowerQuantile(int k, double u) {
  OMT_CHECK(k >= 0, "sin power must be non-negative");
  OMT_CHECK(u >= -1e-12 && u <= 1.0 + 1e-12, "quantile outside [0, 1]");
  u = std::clamp(u, 0.0, 1.0);
  if (u == 0.0) return 0.0;
  if (u == 1.0) return kPi;
  if (k == 0) return u * kPi;
  if (k == 1) return std::acos(1.0 - 2.0 * u);

  const double total = sinPowerTotal(k);
  const double target = u * total;
  // Newton iteration on g(t) = I_k(t) - target, g'(t) = sin^k(t), safeguarded
  // by a shrinking bisection bracket: near t = 0 and t = pi the derivative
  // vanishes for k >= 2, so unguarded Newton can escape the domain.
  double lo = 0.0;
  double hi = kPi;
  double t = kPi * u;  // reasonable initial guess
  for (int iter = 0; iter < 128; ++iter) {
    const double g = sinPowerIntegral(k, t) - target;
    if (g > 0.0) {
      hi = t;
    } else {
      lo = t;
    }
    const double deriv = std::pow(std::sin(t), k);
    double next = (deriv > 1e-300) ? t - g / deriv : (lo + hi) / 2.0;
    if (!(next > lo && next < hi)) next = (lo + hi) / 2.0;
    if (std::abs(next - t) < 1e-15) return next;
    t = next;
  }
  return t;
}

}  // namespace omt
