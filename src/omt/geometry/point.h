// A small fixed-capacity Euclidean point/vector of runtime dimension.
//
// The paper maps every communicating host to a point in d-dimensional
// Euclidean space and approximates unicast delay by Euclidean distance.
// Point is the value type used everywhere for host coordinates. It holds up
// to kMaxDim coordinates inline (no heap allocation), so arrays of millions
// of points are contiguous and cache-friendly, which is what makes the
// 5,000,000-node experiments of Table I feasible.
#pragma once

#include <array>
#include <initializer_list>
#include <iosfwd>
#include <span>

#include "omt/common/error.h"
#include "omt/common/types.h"

namespace omt {

class Point {
 public:
  /// Zero-dimensional point; mostly useful as a placeholder before
  /// assignment. Operations requiring coordinates check the dimension.
  constexpr Point() = default;

  /// The origin of `dim`-dimensional space.
  explicit Point(int dim) : dim_(dim) {
    OMT_CHECK(dim >= 0 && dim <= kMaxDim, "point dimension out of range");
  }

  /// Point with the given coordinates, e.g. Point{0.3, -1.2}.
  Point(std::initializer_list<double> coords) {
    OMT_CHECK(coords.size() <= static_cast<std::size_t>(kMaxDim),
              "too many coordinates");
    dim_ = static_cast<int>(coords.size());
    int i = 0;
    for (double c : coords) coords_[static_cast<std::size_t>(i++)] = c;
  }

  /// Point with coordinates copied from a span.
  explicit Point(std::span<const double> coords) {
    OMT_CHECK(coords.size() <= static_cast<std::size_t>(kMaxDim),
              "too many coordinates");
    dim_ = static_cast<int>(coords.size());
    for (int i = 0; i < dim_; ++i)
      coords_[static_cast<std::size_t>(i)] = coords[static_cast<std::size_t>(i)];
  }

  int dim() const { return dim_; }

  double operator[](int i) const {
    OMT_ASSERT(i >= 0 && i < dim_, "coordinate index out of range");
    return coords_[static_cast<std::size_t>(i)];
  }
  double& operator[](int i) {
    OMT_ASSERT(i >= 0 && i < dim_, "coordinate index out of range");
    return coords_[static_cast<std::size_t>(i)];
  }

  std::span<const double> coords() const {
    return {coords_.data(), static_cast<std::size_t>(dim_)};
  }

  Point& operator+=(const Point& o);
  Point& operator-=(const Point& o);
  Point& operator*=(double s);
  Point& operator/=(double s);

  friend Point operator+(Point a, const Point& b) { return a += b; }
  friend Point operator-(Point a, const Point& b) { return a -= b; }
  friend Point operator*(Point a, double s) { return a *= s; }
  friend Point operator*(double s, Point a) { return a *= s; }
  friend Point operator/(Point a, double s) { return a /= s; }

  friend bool operator==(const Point& a, const Point& b) {
    if (a.dim_ != b.dim_) return false;
    for (int i = 0; i < a.dim_; ++i)
      if (a[i] != b[i]) return false;
    return true;
  }

 private:
  std::array<double, kMaxDim> coords_{};
  int dim_ = 0;
};

/// Inner product; both points must have the same dimension.
double dot(const Point& a, const Point& b);

/// Euclidean length of the vector from the origin to `p`.
double norm(const Point& p);

/// Squared Euclidean length (avoids the sqrt when comparing).
double squaredNorm(const Point& p);

/// Euclidean distance between `a` and `b` — the delay model of the paper.
double distance(const Point& a, const Point& b);

/// Squared Euclidean distance.
double squaredDistance(const Point& a, const Point& b);

std::ostream& operator<<(std::ostream& out, const Point& p);

}  // namespace omt
