#include "omt/geometry/ring_segment.h"

#include <cmath>
#include <numbers>

#include "omt/common/error.h"

namespace omt {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

double wrapIntoUnitPeriod(double x, double lo) {
  double y = std::fmod(x - lo, 1.0);
  if (y < 0.0) y += 1.0;
  return lo + y;
}

}  // namespace

RingSegment::RingSegment(int dim, Interval radial,
                         std::span<const Interval> cube)
    : dim_(dim), radial_(radial) {
  OMT_CHECK(dim >= 2 && dim <= kMaxDim, "segment dimension out of range");
  OMT_CHECK(cube.size() == static_cast<std::size_t>(dim - 1),
            "need one cube interval per angular axis");
  OMT_CHECK(radial.lo >= -kGeomEps && radial.lo <= radial.hi + kGeomEps,
            "invalid radial interval");
  for (int j = 0; j < dim - 1; ++j) {
    const Interval& iv = cube[static_cast<std::size_t>(j)];
    OMT_CHECK(iv.lo <= iv.hi + kGeomEps, "invalid cube interval");
    if (j == azimuthAxis(dim)) {
      OMT_CHECK(iv.width() <= 1.0 + kGeomEps,
                "azimuth interval wider than one period");
    } else {
      OMT_CHECK(iv.lo >= -kGeomEps && iv.hi <= 1.0 + kGeomEps,
                "polar-angle cube interval outside [0, 1]");
    }
    cube_[static_cast<std::size_t>(j)] = iv;
  }
}

RingSegment RingSegment::fullBall(int dim, double r) {
  OMT_CHECK(r >= 0.0, "negative radius");
  std::array<Interval, kMaxDim - 1> cube;
  for (int j = 0; j < dim - 1; ++j)
    cube[static_cast<std::size_t>(j)] = Interval{0.0, 1.0};
  return RingSegment(
      dim, Interval{0.0, r},
      std::span<const Interval>(cube.data(), static_cast<std::size_t>(dim - 1)));
}

const Interval& RingSegment::cubeAxis(int j) const {
  OMT_ASSERT(j >= 0 && j < cubeAxes(), "cube axis out of range");
  return cube_[static_cast<std::size_t>(j)];
}

double RingSegment::angleSpan() const {
  return cubeAxis(azimuthAxis(dim_)).width() * kTwoPi;
}

std::array<double, kMaxDim - 1> RingSegment::normalizedCube(
    const PolarCoords& p) const {
  OMT_ASSERT(p.dim == dim_, "dimension mismatch");
  std::array<double, kMaxDim - 1> out = p.cube;
  const int az = azimuthAxis(dim_);
  out[static_cast<std::size_t>(az)] = wrapIntoUnitPeriod(
      out[static_cast<std::size_t>(az)], cube_[static_cast<std::size_t>(az)].lo);
  return out;
}

bool RingSegment::contains(const PolarCoords& p, double eps) const {
  if (p.dim != dim_) return false;
  if (!radial_.contains(p.radius, eps)) return false;
  const auto cube = normalizedCube(p);
  for (int j = 0; j < cubeAxes(); ++j) {
    if (!cube_[static_cast<std::size_t>(j)].contains(
            cube[static_cast<std::size_t>(j)], eps))
      return false;
  }
  return true;
}

int RingSegment::subsegmentIndex(const PolarCoords& p) const {
  OMT_ASSERT(p.dim == dim_, "dimension mismatch");
  int index = 0;
  if (p.radius > radial_.mid()) index |= 1;
  const auto cube = normalizedCube(p);
  for (int j = 0; j < cubeAxes(); ++j) {
    if (cube[static_cast<std::size_t>(j)] >
        cube_[static_cast<std::size_t>(j)].mid())
      index |= 1 << (1 + j);
  }
  return index;
}

RingSegment RingSegment::subsegment(int index) const {
  OMT_ASSERT(index >= 0 && index < subsegmentCount(),
             "subsegment index out of range");
  std::array<Interval, kMaxDim - 1> cube;
  for (int j = 0; j < cubeAxes(); ++j) {
    cube[static_cast<std::size_t>(j)] =
        cube_[static_cast<std::size_t>(j)].half((index >> (1 + j)) & 1);
  }
  return RingSegment(
      dim_, radial_.half(index & 1),
      std::span<const Interval>(cube.data(), static_cast<std::size_t>(cubeAxes())));
}

double RingSegment::extentMeasure() const {
  return std::max(radial_.width(), outerArcLength());
}

}  // namespace omt
