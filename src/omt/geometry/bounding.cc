#include "omt/geometry/bounding.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "omt/common/error.h"

namespace omt {

Interval circularHull(std::span<const double> values, double period) {
  OMT_CHECK(period > 0.0, "period must be positive");
  if (values.empty()) return {0.0, 0.0};

  std::vector<double> reduced(values.begin(), values.end());
  for (double& v : reduced) {
    v = std::fmod(v, period);
    if (v < 0.0) v += period;
  }
  std::sort(reduced.begin(), reduced.end());

  // The hull is the complement of the largest gap between consecutive
  // values on the circle.
  double bestGap = period - reduced.back() + reduced.front();
  std::size_t bestAfter = reduced.size() - 1;  // gap after this index
  for (std::size_t i = 0; i + 1 < reduced.size(); ++i) {
    const double gap = reduced[i + 1] - reduced[i];
    if (gap > bestGap) {
      bestGap = gap;
      bestAfter = i;
    }
  }
  const double lo = reduced[(bestAfter + 1) % reduced.size()];
  double hi = reduced[bestAfter];
  if (hi < lo) hi += period;
  return {lo, hi};
}

Point farRingCenter(std::span<const Point> points) {
  OMT_CHECK(!points.empty(), "empty point set");
  const int d = points.front().dim();
  OMT_CHECK(d >= 2, "need dimension >= 2");

  Point lo = points.front();
  Point hi = points.front();
  for (const Point& p : points) {
    OMT_CHECK(p.dim() == d, "mixed dimensions in point set");
    for (int i = 0; i < d; ++i) {
      lo[i] = std::min(lo[i], p[i]);
      hi[i] = std::max(hi[i], p[i]);
    }
  }
  const double diag = distance(lo, hi);
  // Distance M = 8 * diagonal guarantees r/R >= (M - diag)/(M + diag) = 7/9
  // > 0.6 and angle a <= 2 atan(diag / (2 (M - diag))) ~ 0.14 rad, well
  // within sin a > 5a/6 (which holds up to a ~ 0.99 rad).
  const double far = 8.0 * std::max(diag, 0.125);  // floor keeps M >= 1
  Point center = (lo + hi) / 2.0;
  center[0] -= far;
  return center;
}

RingSegment tightSegment(std::span<const Point> points,
                         const Point& ringCenter) {
  OMT_CHECK(!points.empty(), "empty point set");
  const int d = ringCenter.dim();
  OMT_CHECK(d >= 2, "need dimension >= 2");

  Interval radial{kInf, 0.0};
  std::array<Interval, kMaxDim - 1> cube;
  for (int j = 0; j < d - 1; ++j)
    cube[static_cast<std::size_t>(j)] = Interval{kInf, -kInf};
  std::vector<double> azimuths;
  azimuths.reserve(points.size());
  bool sawCenterPoint = false;

  for (const Point& p : points) {
    const PolarCoords polar = toPolar(p, ringCenter);
    if (polar.radius <= 0.0) {
      sawCenterPoint = true;  // direction undefined; handled via radial lo
      continue;
    }
    radial.lo = std::min(radial.lo, polar.radius);
    radial.hi = std::max(radial.hi, polar.radius);
    for (int j = 0; j < d - 2; ++j) {
      Interval& iv = cube[static_cast<std::size_t>(j)];
      iv.lo = std::min(iv.lo, polar.cube[static_cast<std::size_t>(j)]);
      iv.hi = std::max(iv.hi, polar.cube[static_cast<std::size_t>(j)]);
    }
    azimuths.push_back(polar.cube[static_cast<std::size_t>(d - 2)]);
  }

  if (azimuths.empty()) {
    // Every point coincides with the ring center: a degenerate segment.
    radial = {0.0, 0.0};
    for (int j = 0; j < d - 1; ++j)
      cube[static_cast<std::size_t>(j)] = Interval{0.0, 0.0};
    return RingSegment(
        d, radial,
        std::span<const Interval>(cube.data(), static_cast<std::size_t>(d - 1)));
  }

  if (sawCenterPoint) radial.lo = 0.0;
  cube[static_cast<std::size_t>(d - 2)] = circularHull(azimuths, 1.0);
  for (int j = 0; j < d - 2; ++j) {
    Interval& iv = cube[static_cast<std::size_t>(j)];
    if (iv.lo > iv.hi) iv = Interval{0.0, 0.0};  // d == 2 has no such axes
  }
  return RingSegment(
      d, radial,
      std::span<const Interval>(cube.data(), static_cast<std::size_t>(d - 1)));
}

}  // namespace omt
