// Metrics registry: named counters, gauges, and fixed-bucket histograms
// with Prometheus-style text exposition and a JSON snapshot.
//
// Naming convention: omt_<subsystem>_<name>, lowercase with underscores;
// counters end in _total, histograms of durations in _seconds. The registry
// rejects anything else so dashboards never chase typos.
//
// Determinism contract: every instrument is registered as deterministic or
// nondeterministic. Deterministic metrics are pure functions of the inputs
// (seeds, options) — counters incremented once per logical item reduce by
// integer addition, which is order-independent, so their values match for
// any worker count. Scheduling-dependent quantities (queue waits, chunk
// counts, inline collapses) MUST be registered kNondeterministic; they are
// excluded from deterministicText(), the snapshot the property test
// compares across OMT_THREADS=1,2,8.
//
// Hot-path cost: instruments hold relaxed atomics and check obs::enabled()
// first, so a disabled run pays one predicted branch per event and a
// compiled-out build (cmake -DOMT_OBS=OFF) pays nothing. Look up
// instruments once (static local reference), not per event.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "omt/obs/obs.h"

namespace omt::obs {

enum class Determinism : std::uint8_t { kDeterministic, kNondeterministic };

/// Monotone event count. Reduces by addition: deterministic whenever each
/// logical event is counted exactly once, regardless of thread interleaving.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    if (!enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<std::int64_t> value_{0};
};

/// Last-written level (ring counts, live hosts, worker counts).
class Gauge {
 public:
  void set(double value) {
    if (!enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void reset() { value_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Buckets are cumulative-upper-bound style
/// (Prometheus `le`); one implicit +Inf bucket catches the overflow.
/// Percentiles are extracted from the bucket counts with linear
/// interpolation inside the winning bucket (the +Inf bucket reports the
/// last finite bound — same convention as PromQL's histogram_quantile).
class Histogram {
 public:
  void observe(double value) {
    if (!enabled()) return;
    std::size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  std::span<const double> bounds() const { return bounds_; }
  /// Count in bucket i; i == bounds().size() is the +Inf overflow bucket.
  std::int64_t bucketCount(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Quantile in [0, 1] estimated from the buckets; 0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> upperBounds);
  void reset();

  std::vector<double> bounds_;  ///< ascending, finite upper bounds
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;  ///< bounds_+1 cells
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default duration buckets (seconds): 1us .. ~100s in half-decade steps.
std::vector<double> defaultLatencyBuckets();

/// The process-wide registry. Registration (first lookup of a name) takes a
/// mutex; recording on the returned instrument is lock-free. Instrument
/// references stay valid for the process lifetime — resetValues() zeroes
/// values but never invalidates them.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Find-or-create. The name must match omt_<subsystem>_<name> (lowercase
  /// [a-z0-9_], "omt_" prefix); re-registering an existing name with a
  /// different kind or determinism throws omt::InvalidArgument.
  Counter& counter(const std::string& name,
                   Determinism det = Determinism::kDeterministic);
  Gauge& gauge(const std::string& name,
               Determinism det = Determinism::kDeterministic);
  /// `upperBounds` must be ascending and finite; empty uses
  /// defaultLatencyBuckets(). Bounds are fixed at first registration.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upperBounds = {},
                       Determinism det = Determinism::kDeterministic);

  /// Prometheus text exposition (sorted by name, `# TYPE` comments,
  /// histogram _bucket/_sum/_count series). Parseable by any scraper.
  std::string prometheusText(bool includeNondeterministic = true) const;
  /// The deterministic subset only — the property-test contract surface.
  std::string deterministicText() const { return prometheusText(false); }
  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, p50, p95, p99, buckets: [...]}}}.
  /// Nondeterministic instruments carry "nondeterministic": true.
  std::string jsonSnapshot() const;

  /// Zero every value, keeping registrations (and references) intact.
  void resetValues();

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    Determinism det;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& registerEntry(const std::string& name, Kind kind, Determinism det);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  ///< sorted -> stable exposition
};

}  // namespace omt::obs
