#include "omt/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>

#include "omt/common/error.h"

namespace omt::obs {
namespace {

/// Steady-clock anchor so exported timestamps start near zero.
std::chrono::steady_clock::time_point processAnchor() {
  static const auto anchor = std::chrono::steady_clock::now();
  return anchor;
}

std::string jsonEscape(const char* text) {
  std::string out;
  for (const char* p = text; *p != '\0'; ++p) {
    switch (*p) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(*p);
    }
  }
  return out;
}

}  // namespace

std::int64_t monotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - processAnchor())
      .count();
}

/// One per assigned thread; the mutex is uncontended unless more than
/// kShards threads record concurrently and hash onto the same slot.
struct alignas(64) TraceRecorder::Shard {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint64_t nextSequence = 0;
};

TraceRecorder::TraceRecorder() : shards_(new Shard[kShards]) {
  processAnchor();  // pin the time origin at recorder creation
}

TraceRecorder::~TraceRecorder() { delete[] shards_; }

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed:
  return *recorder;  // worker threads may record during static teardown
}

TraceRecorder::Shard& TraceRecorder::shardOfThisThread() {
  thread_local int slot = -1;
  if (slot < 0)
    slot = static_cast<int>(nextShard_.fetch_add(1, std::memory_order_relaxed) %
                            kShards);
  return shards_[slot];
}

SpanId TraceRecorder::mintId() {
  return nextId_.fetch_add(1, std::memory_order_relaxed);
}

void TraceRecorder::record(const char* name, const char* category, SpanId id,
                           SpanId parent, std::int64_t startNs,
                           std::int64_t durationNs) {
  Shard& shard = shardOfThisThread();
  std::lock_guard<std::mutex> lock(shard.mutex);
  TraceEvent event{name,    category,   id,
                   parent,  startNs,    durationNs,
                   static_cast<int>(&shard - shards_), shard.nextSequence++};
  shard.events.push_back(event);
}

std::vector<TraceEvent> TraceRecorder::sortedEvents() const {
  std::vector<TraceEvent> merged;
  for (int s = 0; s < kShards; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    merged.insert(merged.end(), shards_[s].events.begin(),
                  shards_[s].events.end());
  }
  // Shards were appended in slot order and each shard is already in
  // sequence order, but sort anyway so the contract is explicit.
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.shard != b.shard ? a.shard < b.shard
                                        : a.sequence < b.sequence;
            });
  return merged;
}

std::int64_t TraceRecorder::eventCount() const {
  std::int64_t total = 0;
  for (int s = 0; s < kShards; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    total += static_cast<std::int64_t>(shards_[s].events.size());
  }
  return total;
}

void TraceRecorder::clear() {
  for (int s = 0; s < kShards; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    shards_[s].events.clear();
    shards_[s].nextSequence = 0;
  }
}

void TraceRecorder::writeChromeTrace(std::ostream& out) const {
  const std::vector<TraceEvent> events = sortedEvents();
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out << ", ";
    first = false;
    std::ostringstream ts, dur;
    ts.precision(3);
    dur.precision(3);
    ts << std::fixed << static_cast<double>(e.startNs) / 1e3;
    dur << std::fixed << static_cast<double>(e.durationNs) / 1e3;
    out << "{\"name\": \"" << jsonEscape(e.name) << "\", \"cat\": \""
        << jsonEscape(e.category) << "\", \"ph\": \"X\", \"ts\": " << ts.str()
        << ", \"dur\": " << dur.str() << ", \"pid\": 1, \"tid\": " << e.shard
        << ", \"args\": {\"id\": " << e.id << ", \"parent\": " << e.parent
        << ", \"seq\": " << e.sequence << "}}";
  }
  out << "]}\n";
}

void TraceRecorder::writeChromeTraceFile(const std::string& path) const {
  std::ofstream out(path);
  OMT_CHECK(out.good(), "cannot open trace file " + path);
  writeChromeTrace(out);
}

}  // namespace omt::obs
