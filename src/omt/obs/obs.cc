#include "omt/obs/obs.h"

#include <cstdlib>

namespace omt::obs {
namespace detail {

std::atomic<bool> gEnabled{[] {
  const char* env = std::getenv("OMT_OBS");
  return env != nullptr && std::atoi(env) != 0;
}()};

}  // namespace detail

void setEnabled(bool on) {
  detail::gEnabled.store(on, std::memory_order_relaxed);
}

}  // namespace omt::obs
