// Observability master switch.
//
// The whole obs subsystem (trace spans in trace.h, metric instruments in
// metrics.h) is gated twice:
//   * compile time: configure with -DOMT_OBS=OFF and every recording call
//     collapses to `if (false)` — the instrumentation in the hot paths
//     costs literally nothing (the cmake option defines OMT_OBS_DISABLED);
//   * run time: even when compiled in, recording is off by default. One
//     relaxed atomic load guards every instrument, so a disabled build
//     pays a predictable, branch-predicted test per coarse-grained event
//     (stages, chunks, RPC calls — never per point).
// Enable with setEnabled(true) (what `omtcli --trace/--metrics` does) or by
// exporting OMT_OBS=1 before the process starts (what the benches document).
#pragma once

#include <atomic>

namespace omt::obs {

namespace detail {
extern std::atomic<bool> gEnabled;  ///< seeded from the OMT_OBS env variable
}

/// True iff instruments should record. Constant false when the subsystem
/// was compiled out, so dependent code folds away entirely.
inline bool enabled() {
#ifdef OMT_OBS_DISABLED
  return false;
#else
  return detail::gEnabled.load(std::memory_order_relaxed);
#endif
}

/// Turn runtime recording on or off. With OMT_OBS compiled out this still
/// flips the flag but enabled() keeps returning false.
void setEnabled(bool on);

/// True iff the subsystem was compiled in (cmake option OMT_OBS, default ON).
constexpr bool compiledIn() {
#ifdef OMT_OBS_DISABLED
  return false;
#else
  return true;
#endif
}

}  // namespace omt::obs
