// Low-overhead tracing: RAII spans collected into lock-sharded per-thread
// buffers, exported as Chrome trace_event JSON (chrome://tracing, Perfetto).
//
// Model: a TraceSpan measures one named interval on the calling thread.
// Parentage is explicit — pass the parent's id() to the child's
// constructor; there is no implicit thread-local span stack, so a span
// opened on one thread can parent work recorded on another (the pool
// workers inside a construction stage). Span names and categories are
// string literals (the recorder stores the pointers, not copies).
//
// Sharding: each thread is assigned one of kShards buffers on first record;
// a shard has its own mutex (uncontended in steady state) and a per-shard
// sequence number. Export merges shards deterministically by
// (shard slot, sequence) — the order events were recorded within each
// thread — so two exports of the same recorded set are byte-identical.
// Timestamps themselves are wall-clock measurements and therefore vary run
// to run; the trace is timing data, outside the metrics determinism
// contract (see docs/observability.md).
//
// Cost: a disabled span (obs::enabled() false) is two relaxed loads and no
// allocation; a compiled-out build records nothing at all.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "omt/obs/obs.h"

namespace omt::obs {

/// Span identifier; 0 means "no span" (top level, or recording disabled).
using SpanId = std::uint64_t;

struct TraceEvent {
  const char* name = "";
  const char* category = "";
  SpanId id = 0;
  SpanId parent = 0;
  std::int64_t startNs = 0;     ///< steady-clock ns since process anchor
  std::int64_t durationNs = 0;
  int shard = 0;                ///< exported as the Chrome tid
  std::uint64_t sequence = 0;   ///< per-shard record order
};

/// Nanoseconds on the steady clock since the process-wide anchor (first
/// use). Monotone within a process; comparable across threads.
std::int64_t monotonicNowNs();

class TraceRecorder {
 public:
  static constexpr int kShards = 64;

  static TraceRecorder& global();

  /// Append one completed event to the calling thread's shard. The name and
  /// category pointers must outlive the recorder (use string literals).
  void record(const char* name, const char* category, SpanId id, SpanId parent,
              std::int64_t startNs, std::int64_t durationNs);

  /// Mint a process-unique span id (never 0).
  SpanId mintId();

  /// All recorded events merged by (shard, sequence); leaves the buffers
  /// intact. The merge order is deterministic for a fixed recorded set.
  std::vector<TraceEvent> sortedEvents() const;

  std::int64_t eventCount() const;
  void clear();

  /// Chrome trace_event JSON: {"traceEvents": [...]} with complete ("X")
  /// events, ts/dur in microseconds, tid = shard slot. Loads in
  /// chrome://tracing and Perfetto; parses with omt::json::parse.
  void writeChromeTrace(std::ostream& out) const;
  void writeChromeTraceFile(const std::string& path) const;

 private:
  struct Shard;
  TraceRecorder();
  ~TraceRecorder();
  Shard& shardOfThisThread();

  Shard* shards_;  ///< kShards, cache-line padded
  std::atomic<std::uint32_t> nextShard_{0};
  std::atomic<SpanId> nextId_{1};
};

/// RAII span: measures construction to destruction (or end()) and records
/// into the global recorder. Inactive (id() == 0, records nothing) when
/// observability is disabled at construction time.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* category = "omt",
                     SpanId parent = 0)
      : name_(name), category_(category), parent_(parent) {
    if (!enabled()) return;
    id_ = TraceRecorder::global().mintId();
    startNs_ = monotonicNowNs();
  }
  ~TraceSpan() { end(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// 0 when inactive; pass to children as their explicit parent.
  SpanId id() const { return id_; }

  /// Close early (idempotent); the destructor becomes a no-op.
  void end() {
    if (id_ == 0) return;
    TraceRecorder::global().record(name_, category_, id_, parent_, startNs_,
                                   monotonicNowNs() - startNs_);
    id_ = 0;
  }

 private:
  const char* name_;
  const char* category_;
  SpanId id_ = 0;
  SpanId parent_ = 0;
  std::int64_t startNs_ = 0;
};

}  // namespace omt::obs
