#include "omt/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "omt/common/error.h"

namespace omt::obs {
namespace {

bool validMetricName(const std::string& name) {
  if (name.rfind("omt_", 0) != 0 || name.size() <= 4) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

/// Shortest round-trip formatting; integers print without a trailing ".0"
/// so counter values stay integral in the exposition.
std::string formatNumber(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 1e15) {
    std::ostringstream out;
    out << static_cast<std::int64_t>(value);
    return out.str();
  }
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)) {
  OMT_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    OMT_CHECK(std::isfinite(bounds_[i]), "histogram bounds must be finite");
    OMT_CHECK(i == 0 || bounds_[i - 1] < bounds_[i],
              "histogram bounds must be strictly ascending");
  }
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  OMT_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const std::int64_t total = count();
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::int64_t inBucket = bucketCount(i);
    if (inBucket == 0) continue;
    if (static_cast<double>(cumulative + inBucket) >= rank) {
      if (i == bounds_.size()) return bounds_.back();  // +Inf bucket
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(inBucket);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    cumulative += inBucket;
  }
  return bounds_.back();
}

std::vector<double> defaultLatencyBuckets() {
  return {1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2,
          5e-2, 0.1,  0.5,  1.0,  5.0,  10.0, 50.0, 100.0};
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry& MetricsRegistry::registerEntry(const std::string& name,
                                                       Kind kind,
                                                       Determinism det) {
  OMT_CHECK(validMetricName(name),
            "metric name '" + name +
                "' violates the omt_<subsystem>_<name> convention");
  auto [it, inserted] = entries_.try_emplace(name);
  Entry& entry = it->second;
  if (inserted) {
    entry.kind = kind;
    entry.det = det;
  } else {
    OMT_CHECK(entry.kind == kind,
              "metric '" + name + "' re-registered as a different kind");
    OMT_CHECK(entry.det == det,
              "metric '" + name + "' re-registered with different determinism");
  }
  return entry;
}

Counter& MetricsRegistry::counter(const std::string& name, Determinism det) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = registerEntry(name, Kind::kCounter, det);
  if (!entry.counter) entry.counter = std::unique_ptr<Counter>(new Counter());
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Determinism det) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = registerEntry(name, Kind::kGauge, det);
  if (!entry.gauge) entry.gauge = std::unique_ptr<Gauge>(new Gauge());
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upperBounds,
                                      Determinism det) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = registerEntry(name, Kind::kHistogram, det);
  if (!entry.histogram) {
    if (upperBounds.empty()) upperBounds = defaultLatencyBuckets();
    entry.histogram =
        std::unique_ptr<Histogram>(new Histogram(std::move(upperBounds)));
  } else if (!upperBounds.empty()) {
    OMT_CHECK(std::equal(upperBounds.begin(), upperBounds.end(),
                         entry.histogram->bounds().begin(),
                         entry.histogram->bounds().end()),
              "metric '" + name + "' re-registered with different buckets");
  }
  return *entry.histogram;
}

std::string MetricsRegistry::prometheusText(
    bool includeNondeterministic) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, entry] : entries_) {
    if (!includeNondeterministic && entry.det == Determinism::kNondeterministic)
      continue;
    switch (entry.kind) {
      case Kind::kCounter:
        out << "# TYPE " << name << " counter\n"
            << name << " " << entry.counter->value() << "\n";
        break;
      case Kind::kGauge:
        out << "# TYPE " << name << " gauge\n"
            << name << " " << formatNumber(entry.gauge->value()) << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out << "# TYPE " << name << " histogram\n";
        std::int64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += h.bucketCount(i);
          out << name << "_bucket{le=\"" << formatNumber(h.bounds()[i])
              << "\"} " << cumulative << "\n";
        }
        out << name << "_bucket{le=\"+Inf\"} " << h.count() << "\n"
            << name << "_sum " << formatNumber(h.sum()) << "\n"
            << name << "_count " << h.count() << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string MetricsRegistry::jsonSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream counters, gauges, histograms;
  bool firstCounter = true, firstGauge = true, firstHistogram = true;
  for (const auto& [name, entry] : entries_) {
    const bool nondet = entry.det == Determinism::kNondeterministic;
    switch (entry.kind) {
      case Kind::kCounter:
        counters << (firstCounter ? "" : ", ") << "\"" << jsonEscape(name)
                 << "\": " << entry.counter->value();
        firstCounter = false;
        break;
      case Kind::kGauge:
        gauges << (firstGauge ? "" : ", ") << "\"" << jsonEscape(name)
               << "\": " << formatNumber(entry.gauge->value());
        firstGauge = false;
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        histograms << (firstHistogram ? "" : ", ") << "\"" << jsonEscape(name)
                   << "\": {\"count\": " << h.count()
                   << ", \"sum\": " << formatNumber(h.sum())
                   << ", \"p50\": " << formatNumber(h.p50())
                   << ", \"p95\": " << formatNumber(h.p95())
                   << ", \"p99\": " << formatNumber(h.p99());
        if (nondet) histograms << ", \"nondeterministic\": true";
        histograms << ", \"buckets\": [";
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          histograms << (i == 0 ? "" : ", ") << "{\"le\": "
                     << formatNumber(h.bounds()[i])
                     << ", \"count\": " << h.bucketCount(i) << "}";
        }
        histograms << ", {\"le\": \"+Inf\", \"count\": "
                   << h.bucketCount(h.bounds().size()) << "}]}";
        firstHistogram = false;
        break;
      }
    }
  }
  std::ostringstream out;
  out << "{\"counters\": {" << counters.str() << "}, \"gauges\": {"
      << gauges.str() << "}, \"histograms\": {" << histograms.str() << "}}";
  return out.str();
}

void MetricsRegistry::resetValues() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter: entry.counter->reset(); break;
      case Kind::kGauge: entry.gauge->reset(); break;
      case Kind::kHistogram: entry.histogram->reset(); break;
    }
  }
}

}  // namespace omt::obs
