#include "omt/report/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "omt/common/error.h"

namespace omt {

int defaultWorkerCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw <= 2 ? 1 : static_cast<int>(hw / 2);
}

void parallelFor(std::int64_t begin, std::int64_t end, int workers,
                 const std::function<void(std::int64_t)>& fn) {
  OMT_CHECK(workers >= 1, "need at least one worker");
  OMT_CHECK(begin <= end, "invalid index range");
  if (begin == end) return;

  if (workers == 1 || end - begin == 1) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  std::atomic<std::int64_t> cursor{begin};
  std::exception_ptr firstError;
  std::mutex errorMutex;

  const auto worker = [&] {
    for (;;) {
      const std::int64_t i = cursor.fetch_add(1);
      if (i >= end) return;
      {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (firstError) return;  // stop scheduling after a failure
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  const auto count = std::min<std::int64_t>(workers, end - begin);
  threads.reserve(static_cast<std::size_t>(count));
  for (std::int64_t t = 0; t < count; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace omt
