#include "omt/report/stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "omt/common/error.h"

namespace omt {

double percentile(std::span<const double> values, double q) {
  OMT_CHECK(!values.empty(), "percentile of an empty sample set");
  OMT_CHECK(q >= 0.0 && q <= 1.0, "quantile must lie in [0, 1]");
  std::vector<double> sorted(values.begin(), values.end());
  for (const double v : sorted)
    OMT_CHECK(!std::isnan(v), "NaN sample in percentile input");
  std::sort(sorted.begin(), sorted.end());
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

void RunningStats::add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::populationStddev() const {
  return count_ > 0 ? std::sqrt(m2_ / static_cast<double>(count_)) : 0.0;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace omt
