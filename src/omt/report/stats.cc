#include "omt/report/stats.h"

#include <algorithm>
#include <cmath>

namespace omt {

void RunningStats::add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::populationStddev() const {
  return count_ > 0 ? std::sqrt(m2_ / static_cast<double>(count_)) : 0.0;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace omt
