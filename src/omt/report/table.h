// Aligned text tables for bench output (the Table-I style reports).
#pragma once

#include <string>
#include <vector>

namespace omt {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Add a row; must have exactly as many cells as there are headers.
  void addRow(std::vector<std::string> cells);

  /// Render with right-aligned columns separated by two spaces, a header
  /// line and a dash rule.
  std::string str() const;

  std::size_t rows() const { return rows_.size(); }

  /// Format a double with the given number of decimals.
  static std::string num(double value, int decimals);
  /// Format an integer with thousands separators (1,000,000).
  static std::string count(long long value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace omt
