// Wall-clock stopwatch for the "CPU Sec" columns.
#pragma once

#include <chrono>

namespace omt {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace omt
