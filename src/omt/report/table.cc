#include "omt/report/table.h"

#include <algorithm>
#include <sstream>

#include "omt/common/error.h"

namespace omt {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  OMT_CHECK(!headers_.empty(), "table needs at least one column");
}

void TextTable::addRow(std::vector<std::string> cells) {
  OMT_CHECK(cells.size() == headers_.size(),
            "row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << "  ";
      out << std::string(width[c] - row[c].size(), ' ') << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c > 0 ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::num(double value, int decimals) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(decimals);
  out << value;
  return out.str();
}

std::string TextTable::count(long long value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string grouped;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i > 0 && (digits.size() - i) % 3 == 0) grouped.push_back(',');
    grouped.push_back(digits[i]);
  }
  return value < 0 ? "-" + grouped : grouped;
}

}  // namespace omt
