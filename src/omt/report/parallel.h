// Minimal parallel-for over independent trial indices.
//
// The Table-I protocol runs 200 independent trials per row; trials share
// nothing (each derives its own seed), so they parallelise trivially.
// parallelFor dispatches indices to a fixed set of worker threads via an
// atomic cursor. Exceptions from workers are captured and rethrown on the
// calling thread (first one wins).
#pragma once

#include <cstdint>
#include <functional>

namespace omt {

/// A reasonable worker count: hardware concurrency halved (leave room for
/// the system), at least 1.
int defaultWorkerCount();

/// Invoke fn(i) for every i in [begin, end), using `workers` threads
/// (1 = inline on the calling thread, preserving exact sequencing). fn
/// must be safe to call concurrently for distinct i.
void parallelFor(std::int64_t begin, std::int64_t end, int workers,
                 const std::function<void(std::int64_t)>& fn);

}  // namespace omt
