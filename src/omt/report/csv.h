// Minimal CSV output for bench results (one file per table/figure when the
// bench is run with --csv), plus the shared writer for the benches'
// BENCH_*.json trajectory files.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

namespace omt {

/// RFC-4180 escaping for one cell: returned verbatim unless it contains a
/// comma, double quote, or newline, in which case it is wrapped in quotes
/// with embedded quotes doubled. Shared by CsvWriter and anything that
/// hand-assembles CSV lines (host names with commas must survive a round
/// trip through a spreadsheet).
std::string csvEscape(const std::string& cell);

class CsvWriter {
 public:
  /// Opens (truncates) `path`; throws omt::InvalidArgument on failure.
  explicit CsvWriter(const std::string& path);

  /// Write one row, quoting cells that contain separators or quotes.
  void writeRow(std::span<const std::string> cells);
  void writeRow(std::initializer_list<std::string> cells) {
    writeRow(std::vector<std::string>(cells));
  }
  void writeRow(const std::vector<std::string>& cells) {
    writeRow(std::span<const std::string>(cells));
  }

 private:
  std::ofstream out_;
};

/// Streaming writer for the perf-trajectory files every bench emits:
///   {"bench": "<name>", "rows": [{...}, ...], <top-level scalars>}
/// The two emitting benches used to hand-roll this shape with diverging
/// comma/brace bookkeeping; the writer owns that state machine. Usage:
/// beginRow()/field()...endRow() per row, optional topLevel() scalars after
/// the last row, then close() (the destructor closes too).
class BenchJsonWriter {
 public:
  /// Opens (truncates) `path`; throws omt::InvalidArgument on failure.
  BenchJsonWriter(const std::string& path, const std::string& benchName);
  ~BenchJsonWriter();

  BenchJsonWriter(const BenchJsonWriter&) = delete;
  BenchJsonWriter& operator=(const BenchJsonWriter&) = delete;

  void beginRow();
  void field(const std::string& key, double value);
  void field(const std::string& key, std::int64_t value);
  void field(const std::string& key, const std::string& value);
  void endRow();

  /// Top-level scalar written after the rows array (call after every row).
  void topLevel(const std::string& key, double value);

  /// Write the closing braces and flush; idempotent.
  void close();

 private:
  void writeKey(const std::string& key, bool& first);

  std::ofstream out_;
  bool firstRow_ = true;
  bool firstField_ = true;
  bool inRow_ = false;
  bool rowsClosed_ = false;
  bool closed_ = false;
};

}  // namespace omt
