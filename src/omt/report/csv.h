// Minimal CSV output for bench results (one file per table/figure when the
// bench is run with --csv).
#pragma once

#include <fstream>
#include <span>
#include <string>
#include <vector>

namespace omt {

class CsvWriter {
 public:
  /// Opens (truncates) `path`; throws omt::InvalidArgument on failure.
  explicit CsvWriter(const std::string& path);

  /// Write one row, quoting cells that contain separators or quotes.
  void writeRow(std::span<const std::string> cells);
  void writeRow(std::initializer_list<std::string> cells) {
    writeRow(std::vector<std::string>(cells));
  }
  void writeRow(const std::vector<std::string>& cells) {
    writeRow(std::span<const std::string>(cells));
  }

 private:
  std::ofstream out_;
};

}  // namespace omt
