// Streaming statistics for experiment trials.
//
// Table I reports, per problem size, the average and standard deviation of
// the longest delay over 200 random trials; RunningStats accumulates those
// with Welford's numerically stable one-pass update.
#pragma once

#include <cstdint>
#include <span>

#include "omt/common/types.h"

namespace omt {

/// Quantile q in [0, 1] of `values` by linear interpolation between order
/// statistics (rank q * (n - 1), the "exclusive" convention numpy defaults
/// to). The input need not be sorted. Contract:
///   * empty input throws omt::InvalidArgument — there is no value to
///     report and 0.0 would silently poison downstream averages;
///   * one sample (or all samples equal) returns that value for every q;
///   * any NaN in the input throws omt::InvalidArgument (NaN breaks the
///     ordering the rank is defined on);
///   * q outside [0, 1] throws omt::InvalidArgument.
double percentile(std::span<const double> values, double q);

class RunningStats {
 public:
  void add(double value);

  std::int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n - 1 denominator); 0 for fewer than two samples.
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  /// Population standard deviation (n denominator) — what Table I's "Dev"
  /// column reports over its 200 trials.
  double populationStddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Merge another accumulator into this one (parallel-trial reduction).
  void merge(const RunningStats& other);

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = kInf;
  double max_ = -kInf;
};

}  // namespace omt
