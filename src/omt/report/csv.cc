#include "omt/report/csv.h"

#include "omt/common/error.h"

namespace omt {
namespace {

bool needsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string quoted(const std::string& cell) {
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  OMT_CHECK(out_.good(), "cannot open CSV file " + path);
}

void CsvWriter::writeRow(std::span<const std::string> cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << (needsQuoting(cells[i]) ? quoted(cells[i]) : cells[i]);
  }
  out_ << '\n';
}

}  // namespace omt
