#include "omt/report/csv.h"

#include <cstdio>
#include <sstream>

#include "omt/common/error.h"

namespace omt {
namespace {

bool needsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string quoted(const std::string& cell) {
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

/// JSON string escaping for the bench writer (names only, so the short
/// escape set plus control-character fallback suffices).
std::string jsonQuoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string numberText(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace

std::string csvEscape(const std::string& cell) {
  return needsQuoting(cell) ? quoted(cell) : cell;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  OMT_CHECK(out_.good(), "cannot open CSV file " + path);
}

void CsvWriter::writeRow(std::span<const std::string> cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csvEscape(cells[i]);
  }
  out_ << '\n';
}

BenchJsonWriter::BenchJsonWriter(const std::string& path,
                                 const std::string& benchName)
    : out_(path) {
  OMT_CHECK(out_.good(), "cannot open bench JSON file " + path);
  out_ << "{\"bench\": " << jsonQuoted(benchName) << ", \"rows\": [";
}

BenchJsonWriter::~BenchJsonWriter() { close(); }

void BenchJsonWriter::beginRow() {
  OMT_CHECK(!inRow_ && !rowsClosed_ && !closed_,
            "beginRow outside the rows phase");
  if (!firstRow_) out_ << ", ";
  firstRow_ = false;
  firstField_ = true;
  inRow_ = true;
  out_ << '{';
}

void BenchJsonWriter::writeKey(const std::string& key, bool& first) {
  if (!first) out_ << ", ";
  first = false;
  out_ << jsonQuoted(key) << ": ";
}

void BenchJsonWriter::field(const std::string& key, double value) {
  OMT_CHECK(inRow_, "field outside a row");
  writeKey(key, firstField_);
  out_ << numberText(value);
}

void BenchJsonWriter::field(const std::string& key, std::int64_t value) {
  OMT_CHECK(inRow_, "field outside a row");
  writeKey(key, firstField_);
  out_ << value;
}

void BenchJsonWriter::field(const std::string& key, const std::string& value) {
  OMT_CHECK(inRow_, "field outside a row");
  writeKey(key, firstField_);
  out_ << jsonQuoted(value);
}

void BenchJsonWriter::endRow() {
  OMT_CHECK(inRow_, "endRow without beginRow");
  inRow_ = false;
  out_ << '}';
}

void BenchJsonWriter::topLevel(const std::string& key, double value) {
  OMT_CHECK(!inRow_ && !closed_, "topLevel inside a row or after close");
  if (!rowsClosed_) {
    out_ << ']';
    rowsClosed_ = true;
  }
  out_ << ", " << jsonQuoted(key) << ": " << numberText(value);
}

void BenchJsonWriter::close() {
  if (closed_) return;
  OMT_CHECK(!inRow_, "close inside a row");
  if (!rowsClosed_) {
    out_ << ']';
    rowsClosed_ = true;
  }
  out_ << "}\n";
  out_.flush();
  closed_ = true;
}

}  // namespace omt
