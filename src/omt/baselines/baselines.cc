#include "omt/baselines/baselines.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "omt/common/error.h"
#include "omt/spatial/kd_tree.h"

namespace omt {
namespace {

void checkArgs(std::span<const Point> points, NodeId source, int minDegree,
               int maxOutDegree) {
  OMT_CHECK(!points.empty(), "empty point set");
  OMT_CHECK(source >= 0 && source < static_cast<NodeId>(points.size()),
            "source index out of range");
  OMT_CHECK(maxOutDegree >= minDegree, "out-degree cap too small");
}

/// Non-source node ids sorted by increasing distance from the source
/// (ties by id, for determinism).
std::vector<NodeId> byDistanceFromSource(std::span<const Point> points,
                                         NodeId source) {
  const Point& origin = points[static_cast<std::size_t>(source)];
  std::vector<NodeId> order;
  order.reserve(points.size() - 1);
  for (NodeId v = 0; v < static_cast<NodeId>(points.size()); ++v) {
    if (v != source) order.push_back(v);
  }
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return squaredDistance(points[static_cast<std::size_t>(a)], origin) <
           squaredDistance(points[static_cast<std::size_t>(b)], origin);
  });
  return order;
}

std::vector<NodeId> randomJoinOrder(std::span<const Point> points,
                                    NodeId source, Rng& rng) {
  std::vector<NodeId> order;
  order.reserve(points.size() - 1);
  for (NodeId v = 0; v < static_cast<NodeId>(points.size()); ++v) {
    if (v != source) order.push_back(v);
  }
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniformInt(i)]);
  }
  return order;
}

/// Sequential-join scaffold shared by the O(n^2) heuristics:
/// `better(tree, delay, p, incumbent, v)` returns true when feasible parent
/// p improves on the incumbent for the joining node v.
template <typename PickBetter>
MulticastTree joinSequentially(std::span<const Point> points, NodeId source,
                               int maxOutDegree,
                               std::span<const NodeId> order,
                               PickBetter better) {
  MulticastTree tree(static_cast<NodeId>(points.size()), source);
  std::vector<double> delay(points.size(), 0.0);
  std::vector<NodeId> attached{source};
  attached.reserve(points.size());

  for (const NodeId v : order) {
    NodeId bestParent = kNoNode;
    for (const NodeId p : attached) {
      if (tree.outDegree(p) >= maxOutDegree) continue;
      if (bestParent == kNoNode || better(tree, delay, p, bestParent, v)) {
        bestParent = p;
      }
    }
    OMT_ASSERT(bestParent != kNoNode,
               "no feasible parent despite cap >= 1");
    tree.attach(v, bestParent, EdgeKind::kLocal);
    delay[static_cast<std::size_t>(v)] =
        delay[static_cast<std::size_t>(bestParent)] +
        distance(points[static_cast<std::size_t>(bestParent)],
                 points[static_cast<std::size_t>(v)]);
    attached.push_back(v);
  }
  tree.finalize();
  return tree;
}

}  // namespace

MulticastTree buildStarTree(std::span<const Point> points, NodeId source) {
  checkArgs(points, source, 0, 0);
  MulticastTree tree(static_cast<NodeId>(points.size()), source);
  for (NodeId v = 0; v < static_cast<NodeId>(points.size()); ++v) {
    if (v != source) tree.attach(v, source, EdgeKind::kLocal);
  }
  tree.finalize();
  return tree;
}

MulticastTree buildChainTree(std::span<const Point> points, NodeId source) {
  checkArgs(points, source, 0, 0);
  const std::vector<NodeId> order = byDistanceFromSource(points, source);
  MulticastTree tree(static_cast<NodeId>(points.size()), source);
  NodeId prev = source;
  for (const NodeId v : order) {
    tree.attach(v, prev, EdgeKind::kLocal);
    prev = v;
  }
  tree.finalize();
  return tree;
}

MulticastTree buildGreedyInsertionTree(std::span<const Point> points,
                                       NodeId source, int maxOutDegree) {
  checkArgs(points, source, 1, maxOutDegree);
  const std::vector<NodeId> order = byDistanceFromSource(points, source);
  return joinSequentially(
      points, source, maxOutDegree, order,
      [&points](const MulticastTree&, const std::vector<double>& delay,
                NodeId p, NodeId incumbent, NodeId v) {
        const auto vi = static_cast<std::size_t>(v);
        const double dp = delay[static_cast<std::size_t>(p)] +
                          distance(points[static_cast<std::size_t>(p)],
                                   points[vi]);
        const double di = delay[static_cast<std::size_t>(incumbent)] +
                          distance(points[static_cast<std::size_t>(incumbent)],
                                   points[vi]);
        return dp < di;
      });
}

MulticastTree buildBandwidthLatencyTree(std::span<const Point> points,
                                        NodeId source, int maxOutDegree,
                                        Rng& rng) {
  checkArgs(points, source, 1, maxOutDegree);
  const std::vector<NodeId> order = randomJoinOrder(points, source, rng);

  // The Bandwidth-Latency rule of [5]/[19]: choose the attachment whose
  // path has the greatest available bandwidth, breaking ties by lowest
  // latency. In the degree-constrained overlay abstraction, a path's
  // bandwidth is its bottleneck residual fan-out: min over the path's
  // nodes of (cap - out-degree). bottleneck[] is maintained incrementally;
  // attaching under p lowers p's residual, which can only lower bottleneck
  // values inside p's subtree, recomputed by a subtree walk.
  MulticastTree tree(static_cast<NodeId>(points.size()), source);
  std::vector<double> delay(points.size(), 0.0);
  std::vector<std::int32_t> bottleneck(points.size(), 0);
  std::vector<std::vector<NodeId>> children(points.size());
  bottleneck[static_cast<std::size_t>(source)] = maxOutDegree;
  std::vector<NodeId> attached{source};
  attached.reserve(points.size());

  std::vector<NodeId> stack;
  for (const NodeId v : order) {
    const auto vi = static_cast<std::size_t>(v);
    NodeId best = kNoNode;
    double bestDelay = kInf;
    for (const NodeId p : attached) {
      const auto pi = static_cast<std::size_t>(p);
      if (tree.outDegree(p) >= maxOutDegree) continue;
      const double dp = delay[pi] + distance(points[pi], points[vi]);
      const std::int32_t bw = bottleneck[pi];
      const std::int32_t bestBw =
          best == kNoNode ? -1 : bottleneck[static_cast<std::size_t>(best)];
      if (bw > bestBw || (bw == bestBw && dp < bestDelay)) {
        best = p;
        bestDelay = dp;
      }
    }
    OMT_ASSERT(best != kNoNode, "no feasible parent despite cap >= 1");
    const auto bi = static_cast<std::size_t>(best);
    tree.attach(v, best, EdgeKind::kLocal);
    children[bi].push_back(v);
    delay[vi] = bestDelay;
    attached.push_back(v);

    // best's residual dropped; refresh bottlenecks in its subtree.
    const std::int32_t parentPathBound =
        best == source
            ? maxOutDegree
            : bottleneck[static_cast<std::size_t>(tree.parentOf(best))];
    bottleneck[bi] = std::min(parentPathBound,
                              maxOutDegree - tree.outDegree(best));
    stack.assign(1, best);
    while (!stack.empty()) {
      const NodeId x = stack.back();
      stack.pop_back();
      const auto xi = static_cast<std::size_t>(x);
      for (const NodeId c : children[xi]) {
        const auto ci = static_cast<std::size_t>(c);
        bottleneck[ci] =
            std::min(bottleneck[xi], maxOutDegree - tree.outDegree(c));
        stack.push_back(c);
      }
    }
  }
  tree.finalize();
  return tree;
}

MulticastTree buildNearestParentTree(std::span<const Point> points,
                                     NodeId source, int maxOutDegree) {
  checkArgs(points, source, 1, maxOutDegree);
  const std::vector<NodeId> order = byDistanceFromSource(points, source);
  return joinSequentially(
      points, source, maxOutDegree, order,
      [&points](const MulticastTree&, const std::vector<double>&, NodeId p,
                NodeId incumbent, NodeId v) {
        const auto vi = static_cast<std::size_t>(v);
        return squaredDistance(points[static_cast<std::size_t>(p)],
                               points[vi]) <
               squaredDistance(points[static_cast<std::size_t>(incumbent)],
                               points[vi]);
      });
}

MulticastTree buildHmtpTree(std::span<const Point> points, NodeId source,
                            int maxOutDegree, Rng& rng) {
  checkArgs(points, source, 1, maxOutDegree);
  const std::vector<NodeId> order = randomJoinOrder(points, source, rng);
  MulticastTree tree(static_cast<NodeId>(points.size()), source);
  std::vector<std::vector<NodeId>> children(points.size());

  for (const NodeId v : order) {
    const Point& self = points[static_cast<std::size_t>(v)];
    // Greedy descent from the root toward self.
    NodeId current = source;
    for (;;) {
      NodeId bestChild = kNoNode;
      double bestDist = kInf;
      for (const NodeId c : children[static_cast<std::size_t>(current)]) {
        const double d =
            squaredDistance(points[static_cast<std::size_t>(c)], self);
        if (d < bestDist) {
          bestDist = d;
          bestChild = c;
        }
      }
      const double currentDist = squaredDistance(
          points[static_cast<std::size_t>(current)], self);
      if (bestChild != kNoNode &&
          (bestDist < currentDist ||
           tree.outDegree(current) >= maxOutDegree)) {
        current = bestChild;  // descend (forced when current is full)
        continue;
      }
      if (tree.outDegree(current) >= maxOutDegree) {
        // Full and childless cannot happen (full implies children); the
        // forced-descent branch above consumed this case.
        OMT_ASSERT(bestChild != kNoNode, "full node without children");
        current = bestChild;
        continue;
      }
      break;
    }
    tree.attach(v, current, EdgeKind::kLocal);
    children[static_cast<std::size_t>(current)].push_back(v);
  }
  tree.finalize();
  return tree;
}

MulticastTree buildLayeredTree(std::span<const Point> points, NodeId source,
                               int maxOutDegree) {
  checkArgs(points, source, 1, maxOutDegree);
  const std::vector<NodeId> order = byDistanceFromSource(points, source);
  MulticastTree tree(static_cast<NodeId>(points.size()), source);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const NodeId parent =
        i < static_cast<std::size_t>(maxOutDegree)
            ? source
            : order[(i - static_cast<std::size_t>(maxOutDegree)) /
                    static_cast<std::size_t>(maxOutDegree)];
    tree.attach(order[i], parent, EdgeKind::kLocal);
  }
  tree.finalize();
  return tree;
}

std::int32_t optimalHopRadius(NodeId n, int maxOutDegree) {
  OMT_CHECK(n >= 1, "need at least one node");
  OMT_CHECK(maxOutDegree >= 1, "degree cap must be positive");
  // Smallest h with 1 + D + ... + D^h >= n.
  std::int32_t height = 0;
  std::int64_t capacity = 1;
  std::int64_t layer = 1;
  while (capacity < n) {
    layer *= maxOutDegree;
    capacity += layer;
    ++height;
  }
  return height;
}

MulticastTree buildNearestParentTreeFast(std::span<const Point> points,
                                         NodeId source, int maxOutDegree) {
  checkArgs(points, source, 1, maxOutDegree);
  const std::vector<NodeId> order = byDistanceFromSource(points, source);

  MulticastTree tree(static_cast<NodeId>(points.size()), source);
  KdTree index(points);
  index.setActive(source, true);
  for (const NodeId v : order) {
    const NodeId parent =
        index.nearestActive(points[static_cast<std::size_t>(v)], v);
    OMT_ASSERT(parent != kNoNode, "no feasible parent despite cap >= 1");
    tree.attach(v, parent, EdgeKind::kLocal);
    if (tree.outDegree(parent) >= maxOutDegree)
      index.setActive(parent, false);
    index.setActive(v, true);
  }
  tree.finalize();
  return tree;
}

MulticastTree buildRandomFeasibleTree(std::span<const Point> points,
                                      NodeId source, int maxOutDegree,
                                      Rng& rng) {
  checkArgs(points, source, 1, maxOutDegree);
  const std::vector<NodeId> order = randomJoinOrder(points, source, rng);
  MulticastTree tree(static_cast<NodeId>(points.size()), source);
  // Feasible set with O(1) removal when a node's capacity is exhausted.
  std::vector<NodeId> feasible{source};
  std::vector<std::int64_t> position(points.size(), -1);
  position[static_cast<std::size_t>(source)] = 0;

  for (const NodeId v : order) {
    OMT_ASSERT(!feasible.empty(), "no feasible parent despite cap >= 1");
    const NodeId p = feasible[rng.uniformInt(feasible.size())];
    tree.attach(v, p, EdgeKind::kLocal);
    if (tree.outDegree(p) >= maxOutDegree) {
      const auto pos = position[static_cast<std::size_t>(p)];
      feasible[static_cast<std::size_t>(pos)] = feasible.back();
      position[static_cast<std::size_t>(feasible.back())] = pos;
      feasible.pop_back();
      position[static_cast<std::size_t>(p)] = -1;
    }
    position[static_cast<std::size_t>(v)] =
        static_cast<std::int64_t>(feasible.size());
    feasible.push_back(v);
  }
  tree.finalize();
  return tree;
}

}  // namespace omt
