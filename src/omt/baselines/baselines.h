// Baseline tree-construction algorithms from the paper's related work,
// used by the comparison benches ("who wins, by how much").
//
// * Greedy insertion (compact-tree style, Shi & Turner [16], [17]): hosts
//   join in order of distance from the source; each attaches to the
//   feasible parent minimising its resulting delay. The classic O(n^2)
//   quality baseline for degree-bounded minimum-radius trees.
// * Bandwidth-Latency (Chu et al. [5], Wang & Crowcroft [19]): hosts join
//   in arrival order and pick the parent with the most remaining fan-out
//   (bandwidth first), breaking ties by lowest resulting delay.
// * Nearest parent (degree-constrained Prim-like): each host attaches to
//   the closest feasible node already in the tree — the "connect to your
//   nearest neighbour" folk heuristic.
// * Random feasible tree: attach to a uniformly random feasible node; a
//   sanity floor for comparisons.
// * Star: the source serves everyone directly, ignoring the degree cap.
//   Its radius equals the instance lower bound max_i dist(s, i).
// * Radius-sorted chain: a degree-1 path through the hosts; the upper
//   extreme of the degree/delay trade-off.
//
// All builders return finalized trees; every one except the star respects
// maxOutDegree.
#pragma once

#include <span>

#include "omt/common/types.h"
#include "omt/geometry/point.h"
#include "omt/random/rng.h"
#include "omt/tree/multicast_tree.h"

namespace omt {

MulticastTree buildStarTree(std::span<const Point> points, NodeId source);

MulticastTree buildChainTree(std::span<const Point> points, NodeId source);

/// Greedy insertion in increasing distance from the source; O(n^2) — meant
/// for comparison sizes (<= a few 10^4), not Table-I scale.
MulticastTree buildGreedyInsertionTree(std::span<const Point> points,
                                       NodeId source, int maxOutDegree);

/// Bandwidth-Latency heuristic; join order is a random permutation drawn
/// from `rng` (hosts arrive in arbitrary order in the protocol).
MulticastTree buildBandwidthLatencyTree(std::span<const Point> points,
                                        NodeId source, int maxOutDegree,
                                        Rng& rng);

/// Degree-constrained nearest-parent (Prim-like), joining in increasing
/// distance from the source; O(n^2).
MulticastTree buildNearestParentTree(std::span<const Point> points,
                                     NodeId source, int maxOutDegree);

/// Same policy accelerated by a k-d tree with capacity-aware activation
/// (omt/spatial): O(n log n), usable at Table-I scale. Results match the
/// quadratic version except when two feasible parents are exactly
/// equidistant (ties break by id here, by join order there).
MulticastTree buildNearestParentTreeFast(std::span<const Point> points,
                                         NodeId source, int maxOutDegree);

/// Uniformly random feasible parent for each host (join order randomised).
MulticastTree buildRandomFeasibleTree(std::span<const Point> points,
                                      NodeId source, int maxOutDegree,
                                      Rng& rng);

/// The complete D-ary "layered" tree over hosts sorted by distance from
/// the source: host i (in sorted order) is the child of sorted host
/// (i-1)/D. Minimises the HOP radius — Malouch et al. [11] show the
/// unit-delay (hop-count) version of the problem is polynomially optimal,
/// and this is that optimum: no degree-D tree on n nodes has smaller
/// height. Under Euclidean delays it is a heuristic (good when delays are
/// nearly uniform, poor when geometry matters).
MulticastTree buildLayeredTree(std::span<const Point> points, NodeId source,
                               int maxOutDegree);

/// The minimum possible height (hop radius) of any tree on `n` nodes with
/// out-degree at most `maxOutDegree` — what buildLayeredTree achieves.
std::int32_t optimalHopRadius(NodeId n, int maxOutDegree);

/// HMTP-style greedy descent (Zhang, Jamin & Zhang [20], "Host Multicast"):
/// each joining host starts at the root and repeatedly descends to the
/// child closest to itself while that child is closer than the current
/// node; it attaches at the node where the walk stops (falling through to
/// the closest child when the stop node's fan-out is exhausted). Join
/// order is a random permutation from `rng`.
MulticastTree buildHmtpTree(std::span<const Point> points, NodeId source,
                            int maxOutDegree, Rng& rng);

}  // namespace omt
