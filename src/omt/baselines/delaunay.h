// Delaunay-triangulation overlay baseline (the paper's reference [10],
// Liebeherr & Nahas, "Application-layer Multicast with Delaunay
// Triangulations").
//
// The overlay graph is the Delaunay triangulation of the host coordinates;
// the multicast tree is the union of greedy (compass-style) routes toward
// the source: every host forwards from the Delaunay neighbour that is
// strictly closer to the source, which on a Delaunay graph always exists,
// so the parent pointers form a tree. Node degrees are whatever the
// triangulation induces (~6 on average in 2D, unbounded in the worst
// case) — this baseline, like the star, is degree-UNconstrained and shows
// what locality alone buys.
//
// The triangulation is the plain Bowyer–Watson incremental algorithm with
// a global bad-triangle scan per insertion: O(n^2) worst case, which is
// fine for baseline sizes (<= a few 10^4). 2D only.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "omt/common/types.h"
#include "omt/geometry/point.h"
#include "omt/tree/multicast_tree.h"

namespace omt {

struct DelaunayTriangulation {
  /// Triangles by vertex index (counter-clockwise); indices refer to the
  /// input point span. Exact duplicate points are collapsed: only the
  /// first occurrence appears in triangles.
  std::vector<std::array<NodeId, 3>> triangles;
  /// Adjacency lists of the triangulation's edges (per input point;
  /// duplicates get their canonical point's neighbours).
  std::vector<std::vector<NodeId>> neighbors;
  /// duplicateOf[i] == i for canonical points, else the canonical index.
  std::vector<NodeId> duplicateOf;
};

/// Delaunay triangulation of 2D points (n >= 1; degenerate all-collinear
/// sets yield no triangles but still produce nearest-neighbour links).
DelaunayTriangulation delaunayTriangulate(std::span<const Point> points);

/// The compass-routing multicast tree over the triangulation: each host's
/// parent is its Delaunay neighbour closest to the source (ties by id);
/// exact duplicates attach to their canonical host.
MulticastTree buildDelaunayCompassTree(std::span<const Point> points,
                                       NodeId source);

}  // namespace omt
