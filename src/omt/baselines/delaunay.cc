#include "omt/baselines/delaunay.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "omt/common/error.h"

namespace omt {
namespace {

double cross(const Point& a, const Point& b, const Point& c) {
  return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0]);
}

/// Whether d lies strictly inside the circumcircle of the CCW triangle
/// (a, b, c) — the standard 3x3 in-circle determinant.
bool inCircumcircle(const Point& a, const Point& b, const Point& c,
                    const Point& d) {
  const double ax = a[0] - d[0];
  const double ay = a[1] - d[1];
  const double bx = b[0] - d[0];
  const double by = b[1] - d[1];
  const double cx = c[0] - d[0];
  const double cy = c[1] - d[1];
  const double det = (ax * ax + ay * ay) * (bx * cy - cx * by) -
                     (bx * bx + by * by) * (ax * cy - cx * ay) +
                     (cx * cx + cy * cy) * (ax * by - bx * ay);
  return det > 0.0;
}

struct Triangle {
  std::array<NodeId, 3> v;
  bool alive = true;
};

}  // namespace

DelaunayTriangulation delaunayTriangulate(std::span<const Point> points) {
  OMT_CHECK(!points.empty(), "empty point set");
  for (const Point& p : points)
    OMT_CHECK(p.dim() == 2, "Delaunay triangulation is 2D only");
  const auto n = static_cast<NodeId>(points.size());

  DelaunayTriangulation out;
  out.duplicateOf.resize(points.size());
  out.neighbors.assign(points.size(), {});

  // Collapse exact duplicates onto the first occurrence.
  std::map<std::pair<double, double>, NodeId> canonical;
  std::vector<NodeId> canonicalIds;
  for (NodeId i = 0; i < n; ++i) {
    const auto key = std::make_pair(points[static_cast<std::size_t>(i)][0],
                                    points[static_cast<std::size_t>(i)][1]);
    const auto [it, inserted] = canonical.emplace(key, i);
    out.duplicateOf[static_cast<std::size_t>(i)] = it->second;
    if (inserted) canonicalIds.push_back(i);
  }

  // Working vertex array: canonical points + the 3 super-triangle corners
  // (ids n, n+1, n+2).
  Point lo = points[0];
  Point hi = points[0];
  for (const Point& p : points) {
    for (int c = 0; c < 2; ++c) {
      lo[c] = std::min(lo[c], p[c]);
      hi[c] = std::max(hi[c], p[c]);
    }
  }
  const double extent = std::max({hi[0] - lo[0], hi[1] - lo[1], 1.0});
  const Point mid = (lo + hi) / 2.0;
  std::vector<Point> vertex(points.begin(), points.end());
  vertex.push_back(Point{mid[0] - 30.0 * extent, mid[1] - 20.0 * extent});
  vertex.push_back(Point{mid[0] + 30.0 * extent, mid[1] - 20.0 * extent});
  vertex.push_back(Point{mid[0], mid[1] + 40.0 * extent});

  std::vector<Triangle> triangles;
  triangles.push_back(Triangle{{n, n + 1, n + 2}, true});

  for (const NodeId id : canonicalIds) {
    const Point& p = vertex[static_cast<std::size_t>(id)];
    // Bad triangles: circumcircle contains p. Their once-only edges form
    // the cavity boundary, re-triangulated as a fan around p.
    std::map<std::pair<NodeId, NodeId>, int> edgeCount;
    std::vector<std::pair<NodeId, NodeId>> cavity;
    for (Triangle& t : triangles) {
      if (!t.alive) continue;
      if (!inCircumcircle(vertex[static_cast<std::size_t>(t.v[0])],
                          vertex[static_cast<std::size_t>(t.v[1])],
                          vertex[static_cast<std::size_t>(t.v[2])], p))
        continue;
      t.alive = false;
      for (int e = 0; e < 3; ++e) {
        NodeId a = t.v[static_cast<std::size_t>(e)];
        NodeId b = t.v[static_cast<std::size_t>((e + 1) % 3)];
        if (a > b) std::swap(a, b);
        ++edgeCount[{a, b}];
      }
    }
    for (const auto& [edge, count] : edgeCount) {
      if (count == 1) cavity.push_back(edge);
    }
    for (const auto& [a, b] : cavity) {
      Triangle t{{a, b, id}, true};
      // Restore counter-clockwise orientation (in-circle test needs it).
      if (cross(vertex[static_cast<std::size_t>(t.v[0])],
                vertex[static_cast<std::size_t>(t.v[1])],
                vertex[static_cast<std::size_t>(t.v[2])]) < 0.0)
        std::swap(t.v[1], t.v[2]);
      triangles.push_back(t);
    }
    // Compact occasionally so the bad-triangle scan stays proportional to
    // the live triangulation (~2 * inserted points).
    if (triangles.size() > 16 + 8 * canonicalIds.size()) {
      std::erase_if(triangles, [](const Triangle& t) { return !t.alive; });
    }
  }

  // Keep real triangles only, and derive the edge adjacency.
  std::set<std::pair<NodeId, NodeId>> edges;
  for (const Triangle& t : triangles) {
    if (!t.alive) continue;
    if (t.v[0] >= n || t.v[1] >= n || t.v[2] >= n) continue;
    out.triangles.push_back(t.v);
    for (int e = 0; e < 3; ++e) {
      NodeId a = t.v[static_cast<std::size_t>(e)];
      NodeId b = t.v[static_cast<std::size_t>((e + 1) % 3)];
      if (a > b) std::swap(a, b);
      edges.insert({a, b});
    }
  }

  if (out.triangles.empty() && canonicalIds.size() > 1) {
    // Fully degenerate (collinear) canonical set: fall back to the path in
    // lexicographic order, which greedy routing can still descend.
    std::vector<NodeId> order = canonicalIds;
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      const Point& pa = points[static_cast<std::size_t>(a)];
      const Point& pb = points[static_cast<std::size_t>(b)];
      return std::make_pair(pa[0], pa[1]) < std::make_pair(pb[0], pb[1]);
    });
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      NodeId a = order[i];
      NodeId b = order[i + 1];
      if (a > b) std::swap(a, b);
      edges.insert({a, b});
    }
  }

  for (const auto& [a, b] : edges) {
    out.neighbors[static_cast<std::size_t>(a)].push_back(b);
    out.neighbors[static_cast<std::size_t>(b)].push_back(a);
  }
  // Duplicates inherit their canonical point's neighbourhood.
  for (NodeId i = 0; i < n; ++i) {
    const NodeId c = out.duplicateOf[static_cast<std::size_t>(i)];
    if (c != i)
      out.neighbors[static_cast<std::size_t>(i)] =
          out.neighbors[static_cast<std::size_t>(c)];
  }
  return out;
}

MulticastTree buildDelaunayCompassTree(std::span<const Point> points,
                                       NodeId source) {
  const auto n = static_cast<NodeId>(points.size());
  OMT_CHECK(source >= 0 && source < n, "source index out of range");

  // Make the source canonical among its duplicates by reordering the
  // dedupe preference: triangulate with the source swapped to position 0.
  std::vector<Point> reordered(points.begin(), points.end());
  std::swap(reordered[0], reordered[static_cast<std::size_t>(source)]);
  const DelaunayTriangulation tri = delaunayTriangulate(reordered);
  const auto mapBack = [&](NodeId reorderedId) {
    if (reorderedId == 0) return source;
    if (reorderedId == source) return NodeId{0};
    return reorderedId;
  };
  const auto mapIn = [&](NodeId originalId) {
    if (originalId == source) return NodeId{0};
    if (originalId == 0) return source;
    return originalId;
  };

  const Point& sourcePoint = points[static_cast<std::size_t>(source)];
  MulticastTree tree(n, source);
  for (NodeId v = 0; v < n; ++v) {
    if (v == source) continue;
    const auto rv = static_cast<std::size_t>(mapIn(v));
    const Point& pv = points[static_cast<std::size_t>(v)];
    if (tri.duplicateOf[rv] != static_cast<NodeId>(rv)) {
      // Exact duplicate: hang off the canonical host.
      tree.attach(v, mapBack(tri.duplicateOf[rv]), EdgeKind::kLocal);
      continue;
    }
    const double own = squaredDistance(pv, sourcePoint);
    NodeId best = kNoNode;
    double bestDist = kInf;
    for (const NodeId u : tri.neighbors[rv]) {
      const NodeId original = mapBack(u);
      const double d =
          squaredDistance(points[static_cast<std::size_t>(original)],
                          sourcePoint);
      if (d < bestDist || (d == bestDist && original < best)) {
        bestDist = d;
        best = original;
      }
    }
    if (best == kNoNode || bestDist >= own) {
      // No strictly-closer neighbour (numerical tie or isolated point):
      // fall back to a direct source link, as the protocol in [10] does
      // for its leader.
      tree.attach(v, source, EdgeKind::kLocal);
      continue;
    }
    tree.attach(v, best, EdgeKind::kLocal);
  }
  tree.finalize();
  return tree;
}

}  // namespace omt
