// Deterministic fault injection: correlated failure schedules and a lossy
// control channel.
//
// The churn module (omt/protocol/churn.h) models *independent* arrivals and
// departures; real overlay failures are correlated. This injector generates
// seeded schedules that add, on top of a Poisson background of joins and
// (graceful or silent) departures:
//   * crash bursts — a regional outage kills every live host inside a random
//     disk with some probability, all at the same instant;
//   * flash crowds — a wave of joins spatially clustered around a random
//     center, compressed into a short window;
// and a ControlChannel that makes every control message (join, heartbeat
// probe, repair contact) fallible: each message is lost independently with
// a fixed probability, and reliable operations retransmit with exponential
// backoff up to a cap — so detection latency, repair latency and control
// overhead become measured quantities instead of free instantaneous sweeps.
//
// Everything is driven by explicit 64-bit seeds: the same options always
// produce the same schedule and the same per-message loss pattern.
#pragma once

#include <cstdint>
#include <vector>

#include "omt/geometry/point.h"
#include "omt/random/rng.h"

namespace omt {

struct FaultScheduleOptions {
  double duration = 60.0;  ///< schedule length in time units
  int dim = 2;             ///< host positions in the unit ball
  std::uint64_t seed = 1;

  // Background churn (Poisson arrivals, exponential lifetimes).
  double arrivalRate = 30.0;   ///< background joins per unit time
  double meanLifetime = 20.0;  ///< mean session length
  double crashFraction = 0.3;  ///< departures that are silent crashes

  // Correlated regional outages.
  double crashBurstRate = 0.05;      ///< bursts per unit time (0 disables)
  double crashBurstRadius = 0.3;     ///< outage disk radius
  double crashBurstKillProb = 0.9;   ///< per-host kill probability inside

  // Flash-crowd join waves.
  double flashCrowdRate = 0.05;      ///< waves per unit time (0 disables)
  int flashCrowdSize = 60;           ///< joins per wave
  double flashCrowdSpread = 0.15;    ///< cluster radius around the center
  double flashCrowdWindow = 1.0;     ///< wave joins spread over this window
};

enum class FaultEventKind : std::uint8_t {
  kJoin,
  kLeave,
  kCrash,       ///< one host dies silently
  kCrashBurst,  ///< regional outage (victims resolved against live state)
};

struct FaultEvent {
  double time = 0.0;
  FaultEventKind kind = FaultEventKind::kJoin;
  /// kJoin/kLeave/kCrash: trace-local entity id; entities join in id order
  /// and each kLeave/kCrash refers to the entity of its kJoin.
  std::int64_t entity = -1;
  Point position;          ///< kJoin: host position; kCrashBurst: center
  double radius = 0.0;     ///< kCrashBurst: outage radius
  double killProbability = 0.0;  ///< kCrashBurst: per-host kill probability
  bool flashCrowd = false;       ///< kJoin born inside a flash-crowd wave
};

/// Generate a time-sorted fault schedule. Entities whose lifetime extends
/// past `duration` never depart. Deterministic in the options.
std::vector<FaultEvent> generateFaultSchedule(
    const FaultScheduleOptions& options);

struct ControlChannelOptions {
  double lossRate = 0.0;       ///< independent per-message loss probability
  double latency = 0.01;       ///< delivery time of one successful message
  double baseTimeout = 0.05;   ///< wait before the first retransmission
  double backoffFactor = 2.0;  ///< timeout multiplier per further retry
  int maxAttempts = 4;         ///< transmissions before a send() expires
  std::uint64_t seed = 7;
};

struct ChannelStats {
  std::int64_t messages = 0;       ///< logical messages (roll + send calls)
  std::int64_t transmissions = 0;  ///< physical transmissions incl. retries
  std::int64_t losses = 0;         ///< transmissions the channel dropped
  std::int64_t expiries = 0;       ///< send() calls that exhausted retries
};

/// The lossy control channel. roll() models one best-effort message (a
/// heartbeat probe — never retried); send() models a reliable-ish message
/// that retransmits with exponential backoff until delivered or out of
/// attempts, reporting the wall-clock time the exchange consumed.
class ControlChannel {
 public:
  explicit ControlChannel(const ControlChannelOptions& options);

  struct Outcome {
    bool delivered = false;
    int attempts = 0;
    double elapsed = 0.0;  ///< backoff waits plus delivery latency
  };

  /// One unacknowledged message: true iff it got through.
  bool roll();

  /// One message with retransmission: up to maxAttempts tries, waiting
  /// baseTimeout * backoffFactor^(i-1) before retry i.
  Outcome send();

  const ControlChannelOptions& options() const { return options_; }
  const ChannelStats& stats() const { return stats_; }

 private:
  ControlChannelOptions options_;
  Rng rng_;
  ChannelStats stats_;
};

}  // namespace omt
