// Deterministic fault injection: correlated failure schedules and
// control-plane disruption schedules.
//
// The churn module (omt/protocol/churn.h) models *independent* arrivals and
// departures; real overlay failures are correlated. This injector generates
// seeded schedules that add, on top of a Poisson background of joins and
// (graceful or silent) departures:
//   * crash bursts — a regional outage kills every live host inside a random
//     disk with some probability, all at the same instant;
//   * flash crowds — a wave of joins spatially clustered around a random
//     center, compressed into a short window;
// plus disruption windows aimed at control traffic (loss bursts, delay
// spells, regional partitions) consumed by the RPC layer in omt/rpc.
//
// The lossy ControlChannel itself lives in omt/rpc/channel.h (re-exported
// here for older call sites); the injector only *generates* trouble.
//
// Everything is driven by explicit 64-bit seeds: the same options always
// produce the same schedule and the same per-message loss pattern.
#pragma once

#include <cstdint>
#include <vector>

#include "omt/geometry/point.h"
#include "omt/random/rng.h"
#include "omt/rpc/channel.h"

namespace omt {

struct FaultScheduleOptions {
  double duration = 60.0;  ///< schedule length in time units
  int dim = 2;             ///< host positions in the unit ball
  std::uint64_t seed = 1;

  // Background churn (Poisson arrivals, exponential lifetimes).
  double arrivalRate = 30.0;   ///< background joins per unit time
  double meanLifetime = 20.0;  ///< mean session length
  double crashFraction = 0.3;  ///< departures that are silent crashes

  // Correlated regional outages.
  double crashBurstRate = 0.05;      ///< bursts per unit time (0 disables)
  double crashBurstRadius = 0.3;     ///< outage disk radius
  double crashBurstKillProb = 0.9;   ///< per-host kill probability inside

  // Flash-crowd join waves.
  double flashCrowdRate = 0.05;      ///< waves per unit time (0 disables)
  int flashCrowdSize = 60;           ///< joins per wave
  double flashCrowdSpread = 0.15;    ///< cluster radius around the center
  double flashCrowdWindow = 1.0;     ///< wave joins spread over this window
};

enum class FaultEventKind : std::uint8_t {
  kJoin,
  kLeave,
  kCrash,       ///< one host dies silently
  kCrashBurst,  ///< regional outage (victims resolved against live state)
};

struct FaultEvent {
  double time = 0.0;
  FaultEventKind kind = FaultEventKind::kJoin;
  /// kJoin/kLeave/kCrash: trace-local entity id; entities join in id order
  /// and each kLeave/kCrash refers to the entity of its kJoin.
  std::int64_t entity = -1;
  Point position;          ///< kJoin: host position; kCrashBurst: center
  double radius = 0.0;     ///< kCrashBurst: outage radius
  double killProbability = 0.0;  ///< kCrashBurst: per-host kill probability
  bool flashCrowd = false;       ///< kJoin born inside a flash-crowd wave
};

/// Generate a time-sorted fault schedule. Entities whose lifetime extends
/// past `duration` never depart. Deterministic in the options.
std::vector<FaultEvent> generateFaultSchedule(
    const FaultScheduleOptions& options);

struct DisruptionOptions {
  double duration = 60.0;  ///< schedule length in time units
  int dim = 2;             ///< partition centers in the unit ball
  std::uint64_t seed = 1;

  // Regional control-plane partitions.
  double partitionRate = 0.05;     ///< partitions per unit time (0 disables)
  double partitionRadius = 0.3;    ///< severed-region radius
  double partitionMeanLength = 2.0;  ///< mean partition duration

  // Global loss bursts on control traffic.
  double lossBurstRate = 0.05;     ///< bursts per unit time (0 disables)
  double lossBurstBoost = 0.5;     ///< extra loss probability while active
  double lossBurstMeanLength = 1.0;  ///< mean burst duration

  // Global delay spells on control traffic.
  double delaySpellRate = 0.0;     ///< spells per unit time (0 disables)
  double delaySpellExtra = 0.1;    ///< added one-way latency while active
  double delaySpellMeanLength = 1.0;  ///< mean spell duration
};

/// Generate a start-time-sorted set of disruption windows. Window lengths
/// are exponential with the configured means, truncated at `duration`.
/// Deterministic in the options.
std::vector<DisruptionWindow> generateDisruption(
    const DisruptionOptions& options);

}  // namespace omt
