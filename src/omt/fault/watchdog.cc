#include "omt/fault/watchdog.h"

#include <algorithm>
#include <vector>

#include "omt/common/error.h"
#include "omt/obs/metrics.h"

namespace omt {
namespace {

struct WatchdogMetrics {
  obs::Counter& checks;
  obs::Counter& alarms;
  obs::Counter& sheds;
  obs::Counter& parks;
  obs::Counter& scopedRebuilds;
  obs::Counter& fullRegrids;
  obs::Gauge& radiusDrift;
  obs::Gauge& cellSkew;
};

WatchdogMetrics& watchdogMetrics() {
  auto& registry = obs::MetricsRegistry::global();
  static WatchdogMetrics metrics{
      registry.counter("omt_fault_watchdog_checks_total"),
      registry.counter("omt_fault_watchdog_alarms_total"),
      registry.counter("omt_fault_watchdog_sheds_total"),
      registry.counter("omt_fault_watchdog_parks_total"),
      registry.counter("omt_fault_watchdog_scoped_rebuilds_total"),
      registry.counter("omt_fault_watchdog_full_regrids_total"),
      registry.gauge("omt_fault_watchdog_radius_drift"),
      registry.gauge("omt_fault_watchdog_cell_skew")};
  return metrics;
}

/// Root-path delays over the source-connected live membership (children
/// walk; hosts behind a crashed or parked ancestor are simply not reached,
/// matching what the data plane can actually deliver to mid-degradation).
void connectedDelays(const OverlaySession& session, std::vector<double>& delay,
                     std::vector<NodeId>& order) {
  delay.assign(static_cast<std::size_t>(session.hostCount()), -1.0);
  order.clear();
  delay[0] = 0.0;
  order.push_back(0);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const NodeId v = order[head];
    for (const NodeId c : session.childrenOf(v)) {
      if (!session.isLive(c)) continue;
      delay[static_cast<std::size_t>(c)] =
          delay[static_cast<std::size_t>(v)] +
          distance(session.positionOf(v), session.positionOf(c));
      order.push_back(c);
    }
  }
}

}  // namespace

const char* toString(WatchdogMode mode) {
  switch (mode) {
    case WatchdogMode::kNormal: return "normal";
    case WatchdogMode::kShed: return "shed";
    case WatchdogMode::kParkJoins: return "park_joins";
  }
  return "unknown";
}

const char* toString(WatchdogAction action) {
  switch (action) {
    case WatchdogAction::kNone: return "none";
    case WatchdogAction::kShed: return "shed";
    case WatchdogAction::kParkJoins: return "park_joins";
    case WatchdogAction::kScopedRebuild: return "scoped_rebuild";
    case WatchdogAction::kFullRegrid: return "full_regrid";
    case WatchdogAction::kDeescalate: return "deescalate";
  }
  return "unknown";
}

RadiusWatchdog::RadiusWatchdog(OverlaySession& session,
                               const WatchdogOptions& options)
    : session_(session), options_(options) {
  OMT_CHECK(options.ratioSlack >= 1.0, "ratio slack must be >= 1");
  OMT_CHECK(options.minRatioAlarm > 1.0, "ratio alarm floor must exceed 1");
  OMT_CHECK(options.skewSlack >= 1.0, "skew slack must be >= 1");
  OMT_CHECK(options.healthyChecksToClear >= 1,
            "hysteresis needs at least one healthy check");
  OMT_CHECK(options.maxScopedCells >= 1, "scoped rebuild needs a cell budget");
}

double RadiusWatchdog::measureRatio() const {
  if (session_.liveCount() < 2) return 0.0;
  std::vector<double> delay;
  std::vector<NodeId> order;
  connectedDelays(session_, delay, order);
  double radius = 0.0;
  double lower = 0.0;
  const Point& origin = session_.positionOf(0);
  for (const NodeId v : order) {
    radius = std::max(radius, delay[static_cast<std::size_t>(v)]);
    lower = std::max(lower, distance(session_.positionOf(v), origin));
  }
  if (lower <= kGeomEps) return 0.0;
  return radius / lower;
}

double RadiusWatchdog::measureSkew(
    std::vector<std::uint64_t>& violating) const {
  violating.clear();
  std::int64_t occupied = 0;
  std::int64_t largest = 0;
  std::vector<std::pair<std::int64_t, std::uint64_t>> sizes;
  for (std::uint64_t h = 1; h < session_.cellCount(); ++h) {
    std::int64_t live = 0;
    for (const NodeId member : session_.cellMembersOf(h)) {
      if (session_.isLive(member)) ++live;
    }
    if (live == 0) continue;
    ++occupied;
    largest = std::max(largest, live);
    sizes.emplace_back(live, h);
  }
  if (occupied == 0) return 0.0;
  const double fairShare = static_cast<double>(session_.liveCount()) /
                           static_cast<double>(occupied);
  const double limit =
      options_.skewSlack * fairShare + static_cast<double>(options_.skewSlop);
  std::sort(sizes.begin(), sizes.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [live, h] : sizes) {
    if (static_cast<double>(live) <= limit) break;
    if (static_cast<std::int64_t>(violating.size()) >=
        options_.maxScopedCells) {
      break;
    }
    violating.push_back(h);
  }
  return static_cast<double>(largest) / fairShare;
}

void RadiusWatchdog::enterMode(WatchdogMode next) {
  mode_ = next;
  session_.setShedOptionalWork(mode_ != WatchdogMode::kNormal);
}

WatchdogReport RadiusWatchdog::check() {
  auto& metrics = watchdogMetrics();
  ++stats_.checks;
  metrics.checks.add();

  WatchdogReport report;
  std::vector<std::uint64_t> violating;
  report.ratio = measureRatio();
  report.maxSkew = measureSkew(violating);
  metrics.radiusDrift.set(report.ratio);
  metrics.cellSkew.set(report.maxSkew);

  const double ratioAlarm =
      std::max(baselineRatio_ * options_.ratioSlack, options_.minRatioAlarm);
  const bool skewed = !violating.empty();
  report.healthy = report.ratio <= ratioAlarm && !skewed;

  if (report.healthy) {
    if (mode_ != WatchdogMode::kNormal &&
        ++healthyStreak_ >= options_.healthyChecksToClear) {
      healthyStreak_ = 0;
      enterMode(mode_ == WatchdogMode::kParkJoins ? WatchdogMode::kShed
                                                  : WatchdogMode::kNormal);
      if (mode_ == WatchdogMode::kNormal) scopedAttempted_ = false;
      ++stats_.deescalations;
      report.action = WatchdogAction::kDeescalate;
    }
    report.mode = mode_;
    return report;
  }

  ++stats_.alarms;
  metrics.alarms.add();
  healthyStreak_ = 0;

  switch (mode_) {
    case WatchdogMode::kNormal:
      enterMode(WatchdogMode::kShed);
      ++stats_.shedEntries;
      metrics.sheds.add();
      report.action = WatchdogAction::kShed;
      break;
    case WatchdogMode::kShed:
      enterMode(WatchdogMode::kParkJoins);
      ++stats_.parkEntries;
      metrics.parks.add();
      report.action = WatchdogAction::kParkJoins;
      break;
    case WatchdogMode::kParkJoins:
      if (!scopedAttempted_) {
        // Step 3: rebuild only the violating cells. A pure drift alarm
        // (no skewed cell) scopes to the cell of the worst-delay host.
        if (violating.empty()) {
          std::vector<double> delay;
          std::vector<NodeId> order;
          connectedDelays(session_, delay, order);
          NodeId worst = kNoNode;
          double worstDelay = -1.0;
          for (const NodeId v : order) {
            if (v == 0) continue;
            if (delay[static_cast<std::size_t>(v)] > worstDelay) {
              worstDelay = delay[static_cast<std::size_t>(v)];
              worst = v;
            }
          }
          if (worst != kNoNode)
            violating.push_back(session_.heapIdOf(worst));
        }
        scopedAttempted_ = true;
        report.rebuiltHosts = session_.rebuildCells(violating);
        ++stats_.scopedRebuilds;
        metrics.scopedRebuilds.add();
        report.action = WatchdogAction::kScopedRebuild;
      } else {
        // Step 4, only ever after a scoped attempt this episode.
        session_.forceRegrid();
        ++stats_.fullRegrids;
        metrics.fullRegrids.add();
        report.action = WatchdogAction::kFullRegrid;
        scopedAttempted_ = false;
        enterMode(WatchdogMode::kNormal);
      }
      break;
  }
  report.mode = mode_;
  return report;
}

}  // namespace omt
