// Steady-state churn runner: the sustained-load counterpart of the burst
// chaos harness in chaos.h.
//
// Where runChaos() replays a finite fault schedule and lets the overlay
// quiesce, runSteadyChurn() holds a session at a stationary population for
// a fixed number of membership events (join / graceful leave / crash in
// configurable proportions), sweeping detectAndRepair() and the radius
// watchdog every `sweepEvery` events. Each sweep optionally audits the
// full invariant set and samples radius drift, per-cell skew, and the
// per-event latency tail of the window — the curves BENCH_churn.json
// plots and the steady-state chaos gate asserts over 100 seeds.
//
// The runner is the watchdog's driver: in kParkJoins mode new joins are
// admitted parked and batched into the next sweep instead of attaching
// inline (the session itself never parks joins on its own).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "omt/fault/watchdog.h"
#include "omt/protocol/overlay_session.h"
#include "omt/report/stats.h"

namespace omt {

struct SteadyChurnOptions {
  int dim = 2;
  SessionOptions session;  ///< incremental mode is the default
  WatchdogOptions watchdog;
  /// Quality yardstick handed to the watchdog (see
  /// RadiusWatchdog::setBaselineRatio); 0 keeps the absolute alarm floor.
  double baselineRatio = 0.0;
  /// Hosts joined (and swept) before the measured event phase.
  std::int64_t warmupHosts = 512;
  /// Membership events in the measured phase.
  std::int64_t events = 20000;
  /// Probability an event is a departure (0.5 keeps the population
  /// stationary around the warmup level).
  double departureFraction = 0.5;
  /// Fraction of departures that crash instead of leaving gracefully.
  double crashFraction = 0.3;
  /// Events between detectAndRepair() + watchdog + audit sweeps.
  std::int64_t sweepEvery = 256;
  /// Population floor: below this every event is forced to be a join.
  std::int64_t minLive = 64;
  std::uint64_t seed = 1;
  /// Audit the full invariant set every sweep (O(hosts + cells)).
  bool checkInvariants = true;
  /// Time each membership event (wall clock; inherently nondeterministic).
  bool measureLatency = true;
  /// Materialise the final overlay into result.finalSnapshot.
  bool captureSnapshot = false;
};

/// One per-sweep sample row (the BENCH_churn.json curves).
struct SteadySweepSample {
  std::int64_t eventsDone = 0;
  std::int64_t liveCount = 0;
  double radiusRatio = 0.0;  ///< radius / lower bound after the sweep
  double maxSkew = 0.0;
  /// Per-event latency of the window since the previous sweep, seconds
  /// (zeros when measureLatency is off or the window was empty).
  double p50Latency = 0.0;
  double p99Latency = 0.0;
  double maxLatency = 0.0;
  WatchdogMode mode = WatchdogMode::kNormal;
  WatchdogAction action = WatchdogAction::kNone;
};

struct SteadyChurnResult {
  std::int64_t events = 0;
  std::int64_t joins = 0;
  std::int64_t leaves = 0;
  std::int64_t crashes = 0;
  /// Joins admitted parked (watchdog kParkJoins) and healed by a sweep.
  std::int64_t parkedJoins = 0;
  std::int64_t sweeps = 0;
  std::int64_t repairedSubtrees = 0;  ///< orphans re-homed by sweeps

  bool ok = true;              ///< invariants held at every audited sweep
  std::string firstViolation;  ///< first failed audit, empty when ok
  /// Every watchdog full regrid was preceded by a scoped rebuild in the
  /// same escalation episode (the gate's monotonicity verdict).
  bool escalationMonotone = true;
  /// Live hosts still disconnected (or crashes still unrepaired) after the
  /// final quiesce sweep; 0 in any healthy run.
  std::int64_t unrepairedOrphans = 0;

  double elapsedSeconds = 0.0;   ///< measured phase, wall clock
  double eventsPerSecond = 0.0;  ///< events / elapsedSeconds
  RunningStats radiusRatio;      ///< per-sweep drift samples
  double maxRatio = 0.0;
  RunningStats latencySeconds;   ///< all timed events
  std::vector<SteadySweepSample> sweepLog;

  WatchdogStats watchdog;
  SessionStats session;
  /// Engaged only when options.captureSnapshot.
  std::optional<SessionSnapshot> finalSnapshot;
};

SteadyChurnResult runSteadyChurn(const SteadyChurnOptions& options);

}  // namespace omt
