// Chaos invariant checker for the online overlay session.
//
// The fault-injection harness drives an OverlaySession through correlated
// crashes, lossy control traffic, and flash crowds; after every injected
// event this checker audits the session's full internal state through its
// read-only introspection API: parent/child symmetry, acyclicity, degree
// caps, cell membership and representative bookkeeping, and live/pending
// accounting. Mid-chaos the overlay is legitimately degraded — live hosts
// may hang below crashed-but-undetected parents — so the checker separates
// hard invariants (never violated at any instant) from the fully-repaired
// obligations snapshot() demands, and reports the instantaneous count of
// live hosts whose path to the source crosses a dead host (the quantity
// integrated into "disconnected node seconds" by the chaos runner).
#pragma once

#include <cstdint>
#include <string>

#include "omt/protocol/overlay_session.h"

namespace omt {

struct InvariantOptions {
  /// Also require the fully-healed obligations: no pending crashes, every
  /// live host reachable from the source through live hosts only, and
  /// every non-empty cell represented by a live member.
  bool requireRepaired = false;
};

struct InvariantReport {
  bool ok = true;
  std::string message;  ///< empty when ok; first violation otherwise
  /// Live hosts whose root path crosses a crashed-but-unrepaired host
  /// (data flow to them is broken until detection + repair).
  std::int64_t disconnectedLiveHosts = 0;
  /// Live hosts parked in a degraded half-joined/half-repaired state,
  /// waiting for an attach handshake (or the anti-entropy audit).
  std::int64_t parkedHosts = 0;

  explicit operator bool() const { return ok; }
};

/// Audit every structural invariant of `session`. Cost O(hosts + cells).
InvariantReport checkSessionInvariants(const OverlaySession& session,
                                       const InvariantOptions& options = {});

/// Just the disconnected-live-host count (the cheap subset of the audit,
/// for chaos runs that integrate disconnection over time with invariant
/// checking disabled).
std::int64_t countDisconnectedLiveHosts(const OverlaySession& session);

}  // namespace omt
