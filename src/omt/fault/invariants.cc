#include "omt/fault/invariants.h"

#include <vector>

namespace omt {
namespace {

std::string hostTag(NodeId id) { return "host " + std::to_string(id); }

/// Root-path classification, memoised: 0 = unvisited, 1 = in progress,
/// 2 = reaches the source through live hosts only, 3 = reaches the source
/// but crosses a dead host, 4 = broken (detached short of the source or
/// cyclic).
enum : std::uint8_t {
  kUnvisited = 0,
  kInProgress = 1,
  kCleanPath = 2,
  kCrossesDead = 3,
  kBroken = 4,
};

}  // namespace

std::int64_t countDisconnectedLiveHosts(const OverlaySession& session) {
  const std::int64_t n = session.hostCount();
  std::vector<std::uint8_t> state(static_cast<std::size_t>(n), kUnvisited);
  state[0] = kCleanPath;
  std::int64_t disconnected = 0;
  std::vector<NodeId> chain;
  for (NodeId id = 1; id < n; ++id) {
    if (!session.isLive(id) && !session.isPendingCrash(id)) continue;
    chain.clear();
    NodeId v = id;
    while (v != kNoNode && state[static_cast<std::size_t>(v)] == kUnvisited) {
      state[static_cast<std::size_t>(v)] = kInProgress;
      chain.push_back(v);
      v = session.parentOf(v);
    }
    std::uint8_t verdict;
    if (v == kNoNode) {
      verdict = kBroken;  // detached short of the source
    } else if (state[static_cast<std::size_t>(v)] == kInProgress) {
      verdict = kBroken;  // cycle (flagged as a violation by the full audit)
    } else {
      verdict = state[static_cast<std::size_t>(v)];
    }
    // Propagate back down: a dead link poisons everything below it.
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (verdict == kCleanPath && !session.isLive(*it)) verdict = kCrossesDead;
      state[static_cast<std::size_t>(*it)] =
          verdict == kCleanPath ? kCleanPath
                                : (verdict == kBroken ? kBroken : kCrossesDead);
    }
    if (session.isLive(id) && state[static_cast<std::size_t>(id)] != kCleanPath)
      ++disconnected;
  }
  return disconnected;
}

InvariantReport checkSessionInvariants(const OverlaySession& session,
                                       const InvariantOptions& options) {
  InvariantReport report;
  const auto fail = [&](const std::string& message) {
    if (report.ok) {
      report.ok = false;
      report.message = message;
    }
  };

  const std::int64_t n = session.hostCount();
  const int cap = session.options().maxOutDegree;
  std::int64_t live = 0;
  std::int64_t pending = 0;
  std::int64_t parked = 0;
  std::int64_t unplacedParked = 0;  ///< heap id 0: in no cell (see below)

  // Per-host structural checks.
  for (NodeId id = 0; id < n; ++id) {
    const bool isLive = session.isLive(id);
    const bool isPending = session.isPendingCrash(id);
    const bool isParked = session.isParked(id);
    if (isLive && isPending) fail(hostTag(id) + " both live and pending");
    if (isParked && !isLive) fail(hostTag(id) + " parked but not live");
    if (isParked && session.parentOf(id) != kNoNode)
      fail(hostTag(id) + " parked but attached");
    if (isLive) ++live;
    if (isPending) ++pending;
    if (isParked) ++parked;

    const auto children = session.childrenOf(id);
    if (!isLive && !isPending) {
      // Departed gracefully or already purged: fully detached.
      if (session.parentOf(id) != kNoNode)
        fail(hostTag(id) + " departed but still attached");
      if (!children.empty())
        fail(hostTag(id) + " departed but still has children");
      continue;
    }

    // Degree cap, child symmetry, and child duplicates.
    if (static_cast<int>(children.size()) > cap)
      fail(hostTag(id) + " exceeds the degree cap");
    for (std::size_t i = 0; i < children.size(); ++i) {
      const NodeId c = children[i];
      if (c < 0 || c >= n) {
        fail(hostTag(id) + " lists an unknown child");
        continue;
      }
      if (session.parentOf(c) != id)
        fail(hostTag(c) + " is listed as a child of " + std::to_string(id) +
             " but points elsewhere");
      if (!session.isLive(c) && !session.isPendingCrash(c))
        fail(hostTag(id) + " lists departed child " + std::to_string(c));
      for (std::size_t j = i + 1; j < children.size(); ++j) {
        if (children[j] == c)
          fail(hostTag(id) + " lists child " + std::to_string(c) + " twice");
      }
    }

    // Parent linkage.
    const NodeId parent = session.parentOf(id);
    if (id == 0) {
      if (parent != kNoNode) fail("the source has a parent");
    } else if (parent == kNoNode) {
      // Only a pending crash (its subtree was orphaned by an earlier purge
      // and it cannot be re-placed while dead) or a parked host (an attach
      // handshake is pending) may be left detached.
      if (isLive && !isParked) fail(hostTag(id) + " is live but detached");
    } else {
      if (parent < 0 || parent >= n) {
        fail(hostTag(id) + " has an unknown parent");
      } else {
        if (!session.isLive(parent) && !session.isPendingCrash(parent))
          fail(hostTag(id) + " hangs under departed host " +
               std::to_string(parent));
        const auto siblings = session.childrenOf(parent);
        std::int64_t listed = 0;
        for (const NodeId s : siblings) listed += s == id ? 1 : 0;
        if (listed != 1)
          fail(hostTag(id) + " appears " + std::to_string(listed) +
               " times in its parent's child list");
      }
    }

    // Cell membership: exactly one entry in the cell the host claims. Heap
    // id 0 marks a host never placed under any grid — legal only for a
    // freshly-admitted parked host or a corpse whose attach never landed
    // (it crashed while parked, so it joined no cell to be purged from).
    const std::uint64_t heapId = session.heapIdOf(id);
    if (heapId == 0) {
      if (isParked || isPending) {
        ++unplacedParked;
      } else {
        fail(hostTag(id) + " is attached but placed in no cell");
      }
    } else if (heapId >= session.cellCount()) {
      fail(hostTag(id) + " claims an out-of-range cell");
    } else {
      std::int64_t entries = 0;
      for (const NodeId member : session.cellMembersOf(heapId))
        entries += member == id ? 1 : 0;
      if (entries != 1)
        fail(hostTag(id) + " has " + std::to_string(entries) +
             " entries in its cell");
    }
  }

  if (live != session.liveCount())
    fail("liveCount() disagrees with the per-host flags");
  if (pending != session.undetectedCrashes())
    fail("undetectedCrashes() disagrees with the per-host flags");
  if (parked != session.parkedCount())
    fail("parkedCount() disagrees with the per-host flags");
  if (!session.isLive(0)) fail("the source is not live");

  // Acyclicity + reachability classification (also counts disconnection).
  {
    const std::int64_t m = session.hostCount();
    std::vector<std::uint8_t> state(static_cast<std::size_t>(m), kUnvisited);
    state[0] = kCleanPath;
    std::vector<NodeId> chain;
    for (NodeId id = 1; id < m; ++id) {
      if (!session.isLive(id) && !session.isPendingCrash(id)) continue;
      chain.clear();
      NodeId v = id;
      while (v != kNoNode && v >= 0 && v < m &&
             state[static_cast<std::size_t>(v)] == kUnvisited) {
        state[static_cast<std::size_t>(v)] = kInProgress;
        chain.push_back(v);
        v = session.parentOf(v);
      }
      std::uint8_t verdict;
      if (v == kNoNode) {
        verdict = kBroken;
        if (!chain.empty() && !session.isPendingCrash(chain.back()) &&
            !session.isParked(chain.back()))
          fail(hostTag(id) + " is detached from the source");
      } else if (v < 0 || v >= m) {
        verdict = kBroken;
        fail(hostTag(id) + " has an out-of-range ancestor");
      } else if (state[static_cast<std::size_t>(v)] == kInProgress) {
        verdict = kBroken;
        fail(hostTag(id) + " lies on a parent-pointer cycle");
      } else {
        verdict = state[static_cast<std::size_t>(v)];
      }
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        if (verdict == kCleanPath && !session.isLive(*it))
          verdict = kCrossesDead;
        state[static_cast<std::size_t>(*it)] =
            verdict == kCleanPath
                ? kCleanPath
                : (verdict == kBroken ? kBroken : kCrossesDead);
      }
      if (session.isLive(id) &&
          state[static_cast<std::size_t>(id)] != kCleanPath)
        ++report.disconnectedLiveHosts;
    }
  }

  // Cell-side bookkeeping: members tracked, representatives sane.
  std::int64_t totalMembers = 0;
  for (std::uint64_t h = 1; h < session.cellCount(); ++h) {
    const auto members = session.cellMembersOf(h);
    bool anyLive = false;
    for (const NodeId member : members) {
      ++totalMembers;
      if (member < 0 || member >= n) {
        fail("cell " + std::to_string(h) + " tracks an unknown host");
        continue;
      }
      if (!session.isLive(member) && !session.isPendingCrash(member))
        fail("cell " + std::to_string(h) + " tracks departed host " +
             std::to_string(member));
      if (session.heapIdOf(member) != h)
        fail(hostTag(member) + " is tracked by a cell it does not claim");
      anyLive = anyLive || session.isLive(member);
    }
    const NodeId rep = session.cellRepresentativeOf(h);
    if (rep != kNoNode) {
      std::int64_t entries = 0;
      for (const NodeId member : members) entries += member == rep ? 1 : 0;
      if (entries != 1)
        fail("cell " + std::to_string(h) + " has a non-member representative");
    } else if (anyLive) {
      fail("cell " + std::to_string(h) +
           " has live members but no representative");
    }
    if (options.requireRepaired && rep != kNoNode && !session.isLive(rep))
      fail("cell " + std::to_string(h) + " is represented by a dead host");
  }
  if (totalMembers != live + pending - unplacedParked)
    fail("cell membership totals disagree with the host census");

  report.parkedHosts = parked;
  if (options.requireRepaired) {
    if (pending != 0) fail("pending crashes remain after required repair");
    if (parked != 0) fail("parked hosts remain after required repair");
    if (report.disconnectedLiveHosts != 0)
      fail("live hosts remain disconnected after required repair");
  }
  return report;
}

}  // namespace omt
