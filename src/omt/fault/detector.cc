#include "omt/fault/detector.h"

#include <algorithm>
#include <cmath>

#include "omt/common/error.h"
#include "omt/obs/metrics.h"

namespace omt {
namespace {

/// Detector simulations run single-threaded off a fixed seed, so every add
/// here is deterministic for any worker count.
struct DetectorMetrics {
  obs::Counter& probes;
  obs::Counter& missedProbes;
  obs::Counter& suspicions;
  obs::Counter& reinstatements;
  obs::Counter& falsePositives;
  obs::Counter& confirmedCrashes;
  obs::Histogram& detectionLatency;
};

DetectorMetrics& detectorMetrics() {
  auto& registry = obs::MetricsRegistry::global();
  static DetectorMetrics metrics{
      registry.counter("omt_detector_probes_total"),
      registry.counter("omt_detector_missed_probes_total"),
      registry.counter("omt_detector_suspicions_total"),
      registry.counter("omt_detector_reinstatements_total"),
      registry.counter("omt_detector_false_positives_total"),
      registry.counter("omt_detector_confirmed_crashes_total"),
      registry.histogram("omt_detector_detection_latency_seconds")};
  return metrics;
}

}  // namespace

HeartbeatDetector::HeartbeatDetector(OverlaySession& session,
                                     ControlChannel& channel,
                                     const DetectorOptions& options,
                                     std::uint64_t seed)
    : session_(session),
      channel_(channel),
      options_(options),
      jitterRng_(deriveSeed(seed, 0x68656172ULL)) {
  OMT_CHECK(options.probePeriod > 0.0, "probe period must be positive");
  OMT_CHECK(options.suspicionThreshold >= 1,
            "suspicion threshold must be at least one miss");
  OMT_CHECK(options.confirmationAttempts >= 1,
            "need at least one confirmation attempt");
  OMT_CHECK(options.leaseFactor >= 1.0, "lease must cover one probe period");
}

HeartbeatDetector::HostState& HeartbeatDetector::stateOf(NodeId host) {
  const auto index = static_cast<std::size_t>(host);
  if (index >= states_.size()) {
    states_.resize(index + 1);
    crashTime_.resize(index + 1, -1.0);
    declaredDead_.resize(index + 1, 0);
  }
  return states_[index];
}

void HeartbeatDetector::track(NodeId host, double now) {
  OMT_CHECK(host >= 0 && host < session_.hostCount(), "unknown host");
  HostState& s = stateOf(host);
  if (s.period <= 0.0) {
    // Deterministic per-host jitter (±10%) so probes do not fire in lockstep.
    s.period = options_.probePeriod * (0.9 + 0.2 * jitterRng_.uniform());
  }
  s.lastParent = session_.parentOf(host);
  s.misses = 0;
  s.lastHeard = now;
  s.tracked = true;
  ++s.epoch;
  crashTime_[static_cast<std::size_t>(host)] = -1.0;
  declaredDead_[static_cast<std::size_t>(host)] = 0;
  heap_.push_back({now + s.period, host, s.epoch});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

void HeartbeatDetector::noteCrash(NodeId host, double now) {
  stateOf(host);  // ensure the slot exists
  crashTime_[static_cast<std::size_t>(host)] = now;
}

double HeartbeatDetector::nextProbeAt() const {
  return heap_.empty() ? kInf : heap_.front().due;
}

bool HeartbeatDetector::confirm(NodeId suspect) {
  for (int attempt = 0; attempt < options_.confirmationAttempts; ++attempt) {
    ++stats_.probes;
    detectorMetrics().probes.add();
    if (channel_.roll() && session_.isLive(suspect)) return true;
  }
  return false;
}

std::vector<HeartbeatDetector::Verdict> HeartbeatDetector::advanceTo(
    double now) {
  std::vector<Verdict> verdicts;
  // Pre-size the per-host arrays for every host the session knows, so no
  // stateOf() call below can reallocate them while references are held.
  if (session_.hostCount() > 0)
    stateOf(static_cast<NodeId>(session_.hostCount() - 1));

  const auto declare = [&](NodeId suspect, NodeId accuser, double when) {
    const bool wasAlive = session_.isLive(suspect);
    const auto index = static_cast<std::size_t>(suspect);
    if (!wasAlive && declaredDead_[index]) return;  // already declared
    if (wasAlive) {
      ++stats_.falsePositives;
      detectorMetrics().falsePositives.add();
    } else {
      ++stats_.confirmedCrashes;
      detectorMetrics().confirmedCrashes.add();
      declaredDead_[index] = 1;
      if (crashTime_[index] >= 0.0) {
        stats_.detectionLatency.add(when - crashTime_[index]);
        detectorMetrics().detectionLatency.observe(when - crashTime_[index]);
      }
    }
    verdicts.push_back({suspect, accuser, wasAlive});
  };

  while (!heap_.empty() && heap_.front().due <= now) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const Timer timer = heap_.back();
    heap_.pop_back();

    HostState& s = stateOf(timer.host);
    if (!s.tracked || timer.epoch != s.epoch) continue;  // stale timer
    if (!session_.isLive(timer.host)) {
      // Dead hosts fall silent: the timer is dropped, but the state stays
      // tracked so the parent-side lease can notice the silence.
      if (!session_.isPendingCrash(timer.host)) s.tracked = false;
      continue;
    }
    const double tick = timer.due;

    // Heartbeat to the parent (one roll covers the round trip). A fresh
    // parent after a re-home resets the miss counter.
    const NodeId parent = session_.parentOf(timer.host);
    if (parent != s.lastParent) {
      s.lastParent = parent;
      s.misses = 0;
    }
    if (parent != kNoNode) {
      ++stats_.probes;
      detectorMetrics().probes.add();
      const bool acked = channel_.roll() && session_.isLive(parent);
      if (acked) {
        s.misses = 0;
        s.lastHeard = tick;  // the parent heard from this child
      } else {
        ++stats_.missedProbes;
        detectorMetrics().missedProbes.add();
        if (++s.misses >= options_.suspicionThreshold) {
          ++stats_.suspicions;
          detectorMetrics().suspicions.add();
          if (confirm(parent)) {
            ++stats_.reinstatements;
            detectorMetrics().reinstatements.add();
            s.misses = 0;
            // The confirmation round trip reached the parent and back, so
            // the parent heard from this child: refresh the lease. Without
            // this, the same loss episode that built the miss streak also
            // leaves lastHeard stale and the parent's next lease check
            // wrongfully declares this (live, probing) child — one episode
            // double-counted as two independent false positives.
            s.lastHeard = tick;
          } else {
            declare(parent, timer.host, tick);
            s.misses = 0;  // the verdict hand-off re-homes this host
          }
        }
      }
    }

    // The lease loop below may grow states_ (stateOf on a first-seen child),
    // invalidating `s`; capture what the timer re-arm needs first.
    const double period = s.period;
    const std::uint64_t epoch = s.epoch;

    // Lease checks on the children: a child silent for leaseFactor of its
    // own probe periods is suspected. This is how a crashed leaf — which
    // nobody probes — gets detected.
    for (const NodeId child : session_.childrenOf(timer.host)) {
      HostState& cs = stateOf(child);
      if (!cs.tracked || cs.period <= 0.0) continue;
      const double lease = cs.period * options_.leaseFactor;
      if (tick - cs.lastHeard <= lease) continue;
      ++stats_.suspicions;
      detectorMetrics().suspicions.add();
      if (confirm(child)) {
        ++stats_.reinstatements;
        detectorMetrics().reinstatements.add();
        cs.lastHeard = tick;
      } else {
        declare(child, timer.host, tick);
        cs.lastHeard = tick;  // pace repeat declarations of a live child
      }
    }

    heap_.push_back({tick + period, timer.host, epoch});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  }
  return verdicts;
}

}  // namespace omt
