// Radius-guarantee watchdog for a long-lived incremental OverlaySession.
//
// Incremental maintenance (splits/merges/extends, ROADMAP item 3) keeps
// per-event cost O(polylog) but, unlike a full regrid, never *measures*
// what churn has done to the paper's radius guarantee. This watchdog closes
// the loop: each check() measures
//  * radius drift — the overlay radius (longest root path over the live,
//    attached membership) divided by the instance lower bound (the largest
//    source-to-host distance), compared against a configurable multiple of
//    a baseline ratio (e.g. what a fresh static Polar_Grid build achieves);
//  * per-cell occupancy skew — the largest live cell population relative
//    to the fair share live/occupiedCells, which catches the grid frame
//    drifting away from the membership distribution even while the radius
//    still looks healthy.
//
// On violation it escalates ONE step per check through a strictly ordered
// degraded-mode ladder, and de-escalates one step after a run of healthy
// checks (hysteresis):
//   kNormal -> kShed       shed optional re-optimisation (representative
//                          re-homing after splits) — cheapest relief;
//   kShed -> kParkJoins    ask the driver to admit-and-park new joins so
//                          the next sweep batches their placement;
//   kParkJoins -> scoped   rebuildCells() on just the violating cells;
//   scoped -> full regrid  only if a scoped rebuild was already attempted
//                          this episode — by construction the ladder is
//                          monotone and a full regrid can never be the
//                          first structural response (the steady-state
//                          chaos gate asserts exactly this).
#pragma once

#include <cstdint>
#include <vector>

#include "omt/protocol/overlay_session.h"

namespace omt {

enum class WatchdogMode : std::uint8_t { kNormal, kShed, kParkJoins };

enum class WatchdogAction : std::uint8_t {
  kNone,           ///< healthy, or still waiting out the hysteresis
  kShed,           ///< entered kShed
  kParkJoins,      ///< entered kParkJoins
  kScopedRebuild,  ///< rebuilt the violating cells
  kFullRegrid,     ///< last resort: full regrid (episode resets)
  kDeescalate,     ///< one step back down after healthy checks
};

/// Short stable names for logs, CSV, and BENCH json rows.
const char* toString(WatchdogMode mode);
const char* toString(WatchdogAction action);

struct WatchdogOptions {
  /// Alarm when ratio > max(baselineRatio * ratioSlack, minRatioAlarm).
  double ratioSlack = 2.0;
  /// Absolute alarm floor; guards against a tiny baseline making ordinary
  /// small-membership noise look like drift.
  double minRatioAlarm = 4.0;
  /// Alarm when the largest live cell exceeds skewSlack * fair share
  /// + skewSlop members (the slop forgives small-cell integer effects).
  double skewSlack = 8.0;
  std::int64_t skewSlop = 16;
  /// Healthy checks required before each single de-escalation step.
  int healthyChecksToClear = 3;
  /// Cap on cells rebuilt by one scoped-rebuild escalation.
  int maxScopedCells = 16;
};

struct WatchdogReport {
  double ratio = 0.0;        ///< measured radius / lower bound (0: n < 2)
  double maxSkew = 0.0;      ///< largest cell / fair share
  bool healthy = true;
  WatchdogMode mode = WatchdogMode::kNormal;  ///< mode AFTER this check
  WatchdogAction action = WatchdogAction::kNone;
  std::int64_t rebuiltHosts = 0;  ///< hosts re-placed by a scoped rebuild
};

struct WatchdogStats {
  std::int64_t checks = 0;
  std::int64_t alarms = 0;         ///< checks that measured a violation
  std::int64_t shedEntries = 0;
  std::int64_t parkEntries = 0;
  std::int64_t scopedRebuilds = 0;
  std::int64_t fullRegrids = 0;
  std::int64_t deescalations = 0;
};

class RadiusWatchdog {
 public:
  explicit RadiusWatchdog(OverlaySession& session,
                          const WatchdogOptions& options = {});

  /// Quality yardstick for the drift alarm, typically
  /// staticRadiusRatio() over a comparable membership; 0 (the default)
  /// falls back to the absolute minRatioAlarm floor alone.
  void setBaselineRatio(double ratio) { baselineRatio_ = ratio; }
  double baselineRatio() const { return baselineRatio_; }

  /// Measure drift and skew, then escalate or de-escalate at most one
  /// ladder step. O(hosts + cells).
  WatchdogReport check();

  WatchdogMode mode() const { return mode_; }
  /// Whether the driver should admit-and-park new joins instead of
  /// attaching them inline (mode >= kParkJoins).
  bool parkNewJoins() const { return mode_ == WatchdogMode::kParkJoins; }
  const WatchdogStats& stats() const { return stats_; }

  /// Measured radius / lower bound of the current overlay (also performed
  /// by check(); exposed for benches sampling between checks).
  double measureRatio() const;

 private:
  /// Largest cell / fair share; fills `violating` with the over-threshold
  /// cells, worst first, capped at maxScopedCells.
  double measureSkew(std::vector<std::uint64_t>& violating) const;

  void enterMode(WatchdogMode next);

  OverlaySession& session_;
  WatchdogOptions options_;
  double baselineRatio_ = 0.0;
  WatchdogMode mode_ = WatchdogMode::kNormal;
  bool scopedAttempted_ = false;  ///< scoped rebuild done this episode
  int healthyStreak_ = 0;
  WatchdogStats stats_;
};

}  // namespace omt
