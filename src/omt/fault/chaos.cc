#include "omt/fault/chaos.h"

#include <algorithm>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "omt/common/error.h"
#include "omt/fault/invariants.h"
#include "omt/obs/metrics.h"
#include "omt/obs/trace.h"
#include "omt/tree/validation.h"

namespace omt {
namespace {

/// Chaos runs are seeded single-threaded simulations; all of this is
/// deterministic for a fixed option set regardless of worker count.
struct ChaosMetrics {
  obs::Counter& runs;
  obs::Counter& joins;
  obs::Counter& leaves;
  obs::Counter& crashes;
  obs::Counter& repairs;
  obs::Counter& sweepRepairs;
  obs::Histogram& repairLatency;
};

ChaosMetrics& chaosMetrics() {
  auto& registry = obs::MetricsRegistry::global();
  static ChaosMetrics metrics{
      registry.counter("omt_chaos_runs_total"),
      registry.counter("omt_chaos_joins_total"),
      registry.counter("omt_chaos_leaves_total"),
      registry.counter("omt_chaos_crashes_total"),
      registry.counter("omt_chaos_repairs_total"),
      registry.counter("omt_chaos_sweep_repairs_total"),
      registry.histogram("omt_chaos_repair_latency_seconds")};
  return metrics;
}

/// A join/leave submission travelling over the control channel, re-queued
/// with its backoff delay when the exchange expires.
struct PendingOp {
  double due;
  std::int64_t seq;  ///< deterministic tie-break for equal due times
  FaultEventKind kind;
  std::int64_t entity;
  int attempt;
};
struct OpLater {
  bool operator()(const PendingOp& a, const PendingOp& b) const {
    return a.due != b.due ? a.due > b.due : a.seq > b.seq;
  }
};

class ChaosRun {
 public:
  explicit ChaosRun(const ChaosOptions& options)
      : options_(options),
        session_(Point(options.schedule.dim), options.session),
        channel_(options.channel),
        detector_(session_, channel_, options.detector,
                  deriveSeed(options.schedule.seed, 0x64657465ULL)),
        burstRng_(deriveSeed(options.schedule.seed, 0x6b696c6cULL)) {
    if (options.useRpc) {
      std::vector<DisruptionWindow> windows;
      if (options.injectDisruption)
        windows = generateDisruption(options.disruption);
      result_.disruptionWindows = static_cast<std::int64_t>(windows.size());
      rpc_ = std::make_unique<RpcLayer>(
          options.rpc, DisruptionSchedule(std::move(windows)),
          [this](std::int64_t id) -> const Point* {
            if (id < 0 || id >= session_.hostCount()) return nullptr;
            const auto node = static_cast<NodeId>(id);
            if (!session_.isLive(node)) return nullptr;
            return &session_.positionOf(node);
          });
      driver_ = std::make_unique<ReliableSessionDriver>(session_, *rpc_);
    }
  }

  ChaosResult run();

 private:
  void advanceTime(double t) {
    if (t <= now_) return;
    result_.disconnectedNodeSeconds +=
        static_cast<double>(gauge_) * (t - now_);
    now_ = t;
  }

  /// Invariant audit + disconnection gauge refresh after a mutation.
  void audit() {
    if (options_.checkInvariants) {
      ++result_.invariantChecks;
      const InvariantReport report = checkSessionInvariants(session_);
      gauge_ = report.disconnectedLiveHosts;
      if (!report.ok && result_.ok) {
        result_.ok = false;
        result_.failure = report.message;
      }
    } else {
      gauge_ = countDisconnectedLiveHosts(session_);
    }
  }

  /// A regrid re-places every live host — and the incremental structural
  /// moves (splits, merges, scoped rebuilds) can re-home representatives —
  /// so refresh detector state after any of them to keep stale leases from
  /// triggering a storm of false suspicions.
  void retrackAfterRegrid() {
    const SessionStats& s = session_.stats();
    const std::int64_t structural =
        s.regrids + s.splits + s.merges + s.scopedRebuilds;
    if (structural == regridsSeen_) return;
    regridsSeen_ = structural;
    for (NodeId id = 0; id < session_.hostCount(); ++id) {
      if (session_.isLive(id)) detector_.track(id, now_);
    }
  }

  /// Bookkeeping for a host that already went dark in the session (the
  /// crash itself was applied by the caller or the driver).
  void noteCrashed(NodeId node) {
    const auto index = static_cast<std::size_t>(node);
    if (crashTime_.size() <= index) crashTime_.resize(index + 1, -1.0);
    crashTime_[index] = now_;
    detector_.noteCrash(node, now_);
    ++result_.crashes;
  }

  void recordCrash(NodeId node) {
    session_.crash(node);
    noteCrashed(node);
  }

  void enqueueOp(FaultEventKind kind, std::int64_t entity, double due,
                 int attempt) {
    ops_.push({due, opSeq_++, kind, entity, attempt});
  }

  void handleEvent(const FaultEvent& event);
  void handleOp(const PendingOp& op);
  void handleOpRpc(const PendingOp& op);
  void runAuditSweep();
  void handleVerdicts(const std::vector<HeartbeatDetector::Verdict>& verdicts);

  const ChaosOptions& options_;
  OverlaySession session_;
  ControlChannel channel_;
  HeartbeatDetector detector_;
  Rng burstRng_;
  ChaosResult result_;

  std::vector<FaultEvent> events_;
  std::vector<NodeId> entityNode_;       // entity -> session id (or kNoNode)
  std::vector<std::uint8_t> entityGone_; // entity departed before joining
  std::vector<Point> entityPosition_;    // entity -> join position
  std::vector<bool> entityFlash_;
  std::vector<Point> nodePosition_;      // session id -> position
  std::vector<double> crashTime_;        // session id -> crash time (or -1)
  std::priority_queue<PendingOp, std::vector<PendingOp>, OpLater> ops_;
  std::int64_t opSeq_ = 0;
  std::int64_t regridsSeen_ = 0;
  std::int64_t gauge_ = 0;  ///< current disconnected-live-host count
  double now_ = 0.0;

  // RPC mode only.
  std::unique_ptr<RpcLayer> rpc_;
  std::unique_ptr<ReliableSessionDriver> driver_;
  double lastAuditAt_ = 0.0;
};

void ChaosRun::handleEvent(const FaultEvent& event) {
  switch (event.kind) {
    case FaultEventKind::kJoin: {
      const auto e = static_cast<std::size_t>(event.entity);
      entityPosition_[e] = event.position;
      entityFlash_[e] = event.flashCrowd;
      enqueueOp(FaultEventKind::kJoin, event.entity, event.time, 0);
      break;
    }
    case FaultEventKind::kLeave: {
      const NodeId node = entityNode_[static_cast<std::size_t>(event.entity)];
      if (node == kNoNode) {
        // Still in join retries (or the join was dropped): the host gives
        // up before ever getting in.
        entityGone_[static_cast<std::size_t>(event.entity)] = 1;
      } else if (session_.isLive(node)) {
        enqueueOp(FaultEventKind::kLeave, event.entity, event.time, 0);
      }
      break;
    }
    case FaultEventKind::kCrash: {
      const NodeId node = entityNode_[static_cast<std::size_t>(event.entity)];
      if (node == kNoNode) {
        entityGone_[static_cast<std::size_t>(event.entity)] = 1;
      } else if (session_.isLive(node)) {
        recordCrash(node);
        audit();
      }
      break;
    }
    case FaultEventKind::kCrashBurst: {
      ++result_.crashBursts;
      bool any = false;
      const std::int64_t n = session_.hostCount();
      for (NodeId id = 1; id < n; ++id) {
        if (!session_.isLive(id)) continue;
        if (distance(nodePosition_[static_cast<std::size_t>(id)],
                     event.position) > event.radius)
          continue;
        if (burstRng_.uniform() >= event.killProbability) continue;
        recordCrash(id);
        any = true;
      }
      if (any) audit();
      break;
    }
  }
}

void ChaosRun::handleOp(const PendingOp& op) {
  if (driver_) {
    handleOpRpc(op);
    return;
  }
  const auto e = static_cast<std::size_t>(op.entity);
  if (op.kind == FaultEventKind::kJoin) {
    if (entityGone_[e]) return;  // departed before the join ever landed
    const ControlChannel::Outcome outcome = channel_.send();
    if (!outcome.delivered) {
      if (op.attempt < options_.maxOperationRetries) {
        ++result_.operationRetries;
        enqueueOp(op.kind, op.entity, now_ + outcome.elapsed, op.attempt + 1);
      } else {
        ++result_.droppedJoins;
      }
      return;
    }
    const NodeId id = session_.join(entityPosition_[e]);
    entityNode_[e] = id;
    if (nodePosition_.size() <= static_cast<std::size_t>(id))
      nodePosition_.resize(static_cast<std::size_t>(id) + 1);
    nodePosition_[static_cast<std::size_t>(id)] = entityPosition_[e];
    detector_.track(id, now_);
    retrackAfterRegrid();
    ++result_.joins;
    if (entityFlash_[e]) ++result_.flashCrowdJoins;
    result_.peakLive = std::max(result_.peakLive, session_.liveCount());
    audit();
    return;
  }

  // Leave: the node may have crashed (or been burst-killed) while the
  // goodbye was still retrying.
  const NodeId node = entityNode_[e];
  if (node == kNoNode || !session_.isLive(node)) return;
  const ControlChannel::Outcome outcome = channel_.send();
  if (!outcome.delivered) {
    if (op.attempt < options_.maxOperationRetries) {
      ++result_.operationRetries;
      enqueueOp(op.kind, op.entity, now_ + outcome.elapsed, op.attempt + 1);
    } else {
      // The goodbye never got through: from the overlay's point of view
      // this host simply went dark.
      ++result_.silentLeaves;
      recordCrash(node);
      audit();
    }
    return;
  }
  // Children get re-homed by the protocol; refresh their detector state so
  // their new parents start from a fresh lease.
  const auto span = session_.childrenOf(node);
  std::vector<NodeId> children(span.begin(), span.end());
  session_.leave(node);
  ++result_.leaves;
  for (const NodeId child : children) {
    if (session_.isLive(child)) detector_.track(child, now_);
  }
  retrackAfterRegrid();
  audit();
}

void ChaosRun::handleOpRpc(const PendingOp& op) {
  const auto e = static_cast<std::size_t>(op.entity);
  if (op.kind == FaultEventKind::kJoin) {
    if (entityGone_[e]) return;  // departed before the join ever landed
    // The RPC layer owns retries and backoff; a join whose handshake
    // exhausts them leaves the host parked for the anti-entropy audit.
    const ReliableSessionDriver::JoinDrive drive =
        driver_->driveJoin(entityPosition_[e], now_);
    entityNode_[e] = drive.id;
    const auto index = static_cast<std::size_t>(drive.id);
    if (nodePosition_.size() <= index) nodePosition_.resize(index + 1);
    nodePosition_[index] = entityPosition_[e];
    ++result_.joins;
    if (entityFlash_[e]) ++result_.flashCrowdJoins;
    if (drive.result.applied) {
      detector_.track(drive.id, now_);
    } else {
      ++result_.parkedJoins;
    }
    retrackAfterRegrid();
    result_.peakLive = std::max(result_.peakLive, session_.liveCount());
    audit();
    return;
  }

  // Leave: the node may have crashed (or been burst-killed) while waiting.
  const NodeId node = entityNode_[e];
  if (node == kNoNode || !session_.isLive(node)) return;
  const auto span = session_.childrenOf(node);
  std::vector<NodeId> children(span.begin(), span.end());
  const ReliableSessionDriver::OpResult result =
      driver_->driveLeave(node, now_);
  if (result.silent) {
    ++result_.silentLeaves;
    noteCrashed(node);  // the driver already took the host dark
  } else {
    ++result_.leaves;
    for (const NodeId child : children) {
      if (session_.isLive(child)) detector_.track(child, now_);
    }
  }
  retrackAfterRegrid();
  audit();
}

void ChaosRun::runAuditSweep() {
  const ReliableSessionDriver::AuditSweep sweep = driver_->runAudit(now_);
  ++result_.auditSweeps;
  lastAuditAt_ = now_;
  for (const NodeId node : sweep.attached) {
    if (session_.isLive(node)) detector_.track(node, now_);
  }
  retrackAfterRegrid();
  audit();
}

void ChaosRun::handleVerdicts(
    const std::vector<HeartbeatDetector::Verdict>& verdicts) {
  for (const auto& verdict : verdicts) {
    if (!result_.ok) return;
    if (driver_) {
      // RPC mode: repairs and migrations are individual reliable calls; an
      // exhausted repair defers the purge (the corpse stays flagged for the
      // anti-entropy audit) and exhausted attaches leave orphans parked.
      if (session_.isPendingCrash(verdict.suspect)) {
        const ReliableSessionDriver::RepairDrive drive =
            driver_->driveRepair(verdict.suspect, verdict.accuser, now_);
        if (drive.purged) {
          ++result_.repairs;
          result_.repairedOrphans += static_cast<std::int64_t>(
              drive.attached.size() + drive.parked.size());
          for (const NodeId orphan : drive.attached) {
            if (session_.isLive(orphan)) detector_.track(orphan, now_);
          }
          const auto index = static_cast<std::size_t>(verdict.suspect);
          if (index < crashTime_.size() && crashTime_[index] >= 0.0) {
            const double latency =
                now_ - crashTime_[index] + drive.result.elapsed;
            result_.recoveryLatency.add(latency);
            chaosMetrics().repairLatency.observe(latency);
          }
        }
        retrackAfterRegrid();
        audit();
      } else if (session_.isLive(verdict.suspect) &&
                 !session_.isParked(verdict.suspect)) {
        NodeId mover = kNoNode;
        if (verdict.accuser != kNoNode && session_.isLive(verdict.accuser) &&
            session_.parentOf(verdict.accuser) == verdict.suspect) {
          mover = verdict.accuser;
        } else if (verdict.suspect != session_.sourceId() &&
                   session_.parentOf(verdict.suspect) == verdict.accuser) {
          mover = verdict.suspect;
        }
        if (mover == kNoNode) continue;
        const ReliableSessionDriver::OpResult moved =
            driver_->driveMigrate(mover, now_);
        ++result_.wrongfulMigrations;
        if (moved.applied) detector_.track(mover, now_);
        retrackAfterRegrid();
        audit();
      }
      continue;
    }
    if (session_.isPendingCrash(verdict.suspect)) {
      // Confirmed crash: purge it and re-home the orphans backup-first.
      const auto span = session_.childrenOf(verdict.suspect);
      std::vector<NodeId> orphans;
      for (const NodeId child : span) {
        if (session_.isLive(child)) orphans.push_back(child);
      }
      const RepairReport report = session_.repairCrashed(verdict.suspect);
      ++result_.repairs;
      result_.repairedOrphans += report.orphansReplaced;
      result_.backupHits += report.backupHits;
      result_.backupFallbacks += report.fallbacks;
      if (report.orphansReplaced > 0) {
        result_.contactsPerOrphan.add(
            static_cast<double>(report.contacts) /
            static_cast<double>(report.orphansReplaced));
      }
      // Each re-homed orphan runs one attach handshake over the channel;
      // recovery ends when the last orphan is re-attached.
      double repairElapsed = 0.0;
      for (const NodeId orphan : orphans) {
        repairElapsed += channel_.send().elapsed;
        detector_.track(orphan, now_);
      }
      const auto index = static_cast<std::size_t>(verdict.suspect);
      if (index < crashTime_.size() && crashTime_[index] >= 0.0) {
        const double latency = now_ - crashTime_[index] + repairElapsed;
        result_.recoveryLatency.add(latency);
        chaosMetrics().repairLatency.observe(latency);
      }
      retrackAfterRegrid();
      audit();
    } else if (session_.isLive(verdict.suspect)) {
      // False positive: somebody acts on the wrong belief. If the accuser
      // hangs under the suspect it walks away; if the suspect hangs under
      // the accuser it gets evicted and must re-home.
      NodeId mover = kNoNode;
      if (verdict.accuser != kNoNode && session_.isLive(verdict.accuser) &&
          session_.parentOf(verdict.accuser) == verdict.suspect) {
        mover = verdict.accuser;
      } else if (verdict.suspect != session_.sourceId() &&
                 session_.parentOf(verdict.suspect) == verdict.accuser) {
        mover = verdict.suspect;
      }
      if (mover == kNoNode) continue;
      session_.migrate(mover);
      ++result_.wrongfulMigrations;
      detector_.track(mover, now_);
      retrackAfterRegrid();
      audit();
    }
    // else: already purged by an earlier verdict — stale, ignore.
  }
}

ChaosResult ChaosRun::run() {
  const obs::TraceSpan span("chaos_run", "fault");
  chaosMetrics().runs.add();
  events_ = generateFaultSchedule(options_.schedule);
  std::int64_t maxEntity = -1;
  for (const FaultEvent& event : events_)
    maxEntity = std::max(maxEntity, event.entity);
  entityNode_.assign(static_cast<std::size_t>(maxEntity + 1), kNoNode);
  entityGone_.assign(static_cast<std::size_t>(maxEntity + 1), 0);
  entityPosition_.resize(static_cast<std::size_t>(maxEntity + 1));
  entityFlash_.assign(static_cast<std::size_t>(maxEntity + 1), false);
  nodePosition_.assign(1, Point(options_.schedule.dim));  // the source

  detector_.track(session_.sourceId(), 0.0);
  const double hardEnd = options_.schedule.duration + options_.settleTime;
  std::size_t next = 0;

  while (result_.ok) {
    const double tEvent = next < events_.size() ? events_[next].time : kInf;
    const double tOp = ops_.empty() ? kInf : ops_.top().due;
    // The anti-entropy timer only runs while there is something to
    // reconcile: parked hosts, deferred purges, or unconfirmed ops.
    const double tAudit =
        (driver_ && (driver_->reconcilePending() || session_.parkedCount() > 0))
            ? lastAuditAt_ + options_.auditPeriod
            : kInf;
    const bool workLeft = tEvent < kInf || tOp < kInf || tAudit < kInf;
    if (!workLeft && session_.undetectedCrashes() == 0 && gauge_ == 0) break;
    const double t = std::min({tEvent, tOp, tAudit, detector_.nextProbeAt()});
    if (t >= hardEnd) {
      advanceTime(hardEnd);
      break;
    }
    advanceTime(t);
    handleVerdicts(detector_.advanceTo(now_));
    while (result_.ok && next < events_.size() &&
           events_[next].time <= now_) {
      handleEvent(events_[next++]);
    }
    while (result_.ok && !ops_.empty() && ops_.top().due <= now_) {
      const PendingOp op = ops_.top();
      ops_.pop();
      handleOp(op);
    }
    if (result_.ok && driver_ && tAudit <= now_) runAuditSweep();
  }

  // Stragglers the detector did not drain in time fall back to one global
  // sweep, then the run must satisfy the fully-repaired obligations. In RPC
  // mode the sweep also re-attaches any hosts still parked at the deadline.
  if (result_.ok &&
      (session_.undetectedCrashes() > 0 || session_.parkedCount() > 0)) {
    result_.sweepRepairs = session_.detectAndRepair();
  }
  if (result_.ok) {
    ++result_.invariantChecks;
    const InvariantReport report =
        checkSessionInvariants(session_, {.requireRepaired = true});
    if (!report.ok) {
      result_.ok = false;
      result_.failure = "final audit: " + report.message;
    }
  }
  if (result_.ok) {
    const SessionSnapshot snapshot = session_.snapshot();
    const ValidationResult valid = validate(
        snapshot.tree, {.maxOutDegree = options_.session.maxOutDegree});
    if (!valid.ok) {
      result_.ok = false;
      result_.failure = "final snapshot: " + valid.message;
    }
  }

  chaosMetrics().joins.add(result_.joins);
  chaosMetrics().leaves.add(result_.leaves);
  chaosMetrics().crashes.add(result_.crashes);
  chaosMetrics().repairs.add(result_.repairs);
  chaosMetrics().sweepRepairs.add(result_.sweepRepairs);

  result_.finalLive = session_.liveCount();
  result_.detector = detector_.stats();
  result_.channel = channel_.stats();
  result_.session = session_.stats();
  if (rpc_) {
    result_.rpc = rpc_->stats();
    result_.driver = driver_->stats();
  }
  return result_;
}

}  // namespace

ChaosResult runChaos(const ChaosOptions& options) {
  OMT_CHECK(options.settleTime >= 0.0, "settle time must be non-negative");
  OMT_CHECK(options.maxOperationRetries >= 0,
            "operation retries must be non-negative");
  OMT_CHECK(options.auditPeriod > 0.0, "audit period must be positive");
  return ChaosRun(options).run();
}

}  // namespace omt
