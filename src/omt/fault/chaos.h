// Chaos runner: drive an OverlaySession through a generated fault schedule
// with a lossy control channel and the heartbeat failure detector, auditing
// every structural invariant after every injected event.
//
// The runner is the glue the individual pieces are designed around:
//   * schedule events (joins, leaves, crashes, bursts) arrive in time
//     order; join/leave operations travel over the ControlChannel with
//     operation-level retries, and a leave whose retries are exhausted
//     degrades into a silent crash — the host simply goes dark;
//   * the HeartbeatDetector's probe timers interleave with the schedule;
//     its verdicts trigger repairCrashed() (confirmed crash) or migrate()
//     (wrongful declaration of a live host);
//   * between events the instantaneous count of live hosts cut off from
//     the source integrates into disconnected-node-seconds, and each
//     confirmed crash contributes a recovery latency (detection latency
//     plus the control-message time of re-homing the orphans).
// After the schedule a settle phase lets the detector drain outstanding
// crashes; stragglers fall back to one global sweep, and the run ends with
// the fully-repaired invariant audit plus a snapshot validation.
#pragma once

#include <cstdint>
#include <string>

#include "omt/fault/detector.h"
#include "omt/fault/injector.h"
#include "omt/protocol/overlay_session.h"
#include "omt/report/stats.h"
#include "omt/rpc/reliable_session.h"
#include "omt/rpc/rpc.h"

namespace omt {

struct ChaosOptions {
  FaultScheduleOptions schedule;
  ControlChannelOptions channel;
  DetectorOptions detector;
  SessionOptions session;
  /// Audit all structural invariants after every injected event (O(hosts)
  /// per event). When false only the final fully-repaired audit runs.
  bool checkInvariants = true;
  /// Extra time after the schedule for the detector to drain pending
  /// crashes before the straggler sweep.
  double settleTime = 30.0;
  /// Operation-level retries for a join/leave whose send() expired.
  /// (Legacy mode only; in RPC mode the RPC layer owns retries.)
  int maxOperationRetries = 8;

  /// Route join/leave/repair/migrate through the reliable RPC driver
  /// (at-most-once ops, circuit breakers, parked degraded states, periodic
  /// anti-entropy audits) instead of the legacy op-level send() retries.
  bool useRpc = false;
  /// RPC policy (its embedded channel is separate from `channel`, which
  /// carries heartbeat traffic). RPC mode only.
  RpcOptions rpc;
  /// Control-plane disruption (loss bursts, delay spells, partitions)
  /// applied to RPC traffic. RPC mode only.
  DisruptionOptions disruption;
  /// Whether to generate the disruption schedule at all. RPC mode only.
  bool injectDisruption = true;
  /// Anti-entropy sweep period while reconciliation work is pending.
  double auditPeriod = 1.0;
};

struct ChaosResult {
  // Injected load.
  std::int64_t joins = 0;
  std::int64_t flashCrowdJoins = 0;
  std::int64_t leaves = 0;
  std::int64_t crashes = 0;
  std::int64_t crashBursts = 0;
  std::int64_t operationRetries = 0;   ///< join/leave re-submissions
  std::int64_t droppedJoins = 0;       ///< joins lost after all retries
  std::int64_t silentLeaves = 0;       ///< leaves that degraded to crashes
  std::int64_t parkedJoins = 0;        ///< joins left parked (RPC mode)
  std::int64_t auditSweeps = 0;        ///< anti-entropy sweeps run (RPC mode)
  std::int64_t disruptionWindows = 0;  ///< injected windows (RPC mode)

  // Detection and repair.
  std::int64_t repairs = 0;            ///< repairCrashed() invocations
  std::int64_t repairedOrphans = 0;
  std::int64_t backupHits = 0;
  std::int64_t backupFallbacks = 0;
  std::int64_t wrongfulMigrations = 0; ///< migrations from false positives
  std::int64_t sweepRepairs = 0;       ///< stragglers caught by the final sweep
  RunningStats recoveryLatency;        ///< crash -> subtree re-homed (time)
  RunningStats contactsPerOrphan;      ///< repair contacts per orphan

  // Health over time.
  double disconnectedNodeSeconds = 0.0;
  std::int64_t invariantChecks = 0;
  std::int64_t peakLive = 0;
  std::int64_t finalLive = 0;

  DetectorStats detector;
  ChannelStats channel;
  SessionStats session;
  RpcStats rpc;        ///< RPC mode only (duplicatesApplied must stay 0)
  DriverStats driver;  ///< RPC mode only

  bool ok = true;
  std::string failure;  ///< first invariant/validation violation

  explicit operator bool() const { return ok; }
};

/// Run one seeded chaos scenario end to end. Deterministic in the options.
ChaosResult runChaos(const ChaosOptions& options);

}  // namespace omt
