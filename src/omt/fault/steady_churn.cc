#include "omt/fault/steady_churn.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "omt/common/error.h"
#include "omt/fault/invariants.h"
#include "omt/obs/metrics.h"
#include "omt/random/rng.h"
#include "omt/random/samplers.h"

namespace omt {
namespace {

struct SteadyMetrics {
  obs::Counter& events;
  obs::Counter& parkedJoins;
  obs::Gauge& eventsPerSecond;
  obs::Histogram& latency;
};

SteadyMetrics& steadyMetrics() {
  auto& registry = obs::MetricsRegistry::global();
  static SteadyMetrics metrics{
      registry.counter("omt_fault_steady_events_total"),
      registry.counter("omt_fault_steady_parked_joins_total"),
      registry.gauge("omt_fault_steady_events_per_second",
                     obs::Determinism::kNondeterministic),
      registry.histogram("omt_fault_steady_event_latency_seconds", {},
                         obs::Determinism::kNondeterministic)};
  return metrics;
}

double secondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

SteadyChurnResult runSteadyChurn(const SteadyChurnOptions& options) {
  OMT_CHECK(options.dim >= 2 && options.dim <= kMaxDim,
            "dimension out of range");
  OMT_CHECK(options.warmupHosts >= 1, "need at least one warmup host");
  OMT_CHECK(options.events >= 0, "negative event count");
  OMT_CHECK(options.departureFraction >= 0.0 &&
                options.departureFraction <= 1.0,
            "departure fraction outside [0, 1]");
  OMT_CHECK(options.crashFraction >= 0.0 && options.crashFraction <= 1.0,
            "crash fraction outside [0, 1]");
  OMT_CHECK(options.sweepEvery >= 1, "sweep cadence must be positive");
  OMT_CHECK(options.minLive >= 1, "population floor must be positive");

  auto& metrics = steadyMetrics();
  OverlaySession session(Point(options.dim), options.session);
  RadiusWatchdog watchdog(session, options.watchdog);
  watchdog.setBaselineRatio(options.baselineRatio);
  Rng rng(options.seed);
  SteadyChurnResult result;

  // Live non-source hosts, swap-removed on departure for O(1) picks.
  std::vector<NodeId> pool;
  pool.reserve(static_cast<std::size_t>(options.warmupHosts));
  for (std::int64_t i = 0; i < options.warmupHosts; ++i)
    pool.push_back(session.join(sampleUnitBall(rng, options.dim)));
  session.detectAndRepair();

  // Per-episode flag mirroring the watchdog's ladder, so the gate verdict
  // is computed from the observed action sequence rather than trusted.
  bool scopedSeen = false;
  std::vector<double> window;  // latencies since the previous sweep

  const auto audit = [&](bool requireRepaired) {
    if (!options.checkInvariants) return;
    const InvariantReport report = checkSessionInvariants(
        session, {.requireRepaired = requireRepaired});
    if (!report.ok && result.ok) {
      result.ok = false;
      result.firstViolation = report.message;
    }
  };

  const auto sweep = [&]() {
    ++result.sweeps;
    result.repairedSubtrees += session.detectAndRepair();
    const WatchdogReport wr = watchdog.check();
    if (wr.action == WatchdogAction::kScopedRebuild) {
      scopedSeen = true;
    } else if (wr.action == WatchdogAction::kFullRegrid) {
      if (!scopedSeen) result.escalationMonotone = false;
      scopedSeen = false;
    } else if (wr.mode == WatchdogMode::kNormal &&
               wr.action == WatchdogAction::kDeescalate) {
      scopedSeen = false;
    }

    SteadySweepSample sample;
    sample.eventsDone = result.events;
    sample.liveCount = session.liveCount();
    sample.radiusRatio = wr.ratio;
    sample.maxSkew = wr.maxSkew;
    sample.mode = wr.mode;
    sample.action = wr.action;
    if (wr.ratio > 0.0) {
      result.radiusRatio.add(wr.ratio);
      result.maxRatio = std::max(result.maxRatio, wr.ratio);
    }
    if (!window.empty()) {
      sample.p50Latency = percentile(window, 0.50);
      sample.p99Latency = percentile(window, 0.99);
      sample.maxLatency = *std::max_element(window.begin(), window.end());
      window.clear();
    }
    result.sweepLog.push_back(sample);
    // detectAndRepair() healed every pending crash and parked host, so the
    // sweep state must satisfy the full fully-repaired obligations.
    audit(/*requireRepaired=*/true);
  };

  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < options.events; ++i) {
    const bool departure =
        static_cast<std::int64_t>(pool.size()) > options.minLive &&
        rng.uniform() < options.departureFraction;
    const auto eventStart = std::chrono::steady_clock::now();
    if (departure) {
      const std::size_t pick =
          static_cast<std::size_t>(rng.uniformInt(pool.size()));
      const NodeId who = pool[pick];
      pool[pick] = pool.back();
      pool.pop_back();
      if (rng.uniform() < options.crashFraction) {
        session.crash(who);
        ++result.crashes;
      } else {
        session.leave(who);
        ++result.leaves;
      }
    } else {
      const Point position = sampleUnitBall(rng, options.dim);
      if (watchdog.parkNewJoins()) {
        // Watchdog step 2: admit-and-park; the next sweep batches the
        // placement together with every other deferred attach.
        pool.push_back(session.admit(position));
        ++result.parkedJoins;
        metrics.parkedJoins.add();
      } else {
        pool.push_back(session.join(position));
      }
      ++result.joins;
    }
    ++result.events;
    metrics.events.add();
    if (options.measureLatency) {
      const double seconds =
          secondsBetween(eventStart, std::chrono::steady_clock::now());
      result.latencySeconds.add(seconds);
      window.push_back(seconds);
      metrics.latency.observe(seconds);
    }
    if (result.events % options.sweepEvery == 0) sweep();
  }
  // Final quiesce sweep, even when the loop just swept: the gate's
  // zero-unrepaired-orphans verdict is measured on this state.
  sweep();
  result.elapsedSeconds = secondsBetween(t0, std::chrono::steady_clock::now());
  if (result.elapsedSeconds > 0.0 && result.events > 0) {
    result.eventsPerSecond =
        static_cast<double>(result.events) / result.elapsedSeconds;
    metrics.eventsPerSecond.set(result.eventsPerSecond);
  }

  result.unrepairedOrphans = countDisconnectedLiveHosts(session) +
                             session.undetectedCrashes() +
                             session.parkedCount();
  result.watchdog = watchdog.stats();
  result.session = session.stats();
  if (options.captureSnapshot) result.finalSnapshot = session.snapshot();
  return result;
}

}  // namespace omt
