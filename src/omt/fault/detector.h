// Heartbeat failure detector for the online overlay session.
//
// Replaces the free, instantaneous global sweep (detectAndRepair) with the
// mechanism a deployed overlay actually runs: every live host exchanges a
// periodic heartbeat with its parent over the lossy control channel. One
// exchange serves both directions:
//   * the child counts consecutive missed heartbeats toward its parent;
//     at the suspicion threshold it enters a confirmation round (direct
//     probes) and either reinstates the parent — a false positive caused
//     by message loss — or declares it dead;
//   * the parent holds a lease per child, refreshed whenever the child's
//     heartbeat gets through; a silent child past its lease triggers the
//     same confirm-or-declare round (this is what catches crashed leaves,
//     which nobody probes).
// Probe timers carry deterministic per-host jitter so the fleet does not
// probe in lockstep. Declarations are returned to the caller (the chaos
// runner), which reacts: repairCrashed() for a confirmed crash, migrate()
// when a live host was wrongly declared dead and someone must act on the
// belief. Detection latency — crash to declaration — is a measured
// quantity, not zero.
#pragma once

#include <cstdint>
#include <vector>

#include "omt/fault/injector.h"
#include "omt/protocol/overlay_session.h"
#include "omt/report/stats.h"

namespace omt {

struct DetectorOptions {
  double probePeriod = 0.5;    ///< mean heartbeat interval per host
  int suspicionThreshold = 3;  ///< consecutive misses before suspecting
  int confirmationAttempts = 3;  ///< direct probes before declaring death
  /// A child is suspected after this many probe periods of silence (the
  /// parent-side lease).
  double leaseFactor = 4.0;
};

struct DetectorStats {
  std::int64_t probes = 0;           ///< heartbeat + confirmation messages
  std::int64_t missedProbes = 0;     ///< heartbeats that did not get through
  std::int64_t suspicions = 0;       ///< threshold/lease breaches
  std::int64_t reinstatements = 0;   ///< suspicions cleared by confirmation
  std::int64_t confirmedCrashes = 0; ///< dead hosts correctly declared
  std::int64_t falsePositives = 0;   ///< live hosts wrongly declared dead
  RunningStats detectionLatency;     ///< crash time -> declaration time
};

class HeartbeatDetector {
 public:
  /// The detector probes `session` through `channel`; both must outlive it.
  HeartbeatDetector(OverlaySession& session, ControlChannel& channel,
                    const DetectorOptions& options, std::uint64_t seed);

  struct Verdict {
    NodeId suspect = kNoNode;  ///< host declared dead
    NodeId accuser = kNoNode;  ///< host that ran the failed confirmation
    bool suspectWasAlive = false;  ///< ground truth at declaration time
  };

  /// Start (or refresh) this host's probe timer and lease. Call after a
  /// join and after a repair re-homes the host, so a fresh parent does not
  /// instantly suspect it over a stale lease.
  void track(NodeId host, double now);

  /// Record ground truth for detection-latency accounting.
  void noteCrash(NodeId host, double now);

  /// Earliest pending probe time; +inf when no timers remain.
  double nextProbeAt() const;

  /// Run every probe due at or before `now`; returns the declarations made
  /// (each dead host is declared at most once; a live host may be wrongly
  /// declared by several of its relatives over time).
  std::vector<Verdict> advanceTo(double now);

  const DetectorStats& stats() const { return stats_; }

 private:
  struct HostState {
    double period = 0.0;        ///< jittered per-host probe period
    NodeId lastParent = kNoNode;
    int misses = 0;
    double lastHeard = 0.0;  ///< when this host's heartbeat last delivered
    bool tracked = false;
    std::uint64_t epoch = 0;  ///< invalidates stale heap entries
  };
  struct Timer {
    double due;
    NodeId host;
    std::uint64_t epoch;
    bool operator>(const Timer& other) const { return due > other.due; }
  };

  HostState& stateOf(NodeId host);
  /// Confirmation round against `suspect`; true iff an ack got through.
  bool confirm(NodeId suspect);

  OverlaySession& session_;
  ControlChannel& channel_;
  DetectorOptions options_;
  Rng jitterRng_;
  DetectorStats stats_;
  std::vector<HostState> states_;
  std::vector<Timer> heap_;  // min-heap by due time
  std::vector<double> crashTime_;
  std::vector<std::uint8_t> declaredDead_;
};

}  // namespace omt
