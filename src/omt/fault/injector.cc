#include "omt/fault/injector.h"

#include <algorithm>
#include <cmath>

#include "omt/common/error.h"
#include "omt/random/samplers.h"

namespace omt {
namespace {

/// Exponential variate with the given mean.
double exponential(Rng& rng, double mean) {
  return -mean * std::log(1.0 - rng.uniform());
}

/// A point clustered around `center`: center plus a uniform-ball offset of
/// radius `spread` (flash crowds are geographically local audiences).
Point clusteredPoint(Rng& rng, const Point& center, double spread, int dim) {
  const Point offset = sampleUnitBall(rng, dim);
  Point p(dim);
  for (int j = 0; j < dim; ++j) p[j] = center[j] + spread * offset[j];
  return p;
}

struct PendingJoin {
  double time;
  Point position;
  bool flashCrowd;
};

}  // namespace

std::vector<FaultEvent> generateFaultSchedule(
    const FaultScheduleOptions& options) {
  OMT_CHECK(options.duration > 0.0, "duration must be positive");
  OMT_CHECK(options.dim >= 2 && options.dim <= kMaxDim,
            "dimension out of range");
  OMT_CHECK(options.arrivalRate >= 0.0, "arrival rate must be non-negative");
  OMT_CHECK(options.meanLifetime > 0.0, "mean lifetime must be positive");
  OMT_CHECK(options.crashFraction >= 0.0 && options.crashFraction <= 1.0,
            "crash fraction outside [0, 1]");
  OMT_CHECK(options.crashBurstRate >= 0.0, "burst rate must be non-negative");
  OMT_CHECK(options.crashBurstRadius > 0.0 || options.crashBurstRate == 0.0,
            "burst radius must be positive");
  OMT_CHECK(
      options.crashBurstKillProb >= 0.0 && options.crashBurstKillProb <= 1.0,
      "burst kill probability outside [0, 1]");
  OMT_CHECK(options.flashCrowdRate >= 0.0, "wave rate must be non-negative");
  OMT_CHECK(options.flashCrowdSize > 0 || options.flashCrowdRate == 0.0,
            "wave size must be positive");
  OMT_CHECK(options.flashCrowdSpread >= 0.0, "wave spread must be >= 0");
  OMT_CHECK(options.flashCrowdWindow > 0.0 || options.flashCrowdRate == 0.0,
            "wave window must be positive");

  // Joins first (background + waves), so entity ids can follow join order.
  Rng joinRng(deriveSeed(options.seed, 0x6a6f696eULL));
  std::vector<PendingJoin> joins;
  if (options.arrivalRate > 0.0) {
    double now = 0.0;
    while (true) {
      now += exponential(joinRng, 1.0 / options.arrivalRate);
      if (now >= options.duration) break;
      joins.push_back({now, sampleUnitBall(joinRng, options.dim), false});
    }
  }
  if (options.flashCrowdRate > 0.0) {
    Rng waveRng(deriveSeed(options.seed, 0x77617665ULL));
    double now = 0.0;
    while (true) {
      now += exponential(waveRng, 1.0 / options.flashCrowdRate);
      if (now >= options.duration) break;
      const Point center = sampleUnitBall(waveRng, options.dim);
      for (int i = 0; i < options.flashCrowdSize; ++i) {
        const double t = now + waveRng.uniform() * options.flashCrowdWindow;
        if (t >= options.duration) continue;
        joins.push_back(
            {t, clusteredPoint(waveRng, center, options.flashCrowdSpread,
                               options.dim),
             true});
      }
    }
  }
  std::stable_sort(joins.begin(), joins.end(),
                   [](const PendingJoin& a, const PendingJoin& b) {
                     return a.time < b.time;
                   });

  // Entities in join order; departures drawn per entity.
  Rng lifeRng(deriveSeed(options.seed, 0x6c696665ULL));
  std::vector<FaultEvent> events;
  events.reserve(joins.size() * 2);
  for (std::size_t entity = 0; entity < joins.size(); ++entity) {
    FaultEvent join;
    join.time = joins[entity].time;
    join.kind = FaultEventKind::kJoin;
    join.entity = static_cast<std::int64_t>(entity);
    join.position = joins[entity].position;
    join.flashCrowd = joins[entity].flashCrowd;
    events.push_back(join);

    const double leaveTime =
        join.time + exponential(lifeRng, options.meanLifetime);
    if (leaveTime < options.duration) {
      FaultEvent leave;
      leave.time = leaveTime;
      leave.kind = lifeRng.uniform() < options.crashFraction
                       ? FaultEventKind::kCrash
                       : FaultEventKind::kLeave;
      leave.entity = static_cast<std::int64_t>(entity);
      events.push_back(leave);
    }
  }

  // Regional outages.
  if (options.crashBurstRate > 0.0) {
    Rng burstRng(deriveSeed(options.seed, 0x6275727374ULL));
    double now = 0.0;
    while (true) {
      now += exponential(burstRng, 1.0 / options.crashBurstRate);
      if (now >= options.duration) break;
      FaultEvent burst;
      burst.time = now;
      burst.kind = FaultEventKind::kCrashBurst;
      burst.position = sampleUnitBall(burstRng, options.dim);
      burst.radius = options.crashBurstRadius;
      burst.killProbability = options.crashBurstKillProb;
      events.push_back(burst);
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  return events;
}

ControlChannel::ControlChannel(const ControlChannelOptions& options)
    : options_(options), rng_(deriveSeed(options.seed, 0x6368616eULL)) {
  OMT_CHECK(options.lossRate >= 0.0 && options.lossRate <= 1.0,
            "loss rate outside [0, 1]");
  OMT_CHECK(options.latency >= 0.0, "latency must be non-negative");
  OMT_CHECK(options.baseTimeout > 0.0, "base timeout must be positive");
  OMT_CHECK(options.backoffFactor >= 1.0, "backoff factor must be >= 1");
  OMT_CHECK(options.maxAttempts >= 1, "need at least one attempt");
}

bool ControlChannel::roll() {
  ++stats_.messages;
  ++stats_.transmissions;
  if (rng_.uniform() < options_.lossRate) {
    ++stats_.losses;
    return false;
  }
  return true;
}

ControlChannel::Outcome ControlChannel::send() {
  ++stats_.messages;
  Outcome outcome;
  double timeout = options_.baseTimeout;
  for (int attempt = 1; attempt <= options_.maxAttempts; ++attempt) {
    ++stats_.transmissions;
    outcome.attempts = attempt;
    if (rng_.uniform() >= options_.lossRate) {
      outcome.delivered = true;
      outcome.elapsed += options_.latency;
      return outcome;
    }
    ++stats_.losses;
    if (attempt < options_.maxAttempts) {
      outcome.elapsed += timeout;  // wait out the retransmission timer
      timeout *= options_.backoffFactor;
    }
  }
  ++stats_.expiries;
  outcome.elapsed += timeout;  // the final timer expires with no answer
  return outcome;
}

}  // namespace omt
