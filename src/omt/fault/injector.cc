#include "omt/fault/injector.h"

#include <algorithm>
#include <cmath>

#include "omt/common/error.h"
#include "omt/random/samplers.h"

namespace omt {
namespace {

/// Exponential variate with the given mean.
double exponential(Rng& rng, double mean) {
  return -mean * std::log(1.0 - rng.uniform());
}

/// A point clustered around `center`: center plus a uniform-ball offset of
/// radius `spread` (flash crowds are geographically local audiences).
Point clusteredPoint(Rng& rng, const Point& center, double spread, int dim) {
  const Point offset = sampleUnitBall(rng, dim);
  Point p(dim);
  for (int j = 0; j < dim; ++j) p[j] = center[j] + spread * offset[j];
  return p;
}

struct PendingJoin {
  double time;
  Point position;
  bool flashCrowd;
};

}  // namespace

std::vector<FaultEvent> generateFaultSchedule(
    const FaultScheduleOptions& options) {
  OMT_CHECK(options.duration > 0.0, "duration must be positive");
  OMT_CHECK(options.dim >= 2 && options.dim <= kMaxDim,
            "dimension out of range");
  OMT_CHECK(options.arrivalRate >= 0.0, "arrival rate must be non-negative");
  OMT_CHECK(options.meanLifetime > 0.0, "mean lifetime must be positive");
  OMT_CHECK(options.crashFraction >= 0.0 && options.crashFraction <= 1.0,
            "crash fraction outside [0, 1]");
  OMT_CHECK(options.crashBurstRate >= 0.0, "burst rate must be non-negative");
  OMT_CHECK(options.crashBurstRadius > 0.0 || options.crashBurstRate == 0.0,
            "burst radius must be positive");
  OMT_CHECK(
      options.crashBurstKillProb >= 0.0 && options.crashBurstKillProb <= 1.0,
      "burst kill probability outside [0, 1]");
  OMT_CHECK(options.flashCrowdRate >= 0.0, "wave rate must be non-negative");
  OMT_CHECK(options.flashCrowdSize > 0 || options.flashCrowdRate == 0.0,
            "wave size must be positive");
  OMT_CHECK(options.flashCrowdSpread >= 0.0, "wave spread must be >= 0");
  OMT_CHECK(options.flashCrowdWindow > 0.0 || options.flashCrowdRate == 0.0,
            "wave window must be positive");

  // Joins first (background + waves), so entity ids can follow join order.
  Rng joinRng(deriveSeed(options.seed, 0x6a6f696eULL));
  std::vector<PendingJoin> joins;
  if (options.arrivalRate > 0.0) {
    double now = 0.0;
    while (true) {
      now += exponential(joinRng, 1.0 / options.arrivalRate);
      if (now >= options.duration) break;
      joins.push_back({now, sampleUnitBall(joinRng, options.dim), false});
    }
  }
  if (options.flashCrowdRate > 0.0) {
    Rng waveRng(deriveSeed(options.seed, 0x77617665ULL));
    double now = 0.0;
    while (true) {
      now += exponential(waveRng, 1.0 / options.flashCrowdRate);
      if (now >= options.duration) break;
      const Point center = sampleUnitBall(waveRng, options.dim);
      for (int i = 0; i < options.flashCrowdSize; ++i) {
        const double t = now + waveRng.uniform() * options.flashCrowdWindow;
        if (t >= options.duration) continue;
        joins.push_back(
            {t, clusteredPoint(waveRng, center, options.flashCrowdSpread,
                               options.dim),
             true});
      }
    }
  }
  std::stable_sort(joins.begin(), joins.end(),
                   [](const PendingJoin& a, const PendingJoin& b) {
                     return a.time < b.time;
                   });

  // Entities in join order; departures drawn per entity.
  Rng lifeRng(deriveSeed(options.seed, 0x6c696665ULL));
  std::vector<FaultEvent> events;
  events.reserve(joins.size() * 2);
  for (std::size_t entity = 0; entity < joins.size(); ++entity) {
    FaultEvent join;
    join.time = joins[entity].time;
    join.kind = FaultEventKind::kJoin;
    join.entity = static_cast<std::int64_t>(entity);
    join.position = joins[entity].position;
    join.flashCrowd = joins[entity].flashCrowd;
    events.push_back(join);

    const double leaveTime =
        join.time + exponential(lifeRng, options.meanLifetime);
    if (leaveTime < options.duration) {
      FaultEvent leave;
      leave.time = leaveTime;
      leave.kind = lifeRng.uniform() < options.crashFraction
                       ? FaultEventKind::kCrash
                       : FaultEventKind::kLeave;
      leave.entity = static_cast<std::int64_t>(entity);
      events.push_back(leave);
    }
  }

  // Regional outages.
  if (options.crashBurstRate > 0.0) {
    Rng burstRng(deriveSeed(options.seed, 0x6275727374ULL));
    double now = 0.0;
    while (true) {
      now += exponential(burstRng, 1.0 / options.crashBurstRate);
      if (now >= options.duration) break;
      FaultEvent burst;
      burst.time = now;
      burst.kind = FaultEventKind::kCrashBurst;
      burst.position = sampleUnitBall(burstRng, options.dim);
      burst.radius = options.crashBurstRadius;
      burst.killProbability = options.crashBurstKillProb;
      events.push_back(burst);
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  return events;
}

std::vector<DisruptionWindow> generateDisruption(
    const DisruptionOptions& options) {
  OMT_CHECK(options.duration > 0.0, "duration must be positive");
  OMT_CHECK(options.dim >= 2 && options.dim <= kMaxDim,
            "dimension out of range");
  OMT_CHECK(options.partitionRate >= 0.0,
            "partition rate must be non-negative");
  OMT_CHECK(options.partitionRadius > 0.0 || options.partitionRate == 0.0,
            "partition radius must be positive");
  OMT_CHECK(options.partitionMeanLength > 0.0 || options.partitionRate == 0.0,
            "partition length must be positive");
  OMT_CHECK(options.lossBurstRate >= 0.0,
            "loss-burst rate must be non-negative");
  OMT_CHECK(options.lossBurstBoost >= 0.0 && options.lossBurstBoost <= 1.0,
            "loss-burst boost outside [0, 1]");
  OMT_CHECK(options.lossBurstMeanLength > 0.0 || options.lossBurstRate == 0.0,
            "loss-burst length must be positive");
  OMT_CHECK(options.delaySpellRate >= 0.0,
            "delay-spell rate must be non-negative");
  OMT_CHECK(options.delaySpellExtra >= 0.0,
            "delay-spell extra must be non-negative");
  OMT_CHECK(options.delaySpellMeanLength > 0.0 ||
                options.delaySpellRate == 0.0,
            "delay-spell length must be positive");

  std::vector<DisruptionWindow> windows;
  if (options.partitionRate > 0.0) {
    Rng rng(deriveSeed(options.seed, 0x70617274ULL));
    double now = 0.0;
    while (true) {
      now += exponential(rng, 1.0 / options.partitionRate);
      if (now >= options.duration) break;
      DisruptionWindow w;
      w.start = now;
      w.end = std::min(options.duration,
                       now + exponential(rng, options.partitionMeanLength));
      w.partition = true;
      w.center = sampleUnitBall(rng, options.dim);
      w.radius = options.partitionRadius;
      windows.push_back(w);
    }
  }
  if (options.lossBurstRate > 0.0) {
    Rng rng(deriveSeed(options.seed, 0x6c6f7373ULL));
    double now = 0.0;
    while (true) {
      now += exponential(rng, 1.0 / options.lossBurstRate);
      if (now >= options.duration) break;
      DisruptionWindow w;
      w.start = now;
      w.end = std::min(options.duration,
                       now + exponential(rng, options.lossBurstMeanLength));
      w.lossBoost = options.lossBurstBoost;
      windows.push_back(w);
    }
  }
  if (options.delaySpellRate > 0.0) {
    Rng rng(deriveSeed(options.seed, 0x64656c61ULL));
    double now = 0.0;
    while (true) {
      now += exponential(rng, 1.0 / options.delaySpellRate);
      if (now >= options.duration) break;
      DisruptionWindow w;
      w.start = now;
      w.end = std::min(options.duration,
                       now + exponential(rng, options.delaySpellMeanLength));
      w.extraDelay = options.delaySpellExtra;
      windows.push_back(w);
    }
  }
  std::stable_sort(windows.begin(), windows.end(),
                   [](const DisruptionWindow& a, const DisruptionWindow& b) {
                     return a.start < b.start;
                   });
  return windows;
}

}  // namespace omt
