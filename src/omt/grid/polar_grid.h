// The polar grid of Algorithm Polar_Grid (Section III-A, generalised to any
// dimension per Section IV-B).
//
// A grid with k rings over outer radius R in dimension d consists of:
//  * ring 0 — the central ball of radius r_0, a single cell holding the
//    source;
//  * rings i = 1..k — the shells between boundary radii r_{i-1} and r_i,
//    where r_i = R * 2^{-(k-i)/d} (each shell has twice the volume of the
//    previous one; for d = 2 this is the paper's r_i = 1/sqrt(2)^{k-i});
//  * ring i is divided into 2^i equal-volume cells by i binary splits of the
//    angular cube (axis cycling), so every cell of every ring has the same
//    volume and each ring-i cell is aligned with exactly two ring-(i+1)
//    cells — the paper's grid properties 1) and 2).
//
// Cells are addressed by *heap ids*: ring 0's cell is id 1 and ring-i cell c
// is id 2^i + c, so the two aligned children of id h are 2h and 2h+1 and the
// parent is h/2 — exactly the core-network topology of Section III-B.
#pragma once

#include <cstdint>

#include "omt/common/types.h"
#include "omt/geometry/angular_cube.h"
#include "omt/geometry/ring_segment.h"

namespace omt {

class PolarGrid {
 public:
  /// Upper limit on k accepted by this implementation (heap ids use
  /// 2^(k+1) values; 40 rings is far beyond any realistic point count).
  static constexpr int kMaxRings = 40;

  PolarGrid(int dim, int rings, double outerRadius);

  int dim() const { return dim_; }
  int rings() const { return rings_; }
  double outerRadius() const { return outerRadius_; }

  /// Boundary radius r_i for i in [0, rings]; ringRadius(rings) is the
  /// outer radius R itself.
  double ringRadius(int i) const;

  /// Ring index of a radius: 0 if radius <= r_0, rings if radius is in the
  /// outermost shell; radius must be <= R (within rounding).
  int ringOf(double radius) const;

  std::uint64_t cellsInRing(int ring) const {
    return ring == 0 ? 1 : std::uint64_t{1} << ring;
  }

  /// Which ring-`ring` cell the direction of `polar` falls into (the first
  /// `ring` binary digits of its angular-cube coordinates, axis-cycled).
  /// Valid for any ring in [0, rings]; ring 0 always returns 0.
  std::uint64_t cellOf(const PolarCoords& polar, int ring) const;

  /// (ring, cell) -> heap id; ring 0 maps to id 1.
  std::uint64_t heapId(int ring, std::uint64_t cell) const;

  /// heap id -> ring (floor(log2(id))).
  int ringOfHeapId(std::uint64_t id) const;

  /// heap id -> cell within its ring.
  std::uint64_t cellOfHeapId(std::uint64_t id) const;

  /// One past the largest valid heap id (= 2^(rings+1)).
  std::uint64_t heapIdCount() const { return std::uint64_t{1} << (rings_ + 1); }

  /// The region of a cell as a RingSegment (ring 0 is the central ball).
  RingSegment cellSegment(int ring, std::uint64_t cell) const;

  /// The paper's Delta_i (2D): arc length of one ring-i cell on its outer
  /// boundary circle, 2*pi*r_i / 2^i. Defined for every dimension as the
  /// azimuthal arc of a cell at the outer boundary radius.
  double arcLength(int ring) const;

 private:
  int dim_;
  int rings_;
  double outerRadius_;
};

}  // namespace omt
