// The polar grid of Algorithm Polar_Grid (Section III-A, generalised to any
// dimension per Section IV-B).
//
// A grid with k rings over outer radius R in dimension d consists of:
//  * ring 0 — the central ball of radius r_0, a single cell holding the
//    source;
//  * rings i = 1..k — the shells between boundary radii r_{i-1} and r_i,
//    where r_i = R * 2^{-(k-i)/d} (each shell has twice the volume of the
//    previous one; for d = 2 this is the paper's r_i = 1/sqrt(2)^{k-i});
//  * ring i is divided into 2^i equal-volume cells by i binary splits of the
//    angular cube (axis cycling), so every cell of every ring has the same
//    volume and each ring-i cell is aligned with exactly two ring-(i+1)
//    cells — the paper's grid properties 1) and 2).
//
// Cells are addressed by *heap ids*: ring 0's cell is id 1 and ring-i cell c
// is id 2^i + c, so the two aligned children of id h are 2h and 2h+1 and the
// parent is h/2 — exactly the core-network topology of Section III-B.
#pragma once

#include <cstdint>

#include "omt/common/types.h"
#include "omt/geometry/angular_cube.h"
#include "omt/geometry/ring_segment.h"

namespace omt {

class PolarGrid {
 public:
  /// Upper limit on k accepted by this implementation (heap ids use
  /// 2^(k+1) values; 40 rings is far beyond any realistic point count).
  static constexpr int kMaxRings = 40;

  PolarGrid(int dim, int rings, double outerRadius);

  int dim() const { return dim_; }
  int rings() const { return rings_; }
  double outerRadius() const { return outerRadius_; }

  /// Boundary radius r_i for i in [0, rings]; ringRadius(rings) is the
  /// outer radius R itself.
  double ringRadius(int i) const;

  /// Ring index of a radius: 0 if radius <= r_0, rings if radius is in the
  /// outermost shell; radius must be <= R (within rounding).
  int ringOf(double radius) const;

  std::uint64_t cellsInRing(int ring) const {
    return ring == 0 ? 1 : std::uint64_t{1} << ring;
  }

  /// Which ring-`ring` cell the direction of `polar` falls into (the first
  /// `ring` binary digits of its angular-cube coordinates, axis-cycled).
  /// Valid for any ring in [0, rings]; ring 0 always returns 0.
  std::uint64_t cellOf(const PolarCoords& polar, int ring) const;

  /// (ring, cell) -> heap id; ring 0 maps to id 1.
  std::uint64_t heapId(int ring, std::uint64_t cell) const;

  /// heap id -> ring (floor(log2(id))).
  int ringOfHeapId(std::uint64_t id) const;

  /// heap id -> cell within its ring.
  std::uint64_t cellOfHeapId(std::uint64_t id) const;

  /// One past the largest valid heap id (= 2^(rings+1)).
  std::uint64_t heapIdCount() const { return std::uint64_t{1} << (rings_ + 1); }

  /// The region of a cell as a RingSegment (ring 0 is the central ball).
  RingSegment cellSegment(int ring, std::uint64_t cell) const;

  /// The paper's Delta_i (2D): arc length of one ring-i cell on its outer
  /// boundary circle, 2*pi*r_i / 2^i. Defined for every dimension as the
  /// azimuthal arc of a cell at the outer boundary radius.
  double arcLength(int ring) const;

  // --- Incremental maintenance algebra (ROADMAP item 3) -------------------
  //
  // Because r_i = R * 2^{-(k-i)/d}, the three structural moves below reuse
  // the existing boundary radii instead of re-deriving them, which is what
  // makes cell-local host relabelling sound:
  //  * split  (k -> k+1, R fixed): every old boundary r_i equals the new
  //    boundary r'_{i+1} *bitwise* (identical exp2 expression), so ring-i
  //    hosts land in ring i+1 and each cell gains one angular bit;
  //  * merge  (k -> k-1, R fixed): the inverse; sibling cells 2h and 2h+1
  //    coalesce into h, rings 0..1 collapse into the new central ball;
  //  * extend (k -> k+j, R -> R * 2^{j/d}): every existing boundary keeps
  //    its value (up to fp ulps) and every existing heap id is unchanged —
  //    j fresh outer shells are appended, no host moves at all.

  /// The k+1-ring grid over the same outer radius.
  PolarGrid afterSplit() const;

  /// The k-1-ring grid over the same outer radius; requires rings() >= 2.
  PolarGrid afterMerge() const;

  /// The k+extraRings grid whose inner boundaries coincide with this grid's
  /// (outer radius grows by 2^{extraRings/d}); extraRings >= 1.
  PolarGrid afterExtend(int extraRings) const;

  /// Heap id of the cell a host moves to under afterSplit(). `polar` and
  /// `radius` describe the host; `id` is its current cell. Ring-0 hosts
  /// split radially into {1, 2, 3}; all others map to 2*id or 2*id + 1.
  std::uint64_t splitTargetOf(std::uint64_t id, const PolarCoords& polar,
                              double radius) const;

  /// Heap id of the cell a host moves to under afterMerge(): 1 for ids
  /// 1..3, id/2 otherwise.
  std::uint64_t mergeTargetOf(std::uint64_t id) const;

 private:
  int dim_;
  int rings_;
  double outerRadius_;
};

}  // namespace omt
