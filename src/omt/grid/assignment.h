// Point-to-cell assignment and maximal ring-count selection (grid
// property 3 of Section III-A).
//
// Given the host points and the source, this chooses the largest k such
// that every cell of rings 1..k-1 contains at least one point (cells of the
// outermost ring k may be empty), then groups point indices by cell. The
// selection exploits the grid's self-similarity: a point's (ring, cell)
// under k rings is (ring - 1, cell >> 1) under k - 1 rings (clamped at ring
// 0), so one O(n) classification pass at the largest candidate k serves all
// candidates, and the per-candidate occupancy check is an OR-fold over an
// occupancy bitmap.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "omt/common/types.h"
#include "omt/geometry/point.h"
#include "omt/grid/polar_grid.h"

namespace omt {

struct GridAssignment {
  PolarGrid grid;  ///< chosen grid (k maximal, outer radius = max distance)

  /// Per-point ring index in [0, grid.rings()].
  std::vector<std::int32_t> ringOfPoint;
  /// Per-point cell index within its ring.
  std::vector<std::uint64_t> cellOfPoint;

  /// CSR of point indices grouped by cell heap id:
  /// members of heap id h are cellMembers[cellStart[h] .. cellStart[h+1]).
  std::vector<std::int64_t> cellStart;
  std::vector<NodeId> cellMembers;

  std::span<const NodeId> membersOf(std::uint64_t heapId) const {
    const auto begin = cellStart[static_cast<std::size_t>(heapId)];
    const auto end = cellStart[static_cast<std::size_t>(heapId) + 1];
    return {cellMembers.data() + begin, static_cast<std::size_t>(end - begin)};
  }

  /// Number of cells (over all rings, including the outermost) that contain
  /// at least one point.
  std::int64_t occupiedCells() const;
};

struct AssignmentOptions {
  /// Hard cap on k; the default never binds in practice.
  int maxRings = PolarGrid::kMaxRings;
  /// Optional fixed outer radius; by default the max source-to-point
  /// distance is used. Useful when the region's radius is known a priori.
  std::optional<double> outerRadius = std::nullopt;
};

/// Assign `points` to the maximal-k grid centered at points[source].
/// Requires n >= 1, all points of equal dimension >= 2, and every point
/// within the outer radius. Degenerate sets (all points at the source)
/// yield a k = 1 grid with everything in ring 0.
GridAssignment assignToGrid(std::span<const Point> points, NodeId source,
                            const AssignmentOptions& options = {});

}  // namespace omt
