// Point-to-cell assignment and maximal ring-count selection (grid
// property 3 of Section III-A).
//
// Given the host points and the source, this chooses the largest k such
// that every cell of rings 1..k-1 contains at least one point (cells of the
// outermost ring k may be empty), then groups point indices by cell. The
// selection exploits the grid's self-similarity: a point's (ring, cell)
// under k rings is (ring - 1, cell >> 1) under k - 1 rings (clamped at ring
// 0), so one O(n) classification pass at the largest candidate k serves all
// candidates, and every candidate's occupancy check comes from one
// bottom-up OR-fold over the kMax occupancy bitmap (O(heapIds) total).
//
// All O(n) passes (polar conversion, classification, the counting-sort CSR
// build) run chunked on the shared thread pool; the result is identical for
// every worker count (see docs/performance.md for the determinism
// contract).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "omt/common/types.h"
#include "omt/geometry/angular_cube.h"
#include "omt/geometry/point.h"
#include "omt/grid/polar_grid.h"

namespace omt {

struct GridAssignment {
  PolarGrid grid;  ///< chosen grid (k maximal, outer radius = max distance)

  /// Per-point ring index in [0, grid.rings()].
  std::vector<std::int32_t> ringOfPoint;
  /// Per-point cell index within its ring.
  std::vector<std::uint64_t> cellOfPoint;

  /// Per-point polar coordinates about the source — the expensive part of
  /// classification (incomplete sin^k integral inversions in 3D), exposed
  /// so downstream stages (tree wiring, bisection) never convert twice.
  /// polarOfPoint[i].radius equals distance(points[i], origin) exactly.
  std::vector<PolarCoords> polarOfPoint;

  /// CSR of point indices grouped by cell heap id:
  /// members of heap id h are cellMembers[cellStart[h] .. cellStart[h+1]),
  /// in increasing point index.
  std::vector<std::int64_t> cellStart;
  std::vector<NodeId> cellMembers;

  /// Number of non-empty cells, cached by assignToGrid (-1 = not cached;
  /// occupiedCells() then derives it from the CSR bounds).
  std::int64_t occupiedCellCount = -1;

  std::span<const NodeId> membersOf(std::uint64_t heapId) const {
    const auto begin = cellStart[static_cast<std::size_t>(heapId)];
    const auto end = cellStart[static_cast<std::size_t>(heapId) + 1];
    return {cellMembers.data() + begin, static_cast<std::size_t>(end - begin)};
  }

  /// Number of cells (over all rings, including the outermost) that contain
  /// at least one point. O(1) when cached by assignToGrid; otherwise
  /// derived from the CSR bounds using grid property 3 (rings 1..k-1 are
  /// fully occupied by construction), which leaves only ring 0 and the
  /// outermost ring to inspect.
  std::int64_t occupiedCells() const;
};

struct AssignmentOptions {
  /// Hard cap on k; the default never binds in practice.
  int maxRings = PolarGrid::kMaxRings;
  /// Optional fixed outer radius; by default the max source-to-point
  /// distance is used. Useful when the region's radius is known a priori.
  std::optional<double> outerRadius = std::nullopt;
  /// Worker threads for the O(n) passes; 0 = auto (OMT_THREADS environment
  /// variable, else half the hardware threads). The result is byte-for-byte
  /// independent of this value.
  int workers = 0;
};

/// Assign `points` to the maximal-k grid centered at points[source].
/// Requires n >= 1, all points of equal dimension >= 2, and every point
/// within the outer radius. Degenerate sets (all points at the source)
/// yield a k = 1 grid with everything in ring 0.
GridAssignment assignToGrid(std::span<const Point> points, NodeId source,
                            const AssignmentOptions& options = {});

}  // namespace omt
