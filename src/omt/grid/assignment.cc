#include "omt/grid/assignment.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "omt/common/error.h"
#include "omt/kernels/kernels.h"
#include "omt/kernels/polar_batch.h"
#include "omt/obs/metrics.h"
#include "omt/obs/trace.h"
#include "omt/parallel/parallel_for.h"
#include "omt/parallel/scratch_arena.h"

namespace omt {
namespace {

/// Deterministic per-build facts: one add per logical item (point, build),
/// one set per chosen grid — identical for every worker count.
struct GridMetrics {
  obs::Counter& assignments;
  obs::Counter& points;
  obs::Gauge& rings;
  obs::Gauge& occupiedCells;
};

GridMetrics& gridMetrics() {
  auto& registry = obs::MetricsRegistry::global();
  static GridMetrics metrics{
      registry.counter("omt_grid_assignments_total"),
      registry.counter("omt_grid_points_total"),
      registry.gauge("omt_grid_rings"),
      registry.gauge("omt_grid_occupied_cells")};
  return metrics;
}

/// Largest candidate ring count for n points: property 3 needs all 2^(k-1)
/// cells of ring k-1 occupied, so 2^(k-1) <= n - 1 is necessary.
int candidateRings(std::int64_t n, int cap) {
  int k = 1;
  while (k < cap && (std::int64_t{1} << k) <= n) ++k;
  return k;
}

/// Largest k (= kMax - delta) whose rings 1..k-1 are fully occupied, from
/// the occupancy bitmap at kMax. Under k = kMax - delta, ring j (j >= 1)
/// collects the points whose kMax-ring is j + delta, in cell cellMax >>
/// delta; so ring j is fully occupied iff every ring-j cell's depth-delta
/// descendant block in ring j + delta contains an occupied cell. Those
/// block ORs are exactly a bottom-up heap fold: S_0 = occ, S_{delta+1}(h) =
/// S_delta(2h) | S_delta(2h+1), and ring j is full under delta iff
/// S_delta is 1 across ring j. One fold level costs half the previous one,
/// so the whole selection is O(heapIds) — the old per-candidate block scan
/// was O(2^kMax * kMax) when every candidate failed near the end.
int selectRings(std::span<std::uint8_t> fold, int kMax) {
  // ringFull[delta * kMax + (j - 1)] for j in 1..kMax - delta - 1.
  std::vector<std::uint8_t> ringFull(
      static_cast<std::size_t>(kMax) * static_cast<std::size_t>(kMax), 0);
  for (int delta = 0; delta <= kMax - 1; ++delta) {
    for (int j = 1; j <= kMax - delta - 1; ++j) {
      std::uint8_t all = 1;
      const std::uint64_t ringBegin = std::uint64_t{1} << j;
      for (std::uint64_t h = ringBegin; h < 2 * ringBegin; ++h) all &= fold[h];
      ringFull[static_cast<std::size_t>(delta) * static_cast<std::size_t>(kMax) +
               static_cast<std::size_t>(j - 1)] = all;
    }
    // Fold one level: S_{delta+1} over rings 0..kMax-delta-1. Ascending h
    // reads children 2h, 2h+1 before they are overwritten (2h > h).
    const std::uint64_t next = std::uint64_t{1} << (kMax - delta);
    for (std::uint64_t h = 1; h < next; ++h) fold[h] = fold[2 * h] | fold[2 * h + 1];
  }
  for (int delta = 0; delta <= kMax - 1; ++delta) {
    bool valid = true;
    for (int j = 1; j <= kMax - delta - 1 && valid; ++j) {
      valid = ringFull[static_cast<std::size_t>(delta) *
                           static_cast<std::size_t>(kMax) +
                       static_cast<std::size_t>(j - 1)] != 0;
    }
    if (valid) return kMax - delta;
  }
  return 1;
}

}  // namespace

std::int64_t GridAssignment::occupiedCells() const {
  if (occupiedCellCount >= 0) return occupiedCellCount;
  // Property 3 of the chosen grid: rings 1..k-1 are fully occupied, so only
  // ring 0 and the outermost ring need their CSR bounds inspected.
  const int k = grid.rings();
  std::int64_t occupied = cellStart[2] > cellStart[1] ? 1 : 0;  // ring 0
  occupied += (std::int64_t{1} << k) - 2;                       // rings 1..k-1
  const std::uint64_t outerBegin = std::uint64_t{1} << k;
  for (std::uint64_t h = outerBegin; h < 2 * outerBegin; ++h) {
    if (cellStart[static_cast<std::size_t>(h) + 1] >
        cellStart[static_cast<std::size_t>(h)])
      ++occupied;
  }
  return occupied;
}

GridAssignment assignToGrid(std::span<const Point> points, NodeId source,
                            const AssignmentOptions& options) {
  const auto n = static_cast<std::int64_t>(points.size());
  OMT_CHECK(n >= 1, "empty point set");
  OMT_CHECK(source >= 0 && source < n, "source index out of range");
  const int d = points.front().dim();
  OMT_CHECK(d >= 2 && d <= kMaxDim, "dimension out of range");
  OMT_CHECK(options.maxRings >= 1 && options.maxRings <= PolarGrid::kMaxRings,
            "ring cap out of range");
  const int workers = resolveWorkers(options.workers);
  const auto slots = static_cast<std::size_t>(workers);

  const obs::TraceSpan span("assign_to_grid", "grid");
  gridMetrics().assignments.add();
  gridMetrics().points.add(n);

  const Point& origin = points[static_cast<std::size_t>(source)];
  const bool useKernels = kernels::enabled();

  // Build-lifetime scratch: SoA lanes and classification intermediates come
  // from the caller thread's arena, so repeated builds stop reallocating
  // them (workers only write into disjoint slices of these spans).
  ScratchArena& arena = workerArena();
  ScratchArena::Scope arenaScope(arena);
  const auto un = static_cast<std::size_t>(n);
  kernels::PolarLanes lanes;
  if (useKernels) {
    lanes.radius = arena.alloc<double>(un);
    for (int j = 0; j < d - 1; ++j)
      lanes.cube[static_cast<std::size_t>(j)] = arena.alloc<double>(un);
  }

  // Pass 1 (parallel): polar coordinates; outer radius R by per-slot max
  // reduction (max is order-independent, so the result does not depend on
  // the chunking). The batched kernel writes the SoA lanes for pass 2 and
  // the AoS polarOfPoint output in one sweep; the scalar fallback is the
  // legacy per-point path (OMT_KERNEL_TABLES=0).
  std::vector<PolarCoords> polar(points.size());
  std::vector<double> slotMax(slots, 0.0);
  obs::TraceSpan polarSpan("polar_pass", "grid", span.id());
  if (useKernels) {
    parallelForChunks(
        0, n, workers, [&](std::int64_t lo, std::int64_t hi, int slot) {
          const auto ulo = static_cast<std::size_t>(lo);
          const auto len = static_cast<std::size_t>(hi - lo);
          kernels::PolarLanes slice;
          slice.radius = lanes.radius.subspan(ulo, len);
          for (int j = 0; j < d - 1; ++j) {
            slice.cube[static_cast<std::size_t>(j)] =
                lanes.cube[static_cast<std::size_t>(j)].subspan(ulo, len);
          }
          const double chunkMax = kernels::polarOfPointsBatch(
              points.subspan(ulo, len), origin, slice,
              std::span<PolarCoords>(polar).subspan(ulo, len));
          auto& localMax = slotMax[static_cast<std::size_t>(slot)];
          localMax = std::max(localMax, chunkMax);
        });
  } else {
    parallelForChunks(0, n, workers,
                      [&](std::int64_t lo, std::int64_t hi, int slot) {
                        double localMax = slotMax[static_cast<std::size_t>(slot)];
                        for (std::int64_t i = lo; i < hi; ++i) {
                          const auto idx = static_cast<std::size_t>(i);
                          OMT_CHECK(points[idx].dim() == d,
                                    "mixed dimensions in point set");
                          polar[idx] = toPolar(points[idx], origin);
                          localMax = std::max(localMax, polar[idx].radius);
                        }
                        slotMax[static_cast<std::size_t>(slot)] = localMax;
                      });
  }
  polarSpan.end();
  double maxRadius = 0.0;
  for (const double m : slotMax) maxRadius = std::max(maxRadius, m);
  double outerRadius = options.outerRadius.value_or(maxRadius);
  if (outerRadius <= 0.0) outerRadius = 1.0;  // all points at the source
  OMT_CHECK(maxRadius <= outerRadius * (1.0 + 1e-9),
            "a point lies outside the requested outer radius");

  // Pass 2 (parallel): classify every point at the largest candidate k and
  // mark cell occupancy. The bitmap only ever receives 1s, so relaxed
  // atomic stores keep it race-free and order-independent. The batched
  // kernel classifies straight off the SoA lanes with the grid constants
  // hoisted into a ClassifyTable (no per-point log2/exp2 or modulo).
  const int kMax = candidateRings(n, options.maxRings);
  const PolarGrid gridMax(d, kMax, outerRadius);
  std::span<std::int32_t> ringMax = arena.alloc<std::int32_t>(un);
  std::span<std::uint64_t> cellMax = arena.alloc<std::uint64_t>(un);
  std::span<std::uint8_t> occMax =
      arena.alloc<std::uint8_t>(gridMax.heapIdCount());
  std::memset(occMax.data(), 0, occMax.size());
  obs::TraceSpan classifySpan("classification", "grid", span.id());
  if (useKernels) {
    std::array<double, PolarGrid::kMaxRings + 1> radii{};
    for (int i = 0; i <= kMax; ++i)
      radii[static_cast<std::size_t>(i)] = gridMax.ringRadius(i);
    const kernels::ClassifyTable classifyTable = kernels::makeClassifyTable(
        d, kMax, outerRadius,
        std::span<const double>(radii.data(),
                                static_cast<std::size_t>(kMax) + 1));
    parallelForChunks(
        0, n, workers, [&](std::int64_t lo, std::int64_t hi, int) {
          const auto ulo = static_cast<std::size_t>(lo);
          const auto len = static_cast<std::size_t>(hi - lo);
          kernels::PolarLanes slice;
          slice.radius = lanes.radius.subspan(ulo, len);
          for (int j = 0; j < d - 1; ++j) {
            slice.cube[static_cast<std::size_t>(j)] =
                lanes.cube[static_cast<std::size_t>(j)].subspan(ulo, len);
          }
          kernels::ringCellBatch(classifyTable, slice.radius, slice,
                                 ringMax.subspan(ulo, len),
                                 cellMax.subspan(ulo, len));
          for (std::size_t i = ulo; i < ulo + len; ++i) {
            const std::uint64_t h =
                gridMax.heapId(ringMax[i], cellMax[i]);
            std::atomic_ref<std::uint8_t>(occMax[static_cast<std::size_t>(h)])
                .store(1, std::memory_order_relaxed);
          }
        });
  } else {
    parallelFor(0, n, workers, [&](std::int64_t i) {
      const auto idx = static_cast<std::size_t>(i);
      const int ring = gridMax.ringOf(std::min(polar[idx].radius, outerRadius));
      ringMax[idx] = ring;
      cellMax[idx] = gridMax.cellOf(polar[idx], ring);
      std::atomic_ref<std::uint8_t>(
          occMax[static_cast<std::size_t>(gridMax.heapId(ring, cellMax[idx]))])
          .store(1, std::memory_order_relaxed);
    });
  }

  const int chosen = selectRings(occMax, kMax);
  classifySpan.end();
  gridMetrics().rings.set(static_cast<double>(chosen));

  // Final assignment under the chosen k.
  const int delta = kMax - chosen;
  GridAssignment out{.grid = PolarGrid(d, chosen, outerRadius),
                     .ringOfPoint = {},
                     .cellOfPoint = {},
                     .polarOfPoint = {},
                     .cellStart = {},
                     .cellMembers = {},
                     .occupiedCellCount = -1};
  out.ringOfPoint.resize(points.size());
  out.cellOfPoint.resize(points.size());

  // Counting sort into the CSR, in parallel:
  //  (a) count members per heap id with relaxed atomic increments (the
  //      final counts are order-independent);
  //  (b) sequential prefix sum over the O(heapIds) counts, counting
  //      occupied cells along the way;
  //  (c) scatter with per-cell atomic cursors, then sort every cell's
  //      member list — members end up in increasing point index, exactly
  //      the order a sequential scatter produces.
  const obs::TraceSpan csrSpan("csr_build", "grid", span.id());
  const std::size_t heapIds = out.grid.heapIdCount();
  out.cellStart.assign(heapIds + 1, 0);
  parallelFor(0, n, workers, [&](std::int64_t i) {
    const auto idx = static_cast<std::size_t>(i);
    const int ring = std::max(0, ringMax[idx] - delta);
    out.ringOfPoint[idx] = ring;
    out.cellOfPoint[idx] = ring == 0 ? 0 : (cellMax[idx] >> delta);
    const std::uint64_t h = out.grid.heapId(ring, out.cellOfPoint[idx]);
    std::atomic_ref<std::int64_t>(out.cellStart[static_cast<std::size_t>(h) + 1])
        .fetch_add(1, std::memory_order_relaxed);
  });
  std::int64_t occupied = 0;
  for (std::size_t h = 0; h < heapIds; ++h) {
    if (out.cellStart[h + 1] > 0) ++occupied;
    out.cellStart[h + 1] += out.cellStart[h];
  }
  out.occupiedCellCount = occupied;
  gridMetrics().occupiedCells.set(static_cast<double>(occupied));

  out.cellMembers.resize(points.size());
  std::span<std::int64_t> cursor = arena.alloc<std::int64_t>(heapIds);
  std::copy(out.cellStart.begin(), out.cellStart.end() - 1, cursor.begin());
  parallelFor(0, n, workers, [&](std::int64_t i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::uint64_t h =
        out.grid.heapId(out.ringOfPoint[idx], out.cellOfPoint[idx]);
    const std::int64_t pos =
        std::atomic_ref<std::int64_t>(cursor[static_cast<std::size_t>(h)])
            .fetch_add(1, std::memory_order_relaxed);
    out.cellMembers[static_cast<std::size_t>(pos)] = static_cast<NodeId>(i);
  });
  parallelForChunks(
      0, static_cast<std::int64_t>(heapIds), workers,
      [&](std::int64_t lo, std::int64_t hi, int) {
        for (std::int64_t h = lo; h < hi; ++h) {
          const auto hs = static_cast<std::size_t>(h);
          std::sort(out.cellMembers.begin() + out.cellStart[hs],
                    out.cellMembers.begin() + out.cellStart[hs + 1]);
        }
      });

  out.polarOfPoint = std::move(polar);
  return out;
}

}  // namespace omt
