#include "omt/grid/assignment.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>

#include "omt/common/error.h"
#include "omt/kernels/kernels.h"
#include "omt/kernels/polar_batch.h"
#include "omt/obs/metrics.h"
#include "omt/obs/trace.h"
#include "omt/parallel/parallel_for.h"
#include "omt/parallel/scratch_arena.h"

namespace omt {
namespace {

/// Deterministic per-build facts: one add per logical item (point, build),
/// one set per chosen grid — identical for every worker count.
struct GridMetrics {
  obs::Counter& assignments;
  obs::Counter& points;
  obs::Gauge& rings;
  obs::Gauge& occupiedCells;
};

GridMetrics& gridMetrics() {
  auto& registry = obs::MetricsRegistry::global();
  static GridMetrics metrics{
      registry.counter("omt_grid_assignments_total"),
      registry.counter("omt_grid_points_total"),
      registry.gauge("omt_grid_rings"),
      registry.gauge("omt_grid_occupied_cells")};
  return metrics;
}

/// Largest candidate ring count for n points: property 3 needs all 2^(k-1)
/// cells of ring k-1 occupied, so 2^(k-1) <= n - 1 is necessary.
int candidateRings(std::int64_t n, int cap) {
  int k = 1;
  while (k < cap && (std::int64_t{1} << k) <= n) ++k;
  return k;
}

/// Largest k (= kMax - delta) whose rings 1..k-1 are fully occupied, from
/// the occupancy bitmap at kMax. Under k = kMax - delta, ring j (j >= 1)
/// collects the points whose kMax-ring is j + delta, in cell cellMax >>
/// delta; so ring j is fully occupied iff every ring-j cell's depth-delta
/// descendant block in ring j + delta contains an occupied cell. Those
/// block ORs are exactly a bottom-up heap fold: S_0 = occ, S_{delta+1}(h) =
/// S_delta(2h) | S_delta(2h+1), and ring j is full under delta iff
/// S_delta is 1 across ring j. One fold level costs half the previous one,
/// so the whole selection is O(heapIds) — the old per-candidate block scan
/// was O(2^kMax * kMax) when every candidate failed near the end.
int selectRings(std::span<std::uint8_t> fold, int kMax) {
  // ringFull[delta * kMax + (j - 1)] for j in 1..kMax - delta - 1.
  std::vector<std::uint8_t> ringFull(
      static_cast<std::size_t>(kMax) * static_cast<std::size_t>(kMax), 0);
  for (int delta = 0; delta <= kMax - 1; ++delta) {
    for (int j = 1; j <= kMax - delta - 1; ++j) {
      std::uint8_t all = 1;
      const std::uint64_t ringBegin = std::uint64_t{1} << j;
      for (std::uint64_t h = ringBegin; h < 2 * ringBegin; ++h) all &= fold[h];
      ringFull[static_cast<std::size_t>(delta) * static_cast<std::size_t>(kMax) +
               static_cast<std::size_t>(j - 1)] = all;
    }
    // Fold one level: S_{delta+1} over rings 0..kMax-delta-1. Ascending h
    // reads children 2h, 2h+1 before they are overwritten (2h > h).
    const std::uint64_t next = std::uint64_t{1} << (kMax - delta);
    for (std::uint64_t h = 1; h < next; ++h) fold[h] = fold[2 * h] | fold[2 * h + 1];
  }
  for (int delta = 0; delta <= kMax - 1; ++delta) {
    bool valid = true;
    for (int j = 1; j <= kMax - delta - 1 && valid; ++j) {
      valid = ringFull[static_cast<std::size_t>(delta) *
                           static_cast<std::size_t>(kMax) +
                       static_cast<std::size_t>(j - 1)] != 0;
    }
    if (valid) return kMax - delta;
  }
  return 1;
}

/// Per-worker ClassifyTable cache: rebuilt only when the grid key changes,
/// so the bisection driver's repeated builds (same dim / ring count /
/// radius family) reuse each worker's table instead of re-deriving the
/// split layout per build. Thread-local so workers never share a cache
/// line of hot per-point constants.
const kernels::ClassifyTable& workerClassifyTable(
    int dim, int rings, double outerRadius, std::span<const double> radii) {
  struct Cache {
    kernels::ClassifyTable table;
    bool valid = false;
  };
  thread_local Cache cache;
  if (!cache.valid || cache.table.dim != dim || cache.table.rings != rings ||
      cache.table.outerRadius != outerRadius) {
    cache.table = kernels::makeClassifyTable(dim, rings, outerRadius, radii);
    cache.valid = true;
  }
  return cache.table;
}

}  // namespace

std::int64_t GridAssignment::occupiedCells() const {
  if (occupiedCellCount >= 0) return occupiedCellCount;
  // Property 3 of the chosen grid: rings 1..k-1 are fully occupied, so only
  // ring 0 and the outermost ring need their CSR bounds inspected.
  const int k = grid.rings();
  std::int64_t occupied = cellStart[2] > cellStart[1] ? 1 : 0;  // ring 0
  occupied += (std::int64_t{1} << k) - 2;                       // rings 1..k-1
  const std::uint64_t outerBegin = std::uint64_t{1} << k;
  for (std::uint64_t h = outerBegin; h < 2 * outerBegin; ++h) {
    if (cellStart[static_cast<std::size_t>(h) + 1] >
        cellStart[static_cast<std::size_t>(h)])
      ++occupied;
  }
  return occupied;
}

GridAssignment assignToGrid(std::span<const Point> points, NodeId source,
                            const AssignmentOptions& options) {
  const auto n = static_cast<std::int64_t>(points.size());
  OMT_CHECK(n >= 1, "empty point set");
  OMT_CHECK(source >= 0 && source < n, "source index out of range");
  const int d = points.front().dim();
  OMT_CHECK(d >= 2 && d <= kMaxDim, "dimension out of range");
  OMT_CHECK(options.maxRings >= 1 && options.maxRings <= PolarGrid::kMaxRings,
            "ring cap out of range");
  const int workers = resolveWorkers(options.workers);
  const auto slots = static_cast<std::size_t>(workers);

  const obs::TraceSpan span("assign_to_grid", "grid");
  gridMetrics().assignments.add();
  gridMetrics().points.add(n);

  const Point& origin = points[static_cast<std::size_t>(source)];
  const bool useKernels = kernels::enabled();

  // Build-lifetime scratch: classification intermediates come from the
  // caller thread's arena, so repeated builds stop reallocating them
  // (workers only write into disjoint slices of these spans).
  ScratchArena& arena = workerArena();
  ScratchArena::Scope arenaScope(arena);
  const auto un = static_cast<std::size_t>(n);

  std::vector<PolarCoords> polar(points.size());
  std::vector<double> slotMax(slots, 0.0);
  double maxRadius = 0.0;
  double outerRadius = 0.0;

  // Outer radius R. The fused kernel path classifies during the polar walk,
  // which needs the ring radii — so when R is not supplied it runs a
  // radius-only prepass (one max reduction, no stores) instead of spilling
  // full polar lanes. The scalar path keeps its legacy shape: full polar
  // pass first, R from its max.
  obs::TraceSpan polarSpan("polar_pass", "grid", span.id());
  if (useKernels) {
    if (options.outerRadius.has_value()) {
      outerRadius = *options.outerRadius;
    } else {
      parallelForChunks(
          0, n, workers, [&](std::int64_t lo, std::int64_t hi, int slot) {
            const double chunkMax = kernels::radiusMaxBatch(
                points.subspan(static_cast<std::size_t>(lo),
                               static_cast<std::size_t>(hi - lo)),
                origin);
            auto& localMax = slotMax[static_cast<std::size_t>(slot)];
            localMax = std::max(localMax, chunkMax);
          });
      for (const double m : slotMax) outerRadius = std::max(outerRadius, m);
      std::fill(slotMax.begin(), slotMax.end(), 0.0);
    }
  } else {
    parallelForChunks(0, n, workers,
                      [&](std::int64_t lo, std::int64_t hi, int slot) {
                        double localMax = slotMax[static_cast<std::size_t>(slot)];
                        for (std::int64_t i = lo; i < hi; ++i) {
                          const auto idx = static_cast<std::size_t>(i);
                          OMT_CHECK(points[idx].dim() == d,
                                    "mixed dimensions in point set");
                          polar[idx] = toPolar(points[idx], origin);
                          localMax = std::max(localMax, polar[idx].radius);
                        }
                        slotMax[static_cast<std::size_t>(slot)] = localMax;
                      });
    for (const double m : slotMax) maxRadius = std::max(maxRadius, m);
    outerRadius = options.outerRadius.value_or(maxRadius);
  }
  if (outerRadius <= 0.0) outerRadius = 1.0;  // all points at the source
  polarSpan.end();

  // Classify every point at the largest candidate k. The fused kernel path
  // does polar conversion, ring/cell classification, and per-cell counting
  // in ONE walk over the points (cache-resident blocks inside
  // polarClassifyBatch; the count array replaces the old occupancy bitmap
  // AND the later CSR counting pass — integer sums are order-independent,
  // so relaxed atomics keep the result identical for any worker count).
  const int kMax = candidateRings(n, options.maxRings);
  const PolarGrid gridMax(d, kMax, outerRadius);
  const std::size_t heapIdsMax = gridMax.heapIdCount();
  std::span<std::int32_t> ringMax = arena.alloc<std::int32_t>(un);
  std::span<std::uint64_t> cellMax = arena.alloc<std::uint64_t>(un);
  std::span<std::uint8_t> occMax = arena.alloc<std::uint8_t>(heapIdsMax);
  std::span<std::int32_t> countMax;
  obs::TraceSpan classifySpan("classification", "grid", span.id());
  if (useKernels) {
    // Per-cell member counts fit int32: a count is at most n, and a point
    // set anywhere near 2^31 points could not have been materialised.
    OMT_CHECK(n <= std::numeric_limits<std::int32_t>::max(),
              "fused kernel path supports at most 2^31 - 1 points");
    countMax = arena.alloc<std::int32_t>(heapIdsMax);
    std::memset(countMax.data(), 0, countMax.size() * sizeof(std::int32_t));
    std::array<double, PolarGrid::kMaxRings + 1> radii{};
    for (int i = 0; i <= kMax; ++i)
      radii[static_cast<std::size_t>(i)] = gridMax.ringRadius(i);
    const std::span<const double> radiiSpan(
        radii.data(), static_cast<std::size_t>(kMax) + 1);
    parallelForChunks(
        0, n, workers, [&](std::int64_t lo, std::int64_t hi, int slot) {
          const kernels::ClassifyTable& table =
              workerClassifyTable(d, kMax, outerRadius, radiiSpan);
          const auto ulo = static_cast<std::size_t>(lo);
          const auto len = static_cast<std::size_t>(hi - lo);
          const double chunkMax = kernels::polarClassifyBatch(
              points.subspan(ulo, len), origin, table,
              std::span<PolarCoords>(polar).subspan(ulo, len),
              ringMax.subspan(ulo, len), cellMax.subspan(ulo, len));
          auto& localMax = slotMax[static_cast<std::size_t>(slot)];
          localMax = std::max(localMax, chunkMax);
          for (std::size_t i = ulo; i < ulo + len; ++i) {
            // The heap id is two cheap integer ops, so recompute it for the
            // lookahead and prefetch the count entry — the only random
            // access in this loop.
            if (i + 16 < ulo + len) {
              __builtin_prefetch(
                  &countMax[static_cast<std::size_t>(
                      gridMax.heapId(ringMax[i + 16], cellMax[i + 16]))],
                  1);
            }
            const std::uint64_t h = gridMax.heapId(ringMax[i], cellMax[i]);
            std::atomic_ref<std::int32_t>(countMax[static_cast<std::size_t>(h)])
                .fetch_add(1, std::memory_order_relaxed);
          }
        });
    for (const double m : slotMax) maxRadius = std::max(maxRadius, m);
    // Occupancy for ring selection, derived from the counts (selectRings
    // folds its input destructively, so it gets its own byte array).
    parallelForChunks(0, static_cast<std::int64_t>(heapIdsMax), workers,
                      [&](std::int64_t lo, std::int64_t hi, int) {
                        for (std::int64_t h = lo; h < hi; ++h) {
                          const auto hs = static_cast<std::size_t>(h);
                          occMax[hs] = countMax[hs] != 0 ? 1 : 0;
                        }
                      });
  } else {
    std::memset(occMax.data(), 0, occMax.size());
    parallelFor(0, n, workers, [&](std::int64_t i) {
      const auto idx = static_cast<std::size_t>(i);
      const int ring = gridMax.ringOf(std::min(polar[idx].radius, outerRadius));
      ringMax[idx] = ring;
      cellMax[idx] = gridMax.cellOf(polar[idx], ring);
      std::atomic_ref<std::uint8_t>(
          occMax[static_cast<std::size_t>(gridMax.heapId(ring, cellMax[idx]))])
          .store(1, std::memory_order_relaxed);
    });
  }
  OMT_CHECK(maxRadius <= outerRadius * (1.0 + 1e-9),
            "a point lies outside the requested outer radius");

  const int chosen = selectRings(occMax, kMax);
  classifySpan.end();
  gridMetrics().rings.set(static_cast<double>(chosen));

  // Final assignment under the chosen k.
  const int delta = kMax - chosen;
  GridAssignment out{.grid = PolarGrid(d, chosen, outerRadius),
                     .ringOfPoint = {},
                     .cellOfPoint = {},
                     .polarOfPoint = {},
                     .cellStart = {},
                     .cellMembers = {},
                     .occupiedCellCount = -1};
  out.ringOfPoint.resize(points.size());
  out.cellOfPoint.resize(points.size());

  // Counting sort into the CSR. The kernel path already holds per-cell
  // counts at kMax, and a chosen-k cell's members are exactly the points in
  // its depth-delta descendant block at kMax — so the chosen counts fall
  // out of delta levels of the same bottom-up heap fold selectRings uses
  // (ascending h reads children 2h, 2h+1 before overwriting them; integer
  // sums, so the result equals the per-point count to the bit). The fold
  // overwrites the sub-delta rings' own counts on its way up, so the ring-0
  // total (kMax-rings 0..delta collapse into chosen ring 0) is recovered by
  // subtraction from n. The scalar path keeps the per-point counting pass.
  const obs::TraceSpan csrSpan("csr_build", "grid", span.id());
  const std::size_t heapIds = out.grid.heapIdCount();
  out.cellStart.assign(heapIds + 1, 0);
  if (useKernels) {
    for (int lvl = 0; lvl < delta; ++lvl) {
      const std::uint64_t next = std::uint64_t{1} << (kMax - lvl);
      for (std::uint64_t h = 1; h < next; ++h) {
        countMax[static_cast<std::size_t>(h)] =
            countMax[static_cast<std::size_t>(2 * h)] +
            countMax[static_cast<std::size_t>(2 * h + 1)];
      }
    }
    std::int64_t outerTotal = 0;
    for (std::size_t h = 2; h < heapIds; ++h) {
      out.cellStart[h + 1] = countMax[h];
      outerTotal += countMax[h];
    }
    out.cellStart[2] = n - outerTotal;  // ring 0 lives at heap id 1
  } else {
    parallelFor(0, n, workers, [&](std::int64_t i) {
      const auto idx = static_cast<std::size_t>(i);
      const int ring = std::max(0, ringMax[idx] - delta);
      const std::uint64_t cell = ring == 0 ? 0 : (cellMax[idx] >> delta);
      const std::uint64_t h = out.grid.heapId(ring, cell);
      std::atomic_ref<std::int64_t>(
          out.cellStart[static_cast<std::size_t>(h) + 1])
          .fetch_add(1, std::memory_order_relaxed);
    });
  }
  std::int64_t occupied = 0;
  for (std::size_t h = 0; h < heapIds; ++h) {
    if (out.cellStart[h + 1] > 0) ++occupied;
    out.cellStart[h + 1] += out.cellStart[h];
  }
  out.occupiedCellCount = occupied;
  gridMetrics().occupiedCells.set(static_cast<double>(occupied));

  // Fused scatter: materialise the chosen-k ring/cell of every point and
  // place it through its cell's atomic cursor in the same walk. The cursor
  // entry is the one random access, so it gets a software prefetch from
  // the cheap-to-recompute lookahead heap id.
  out.cellMembers.resize(points.size());
  std::span<std::int64_t> cursor = arena.alloc<std::int64_t>(heapIds);
  std::copy(out.cellStart.begin(), out.cellStart.end() - 1, cursor.begin());
  parallelForChunks(0, n, workers, [&](std::int64_t lo, std::int64_t hi, int) {
    for (std::int64_t i = lo; i < hi; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (i + 16 < hi) {
        const auto ahead = static_cast<std::size_t>(i + 16);
        const int ringAhead = std::max(0, ringMax[ahead] - delta);
        const std::uint64_t cellAhead =
            ringAhead == 0 ? 0 : (cellMax[ahead] >> delta);
        __builtin_prefetch(
            &cursor[static_cast<std::size_t>(
                out.grid.heapId(ringAhead, cellAhead))],
            1);
      }
      const int ring = std::max(0, ringMax[idx] - delta);
      const std::uint64_t cell = ring == 0 ? 0 : (cellMax[idx] >> delta);
      out.ringOfPoint[idx] = ring;
      out.cellOfPoint[idx] = cell;
      const std::uint64_t h = out.grid.heapId(ring, cell);
      const std::int64_t pos =
          std::atomic_ref<std::int64_t>(cursor[static_cast<std::size_t>(h)])
              .fetch_add(1, std::memory_order_relaxed);
      out.cellMembers[static_cast<std::size_t>(pos)] = static_cast<NodeId>(i);
    }
  });
  parallelForChunks(
      0, static_cast<std::int64_t>(heapIds), workers,
      [&](std::int64_t lo, std::int64_t hi, int) {
        for (std::int64_t h = lo; h < hi; ++h) {
          const auto hs = static_cast<std::size_t>(h);
          std::sort(out.cellMembers.begin() + out.cellStart[hs],
                    out.cellMembers.begin() + out.cellStart[hs + 1]);
        }
      });

  out.polarOfPoint = std::move(polar);
  return out;
}

}  // namespace omt
