#include "omt/grid/assignment.h"

#include <algorithm>
#include <cmath>

#include "omt/common/error.h"

namespace omt {
namespace {

/// Largest candidate ring count for n points: property 3 needs all 2^(k-1)
/// cells of ring k-1 occupied, so 2^(k-1) <= n - 1 is necessary.
int candidateRings(std::int64_t n, int cap) {
  int k = 1;
  while (k < cap && (std::int64_t{1} << k) <= n) ++k;
  return k;
}

}  // namespace

std::int64_t GridAssignment::occupiedCells() const {
  std::int64_t occupied = 0;
  for (std::size_t h = 1; h + 1 < cellStart.size(); ++h) {
    if (cellStart[h + 1] > cellStart[h]) ++occupied;
  }
  return occupied;
}

GridAssignment assignToGrid(std::span<const Point> points, NodeId source,
                            const AssignmentOptions& options) {
  const auto n = static_cast<std::int64_t>(points.size());
  OMT_CHECK(n >= 1, "empty point set");
  OMT_CHECK(source >= 0 && source < n, "source index out of range");
  const int d = points.front().dim();
  OMT_CHECK(d >= 2 && d <= kMaxDim, "dimension out of range");
  OMT_CHECK(options.maxRings >= 1 && options.maxRings <= PolarGrid::kMaxRings,
            "ring cap out of range");

  const Point& origin = points[static_cast<std::size_t>(source)];

  // Pass 1: polar coordinates; outer radius R.
  std::vector<PolarCoords> polar(points.size());
  double maxRadius = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    OMT_CHECK(points[i].dim() == d, "mixed dimensions in point set");
    polar[i] = toPolar(points[i], origin);
    maxRadius = std::max(maxRadius, polar[i].radius);
  }
  double outerRadius = options.outerRadius.value_or(maxRadius);
  if (outerRadius <= 0.0) outerRadius = 1.0;  // all points at the source
  OMT_CHECK(maxRadius <= outerRadius * (1.0 + 1e-9),
            "a point lies outside the requested outer radius");

  // Pass 2: classify every point at the largest candidate k.
  const int kMax = candidateRings(n, options.maxRings);
  const PolarGrid gridMax(d, kMax, outerRadius);
  std::vector<std::int32_t> ringMax(points.size());
  std::vector<std::uint64_t> cellMax(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const int ring = gridMax.ringOf(std::min(polar[i].radius, outerRadius));
    ringMax[i] = ring;
    cellMax[i] = gridMax.cellOf(polar[i], ring);
  }

  // Occupancy bitmap over heap ids at kMax.
  std::vector<std::uint8_t> occMax(gridMax.heapIdCount(), 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    occMax[gridMax.heapId(ringMax[i], cellMax[i])] = 1;
  }

  // Find the largest k whose rings 1..k-1 are fully occupied. Under
  // k = kMax - delta, ring j (j >= 1) collects the points whose kMax-ring is
  // j + delta, in cell cellMax >> delta; so ring j is fully occupied iff
  // every length-j prefix occurs among occupied ring-(j+delta) cells —
  // an OR-fold of the kMax occupancy row j+delta by blocks of 2^delta.
  int chosen = 1;
  for (int delta = 0; delta <= kMax - 1; ++delta) {
    const int k = kMax - delta;
    bool valid = true;
    for (int j = 1; j <= k - 1 && valid; ++j) {
      const int jMax = j + delta;
      const std::uint64_t cells = std::uint64_t{1} << j;
      const std::uint64_t base = std::uint64_t{1} << jMax;
      for (std::uint64_t c = 0; c < cells; ++c) {
        bool hit = false;
        const std::uint64_t blockBegin = base + (c << delta);
        const std::uint64_t blockEnd = blockBegin + (std::uint64_t{1} << delta);
        for (std::uint64_t h = blockBegin; h < blockEnd && !hit; ++h) {
          hit = occMax[h] != 0;
        }
        if (!hit) {
          valid = false;
          break;
        }
      }
    }
    if (valid) {
      chosen = k;
      break;
    }
  }

  // Final assignment under the chosen k.
  const int delta = kMax - chosen;
  GridAssignment out{.grid = PolarGrid(d, chosen, outerRadius),
                     .ringOfPoint = {},
                     .cellOfPoint = {},
                     .cellStart = {},
                     .cellMembers = {}};
  out.ringOfPoint.resize(points.size());
  out.cellOfPoint.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const int ring = std::max(0, ringMax[i] - delta);
    out.ringOfPoint[i] = ring;
    out.cellOfPoint[i] = ring == 0 ? 0 : (cellMax[i] >> delta);
  }

  // CSR by heap id.
  const std::size_t heapIds = out.grid.heapIdCount();
  out.cellStart.assign(heapIds + 1, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::uint64_t h = out.grid.heapId(
        out.ringOfPoint[i], out.cellOfPoint[i]);
    ++out.cellStart[h + 1];
  }
  for (std::size_t h = 0; h < heapIds; ++h)
    out.cellStart[h + 1] += out.cellStart[h];
  out.cellMembers.resize(points.size());
  std::vector<std::int64_t> cursor(out.cellStart.begin(),
                                   out.cellStart.end() - 1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::uint64_t h = out.grid.heapId(
        out.ringOfPoint[i], out.cellOfPoint[i]);
    out.cellMembers[static_cast<std::size_t>(cursor[h]++)] =
        static_cast<NodeId>(i);
  }
  return out;
}

}  // namespace omt
