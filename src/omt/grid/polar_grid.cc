#include "omt/grid/polar_grid.h"

#include <bit>
#include <cmath>
#include <numbers>

#include "omt/common/error.h"

namespace omt {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

}  // namespace

PolarGrid::PolarGrid(int dim, int rings, double outerRadius)
    : dim_(dim), rings_(rings), outerRadius_(outerRadius) {
  OMT_CHECK(dim >= 2 && dim <= kMaxDim, "grid dimension out of range");
  OMT_CHECK(rings >= 1 && rings <= kMaxRings, "ring count out of range");
  OMT_CHECK(outerRadius > 0.0, "outer radius must be positive");
}

double PolarGrid::ringRadius(int i) const {
  OMT_ASSERT(i >= 0 && i <= rings_, "ring index out of range");
  // r_i = R * 2^{-(k - i)/d}; exact at i == rings.
  return outerRadius_ *
         std::exp2(-static_cast<double>(rings_ - i) / static_cast<double>(dim_));
}

int PolarGrid::ringOf(double radius) const {
  OMT_CHECK(radius >= 0.0, "negative radius");
  OMT_CHECK(radius <= outerRadius_ * (1.0 + 1e-9) + kGeomEps,
            "radius outside the grid");
  if (radius <= 0.0) return 0;
  // Solve radius <= r_i for the smallest i, then fix up against the exact
  // boundary values to keep assignment consistent with ringRadius().
  const double x = static_cast<double>(rings_) +
                   static_cast<double>(dim_) * std::log2(radius / outerRadius_);
  int i = static_cast<int>(std::ceil(x));
  i = std::max(0, std::min(rings_, i));
  while (i > 0 && radius <= ringRadius(i - 1)) --i;
  while (i < rings_ && radius > ringRadius(i)) ++i;
  return i;
}

std::uint64_t PolarGrid::cellOf(const PolarCoords& polar, int ring) const {
  OMT_ASSERT(polar.dim == dim_, "dimension mismatch");
  OMT_ASSERT(ring >= 0 && ring <= rings_, "ring index out of range");
  std::uint64_t cell = 0;
  std::array<double, kMaxDim - 1> frac = polar.cube;
  const int axes = dim_ - 1;
  for (int s = 0; s < ring; ++s) {
    auto& f = frac[static_cast<std::size_t>(s % axes)];
    f *= 2.0;
    std::uint64_t bit = 0;
    if (f >= 1.0) {
      bit = 1;
      f = std::min(f - 1.0, 1.0);  // clamp guards u == 1.0 exactly
    }
    cell = (cell << 1) | bit;
  }
  return cell;
}

std::uint64_t PolarGrid::heapId(int ring, std::uint64_t cell) const {
  OMT_ASSERT(ring >= 0 && ring <= rings_, "ring index out of range");
  OMT_ASSERT(cell < cellsInRing(ring), "cell index out of range");
  return ring == 0 ? 1 : (std::uint64_t{1} << ring) + cell;
}

int PolarGrid::ringOfHeapId(std::uint64_t id) const {
  OMT_ASSERT(id >= 1 && id < heapIdCount(), "heap id out of range");
  return std::bit_width(id) - 1;
}

std::uint64_t PolarGrid::cellOfHeapId(std::uint64_t id) const {
  const int ring = ringOfHeapId(id);
  return id - (std::uint64_t{1} << ring);
}

RingSegment PolarGrid::cellSegment(int ring, std::uint64_t cell) const {
  OMT_ASSERT(ring >= 0 && ring <= rings_, "ring index out of range");
  OMT_ASSERT(cell < cellsInRing(ring), "cell index out of range");

  const Interval radial{ring == 0 ? 0.0 : ringRadius(ring - 1),
                        ringRadius(ring)};
  std::array<Interval, kMaxDim - 1> cube;
  const int axes = dim_ - 1;
  for (int j = 0; j < axes; ++j)
    cube[static_cast<std::size_t>(j)] = Interval{0.0, 1.0};
  for (int s = 0; s < ring; ++s) {
    const int bit = static_cast<int>((cell >> (ring - 1 - s)) & 1);
    auto& iv = cube[static_cast<std::size_t>(s % axes)];
    iv = iv.half(bit);
  }
  return RingSegment(
      dim_, radial,
      std::span<const Interval>(cube.data(), static_cast<std::size_t>(axes)));
}

PolarGrid PolarGrid::afterSplit() const {
  OMT_CHECK(rings_ < kMaxRings, "split exceeds kMaxRings");
  return PolarGrid(dim_, rings_ + 1, outerRadius_);
}

PolarGrid PolarGrid::afterMerge() const {
  OMT_CHECK(rings_ >= 2, "merge needs at least two rings");
  return PolarGrid(dim_, rings_ - 1, outerRadius_);
}

PolarGrid PolarGrid::afterExtend(int extraRings) const {
  OMT_CHECK(extraRings >= 1, "extend needs at least one extra ring");
  OMT_CHECK(rings_ + extraRings <= kMaxRings, "extend exceeds kMaxRings");
  const double grown =
      outerRadius_ *
      std::exp2(static_cast<double>(extraRings) / static_cast<double>(dim_));
  return PolarGrid(dim_, rings_ + extraRings, grown);
}

std::uint64_t PolarGrid::splitTargetOf(std::uint64_t id,
                                       const PolarCoords& polar,
                                       double radius) const {
  const int ring = ringOfHeapId(id);
  if (ring == 0) {
    // The old central ball covers new rings 0 and 1: the new r'_0 equals
    // this grid's would-be boundary below r_0.
    const double innerBoundary =
        outerRadius_ * std::exp2(-static_cast<double>(rings_ + 1) /
                                 static_cast<double>(dim_));
    if (radius <= innerBoundary) return 1;
    return 2 + (cellOf(polar, 1) & 1);
  }
  // One more angular bit; the top `ring` bits are the old cell, so the new
  // heap id is 2*id + lastBit. The bit is evaluated against the split grid
  // (ring + 1 exceeds this grid's ring range for outermost-ring cells).
  return (id << 1) | (afterSplit().cellOf(polar, ring + 1) & 1);
}

std::uint64_t PolarGrid::mergeTargetOf(std::uint64_t id) const {
  OMT_ASSERT(id >= 1 && id < heapIdCount(), "heap id out of range");
  return id <= 3 ? 1 : id >> 1;
}

double PolarGrid::arcLength(int ring) const {
  OMT_ASSERT(ring >= 0 && ring <= rings_, "ring index out of range");
  // Azimuth axis receives ceil((ring - azimuthAxis) / axes) of the `ring`
  // splits; in 2D that is all of them, giving the paper's 2*pi*r_i / 2^i.
  const int axes = dim_ - 1;
  const int az = azimuthAxis(dim_);
  int azSplits = 0;
  for (int s = 0; s < ring; ++s) {
    if (s % axes == az) ++azSplits;
  }
  return kTwoPi * ringRadius(ring) / std::exp2(azSplits);
}

}  // namespace omt
