// Opt-in fast-math kernel tier: vectorizable polynomial / table-hybrid
// replacements for the transcendental hot path of the coordinate kernels.
//
// The exact kernel layer (polar_batch.h) is bitwise-faithful to the scalar
// geometry path, which pins every transcendental to libm: one atan2 per
// angular axis per point in the polar pass, an acos or a Newton-refined
// sin^k quantile inversion per axis in the inverse. Those calls are the
// scalar wall the batch layer cannot vectorize past. This tier trades a
// *bounded* amount of last-ulp exactness for math the compiler and the
// explicit AVX2 lanes can stream:
//
//   fastAtan2            octant reduction + odd minimax polynomial
//                        (|w| <= tan(pi/8), 13 terms, < 5e-20 poly error)
//   fastAcos             asin-core minimax with the sqrt((1-|x|)/2) fold
//                        (full relative precision at the poles x -> +-1)
//   fastSinCosTwoPi      sin/cos of 2*pi*u, quarter-turn reduction +
//                        short even/odd polynomials (absolute-error
//                        contract: the azimuth axis is periodic in u)
//   fastSinPowerCdf      forward sin^k CDF from (cos t, sin t) pairs the
//                        norm cascade already produces — no atan2 at all;
//                        even powers take one fastAcos for the base case
//   fastSinPowerQuantile table-hybrid inversion: cubic Hermite between
//                        the canonical 1025-entry bracket nodes (exact
//                        derivative 1/q' = sin^k(t)/T at each node), the
//                        closed-form series in the deep tails, and the
//                        exact bracketed Newton only in the two outermost
//                        grid intervals where the quantile's slope blows up
//
// Accuracy contract (asserted by tests/kernels_fast_math_test.cc in both
// the AVX2 and forced-scalar lanes, and documented in docs/performance.md):
// atan2 and acos within a few ulp of libm, sincos within ~1 ulp absolute,
// the CDF within ~1e-15 absolute, the quantile within 1e-9 radians.
//
// The tier is OFF by default: trees built with it can differ from the
// exact path when a point sits within the error bound of a cell boundary
// (the golden fingerprints are pinned with the tier off). Enable with
// OMT_FAST_MATH=1 in the environment, setEnabled(true), or
// `omtcli build --fast-math 1`. The AVX2 lanes engage only when the CPU
// reports AVX2+FMA at runtime; OMT_FAST_MATH_SIMD=0 (or
// setForceScalar(true)) pins the scalar-polynomial fallback, which is what
// the CI fallback leg runs. Building with -DOMT_FAST_MATH=OFF compiles the
// tier out entirely (enabled() is constant false).
#pragma once

#include <cstddef>
#include <span>

namespace omt::kernels::fast_math {

/// False when the tier was compiled out (-DOMT_FAST_MATH=OFF).
bool compiledIn();

/// Whether fast-math call sites should take the approximate path.
/// Initialised from the environment on first use: OMT_FAST_MATH=1 enables;
/// absent or any other value leaves the exact path (opt-in tier).
bool enabled();

/// Override the tier toggle at runtime (tests, benches, omtcli). Returns
/// the previous value; a no-op returning false when compiled out.
bool setEnabled(bool on);

/// True when the batch entry points will dispatch to the AVX2 lanes:
/// compiled in, CPU reports AVX2+FMA, and the scalar fallback is not
/// forced (OMT_FAST_MATH_SIMD=0 / setForceScalar).
bool simdActive();

/// Force the scalar-polynomial fallback lanes (differential testing of
/// both lanes on one machine). Returns the previous force state.
bool setForceScalar(bool force);

// --- scalar fast functions (the fallback lane) ----------------------------

/// atan2(y, x) within a few ulp, including the signed-zero conventions at
/// |x| -> 0 and |y| -> 0 (atan2(+-0, -0) = +-pi, atan2(y, +-0) = +-pi/2).
double fastAtan2(double y, double x);

/// acos(x) for x in [-1, 1] within a few ulp; full *relative* precision at
/// the poles (acos(1 - e) ~ sqrt(2e)). NaN outside the domain, like libm.
double fastAcos(double x);

/// sinOut = sin(2*pi*u), cosOut = cos(2*pi*u) for u in [0, 1], within
/// ~1 ulp absolute (of 1). Exact zeros at the quarter points u = j/4.
void fastSinCosTwoPi(double u, double& sinOut, double& cosOut);

/// Normalised CDF of sin^k on [0, pi] evaluated from the cosine/sine pair
/// of the angle (k >= 1; the polar cascade produces cosT = v_j / s_j and
/// sinT = s_{j+1} / s_j directly from the suffix norms, so the forward
/// transform needs no inverse trig for odd k and one fastAcos for even k).
/// sinT must be >= 0 (angles live in [0, pi]).
double fastSinPowerCdf(int k, double cosT, double sinT);

/// Inverse of the sin^k CDF (k >= 0, u in [0, 1]) under the table-hybrid
/// scheme described above. Requires no Newton iteration outside the two
/// outermost grid intervals.
double fastSinPowerQuantile(int k, double u);

// --- batch entry points (AVX2 when simdActive(), else scalar loops) -------

void fastAtan2Batch(std::span<const double> y, std::span<const double> x,
                    std::span<double> out);

void fastAcosBatch(std::span<const double> x, std::span<double> out);

void fastSinCosTwoPiBatch(std::span<const double> u, std::span<double> sinOut,
                          std::span<double> cosOut);

void fastSinPowerQuantileBatch(int k, std::span<const double> u,
                               std::span<double> out);

/// Fused fast polar conversion, d = 2: radius[i] = hypot of (dx, dy)[i],
/// cube0[i] = azimuth-cube coordinate atan2(dy, dx)/2pi wrapped into
/// [0, 1). Returns the batch max radius. Zero vectors get cube 0.
double fastPolar2DBatch(std::span<const double> dx, std::span<const double> dy,
                        std::span<double> radius, std::span<double> cube0);

/// Fused fast polar conversion, d = 3: radius, the equal-area polar-angle
/// coordinate cube0 = (1 - dx/r)/2 in its cancellation-free form, and the
/// azimuth cube coordinate cube1 from atan2(dz, dy). Returns the max radius.
double fastPolar3DBatch(std::span<const double> dx, std::span<const double> dy,
                        std::span<const double> dz, std::span<double> radius,
                        std::span<double> cube0, std::span<double> cube1);

namespace detail {

/// Per-k view of the table-hybrid quantile data: the canonical bracket
/// nodes (shared with the exact table registry) plus dq/du at each interior
/// node and the tail/series cutovers. Built lazily, immortal.
struct QuantileTableView {
  const double* nodes = nullptr;   ///< 1025 canonical grid quantiles.
  const double* derivs = nullptr;  ///< dq/du = T / sin^k(node); 0 at ends.
  double total = 0.0;              ///< T_k = integral of sin^k over [0,pi].
  double tailThreshold = 0.0;      ///< series regime: target <= threshold.
  int k = 0;
};

/// Grid intervals on each end of the u-table routed to the exact bracketed
/// Newton instead of the Hermite patch. The quantile behaves like
/// u^(1/(k+1)) near the endpoints, so its fourth derivative — and with it
/// the cubic interpolation error — blows up as j^(1/(k+1) - 4); 40
/// intervals pushes the patch error below ~1e-9 rad for every tabled k
/// while leaving ~92% of uniform draws on the Newton-free path.
inline constexpr int kHermiteEdgeIntervals = 40;

/// The view for k in [2, kMaxTabledPower]; checked otherwise.
const QuantileTableView& quantileView(int k);

/// Scalar Hermite/tail/edge quantile core given a prefetched view —
/// the piece the AVX2 gather lane shares with fastSinPowerQuantile.
double quantileFromView(const QuantileTableView& view, double u);

#if !defined(OMT_FAST_MATH_DISABLED) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define OMT_FAST_MATH_HAS_AVX2_LANES 1
void atan2BatchAvx2(const double* y, const double* x, double* out,
                    std::size_t n);
void acosBatchAvx2(const double* x, double* out, std::size_t n);
void sinCosTwoPiBatchAvx2(const double* u, double* sinOut, double* cosOut,
                          std::size_t n);
void sinPowerQuantileBatchAvx2(const QuantileTableView& view, const double* u,
                               double* out, std::size_t n);
double polar2DBatchAvx2(const double* dx, const double* dy, double* radius,
                        double* cube0, std::size_t n);
double polar3DBatchAvx2(const double* dx, const double* dy, const double* dz,
                        double* radius, double* cube0, double* cube1,
                        std::size_t n);
#endif

}  // namespace detail

}  // namespace omt::kernels::fast_math
