// Batched coordinate-kernel layer: runtime toggle and shared metrics.
//
// The kernels subsystem makes the point -> cell pipeline a batched,
// cache-friendly kernel instead of per-point scalar calls:
//   * sin_power_table.h — table-seeded sin^k quantile inversion (the
//     per-point Newton solve drops from a cold full-range start to ~2-3
//     steps inside a precomputed bracket);
//   * polar_batch.h — SoA batch transforms (polarOfPointsBatch,
//     ringCellBatch, angularCubeBatch) over contiguous per-dimension lanes.
//
// Everything here is an implementation strategy, not a semantic change:
// every kernel returns doubles bitwise identical to the scalar geometry /
// grid path it replaces (the tables store the exact doubles the cold path
// computes, and the batch loops replay the scalar operation sequences), so
// the pinned golden tree fingerprints and the byte-identical determinism
// contract hold with the kernels on or off. kernels_test.cc and the
// extended core_polar_grid_parallel_test goldens enforce this.
//
// The layer is on by default; OMT_KERNEL_TABLES=0 in the environment (or
// setEnabled(false)) forces every call site back onto the legacy scalar
// path — the escape hatch for A/B timing and for bisecting any future
// divergence.
#pragma once

namespace omt::kernels {

/// Whether call sites should take the batched kernel path. Initialised
/// from the environment on first use: OMT_KERNEL_TABLES=0 disables, any
/// other value (or absence) enables.
bool enabled();

/// Override the kernel toggle at runtime (tests, A/B benches). Returns the
/// previous value.
bool setEnabled(bool on);

}  // namespace omt::kernels
