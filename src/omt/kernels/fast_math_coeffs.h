// Minimax polynomial coefficients shared by the scalar fallback and the
// AVX2 lanes of the fast-math tier. Generated with mpmath (200-digit
// Chebyshev-node remez fits, hex-float literals so every build sees the
// identical doubles):
//
//   atan core  atan(w)/w      in s = w^2 on [0, tan^2(pi/8)]  max err 4.6e-20
//   asin core  (asin(x)/x-1)/x^2 in s = x^2 on [0, 1/4]       max err 4.2e-21
//   sin core   sin(r)/r       in s = r^2 on [0, (pi/4)^2]     max err 1.8e-21
//   cos core   cos(r)         in s = r^2 on [0, (pi/4)^2]     max err 1.5e-23
//
// All polynomials are evaluated by Horner in the squared variable, so the
// fit error sits far below the ~1e-16 accumulation noise of the Horner
// chain itself — the tier's ulp bounds come from rounding, not the fits.
#pragma once

#include <cstddef>

namespace omt::kernels::fast_math::detail {

inline constexpr double kTanPiOver8 = 0x1.a827999fcef32p-2;

inline constexpr int kAtanTerms = 13;
inline constexpr double kAtanCoeffs[kAtanTerms] = {
    0x1.0000000000000p+0,  -0x1.5555555555554p-2, 0x1.9999999999566p-3,
    -0x1.2492492470754p-3, 0x1.c71c71b563986p-4,  -0x1.745d1480b7932p-4,
    0x1.3b1369d8f07f5p-4,  -0x1.110c3a7ccdb74p-4, 0x1.e16e24513a73ep-5,
    -0x1.ab66f999273fbp-5, 0x1.70995e9961734p-5,  -0x1.118357ca27435p-5,
    0x1.ef3f736798091p-7,
};

inline constexpr int kAsinTerms = 16;
inline constexpr double kAsinCoeffs[kAsinTerms] = {
    0x1.5555555555555p-3, 0x1.3333333333334p-4, 0x1.6db6db6db6c75p-5,
    0x1.f1c71c71dc217p-6, 0x1.6e8ba2e2f8089p-6, 0x1.1c4ec5dfe81d9p-6,
    0x1.c99964e8e2de8p-7, 0x1.7a8b73dc1b007p-7, 0x1.3fa92e3923959p-7,
    0x1.14f7ebcffc822p-7, 0x1.c232290f7ae75p-8, 0x1.1e6dafec868fcp-7,
    -0x1.641b6703bb104p-9, 0x1.b20b9dc229eb5p-6, -0x1.dfdd83264a978p-6,
    0x1.06c051be25377p-5,
};

inline constexpr int kSinTerms = 8;
inline constexpr double kSinCoeffs[kSinTerms] = {
    0x1.0000000000000p+0,  -0x1.5555555555555p-3, 0x1.111111111110ap-7,
    -0x1.a01a01a018885p-13, 0x1.71de3a5313911p-19, -0x1.ae64526fdee39p-26,
    0x1.61207cce04331p-33,  -0x1.aa9bc9f405673p-41,
};

inline constexpr int kCosTerms = 9;
inline constexpr double kCosCoeffs[kCosTerms] = {
    0x1.0000000000000p+0,  -0x1.0000000000000p-1, 0x1.5555555555555p-5,
    -0x1.6c16c16c16c09p-10, 0x1.a01a01a01844fp-16, -0x1.27e4fb7581302p-22,
    0x1.1eed8c32f1021p-29,  -0x1.9392cccc6be36p-37, 0x1.aa9bc439ae3a9p-45,
};

/// Horner evaluation in the squared variable; the compiler contracts the
/// multiply-adds into FMAs under the default -ffp-contract, matching the
/// explicit FMA chain of the AVX2 lanes closely (not bitwise — the lanes
/// carry their own ulp bounds).
template <int N>
inline double horner(const double (&c)[N], double s) {
  double r = c[N - 1];
  for (int i = N - 2; i >= 0; --i) r = r * s + c[i];
  return r;
}

}  // namespace omt::kernels::fast_math::detail
